package glapsim

import "testing"

func TestOverlayNewscast(t *testing.T) {
	for _, p := range []Policy{PolicyGLAP, PolicyGRMP, PolicyEcoCloud} {
		p := p
		t.Run(string(p), func(t *testing.T) {
			x := smallExperiment(p)
			x.Overlay = OverlayNewscast
			res, err := Run(x)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Cluster.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			last, _ := res.Series.Last()
			if last.ActivePMs >= x.PMs {
				t.Fatalf("%s over newscast did not consolidate", p)
			}
		})
	}
}

func TestOverlayUnknown(t *testing.T) {
	x := smallExperiment(PolicyGRMP)
	x.Overlay = "chord"
	if _, err := Run(x); err == nil {
		t.Fatal("unknown overlay accepted")
	}
}

func TestOverlayComparable(t *testing.T) {
	if testing.Short() {
		t.Skip("comparative run in -short mode")
	}
	// The overlay choice must not change the outcome's character: both
	// overlays consolidate to within a few PMs of each other.
	base := smallExperiment(PolicyGRMP)
	base.Rounds = 60
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Overlay = OverlayNewscast
	b, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	la, _ := a.Series.Last()
	lb, _ := b.Series.Last()
	diff := la.ActivePMs - lb.ActivePMs
	if diff < 0 {
		diff = -diff
	}
	if diff > 5 {
		t.Fatalf("overlays disagree: cyclon=%d newscast=%d active", la.ActivePMs, lb.ActivePMs)
	}
}
