package glapsim

import (
	"fmt"
	"sort"

	"github.com/glap-sim/glap/internal/glap"
	"github.com/glap-sim/glap/internal/gossip"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/topology"
)

// This file is the policy-stack registry: every consolidation policy the
// facade can run registers a PolicySpec here (see stacks.go for the built-in
// registrations), and Run wires an experiment through the registered spec
// instead of a hard-coded switch. Adding a policy or transport is one
// RegisterPolicy call — no facade edit.

// StackContext carries everything a policy stack needs to install itself on
// a prepared engine. Run fills it after the cluster, engine, binding and
// (when the spec asks for them) overlay and pre-trained tables exist.
type StackContext struct {
	// X is the experiment being run.
	X Experiment
	// E is the engine the stack registers its protocols on.
	E *sim.Engine
	// B binds the engine's nodes to the cluster's PMs.
	B *policy.Binding
	// Select is the configured overlay's peer selector; nil means the
	// protocol default (Cyclon sampling). Only set when the spec requested
	// an overlay.
	Select gossip.PeerSelector
	// Tables is GLAP's shared Q store: the pre-training outcome, or the
	// experiment's injected PretrainedTables. Nil for stacks whose spec does
	// not request pre-training.
	Tables *glap.NodeTables
	// Tree is the experiment's topology model, nil when disabled.
	Tree *topology.Tree
	// Artifacts receives optional handles the builder publishes for
	// instrumentation; never nil when Run invokes a builder.
	Artifacts *StackArtifacts
}

// StackArtifacts are optional handles a stack builder publishes so callers
// (robustness grids, tests) can read protocol counters after the run.
type StackArtifacts struct {
	// AsyncConsolidate is the message-passing consolidation protocol, set by
	// the glap-async stack.
	AsyncConsolidate *glap.AsyncConsolidateProtocol
	// Transport is the message transport, set by stacks that register one.
	Transport *sim.Transport
}

// StackBuilder installs one policy's protocol stack on the prepared engine.
type StackBuilder func(*StackContext) error

// PolicySpec describes a registered policy: which facade services it needs
// around the build, and the builder itself.
type PolicySpec struct {
	// Overlay: register the experiment's peer-sampling overlay before Build
	// runs and pass its selector in StackContext.Select. Centralized
	// policies (pabfd, none) leave this false and skip overlay
	// construction entirely.
	Overlay bool
	// Pretrain: run GLAP pre-training before the consolidation run (unless
	// the experiment injects PretrainedTables) and pass the shared tables in
	// StackContext.Tables.
	Pretrain bool
	// Drain: after the scheduled rounds, run the event queue dry so
	// in-flight messages, timeouts and reservations settle. Message-passing
	// stacks set this.
	Drain bool
	// Build installs the stack.
	Build StackBuilder
}

var policyRegistry = map[Policy]PolicySpec{}

// RegisterPolicy adds a policy to the registry. It panics on a nil builder
// or a duplicate name: registrations happen at init time, where a broken
// registration should fail loudly.
func RegisterPolicy(p Policy, spec PolicySpec) {
	if spec.Build == nil {
		panic(fmt.Sprintf("glapsim: RegisterPolicy(%q) with nil Build", p))
	}
	if _, dup := policyRegistry[p]; dup {
		panic(fmt.Sprintf("glapsim: duplicate policy registration %q", p))
	}
	policyRegistry[p] = spec
}

// policySpec looks up a registered policy.
func policySpec(p Policy) (PolicySpec, bool) {
	spec, ok := policyRegistry[p]
	return spec, ok
}

// RegisteredPolicies lists every registered policy name in sorted order.
func RegisteredPolicies() []Policy {
	names := make([]Policy, 0, len(policyRegistry))
	for p := range policyRegistry {
		names = append(names, p)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	return names
}
