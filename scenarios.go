package glapsim

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/glap"
	"github.com/glap-sim/glap/internal/gossip"
	"github.com/glap-sim/glap/internal/metrics"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/stats"
	"github.com/glap-sim/glap/internal/trace"
)

// The scenario suite exercises the evaluation axes the paper's conclusion
// names as open — failures, heterogeneity, network topology and real
// workloads — as first-class experiments instead of one-off test pins. Every
// scenario is opt-in configuration over the ordinary experiment path
// (prepareStack), so the default runs that golden hashes pin are untouched.

// Scenario names one scenario family of the suite.
type Scenario string

// The four scenario families.
const (
	// ScenarioCrashChurn injects PM crash/recovery churn mid-run into the
	// message-passing GLAP stack: crashes evacuate or strand hosted VMs,
	// void outstanding migration reservations, and wipe the PM's volatile
	// Q-tables. The scenario runs twice — recovered PMs warm-restart from a
	// pre-crash checkpoint, or cold-restart empty and wait for table gossip
	// — and reports time-to-reconverge for both.
	ScenarioCrashChurn Scenario = "crash-churn"
	// ScenarioHetero runs GLAP on the mixed G4/G5 fleet, where per-PM power
	// curves and capacities differ.
	ScenarioHetero Scenario = "hetero"
	// ScenarioTopology runs the async stack under the three-tier topology
	// model: per-path message latency, oversubscribed cross-rack migration
	// bandwidth, locality-aware peer selection, and switch power accounting.
	ScenarioTopology Scenario = "topology"
	// ScenarioRealTrace drives a run from a ClusterData2011-style CSV
	// extract through the trace.LoadCSV pipeline (gzip file, comment
	// header, per-row validation) instead of the in-memory generator.
	ScenarioRealTrace Scenario = "real-trace"
)

// DefaultScenarios lists the suite in report order.
var DefaultScenarios = []Scenario{ScenarioCrashChurn, ScenarioHetero, ScenarioTopology, ScenarioRealTrace}

// ScenarioConfig parameterises the suite.
type ScenarioConfig struct {
	// Sizes are the cluster sizes to sweep (default 40, 80).
	Sizes []int
	// Ratio is the VM:PM ratio (default 2).
	Ratio int
	// Rounds is the consolidation-run length (default 60).
	Rounds int
	// Seed is the master seed (default 1).
	Seed uint64
	// Workers bounds intra-run parallelism (<= 0 auto).
	Workers int
	// GLAP overrides the GLAP configuration. The default shortens
	// pre-training to 120+60 rounds — the suite measures scenario deltas,
	// not absolute Table-I numbers, and pre-trains once per scenario×size
	// cell.
	GLAP glap.Config
	// Scenarios selects the families to run (default DefaultScenarios).
	Scenarios []Scenario
	// PairSharded / SkipQuiescent forward the engine's pair-sharded
	// execution and quiescence-skipping options into every cell (see
	// Experiment); the suite's series hashes are invariant to both.
	PairSharded   bool
	SkipQuiescent bool
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{40, 80}
	}
	if c.Ratio == 0 {
		c.Ratio = 2
	}
	if c.Rounds == 0 {
		c.Rounds = 60
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.GLAP.LearnRounds == 0 {
		c.GLAP.LearnRounds = 120
	}
	if c.GLAP.AggRounds == 0 {
		c.GLAP.AggRounds = 60
	}
	if len(c.Scenarios) == 0 {
		c.Scenarios = DefaultScenarios
	}
	return c
}

// ScenarioRow is one (scenario, size) cell of the suite's report.
type ScenarioRow struct {
	Scenario string `json:"scenario"`
	PMs      int    `json:"pms"`
	VMs      int    `json:"vms"`
	Policy   string `json:"policy"`
	Rounds   int    `json:"rounds"`

	SLAV             float64 `json:"slav"`
	SLAVO            float64 `json:"slavo"`
	SLALM            float64 `json:"slalm"`
	EnergyKWh        float64 `json:"energy_kwh"`
	NetworkEnergyKWh float64 `json:"network_energy_kwh,omitempty"`
	MeanSwitchPowerW float64 `json:"mean_switch_power_w,omitempty"`
	Migrations       int64   `json:"migrations"`
	ActivePMs        int     `json:"active_pms"`
	FailedPlacements int64   `json:"failed_placements"`
	// SeriesHash fingerprints the run's full metrics series bit-exactly;
	// equal hashes across machines witness scenario determinism.
	SeriesHash string `json:"series_hash"`

	// Crash-churn accounting (zero for the other scenarios).
	Crashes              int `json:"crashes,omitempty"`
	Recoveries           int `json:"recoveries,omitempty"`
	Evacuated            int `json:"evacuated,omitempty"`
	Stranded             int `json:"stranded,omitempty"`
	ReservationsReleased int `json:"reservations_released,omitempty"`
	LeakedReservations   int `json:"leaked_reservations,omitempty"`
	// WarmReconvergeRounds / ColdReconvergeRounds are the mean rounds from
	// recovery until a restarted PM's φ^io realigns with the fleet
	// (cosine ≥ 0.9999), under checkpoint warm restart vs cold re-learning.
	// A node still unconverged when the run ends contributes the remaining
	// rounds, so the cold figure is a lower bound.
	WarmReconvergeRounds *float64 `json:"warm_reconverge_rounds,omitempty"`
	ColdReconvergeRounds *float64 `json:"cold_reconverge_rounds,omitempty"`

	// Real-trace provenance (zero for the other scenarios).
	TraceVMs    int `json:"trace_vms,omitempty"`
	TraceRounds int `json:"trace_rounds,omitempty"`
}

// RunScenarios executes the configured suite and returns one row per
// scenario × size, in configuration order.
func RunScenarios(cfg ScenarioConfig) ([]ScenarioRow, error) {
	cfg = cfg.withDefaults()
	var rows []ScenarioRow
	for _, scen := range cfg.Scenarios {
		for si, pms := range cfg.Sizes {
			// Per-size seeds are replication-split from the master so adding
			// a size never perturbs the others.
			seed := sim.ReplicationSeed(cfg.Seed, si)
			var (
				row ScenarioRow
				err error
			)
			switch scen {
			case ScenarioCrashChurn:
				row, err = runCrashScenario(cfg, pms, seed)
			case ScenarioHetero:
				row, err = runHeteroScenario(cfg, pms, seed)
			case ScenarioTopology:
				row, err = runTopologyScenario(cfg, pms, seed)
			case ScenarioRealTrace:
				row, err = runRealTraceScenario(cfg, pms, seed)
			default:
				err = fmt.Errorf("glapsim: unknown scenario %q", scen)
			}
			if err != nil {
				return nil, fmt.Errorf("glapsim: scenario %s at %d PMs: %w", scen, pms, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// baseScenarioExperiment is the shared experiment skeleton of every
// scenario cell; the overlay parameters are pinned like the robustness
// grid's so cells stay comparable across suites.
func baseScenarioExperiment(cfg ScenarioConfig, pms int, seed uint64) Experiment {
	return Experiment{
		PMs: pms, Ratio: cfg.Ratio, Rounds: cfg.Rounds, Seed: seed,
		Workers: cfg.Workers, GLAP: cfg.GLAP,
		CyclonViewSize: 20, CyclonShuffleLen: 8,
		PairSharded: cfg.PairSharded, SkipQuiescent: cfg.SkipQuiescent,
	}
}

// scenarioRow fills the metrics every scenario reports.
func scenarioRow(scen Scenario, x Experiment, series *metrics.Series, c *dc.Cluster) ScenarioRow {
	energy := metrics.TotalEnergyKWh(c)
	return ScenarioRow{
		Scenario:         string(scen),
		PMs:              x.PMs,
		VMs:              x.PMs * x.Ratio,
		Policy:           string(x.Policy),
		Rounds:           x.Rounds,
		SLAV:             series.SLAV,
		SLAVO:            series.SLAVO,
		SLALM:            series.SLALM,
		EnergyKWh:        energy,
		Migrations:       c.Migrations,
		ActivePMs:        c.ActivePMs(),
		FailedPlacements: c.FailedPlacements,
		SeriesHash:       hashScenarioSeries(series, energy),
	}
}

// hashScenarioSeries fingerprints every sample and the final SLA/energy
// floats bit-exactly.
func hashScenarioSeries(s *metrics.Series, energyKWh float64) string {
	h := sha256.New()
	for _, sm := range s.Samples {
		fmt.Fprintf(h, "%d,%d,%d,%d,%x\n",
			sm.Round, sm.ActivePMs, sm.OverloadedPMs, sm.Migrations,
			math.Float64bits(sm.MigrationEnergyJ))
	}
	fmt.Fprintf(h, "%x,%x,%x,%x\n",
		math.Float64bits(s.SLAVO), math.Float64bits(s.SLALM),
		math.Float64bits(s.SLAV), math.Float64bits(energyKWh))
	return hex.EncodeToString(h.Sum(nil))
}

// runHeteroScenario grows the heterogeneous-fleet hash pin into a measured
// scenario: GLAP on the alternating G4/G5 fleet.
func runHeteroScenario(cfg ScenarioConfig, pms int, seed uint64) (ScenarioRow, error) {
	x := baseScenarioExperiment(cfg, pms, seed)
	x.Policy = PolicyGLAP
	x.Heterogeneous = true
	res, err := Run(x)
	if err != nil {
		return ScenarioRow{}, err
	}
	return scenarioRow(ScenarioHetero, x, res.Series, res.Cluster), nil
}

// runTopologyScenario runs the message-passing stack under the three-tier
// topology model: per-path latency, oversubscribed migration bandwidth,
// locality-aware peer selection, and switch power in the energy report.
func runTopologyScenario(cfg ScenarioConfig, pms int, seed uint64) (ScenarioRow, error) {
	x := baseScenarioExperiment(cfg, pms, seed)
	x.Policy = PolicyGLAPAsync
	x.RackSize = 8
	x.RacksPerPod = 2
	x.TopologyAware = true
	x.Net = NetConfig{Latency: 10, TopoLatency: true}
	res, err := Run(x)
	if err != nil {
		return ScenarioRow{}, err
	}
	row := scenarioRow(ScenarioTopology, x, res.Series, res.Cluster)
	row.NetworkEnergyKWh = res.Network.EnergyKWh()
	row.MeanSwitchPowerW = res.Network.MeanPowerW()
	row.LeakedReservations = res.Cluster.OpenReservations()
	return row, nil
}

// runRealTraceScenario exercises the full real-trace pipeline end to end: a
// ClusterData2011-style extract is written as a gzip CSV with a tool-style
// comment header, loaded back through trace.LoadFile/LoadCSV, verified
// against the source, and then drives an ordinary GLAP run. The write→load
// round trip is the point — it runs exactly the code path a real Google
// extract takes.
func runRealTraceScenario(cfg ScenarioConfig, pms int, seed uint64) (ScenarioRow, error) {
	x := baseScenarioExperiment(cfg, pms, seed)
	x.Policy = PolicyGLAP

	// Materialise a bursty-heavy extract (task-usage resamples are batch
	// dominated) with the experiment's trace seed.
	gen := trace.DefaultGenConfig(pms*cfg.Ratio, cfg.Rounds, deriveSeed(seed, seedTrace))
	gen.Mix = map[trace.Archetype]float64{
		trace.Stable: 0.15, trace.Diurnal: 0.15, trace.Periodic: 0.10,
		trace.Bursty: 0.40, trace.Spiky: 0.20,
	}
	src, err := trace.Generate(gen)
	if err != nil {
		return ScenarioRow{}, err
	}

	dir, err := os.MkdirTemp("", "glap-scenario-trace-")
	if err != nil {
		return ScenarioRow{}, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "clusterdata_extract.csv.gz")
	if err := writeExtract(path, src); err != nil {
		return ScenarioRow{}, err
	}
	loaded, err := trace.LoadFile(path)
	if err != nil {
		return ScenarioRow{}, err
	}
	if loaded.NumVMs() != src.NumVMs() || loaded.Rounds() != src.Rounds() {
		return ScenarioRow{}, fmt.Errorf("glapsim: trace round trip changed shape: %d×%d -> %d×%d",
			src.NumVMs(), src.Rounds(), loaded.NumVMs(), loaded.Rounds())
	}

	x.Workload = loaded
	res, err := Run(x)
	if err != nil {
		return ScenarioRow{}, err
	}
	row := scenarioRow(ScenarioRealTrace, x, res.Series, res.Cluster)
	row.TraceVMs = loaded.NumVMs()
	row.TraceRounds = loaded.Rounds()
	return row, nil
}

// writeExtract writes the set as a gzip CSV whose first line is a
// ClusterData-tooling comment instead of the canonical vm,round,cpu,mem
// header — the single-field first line real extracts carry, which the
// loader must tolerate.
func writeExtract(path string, s *trace.Set) error {
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, s); err != nil {
		return err
	}
	body := buf.Bytes()
	if i := bytes.IndexByte(body, '\n'); i >= 0 {
		body = body[i+1:] // replace the canonical header with the comment line
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	zw := gzip.NewWriter(f)
	if _, err := fmt.Fprintln(zw, "# google-clusterdata-2011 task_usage extract (resampled to 120 s rounds)"); err != nil {
		f.Close()
		return err
	}
	if _, err := zw.Write(body); err != nil {
		f.Close()
		return err
	}
	if err := zw.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Crash-churn scenario parameters.
const (
	// crashMTTR is the rounds a crashed PM stays down before recovering.
	crashMTTR = 8
	// tableGossipEvery is the cadence of the full-table anti-entropy
	// exchange. Whole Q-tables are the heaviest payload in the system, so
	// they gossip at a low cadence — which is exactly what makes cold
	// restarts wait, and warm restarts worth measuring.
	tableGossipEvery = 4
	// reconvergeCosine is the φ^io alignment at which a restarted PM counts
	// as reconverged with the fleet.
	reconvergeCosine = 0.9999
)

// runCrashScenario pre-trains once, generates one fault schedule, and plays
// it against two otherwise identical runs: warm (recovered PMs restore
// their checkpointed Q-tables) and cold (recovered PMs restart empty and
// wait for table gossip). The reported metrics come from the warm run; both
// reconvergence figures ride on the row.
func runCrashScenario(cfg ScenarioConfig, pms int, seed uint64) (ScenarioRow, error) {
	x := baseScenarioExperiment(cfg, pms, seed)
	x.Policy = PolicyGLAPAsync
	x.Net = NetConfig{Latency: 30, DropProb: 0.05}
	if err := x.Validate(); err != nil {
		return ScenarioRow{}, err
	}
	w, err := workloadFor(x)
	if err != nil {
		return ScenarioRow{}, err
	}
	pre, err := buildCluster(x, w)
	if err != nil {
		return ScenarioRow{}, err
	}
	opts := x.Pretrain
	if opts.CyclonViewSize == 0 {
		opts.CyclonViewSize = x.CyclonViewSize
	}
	if opts.CyclonShuffleLen == 0 {
		opts.CyclonShuffleLen = x.CyclonShuffleLen
	}
	if opts.Workers == 0 {
		opts.Workers = x.Workers
	}
	pretrain, err := glap.Pretrain(x.GLAP, pre, deriveSeed(x.Seed, seedPretrain), opts)
	if err != nil {
		return ScenarioRow{}, err
	}
	shared, err := glap.SharedTables(pretrain)
	if err != nil {
		return ScenarioRow{}, err
	}

	crashes := pms / 10
	if crashes < 1 {
		crashes = 1
	}
	plan := sim.GenerateFaults(sim.NewRNG(deriveSeed(x.Seed, seedFaults)), pms, x.Rounds, crashes, crashMTTR)

	warm, err := runCrashVariant(x, w, shared, plan, true, nil)
	if err != nil {
		return ScenarioRow{}, err
	}
	cold, err := runCrashVariant(x, w, shared, plan, false, nil)
	if err != nil {
		return ScenarioRow{}, err
	}

	row := scenarioRow(ScenarioCrashChurn, x, warm.series, warm.c)
	row.Crashes = warm.crashes
	row.Recoveries = warm.recoveries
	row.Evacuated = warm.evacuated
	row.Stranded = warm.stranded
	row.ReservationsReleased = warm.released
	row.LeakedReservations = warm.leaked
	if m, ok := meanOf(warm.reconverge); ok {
		row.WarmReconvergeRounds = &m
	}
	if m, ok := meanOf(cold.reconverge); ok {
		row.ColdReconvergeRounds = &m
	}
	return row, nil
}

func meanOf(xs []float64) (float64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs)), true
}

// crashOutcome is one crash-variant run's raw result.
type crashOutcome struct {
	series *metrics.Series
	c      *dc.Cluster

	crashes, recoveries int
	evacuated, stranded int
	released, leaked    int
	// reconverge holds, per recovery in node order, the rounds from
	// recovery to φ^io realignment; still-unconverged nodes contribute the
	// remaining run length (a lower bound).
	reconverge []float64
}

// runCrashVariant plays one fault schedule against a freshly prepared async
// stack. Unlike the shared-table runs, every node owns a Clone of the
// pre-trained store — a crash must be able to destroy one machine's
// (volatile) tables without touching the rest of the fleet. A low-cadence
// table-gossip protocol provides the re-acquisition channel cold restarts
// depend on. The check hook, when non-nil, runs at the end of every round;
// the failure-injection tests use it to assert cluster invariants under
// churn.
func runCrashVariant(x Experiment, w *trace.Set, shared *glap.NodeTables, plan sim.FaultPlan, warm bool, check func(c *dc.Cluster, e *sim.Engine, round int) error) (*crashOutcome, error) {
	c, e, ctx, err := prepareStack(x, w, shared)
	if err != nil {
		return nil, err
	}
	cons := ctx.Artifacts.AsyncConsolidate
	if cons == nil {
		return nil, fmt.Errorf("glapsim: crash scenario requires the async GLAP stack")
	}

	tabs := make([]*glap.NodeTables, x.PMs)
	for i := range tabs {
		tabs[i] = shared.Clone()
	}
	cons.Tables = func(e *sim.Engine, n *sim.Node) *glap.NodeTables { return tabs[n.ID] }
	e.RegisterEvery(&tableGossipProtocol{tabs: tabs, drop: x.Net.DropProb}, tableGossipEvery)

	out := &crashOutcome{c: c}
	refVec := append([]float64(nil), shared.IOVec()...)
	checkpoints := map[int][]byte{}
	crashed := map[int]bool{}
	// redirect maps a planned victim to the machine the crash actually hit:
	// the consolidation policy powers emptied PMs off ahead of the fault
	// schedule, and a fault that lands on a dark machine exercises nothing.
	redirect := map[int]int{}
	recoveredAt := map[int]int{}
	reconvergedAt := map[int]int{}
	var runErr error

	plan.Install(e, func(e *sim.Engine, ev sim.FaultEvent) {
		if runErr != nil {
			return
		}
		if !ev.Up {
			victim := ev.Node
			if !c.PMs[victim].On() {
				// The policy already powered the planned victim off
				// gracefully — a crash there would exercise nothing.
				// Redirect the fault to the lowest-numbered live machine;
				// crashed PMs are off, so they cannot be picked twice.
				victim = -1
				for id := range c.PMs {
					if c.PMs[id].On() {
						victim = id
						break
					}
				}
				if victim < 0 {
					return // the whole fleet is dark; drop the event
				}
			}
			redirect[ev.Node] = victim
			crashed[victim] = true
			if warm {
				cp, err := glap.CheckpointTables(tabs[victim])
				if err != nil {
					runErr = err
					return
				}
				checkpoints[victim] = cp
			}
			rep, err := c.CrashPM(c.PMs[victim])
			if err != nil {
				runErr = err
				return
			}
			e.SetUp(e.Node(victim), false)
			// Volatile memory is gone; what the node comes back with is the
			// recovery path's decision below.
			tabs[victim] = glap.NewNodeTables(x.GLAP)
			out.crashes++
			out.evacuated += rep.Evacuated
			out.stranded += rep.Stranded
			out.released += rep.ReservationsReleased
		} else {
			victim, ok := redirect[ev.Node]
			if !ok {
				return // the crash was dropped, so is the recovery
			}
			delete(redirect, ev.Node)
			delete(crashed, victim)
			if err := c.RecoverPM(c.PMs[victim]); err != nil {
				runErr = err
				return
			}
			e.SetUp(e.Node(victim), true)
			if warm {
				restored, err := glap.RestoreTables(checkpoints[victim])
				if err != nil {
					runErr = err
					return
				}
				// The warm-restart contract: re-checkpointing the restored
				// store must reproduce the snapshot byte for byte.
				again, err := glap.CheckpointTables(restored)
				if err != nil {
					runErr = err
					return
				}
				if !bytes.Equal(checkpoints[victim], again) {
					runErr = fmt.Errorf("glapsim: warm restart of PM %d is not byte-identical to its checkpoint", victim)
					return
				}
				tabs[victim] = restored
			}
			recoveredAt[victim] = e.Round()
			out.recoveries++
		}
	})

	e.Observe(func(e *sim.Engine, r int) {
		if runErr != nil {
			return
		}
		ids := make([]int, 0, len(recoveredAt))
		for id := range recoveredAt {
			if _, done := reconvergedAt[id]; !done {
				ids = append(ids, id)
			}
		}
		sort.Ints(ids)
		for _, id := range ids {
			if stats.CosineAligned(tabs[id].IOVec(), refVec) >= reconvergeCosine {
				reconvergedAt[id] = r
			}
		}
		if check != nil {
			if err := check(c, e, r); err != nil {
				runErr = err
			}
		}
	})

	series := metrics.Attach(e, c, 0)
	e.RunRounds(x.Rounds)
	e.RunEvents(-1)
	if runErr != nil {
		return nil, runErr
	}
	series.Finalize(c)
	out.series = series
	out.leaked = c.OpenReservations()

	ids := make([]int, 0, len(recoveredAt))
	for id := range recoveredAt {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if r, ok := reconvergedAt[id]; ok {
			out.reconverge = append(out.reconverge, float64(r-recoveredAt[id]))
		} else {
			out.reconverge = append(out.reconverge, float64(x.Rounds-recoveredAt[id]))
		}
	}
	return out, nil
}

// tableGossipProtocol is the anti-entropy channel for whole Q stores: each
// up node merges tables with one sampled peer per cadence round, subject to
// the run's message-loss probability. In steady state every exchange is a
// no-op (the fleet shares one converged store); its purpose is to re-seed a
// cold-restarted node's empty tables.
type tableGossipProtocol struct {
	tabs []*glap.NodeTables
	drop float64
	rng  sim.BoundRNG
}

// Name implements sim.Protocol.
func (g *tableGossipProtocol) Name() string { return "scenario-table-gossip" }

// Setup implements sim.Protocol; the protocol has no per-node state.
func (g *tableGossipProtocol) Setup(e *sim.Engine, n *sim.Node) any { return struct{}{} }

// Round implements one push-pull table exchange.
func (g *tableGossipProtocol) Round(e *sim.Engine, n *sim.Node, round int) {
	rng := g.rng.For(e, 0x7ab1e5)
	peer := gossip.CyclonSelector(e, n, rng)
	if peer < 0 {
		return
	}
	if g.drop > 0 && rng.Bernoulli(g.drop) {
		return // exchange lost in flight
	}
	glap.MergeTables(g.tabs[n.ID], g.tabs[peer])
}
