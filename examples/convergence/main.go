// Command convergence reproduces the shape of Figure 5 at laptop scale: it
// pre-trains GLAP's two-phase gossip learning protocol on a cluster and
// prints how the cosine similarity of the PMs' Q-tables evolves — staying
// well below 1 through the local learning phase (WOG) and then snapping to 1
// once the aggregation gossip (WG) starts, which is the paper's evidence
// that the aggregation phase is what gives all PMs identical Q-values.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	glapsim "github.com/glap-sim/glap"
	"github.com/glap-sim/glap/internal/glap"
)

func main() {
	pms := flag.Int("pms", 120, "number of physical machines")
	every := flag.Int("every", 10, "measure similarity every N rounds")
	seed := flag.Uint64("seed", 5, "experiment seed")
	flag.Parse()

	cfg := glap.Config{LearnRounds: 120, AggRounds: 60}
	res, err := glapsim.RunConvergence(*pms, []int{2, 3, 4}, cfg, *seed, *every)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Q-value convergence, %d PMs (learning rounds 0-%d, aggregation after)\n\n",
		*pms, res[0].AggStart-1)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "round\tphase\tratio2\tratio3\tratio4")
	for i, round := range res[0].Rounds {
		phase := "learning (WOG)"
		if round >= res[0].AggStart {
			phase = "aggregation (WG)"
		}
		fmt.Fprintf(w, "%d\t%s", round, phase)
		for _, r := range res {
			fmt.Fprintf(w, "\t%.4f", r.Cosine[i])
		}
		fmt.Fprintln(w)
		_ = i
	}
	w.Flush()

	for _, r := range res {
		final := r.Cosine[len(r.Cosine)-1]
		if final < 0.99 {
			fmt.Printf("\nWARNING: ratio %d did not fully converge (%.4f)\n", r.Ratio, final)
		}
	}
	fmt.Println("\nAll PMs hold identical Q-tables once the aggregation phase completes.")
}
