// Command quickstart is the smallest end-to-end GLAP run: a 100-PM cluster
// with a 2:1 VM:PM ratio driven by a synthetic Google-cluster-style
// workload for 240 rounds (8 simulated hours), printing the consolidation
// outcome and SLA metrics.
package main

import (
	"fmt"
	"log"

	glapsim "github.com/glap-sim/glap"
)

func main() {
	cfg := glapsim.Experiment{
		PMs:    100,
		Ratio:  2,
		Rounds: 240,
		Seed:   42,
		Policy: glapsim.PolicyGLAP,
	}
	res, err := glapsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	last, _ := res.Series.Last()
	fmt.Println("GLAP quickstart — 100 PMs, 200 VMs, 240 rounds")
	fmt.Printf("  pre-training convergence (cosine): %.4f\n", res.Pretrain.FinalSimilarity())
	fmt.Printf("  active PMs at end:                 %d (BFD oracle: %d)\n", last.ActivePMs, res.BFDBaseline)
	fmt.Printf("  overloaded PMs at end:             %d\n", last.OverloadedPMs)
	fmt.Printf("  total migrations:                  %d\n", last.Migrations)
	fmt.Printf("  migration energy overhead:         %.1f kJ\n", last.MigrationEnergyJ/1000)
	fmt.Printf("  SLAVO=%.6f  SLALM=%.6f  SLAV=%.8f\n",
		res.Series.SLAVO, res.Series.SLALM, res.Series.SLAV)
}
