// Command quickstart is the smallest end-to-end GLAP run: by default a
// 100-PM cluster with a 2:1 VM:PM ratio driven by a synthetic
// Google-cluster-style workload for 240 rounds (8 simulated hours),
// printing the consolidation outcome and SLA metrics. The cluster shape is
// flag-tunable so CI can smoke-run a small instance.
package main

import (
	"flag"
	"fmt"
	"log"

	glapsim "github.com/glap-sim/glap"
)

func main() {
	pms := flag.Int("pms", 100, "number of physical machines")
	ratio := flag.Int("ratio", 2, "VM:PM ratio")
	rounds := flag.Int("rounds", 240, "consolidation rounds (2 simulated minutes each)")
	seed := flag.Uint64("seed", 42, "master seed")
	flag.Parse()

	cfg := glapsim.Experiment{
		PMs:    *pms,
		Ratio:  *ratio,
		Rounds: *rounds,
		Seed:   *seed,
		Policy: glapsim.PolicyGLAP,
	}
	res, err := glapsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	last, _ := res.Series.Last()
	fmt.Printf("GLAP quickstart — %d PMs, %d VMs, %d rounds\n", cfg.PMs, cfg.PMs*cfg.Ratio, cfg.Rounds)
	fmt.Printf("  pre-training convergence (cosine): %.4f\n", res.Pretrain.FinalSimilarity())
	fmt.Printf("  active PMs at end:                 %d (BFD oracle: %d)\n", last.ActivePMs, res.BFDBaseline)
	fmt.Printf("  overloaded PMs at end:             %d\n", last.OverloadedPMs)
	fmt.Printf("  total migrations:                  %d\n", last.Migrations)
	fmt.Printf("  migration energy overhead:         %.1f kJ\n", last.MigrationEnergyJ/1000)
	fmt.Printf("  SLAVO=%.6f  SLALM=%.6f  SLAV=%.8f\n",
		res.Series.SLAVO, res.Series.SLALM, res.Series.SLAV)
}
