// Command energy walks through the migration energy accounting of Figure 10
// (Equation 3, after Strunk & Dargie): it runs one GLAP simulation with
// per-migration logging enabled and breaks the energy overhead down by
// migration duration and VM memory footprint, alongside the cluster's
// baseline energy consumption — showing why fewer, smaller migrations (not
// just fewer migrations) minimise overhead.
package main

import (
	"flag"
	"fmt"
	"log"

	glapsim "github.com/glap-sim/glap"
	"github.com/glap-sim/glap/internal/stats"
)

func main() {
	pms := flag.Int("pms", 100, "number of physical machines")
	ratio := flag.Int("ratio", 3, "VM:PM ratio")
	rounds := flag.Int("rounds", 240, "number of rounds")
	seed := flag.Uint64("seed", 9, "experiment seed")
	flag.Parse()

	res, err := glapsim.Run(glapsim.Experiment{
		PMs: *pms, Ratio: *ratio, Rounds: *rounds, Seed: *seed,
		Policy: glapsim.PolicyGLAP, LogMigrations: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	mlog := res.Cluster.MigrationLog()
	fmt.Printf("energy accounting — %d PMs, %d VMs, %d rounds, %d migrations\n\n",
		*pms, *pms**ratio, *rounds, len(mlog))

	var durations, energies []float64
	var total float64
	for _, m := range mlog {
		durations = append(durations, m.Seconds)
		energies = append(energies, m.EnergyJ)
		total += m.EnergyJ
	}
	ds := stats.Summarize(durations)
	es := stats.Summarize(energies)
	fmt.Printf("migration duration (s):   median=%.3f p10=%.3f p90=%.3f\n", ds.Median, ds.P10, ds.P90)
	fmt.Printf("per-migration energy (J): median=%.2f p10=%.2f p90=%.2f\n", es.Median, es.P10, es.P90)
	fmt.Printf("total migration overhead: %.1f kJ\n", total/1000)

	var baseline float64
	for _, pm := range res.Cluster.PMs {
		baseline += pm.EnergyJ()
	}
	fmt.Printf("baseline (servers) energy: %.1f kJ\n", baseline/1000)
	fmt.Printf("overhead share:            %.4f%%\n", 100*total/baseline)

	// The paper's Section V-C-6 observation: more migrations do not always
	// mean more energy — duration (memory footprint) matters.
	fmt.Println("\nbusiest migration rounds:")
	perRound := map[int]float64{}
	for _, m := range mlog {
		perRound[m.Round] += m.EnergyJ
	}
	best, bestE := -1, 0.0
	for r, e := range perRound {
		if e > bestE {
			best, bestE = r, e
		}
	}
	if best >= 0 {
		fmt.Printf("  round %d: %.1f J across migrations\n", best, bestE)
	}
}
