// Command continuous runs GLAP in the paper's continuous deployment
// (Section IV-B): the two-phase learning protocol re-runs on a fixed
// interval while the consolidation component keeps operating on the
// previous Q-values — and the VM population churns (arrivals and
// departures), which is exactly the condition under which periodic
// re-learning pays off.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/glap"
	"github.com/glap-sim/glap/internal/metrics"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/trace"
)

func main() {
	pms := flag.Int("pms", 80, "number of physical machines")
	ratio := flag.Int("ratio", 3, "VM:PM ratio")
	rounds := flag.Int("rounds", 400, "total rounds")
	relearn := flag.Int("relearn", 150, "re-learning interval in rounds")
	churn := flag.Float64("churn", 0.3, "fraction of VMs with dynamic lifecycles")
	seed := flag.Uint64("seed", 21, "experiment seed")
	flag.Parse()

	vms := *pms * *ratio
	set, err := trace.Generate(trace.DefaultGenConfig(vms, *rounds, *seed))
	if err != nil {
		log.Fatal(err)
	}
	cl, err := dc.New(dc.Config{PMs: *pms, Workload: set})
	if err != nil {
		log.Fatal(err)
	}
	// Churn: a fraction of VMs arrives mid-run and may depart early.
	rng := sim.NewRNG(*seed)
	churned := 0
	for _, vm := range cl.VMs {
		if !rng.Bernoulli(*churn) {
			continue
		}
		arrive := 1 + rng.Intn(*rounds/2)
		depart := -1
		if rng.Bool() {
			depart = arrive + 1 + rng.Intn(*rounds-arrive)
		}
		if err := cl.SetLifecycle(vm.ID, arrive, depart); err != nil {
			log.Fatal(err)
		}
		churned++
	}
	cl.PlaceRandom(rng.Derive(2).Intn)

	e := sim.NewEngine(*pms, *seed)
	b, err := policy.Bind(e, cl)
	if err != nil {
		log.Fatal(err)
	}
	cfg := glap.Config{LearnRounds: 60, AggRounds: 30}
	if _, err := glap.InstallContinuous(e, b, cfg, *relearn, glap.PretrainOptions{}); err != nil {
		log.Fatal(err)
	}
	series := metrics.Attach(e, cl, 0)
	e.RunRounds(*rounds)
	series.Finalize(cl)

	fmt.Printf("continuous GLAP — %d PMs, %d VMs (%d churned), %d rounds, re-learning every %d\n\n",
		*pms, vms, churned, *rounds, *relearn)
	fmt.Println("round  active_pms  overloaded  cum_migrations")
	for i, s := range series.Samples {
		if (i+1)%40 != 0 {
			continue
		}
		fmt.Printf("%5d  %10d  %10d  %14d\n",
			s.Round, s.ActivePMs, s.OverloadedPMs, s.Migrations)
	}
	fmt.Printf("\nfinal: present VMs=%d active PMs=%d  SLAV=%.3g  energy=%.1f kWh\n",
		cl.PresentVMs(), cl.ActivePMs(), series.SLAV, metrics.TotalEnergyKWh(cl))
}
