// Command comparison runs the four consolidation policies of the paper's
// evaluation — GLAP, EcoCloud, GRMP and PABFD — on one identically
// configured cluster and prints a head-to-head table of the headline
// metrics (active/overloaded PMs, migrations, SLAV, migration energy),
// reproducing the shape of Figures 6-8 and Table I on a laptop-scale setup.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	glapsim "github.com/glap-sim/glap"
)

func main() {
	pms := flag.Int("pms", 100, "number of physical machines")
	ratio := flag.Int("ratio", 3, "VM:PM ratio")
	rounds := flag.Int("rounds", 240, "consolidation rounds (2 min each)")
	seed := flag.Uint64("seed", 7, "experiment seed")
	flag.Parse()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Printf("policy comparison — %d PMs, %d VMs, %d rounds\n\n", *pms, *pms**ratio, *rounds)
	fmt.Fprintln(w, "policy\tactive\toverl.(mean)\tmigrations\tenergy(kJ)\tSLAV")

	for _, p := range glapsim.Policies {
		res, err := glapsim.Run(glapsim.Experiment{
			PMs: *pms, Ratio: *ratio, Rounds: *rounds, Seed: *seed, Policy: p,
		})
		if err != nil {
			log.Fatalf("%s: %v", p, err)
		}
		last, _ := res.Series.Last()
		over := mean(res.Series.OverloadedPerRound())
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%d\t%.1f\t%.2e\n",
			p, last.ActivePMs, over, last.Migrations,
			last.MigrationEnergyJ/1000, res.Series.SLAV)
	}
	w.Flush()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
