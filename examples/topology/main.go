// Command topology demonstrates the paper's future-work extension: making
// GLAP aware of the data center network so that emptied racks let their
// switches sleep. It runs GLAP twice on the same cluster — once with the
// standard uniform gossip partner selection and once with locality-aware
// selection (same rack, then same pod, then anywhere) — and compares switch
// energy, migration energy, and the consolidation quality metrics.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	glapsim "github.com/glap-sim/glap"
)

func main() {
	pms := flag.Int("pms", 96, "number of physical machines")
	rack := flag.Int("rack", 8, "PMs per rack")
	pod := flag.Int("pod", 3, "racks per pod")
	ratio := flag.Int("ratio", 3, "VM:PM ratio")
	rounds := flag.Int("rounds", 240, "consolidation rounds")
	seed := flag.Uint64("seed", 17, "experiment seed")
	flag.Parse()

	base := glapsim.Experiment{
		PMs: *pms, Ratio: *ratio, Rounds: *rounds, Seed: *seed,
		Policy: glapsim.PolicyGLAP, RackSize: *rack, RacksPerPod: *pod,
	}

	fmt.Printf("topology-aware GLAP — %d PMs in %d-PM racks, %d VMs, %d rounds\n\n",
		*pms, *rack, *pms**ratio, *rounds)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\tactive\toverl.(mean)\tmigr.\tmigr. kJ\tswitch kJ\tedge switches (mean)")

	for _, aware := range []bool{false, true} {
		x := base
		x.TopologyAware = aware
		res, err := glapsim.Run(x)
		if err != nil {
			log.Fatal(err)
		}
		name := "uniform gossip"
		if aware {
			name = "locality-aware"
		}
		last, _ := res.Series.Last()
		over := mean(res.Series.OverloadedPerRound())
		edges := 0.0
		for _, e := range res.Network.ActiveEdge {
			edges += float64(e)
		}
		edges /= float64(len(res.Network.ActiveEdge))
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%d\t%.2f\t%.1f\t%.1f\n",
			name, last.ActivePMs, over, last.Migrations,
			last.MigrationEnergyJ/1000, res.Network.EnergyJ/1000, edges)
	}
	w.Flush()
	fmt.Println("\nLocality-aware selection drains whole racks, so edge switches sleep and")
	fmt.Println("cross-rack (oversubscribed, slow) migrations are avoided.")
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
