package glapsim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"
)

// goldenExperiment is the fixed small-scale GLAP run whose Series metrics
// are pinned byte-for-byte. Any change to the learning kernel, the merge
// arithmetic, or the RNG wiring that alters simulation behaviour — however
// slightly — changes the fingerprint.
func goldenExperiment() Experiment {
	return Experiment{
		PMs: 20, Ratio: 2, Rounds: 40, Seed: 7, Policy: PolicyGLAP,
		GLAP: fastGLAP(),
	}
}

// goldenSeriesHash is the SHA-256 of the golden run's serialised Series.
// Re-pinned when the learning phase moved from one shared random stream to
// per-node streams (a prerequisite of the parallel ParallelRound pass; the
// shared stream's draws depended on node visit order, which a fork-join
// cannot reproduce). The companion invariant is TestWorkerCountDifferential:
// this fingerprint is identical for every Workers setting.
// Regenerate with GLAP_GOLDEN_UPDATE=1 go test -run TestGoldenDeterminism -v .
const goldenSeriesHash = "97f442cd66becde70529a5a796fcb32866e5dabc586f4a54b83190e8a039dec8"

// serializeSeries renders every snapshot and the final SLA metrics with
// exact bit-level float encoding, so the fingerprint admits no rounding
// slack.
func serializeSeries(res *Result) string {
	var b strings.Builder
	for _, s := range res.Series.Samples {
		fmt.Fprintf(&b, "r=%d active=%d over=%d migr=%d energy=%016x\n",
			s.Round, s.ActivePMs, s.OverloadedPMs, s.Migrations,
			math.Float64bits(s.MigrationEnergyJ))
	}
	fmt.Fprintf(&b, "slavo=%016x slalm=%016x slav=%016x\n",
		math.Float64bits(res.Series.SLAVO),
		math.Float64bits(res.Series.SLALM),
		math.Float64bits(res.Series.SLAV))
	return b.String()
}

// TestGoldenDeterminism pins seed-for-seed simulation output across kernel
// rewrites: the dense Q-table backend must reproduce the sparse backend's
// Series exactly.
func TestGoldenDeterminism(t *testing.T) {
	res, err := Run(goldenExperiment())
	if err != nil {
		t.Fatal(err)
	}
	dump := serializeSeries(res)
	sum := sha256.Sum256([]byte(dump))
	got := hex.EncodeToString(sum[:])
	if os.Getenv("GLAP_GOLDEN_UPDATE") != "" {
		t.Logf("golden series dump:\n%s", dump)
		t.Logf("goldenSeriesHash = %q", got)
		return
	}
	if got != goldenSeriesHash {
		t.Fatalf("golden Series fingerprint changed:\n got %s\nwant %s\nserialised series:\n%s",
			got, goldenSeriesHash, dump)
	}
}
