package glapsim

// Tests and benchmarks for the two future-work extensions the paper's
// conclusion announces: evaluation under bursty workload patterns, and
// network-topology awareness that lets emptied racks switch off their
// network switches.

import (
	"testing"

	"github.com/glap-sim/glap/internal/stats"
	"github.com/glap-sim/glap/internal/trace"
)

// burstyTraceConfig returns a generator calibration dominated by bursty and
// spiky VMs — the "bursty workload patterns" regime of the paper's future
// work.
func burstyTraceConfig() *trace.GenConfig {
	cfg := trace.DefaultGenConfig(0, 0, 0) // sizes filled by the facade
	cfg.Mix = map[trace.Archetype]float64{
		trace.Stable: 0.05, trace.Diurnal: 0.10, trace.Periodic: 0.05,
		trace.Bursty: 0.50, trace.Spiky: 0.30,
	}
	return &cfg
}

func TestTopologyExperimentEndToEnd(t *testing.T) {
	x := smallExperiment(PolicyGLAP)
	x.PMs = 24
	x.RackSize = 4
	x.RacksPerPod = 3
	x.TopologyAware = true
	res, err := Run(x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Network == nil {
		t.Fatal("topology run must report network series")
	}
	if len(res.Network.SwitchPowerW) != x.Rounds {
		t.Fatalf("network series has %d samples", len(res.Network.SwitchPowerW))
	}
	if res.Network.EnergyJ <= 0 {
		t.Fatal("network energy not accumulated")
	}
	if res.Network.MeanPowerW() <= 0 {
		t.Fatal("mean network power not positive")
	}
	if err := res.Cluster.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyValidation(t *testing.T) {
	x := smallExperiment(PolicyGLAP)
	x.TopologyAware = true // without RackSize
	if err := x.Validate(); err == nil {
		t.Fatal("TopologyAware without RackSize should fail validation")
	}
	x.RackSize = -1
	if err := x.Validate(); err == nil {
		t.Fatal("negative RackSize should fail validation")
	}
}

func TestTopologyAwareReducesSwitchEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("comparative run in -short mode")
	}
	base := smallExperiment(PolicyGLAP)
	base.PMs = 36
	base.Ratio = 3
	base.Rounds = 60
	base.RackSize = 6
	base.RacksPerPod = 3

	uniform := base
	aware := base
	aware.TopologyAware = true

	ru, err := Run(uniform)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Run(aware)
	if err != nil {
		t.Fatal(err)
	}
	// Whole-run energy includes the pre-consolidation transient, so the
	// meaningful comparison is the steady state: mean active edge switches
	// over the final quarter of the run. The locality extension must not
	// leave more racks powered than uniform gossip there.
	tail := func(xs []int) float64 {
		q := xs[3*len(xs)/4:]
		sum := 0.0
		for _, x := range q {
			sum += float64(x)
		}
		return sum / float64(len(q))
	}
	eu, ea := tail(ru.Network.ActiveEdge), tail(ra.Network.ActiveEdge)
	if ea > eu {
		t.Fatalf("topology-aware keeps %.1f edge switches up vs uniform %.1f", ea, eu)
	}
}

func TestBurstyWorkloadExperiment(t *testing.T) {
	x := smallExperiment(PolicyGLAP)
	x.TraceConfig = burstyTraceConfig()
	res, err := Run(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Cluster.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The trace override must actually be in force: the cluster's workload
	// should be dominated by bursty/spiky VMs.
	w := res.Cluster.Workload()
	bursty := 0
	for vm := 0; vm < w.NumVMs(); vm++ {
		a := w.ArchetypeOf(vm)
		if a == trace.Bursty || a == trace.Spiky {
			bursty++
		}
	}
	if frac := float64(bursty) / float64(w.NumVMs()); frac < 0.6 {
		t.Fatalf("bursty+spiky fraction %g, want >= 0.6", frac)
	}
}

// BenchmarkExtensionTopologyAware compares uniform and locality-aware GLAP
// under the three-tier network model, reporting switch and migration energy.
func BenchmarkExtensionTopologyAware(b *testing.B) {
	for _, aware := range []bool{false, true} {
		aware := aware
		name := "uniform"
		if aware {
			name = "locality-aware"
		}
		b.Run(name, func(b *testing.B) {
			var switchKJ, migKJ, edges float64
			for i := 0; i < b.N; i++ {
				x := benchExperiment(PolicyGLAP, uint64(i+1))
				x.RackSize = 8
				x.RacksPerPod = 3
				x.TopologyAware = aware
				res, err := Run(x)
				if err != nil {
					b.Fatal(err)
				}
				switchKJ = res.Network.EnergyJ / 1000
				last, _ := res.Series.Last()
				migKJ = last.MigrationEnergyJ / 1000
				sum := 0.0
				for _, e := range res.Network.ActiveEdge {
					sum += float64(e)
				}
				edges = sum / float64(len(res.Network.ActiveEdge))
			}
			b.ReportMetric(switchKJ, "switch-kJ")
			b.ReportMetric(migKJ, "migration-kJ")
			b.ReportMetric(edges, "edge-switches")
		})
	}
}

// BenchmarkExtensionBurstyWorkload evaluates GLAP against GRMP under the
// bursty-dominated workload regime of the paper's future work, reporting the
// overload rate each sustains.
func BenchmarkExtensionBurstyWorkload(b *testing.B) {
	for _, p := range []Policy{PolicyGLAP, PolicyGRMP, PolicyEcoCloud} {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var over float64
			for i := 0; i < b.N; i++ {
				x := benchExperiment(p, uint64(i+1))
				x.TraceConfig = burstyTraceConfig()
				res, err := Run(x)
				if err != nil {
					b.Fatal(err)
				}
				over = stats.Mean(res.Series.OverloadedPerRound())
			}
			b.ReportMetric(over, "overloaded-PMs/round")
		})
	}
}
