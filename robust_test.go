package glapsim

import (
	"math"
	"testing"
)

// TestRobustGridEquivalenceAndLeaks runs a small loss × latency grid and
// checks the two acceptance gates of the message-passing protocol: at zero
// loss and unit latency the async packing matches the synchronous reference
// within tolerance, and no cell — including 20% loss — leaks reservations
// once the run drains.
func TestRobustGridEquivalenceAndLeaks(t *testing.T) {
	cfg := RobustConfig{
		PMs: 20, Ratio: 2, Rounds: 30, Reps: 2, Seed: 7,
		DropProbs: []float64{0, 0.2},
		Latencies: []int64{1, 30},
	}
	res, err := RunRobust(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("%d cells, want 4", len(res.Cells))
	}

	// Cell 0 is DropProb 0, latency 1: the equivalence point.
	ideal := res.Cells[0]
	if ideal.Cell.DropProb != 0 || ideal.Cell.Latency != 1 {
		t.Fatalf("unexpected cell order: first cell is %s", ideal.Cell)
	}
	if diff := math.Abs(ideal.Active.Mean - res.SyncActive.Mean); diff > 4 {
		t.Fatalf("async active %.1f vs sync %.1f: difference %.1f exceeds tolerance",
			ideal.Active.Mean, res.SyncActive.Mean, diff)
	}
	if ideal.Active.Mean >= float64(cfg.PMs) {
		t.Fatalf("async protocol did not consolidate: %.1f PMs active", ideal.Active.Mean)
	}
	if ideal.Commits == 0 {
		t.Fatal("no migrations committed through the message path")
	}

	sawLoss := false
	for _, cell := range res.Cells {
		if cell.LeakedReservations != 0 {
			t.Fatalf("cell %s leaked %d reservations", cell.Cell, cell.LeakedReservations)
		}
		if cell.Sent != cell.Delivered+cell.Dropped {
			t.Fatalf("cell %s: transport counters unbalanced: sent=%d delivered=%d dropped=%d",
				cell.Cell, cell.Sent, cell.Delivered, cell.Dropped)
		}
		if cell.Cell.DropProb > 0 && cell.Dropped > 0 {
			sawLoss = true
		}
	}
	if !sawLoss {
		t.Fatal("loss injection never fired in the lossy cells")
	}
}

// TestRobustDefaults pins the zero-value config fill-in.
func TestRobustDefaults(t *testing.T) {
	cfg := RobustConfig{}.withDefaults()
	if cfg.PMs == 0 || cfg.Ratio == 0 || cfg.Rounds == 0 || cfg.Reps == 0 || cfg.Seed == 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
	if len(cfg.DropProbs) == 0 || len(cfg.Latencies) == 0 {
		t.Fatalf("grid defaults not filled: %+v", cfg)
	}
}
