package glapsim

import (
	"github.com/glap-sim/glap/internal/baselines/bfd"
	"github.com/glap-sim/glap/internal/baselines/ecocloud"
	"github.com/glap-sim/glap/internal/baselines/grmp"
	"github.com/glap-sim/glap/internal/baselines/pabfd"
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/glap"
	"github.com/glap-sim/glap/internal/sim"
)

// This file holds the built-in policy-stack registrations. It is the only
// facade file that imports the baseline packages: glapsim.go and robust.go
// reach every policy through the registry.

func init() {
	RegisterPolicy(PolicyGLAP, PolicySpec{Overlay: true, Pretrain: true, Build: buildGLAP})
	RegisterPolicy(PolicyGLAPAsync, PolicySpec{Overlay: true, Pretrain: true, Drain: true, Build: buildGLAPAsync})
	RegisterPolicy(PolicyGRMP, PolicySpec{Overlay: true, Build: buildGRMP})
	RegisterPolicy(PolicyEcoCloud, PolicySpec{Overlay: true, Build: buildEcoCloud})
	RegisterPolicy(PolicyPABFD, PolicySpec{Build: buildPABFD})
	RegisterPolicy(PolicyNone, PolicySpec{Build: buildNone})
}

// buildGLAP installs the cycle-driven GLAP consolidation stack (Algorithm 3
// over the simulator's synchronous push-pull shortcut).
func buildGLAP(ctx *StackContext) error {
	shared := ctx.Tables
	cons := &glap.ConsolidateProtocol{
		B:                 ctx.B,
		Tables:            func(e *sim.Engine, n *sim.Node) *glap.NodeTables { return shared },
		Select:            ctx.Select,
		CurrentDemandOnly: ctx.X.GLAP.CurrentDemandOnly,
	}
	if ctx.X.TopologyAware && ctx.Tree != nil {
		cons.Select = glap.LocalitySelector(ctx.Tree)
		cons.Topo = ctx.Tree
	}
	ctx.E.Register(cons)
	return nil
}

// buildGLAPAsync installs the message-passing GLAP consolidation stack: the
// same Algorithm-3 decision core, carried by a sim.Transport with the
// experiment's latency and loss (Experiment.Net). The one-registration
// existence proof that a new transport does not fork the facade.
func buildGLAPAsync(ctx *StackContext) error {
	x := ctx.X
	lat := x.Net.Latency
	if lat <= 0 {
		lat = 1
	}
	latFn := sim.ConstantLatency(lat)
	maxLat := lat
	if x.Net.TopoLatency && ctx.Tree != nil {
		tree := ctx.Tree
		latFn = func(from, to int) int64 { return lat * tree.LatencyFactor(from, to) }
		maxLat = 3 * lat // cross-pod paths pay the full multiplier
	}
	tr := sim.NewTransport(ctx.E, latFn)
	tr.DropProb = x.Net.DropProb
	timeout := x.Net.OfferTimeout
	if timeout == 0 {
		// Cover a full offer round-trip even on slow links.
		timeout = 2*ctx.E.RoundPeriod + 4*maxLat
	}
	shared := ctx.Tables
	cons := &glap.AsyncConsolidateProtocol{
		B:                 ctx.B,
		Tr:                tr,
		Tables:            func(e *sim.Engine, n *sim.Node) *glap.NodeTables { return shared },
		Select:            ctx.Select,
		CurrentDemandOnly: x.GLAP.CurrentDemandOnly,
		OfferTimeout:      timeout,
	}
	if x.TopologyAware && ctx.Tree != nil {
		// Locality-aware peer selection: prefer same-rack, then same-pod
		// exchange partners, so consolidation drains racks and their
		// switches can sleep — the same policy the sync stack applies.
		cons.Select = glap.LocalitySelector(ctx.Tree)
	}
	tr.Handle(cons)
	ctx.E.Register(cons)
	ctx.Artifacts.AsyncConsolidate = cons
	ctx.Artifacts.Transport = tr
	return nil
}

// buildGRMP installs the GRMP baseline.
func buildGRMP(ctx *StackContext) error {
	p := grmp.New(ctx.B)
	p.Select = ctx.Select
	ctx.E.Register(p)
	return nil
}

// buildEcoCloud installs the EcoCloud baseline.
func buildEcoCloud(ctx *StackContext) error {
	p := ecocloud.New(ctx.B)
	p.Select = ctx.Select
	ctx.E.Register(p)
	return nil
}

// buildPABFD installs the centralized PABFD baseline; no overlay.
func buildPABFD(ctx *StackContext) error {
	pabfd.Install(ctx.E, ctx.B)
	return nil
}

// buildNone replays the workload with no consolidation.
func buildNone(ctx *StackContext) error { return nil }

// bfdOracle computes the centralized Best-Fit-Decreasing packing of the
// final demand — the Figure 6 oracle baseline reported in every Result.
func bfdOracle(c *dc.Cluster) int {
	return bfd.MinActivePMs(c, 1e-6)
}
