// Package glapsim is the public facade of the GLAP reproduction: it
// assembles the simulation kernel, data-center model, workload generator,
// the GLAP protocol stack and the three comparison baselines into one-call
// experiment runners.
//
// A minimal run:
//
//	cfg := glapsim.Experiment{PMs: 100, Ratio: 2, Rounds: 120, Seed: 1, Policy: glapsim.PolicyGLAP}
//	res, err := glapsim.Run(cfg)
//
// res.Series then holds the per-round metrics the paper's figures are drawn
// from, and res.Series.SLAV the Table I metric.
package glapsim

import (
	"fmt"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/glap"
	"github.com/glap-sim/glap/internal/gossip"
	"github.com/glap-sim/glap/internal/metrics"
	"github.com/glap-sim/glap/internal/newscast"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/topology"
	"github.com/glap-sim/glap/internal/trace"
)

// Policy selects the consolidation algorithm under test. Each policy is a
// registry entry (see RegisterPolicy); the constants below are the built-in
// stacks registered in stacks.go.
type Policy string

// The four policies of the evaluation plus None (no consolidation) and the
// message-passing GLAP transport.
const (
	PolicyGLAP     Policy = "glap"
	PolicyGRMP     Policy = "grmp"
	PolicyEcoCloud Policy = "ecocloud"
	PolicyPABFD    Policy = "pabfd"
	PolicyNone     Policy = "none"
	// PolicyGLAPAsync runs GLAP's consolidation over real messages with
	// latency and loss (Experiment.Net) instead of the simulator's
	// synchronous push-pull shortcut.
	PolicyGLAPAsync Policy = "glap-async"
)

// Policies lists the four evaluated policies in the paper's order.
var Policies = []Policy{PolicyGLAP, PolicyEcoCloud, PolicyGRMP, PolicyPABFD}

// Overlay selects the peer-sampling service.
type Overlay string

// The two peer-sampling overlays shipped with the kernel.
const (
	OverlayCyclon   Overlay = "cyclon"
	OverlayNewscast Overlay = "newscast"
)

// overlayFor registers the configured overlay on e and returns the matching
// peer selector (nil means the protocol defaults, which are Cyclon-based).
func overlayFor(x Experiment, e *sim.Engine) (gossip.PeerSelector, error) {
	switch x.Overlay {
	case "", OverlayCyclon:
		e.Register(cyclon.New(x.CyclonViewSize, x.CyclonShuffleLen))
		return nil, nil
	case OverlayNewscast:
		e.Register(newscast.New(x.CyclonViewSize))
		return newscast.Selector, nil
	default:
		return nil, fmt.Errorf("glapsim: unknown overlay %q", x.Overlay)
	}
}

// Experiment configures one simulation run (one policy, one cluster size,
// one VM:PM ratio). The same Experiment with the same Seed produces the
// same workload and the same initial VM placement regardless of Policy, so
// cross-policy comparisons are paired, as in Section V-A.
type Experiment struct {
	// PMs is the cluster size (the paper: 500, 1000, 2000).
	PMs int
	// Ratio is the VM:PM ratio (the paper: 2, 3, 4).
	Ratio int
	// Rounds is the number of consolidation rounds (the paper: 720 rounds
	// of 2 minutes = 24 h).
	Rounds int
	// Seed fixes workload, placement and all protocol randomness.
	Seed uint64
	// Policy selects the algorithm.
	Policy Policy

	// Workload overrides the generated trace (optional). It must contain
	// exactly PMs*Ratio VMs.
	Workload *trace.Set
	// TraceConfig overrides the synthetic generator's calibration (the
	// future-work bursty-workload evaluation raises the bursty/spiky mix
	// this way). VMs, Rounds and Seed are filled from the experiment.
	TraceConfig *trace.GenConfig
	// GLAP overrides the GLAP configuration (zero fields default).
	GLAP glap.Config
	// PretrainedTables skips GLAP pre-training and uses this checkpointed
	// Q store directly (see glap.SaveTables / glap.LoadTables).
	PretrainedTables *glap.NodeTables
	// Pretrain tunes GLAP pre-training measurement (optional).
	Pretrain glap.PretrainOptions
	// Overlay selects the peer-sampling service for the distributed
	// policies: "cyclon" (default, the paper's choice) or "newscast".
	// GLAP pre-training always runs over Cyclon; the overlay choice
	// applies to the consolidation run, where peer sampling actually
	// shapes the outcome.
	Overlay Overlay
	// CyclonViewSize / CyclonShuffleLen configure the overlay for the
	// distributed policies (defaults 20 / 8; for Newscast only the view
	// size applies).
	CyclonViewSize   int
	CyclonShuffleLen int
	// LogMigrations keeps per-migration records on the cluster.
	LogMigrations bool
	// Heterogeneous builds a mixed-hardware cluster (alternating HP
	// ProLiant ML110 G5 and G4 machines) instead of the paper's homogeneous
	// G5 fleet, which makes PABFD's power-aware placement non-trivial.
	Heterogeneous bool
	// VMChurn is the fraction of VMs with a dynamic lifecycle (late
	// arrival, possibly early departure) instead of the paper's fixed
	// population. 0 disables churn.
	VMChurn float64

	// Workers bounds the deterministic fork-join parallelism inside this
	// run: the parallel learning phase, the cluster's demand refresh, and
	// the metrics scans. <= 0 (the default) auto-sizes from the machine-wide
	// worker budget shared with RunReplicated; 1 forces fully sequential
	// execution; an explicit count > 1 is honored exactly. Results are
	// byte-identical for every setting.
	Workers int

	// PairSharded enables the engine's deterministic pair-sharded execution
	// of pairwise protocols (gossip aggregation, synchronous consolidation):
	// the round's pairs are drawn sequentially from the unchanged RNG
	// streams, greedy-colored into node-disjoint batches, and fanned out
	// over Workers. Byte-identical at any worker count, but a distinct
	// reference point from the sequential path (draws observe round-start
	// state); see sim.Engine.PairSharded.
	PairSharded bool
	// SkipQuiescent enables the engine's quiescence-skipping fast path:
	// provably inert round tails are batch-advanced in one fused pass.
	// Results are byte-identical with the option on or off; see
	// sim.Engine.SkipQuiescent.
	SkipQuiescent bool

	// Net configures the message transport for message-passing policies
	// (PolicyGLAPAsync). Cycle-driven policies ignore it.
	Net NetConfig

	// RackSize enables the network topology model (the paper's future-work
	// extension): PMs per rack; 0 disables it. With the model enabled,
	// cross-rack migrations see oversubscribed bandwidth and the run
	// reports switch energy (Result.Network).
	RackSize int
	// RacksPerPod configures the aggregation tier (default 4).
	RacksPerPod int
	// TopologyAware switches GLAP's consolidation to locality-aware peer
	// selection (same rack, then same pod, then anywhere), so racks drain
	// and their switches sleep. Only meaningful with PolicyGLAP and
	// RackSize > 0.
	TopologyAware bool
}

// NetConfig models the transport for message-passing stacks.
type NetConfig struct {
	// Latency is the one-way message delay in virtual time units
	// (default 1; the round period is 120).
	Latency int64
	// DropProb is the per-message loss probability.
	DropProb float64
	// OfferTimeout bounds each request stage of the offer handshake in
	// virtual time; 0 defaults to 2×RoundPeriod + 4×MaxLatency (the base
	// latency, tripled when TopoLatency is on).
	OfferTimeout int64
	// TopoLatency scales each message's delay by the topology's path length
	// (×1 in-rack, ×2 cross-rack, ×3 cross-pod) instead of a constant
	// Latency. Requires RackSize > 0.
	TopoLatency bool
}

// Validate reports configuration errors.
func (x *Experiment) Validate() error {
	if x.PMs <= 1 {
		return fmt.Errorf("glapsim: PMs must be > 1, got %d", x.PMs)
	}
	if x.Ratio <= 0 {
		return fmt.Errorf("glapsim: Ratio must be positive, got %d", x.Ratio)
	}
	if x.Rounds <= 0 {
		return fmt.Errorf("glapsim: Rounds must be positive, got %d", x.Rounds)
	}
	if _, ok := policySpec(x.Policy); !ok {
		return fmt.Errorf("glapsim: unknown policy %q", x.Policy)
	}
	if x.Net.DropProb < 0 || x.Net.DropProb > 1 {
		return fmt.Errorf("glapsim: Net.DropProb %g out of [0,1]", x.Net.DropProb)
	}
	if x.Net.Latency < 0 || x.Net.OfferTimeout < 0 {
		return fmt.Errorf("glapsim: negative Net timing")
	}
	if x.Workload != nil && x.Workload.NumVMs() != x.PMs*x.Ratio {
		return fmt.Errorf("glapsim: workload has %d VMs, want %d", x.Workload.NumVMs(), x.PMs*x.Ratio)
	}
	if x.RackSize < 0 || x.RacksPerPod < 0 {
		return fmt.Errorf("glapsim: negative topology sizes")
	}
	if x.TopologyAware && x.RackSize == 0 {
		return fmt.Errorf("glapsim: TopologyAware requires RackSize > 0")
	}
	if x.Net.TopoLatency && x.RackSize == 0 {
		return fmt.Errorf("glapsim: Net.TopoLatency requires RackSize > 0")
	}
	if x.VMChurn < 0 || x.VMChurn > 1 {
		return fmt.Errorf("glapsim: VMChurn %g out of [0,1]", x.VMChurn)
	}
	return nil
}

// tree builds the experiment's topology model, or nil when disabled.
func (x *Experiment) tree() (*topology.Tree, error) {
	if x.RackSize == 0 {
		return nil, nil
	}
	perPod := x.RacksPerPod
	if perPod == 0 {
		perPod = 4
	}
	return topology.New(x.PMs, x.RackSize, perPod)
}

// Result is the outcome of one simulation run.
type Result struct {
	// Series holds the per-round samples and final SLA metrics.
	Series *metrics.Series
	// Cluster is the final cluster state (placement, accounting).
	Cluster *dc.Cluster
	// Pretrain is the GLAP pre-training outcome (nil for other policies).
	Pretrain *glap.PretrainResult
	// BFDBaseline is the oracle Best-Fit-Decreasing packing of the
	// last-round demand (the Figure 6 baseline).
	BFDBaseline int
	// Network holds switch activity and energy when the topology model is
	// enabled (nil otherwise).
	Network *metrics.NetworkSeries
	// RoundsSkipped is the number of rounds the engine batch-advanced via
	// quiescence-skipping (0 unless Experiment.SkipQuiescent).
	RoundsSkipped int64
	// PairPasses/PairBatches/PairCount are the pair-sharded execution
	// counters: protocol passes run via the sharded path, node-disjoint
	// batches across them, and total pairs executed (all 0 unless
	// Experiment.PairSharded).
	PairPasses  int64
	PairBatches int64
	PairCount   int64
}

// workloadFor returns the experiment's workload, generating it when absent.
func workloadFor(x Experiment) (*trace.Set, error) {
	if x.Workload != nil {
		return x.Workload, nil
	}
	gen := trace.DefaultGenConfig(x.PMs*x.Ratio, x.Rounds, deriveSeed(x.Seed, seedTrace))
	if x.TraceConfig != nil {
		gen = *x.TraceConfig
		gen.VMs = x.PMs * x.Ratio
		gen.Rounds = x.Rounds
		gen.Seed = deriveSeed(x.Seed, seedTrace)
	}
	// The streaming source synthesises samples on demand from ~200 bytes of
	// per-VM state — bit-identical to the materialised generator, but a
	// 200k-VM workload no longer costs rounds×16 bytes per VM up front.
	return trace.GenerateStreaming(gen)
}

// buildCluster assembles a cluster with the experiment's deterministic
// initial placement. Calling it twice yields identically placed clusters.
func buildCluster(x Experiment, w *trace.Set) (*dc.Cluster, error) {
	cfg := dc.Config{PMs: x.PMs, Workload: w, LogMigrations: x.LogMigrations}
	if x.Heterogeneous {
		cfg.PMSpecFor = func(pm int) dc.PMSpec {
			if pm%2 == 1 {
				return dc.HPProLiantML110G4
			}
			return dc.HPProLiantML110G5
		}
	}
	if tree, err := x.tree(); err != nil {
		return nil, err
	} else if tree != nil {
		cfg.MigrationBandwidth = glap.BandwidthModel(tree, dc.HPProLiantML110G5.NetBandwidthMBps)
	}
	c, err := dc.New(cfg)
	if err != nil {
		return nil, err
	}
	if x.VMChurn > 0 {
		churnRNG := sim.NewRNG(deriveSeed(x.Seed, seedChurn))
		for _, vm := range c.VMs {
			if !churnRNG.Bernoulli(x.VMChurn) {
				continue
			}
			arrive := 1 + churnRNG.Intn(x.Rounds/2+1)
			depart := -1
			if churnRNG.Bool() {
				depart = arrive + 1 + churnRNG.Intn(x.Rounds-arrive)
			}
			if err := c.SetLifecycle(vm.ID, arrive, depart); err != nil {
				return nil, err
			}
		}
	}
	placeRNG := sim.NewRNG(deriveSeed(x.Seed, seedPlacement))
	c.PlaceRandom(placeRNG.Intn)
	return c, nil
}

// seedPurpose tags the independent random streams derived from one
// experiment seed. Every source of randomness in a run draws from its own
// purpose-derived stream, so e.g. enabling churn cannot perturb the trace
// or the placement. The full derivation map is documented in DESIGN.md
// ("Seed derivation").
type seedPurpose uint64

const (
	// seedTrace drives the synthetic workload generator.
	seedTrace seedPurpose = 1
	// seedPlacement drives the initial random VM placement.
	seedPlacement seedPurpose = 2
	// seedPretrain seeds the GLAP pre-training engine.
	seedPretrain seedPurpose = 3
	// seedEngine seeds the consolidation-run engine (all protocol RNG
	// streams derive from it).
	seedEngine seedPurpose = 4
	// seedChurn drives VM lifecycle churn (arrival/departure rounds).
	seedChurn seedPurpose = 5
	// seedFaults drives PM crash/recovery schedules (victim choice and
	// crash rounds) in the failure scenarios.
	seedFaults seedPurpose = 6
)

// deriveSeed mixes a purpose tag into an experiment seed.
func deriveSeed(seed uint64, purpose seedPurpose) uint64 {
	return sim.NewRNG(seed).Derive(uint64(purpose)).Uint64()
}

// prepareStack assembles one fully wired run: an identically placed cluster
// for the experiment's seed, a fresh engine, the cluster binding, the
// topology model, the overlay (when the policy's spec wants one) and the
// policy stack itself. Run, the robustness grid and the scenario suite all
// build their paired runs through this one path, so two calls with the same
// Experiment and workload differ in nothing but what the caller installs on
// top (metrics, fault plans, per-node table stores).
func prepareStack(x Experiment, w *trace.Set, shared *glap.NodeTables) (*dc.Cluster, *sim.Engine, *StackContext, error) {
	spec, ok := policySpec(x.Policy)
	if !ok {
		return nil, nil, nil, fmt.Errorf("glapsim: unknown policy %q", x.Policy)
	}
	c, err := buildCluster(x, w)
	if err != nil {
		return nil, nil, nil, err
	}
	c.Workers = x.Workers
	e := sim.NewEngine(x.PMs, deriveSeed(x.Seed, seedEngine))
	e.Workers = x.Workers
	e.PairSharded = x.PairSharded
	e.SkipQuiescent = x.SkipQuiescent
	b, err := policy.Bind(e, c)
	if err != nil {
		return nil, nil, nil, err
	}
	tree, err := x.tree()
	if err != nil {
		return nil, nil, nil, err
	}
	ctx := &StackContext{X: x, E: e, B: b, Tables: shared, Tree: tree, Artifacts: &StackArtifacts{}}
	if spec.Overlay {
		if ctx.Select, err = overlayFor(x, e); err != nil {
			return nil, nil, nil, err
		}
	}
	if err := spec.Build(ctx); err != nil {
		return nil, nil, nil, err
	}
	return c, e, ctx, nil
}

// Run executes one replication of the experiment and returns its result.
// The policy's registered spec drives the wiring: pre-training and overlay
// construction happen only when the spec asks for them, and the stack
// itself is installed by the spec's builder.
func Run(x Experiment) (*Result, error) {
	if err := x.Validate(); err != nil {
		return nil, err
	}
	spec, ok := policySpec(x.Policy)
	if !ok {
		return nil, fmt.Errorf("glapsim: unknown policy %q", x.Policy)
	}
	w, err := workloadFor(x)
	if err != nil {
		return nil, err
	}

	var pretrain *glap.PretrainResult
	shared := x.PretrainedTables
	if spec.Pretrain && shared == nil {
		// Pre-train on a separate, identically placed cluster so the
		// comparison run replays the same trace window as the baselines
		// (the paper executes "700 more rounds to calculate Q-values
		// beforehand").
		preCluster, err := buildCluster(x, w)
		if err != nil {
			return nil, err
		}
		opts := x.Pretrain
		if opts.CyclonViewSize == 0 {
			opts.CyclonViewSize = x.CyclonViewSize
		}
		if opts.CyclonShuffleLen == 0 {
			opts.CyclonShuffleLen = x.CyclonShuffleLen
		}
		if opts.Workers == 0 {
			opts.Workers = x.Workers
		}
		pretrain, err = glap.Pretrain(x.GLAP, preCluster, deriveSeed(x.Seed, seedPretrain), opts)
		if err != nil {
			return nil, err
		}
		shared, err = glap.SharedTables(pretrain)
		if err != nil {
			return nil, err
		}
	}

	c, e, ctx, err := prepareStack(x, w, shared)
	if err != nil {
		return nil, err
	}

	series := metrics.Attach(e, c, 0)
	var network *metrics.NetworkSeries
	if ctx.Tree != nil {
		network = metrics.AttachNetwork(e, c, ctx.Tree, topology.DefaultSwitchSpec)
	}
	e.RunRounds(x.Rounds)
	if spec.Drain {
		// Run the event queue dry so in-flight messages, request timeouts
		// and reservation holds settle before the final measurements.
		e.RunEvents(-1)
	}
	series.Finalize(c)

	passes, batches, pairs := e.PairStats()
	return &Result{
		Series:        series,
		Cluster:       c,
		Pretrain:      pretrain,
		BFDBaseline:   bfdOracle(c),
		Network:       network,
		RoundsSkipped: e.RoundsSkipped(),
		PairPasses:    passes,
		PairBatches:   batches,
		PairCount:     pairs,
	}, nil
}

// RunReplicated executes reps independent replications of the experiment in
// parallel (the paper repeats every experiment 20 times) and returns the
// per-replication results. workers <= 0 uses GOMAXPROCS. Replication r uses
// seed Seed+r-derived streams but the identical workload and placement
// question is per replication: each replication gets its own workload and
// placement, matching the paper's repeated random setups.
func RunReplicated(x Experiment, reps, workers int) ([]*Result, error) {
	if err := x.Validate(); err != nil {
		return nil, err
	}
	type out struct {
		res *Result
		err error
	}
	results := sim.RunReplications(reps, workers, func(rep int) out {
		xr := x
		xr.Seed = sim.ReplicationSeed(x.Seed, rep)
		xr.Workload = nil // regenerate per replication
		r, err := Run(xr)
		return out{r, err}
	})
	final := make([]*Result, len(results))
	for i, o := range results {
		if o.err != nil {
			return nil, fmt.Errorf("glapsim: replication %d: %w", i, o.err)
		}
		final[i] = o.res
	}
	return final, nil
}
