package glapsim

import (
	"testing"

	"github.com/glap-sim/glap/internal/baselines/ecocloud"
	"github.com/glap-sim/glap/internal/baselines/grmp"
	"github.com/glap-sim/glap/internal/baselines/pabfd"
	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
)

// installBaseline wires one of the baseline policies onto a manually built
// engine, mirroring what Run does internally; used by tests that need
// per-round observation.
func installBaseline(t *testing.T, e *sim.Engine, b *policy.Binding, p Policy) {
	t.Helper()
	switch p {
	case PolicyGRMP:
		e.Register(cyclon.New(0, 0))
		e.Register(grmp.New(b))
	case PolicyEcoCloud:
		e.Register(cyclon.New(0, 0))
		e.Register(ecocloud.New(b))
	case PolicyPABFD:
		pabfd.Install(e, b)
	default:
		t.Fatalf("installBaseline: unsupported policy %q", p)
	}
}
