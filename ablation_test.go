package glapsim

// Helpers for the ablation benchmarks that need to rewire the GLAP pipeline
// below the facade level (e.g. running consolidation on unaggregated,
// per-node Q-tables).

import (
	"testing"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/glap"
	"github.com/glap-sim/glap/internal/metrics"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/stats"
)

// runNoAggregationAblation runs the GLAP pipeline with (agg=true) or without
// (agg=false) the Algorithm 2 aggregation phase. Without it, every PM keeps
// the Q-tables of its own local learning phase — senders then take remote
// admission decisions against Q-values the target does not share, which is
// precisely the inconsistency the aggregation phase exists to remove. It
// returns the mean per-round overloaded-PM count.
func runNoAggregationAblation(tb testing.TB, agg bool, seed uint64) float64 {
	x := benchExperiment(PolicyGLAP, seed)
	if !agg {
		x.GLAP.AggRounds = -1 // explicit disable (WOG)
	}
	w, err := workloadFor(x)
	if err != nil {
		tb.Fatal(err)
	}
	preCluster, err := buildCluster(x, w)
	if err != nil {
		tb.Fatal(err)
	}
	pre, err := glap.Pretrain(x.GLAP, preCluster, deriveSeed(x.Seed, seedPretrain), glap.PretrainOptions{})
	if err != nil {
		tb.Fatal(err)
	}

	cl, err := buildCluster(x, w)
	if err != nil {
		tb.Fatal(err)
	}
	e := sim.NewEngine(x.PMs, deriveSeed(x.Seed, seedEngine))
	bnd, err := policy.Bind(e, cl)
	if err != nil {
		tb.Fatal(err)
	}
	e.Register(cyclon.New(0, 0))
	cons := &glap.ConsolidateProtocol{
		B: bnd,
		Tables: func(e *sim.Engine, n *sim.Node) *glap.NodeTables {
			return pre.Tables[n.ID] // per-node tables, merged or not
		},
	}
	e.Register(cons)
	series := metrics.Attach(e, cl, 0)
	e.RunRounds(x.Rounds)
	return stats.Mean(series.OverloadedPerRound())
}

// TestNoAggregationAblationRuns sanity-checks the ablation plumbing outside
// the benchmark loop: both variants must run and uphold cluster invariants,
// and the WOG variant must leave nodes with diverging tables.
func TestNoAggregationAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation run in -short mode")
	}
	for _, agg := range []bool{true, false} {
		got := runNoAggregationAblation(t, agg, 5)
		if got < 0 {
			t.Fatalf("agg=%v: negative overload mean", agg)
		}
	}
}
