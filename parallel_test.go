package glapsim

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// TestWorkerCountDifferential is the headline invariant of the fork-join
// layer: for every registered policy, the full Series fingerprint must be
// byte-identical between Workers=1 (fully sequential) and Workers=8
// (explicit fan-out). CI also runs this under -race, which turns it into a
// data-race check on every parallelized stage at once.
func TestWorkerCountDifferential(t *testing.T) {
	for _, p := range RegisteredPolicies() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			run := func(workers int) string {
				x := Experiment{
					PMs: 20, Ratio: 2, Rounds: 40, Seed: 7, Policy: p,
					GLAP:    fastGLAP(),
					Workers: workers,
				}
				res, err := Run(x)
				if err != nil {
					t.Fatal(err)
				}
				sum := sha256.Sum256([]byte(serializeSeries(res)))
				return hex.EncodeToString(sum[:])
			}
			seq, par := run(1), run(8)
			if seq != par {
				t.Fatalf("policy %s: Series fingerprint differs between Workers=1 (%s) and Workers=8 (%s)", p, seq, par)
			}
		})
	}
}

// TestWorkerCountMatchesGolden ties the differential to the pinned golden:
// the golden experiment run with explicit workers must still produce the
// pinned fingerprint, so the default (auto) path and the parallel path are
// the same simulation.
func TestWorkerCountMatchesGolden(t *testing.T) {
	x := goldenExperiment()
	x.Workers = 8
	res, err := Run(x)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(serializeSeries(res)))
	if got := hex.EncodeToString(sum[:]); got != goldenSeriesHash {
		t.Fatalf("golden fingerprint with Workers=8: got %s, want %s", got, goldenSeriesHash)
	}
}
