package glapsim

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section V), plus ablation benchmarks for the design choices
// called out in DESIGN.md. Each benchmark iteration executes a complete
// (reduced-scale) experiment and reports the figure's headline quantity as
// a custom metric, so `go test -bench=.` regenerates the paper's result
// structure end to end. Paper-scale runs (500-2000 PMs, 720 rounds, 20
// replications) go through cmd/glapbench instead.

import (
	"fmt"
	"testing"

	"github.com/glap-sim/glap/internal/glap"
	"github.com/glap-sim/glap/internal/stats"
)

const (
	benchPMs    = 40
	benchRatio  = 3
	benchRounds = 80
)

func benchGLAP() glap.Config {
	return glap.Config{LearnRounds: 40, AggRounds: 25}
}

func benchExperiment(p Policy, seed uint64) Experiment {
	return Experiment{
		PMs: benchPMs, Ratio: benchRatio, Rounds: benchRounds,
		Seed: seed, Policy: p, GLAP: benchGLAP(),
	}
}

// BenchmarkFigure5Convergence regenerates Figure 5: Q-value cosine
// similarity through the learning (WOG) and aggregation (WG) phases. The
// reported metrics are the similarity reached by the learning phase alone
// and after gossip aggregation, whose gap is the figure's message.
func BenchmarkFigure5Convergence(b *testing.B) {
	var wog, wg float64
	for i := 0; i < b.N; i++ {
		res, err := RunConvergence(benchPMs, []int{benchRatio}, benchGLAP(), uint64(i+1), 5)
		if err != nil {
			b.Fatal(err)
		}
		r := res[0]
		for j, round := range r.Rounds {
			if round < r.AggStart {
				wog = r.Cosine[j]
			}
		}
		wg = r.Cosine[len(r.Cosine)-1]
	}
	b.ReportMetric(wog, "cosine-WOG")
	b.ReportMetric(wg, "cosine-WG")
}

// BenchmarkFigure6Packing regenerates Figure 6: the fraction of overloaded
// to active PMs per policy, with the BFD oracle as the packing baseline.
func BenchmarkFigure6Packing(b *testing.B) {
	for _, p := range Policies {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var frac, active, oracle float64
			for i := 0; i < b.N; i++ {
				res, err := Run(benchExperiment(p, uint64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				frac = stats.Mean(res.Series.FractionOverloaded())
				last, _ := res.Series.Last()
				active = float64(last.ActivePMs)
				oracle = float64(res.BFDBaseline)
			}
			b.ReportMetric(frac, "frac-overloaded")
			b.ReportMetric(active, "active-PMs")
			b.ReportMetric(oracle, "BFD-oracle-PMs")
		})
	}
}

// BenchmarkFigure7Overloaded regenerates Figure 7: the number of overloaded
// PMs per round (the paper reports median/p10/p90 across repetitions; a
// benchmark iteration is one repetition and the mean is reported).
func BenchmarkFigure7Overloaded(b *testing.B) {
	for _, p := range Policies {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := Run(benchExperiment(p, uint64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				mean = stats.Mean(res.Series.OverloadedPerRound())
			}
			b.ReportMetric(mean, "overloaded-PMs/round")
		})
	}
}

// BenchmarkFigure8Migrations regenerates Figure 8: the number of migrations.
func BenchmarkFigure8Migrations(b *testing.B) {
	for _, p := range Policies {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				res, err := Run(benchExperiment(p, uint64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				last, _ := res.Series.Last()
				total = float64(last.Migrations)
			}
			b.ReportMetric(total, "migrations")
		})
	}
}

// BenchmarkFigure9Cumulative regenerates Figure 9: cumulative migrations
// over time. The reported metrics capture the curve's shape — how much of
// the day's migration happens in the first quarter of rounds (distributed
// algorithms front-load; PABFD is near linear).
func BenchmarkFigure9Cumulative(b *testing.B) {
	for _, p := range Policies {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var frontLoad float64
			for i := 0; i < b.N; i++ {
				res, err := Run(benchExperiment(p, uint64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				cum := res.Series.CumulativeMigrations()
				if total := cum[len(cum)-1]; total > 0 {
					frontLoad = cum[len(cum)/4] / total
				}
			}
			b.ReportMetric(frontLoad, "frac-migrations-in-first-quarter")
		})
	}
}

// BenchmarkFigure10Energy regenerates Figure 10: the energy overhead of
// migrations per Eq. 3.
func BenchmarkFigure10Energy(b *testing.B) {
	for _, p := range Policies {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var kj float64
			for i := 0; i < b.N; i++ {
				res, err := Run(benchExperiment(p, uint64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				last, _ := res.Series.Last()
				kj = last.MigrationEnergyJ / 1000
			}
			b.ReportMetric(kj, "migration-kJ")
		})
	}
}

// BenchmarkTable1SLAV regenerates Table I: the SLAV metric (SLAVO × SLALM)
// per policy.
func BenchmarkTable1SLAV(b *testing.B) {
	for _, p := range Policies {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var slav float64
			for i := 0; i < b.N; i++ {
				res, err := Run(benchExperiment(p, uint64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				slav = res.Series.SLAV
			}
			b.ReportMetric(slav*1e9, "SLAV-e9")
		})
	}
}

// BenchmarkAblationRewardPenalty sweeps the magnitude of the in-table
// Overload penalty (the paper: "the smaller negative reward value, the less
// probability of producing SLA violations") and reports the resulting
// overload rate.
func BenchmarkAblationRewardPenalty(b *testing.B) {
	for _, penalty := range []float64{-10, -100, -1000} {
		penalty := penalty
		b.Run(fmt.Sprintf("rO=%g", penalty), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				x := benchExperiment(PolicyGLAP, uint64(i+1))
				x.GLAP.RewardIn = glap.DefaultRewardIn
				x.GLAP.RewardIn[glap.Overload] = penalty
				res, err := Run(x)
				if err != nil {
					b.Fatal(err)
				}
				mean = stats.Mean(res.Series.OverloadedPerRound())
			}
			b.ReportMetric(mean, "overloaded-PMs/round")
		})
	}
}

// BenchmarkAblationCurrentOnlyStates disables the average-demand state
// calibration (Section IV-B's key design decision) and reports the overload
// impact against the default.
func BenchmarkAblationCurrentOnlyStates(b *testing.B) {
	for _, curOnly := range []bool{false, true} {
		curOnly := curOnly
		name := "avg+current"
		if curOnly {
			name = "current-only"
		}
		b.Run(name, func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				x := benchExperiment(PolicyGLAP, uint64(i+1))
				x.GLAP.CurrentDemandOnly = curOnly
				res, err := Run(x)
				if err != nil {
					b.Fatal(err)
				}
				mean = stats.Mean(res.Series.OverloadedPerRound())
			}
			b.ReportMetric(mean, "overloaded-PMs/round")
		})
	}
}

// BenchmarkAblationThresholdVsLearned compares GLAP's learned admission
// against the static-threshold family (GRMP as its strongest member) on the
// identical workload, reporting overload and migration deltas.
func BenchmarkAblationThresholdVsLearned(b *testing.B) {
	for _, p := range []Policy{PolicyGLAP, PolicyGRMP} {
		p := p
		b.Run(string(p), func(b *testing.B) {
			var over, mig float64
			for i := 0; i < b.N; i++ {
				res, err := Run(benchExperiment(p, uint64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				over = stats.Mean(res.Series.OverloadedPerRound())
				last, _ := res.Series.Last()
				mig = float64(last.Migrations)
			}
			b.ReportMetric(over, "overloaded-PMs/round")
			b.ReportMetric(mig, "migrations")
		})
	}
}

// BenchmarkAblationNoAggregation runs GLAP's consolidation with the raw
// per-node learning-phase tables (WOG — aggregation phase disabled), so
// senders and targets disagree on Q-values; the end-to-end impact of
// Algorithm 2 is the reported delta against the default pipeline.
func BenchmarkAblationNoAggregation(b *testing.B) {
	for _, agg := range []bool{true, false} {
		agg := agg
		name := "with-aggregation"
		if !agg {
			name = "without-aggregation"
		}
		b.Run(name, func(b *testing.B) {
			var over float64
			for i := 0; i < b.N; i++ {
				over = runNoAggregationAblation(b, agg, uint64(i+1))
			}
			b.ReportMetric(over, "overloaded-PMs/round")
		})
	}
}
