package glapsim

import (
	"fmt"
	"testing"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/glap"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/trace"
)

// crashScenarioFixture pre-trains one small crash-churn cell and returns the
// pieces runCrashVariant needs, mirroring runCrashScenario's setup.
func crashScenarioFixture(t *testing.T, pms, rounds int) (Experiment, *trace.Set, *glap.NodeTables, sim.FaultPlan) {
	t.Helper()
	cfg := ScenarioConfig{Sizes: []int{pms}, Rounds: rounds, Seed: 1}.withDefaults()
	x := baseScenarioExperiment(cfg, pms, sim.ReplicationSeed(cfg.Seed, 0))
	x.Policy = PolicyGLAPAsync
	x.Net = NetConfig{Latency: 30, DropProb: 0.05}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	w, err := workloadFor(x)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := buildCluster(x, w)
	if err != nil {
		t.Fatal(err)
	}
	opts := x.Pretrain
	opts.CyclonViewSize = x.CyclonViewSize
	opts.CyclonShuffleLen = x.CyclonShuffleLen
	pretrain, err := glap.Pretrain(x.GLAP, pre, deriveSeed(x.Seed, seedPretrain), opts)
	if err != nil {
		t.Fatal(err)
	}
	shared, err := glap.SharedTables(pretrain)
	if err != nil {
		t.Fatal(err)
	}
	crashes := pms / 10
	if crashes < 1 {
		crashes = 1
	}
	plan := sim.GenerateFaults(sim.NewRNG(deriveSeed(x.Seed, seedFaults)), pms, x.Rounds, crashes, crashMTTR)
	return x, w, shared, plan
}

// TestCrashChurnInvariants drives the crash scenario with a per-round check:
// after every crash/recovery round the cluster invariants hold and no
// powered-off PM retains reserved capacity. The warm run additionally
// enforces — inside runCrashVariant, failing the run — that every restored
// Q-table re-checkpoints byte-identically to its pre-crash snapshot.
func TestCrashChurnInvariants(t *testing.T) {
	x, w, shared, plan := crashScenarioFixture(t, 16, 20)
	checked := 0
	check := func(c *dc.Cluster, e *sim.Engine, r int) error {
		checked++
		if err := c.CheckInvariants(); err != nil {
			return fmt.Errorf("round %d: %w", r, err)
		}
		for _, pm := range c.PMs {
			if !pm.On() && c.Reserved(pm) != (dc.Vec{}) {
				return fmt.Errorf("round %d: down PM %d holds reserved capacity %v", r, pm.ID, c.Reserved(pm))
			}
		}
		return nil
	}
	warm, err := runCrashVariant(x, w, shared, plan, true, check)
	if err != nil {
		t.Fatal(err)
	}
	if checked != x.Rounds {
		t.Fatalf("check hook ran %d times, want every one of %d rounds", checked, x.Rounds)
	}
	if warm.crashes < 1 || warm.recoveries < 1 {
		t.Fatalf("scenario injected %d crashes / %d recoveries, want at least one of each", warm.crashes, warm.recoveries)
	}
	if warm.evacuated+warm.stranded < 1 {
		t.Fatal("crashes displaced no VMs — the schedule only hit empty machines")
	}
	if warm.leaked != 0 {
		t.Fatalf("%d reservations leaked through crash churn", warm.leaked)
	}
	if err := warm.c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashWarmBeatsCold pins the scenario's headline: restoring a recovered
// PM's Q-tables from checkpoint reconverges with the fleet faster than cold
// re-learning via table gossip.
func TestCrashWarmBeatsCold(t *testing.T) {
	x, w, shared, plan := crashScenarioFixture(t, 16, 20)
	warm, err := runCrashVariant(x, w, shared, plan, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := runCrashVariant(x, w, shared, plan, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	wm, ok := meanOf(warm.reconverge)
	if !ok {
		t.Fatal("warm run recovered no PM")
	}
	cm, ok := meanOf(cold.reconverge)
	if !ok {
		t.Fatal("cold run recovered no PM")
	}
	if wm >= cm {
		t.Fatalf("warm restart reconverged in %.2f rounds, cold in %.2f — warm must be measurably faster", wm, cm)
	}
	// The two variants replay one fault schedule against identical stacks.
	if warm.crashes != cold.crashes {
		t.Fatalf("variants diverged: %d vs %d crashes from the same plan", warm.crashes, cold.crashes)
	}
}

// TestRunScenariosSuite runs every scenario family at one small size and
// sanity-checks each row's shape.
func TestRunScenariosSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full scenario suite in -short mode")
	}
	cfg := ScenarioConfig{Sizes: []int{16}, Rounds: 20, Seed: 1}
	rows, err := RunScenarios(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DefaultScenarios) {
		t.Fatalf("%d rows, want one per scenario (%d)", len(rows), len(DefaultScenarios))
	}
	byScen := map[string]ScenarioRow{}
	for _, row := range rows {
		byScen[row.Scenario] = row
		if row.PMs != 16 || row.VMs != 32 || row.Rounds != 20 {
			t.Fatalf("row %q has shape %d PMs / %d VMs / %d rounds", row.Scenario, row.PMs, row.VMs, row.Rounds)
		}
		if row.SeriesHash == "" || row.EnergyKWh <= 0 {
			t.Fatalf("row %q missing fingerprint or energy", row.Scenario)
		}
	}
	crash := byScen[string(ScenarioCrashChurn)]
	if crash.Crashes < 1 || crash.WarmReconvergeRounds == nil || crash.ColdReconvergeRounds == nil {
		t.Fatalf("crash row incomplete: %+v", crash)
	}
	if *crash.WarmReconvergeRounds >= *crash.ColdReconvergeRounds {
		t.Fatalf("warm reconvergence %.2f not faster than cold %.2f",
			*crash.WarmReconvergeRounds, *crash.ColdReconvergeRounds)
	}
	if topo := byScen[string(ScenarioTopology)]; topo.MeanSwitchPowerW <= 0 || topo.NetworkEnergyKWh <= 0 {
		t.Fatalf("topology row missing switch power accounting: %+v", topo)
	}
	if rt := byScen[string(ScenarioRealTrace)]; rt.TraceVMs != 32 || rt.TraceRounds != 20 {
		t.Fatalf("real-trace row provenance %d×%d, want 32×20", rt.TraceVMs, rt.TraceRounds)
	}
	if het := byScen[string(ScenarioHetero)]; het.Policy != string(PolicyGLAP) {
		t.Fatalf("hetero row ran policy %q", het.Policy)
	}
}

// TestScenarioRowDeterminism reruns one cell and requires bit-identical
// series fingerprints.
func TestScenarioRowDeterminism(t *testing.T) {
	cfg := ScenarioConfig{
		Sizes: []int{16}, Rounds: 20, Seed: 1,
		Scenarios: []Scenario{ScenarioHetero},
	}
	a, err := RunScenarios(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenarios(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].SeriesHash != b[0].SeriesHash {
		t.Fatalf("scenario rerun changed fingerprint: %s vs %s", a[0].SeriesHash, b[0].SeriesHash)
	}
}
