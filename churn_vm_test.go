package glapsim

import (
	"testing"

	"github.com/glap-sim/glap/internal/dc"
)

func TestVMChurnValidation(t *testing.T) {
	x := smallExperiment(PolicyGRMP)
	x.VMChurn = 1.5
	if err := x.Validate(); err == nil {
		t.Fatal("VMChurn > 1 accepted")
	}
	x.VMChurn = -0.1
	if err := x.Validate(); err == nil {
		t.Fatal("negative VMChurn accepted")
	}
}

func TestVMChurnPopulationVaries(t *testing.T) {
	x := smallExperiment(PolicyNone)
	x.VMChurn = 0.5
	x.Rounds = 60
	res, err := Run(x)
	if err != nil {
		t.Fatal(err)
	}
	cl := res.Cluster
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Roughly half the VMs were churned: some must have departed for good
	// and some permanent VMs remain.
	departed, permanent := 0, 0
	for _, vm := range cl.VMs {
		if vm.Departed() {
			departed++
		}
		if vm.Present() {
			permanent++
		}
	}
	if departed == 0 {
		t.Fatal("no VM departed under 50% churn")
	}
	if permanent == 0 {
		t.Fatal("every VM vanished")
	}
	if departed+permanent > len(cl.VMs) {
		t.Fatal("inconsistent lifecycle accounting")
	}
}

func TestVMChurnUnderConsolidation(t *testing.T) {
	// Every policy must stay consistent when VMs arrive and depart under
	// it mid-run.
	for _, p := range Policies {
		p := p
		t.Run(string(p), func(t *testing.T) {
			x := smallExperiment(p)
			x.VMChurn = 0.4
			x.Rounds = 50
			res, err := Run(x)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Cluster.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Arrivals land on powered PMs only.
			for _, vm := range res.Cluster.VMs {
				if vm.Present() && !res.Cluster.PMs[vm.Host()].On() {
					t.Fatalf("VM %d on powered-off PM %d", vm.ID, vm.Host())
				}
			}
		})
	}
}

func TestVMChurnDeterministic(t *testing.T) {
	x := smallExperiment(PolicyGRMP)
	x.VMChurn = 0.3
	a, err := Run(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(x)
	if err != nil {
		t.Fatal(err)
	}
	la, _ := a.Series.Last()
	lb, _ := b.Series.Last()
	if la != lb {
		t.Fatal("churned runs with equal seeds diverged")
	}
	_ = dc.EC2Micro // keep import for spec reference
}
