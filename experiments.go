package glapsim

import (
	"fmt"
	"sort"

	"github.com/glap-sim/glap/internal/glap"
	"github.com/glap-sim/glap/internal/metrics"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/stats"
)

// Grid configures a sweep over cluster sizes, VM:PM ratios and policies with
// repeated replications — the experimental grid of Section V (sizes 500,
// 1000, 2000 × ratios 2, 3, 4 × 20 repetitions at full paper scale).
type Grid struct {
	// Sizes are the cluster sizes (PM counts).
	Sizes []int
	// Ratios are the VM:PM ratios.
	Ratios []int
	// Rounds is the consolidation-run length.
	Rounds int
	// Reps is the number of replications per cell.
	Reps int
	// Workers bounds replication parallelism (<= 0: GOMAXPROCS).
	Workers int
	// Seed is the experiment master seed.
	Seed uint64
	// Policies to evaluate; nil selects all four.
	Policies []Policy
	// GLAP overrides the GLAP configuration.
	GLAP glap.Config
}

// withDefaults fills zero fields.
func (g Grid) withDefaults() Grid {
	if len(g.Sizes) == 0 {
		g.Sizes = []int{100}
	}
	if len(g.Ratios) == 0 {
		g.Ratios = []int{2, 3, 4}
	}
	if g.Rounds == 0 {
		g.Rounds = 240
	}
	if g.Reps == 0 {
		g.Reps = 5
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	if len(g.Policies) == 0 {
		g.Policies = Policies
	}
	return g
}

// Cell identifies one grid cell.
type Cell struct {
	PMs    int
	Ratio  int
	Policy Policy
}

// String renders e.g. "500-3/glap".
func (c Cell) String() string { return fmt.Sprintf("%d-%d/%s", c.PMs, c.Ratio, c.Policy) }

// CellStats aggregates one cell's replications into the statistics the
// paper's figures report (median and 10th/90th percentiles).
type CellStats struct {
	Cell Cell
	Reps int

	// Overloaded summarises per-round overloaded-PM counts pooled across
	// rounds and replications (Figure 7).
	Overloaded stats.Summary
	// FracOverloaded summarises the per-round overloaded/active fraction
	// (Figure 6).
	FracOverloaded stats.Summary
	// Active summarises end-of-run active PM counts across replications
	// (Figure 6).
	Active stats.Summary
	// BFDBaseline summarises the oracle BFD packing across replications.
	BFDBaseline stats.Summary
	// MigrationsPerRound summarises per-round migration counts pooled
	// across rounds and replications (Figure 8).
	MigrationsPerRound stats.Summary
	// TotalMigrations summarises end-of-run totals across replications.
	TotalMigrations stats.Summary
	// CumMigrations is the per-round cumulative migration count averaged
	// over replications (Figure 9).
	CumMigrations []float64
	// EnergyKJ summarises total migration energy overhead across
	// replications, in kJ (Figure 10, Eq. 3).
	EnergyKJ stats.Summary
	// SLAV summarises the final SLAV metric across replications (Table I).
	SLAV stats.Summary
	// SLAVO and SLALM are its factors.
	SLAVO, SLALM stats.Summary
	// TotalEnergyKWh summarises total server energy (baseline + migration)
	// across replications; ESV is energy × SLAV.
	TotalEnergyKWh stats.Summary
	ESV            stats.Summary
}

// RunCell executes all replications of one grid cell and aggregates them.
func RunCell(g Grid, cell Cell) (*CellStats, error) {
	g = g.withDefaults()
	x := Experiment{
		PMs: cell.PMs, Ratio: cell.Ratio, Rounds: g.Rounds,
		Seed: cellSeed(g.Seed, cell), Policy: cell.Policy, GLAP: g.GLAP,
	}
	results, err := RunReplicated(x, g.Reps, g.Workers)
	if err != nil {
		return nil, err
	}
	return aggregate(cell, g.Rounds, results), nil
}

// cellSeed gives each (size, ratio) cell its own seed, shared across
// policies so comparisons are paired on identical workloads and placements.
func cellSeed(seed uint64, cell Cell) uint64 {
	return sim.NewRNG(seed).Derive(uint64(cell.PMs), uint64(cell.Ratio)).Uint64()
}

func aggregate(cell Cell, rounds int, results []*Result) *CellStats {
	cs := &CellStats{Cell: cell, Reps: len(results)}
	var overloaded, frac, active, bfdBase, perRound, totals, energy, slav, slavo, slalm []float64
	var totalKWh, esv []float64
	cum := make([]float64, rounds)
	for _, r := range results {
		totalKWh = append(totalKWh, metrics.TotalEnergyKWh(r.Cluster))
		esv = append(esv, metrics.ESV(r.Cluster))
		overloaded = append(overloaded, r.Series.OverloadedPerRound()...)
		frac = append(frac, r.Series.FractionOverloaded()...)
		perRound = append(perRound, r.Series.MigrationsPerRound()...)
		last, ok := r.Series.Last()
		if ok {
			active = append(active, float64(last.ActivePMs))
			totals = append(totals, float64(last.Migrations))
			energy = append(energy, last.MigrationEnergyJ/1000)
		}
		bfdBase = append(bfdBase, float64(r.BFDBaseline))
		slav = append(slav, r.Series.SLAV)
		slavo = append(slavo, r.Series.SLAVO)
		slalm = append(slalm, r.Series.SLALM)
		for i, v := range r.Series.CumulativeMigrations() {
			if i < len(cum) {
				cum[i] += v / float64(len(results))
			}
		}
	}
	cs.Overloaded = stats.Summarize(overloaded)
	cs.FracOverloaded = stats.Summarize(frac)
	cs.Active = stats.Summarize(active)
	cs.BFDBaseline = stats.Summarize(bfdBase)
	cs.MigrationsPerRound = stats.Summarize(perRound)
	cs.TotalMigrations = stats.Summarize(totals)
	cs.CumMigrations = cum
	cs.EnergyKJ = stats.Summarize(energy)
	cs.SLAV = stats.Summarize(slav)
	cs.SLAVO = stats.Summarize(slavo)
	cs.SLALM = stats.Summarize(slalm)
	cs.TotalEnergyKWh = stats.Summarize(totalKWh)
	cs.ESV = stats.Summarize(esv)
	return cs
}

// RunGrid executes every cell of the grid and returns the aggregated stats
// keyed by cell, plus the deterministic cell order for presentation.
func RunGrid(g Grid) (map[Cell]*CellStats, []Cell, error) {
	g = g.withDefaults()
	var order []Cell
	out := make(map[Cell]*CellStats)
	for _, size := range g.Sizes {
		for _, ratio := range g.Ratios {
			for _, p := range g.Policies {
				cell := Cell{PMs: size, Ratio: ratio, Policy: p}
				cs, err := RunCell(g, cell)
				if err != nil {
					return nil, nil, fmt.Errorf("cell %s: %w", cell, err)
				}
				out[cell] = cs
				order = append(order, cell)
			}
		}
	}
	return out, order, nil
}

// ConvergenceResult is the Figure 5 experiment outcome for one VM:PM ratio:
// the cosine-similarity trajectory across the learning (WOG) and aggregation
// (WG) phases.
type ConvergenceResult struct {
	Ratio  int
	Rounds []int
	Cosine []float64
	// AggStart is the first aggregation-phase round.
	AggStart int
}

// RunConvergence reproduces Figure 5: it pre-trains GLAP on clusters of the
// given size for each ratio, sampling Q-value similarity every measureEvery
// rounds through both phases.
func RunConvergence(pms int, ratios []int, cfg glap.Config, seed uint64, measureEvery int) ([]*ConvergenceResult, error) {
	if len(ratios) == 0 {
		ratios = []int{2, 3, 4}
	}
	if measureEvery <= 0 {
		measureEvery = 1
	}
	var out []*ConvergenceResult
	for _, ratio := range ratios {
		x := Experiment{
			PMs: pms, Ratio: ratio, Rounds: 720,
			Seed: sim.NewRNG(seed).Derive(uint64(ratio)).Uint64(), Policy: PolicyGLAP,
		}
		w, err := workloadFor(x)
		if err != nil {
			return nil, err
		}
		cl, err := buildCluster(x, w)
		if err != nil {
			return nil, err
		}
		pre, err := glap.Pretrain(cfg, cl, deriveSeed(x.Seed, seedPretrain), glap.PretrainOptions{
			MeasureEvery: measureEvery,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, &ConvergenceResult{
			Ratio:    ratio,
			Rounds:   pre.ConvergenceRound,
			Cosine:   pre.Convergence,
			AggStart: pre.LearnRounds,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ratio < out[j].Ratio })
	return out, nil
}
