module github.com/glap-sim/glap

go 1.22
