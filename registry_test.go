package glapsim

import (
	"strings"
	"testing"

	"github.com/glap-sim/glap/internal/sim"
)

func TestRegisteredPoliciesContainBuiltins(t *testing.T) {
	have := map[Policy]bool{}
	for _, p := range RegisteredPolicies() {
		have[p] = true
	}
	for _, p := range []Policy{PolicyGLAP, PolicyGLAPAsync, PolicyGRMP, PolicyEcoCloud, PolicyPABFD, PolicyNone} {
		if !have[p] {
			t.Fatalf("built-in policy %q not registered", p)
		}
	}
}

// TestCentralizedSpecsSkipOverlay pins that PABFD and None never construct a
// peer-sampling overlay: their specs leave Overlay (and Pretrain) unset, so
// Run skips overlayFor entirely, as the pre-registry switch did.
func TestCentralizedSpecsSkipOverlay(t *testing.T) {
	for _, p := range []Policy{PolicyPABFD, PolicyNone} {
		spec, ok := policySpec(p)
		if !ok {
			t.Fatalf("policy %q not registered", p)
		}
		if spec.Overlay || spec.Pretrain {
			t.Fatalf("policy %q spec requests Overlay=%v Pretrain=%v, want neither", p, spec.Overlay, spec.Pretrain)
		}
	}
	for _, p := range []Policy{PolicyGLAP, PolicyGLAPAsync, PolicyGRMP, PolicyEcoCloud} {
		spec, _ := policySpec(p)
		if !spec.Overlay {
			t.Fatalf("distributed policy %q spec does not request an overlay", p)
		}
	}
}

func TestValidateRejectsUnregisteredPolicy(t *testing.T) {
	x := smallExperiment("no-such-policy")
	err := x.Validate()
	if err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("want unknown-policy error, got %v", err)
	}
}

// TestRegisterPolicyRecipe is the one-registration recipe from DESIGN.md: a
// new policy is a RegisterPolicy call with a builder, after which the facade
// runs it with no further edits.
func TestRegisterPolicyRecipe(t *testing.T) {
	const name Policy = "test-noop"
	if _, dup := policySpec(name); !dup {
		RegisterPolicy(name, PolicySpec{
			Build: func(ctx *StackContext) error {
				// A trivial stack: consolidate nothing, just observe rounds.
				ctx.E.Register(&countingProtocol{})
				return nil
			},
		})
	}
	res, err := Run(smallExperiment(name))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series.Samples) != 40 {
		t.Fatalf("custom policy run produced %d samples, want 40", len(res.Series.Samples))
	}
}

// countingProtocol is the minimal sim.Protocol for the recipe test.
type countingProtocol struct{ rounds int }

func (p *countingProtocol) Name() string                            { return "test-noop-proto" }
func (p *countingProtocol) Setup(e *sim.Engine, n *sim.Node) any    { return struct{}{} }
func (p *countingProtocol) Round(e *sim.Engine, n *sim.Node, r int) { p.rounds++ }

func TestRegisterPolicyRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterPolicy(PolicyGLAP, PolicySpec{Build: func(*StackContext) error { return nil }})
}

// TestRunPolicyGLAPAsync drives the message-passing transport through the
// public facade: same decision core, real messages with latency and loss,
// and a clean drain (no leaked reservations) before the final measurements.
func TestRunPolicyGLAPAsync(t *testing.T) {
	x := smallExperiment(PolicyGLAPAsync)
	x.Net = NetConfig{Latency: 5, DropProb: 0.1}
	res, err := Run(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series.Samples) != 40 {
		t.Fatalf("%d samples, want 40", len(res.Series.Samples))
	}
	if got := res.Cluster.OpenReservations(); got != 0 {
		t.Fatalf("%d reservations leaked after drain", got)
	}
	if res.Cluster.ActivePMs() >= x.PMs {
		t.Fatalf("async consolidation left all %d PMs active", x.PMs)
	}
}

// TestRunAsyncZeroLossTracksSync pins the facade-level counterpart of the
// protocol equivalence test: at mild latency and zero loss, the async
// transport's packing stays close to the synchronous shortcut on the same
// workload, placement and tables.
func TestRunAsyncZeroLossTracksSync(t *testing.T) {
	sync, err := Run(smallExperiment(PolicyGLAP))
	if err != nil {
		t.Fatal(err)
	}
	x := smallExperiment(PolicyGLAPAsync)
	x.Net = NetConfig{Latency: 1}
	async, err := Run(x)
	if err != nil {
		t.Fatal(err)
	}
	diff := sync.Cluster.ActivePMs() - async.Cluster.ActivePMs()
	if diff < 0 {
		diff = -diff
	}
	if diff > 4 {
		t.Fatalf("async active PMs %d vs sync %d: diverged by %d",
			async.Cluster.ActivePMs(), sync.Cluster.ActivePMs(), diff)
	}
}
