// Command tracegen generates a synthetic Google-cluster-style workload trace
// and writes it as CSV (vm,round,cpu,mem), or summarises the statistics of
// an existing trace file. The generated files feed glapsim -trace and any
// external analysis.
//
//	tracegen -vms 400 -rounds 720 -seed 7 -o trace.csv
//	tracegen -stats trace.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/glap-sim/glap/internal/stats"
	"github.com/glap-sim/glap/internal/trace"
)

func main() {
	vms := flag.Int("vms", 200, "number of VM series")
	rounds := flag.Int("rounds", 720, "series length in rounds")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("o", "", "output CSV path (default stdout)")
	statsPath := flag.String("stats", "", "summarise an existing CSV trace instead of generating")
	flag.Parse()

	if *statsPath != "" {
		set, err := trace.LoadFile(*statsPath)
		if err != nil {
			log.Fatal(err)
		}
		printStats(set)
		return
	}

	set, err := trace.Generate(trace.DefaultGenConfig(*vms, *rounds, *seed))
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		if err := trace.WriteCSV(os.Stdout, set); err != nil {
			log.Fatal(err)
		}
		return
	}
	// A .gz suffix selects compressed output.
	if err := trace.WriteFile(*out, set); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d VMs x %d rounds to %s\n", set.NumVMs(), set.Rounds(), *out)
	printStats(set)
}

func printStats(set *trace.Set) {
	cpu, mem := set.MeanUtilisation()
	fmt.Fprintf(os.Stderr, "mean utilisation: cpu=%.3f mem=%.3f\n", cpu, mem)

	var means, autos []float64
	byArch := map[string]int{}
	for vm := 0; vm < set.NumVMs(); vm++ {
		ser := set.Series(vm)
		cs := make([]float64, len(ser))
		for i, s := range ser {
			cs[i] = s.CPU
		}
		means = append(means, stats.Mean(cs))
		autos = append(autos, stats.Autocorrelation(cs, 1))
		byArch[set.ArchetypeOf(vm).String()]++
	}
	ms := stats.Summarize(means)
	fmt.Fprintf(os.Stderr, "per-VM mean cpu: median=%.3f p10=%.3f p90=%.3f max=%.3f\n",
		ms.Median, ms.P10, ms.P90, ms.Max)
	fmt.Fprintf(os.Stderr, "lag-1 autocorrelation: median=%.3f\n", stats.Summarize(autos).Median)
	fmt.Fprintf(os.Stderr, "archetype mix: %v\n", byArch)
}
