package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	glapsim "github.com/glap-sim/glap"
)

// scenarioReport is the BENCH_scenarios.json document: configuration echo
// plus one row per scenario × size.
type scenarioReport struct {
	envMeta
	Sizes  []int                 `json:"sizes"`
	Ratio  int                   `json:"ratio"`
	Rounds int                   `json:"rounds"`
	Seed   uint64                `json:"seed"`
	Rows   []glapsim.ScenarioRow `json:"rows"`
}

// runScenarios is the `-exp scenarios` mode: the failure/heterogeneity/
// topology/real-trace suite.
func runScenarios(seed uint64, rounds, workers int, sizes []int, outPath string) {
	cfg := glapsim.ScenarioConfig{
		Sizes: sizes, Rounds: rounds, Seed: seed, Workers: workers,
	}
	fmt.Printf("== scenario suite: sizes=%v rounds=%d seed=%d ==\n", sizes, rounds, seed)
	currentEnv().warnIfSerial()
	rows, err := glapsim.RunScenarios(cfg)
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\tpms\tpolicy\tslav\tenergy kWh\tmigrations\tactive\tnotes")
	for _, r := range rows {
		notes := ""
		switch r.Scenario {
		case string(glapsim.ScenarioCrashChurn):
			warm, cold := "-", "-"
			if r.WarmReconvergeRounds != nil {
				warm = fmt.Sprintf("%.1f", *r.WarmReconvergeRounds)
			}
			if r.ColdReconvergeRounds != nil {
				cold = fmt.Sprintf("%.1f", *r.ColdReconvergeRounds)
			}
			notes = fmt.Sprintf("crashes=%d evac=%d stranded=%d warm/cold reconverge=%s/%s rounds",
				r.Crashes, r.Evacuated, r.Stranded, warm, cold)
		case string(glapsim.ScenarioTopology):
			notes = fmt.Sprintf("switch %.0f W, net %.3f kWh", r.MeanSwitchPowerW, r.NetworkEnergyKWh)
		case string(glapsim.ScenarioRealTrace):
			notes = fmt.Sprintf("trace %d VMs × %d rounds via CSV", r.TraceVMs, r.TraceRounds)
		}
		fmt.Fprintf(w, "%s\t%d\t%s\t%.3g\t%.3f\t%d\t%d\t%s\n",
			r.Scenario, r.PMs, r.Policy, r.SLAV, r.EnergyKWh, r.Migrations, r.ActivePMs, notes)
	}
	w.Flush()

	report := scenarioReport{
		envMeta: currentEnv(),
		Sizes:   sizes, Ratio: 2, Rounds: rounds, Seed: seed, Rows: rows,
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d rows)\n", outPath, len(rows))
}
