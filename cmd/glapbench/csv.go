package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	glapsim "github.com/glap-sim/glap"
)

// writeCSVDir dumps every figure's data as CSV files into dir for external
// plotting (one file per artifact, matching the printed tables).
func writeCSVDir(dir string, grid glapsim.Grid, cells map[glapsim.Cell]*glapsim.CellStats, order []glapsim.Cell, conv []*glapsim.ConvergenceResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if conv != nil {
		if err := writeCSV(filepath.Join(dir, "figure5_convergence.csv"), convergenceRows(conv)); err != nil {
			return err
		}
	}
	files := map[string][][]string{
		"figure6_packing.csv":    f6Rows(cells, order),
		"figure7_overloaded.csv": f7Rows(cells, order),
		"figure8_migrations.csv": f8Rows(cells, order),
		"figure9_cumulative.csv": f9Rows(grid, cells, order),
		"figure10_energy.csv":    f10Rows(cells, order),
		"table1_slav.csv":        t1Rows(grid, cells),
		"extra_energy_esv.csv":   energyRows(cells, order),
	}
	for name, rows := range files {
		if err := writeCSV(filepath.Join(dir, name), rows); err != nil {
			return err
		}
	}
	return nil
}

func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

func convergenceRows(conv []*glapsim.ConvergenceResult) [][]string {
	rows := [][]string{{"round", "phase"}}
	for _, r := range conv {
		rows[0] = append(rows[0], fmt.Sprintf("ratio%d", r.Ratio))
	}
	if len(conv) == 0 {
		return rows
	}
	for i, round := range conv[0].Rounds {
		phase := "WOG"
		if round >= conv[0].AggStart {
			phase = "WG"
		}
		row := []string{strconv.Itoa(round), phase}
		for _, r := range conv {
			if i < len(r.Cosine) {
				row = append(row, ftoa(r.Cosine[i]))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	return rows
}

func f6Rows(cells map[glapsim.Cell]*glapsim.CellStats, order []glapsim.Cell) [][]string {
	rows := [][]string{{"cell", "frac_overloaded_mean", "active_median", "bfd_baseline_median"}}
	for _, c := range order {
		s := cells[c]
		rows = append(rows, []string{c.String(), ftoa(s.FracOverloaded.Mean), ftoa(s.Active.Median), ftoa(s.BFDBaseline.Median)})
	}
	return rows
}

func f7Rows(cells map[glapsim.Cell]*glapsim.CellStats, order []glapsim.Cell) [][]string {
	rows := [][]string{{"cell", "median", "p10", "p90", "mean"}}
	for _, c := range order {
		s := cells[c]
		rows = append(rows, []string{c.String(), ftoa(s.Overloaded.Median), ftoa(s.Overloaded.P10), ftoa(s.Overloaded.P90), ftoa(s.Overloaded.Mean)})
	}
	return rows
}

func f8Rows(cells map[glapsim.Cell]*glapsim.CellStats, order []glapsim.Cell) [][]string {
	rows := [][]string{{"cell", "per_round_median", "per_round_p10", "per_round_p90", "total_median"}}
	for _, c := range order {
		s := cells[c]
		rows = append(rows, []string{c.String(), ftoa(s.MigrationsPerRound.Median), ftoa(s.MigrationsPerRound.P10), ftoa(s.MigrationsPerRound.P90), ftoa(s.TotalMigrations.Median)})
	}
	return rows
}

func f9Rows(grid glapsim.Grid, cells map[glapsim.Cell]*glapsim.CellStats, order []glapsim.Cell) [][]string {
	size := grid.Sizes[len(grid.Sizes)/2]
	header := []string{"round"}
	var series []*glapsim.CellStats
	for _, c := range order {
		if c.PMs == size {
			header = append(header, fmt.Sprintf("%d-%s", c.Ratio, c.Policy))
			series = append(series, cells[c])
		}
	}
	rows := [][]string{header}
	if len(series) == 0 {
		return rows
	}
	for i := range series[0].CumMigrations {
		row := []string{strconv.Itoa(i + 1)}
		for _, s := range series {
			row = append(row, ftoa(s.CumMigrations[i]))
		}
		rows = append(rows, row)
	}
	return rows
}

func f10Rows(cells map[glapsim.Cell]*glapsim.CellStats, order []glapsim.Cell) [][]string {
	rows := [][]string{{"cell", "energy_kj_median", "p10", "p90"}}
	for _, c := range order {
		s := cells[c]
		rows = append(rows, []string{c.String(), ftoa(s.EnergyKJ.Median), ftoa(s.EnergyKJ.P10), ftoa(s.EnergyKJ.P90)})
	}
	return rows
}

func t1Rows(grid glapsim.Grid, cells map[glapsim.Cell]*glapsim.CellStats) [][]string {
	header := []string{"size_ratio"}
	for _, p := range glapsim.Policies {
		header = append(header, string(p))
	}
	rows := [][]string{header}
	for _, size := range grid.Sizes {
		for _, ratio := range grid.Ratios {
			row := []string{fmt.Sprintf("%d-%d", size, ratio)}
			for _, p := range glapsim.Policies {
				if s, ok := cells[glapsim.Cell{PMs: size, Ratio: ratio, Policy: p}]; ok {
					row = append(row, ftoa(s.SLAV.Median))
				} else {
					row = append(row, "")
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

func energyRows(cells map[glapsim.Cell]*glapsim.CellStats, order []glapsim.Cell) [][]string {
	rows := [][]string{{"cell", "total_energy_kwh_median", "esv_median"}}
	for _, c := range order {
		s := cells[c]
		rows = append(rows, []string{c.String(), ftoa(s.TotalEnergyKWh.Median), ftoa(s.ESV.Median)})
	}
	return rows
}
