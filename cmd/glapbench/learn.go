package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"github.com/glap-sim/glap/internal/glap"
)

// The `-exp learn` mode is a before/after comparison of the Algorithm-1
// training kernels: "before" runs the retained pre-fusion reference
// (materialised profile multiset, partition plus four O(P) subset scans per
// iteration), "after" the fused zero-alloc kernel (precomputed weighted
// profiles, O(1) duplication bookkeeping, one partition+aggregation pass,
// incremental post-action states). Both kernels consume identically seeded
// streams over identical profile sets, so the ns- and allocs-per-iteration
// columns isolate kernel cost. Results are written to BENCH_learn.json.

// learnBaseSizes are the base profile counts measured: a near-empty PM
// pair, the evaluation clusters' typical collected set, and a dense one.
var learnBaseSizes = []int{2, 4, 8, 16}

type learnReport struct {
	envMeta
	Iters int                     `json:"iters"`
	Seed  uint64                  `json:"seed"`
	Rows  []glap.LearnKernelStats `json:"rows"`
	// SpeedupByBase maps base profile count to reference/fused ns ratio.
	SpeedupByBase map[string]float64 `json:"speedup_by_base"`
}

// runLearn is the `-exp learn` mode.
func runLearn(seed uint64, iters int, outPath string) {
	rep := learnReport{
		envMeta:       currentEnv(),
		Iters:         iters,
		Seed:          seed,
		SpeedupByBase: map[string]float64{},
	}
	fmt.Printf("== learn: reference (pre-fusion) vs fused training kernel, %d iters ==\n", iters)
	rep.warnIfSerial()
	for _, base := range learnBaseSizes {
		ref := glap.MeasureLearnKernel(true, base, iters, seed)
		fused := glap.MeasureLearnKernel(false, base, iters, seed)
		rep.Rows = append(rep.Rows, ref, fused)
		speedup := ref.NsPerIter / fused.NsPerIter
		rep.SpeedupByBase[fmt.Sprintf("%d", base)] = speedup
		fmt.Printf("base=%-3d multiset=%-4d reference %8.0f ns/iter %7.2f allocs/iter %8.0f B/iter\n",
			base, ref.MultisetLen, ref.NsPerIter, ref.AllocsPerIter, ref.BytesPerIter)
		fmt.Printf("             fused     %8.0f ns/iter %7.2f allocs/iter %8.0f B/iter   %5.1fx\n",
			fused.NsPerIter, fused.AllocsPerIter, fused.BytesPerIter, speedup)
		// The MemStats delta can pick up stray runtime-internal allocations
		// (GC bookkeeping), so only flag a per-iteration-scale signal; the
		// exact zero-alloc gate is TestTrainOnceZeroAllocs.
		if fused.AllocsPerIter > 0.01 {
			fmt.Printf("             WARNING: fused kernel allocates in steady state\n")
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}
