package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/glap"
	"github.com/glap-sim/glap/internal/metrics"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/qlearn"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/stats"
	"github.com/glap-sim/glap/internal/trace"
)

// The `-exp scale` mode measures per-stage wall time of a GLAP run across
// cluster sizes and worker counts, seeding the repo's perf trajectory. The
// workload is deliberately reduced (short pre-training, short consolidation)
// so the full grid completes in minutes; the stage structure — pretrain /
// consolidation / metrics — matches the real experiment exactly.
const (
	scaleRatio       = 2
	scaleLearnRounds = 40
	scaleAggRounds   = 20
	scaleConsRounds  = 40

	// scaleTightGCMinPMs is the smallest cluster size that runs under the
	// pinned GOGC=10 discipline (see runScale).
	scaleTightGCMinPMs = 20000
)

// scaleSizes spans three orders of magnitude: the paper's evaluation range
// (≤ 2000 PMs) up to the ROADMAP's six-figure north star. The hyperscale
// rows exist because the struct-of-arrays cluster core, the streaming trace
// source, and the compact shared Q-table backing hold per-PM state to a few
// KB; the dense per-entity layout they replaced ran ~129 KB/PM and could
// not have fit 100k PMs in commodity memory.
var scaleSizes = []int{500, 1000, 2000, 5000, 20000, 50000, 100000}

// scaleRow is one grid cell of BENCH_scale.json.
type scaleRow struct {
	PMs     int `json:"pms"`
	VMs     int `json:"vms"`
	Workers int `json:"workers"`

	// The environment is recorded per row (not just in the header) so a
	// committed row can never be mistaken for evidence of parallel speedup
	// when the run was taken on a throttled or single-core host.
	envMeta

	// Precision is the Q-value storage tier the row ran on ("f64"/"f32").
	// F32 rows form their own hash-equivalence class: rounded Q-values
	// legitimately produce a different decision series, which must still be
	// byte-identical across worker counts.
	Precision string `json:"precision"`

	// PairSharded / SkipQuiescent mark which engine options the row ran
	// with. Sharded rows form their own hash-equivalence class (the sharded
	// semantics are a distinct deterministic reference); skip rows must
	// hash identically to the sequential rows of the same size.
	PairSharded   bool `json:"pair_sharded"`
	SkipQuiescent bool `json:"skip_quiescent"`

	// PairsBatchesPerRound is the mean number of node-disjoint batches the
	// pair scheduler produced per sharded protocol pass (0 on unsharded
	// rows) — the depth of the critical path the fan-out executes.
	PairsBatchesPerRound float64 `json:"pairs_batches_per_round"`
	// RoundsSkipped counts rounds batch-advanced by quiescence-skipping (0
	// unless the row enables it; the synthetic AR workload never goes
	// fully quiet, so 0 is the expected value here — see BENCH_quiesce.json
	// for the plateau configuration where the fast path engages).
	RoundsSkipped int64 `json:"rounds_skipped"`

	PretrainSec      float64 `json:"pretrain_sec"`
	ConsolidationSec float64 `json:"consolidation_sec"`
	MetricsSec       float64 `json:"metrics_sec"`
	TotalSec         float64 `json:"total_sec"`

	// PretrainLearnSec and PretrainAggSec attribute PretrainSec to its two
	// phases — Algorithm 1's training rounds and Algorithm 2's aggregation
	// rounds (plus result collection) — so a pretrain regression names the
	// loop it lives in without a profiler.
	PretrainLearnSec float64 `json:"pretrain_learn_sec"`
	PretrainAggSec   float64 `json:"pretrain_agg_sec"`

	// MergeFastHits counts the pretrain stage's table merges resolved by a
	// qlearn fast path (pair already sharing a backing, aligned canonical
	// cell sets, equal-content collapse, or set-equal adopt);
	// MergeAlignedHits is the aligned subset — the canonical-interning
	// steady state the pointer-equality path targets (0 on rows whose
	// tables stay under the interning threshold). MergeUnions counts the
	// residual general unions and MergeTotal all merges, so
	// MergeFastHits/MergeTotal is the fast-path rate.
	MergeFastHits    uint64 `json:"merge_fast_hits"`
	MergeAlignedHits uint64 `json:"merge_aligned_hits"`
	MergeUnions      uint64 `json:"merge_unions"`
	MergeTotal       uint64 `json:"merge_total"`

	// PretrainAllocsPerIter and PretrainBytesPerIter are the heap
	// allocations and bytes of the whole pretrain stage divided by the
	// scheduled training iterations (PMs × learn rounds × LearnIterations)
	// — the alloc budget of the paper's hot path. The numerator includes
	// the stage's fixed costs (engine setup, Q-table backings, the
	// aggregation rounds), so the steady-state inner loop is bounded above
	// by — and with the zero-alloc kernel far below — these figures.
	PretrainAllocsPerIter float64 `json:"pretrain_allocs_per_iter"`
	PretrainBytesPerIter  float64 `json:"pretrain_bytes_per_iter"`

	// PretrainSpeedup is this row's pretrain time relative to the same-size
	// workers=1 row (1.0 for the sequential row itself).
	PretrainSpeedup float64 `json:"pretrain_speedup"`

	// ValueBytes is the post-pretrain Q-value storage across every node's
	// tables — capacity of the pooled value arrays, charged 8 B/slot on the
	// F64 tier and 4 B/slot on F32. It is the term of the memory floor the
	// precision tier halves, measured rather than projected.
	ValueBytes int64 `json:"value_bytes"`

	// MergeNsPerPair times one steady-state pairwise merge on the converged
	// tables (COW detach of one endpoint plus a full sets-equal average
	// scan — the shape of every exchange in saturated aggregation gossip).
	MergeNsPerPair float64 `json:"merge_ns_per_pair"`
	// CosineNsPerSample times one φ^io cosine sample over the dense
	// convergence vectors on the row's tier (13122 elements; the F32 tier
	// scans half the bytes).
	CosineNsPerSample float64 `json:"cosine_ns_per_sample"`

	// HeapBytesPeak is the highest live-heap watermark (runtime.MemStats
	// HeapAlloc) observed across the whole cell — build, pretrain,
	// consolidation, metrics — sampled by a background watcher and at every
	// stage boundary. The per-cell runtime.GC() before the baseline read
	// keeps the figure comparable across cells; divided by PMs it is the
	// bytes-per-PM capacity metric tracked in EXPERIMENTS.md.
	HeapBytesPeak uint64 `json:"heap_bytes_peak"`

	// SeriesHash fingerprints the run's full metrics series; equal hashes
	// across worker counts witness the determinism contract.
	SeriesHash string `json:"series_hash"`
}

type scaleReport struct {
	envMeta
	Ratio       int        `json:"ratio"`
	LearnRounds int        `json:"learn_rounds"`
	AggRounds   int        `json:"agg_rounds"`
	ConsRounds  int        `json:"consolidation_rounds"`
	Seed        uint64     `json:"seed"`
	Rows        []scaleRow `json:"rows"`
}

// scaleWorkerList is {1, GOMAXPROCS}, extended with 8 when GOMAXPROCS < 8 so
// the differential rows exercise real multi-goroutine execution (explicit
// counts bypass the shared budget) even on small machines.
func scaleWorkerList() []int {
	ws := []int{1}
	if g := runtime.GOMAXPROCS(0); g > 1 {
		ws = append(ws, g)
	}
	if runtime.GOMAXPROCS(0) < 8 {
		ws = append(ws, 8)
	}
	return ws
}

// heapWatcher tracks the peak live heap (MemStats.HeapAlloc) over a window.
// A background goroutine samples on a short ticker so peaks inside a long
// stage are not missed; Sample is also called explicitly at stage boundaries
// so short cells with no tick still record every inter-stage watermark.
type heapWatcher struct {
	peak uint64
	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

func startHeapWatcher() *heapWatcher {
	hw := &heapWatcher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(hw.done)
		t := time.NewTicker(100 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				hw.Sample()
			case <-hw.stop:
				return
			}
		}
	}()
	return hw
}

func (hw *heapWatcher) Sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	hw.mu.Lock()
	if ms.HeapAlloc > hw.peak {
		hw.peak = ms.HeapAlloc
	}
	hw.mu.Unlock()
}

// Stop takes a final sample, terminates the watcher, and returns the peak.
func (hw *heapWatcher) Stop() uint64 {
	hw.Sample()
	close(hw.stop)
	<-hw.done
	hw.mu.Lock()
	defer hw.mu.Unlock()
	return hw.peak
}

// scaleCellOpts selects the engine execution options of one scale cell.
type scaleCellOpts struct {
	pairSharded   bool
	skipQuiescent bool
	prec          qlearn.Precision
}

// microSink keeps the micro-benchmark loops below observable.
var microSink float64

// measureMergeNs times one steady-state pairwise merge over clones of the
// converged tables: perturb one cell of a shared-backing endpoint, then
// merge — a copy-on-write detach plus a full sets-equal average scan, the
// dominant shape once aggregation gossip saturates. The clones draw no
// engine randomness, so the measurement never disturbs the row's series.
func measureMergeNs(tables *glap.NodeTables) float64 {
	p, q := tables.Out.Clone(), tables.Out.Clone()
	qlearn.Unify(p, q) // align onto one shared backing first
	const iters = 200
	start := time.Now()
	for i := 0; i < iters; i++ {
		q.Set(1, 2, float64(i))
		qlearn.Unify(p, q)
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}

// measureCosineNs times one dense φ^io cosine sample on the row's tier.
func measureCosineNs(tables *glap.NodeTables, prec qlearn.Precision) float64 {
	const iters = 200
	if prec == qlearn.F32 {
		a := append([]float32(nil), tables.IOVec32()...)
		b := append([]float32(nil), a...)
		b[0]++
		start := time.Now()
		for i := 0; i < iters; i++ {
			microSink += stats.CosineAligned32(a, b)
		}
		return float64(time.Since(start).Nanoseconds()) / iters
	}
	a := append([]float64(nil), tables.IOVec()...)
	b := append([]float64(nil), a...)
	b[0]++
	start := time.Now()
	for i := 0; i < iters; i++ {
		microSink += stats.CosineAligned(a, b)
	}
	return float64(time.Since(start).Nanoseconds()) / iters
}

// runScaleCell executes one full reduced GLAP experiment at the given size
// and worker count, timing each stage.
func runScaleCell(pms, workers int, seed uint64, w *trace.Set, opts2 scaleCellOpts) (scaleRow, error) {
	row := scaleRow{
		PMs: pms, VMs: pms * scaleRatio, Workers: workers,
		envMeta:     currentEnv(),
		Precision:   opts2.prec.String(),
		PairSharded: opts2.pairSharded, SkipQuiescent: opts2.skipQuiescent,
	}
	cfg := glap.Config{LearnRounds: scaleLearnRounds, AggRounds: scaleAggRounds, Precision: opts2.prec}
	opts := glap.PretrainOptions{Workers: workers}

	build := func() (*dc.Cluster, error) {
		c, err := dc.New(dc.Config{PMs: pms, Workload: w})
		if err != nil {
			return nil, err
		}
		c.Workers = workers
		rng := sim.NewRNG(seed + 1)
		c.PlaceRandom(rng.Intn)
		return c, nil
	}

	// Collect the previous cell's garbage now so its GC debt is not billed
	// to this cell's timings or its heap watermark (large-cell heaps run to
	// hundreds of MB, and at 100k PMs to gigabytes).
	runtime.GC()
	hw := startHeapWatcher()
	pre, err := build()
	if err != nil {
		hw.Stop()
		return row, err
	}
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	qlearn.ResetMergeStats()
	start := time.Now()
	res, err := glap.Pretrain(cfg, pre, seed+2, opts)
	if err != nil {
		hw.Stop()
		return row, err
	}
	row.PretrainSec = time.Since(start).Seconds()
	row.PretrainLearnSec, row.PretrainAggSec = res.LearnSec, res.AggSec
	ms := qlearn.ReadMergeStats()
	row.MergeFastHits, row.MergeAlignedHits = ms.FastHits(), ms.AlignedIdx
	row.MergeUnions, row.MergeTotal = ms.Unions, ms.Merges
	runtime.ReadMemStats(&msAfter)
	hw.Sample()
	trainIters := float64(pms) * float64(scaleLearnRounds) * float64(glap.DefaultConfig().LearnIterations)
	row.PretrainAllocsPerIter = float64(msAfter.Mallocs-msBefore.Mallocs) / trainIters
	row.PretrainBytesPerIter = float64(msAfter.TotalAlloc-msBefore.TotalAlloc) / trainIters

	// Post-pretrain value-storage accounting: every node's converged tables,
	// counted once per distinct backing (COW sharing means far fewer arrays
	// than tables).
	qts := make([]*qlearn.Table, 0, 2*len(res.Tables))
	for _, nt := range res.Tables {
		if nt != nil {
			qts = append(qts, nt.Out, nt.In)
		}
	}
	_, _, valueBytes, _ := qlearn.Footprint(qts)
	row.ValueBytes = valueBytes

	tables, err := glap.SharedTables(res)
	if err != nil {
		hw.Stop()
		return row, err
	}
	run, err := build()
	if err != nil {
		hw.Stop()
		return row, err
	}
	e := sim.NewEngine(pms, seed+3)
	e.Workers = workers
	e.PairSharded = opts2.pairSharded
	e.SkipQuiescent = opts2.skipQuiescent
	b, err := policy.Bind(e, run)
	if err != nil {
		hw.Stop()
		return row, err
	}
	glap.InstallConsolidation(e, b, tables, cfg, opts)
	series := metrics.Attach(e, run, 0)
	hw.Sample()
	start = time.Now()
	e.RunRounds(scaleConsRounds)
	row.ConsolidationSec = time.Since(start).Seconds()
	hw.Sample()
	if passes, batches, _ := e.PairStats(); passes > 0 {
		row.PairsBatchesPerRound = float64(batches) / float64(passes)
	}
	row.RoundsSkipped = e.RoundsSkipped()

	start = time.Now()
	series.Finalize(run)
	energy := metrics.TotalEnergyKWh(run)
	if err := run.CheckInvariants(); err != nil {
		hw.Stop()
		return row, err
	}
	row.MetricsSec = time.Since(start).Seconds()
	row.TotalSec = row.PretrainSec + row.ConsolidationSec + row.MetricsSec
	row.SeriesHash = hashScaleSeries(series, energy)
	// Micro-timings last, so their clone churn never pollutes the stage
	// timings above (the heap watcher is still live, but the clones are two
	// tables against a cluster-sized heap).
	row.MergeNsPerPair = measureMergeNs(tables)
	row.CosineNsPerSample = measureCosineNs(tables, opts2.prec)
	row.HeapBytesPeak = hw.Stop()
	return row, nil
}

// hashScaleSeries fingerprints every sample and the final SLA/energy floats
// bit-exactly.
func hashScaleSeries(s *metrics.Series, energyKWh float64) string {
	h := sha256.New()
	for _, sm := range s.Samples {
		fmt.Fprintf(h, "%d,%d,%d,%d,%x\n",
			sm.Round, sm.ActivePMs, sm.OverloadedPMs, sm.Migrations,
			math.Float64bits(sm.MigrationEnergyJ))
	}
	fmt.Fprintf(h, "%x,%x,%x,%x\n",
		math.Float64bits(s.SLAVO), math.Float64bits(s.SLALM),
		math.Float64bits(s.SLAV), math.Float64bits(energyKWh))
	return hex.EncodeToString(h.Sum(nil))
}

// runScale is the `-exp scale` mode. sizes overrides the default grid when
// non-empty (the CI smoke runs a single small size).
func runScale(seed uint64, outPath string, sizes []int) {
	if len(sizes) == 0 {
		sizes = scaleSizes
	}
	// GC discipline is size-conditional. On the ≥20k-PM rows GOGC=10 is an
	// anti-OOM and heap-watermark measure: with the default GOGC=100 the
	// collector lets the heap double over live state before collecting, so
	// heap_bytes_peak would report mostly floating garbage from the merge
	// churn of the aggregation phase rather than the layout's real footprint,
	// and the 100k-PM row (~4.5 GiB live, see EXPERIMENTS.md) would flirt
	// with the memory limit. On small rows the same pinning costs ~10% CPU —
	// doubling a few-hundred-MB heap is harmless — so they run under the
	// process default. The effective GOGC is recorded per row in the env
	// metadata: two heap_bytes_peak figures are only comparable under the
	// same discipline. The 8 GiB soft limit is an anti-OOM backstop only —
	// the largest row's live state must stay clear of it, or the pacer would
	// stall the run in back-to-back collections.
	defaultGC := effectiveGOGC
	prevLimit := debug.SetMemoryLimit(8 << 30)
	defer debug.SetMemoryLimit(prevLimit)
	defer setGCPercent(defaultGC)
	rep := scaleReport{
		envMeta:     currentEnv(),
		Ratio:       scaleRatio,
		LearnRounds: scaleLearnRounds,
		AggRounds:   scaleAggRounds,
		ConsRounds:  scaleConsRounds,
		Seed:        seed,
	}
	workers := scaleWorkerList()
	fmt.Printf("== scale: sizes=%v workers=%v (GOMAXPROCS=%d) ==\n",
		sizes, workers, rep.GOMAXPROCS)
	rep.warnIfSerial()
	for _, pms := range sizes {
		if pms >= scaleTightGCMinPMs {
			setGCPercent(10)
		} else {
			setGCPercent(defaultGC)
		}
		// The streaming source holds per-VM generator state (a few dozen
		// bytes) instead of materialised series; at 200k VMs × 100 rounds the
		// retired eager path alone held ~1.3 GB of float64 samples.
		w, err := trace.GenerateStreaming(trace.DefaultGenConfig(pms*scaleRatio, scaleLearnRounds+scaleAggRounds+scaleConsRounds, seed))
		if err != nil {
			log.Fatal(err)
		}
		emit := func(row scaleRow) {
			rep.Rows = append(rep.Rows, row)
			mode := "seq    "
			switch {
			case row.PairSharded:
				mode = "sharded"
			case row.SkipQuiescent:
				mode = "skip   "
			}
			fastRate := 0.0
			if row.MergeTotal > 0 {
				fastRate = 100 * float64(row.MergeFastHits) / float64(row.MergeTotal)
			}
			fmt.Printf("pms=%-6d %s %s workers=%-2d pretrain=%7.2fs (learn=%7.2fs agg=%6.2fs) (%.2fx, %.2f allocs/iter, %.0f B/iter) consolidation=%6.2fs metrics=%6.3fs batches/round=%.1f skipped=%d vals=%6.1fMB merge=%.0fns fast=%.0f%% cosine=%.0fns gogc=%d heap_peak=%6.1fMB (%.0f B/PM) hash=%s\n",
				pms, row.Precision, mode, row.Workers, row.PretrainSec,
				row.PretrainLearnSec, row.PretrainAggSec, row.PretrainSpeedup,
				row.PretrainAllocsPerIter, row.PretrainBytesPerIter,
				row.ConsolidationSec, row.MetricsSec,
				row.PairsBatchesPerRound, row.RoundsSkipped,
				float64(row.ValueBytes)/(1<<20), row.MergeNsPerPair, fastRate,
				row.CosineNsPerSample, row.GOGC,
				float64(row.HeapBytesPeak)/(1<<20), float64(row.HeapBytesPeak)/float64(pms),
				row.SeriesHash[:12])
		}

		// Sequential reference rows across the worker list, then sharded
		// rows across the same list, then one quiescence-skipping row. The
		// hash classes are checked here, at generation time: all sequential
		// rows and the skip row share one fingerprint (skipping is provably
		// unobservable), while the sharded rows share their own (sharded
		// draws observe round-start state — a distinct deterministic
		// reference, byte-identical across worker counts).
		var seqPretrain float64
		var seqHeap uint64
		var seqHash, shardedHash string
		for _, wk := range workers {
			row, err := runScaleCell(pms, wk, seed, w, scaleCellOpts{})
			if err != nil {
				log.Fatal(err)
			}
			if wk == 1 {
				seqPretrain, seqHash, seqHeap = row.PretrainSec, row.SeriesHash, row.HeapBytesPeak
			}
			if seqPretrain > 0 {
				row.PretrainSpeedup = seqPretrain / row.PretrainSec
			}
			if seqHash != "" && row.SeriesHash != seqHash {
				log.Fatalf("scale: series hash diverged at pms=%d workers=%d", pms, wk)
			}
			emit(row)
		}
		for _, wk := range workers {
			row, err := runScaleCell(pms, wk, seed, w, scaleCellOpts{pairSharded: true})
			if err != nil {
				log.Fatal(err)
			}
			if shardedHash == "" {
				shardedHash = row.SeriesHash
			}
			if row.SeriesHash != shardedHash {
				log.Fatalf("scale: sharded series hash diverged at pms=%d workers=%d", pms, wk)
			}
			if seqPretrain > 0 {
				row.PretrainSpeedup = seqPretrain / row.PretrainSec
			}
			emit(row)
		}
		{
			row, err := runScaleCell(pms, 1, seed, w, scaleCellOpts{skipQuiescent: true})
			if err != nil {
				log.Fatal(err)
			}
			if row.SeriesHash != seqHash {
				log.Fatalf("scale: quiescence-skipping changed the series hash at pms=%d", pms)
			}
			if seqPretrain > 0 {
				row.PretrainSpeedup = seqPretrain / row.PretrainSec
			}
			emit(row)
		}
		// F32 value-tier rows: the sequential class re-run on the narrow
		// tier. The tier keeps its own hash class — rounded Q-values may
		// legitimately flip near-tie decisions against the F64 series — and
		// that class must itself be byte-identical across worker counts.
		// PretrainSpeedup is relative to the F32 workers=1 row, so the
		// column keeps meaning "parallel speedup", not "tier speedup".
		var f32Pretrain float64
		var f32Hash string
		for _, wk := range workers {
			row, err := runScaleCell(pms, wk, seed, w, scaleCellOpts{prec: qlearn.F32})
			if err != nil {
				log.Fatal(err)
			}
			if wk == 1 {
				f32Pretrain, f32Hash = row.PretrainSec, row.SeriesHash
				if seqHeap > 0 {
					fmt.Printf("pms=%-6d f32 heap_bytes_peak vs f64 seq: %.1f%% reduction\n",
						pms, 100*(1-float64(row.HeapBytesPeak)/float64(seqHeap)))
				}
			}
			if f32Hash != "" && row.SeriesHash != f32Hash {
				log.Fatalf("scale: f32 series hash diverged at pms=%d workers=%d", pms, wk)
			}
			if f32Pretrain > 0 {
				row.PretrainSpeedup = f32Pretrain / row.PretrainSec
			}
			emit(row)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}
