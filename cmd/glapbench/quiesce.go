package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	glapsim "github.com/glap-sim/glap"
	"github.com/glap-sim/glap/internal/glap"
	"github.com/glap-sim/glap/internal/trace"
)

// The `-exp quiesce` mode measures the quiescence-skipping fast path on the
// paper's continuous-operation configuration: a 720-round (24 h) GLAP
// consolidation run whose workload goes quiet partway through — demand is
// generated live for an initial window and then settles at each VM's
// live-window mean, the shape of an overnight plateau at typical load. The
// baseline executes every round; the skip run must produce a byte-identical
// series while batch-advancing the certified-quiet tail. Results go to
// BENCH_quiesce.json.
//
// Settling at the mean rather than the last sample is what makes the fast
// path reachable at all: the consolidation inactivity certificate requires
// every VM's cumulative-average demand to share level buckets with its
// current demand, and the cumulative average forgets the live window only as
// 1/rounds — freezing at an arbitrary last value leaves VMs whose average
// approaches a bucket boundary from the wrong side for longer than any
// realistic run. Freezing at the mean makes average and current coincide
// from the freeze round onward (the live window sums to freeze × mean), so
// alignment is exact by construction instead of a race against 1/r decay.
const quiesceRatio = 2

type quiesceReport struct {
	envMeta
	PMs         int    `json:"pms"`
	VMs         int    `json:"vms"`
	Rounds      int    `json:"rounds"`
	FreezeRound int    `json:"freeze_round"`
	Seed        uint64 `json:"seed"`

	// BaselineSec / SkipSec time the consolidation run (shared pre-training
	// excluded) with the fast path off and on.
	BaselineSec float64 `json:"baseline_sec"`
	SkipSec     float64 `json:"skip_sec"`
	SpeedupX    float64 `json:"speedup_x"`
	// RoundsSkipped is the certified-quiet tail length of the skip run.
	RoundsSkipped int64 `json:"rounds_skipped"`
	// SeriesHash is the shared fingerprint — the mode aborts if the two
	// runs disagree, so one committed value vouches for both.
	SeriesHash string `json:"series_hash"`
}

// plateauWorkload materialises a trace that replays gen's first freeze
// rounds and then holds every VM at its live-window mean demand forever.
func plateauWorkload(vms, rounds, freeze int, seed uint64) (*trace.Set, error) {
	gen, err := trace.Generate(trace.DefaultGenConfig(vms, rounds, seed))
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteString("vm,round,cpu,mem\n")
	for vm := 0; vm < vms; vm++ {
		var sumCPU, sumMem float64
		for r := 0; r < freeze; r++ {
			s := gen.At(vm, r)
			sumCPU += s.CPU
			sumMem += s.Mem
		}
		meanCPU, meanMem := sumCPU/float64(freeze), sumMem/float64(freeze)
		for r := 0; r < rounds; r++ {
			cpu, mem := meanCPU, meanMem
			if r < freeze {
				s := gen.At(vm, r)
				cpu, mem = s.CPU, s.Mem
			}
			fmt.Fprintf(&buf, "%d,%d,%.9f,%.9f\n", vm, r, cpu, mem)
		}
	}
	return trace.LoadCSV(&buf)
}

// runQuiesce is the `-exp quiesce` mode. pms and rounds default to 500 and
// 720 when zero.
func runQuiesce(seed uint64, pms, rounds, freeze int, outPath string) {
	if pms <= 0 {
		pms = 500
	}
	if rounds <= 0 {
		rounds = 720
	}
	if freeze <= 0 || freeze > rounds {
		freeze = rounds / 12
	}
	rep := quiesceReport{
		envMeta: currentEnv(),
		PMs:     pms, VMs: pms * quiesceRatio, Rounds: rounds,
		FreezeRound: freeze, Seed: seed,
	}
	fmt.Printf("== quiesce: %d PMs, %d rounds, demand frozen from round %d ==\n",
		pms, rounds, freeze)
	rep.warnIfSerial()

	w, err := plateauWorkload(rep.VMs, rounds, freeze, seed)
	if err != nil {
		log.Fatal(err)
	}
	base := glapsim.Experiment{
		PMs: pms, Ratio: quiesceRatio, Rounds: rounds, Seed: seed,
		Policy: glapsim.PolicyGLAP, Workload: w,
	}
	// Pre-train once and share the tables, so the timed comparison isolates
	// the consolidation run.
	pre := base
	pre.Rounds = 1
	preRes, err := glapsim.Run(pre)
	if err != nil {
		log.Fatal(err)
	}
	tables, err := glap.SharedTables(preRes.Pretrain)
	if err != nil {
		log.Fatal(err)
	}
	base.PretrainedTables = tables

	run := func(skip bool) (float64, *glapsim.Result) {
		x := base
		x.SkipQuiescent = skip
		start := time.Now()
		res, err := glapsim.Run(x)
		if err != nil {
			log.Fatal(err)
		}
		return time.Since(start).Seconds(), res
	}
	var baseRes, skipRes *glapsim.Result
	rep.BaselineSec, baseRes = run(false)
	rep.SkipSec, skipRes = run(true)
	rep.RoundsSkipped = skipRes.RoundsSkipped
	rep.SpeedupX = rep.BaselineSec / rep.SkipSec

	baseHash := hashScaleSeries(baseRes.Series, 0)
	skipHash := hashScaleSeries(skipRes.Series, 0)
	if baseHash != skipHash {
		log.Fatalf("quiesce: series diverged between baseline (%s) and skip (%s)", baseHash, skipHash)
	}
	rep.SeriesHash = baseHash

	fmt.Printf("baseline=%.2fs skip=%.2fs (%.2fx) rounds_skipped=%d/%d hash=%s\n",
		rep.BaselineSec, rep.SkipSec, rep.SpeedupX, rep.RoundsSkipped, rounds, baseHash[:12])
	if rep.RoundsSkipped == 0 {
		fmt.Println("WARNING: no rounds were skipped — the plateau never certified quiet.")
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}
