package main

import (
	"fmt"
	"time"

	glapsim "github.com/glap-sim/glap"
	"github.com/glap-sim/glap/internal/glap"
	"github.com/glap-sim/glap/internal/qlearn"
	"github.com/glap-sim/glap/internal/stats"
)

// kernelFastGLAP shortens pre-training so the determinism check completes
// in seconds.
func kernelFastGLAP() glap.Config { return glap.Config{LearnRounds: 30, AggRounds: 20} }

// runKernel is the `-exp kernel` mode: a before/after comparison of the
// gossip-learning hot-path kernels. "Before" runs the retired sparse-map
// reference (qlearn.Sparse), "after" the dense array+bitset backing, on
// identical full 81×81 GLAP tables, and the mode finishes with two
// seed-for-seed simulation runs whose Series must coincide — the speedup
// and the unchanged results in one report.
func runKernel(seed uint64) {
	fmt.Println("== kernel: sparse-map baseline vs dense array+bitset ==")

	const cells = 81
	fillDense := func() (*qlearn.Table, *qlearn.Table) {
		p, q := qlearn.New(0.5, 0.8), qlearn.New(0.5, 0.8)
		for s := qlearn.State(0); s < cells; s++ {
			for a := qlearn.Action(0); a < cells; a++ {
				p.Set(s, a, float64(s)+float64(a)/100)
				q.Set(s, a, float64(a)+float64(s)/100)
			}
		}
		return p, q
	}
	fillSparse := func() (*qlearn.Sparse, *qlearn.Sparse) {
		p, q := qlearn.NewSparse(0.5, 0.8), qlearn.NewSparse(0.5, 0.8)
		for s := qlearn.State(0); s < cells; s++ {
			for a := qlearn.Action(0); a < cells; a++ {
				p.Set(s, a, float64(s)+float64(a)/100)
				q.Set(s, a, float64(a)+float64(s)/100)
			}
		}
		return p, q
	}

	// measure reports ns/op of fn over enough iterations to be stable.
	measure := func(iters int, fn func()) float64 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters)
	}

	report := func(name string, before, after float64) {
		fmt.Printf("%-14s %12.0f ns/op -> %10.0f ns/op   %6.1fx\n", name, before, after, before/after)
	}

	sp, sq := fillSparse()
	dp, dq := fillDense()
	report("Unify",
		measure(2000, func() { qlearn.UnifySparse(sp, sq) }),
		measure(2000, func() { qlearn.Unify(dp, dq) }))
	report("Equal",
		measure(2000, func() { _ = qlearn.EqualSparse(sp, sq) }),
		measure(2000, func() { _ = qlearn.Equal(dp, dq) }))
	report("Update",
		measure(200000, func() { sp.Update(3, 4, 5, 6) }),
		measure(200000, func() { dp.Update(3, 4, 5, 6) }))

	// Cosine over φ^io-sized vectors: map-based vs aligned dense.
	const ioCells = 2 * cells * cells
	ma := make(map[int]float64, ioCells)
	mb := make(map[int]float64, ioCells)
	va := make([]float64, ioCells)
	vb := make([]float64, ioCells)
	for i := 0; i < ioCells; i++ {
		ma[i], va[i] = float64(i%97), float64(i%97)
		mb[i], vb[i] = float64((i+13)%89), float64((i+13)%89)
	}
	report("Cosine",
		measure(500, func() { _ = stats.CosineMaps(ma, mb) }),
		measure(500, func() { _ = stats.CosineAligned(va, vb) }))

	// Seed-for-seed determinism: two identical small GLAP runs must agree
	// exactly — the dense kernel changes how Q-values are stored, not what
	// the simulation computes.
	x := glapsim.Experiment{
		PMs: 20, Ratio: 2, Rounds: 40, Seed: seed, Policy: glapsim.PolicyGLAP,
		GLAP: kernelFastGLAP(),
	}
	runOnce := func() (int64, int, float64) {
		res, err := glapsim.Run(x)
		if err != nil {
			fmt.Printf("kernel sim run failed: %v\n", err)
			return 0, 0, 0
		}
		last, _ := res.Series.Last()
		return last.Migrations, last.ActivePMs, res.Series.SLAV
	}
	m1, a1, s1 := runOnce()
	m2, a2, s2 := runOnce()
	fmt.Printf("sim determinism: run1 (migr=%d active=%d slav=%g) run2 (migr=%d active=%d slav=%g) identical=%v\n",
		m1, a1, s1, m2, a2, s2, m1 == m2 && a1 == a2 && s1 == s2)
}
