package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	glapsim "github.com/glap-sim/glap"
	"github.com/glap-sim/glap/internal/stats"
)

// fakeCells builds a minimal cell map for two policies.
func fakeCells() (glapsim.Grid, map[glapsim.Cell]*glapsim.CellStats, []glapsim.Cell) {
	grid := glapsim.Grid{Sizes: []int{10}, Ratios: []int{2}}
	order := []glapsim.Cell{}
	cells := map[glapsim.Cell]*glapsim.CellStats{}
	for i, p := range glapsim.Policies {
		c := glapsim.Cell{PMs: 10, Ratio: 2, Policy: p}
		cells[c] = &glapsim.CellStats{
			Cell:            c,
			Overloaded:      stats.Summarize([]float64{float64(i), float64(i + 1)}),
			FracOverloaded:  stats.Summarize([]float64{0.1 * float64(i+1)}),
			Active:          stats.Summarize([]float64{5}),
			BFDBaseline:     stats.Summarize([]float64{4}),
			TotalMigrations: stats.Summarize([]float64{100 * float64(i+1)}),
			EnergyKJ:        stats.Summarize([]float64{1.5}),
			SLAV:            stats.Summarize([]float64{1e-9 * float64(i+1)}),
			CumMigrations:   []float64{1, 2, 3},
		}
		order = append(order, c)
	}
	return grid, cells, order
}

func TestRowBuilders(t *testing.T) {
	grid, cells, order := fakeCells()
	if rows := f6Rows(cells, order); len(rows) != 5 || rows[0][0] != "cell" {
		t.Fatalf("f6 rows: %v", rows)
	}
	if rows := f7Rows(cells, order); len(rows) != 5 {
		t.Fatalf("f7 rows: %d", len(rows))
	}
	if rows := f8Rows(cells, order); rows[1][4] != "100" {
		t.Fatalf("f8 total: %v", rows[1])
	}
	rows := f9Rows(grid, cells, order)
	if len(rows) != 4 { // header + 3 rounds
		t.Fatalf("f9 rows: %d", len(rows))
	}
	if len(rows[0]) != 1+len(glapsim.Policies) {
		t.Fatalf("f9 header: %v", rows[0])
	}
	if rows := f10Rows(cells, order); rows[1][1] != "1.5" {
		t.Fatalf("f10: %v", rows[1])
	}
	trows := t1Rows(grid, cells)
	if len(trows) != 2 || len(trows[1]) != 1+len(glapsim.Policies) {
		t.Fatalf("t1 rows: %v", trows)
	}
	if erows := energyRows(cells, order); len(erows) != 5 {
		t.Fatalf("energy rows: %d", len(erows))
	}
}

func TestConvergenceRows(t *testing.T) {
	conv := []*glapsim.ConvergenceResult{
		{Ratio: 2, Rounds: []int{0, 10, 20}, Cosine: []float64{0.3, 0.5, 1.0}, AggStart: 15},
		{Ratio: 3, Rounds: []int{0, 10, 20}, Cosine: []float64{0.4, 0.6, 1.0}, AggStart: 15},
	}
	rows := convergenceRows(conv)
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	if rows[1][1] != "WOG" || rows[3][1] != "WG" {
		t.Fatalf("phases wrong: %v", rows)
	}
	if rows[3][2] != "1" || rows[3][3] != "1" {
		t.Fatalf("final similarities wrong: %v", rows[3])
	}
}

func TestWriteCSVDir(t *testing.T) {
	grid, cells, order := fakeCells()
	dir := filepath.Join(t.TempDir(), "out")
	if err := writeCSVDir(dir, grid, cells, order, nil); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 {
		t.Fatalf("wrote %d files, want 7", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1_slav.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "10-2") {
		t.Fatalf("table1 content: %s", data)
	}
}
