package main

import (
	"fmt"
	"runtime"
)

// envMeta records the host execution environment in every benchmark report.
// A committed JSON file is only meaningful next to the machine shape it was
// taken on: a speedup or wall-time column from a GOMAXPROCS=1 host measures
// scheduling overhead, not parallelism, and embedding the shape in the
// report makes that impossible to overlook after the fact.
type envMeta struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
}

func currentEnv() envMeta {
	return envMeta{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
}

// warnIfSerial prints the shared single-thread warning at generation time,
// so a throttled or single-core run announces itself in the log as well as
// in the JSON.
func (m envMeta) warnIfSerial() {
	if m.GOMAXPROCS == 1 {
		fmt.Println("WARNING: GOMAXPROCS=1 — parallel rows share one OS thread; " +
			"speedup columns measure scheduling overhead, not parallelism.")
	}
}
