package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
)

// envMeta records the host execution environment in every benchmark report.
// A committed JSON file is only meaningful next to the machine shape it was
// taken on: a speedup or wall-time column from a GOMAXPROCS=1 host measures
// scheduling overhead, not parallelism, and embedding the shape in the
// report makes that impossible to overlook after the fact. GOGC is recorded
// per row because the scale grid pins a tighter collector only on its
// largest sizes (see runScale): two heap_bytes_peak figures are only
// comparable under the same GC discipline.
type envMeta struct {
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	GOGC       int `json:"gogc"`
}

// effectiveGOGC mirrors the GC percentage currently in force. The runtime
// offers no read-only getter (debug.SetGCPercent is a swap), so every
// adjustment goes through setGCPercent to keep the mirror truthful.
var effectiveGOGC = initialGOGC()

func initialGOGC() int {
	if s := os.Getenv("GOGC"); s != "" {
		if s == "off" {
			return -1
		}
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return 100
}

// setGCPercent applies pct (−1 disables the collector, matching
// debug.SetGCPercent) and records it for env metadata.
func setGCPercent(pct int) {
	debug.SetGCPercent(pct)
	effectiveGOGC = pct
}

func currentEnv() envMeta {
	return envMeta{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), GOGC: effectiveGOGC}
}

// warnIfSerial prints the shared single-thread warning at generation time,
// so a throttled or single-core run announces itself in the log as well as
// in the JSON.
func (m envMeta) warnIfSerial() {
	if m.GOMAXPROCS == 1 {
		fmt.Println("WARNING: GOMAXPROCS=1 — parallel rows share one OS thread; " +
			"speedup columns measure scheduling overhead, not parallelism.")
	}
}
