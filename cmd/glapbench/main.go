// Command glapbench regenerates every table and figure of the paper's
// evaluation (Section V): Figure 5 (Q-value convergence), Figures 6-10
// (packing, overloads, migrations, cumulative migrations, migration energy)
// and Table I (SLAV). Scale is configurable; the paper's full grid is
//
//	glapbench -exp all -sizes 500,1000,2000 -ratios 2,3,4 -rounds 720 -reps 20
//
// which takes a long while on a laptop — the defaults run a reduced grid
// with the same experimental structure.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"text/tabwriter"

	glapsim "github.com/glap-sim/glap"
	"github.com/glap-sim/glap/internal/glap"
)

func main() {
	exp := flag.String("exp", "all", "experiment: f5, f6, f7, f8, f9, f10, t1, all, kernel (dense-vs-sparse hot-path comparison), robust (async consolidation under loss × latency), scale (per-stage wall time across cluster sizes and worker counts), learn (fused vs reference training-kernel comparison), scenarios (crash-churn / hetero / topology / real-trace suite), or quiesce (720-round continuous-operation run with and without the quiescence fast path)")
	sizes := flag.String("sizes", "100", "comma-separated cluster sizes")
	ratios := flag.String("ratios", "2,3,4", "comma-separated VM:PM ratios")
	rounds := flag.Int("rounds", 240, "consolidation rounds (2 simulated minutes each)")
	reps := flag.Int("reps", 5, "replications per grid cell (paper: 20)")
	seed := flag.Uint64("seed", 1, "master seed")
	workers := flag.Int("workers", 0, "parallel replication workers (0 = GOMAXPROCS)")
	csvDir := flag.String("csv", "", "also write per-figure CSV files into this directory")
	drops := flag.String("drops", "0,0.1,0.2", "comma-separated message-loss probabilities for -exp robust")
	lats := flag.String("lats", "1,30,90", "comma-separated one-way message latencies for -exp robust")
	scaleOut := flag.String("scale-out", "BENCH_scale.json", "output path for the -exp scale report")
	scaleSizesFlag := flag.String("scale-sizes", "", "comma-separated cluster sizes for -exp scale (empty = built-in grid up to 100k PMs)")
	learnOut := flag.String("learn-out", "BENCH_learn.json", "output path for the -exp learn report")
	learnIters := flag.Int("learn-iters", 2_000_000, "training iterations per kernel measurement for -exp learn")
	scenOut := flag.String("scen-out", "BENCH_scenarios.json", "output path for the -exp scenarios report")
	scenSizes := flag.String("scen-sizes", "40,80", "comma-separated cluster sizes for -exp scenarios")
	scenRounds := flag.Int("scen-rounds", 60, "consolidation rounds per scenario run for -exp scenarios")
	quiesceOut := flag.String("quiesce-out", "BENCH_quiesce.json", "output path for the -exp quiesce report")
	quiescePMs := flag.Int("quiesce-pms", 500, "cluster size for -exp quiesce")
	quiesceRounds := flag.Int("quiesce-rounds", 720, "consolidation rounds for -exp quiesce")
	quiesceFreeze := flag.Int("quiesce-freeze", 60, "round at which demand freezes for -exp quiesce")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
			f.Close()
		}()
	}

	grid := glapsim.Grid{
		Sizes:   parseInts(*sizes),
		Ratios:  parseInts(*ratios),
		Rounds:  *rounds,
		Reps:    *reps,
		Seed:    *seed,
		Workers: *workers,
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	if want["kernel"] {
		runKernel(*seed)
		if len(want) == 1 {
			return
		}
	}

	if want["scale"] {
		// -scale-sizes wins; otherwise an explicitly passed -sizes selects
		// the subset (so `-exp scale -sizes 500,2000` works like every other
		// experiment), and with neither the built-in grid up to 100k runs.
		scaleGrid := parseInts(*scaleSizesFlag)
		if len(scaleGrid) == 0 {
			sizesSet := false
			flag.Visit(func(f *flag.Flag) { sizesSet = sizesSet || f.Name == "sizes" })
			if sizesSet {
				scaleGrid = parseInts(*sizes)
			}
		}
		runScale(*seed, *scaleOut, scaleGrid)
		if len(want) == 1 {
			return
		}
	}

	if want["learn"] {
		runLearn(*seed, *learnIters, *learnOut)
		if len(want) == 1 {
			return
		}
	}

	if want["scenarios"] {
		runScenarios(*seed, *scenRounds, *workers, parseInts(*scenSizes), *scenOut)
		if len(want) == 1 {
			return
		}
	}

	if want["quiesce"] {
		runQuiesce(*seed, *quiescePMs, *quiesceRounds, *quiesceFreeze, *quiesceOut)
		if len(want) == 1 {
			return
		}
	}

	if want["robust"] {
		runRobust(glapsim.RobustConfig{
			PMs:       grid.Sizes[0],
			Ratio:     grid.Ratios[0],
			Rounds:    *rounds,
			Reps:      *reps,
			Seed:      *seed,
			DropProbs: parseFloats(*drops),
			Latencies: parseInt64s(*lats),
			Workers:   *workers,
		})
		if len(want) == 1 {
			return
		}
	}

	var conv []*glapsim.ConvergenceResult
	if all || want["f5"] {
		conv = runF5(grid)
	}

	needGrid := all || want["f6"] || want["f7"] || want["f8"] || want["f9"] || want["f10"] || want["t1"]
	if !needGrid {
		return
	}
	fmt.Printf("\n== running grid: sizes=%v ratios=%v rounds=%d reps=%d ==\n",
		grid.Sizes, grid.Ratios, grid.Rounds, grid.Reps)
	cells, order, err := glapsim.RunGrid(grid)
	if err != nil {
		log.Fatal(err)
	}

	if all || want["f6"] {
		printF6(cells, order)
	}
	if all || want["f7"] {
		printF7(cells, order)
	}
	if all || want["f8"] {
		printF8(cells, order)
	}
	if all || want["f9"] {
		printF9(grid, cells, order)
	}
	if all || want["f10"] {
		printF10(cells, order)
	}
	if all || want["t1"] {
		printT1(grid, cells)
	}
	if *csvDir != "" {
		if err := writeCSVDir(*csvDir, grid, cells, order, conv); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote CSV files to %s\n", *csvDir)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			log.Fatalf("bad integer list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out
}

func runF5(grid glapsim.Grid) []*glapsim.ConvergenceResult {
	pms := grid.Sizes[0]
	fmt.Printf("== Figure 5: Q-value convergence (cosine similarity), %d PMs ==\n", pms)
	fmt.Println("   learning phase (WOG) then aggregation phase (WG)")
	res, err := glapsim.RunConvergence(pms, grid.Ratios, glap.Config{}, grid.Seed, 10)
	if err != nil {
		log.Fatal(err)
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "round\tphase")
	for _, r := range res {
		fmt.Fprintf(w, "\tratio %d", r.Ratio)
	}
	fmt.Fprintln(w)
	if len(res) > 0 {
		for i, round := range res[0].Rounds {
			phase := "WOG"
			if round >= res[0].AggStart {
				phase = "WG"
			}
			fmt.Fprintf(w, "%d\t%s", round, phase)
			for _, r := range res {
				if i < len(r.Cosine) {
					fmt.Fprintf(w, "\t%.4f", r.Cosine[i])
				} else {
					fmt.Fprint(w, "\t-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	w.Flush()
	return res
}

func header(w *tabwriter.Writer, cols ...string) {
	fmt.Fprintln(w, strings.Join(cols, "\t"))
}

func printF6(cells map[glapsim.Cell]*glapsim.CellStats, order []glapsim.Cell) {
	fmt.Println("\n== Figure 6: fraction of overloaded/active PMs and packing vs BFD ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header(w, "cell", "frac overl. (mean)", "active (median)", "BFD baseline")
	for _, c := range order {
		s := cells[c]
		fmt.Fprintf(w, "%s\t%.4f\t%.0f\t%.0f\n",
			c, s.FracOverloaded.Mean, s.Active.Median, s.BFDBaseline.Median)
	}
	w.Flush()
}

func printF7(cells map[glapsim.Cell]*glapsim.CellStats, order []glapsim.Cell) {
	fmt.Println("\n== Figure 7: number of overloaded PMs (median [p10, p90] per round) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header(w, "cell", "median", "p10", "p90", "mean")
	for _, c := range order {
		s := cells[c]
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.2f\n",
			c, s.Overloaded.Median, s.Overloaded.P10, s.Overloaded.P90, s.Overloaded.Mean)
	}
	w.Flush()
}

func printF8(cells map[glapsim.Cell]*glapsim.CellStats, order []glapsim.Cell) {
	fmt.Println("\n== Figure 8: number of migrations (per-round median [p10, p90]; total) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header(w, "cell", "median/round", "p10", "p90", "total (median)")
	for _, c := range order {
		s := cells[c]
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.0f\n",
			c, s.MigrationsPerRound.Median, s.MigrationsPerRound.P10,
			s.MigrationsPerRound.P90, s.TotalMigrations.Median)
	}
	w.Flush()
}

func printF9(grid glapsim.Grid, cells map[glapsim.Cell]*glapsim.CellStats, order []glapsim.Cell) {
	// The paper plots cumulative migrations for the 1000-node cluster; we
	// use the middle configured size.
	size := grid.Sizes[len(grid.Sizes)/2]
	fmt.Printf("\n== Figure 9: cumulative migrations over time (%d PMs) ==\n", size)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "round")
	var series []*glapsim.CellStats
	for _, c := range order {
		if c.PMs == size {
			fmt.Fprintf(w, "\t%d/%s", c.Ratio, c.Policy)
			series = append(series, cells[c])
		}
	}
	fmt.Fprintln(w)
	if len(series) > 0 {
		n := len(series[0].CumMigrations)
		step := n / 12
		if step == 0 {
			step = 1
		}
		for i := step - 1; i < n; i += step {
			fmt.Fprintf(w, "%d", i+1)
			for _, s := range series {
				fmt.Fprintf(w, "\t%.0f", s.CumMigrations[i])
			}
			fmt.Fprintln(w)
		}
	}
	w.Flush()
}

func printF10(cells map[glapsim.Cell]*glapsim.CellStats, order []glapsim.Cell) {
	fmt.Println("\n== Figure 10: energy overhead of migrations (kJ, median [p10, p90]) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header(w, "cell", "median", "p10", "p90")
	for _, c := range order {
		s := cells[c]
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\n", c, s.EnergyKJ.Median, s.EnergyKJ.P10, s.EnergyKJ.P90)
	}
	w.Flush()
}

func printT1(grid glapsim.Grid, cells map[glapsim.Cell]*glapsim.CellStats) {
	fmt.Println("\n== Table I: SLAV for various cluster sizes and workload ratios ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "size-ratio")
	for _, p := range glapsim.Policies {
		fmt.Fprintf(w, "\t%s", p)
	}
	fmt.Fprintln(w)
	for _, size := range grid.Sizes {
		for _, ratio := range grid.Ratios {
			fmt.Fprintf(w, "%d-%d", size, ratio)
			for _, p := range glapsim.Policies {
				s, ok := cells[glapsim.Cell{PMs: size, Ratio: ratio, Policy: p}]
				if !ok {
					fmt.Fprint(w, "\t-")
					continue
				}
				fmt.Fprintf(w, "\t%.3g", s.SLAV.Median)
			}
			fmt.Fprintln(w)
		}
	}
	w.Flush()
}
