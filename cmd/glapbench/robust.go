package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	glapsim "github.com/glap-sim/glap"
)

// runRobust executes the loss × latency robustness grid of the
// message-passing consolidation protocol and prints the comparison against
// the synchronous reference.
func runRobust(cfg glapsim.RobustConfig) {
	fmt.Printf("\n== robustness: async consolidation under loss × latency (%d PMs, ratio %d, %d rounds, %d reps) ==\n",
		cfg.PMs, cfg.Ratio, cfg.Rounds, cfg.Reps)
	res, err := glapsim.RunRobust(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sync reference: active %.1f (median %.0f), migrations %.0f, SLAV %.3g\n",
		res.SyncActive.Mean, res.SyncActive.Median, res.SyncMigrations.Mean, res.SyncSLAV.Mean)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header(w, "cell", "active (mean)", "Δ vs sync", "migr.", "SLAV",
		"offers", "commits", "aborts", "expired", "dropped/sent", "leaks")
	for _, c := range res.Cells {
		fmt.Fprintf(w, "%s\t%.1f\t%+.1f\t%.0f\t%.3g\t%d\t%d\t%d\t%d\t%d/%d\t%d\n",
			c.Cell, c.Active.Mean, c.Active.Mean-res.SyncActive.Mean,
			c.Migrations.Mean, c.SLAV.Mean,
			c.Offers, c.Commits, c.Aborts, c.Expired,
			c.Dropped, c.Sent, c.LeakedReservations)
	}
	w.Flush()
}

func parseFloats(s string) []float64 {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			log.Fatalf("bad float list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out
}

func parseInt64s(s string) []int64 {
	var out []int64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			log.Fatalf("bad integer list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out
}
