package main

import "testing"

func TestParseInts(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"100", []int{100}},
		{"100,200,300", []int{100, 200, 300}},
		{" 1 , 2 ", []int{1, 2}},
		{"5,", []int{5}},
	}
	for _, tc := range cases {
		got := parseInts(tc.in)
		if len(got) != len(tc.want) {
			t.Fatalf("parseInts(%q) = %v", tc.in, got)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("parseInts(%q) = %v, want %v", tc.in, got, tc.want)
			}
		}
	}
}
