// Command glapsim runs a single consolidation simulation with one policy and
// prints per-round metrics as CSV (round, active, overloaded, cumulative
// migrations, migration energy), followed by a summary. It is the
// micro-level companion to glapbench: use it to watch one run unfold.
//
//	glapsim -policy glap -pms 200 -ratio 3 -rounds 720 -every 10
//	glapsim -policy grmp -trace mytrace.csv -pms 100
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	glapsim "github.com/glap-sim/glap"
	"github.com/glap-sim/glap/internal/glap"
	"github.com/glap-sim/glap/internal/trace"
)

func main() {
	policy := flag.String("policy", "glap", "policy: glap, grmp, ecocloud, pabfd or none")
	pms := flag.Int("pms", 100, "number of physical machines")
	ratio := flag.Int("ratio", 3, "VM:PM ratio (ignored when -trace is given)")
	rounds := flag.Int("rounds", 240, "number of 2-minute rounds")
	seed := flag.Uint64("seed", 1, "simulation seed")
	every := flag.Int("every", 10, "print a CSV row every N rounds")
	tracePath := flag.String("trace", "", "CSV workload trace (vm,round,cpu,mem); empty = synthetic")
	saveQ := flag.String("save-qtables", "", "write GLAP's converged Q store to this file after the run")
	loadQ := flag.String("load-qtables", "", "skip GLAP pre-training and load a checkpointed Q store")
	workers := flag.Int("workers", 0, "fork-join workers inside the run (0 = auto, 1 = sequential); results are identical for every setting")
	flag.Parse()

	x := glapsim.Experiment{
		PMs:     *pms,
		Ratio:   *ratio,
		Rounds:  *rounds,
		Seed:    *seed,
		Policy:  glapsim.Policy(*policy),
		Workers: *workers,
	}
	if *tracePath != "" {
		set, err := trace.LoadFile(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		x.Workload = set
		if set.NumVMs()%*pms != 0 {
			log.Fatalf("trace has %d VMs which is not a multiple of %d PMs", set.NumVMs(), *pms)
		}
		x.Ratio = set.NumVMs() / *pms
	}

	if *loadQ != "" {
		f, err := os.Open(*loadQ)
		if err != nil {
			log.Fatal(err)
		}
		tables, err := glap.LoadTables(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		x.PretrainedTables = tables
	}

	res, err := glapsim.Run(x)
	if err != nil {
		log.Fatal(err)
	}

	if *saveQ != "" && res.Pretrain != nil {
		tables, err := glap.SharedTables(res.Pretrain)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*saveQ)
		if err != nil {
			log.Fatal(err)
		}
		if err := glap.SaveTables(f, tables); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved Q store to %s\n", *saveQ)
	}

	fmt.Println("round,active_pms,overloaded_pms,cum_migrations,migration_energy_j")
	for i, s := range res.Series.Samples {
		if (i+1)%*every != 0 && i != len(res.Series.Samples)-1 {
			continue
		}
		fmt.Printf("%d,%d,%d,%d,%.1f\n",
			s.Round, s.ActivePMs, s.OverloadedPMs, s.Migrations, s.MigrationEnergyJ)
	}

	last, _ := res.Series.Last()
	fmt.Fprintf(os.Stderr, "\npolicy=%s pms=%d vms=%d rounds=%d\n", x.Policy, x.PMs, x.PMs*x.Ratio, x.Rounds)
	fmt.Fprintf(os.Stderr, "final: active=%d (BFD oracle %d) overloaded=%d migrations=%d energy=%.1fkJ\n",
		last.ActivePMs, res.BFDBaseline, last.OverloadedPMs, last.Migrations, last.MigrationEnergyJ/1000)
	fmt.Fprintf(os.Stderr, "SLA:   SLAVO=%.6g SLALM=%.6g SLAV=%.6g\n",
		res.Series.SLAVO, res.Series.SLALM, res.Series.SLAV)
	if res.Pretrain != nil {
		fmt.Fprintf(os.Stderr, "GLAP:  pre-training convergence=%.4f (learn %d + aggregate %d rounds)\n",
			res.Pretrain.FinalSimilarity(), res.Pretrain.LearnRounds, res.Pretrain.AggRounds)
	}
}
