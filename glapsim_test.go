package glapsim

import (
	"testing"

	"github.com/glap-sim/glap/internal/glap"
	"github.com/glap-sim/glap/internal/trace"
)

// fastGLAP returns a GLAP config with short pre-training for tests.
func fastGLAP() glap.Config {
	return glap.Config{LearnRounds: 30, AggRounds: 20}
}

func smallExperiment(p Policy) Experiment {
	return Experiment{
		PMs: 20, Ratio: 2, Rounds: 40, Seed: 7, Policy: p, GLAP: fastGLAP(),
	}
}

func TestExperimentValidation(t *testing.T) {
	cases := []Experiment{
		{PMs: 1, Ratio: 2, Rounds: 10, Policy: PolicyGLAP},
		{PMs: 10, Ratio: 0, Rounds: 10, Policy: PolicyGLAP},
		{PMs: 10, Ratio: 2, Rounds: 0, Policy: PolicyGLAP},
		{PMs: 10, Ratio: 2, Rounds: 10, Policy: "bogus"},
	}
	for i, x := range cases {
		if err := x.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
	good := smallExperiment(PolicyGRMP)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentWorkloadSizeChecked(t *testing.T) {
	set, err := trace.Generate(trace.DefaultGenConfig(10, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	x := smallExperiment(PolicyGRMP)
	x.Workload = set // 10 VMs but PMs*Ratio = 40
	if err := x.Validate(); err == nil {
		t.Fatal("expected workload size mismatch error")
	}
}

func TestRunEveryPolicy(t *testing.T) {
	for _, p := range append([]Policy{PolicyNone}, Policies...) {
		p := p
		t.Run(string(p), func(t *testing.T) {
			res, err := Run(smallExperiment(p))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Series.Samples) != 40 {
				t.Fatalf("%d samples", len(res.Series.Samples))
			}
			if err := res.Cluster.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if res.BFDBaseline <= 0 || res.BFDBaseline > 20 {
				t.Fatalf("BFD baseline %d out of range", res.BFDBaseline)
			}
			last, ok := res.Series.Last()
			if !ok {
				t.Fatal("empty series")
			}
			if p == PolicyNone {
				if last.Migrations != 0 {
					t.Fatal("PolicyNone must not migrate")
				}
				if last.ActivePMs != 20 {
					t.Fatal("PolicyNone must not switch off PMs")
				}
			} else {
				if last.ActivePMs >= 20 {
					t.Fatalf("policy %s did not consolidate", p)
				}
			}
			if p == PolicyGLAP {
				if res.Pretrain == nil {
					t.Fatal("GLAP result missing pretrain info")
				}
				if res.Pretrain.FinalSimilarity() < 0.99 {
					t.Fatalf("pretrain similarity %g", res.Pretrain.FinalSimilarity())
				}
			} else if res.Pretrain != nil {
				t.Fatal("non-GLAP policies must not pretrain")
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallExperiment(PolicyGRMP))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallExperiment(PolicyGRMP))
	if err != nil {
		t.Fatal(err)
	}
	la, _ := a.Series.Last()
	lb, _ := b.Series.Last()
	if la != lb {
		t.Fatalf("same seed diverged: %+v vs %+v", la, lb)
	}
	if a.Series.SLAV != b.Series.SLAV {
		t.Fatal("SLAV differs across identical runs")
	}
}

func TestRunSeedsMatter(t *testing.T) {
	x := smallExperiment(PolicyGRMP)
	a, err := Run(x)
	if err != nil {
		t.Fatal(err)
	}
	x.Seed = 99
	b, err := Run(x)
	if err != nil {
		t.Fatal(err)
	}
	la, _ := a.Series.Last()
	lb, _ := b.Series.Last()
	if la == lb {
		t.Log("warning: different seeds produced identical snapshots (possible but unlikely)")
	}
}

func TestPairedPlacementAcrossPolicies(t *testing.T) {
	// Same seed, different policies: initial placement and workload must
	// coincide — verified via the BFD baseline on PolicyNone (no policy
	// disturbs the end state) being equal for repeated PolicyNone runs and
	// via the first-round sample equality between two policies.
	xa := smallExperiment(PolicyGRMP)
	xb := smallExperiment(PolicyEcoCloud)
	a, err := Run(xa)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(xb)
	if err != nil {
		t.Fatal(err)
	}
	// Identical workload => identical oracle packing of last-round demand
	// (the oracle ignores actual placement).
	if a.BFDBaseline != b.BFDBaseline {
		t.Fatalf("BFD baselines differ: %d vs %d", a.BFDBaseline, b.BFDBaseline)
	}
}

func TestRunReplicated(t *testing.T) {
	results, err := RunReplicated(smallExperiment(PolicyGRMP), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	// Replications must differ (independent workloads).
	l0, _ := results[0].Series.Last()
	l1, _ := results[1].Series.Last()
	if l0 == l1 {
		t.Log("warning: two replications identical (unlikely)")
	}
	// And be individually valid.
	for i, r := range results {
		if err := r.Cluster.CheckInvariants(); err != nil {
			t.Fatalf("replication %d: %v", i, err)
		}
	}
}

func TestRunReplicatedPropagatesErrors(t *testing.T) {
	bad := smallExperiment(PolicyGLAP)
	bad.GLAP.Alpha = 7 // invalid
	if _, err := RunReplicated(bad, 2, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunCellAggregates(t *testing.T) {
	g := Grid{Sizes: []int{16}, Ratios: []int{2}, Rounds: 30, Reps: 3, Seed: 5, GLAP: fastGLAP()}
	cs, err := RunCell(g, Cell{PMs: 16, Ratio: 2, Policy: PolicyGRMP})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Reps != 3 {
		t.Fatalf("reps = %d", cs.Reps)
	}
	if cs.Overloaded.N != 3*30 {
		t.Fatalf("overloaded pooled N = %d, want 90", cs.Overloaded.N)
	}
	if len(cs.CumMigrations) != 30 {
		t.Fatalf("cum series length %d", len(cs.CumMigrations))
	}
	// Cumulative series must be non-decreasing.
	for i := 1; i < len(cs.CumMigrations); i++ {
		if cs.CumMigrations[i] < cs.CumMigrations[i-1]-1e-9 {
			t.Fatal("cumulative migrations decreased")
		}
	}
	if cs.Active.N != 3 || cs.SLAV.N != 3 {
		t.Fatal("per-replication summaries wrong")
	}
}

func TestRunGridOrderAndKeys(t *testing.T) {
	g := Grid{
		Sizes: []int{12}, Ratios: []int{2}, Rounds: 20, Reps: 2, Seed: 3,
		Policies: []Policy{PolicyGRMP, PolicyEcoCloud}, GLAP: fastGLAP(),
	}
	cells, order, err := RunGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || len(cells) != 2 {
		t.Fatalf("got %d cells", len(order))
	}
	if order[0].Policy != PolicyGRMP || order[1].Policy != PolicyEcoCloud {
		t.Fatalf("order %v", order)
	}
	for _, c := range order {
		if cells[c] == nil {
			t.Fatalf("missing stats for %s", c)
		}
	}
}

func TestCellString(t *testing.T) {
	c := Cell{PMs: 500, Ratio: 3, Policy: PolicyGLAP}
	if c.String() != "500-3/glap" {
		t.Fatalf("Cell.String() = %q", c.String())
	}
}

func TestRunConvergenceShape(t *testing.T) {
	res, err := RunConvergence(16, []int{2, 3}, fastGLAP(), 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Ratio != 2 || res[1].Ratio != 3 {
		t.Fatalf("ratios wrong: %+v", res)
	}
	for _, r := range res {
		if len(r.Cosine) == 0 || len(r.Cosine) != len(r.Rounds) {
			t.Fatal("series malformed")
		}
		if r.AggStart != 30 {
			t.Fatalf("AggStart = %d", r.AggStart)
		}
		final := r.Cosine[len(r.Cosine)-1]
		if final < 0.99 {
			t.Fatalf("ratio %d did not converge: %g", r.Ratio, final)
		}
	}
}

func TestGLAPBeatsGRMPOnOverloads(t *testing.T) {
	// The paper's headline claim, at smoke-test scale: pooled across a few
	// replications, GLAP overloads fewer PMs than GRMP.
	if testing.Short() {
		t.Skip("skipping comparative run in -short mode")
	}
	g := Grid{Sizes: []int{30}, Ratios: []int{3}, Rounds: 60, Reps: 3, Seed: 11, GLAP: fastGLAP()}
	glapStats, err := RunCell(g, Cell{PMs: 30, Ratio: 3, Policy: PolicyGLAP})
	if err != nil {
		t.Fatal(err)
	}
	grmpStats, err := RunCell(g, Cell{PMs: 30, Ratio: 3, Policy: PolicyGRMP})
	if err != nil {
		t.Fatal(err)
	}
	if glapStats.Overloaded.Mean >= grmpStats.Overloaded.Mean {
		t.Fatalf("GLAP mean overloads %.2f !< GRMP %.2f",
			glapStats.Overloaded.Mean, grmpStats.Overloaded.Mean)
	}
	if glapStats.SLAV.Median >= grmpStats.SLAV.Median {
		t.Fatalf("GLAP SLAV %.3g !< GRMP %.3g",
			glapStats.SLAV.Median, grmpStats.SLAV.Median)
	}
}
