package glapsim

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
	"os"
	"testing"

	"github.com/glap-sim/glap/internal/qlearn"
)

// f32GoldenExperiment is the golden run on the F32 value tier: same cluster,
// seed, and rounds, with only the Q-value storage narrowed.
func f32GoldenExperiment() Experiment {
	x := goldenExperiment()
	x.GLAP.Precision = qlearn.F32
	return x
}

// goldenSeriesHashF32 pins the F32 tier's own golden fingerprint. It is
// deliberately a separate pin from goldenSeriesHash even though the two are
// currently equal: at golden scale the float32 rounding never flips a Best
// near-tie, so the narrow tier reproduces the F64 decision series exactly
// (TestF32SeriesBoundedDivergence asserts the tier really is active). The
// pins may legitimately diverge at other scales or under future calibration
// changes — rounded Q-values can flip near-tie consolidation decisions —
// and keeping them separate means such a change re-pins the F32 series
// without ever touching the F64 contract. Regenerate with
// GLAP_GOLDEN_UPDATE=1 go test -run TestGoldenDeterminismF32 -v .
const goldenSeriesHashF32 = "97f442cd66becde70529a5a796fcb32866e5dabc586f4a54b83190e8a039dec8"

// TestGoldenDeterminismF32 pins the F32 tier seed-for-seed, the narrow
// counterpart of TestGoldenDeterminism.
func TestGoldenDeterminismF32(t *testing.T) {
	res, err := Run(f32GoldenExperiment())
	if err != nil {
		t.Fatal(err)
	}
	dump := serializeSeries(res)
	sum := sha256.Sum256([]byte(dump))
	got := hex.EncodeToString(sum[:])
	if os.Getenv("GLAP_GOLDEN_UPDATE") != "" {
		t.Logf("F32 golden series dump:\n%s", dump)
		t.Logf("goldenSeriesHashF32 = %q", got)
		return
	}
	if got != goldenSeriesHashF32 {
		t.Fatalf("F32 golden Series fingerprint changed:\n got %s\nwant %s\nserialised series:\n%s",
			got, goldenSeriesHashF32, dump)
	}
}

// TestWorkerCountDifferentialF32 extends the headline worker invariance to
// the narrow tier: the F32 Series fingerprint must be byte-identical between
// Workers=1 and Workers=8. CI runs it under -race with the F64 variant.
func TestWorkerCountDifferentialF32(t *testing.T) {
	run := func(workers int) string {
		x := f32GoldenExperiment()
		x.Workers = workers
		res, err := Run(x)
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256([]byte(serializeSeries(res)))
		return hex.EncodeToString(sum[:])
	}
	seq, par := run(1), run(8)
	if seq != par {
		t.Fatalf("F32 Series fingerprint differs between Workers=1 (%s) and Workers=8 (%s)", seq, par)
	}
}

// TestF32SeriesBoundedDivergence quantifies what the tier trade actually
// costs at the simulation level: the F32 run's SLA violation, migration
// count, and migration energy must land within a narrow band of the F64
// run's. The two series are not expected to be identical — rounded Q-values
// flip near-tie Best decisions, and one flipped migration cascades — but the
// aggregate metrics the paper reports must not move materially. The bounds
// here are the measured divergence with ~3× headroom; EXPERIMENTS.md records
// the measured values.
func TestF32SeriesBoundedDivergence(t *testing.T) {
	r64, err := Run(goldenExperiment())
	if err != nil {
		t.Fatal(err)
	}
	r32, err := Run(f32GoldenExperiment())
	if err != nil {
		t.Fatal(err)
	}

	// Guard against the precision knob silently not reaching the stack —
	// identical series would then be a vacuous pass.
	if r32.Pretrain == nil || len(r32.Pretrain.Tables) == 0 {
		t.Fatal("F32 run has no pretrain result")
	}
	for _, tb := range r32.Pretrain.Tables {
		if tb.Out.Precision() != qlearn.F32 || tb.In.Precision() != qlearn.F32 {
			t.Fatal("F32 experiment ran on F64 tables: precision not plumbed through Run")
		}
	}

	if d := math.Abs(r64.Series.SLAV - r32.Series.SLAV); d > 0.01 {
		t.Fatalf("SLAV diverged by %g (F64 %g, F32 %g)", d, r64.Series.SLAV, r32.Series.SLAV)
	}
	var migr64, migr32 int64
	var energy64, energy32 float64
	for _, s := range r64.Series.Samples {
		migr64 += s.Migrations
		energy64 += s.MigrationEnergyJ
	}
	for _, s := range r32.Series.Samples {
		migr32 += s.Migrations
		energy32 += s.MigrationEnergyJ
	}
	if migr64 == 0 || migr32 == 0 {
		t.Fatal("golden runs produced no migrations; divergence bound is vacuous")
	}
	relMigr := math.Abs(float64(migr64-migr32)) / float64(migr64)
	if relMigr > 0.15 {
		t.Fatalf("migration count diverged by %.1f%% (F64 %d, F32 %d)", 100*relMigr, migr64, migr32)
	}
	relEnergy := math.Abs(energy64-energy32) / energy64
	if relEnergy > 0.15 {
		t.Fatalf("migration energy diverged by %.1f%% (F64 %g, F32 %g)", 100*relEnergy, energy64, energy32)
	}
	t.Logf("F64↔F32 divergence: |ΔSLAV|=%g, migrations %d→%d (%.2f%%), energy rel %.2f%%",
		math.Abs(r64.Series.SLAV-r32.Series.SLAV), migr64, migr32, 100*relMigr, 100*relEnergy)
}
