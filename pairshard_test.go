package glapsim

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"reflect"
	"testing"
)

// fingerprint runs x and returns the SHA-256 of its serialised Series plus
// the Result itself for counter assertions.
func fingerprint(t *testing.T, x Experiment) (string, *Result) {
	t.Helper()
	res, err := Run(x)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(serializeSeries(res)))
	return hex.EncodeToString(sum[:]), res
}

// TestPairShardedWorkerDifferential is the headline invariant of the pair
// scheduler: with PairSharded enabled, the full Series fingerprint must be
// byte-identical between Workers=1 and Workers=8 for every registered policy
// and several seeds. The batch coloring depends only on the drawn pair list,
// never on the worker count, so the fan-out is unobservable.
func TestPairShardedWorkerDifferential(t *testing.T) {
	for _, p := range RegisteredPolicies() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			for _, seed := range []uint64{7, 23, 41} {
				run := func(workers int) (string, *Result) {
					return fingerprint(t, Experiment{
						PMs: 20, Ratio: 2, Rounds: 40, Seed: seed, Policy: p,
						GLAP:        fastGLAP(),
						Workers:     workers,
						PairSharded: true,
					})
				}
				seq, seqRes := run(1)
				par, _ := run(8)
				if seq != par {
					t.Fatalf("policy %s seed %d: Series fingerprint differs between Workers=1 (%s) and Workers=8 (%s)",
						p, seed, seq, par)
				}
				if p == PolicyGLAP && seqRes.PairPasses == 0 {
					t.Fatalf("policy %s seed %d: PairSharded run recorded no sharded passes — the opt-in did not engage", p, seed)
				}
			}
		})
	}
}

// pairShardedGoldenHash pins the golden experiment under pair-sharded
// execution. It intentionally differs from goldenSeriesHash: sharded
// execution is its own reference point (every draw in a pass observes
// round-start state instead of the sequential path's interleaved effects),
// so it gets its own byte-for-byte pin.
// Regenerate with GLAP_GOLDEN_UPDATE=1 go test -run TestPairShardedGolden -v .
const pairShardedGoldenHash = "f234bdd362b838f08e27ce101b5040cc119689b6a0389ed3277f93a379a7f9d3"

// TestPairShardedGolden pins the sharded reference fingerprint and checks
// the sharded counters are live: passes, batches and pairs must all be
// recorded for a GLAP run.
func TestPairShardedGolden(t *testing.T) {
	x := goldenExperiment()
	x.PairSharded = true
	got, res := fingerprint(t, x)
	if res.PairPasses <= 0 || res.PairBatches <= 0 || res.PairCount <= 0 {
		t.Fatalf("sharded counters not recorded: passes=%d batches=%d pairs=%d",
			res.PairPasses, res.PairBatches, res.PairCount)
	}
	if res.PairBatches < res.PairPasses {
		t.Fatalf("fewer batches (%d) than passes (%d): every pass needs at least one batch",
			res.PairBatches, res.PairPasses)
	}
	if os.Getenv("GLAP_GOLDEN_UPDATE") != "" {
		t.Logf("pairShardedGoldenHash = %q (passes=%d batches=%d pairs=%d)",
			got, res.PairPasses, res.PairBatches, res.PairCount)
		return
	}
	if got != pairShardedGoldenHash {
		t.Fatalf("pair-sharded golden fingerprint changed:\n got %s\nwant %s", got, pairShardedGoldenHash)
	}
}

// TestPairShardedRobustGridWorkerInvariance replays the small robustness grid
// with pair-sharding enabled at two replication worker budgets and requires
// the entire result — sync reference and every async cell — to be equal.
func TestPairShardedRobustGridWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("robust grid in -short mode")
	}
	run := func(workers int) *RobustResult {
		res, err := RunRobust(RobustConfig{
			PMs: 20, Ratio: 2, Rounds: 30, Reps: 2, Seed: 7,
			DropProbs: []float64{0, 0.2}, Latencies: []int64{1, 30},
			Workers: workers, PairSharded: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(1), run(8); !reflect.DeepEqual(a, b) {
		t.Fatalf("robust grid with PairSharded diverged between Workers=1 and Workers=8:\n%+v\nvs\n%+v", a, b)
	}
}

// TestPairShardedScenarioWorkerInvariance checks one scenario row's series
// hash is worker-count invariant under pair-sharding.
func TestPairShardedScenarioWorkerInvariance(t *testing.T) {
	run := func(workers int) []ScenarioRow {
		rows, err := RunScenarios(ScenarioConfig{
			Sizes: []int{16}, Rounds: 20, Seed: 1, Workers: workers,
			Scenarios: []Scenario{ScenarioHetero}, PairSharded: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(1), run(8)
	if a[0].SeriesHash != b[0].SeriesHash {
		t.Fatalf("scenario hash with PairSharded diverged between Workers=1 (%s) and Workers=8 (%s)",
			a[0].SeriesHash, b[0].SeriesHash)
	}
}
