package glapsim

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"testing"

	"github.com/glap-sim/glap/internal/dc"
)

func TestHeterogeneousCluster(t *testing.T) {
	x := smallExperiment(PolicyGLAP)
	x.Heterogeneous = true
	res, err := Run(x)
	if err != nil {
		t.Fatal(err)
	}
	g5, g4 := 0, 0
	for _, pm := range res.Cluster.PMs {
		switch pm.Spec.Name {
		case dc.HPProLiantML110G5.Name:
			g5++
		case dc.HPProLiantML110G4.Name:
			g4++
		default:
			t.Fatalf("unexpected PM spec %q", pm.Spec.Name)
		}
	}
	if g5 == 0 || g4 == 0 {
		t.Fatalf("not heterogeneous: %d G5, %d G4", g5, g4)
	}
	if err := res.Cluster.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	last, _ := res.Series.Last()
	if last.ActivePMs >= x.PMs {
		t.Fatal("no consolidation on heterogeneous hardware")
	}
}

func TestHeterogeneousPABFDPrefersEfficientHosts(t *testing.T) {
	if testing.Short() {
		t.Skip("comparative run in -short mode")
	}
	// With mixed hardware, PABFD's power-aware best fit should still
	// consolidate correctly and uphold invariants; placement decisions now
	// differ across hosts (different dynamic power per MIPS).
	x := smallExperiment(PolicyPABFD)
	x.Heterogeneous = true
	x.Rounds = 60
	res, err := Run(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Cluster.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	last, _ := res.Series.Last()
	if last.ActivePMs >= x.PMs {
		t.Fatal("PABFD did not consolidate heterogeneous cluster")
	}
}

// heteroSeriesHash pins the heterogeneous golden run byte-for-byte — the
// mixed-capacity analogue of goldenSeriesHash. It routes every accounting
// query through per-PM Spec capacities (the G4/G5 split) instead of a
// uniform fleet, so a layout bug that only bites when capacity varies by
// host — e.g. indexing a shared capacity vector instead of the PM's own —
// shifts utilisation levels and changes this fingerprint even while the
// homogeneous golden test stays green.
// Regenerate with GLAP_GOLDEN_UPDATE=1 go test -run TestHeterogeneousSeriesPinned -v .
const heteroSeriesHash = "5cd3ef3188f8cc4bafd98cf85bb147baa6c75eaf193ec486fae04f2d4f399c5b"

func TestHeterogeneousSeriesPinned(t *testing.T) {
	x := goldenExperiment()
	x.Heterogeneous = true
	res, err := Run(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Cluster.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	dump := serializeSeries(res)
	sum := sha256.Sum256([]byte(dump))
	got := hex.EncodeToString(sum[:])
	if os.Getenv("GLAP_GOLDEN_UPDATE") != "" {
		t.Logf("hetero series dump:\n%s", dump)
		t.Logf("heteroSeriesHash = %q", got)
		return
	}
	if got != heteroSeriesHash {
		t.Fatalf("heterogeneous Series fingerprint changed:\n got %s\nwant %s\nserialised series:\n%s",
			got, heteroSeriesHash, dump)
	}
}

func TestHeterogeneousCapacityRespected(t *testing.T) {
	// G4 machines have 1860 MIPS: the dc model must account utilisation
	// against the per-machine capacity, so identical absolute demand yields
	// higher utilisation on G4 hosts.
	x := smallExperiment(PolicyNone)
	x.Heterogeneous = true
	res, err := Run(x)
	if err != nil {
		t.Fatal(err)
	}
	cl := res.Cluster
	for _, pm := range cl.PMs {
		u := cl.CurUtil(pm)
		var abs dc.Vec
		for _, id := range pm.VMIDs() {
			abs = abs.Add(cl.VMs[id].CurAbs())
		}
		want := abs.Div(pm.Spec.Capacity)
		if diff := u[dc.CPU] - want[dc.CPU]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("PM %d (%s): util %v, want %v", pm.ID, pm.Spec.Name, u, want)
		}
	}
}
