package glapsim

// Failure-injection and churn tests: the distributed protocols must keep
// the cluster consistent and keep making progress when machine membership
// changes under them mid-run.

import (
	"testing"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/glap"
	"github.com/glap-sim/glap/internal/metrics"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
)

// buildGLAPRun assembles a GLAP consolidation engine with freshly
// pre-trained tables, returning the engine, binding and series so tests can
// drive rounds manually and inject events between them.
func buildGLAPRun(t *testing.T, x Experiment) (*sim.Engine, *policy.Binding, *metrics.Series) {
	t.Helper()
	w, err := workloadFor(x)
	if err != nil {
		t.Fatal(err)
	}
	preCluster, err := buildCluster(x, w)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := glap.Pretrain(x.GLAP, preCluster, deriveSeed(x.Seed, seedPretrain), glap.PretrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := glap.SharedTables(pre)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := buildCluster(x, w)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine(x.PMs, deriveSeed(x.Seed, seedEngine))
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	glap.InstallConsolidation(e, b, shared, x.GLAP, glap.PretrainOptions{})
	series := metrics.Attach(e, cl, 0)
	return e, b, series
}

func TestChurnCapacityExpansion(t *testing.T) {
	// Consolidate, then power every switched-off PM back on (capacity
	// expansion / maintenance return). The protocol must re-absorb the
	// idle machines: invariants hold throughout and the active count
	// shrinks again.
	x := smallExperiment(PolicyGLAP)
	x.PMs = 30
	x.Rounds = 120
	e, b, _ := buildGLAPRun(t, x)

	e.RunRounds(50)
	cl := b.C
	consolidated := cl.ActivePMs()
	if consolidated >= x.PMs {
		t.Fatal("setup: no consolidation before churn")
	}
	for _, pm := range cl.PMs {
		if !pm.On() {
			b.PowerOn(pm.ID)
		}
	}
	if cl.ActivePMs() != x.PMs {
		t.Fatal("expansion failed")
	}
	e.RunRounds(60)
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := cl.ActivePMs(); got > consolidated+4 {
		t.Fatalf("re-consolidation stalled: %d active, was %d before churn", got, consolidated)
	}
}

func TestChurnOverlaySurvivesMassPowerOff(t *testing.T) {
	// Aggressively power off empty PMs by hand mid-run; the Cyclon views
	// of the survivors must purge dead entries and consolidation must
	// continue without selecting dead peers (no panics, invariants hold).
	x := smallExperiment(PolicyGLAP)
	x.PMs = 30
	x.Rounds = 100
	e, b, _ := buildGLAPRun(t, x)

	e.RunRounds(20)
	cl := b.C
	killed := 0
	for _, pm := range cl.PMs {
		if pm.On() && pm.NumVMs() == 0 && killed < 10 {
			if b.PowerOff(pm.ID) == nil {
				killed++
			}
		}
	}
	e.RunRounds(60)
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, n := range e.Nodes() {
		if !n.Up() {
			continue
		}
		for _, entry := range cyclon.ViewOf(e, n).Entries() {
			if !e.Node(entry.Peer).Up() {
				// Entries pointing at dead nodes may linger briefly but
				// after 60 rounds of shuffling they must be gone.
				t.Fatalf("node %d still references dead node %d", n.ID, entry.Peer)
			}
		}
	}
}

func TestLongRunTraceWrapAround(t *testing.T) {
	// Run 1.5x the trace length: the workload wraps, nothing panics,
	// metrics keep accumulating monotonically.
	x := smallExperiment(PolicyGRMP)
	x.Rounds = 40 // workload generated for 40 rounds
	w, err := workloadFor(x)
	if err != nil {
		t.Fatal(err)
	}
	x.Workload = w
	x.Rounds = 60 // but run 60
	res, err := Run(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series.Samples) != 60 {
		t.Fatalf("%d samples", len(res.Series.Samples))
	}
	var prev int64 = -1
	for _, s := range res.Series.Samples {
		if s.Migrations < prev {
			t.Fatal("cumulative migrations decreased")
		}
		prev = s.Migrations
	}
	if err := res.Cluster.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsEveryRoundAllPolicies(t *testing.T) {
	// Structural failure injection: verify the placement invariants after
	// every single round for each policy, not just at the end.
	for _, p := range Policies {
		p := p
		t.Run(string(p), func(t *testing.T) {
			x := smallExperiment(p)
			x.Rounds = 30
			w, err := workloadFor(x)
			if err != nil {
				t.Fatal(err)
			}
			x.Workload = w
			// Rebuild the run manually so we can observe per-round.
			var shared *glap.NodeTables
			if p == PolicyGLAP {
				preCluster, err := buildCluster(x, w)
				if err != nil {
					t.Fatal(err)
				}
				pre, err := glap.Pretrain(x.GLAP, preCluster, deriveSeed(x.Seed, seedPretrain), glap.PretrainOptions{})
				if err != nil {
					t.Fatal(err)
				}
				shared, err = glap.SharedTables(pre)
				if err != nil {
					t.Fatal(err)
				}
			}
			cl, err := buildCluster(x, w)
			if err != nil {
				t.Fatal(err)
			}
			e := sim.NewEngine(x.PMs, deriveSeed(x.Seed, seedEngine))
			b, err := policy.Bind(e, cl)
			if err != nil {
				t.Fatal(err)
			}
			switch p {
			case PolicyGLAP:
				glap.InstallConsolidation(e, b, shared, x.GLAP, glap.PretrainOptions{})
			default:
				installBaseline(t, e, b, p)
			}
			e.Observe(func(e *sim.Engine, round int) {
				if err := cl.CheckInvariants(); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			})
			e.RunRounds(x.Rounds)
		})
	}
}
