package glapsim

import (
	"fmt"

	"github.com/glap-sim/glap/internal/glap"
	"github.com/glap-sim/glap/internal/metrics"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/stats"
)

// RobustConfig sweeps the message-passing consolidation protocol over a
// loss-probability × latency grid and compares every cell against the
// synchronous (simulator-shortcut) protocol on the same workloads, tables
// and placements. It quantifies how much packing quality Algorithm 3 gives
// up when its push-pull exchanges ride a real network.
type RobustConfig struct {
	// PMs and Ratio size the cluster (defaults 50 and 2).
	PMs   int
	Ratio int
	// Rounds is the consolidation-run length (default 60).
	Rounds int
	// Reps is the number of replications (default 3).
	Reps int
	// Seed is the master seed.
	Seed uint64
	// DropProbs are the loss probabilities of the grid (default 0, 0.1,
	// 0.2).
	DropProbs []float64
	// Latencies are the one-way message delays in virtual time units; the
	// round period is 120 (default 1, 30, 90).
	Latencies []int64
	// Workers bounds replication parallelism (<= 0: GOMAXPROCS).
	Workers int
	// GLAP overrides the GLAP configuration.
	GLAP glap.Config
	// PairSharded / SkipQuiescent forward the engine options into every run
	// of the grid (see Experiment); the grid outcome is invariant to both.
	PairSharded   bool
	SkipQuiescent bool
}

func (r RobustConfig) withDefaults() RobustConfig {
	if r.PMs == 0 {
		r.PMs = 50
	}
	if r.Ratio == 0 {
		r.Ratio = 2
	}
	if r.Rounds == 0 {
		r.Rounds = 60
	}
	if r.Reps == 0 {
		r.Reps = 3
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if len(r.DropProbs) == 0 {
		r.DropProbs = []float64{0, 0.1, 0.2}
	}
	if len(r.Latencies) == 0 {
		r.Latencies = []int64{1, 30, 90}
	}
	return r
}

// RobustCell identifies one (loss, latency) grid cell.
type RobustCell struct {
	DropProb float64
	Latency  int64
}

// String renders e.g. "p=0.10/lat=30".
func (c RobustCell) String() string {
	return fmt.Sprintf("p=%.2f/lat=%d", c.DropProb, c.Latency)
}

// RobustCellStats aggregates one cell's replications.
type RobustCellStats struct {
	Cell RobustCell
	// Active, Migrations and SLAV summarise end-of-run outcomes across
	// replications.
	Active     stats.Summary
	Migrations stats.Summary
	SLAV       stats.Summary
	// Message accounting totals across replications.
	Sent, Delivered, Dropped int64
	// Protocol sequence counters summed across replications.
	Offers, Commits, Aborts, Expired int64
	// LeakedReservations counts reservations still open after the drain —
	// any nonzero value is a protocol bug.
	LeakedReservations int
}

// RobustResult is the full grid outcome plus the synchronous reference.
type RobustResult struct {
	// SyncActive, SyncMigrations and SyncSLAV summarise the cycle-driven
	// reference runs.
	SyncActive     stats.Summary
	SyncMigrations stats.Summary
	SyncSLAV       stats.Summary
	// Cells holds the async grid in DropProbs × Latencies order.
	Cells []*RobustCellStats
}

// robustRep is one replication's raw outcome.
type robustRep struct {
	err                           error
	syncActive, syncMig, syncSLAV float64
	cells                         []robustCellRep
}

type robustCellRep struct {
	active, migrations, slav         float64
	sent, delivered, dropped         int64
	offers, commits, aborts, expired int64
	leaked                           int
}

// RunRobust executes the robustness grid. Each replication pretrains once,
// runs the synchronous reference, and then replays every (loss, latency)
// cell on an identically placed cluster with the same shared tables, so all
// comparisons are paired.
func RunRobust(cfg RobustConfig) (*RobustResult, error) {
	cfg = cfg.withDefaults()
	reps := sim.RunReplications(cfg.Reps, cfg.Workers, func(rep int) robustRep {
		return runRobustRep(cfg, rep)
	})

	res := &RobustResult{}
	var syncActive, syncMig, syncSLAV []float64
	nCells := len(cfg.DropProbs) * len(cfg.Latencies)
	cellActive := make([][]float64, nCells)
	cellMig := make([][]float64, nCells)
	cellSLAV := make([][]float64, nCells)
	agg := make([]RobustCellStats, nCells)
	for _, r := range reps {
		if r.err != nil {
			return nil, r.err
		}
		syncActive = append(syncActive, r.syncActive)
		syncMig = append(syncMig, r.syncMig)
		syncSLAV = append(syncSLAV, r.syncSLAV)
		for i, c := range r.cells {
			cellActive[i] = append(cellActive[i], c.active)
			cellMig[i] = append(cellMig[i], c.migrations)
			cellSLAV[i] = append(cellSLAV[i], c.slav)
			agg[i].Sent += c.sent
			agg[i].Delivered += c.delivered
			agg[i].Dropped += c.dropped
			agg[i].Offers += c.offers
			agg[i].Commits += c.commits
			agg[i].Aborts += c.aborts
			agg[i].Expired += c.expired
			agg[i].LeakedReservations += c.leaked
		}
	}
	res.SyncActive = stats.Summarize(syncActive)
	res.SyncMigrations = stats.Summarize(syncMig)
	res.SyncSLAV = stats.Summarize(syncSLAV)
	i := 0
	for _, drop := range cfg.DropProbs {
		for _, lat := range cfg.Latencies {
			cs := agg[i]
			cs.Cell = RobustCell{DropProb: drop, Latency: lat}
			cs.Active = stats.Summarize(cellActive[i])
			cs.Migrations = stats.Summarize(cellMig[i])
			cs.SLAV = stats.Summarize(cellSLAV[i])
			res.Cells = append(res.Cells, &cs)
			i++
		}
	}
	return res, nil
}

// runRobustRep executes one full replication: pretrain, sync reference, and
// every async grid cell.
func runRobustRep(cfg RobustConfig, rep int) (out robustRep) {
	x := Experiment{
		PMs: cfg.PMs, Ratio: cfg.Ratio, Rounds: cfg.Rounds,
		Seed: sim.ReplicationSeed(cfg.Seed, rep), Policy: PolicyGLAP, GLAP: cfg.GLAP,
		// The registry builders default these through overlayFor; the
		// historical grid wired cyclon.New(20, 8) explicitly, so pin the
		// same overlay parameters for seed-for-seed identical cells.
		CyclonViewSize: 20, CyclonShuffleLen: 8,
		PairSharded: cfg.PairSharded, SkipQuiescent: cfg.SkipQuiescent,
	}
	if err := x.Validate(); err != nil {
		out.err = err
		return
	}
	w, err := workloadFor(x)
	if err != nil {
		out.err = err
		return
	}
	pre, err := buildCluster(x, w)
	if err != nil {
		out.err = err
		return
	}
	pretrain, err := glap.Pretrain(x.GLAP, pre, deriveSeed(x.Seed, seedPretrain), x.Pretrain)
	if err != nil {
		out.err = err
		return
	}
	shared, err := glap.SharedTables(pretrain)
	if err != nil {
		out.err = err
		return
	}
	// prepareStack builds each paired run — identically placed cluster, same
	// engine seed — so the sync reference and every grid cell differ only in
	// the transport.

	// Synchronous reference.
	{
		c, e, _, err := prepareStack(x, w, shared)
		if err != nil {
			out.err = err
			return
		}
		series := metrics.Attach(e, c, 0)
		e.RunRounds(x.Rounds)
		series.Finalize(c)
		out.syncActive = float64(c.ActivePMs())
		out.syncMig = float64(c.Migrations)
		out.syncSLAV = series.SLAV
	}

	// Async grid: same engine seed per cell, so the overlay and round
	// shuffling match the reference and only the transport differs.
	for _, drop := range cfg.DropProbs {
		for _, lat := range cfg.Latencies {
			xc := x
			xc.Policy = PolicyGLAPAsync
			xc.Net = NetConfig{Latency: lat, DropProb: drop}
			c, e, ctx, err := prepareStack(xc, w, shared)
			if err != nil {
				out.err = err
				return
			}
			cons, tr := ctx.Artifacts.AsyncConsolidate, ctx.Artifacts.Transport
			series := metrics.Attach(e, c, 0)
			e.RunRounds(x.Rounds)
			e.RunEvents(-1)
			series.Finalize(c)
			out.cells = append(out.cells, robustCellRep{
				active:     float64(c.ActivePMs()),
				migrations: float64(c.Migrations),
				slav:       series.SLAV,
				sent:       tr.Sent, delivered: tr.Delivered, dropped: tr.Dropped,
				offers: cons.Offers, commits: cons.Commits,
				aborts: cons.Aborts, expired: cons.Expired,
				leaked: c.OpenReservations(),
			})
		}
	}
	return
}
