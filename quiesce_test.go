package glapsim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"github.com/glap-sim/glap/internal/trace"
)

// constantWorkload builds a workload whose per-VM demand never changes: the
// strongest possible quiescence scenario. Demands are spread across VMs so
// placement and consolidation stay non-trivial.
func constantWorkload(t *testing.T, vms int) *trace.Set {
	t.Helper()
	const rounds = 4 // NextChange proves constancy from one full period
	var b strings.Builder
	b.WriteString("vm,round,cpu,mem\n")
	for vm := 0; vm < vms; vm++ {
		cpu := 0.10 + 0.012*float64(vm%20)
		mem := 0.08 + 0.010*float64(vm%17)
		for r := 0; r < rounds; r++ {
			fmt.Fprintf(&b, "%d,%d,%.6f,%.6f\n", vm, r, cpu, mem)
		}
	}
	w, err := trace.LoadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSkipQuiescentDifferential: for every registered policy and several
// seeds, enabling quiescence-skipping must not change a single byte of the
// Series fingerprint. Policies whose protocols cannot certify inactivity
// simply never skip; the ones that can must skip invisibly.
func TestSkipQuiescentDifferential(t *testing.T) {
	for _, p := range RegisteredPolicies() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			for _, seed := range []uint64{7, 23} {
				run := func(skip bool) string {
					h, _ := fingerprint(t, Experiment{
						PMs: 20, Ratio: 2, Rounds: 40, Seed: seed, Policy: p,
						GLAP:          fastGLAP(),
						SkipQuiescent: skip,
					})
					return h
				}
				off, on := run(false), run(true)
				if off != on {
					t.Fatalf("policy %s seed %d: Series fingerprint differs with SkipQuiescent off (%s) vs on (%s)",
						p, seed, off, on)
				}
			}
		})
	}
}

// TestSkipQuiescentGoldenUnchanged: the skip path shares the sequential
// reference (a skipped tail is provably unobservable), so the golden
// experiment with SkipQuiescent enabled must still produce the pinned
// sequential fingerprint — not a new one.
func TestSkipQuiescentGoldenUnchanged(t *testing.T) {
	x := goldenExperiment()
	x.SkipQuiescent = true
	got, _ := fingerprint(t, x)
	if got != goldenSeriesHash {
		t.Fatalf("golden fingerprint with SkipQuiescent: got %s, want %s", got, goldenSeriesHash)
	}
}

// TestSkipQuiescentPlateau pins that the fast path actually engages: on a
// constant-demand workload the replay-only stack (PolicyNone, no protocols)
// must certify the whole tail after the first live round, and the skipped
// run must still match the unskipped fingerprint byte for byte.
func TestSkipQuiescentPlateau(t *testing.T) {
	w := constantWorkload(t, 40)
	run := func(skip bool) (string, *Result) {
		return fingerprint(t, Experiment{
			PMs: 20, Ratio: 2, Rounds: 50, Seed: 7, Policy: PolicyNone,
			Workload:      w,
			SkipQuiescent: skip,
		})
	}
	off, offRes := run(false)
	on, onRes := run(true)
	if off != on {
		t.Fatalf("plateau fingerprint differs with SkipQuiescent off (%s) vs on (%s)", off, on)
	}
	if offRes.RoundsSkipped != 0 {
		t.Fatalf("SkipQuiescent disabled but %d rounds skipped", offRes.RoundsSkipped)
	}
	if onRes.RoundsSkipped != 49 {
		t.Fatalf("constant workload with no protocols skipped %d rounds, want 49 (all but round 0)",
			onRes.RoundsSkipped)
	}
}

// TestSkipQuiescentPlateauGLAP drives the full sync GLAP stack on constant
// demand long enough for consolidation to reach its fixed point, and
// requires (a) byte-identical output and (b) a non-empty skipped tail — the
// consolidation inactivity certificate must eventually fire.
func TestSkipQuiescentPlateauGLAP(t *testing.T) {
	w := constantWorkload(t, 40)
	run := func(skip bool) (string, *Result) {
		return fingerprint(t, Experiment{
			PMs: 20, Ratio: 2, Rounds: 80, Seed: 7, Policy: PolicyGLAP,
			GLAP:          fastGLAP(),
			Workload:      w,
			SkipQuiescent: skip,
		})
	}
	off, _ := run(false)
	on, onRes := run(true)
	if off != on {
		t.Fatalf("GLAP plateau fingerprint differs with SkipQuiescent off (%s) vs on (%s)", off, on)
	}
	if onRes.RoundsSkipped == 0 {
		t.Fatal("GLAP on constant demand skipped no rounds — the consolidation inactivity certificate never fired")
	}
}

// TestSkipQuiescentRobustGridInvariance replays the small robustness grid
// with and without quiescence-skipping; the entire result must be equal.
func TestSkipQuiescentRobustGridInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("robust grid in -short mode")
	}
	run := func(skip bool) *RobustResult {
		res, err := RunRobust(RobustConfig{
			PMs: 20, Ratio: 2, Rounds: 30, Reps: 2, Seed: 7,
			DropProbs: []float64{0, 0.2}, Latencies: []int64{1, 30},
			SkipQuiescent: skip,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(false), run(true); !reflect.DeepEqual(a, b) {
		t.Fatalf("robust grid diverged with SkipQuiescent on vs off:\n%+v\nvs\n%+v", a, b)
	}
}

// TestSkipQuiescentScenarioInvariance checks one scenario row's series hash
// is unchanged by quiescence-skipping.
func TestSkipQuiescentScenarioInvariance(t *testing.T) {
	run := func(skip bool) []ScenarioRow {
		rows, err := RunScenarios(ScenarioConfig{
			Sizes: []int{16}, Rounds: 20, Seed: 1,
			Scenarios: []Scenario{ScenarioHetero}, SkipQuiescent: skip,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(false), run(true)
	if a[0].SeriesHash != b[0].SeriesHash {
		t.Fatalf("scenario hash diverged with SkipQuiescent off (%s) vs on (%s)",
			a[0].SeriesHash, b[0].SeriesHash)
	}
}
