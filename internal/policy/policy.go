// Package policy contains the glue shared by every consolidation protocol in
// this reproduction: the binding that couples a dc.Cluster to a sim.Engine
// (PM i is node i), power management that keeps both views consistent, and
// small helpers for choosing migration candidates.
package policy

import (
	"fmt"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/sim"
)

// Binding couples one cluster with one engine. Node IDs and PM IDs coincide.
type Binding struct {
	E *sim.Engine
	C *dc.Cluster
}

// Bind wires cluster c into engine e: a BeforeRound hook advances the
// workload so every protocol observes the current round's demand. The
// cluster must have exactly as many PMs as the engine has nodes.
func Bind(e *sim.Engine, c *dc.Cluster) (*Binding, error) {
	if len(c.PMs) != e.N() {
		return nil, fmt.Errorf("policy: cluster has %d PMs but engine has %d nodes", len(c.PMs), e.N())
	}
	b := &Binding{E: e, C: c}
	// Span-capable: QuietSpan is the pure probe certifying that every round
	// of a window would be a pure repetition (constant demand, no lifecycle
	// events, no reservations), and AdvanceSpan replays the window's
	// accounting bit-identically in one fused pass. This is what lets the
	// engine's quiescence-skipping batch-advance the cluster.
	e.BeforeRoundSpan(sim.SpanHook{
		Each: func(e *sim.Engine, round int) {
			c.AdvanceRound(round)
		},
		Quiet: func(e *sim.Engine, from, to int) bool {
			return c.QuietSpan(from, to)
		},
		Span: func(e *sim.Engine, from, to int) {
			c.AdvanceSpan(from, to)
		},
	})
	return b, nil
}

// PM returns the PM bound to node n.
func (b *Binding) PM(n *sim.Node) *dc.PM { return b.C.PMs[n.ID] }

// PowerOff switches PM id off in both the cluster and the overlay. It fails
// when the PM still hosts VMs.
func (b *Binding) PowerOff(id int) error {
	if err := b.C.SetPMOn(b.C.PMs[id], false); err != nil {
		return err
	}
	b.E.SetUp(b.E.Node(id), false)
	return nil
}

// PowerOn switches PM id back on in both views.
func (b *Binding) PowerOn(id int) {
	_ = b.C.SetPMOn(b.C.PMs[id], true) // powering on never fails
	b.E.SetUp(b.E.Node(id), true)
}

// TryPowerOffIfEmpty powers the PM off when it hosts no VMs and reports
// whether it did.
func (b *Binding) TryPowerOffIfEmpty(id int) bool {
	if b.C.PMs[id].NumVMs() != 0 {
		return false
	}
	return b.PowerOff(id) == nil
}

// VMsOf returns the VMs hosted by pm in ascending ID order.
func (b *Binding) VMsOf(pm *dc.PM) []*dc.VM {
	ids := pm.VMIDs()
	vms := make([]*dc.VM, len(ids))
	for i, id := range ids {
		vms[i] = b.C.VMs[id]
	}
	return vms
}

// CheapestToMigrate returns the VM among candidates with the smallest
// current memory footprint — the migration-cost tie-breaker of Algorithm 3
// (migration time, and hence cost, scales with transferred memory). It
// returns nil for an empty candidate list.
func CheapestToMigrate(candidates []*dc.VM) *dc.VM {
	var best *dc.VM
	for _, vm := range candidates {
		if best == nil || vm.CurAbs()[dc.Mem] < best.CurAbs()[dc.Mem] {
			best = vm
		}
	}
	return best
}
