package policy

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/trace"
)

func testCluster(t *testing.T, pms, vms int) *dc.Cluster {
	t.Helper()
	var b bytes.Buffer
	b.WriteString("vm,round,cpu,mem\n")
	for vm := 0; vm < vms; vm++ {
		for r := 0; r < 5; r++ {
			fmt.Fprintf(&b, "%d,%d,0.3,0.2\n", vm, r)
		}
	}
	set, err := trace.LoadCSV(&b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dc.New(dc.Config{PMs: pms, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	c.PlaceRandom(rng.Intn)
	return c
}

func TestBindAdvancesWorkload(t *testing.T) {
	cl := testCluster(t, 4, 8)
	e := sim.NewEngine(4, 1)
	if _, err := Bind(e, cl); err != nil {
		t.Fatal(err)
	}
	e.RunRounds(3)
	if cl.Round() != 2 {
		t.Fatalf("cluster at round %d, want 2", cl.Round())
	}
	if cl.PMs[0].ActiveSeconds() != 3*120 {
		t.Fatalf("active seconds %g", cl.PMs[0].ActiveSeconds())
	}
}

func TestBindSizeMismatch(t *testing.T) {
	cl := testCluster(t, 4, 8)
	e := sim.NewEngine(5, 1)
	if _, err := Bind(e, cl); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestPowerOffOnSyncsViews(t *testing.T) {
	cl := testCluster(t, 4, 2)
	e := sim.NewEngine(4, 1)
	b, err := Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	var empty int = -1
	for _, pm := range cl.PMs {
		if pm.NumVMs() == 0 {
			empty = pm.ID
			break
		}
	}
	if empty < 0 {
		t.Fatal("no empty PM in setup")
	}
	if err := b.PowerOff(empty); err != nil {
		t.Fatal(err)
	}
	if cl.PMs[empty].On() || e.Node(empty).Up() {
		t.Fatal("power-off did not sync both views")
	}
	b.PowerOn(empty)
	if !cl.PMs[empty].On() || !e.Node(empty).Up() {
		t.Fatal("power-on did not sync both views")
	}
}

func TestPowerOffRefusesNonEmpty(t *testing.T) {
	cl := testCluster(t, 2, 4)
	e := sim.NewEngine(2, 1)
	b, err := Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	var full int = -1
	for _, pm := range cl.PMs {
		if pm.NumVMs() > 0 {
			full = pm.ID
			break
		}
	}
	if err := b.PowerOff(full); err == nil {
		t.Fatal("expected error powering off non-empty PM")
	}
	if !e.Node(full).Up() {
		t.Fatal("node marked down despite failed power-off")
	}
}

func TestTryPowerOffIfEmpty(t *testing.T) {
	cl := testCluster(t, 3, 2)
	e := sim.NewEngine(3, 1)
	b, err := Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	offCount := 0
	for _, pm := range cl.PMs {
		if b.TryPowerOffIfEmpty(pm.ID) {
			offCount++
		}
	}
	if offCount == 0 {
		t.Fatal("no empty PM was powered off")
	}
	for _, pm := range cl.PMs {
		if pm.NumVMs() > 0 && !pm.On() {
			t.Fatal("non-empty PM powered off")
		}
	}
}

func TestVMsOfSortedAndComplete(t *testing.T) {
	cl := testCluster(t, 1, 5)
	e := sim.NewEngine(1, 1)
	b, err := Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	vms := b.VMsOf(cl.PMs[0])
	if len(vms) != 5 {
		t.Fatalf("got %d VMs", len(vms))
	}
	for i := 1; i < len(vms); i++ {
		if vms[i-1].ID >= vms[i].ID {
			t.Fatal("VMs not sorted by ID")
		}
	}
}

func TestCheapestToMigrate(t *testing.T) {
	if CheapestToMigrate(nil) != nil {
		t.Fatal("empty candidates should return nil")
	}
	cl := testCluster(t, 1, 3)
	vms := []*dc.VM{cl.VMs[0], cl.VMs[1], cl.VMs[2]}
	// Same memory demand everywhere: first candidate wins (stable).
	if got := CheapestToMigrate(vms); got != vms[0] {
		t.Fatal("tie should keep first candidate")
	}
	// Make one strictly cheaper.
	cheap := vms[2].CurDemand()
	cheap[dc.Mem] = 0.01
	vms[2].SetCurDemand(cheap)
	if got := CheapestToMigrate(vms); got != vms[2] {
		t.Fatal("cheapest VM not selected")
	}
}
