package ecocloud

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/trace"
)

func constCluster(t *testing.T, pms, vms int, cpu, mem float64) *dc.Cluster {
	t.Helper()
	var b bytes.Buffer
	b.WriteString("vm,round,cpu,mem\n")
	for vm := 0; vm < vms; vm++ {
		for r := 0; r < 5; r++ {
			fmt.Fprintf(&b, "%d,%d,%g,%g\n", vm, r, cpu, mem)
		}
	}
	set, err := trace.LoadCSV(&b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dc.New(dc.Config{PMs: pms, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	c.PlaceRandom(rng.Intn)
	return c
}

func install(t *testing.T, cl *dc.Cluster, seed uint64) (*sim.Engine, *Protocol) {
	t.Helper()
	e := sim.NewEngine(len(cl.PMs), seed)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	e.Register(cyclon.New(6, 3))
	p := New(b)
	e.Register(p)
	return e, p
}

func TestAssentProbShape(t *testing.T) {
	p := &Protocol{T1: 0.3, T2: 0.8, Shape: 3}
	// Zero at/above T2.
	if p.assentProb(0.8) != 0 || p.assentProb(0.95) != 0 {
		t.Fatal("assent must be zero at/above T2")
	}
	// Small bootstrap probability at zero utilisation.
	if got := p.assentProb(0); got <= 0 || got > 0.1 {
		t.Fatalf("assent at zero = %g", got)
	}
	// Peak at T2*p/(p+1) = 0.6; normalised to 1.
	if got := p.assentProb(0.6); got < 0.999 || got > 1.001 {
		t.Fatalf("assent at peak = %g, want ~1", got)
	}
	// Monotone rising toward the peak, in [0,1] everywhere.
	prev := 0.0
	for x := 0.05; x < 0.6; x += 0.05 {
		v := p.assentProb(x)
		if v < 0 || v > 1 {
			t.Fatalf("assent(%g) = %g out of range", x, v)
		}
		if v < prev {
			t.Fatalf("assent not monotone before peak at %g", x)
		}
		prev = v
	}
	// Falling after the peak.
	if p.assentProb(0.75) >= p.assentProb(0.6) {
		t.Fatal("assent should fall after the peak")
	}
}

func TestConsolidatesUnderloaded(t *testing.T) {
	// Every PM far below T1: evacuations must shrink the active set.
	cl := constCluster(t, 12, 12, 0.2, 0.15)
	e, _ := install(t, cl, 1)
	e.RunRounds(60)
	if cl.ActivePMs() >= 12 {
		t.Fatalf("no consolidation: %d active", cl.ActivePMs())
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDestinationsStayBelowT2(t *testing.T) {
	cl := constCluster(t, 10, 20, 0.5, 0.3)
	e, _ := install(t, cl, 2)
	e.RunRounds(40)
	for _, pm := range cl.PMs {
		if !pm.On() {
			continue
		}
		u := cl.CurUtil(pm)
		if u[dc.CPU] > 0.8+1e-9 || u[dc.Mem] > 0.8+1e-9 {
			t.Fatalf("PM %d beyond T2: %v", pm.ID, u)
		}
	}
}

func TestShedsHighLoadEventually(t *testing.T) {
	cl := constCluster(t, 4, 8, 1.0, 0.2)
	for _, vm := range cl.VMs {
		if vm.Host() != 0 {
			if err := cl.Migrate(vm, cl.PMs[0]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !cl.Overloaded(cl.PMs[0]) {
		t.Fatal("setup: PM 0 should be overloaded")
	}
	e, _ := install(t, cl, 3)
	e.RunRounds(40) // probabilistic shedding needs several rounds
	if cl.Overloaded(cl.PMs[0]) {
		t.Fatalf("PM 0 still overloaded: %v", cl.CurUtil(cl.PMs[0]))
	}
}

func TestNoActionInComfortZone(t *testing.T) {
	// Utilisation between T1 and T2 on every PM: EcoCloud does nothing.
	// 4 VMs/PM at 0.6 CPU -> util 4*0.6*500/2660 = 0.451.
	cl := constCluster(t, 3, 12, 0.6, 0.3)
	e, _ := install(t, cl, 4)
	e.RunRounds(20)
	if cl.Migrations != 0 {
		t.Fatalf("%d migrations inside the comfort zone", cl.Migrations)
	}
}
