// Package ecocloud implements the EcoCloud baseline (Mastroianni, Meo,
// Papuzzo, "Probabilistic consolidation of virtual machines in
// self-organizing cloud data centers", IEEE TCC 2013): a gradual,
// probabilistic consolidation scheme with static lower/upper thresholds
// (the paper configures T1 = 0.3, T2 = 0.8). PMs below T1 probabilistically
// attempt to evacuate; PMs above T2 shed load; candidate destinations assent
// to a migration through a Bernoulli trial whose success probability peaks
// just below T2, so nearly-full servers fill first.
package ecocloud

import (
	"math"
	"sort"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/gossip"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
)

// ProtocolName registers the EcoCloud baseline.
const ProtocolName = "ecocloud"

// Protocol is the EcoCloud baseline.
type Protocol struct {
	B *policy.Binding
	// T1 and T2 are the lower and upper utilisation thresholds.
	T1, T2 float64
	// Shape is the exponent p of the assent function f(x) ∝ x^p·(T2−x);
	// larger values concentrate acceptance near T2. EcoCloud uses p = 3.
	Shape float64
	// Candidates is the number of peers polled per migration attempt
	// (EcoCloud broadcasts; the gossip port polls a view sample).
	Candidates int
	// Select overrides the peer selector (defaults to Cyclon sampling).
	Select gossip.PeerSelector

	rng sim.BoundRNG
}

// New returns the baseline with the paper's configuration (T1=0.3, T2=0.8).
func New(b *policy.Binding) *Protocol {
	return &Protocol{B: b, T1: 0.3, T2: 0.8, Shape: 3, Candidates: 8}
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return ProtocolName }

// Setup implements sim.Protocol.
func (p *Protocol) Setup(e *sim.Engine, n *sim.Node) any {
	return struct{}{}
}

// assentProb is the normalised acceptance probability for a destination at
// CPU utilisation x: zero outside (0, T2), maximal at x = T2·p/(p+1).
func (p *Protocol) assentProb(x float64) float64 {
	if x <= 0 || x >= p.T2 {
		// A completely empty candidate may still assent with a small
		// probability so evacuations can bootstrap onto already-active
		// but idle machines; EcoCloud handles this via its coordinator.
		if x <= 0 {
			return 0.05
		}
		return 0
	}
	xm := p.T2 * p.Shape / (p.Shape + 1)
	fmax := math.Pow(xm, p.Shape) * (p.T2 - xm)
	return math.Pow(x, p.Shape) * (p.T2 - x) / fmax
}

// Round implements one EcoCloud round for PM n: shed when above T2,
// probabilistically evacuate when below T1.
func (p *Protocol) Round(e *sim.Engine, n *sim.Node, round int) {
	rng := p.rng.For(e, 0xec0c1d)
	c := p.B.C
	pm := p.B.PM(n)
	if !pm.On() || pm.NumVMs() == 0 {
		return
	}
	u := c.CurUtil(pm)[dc.CPU]
	switch {
	case u > p.T2:
		// Migration out of a high-load state is itself probabilistic in
		// EcoCloud (a Bernoulli trial whose success probability grows with
		// the excess), which avoids shedding cascades but lets overload
		// persist for a while — the behaviour the paper's Figure 6 shows.
		if rng.Bernoulli(math.Min(1, (u-p.T2)/(1-p.T2))) {
			p.shed(e, n, pm)
		}
	case u < p.T1:
		// Migration probability grows as the server empties:
		// 1 − u/T1.
		if rng.Bernoulli(1 - u/p.T1) {
			p.evacuate(e, n, pm)
		}
	}
}

// shed migrates the smallest VMs away until utilisation drops to T2.
func (p *Protocol) shed(e *sim.Engine, n *sim.Node, pm *dc.PM) {
	c := p.B.C
	for c.CurUtil(pm)[dc.CPU] > p.T2 {
		vms := p.B.VMsOf(pm)
		if len(vms) == 0 {
			return
		}
		// Smallest memory first: cheapest migrations to exit overload.
		sort.Slice(vms, func(i, j int) bool {
			return vms[i].CurAbs()[dc.Mem] < vms[j].CurAbs()[dc.Mem]
		})
		moved := false
		for _, vm := range vms {
			if dst := p.findAssenting(e, n, vm); dst != nil {
				if c.Migrate(vm, dst) == nil {
					moved = true
					break
				}
			}
		}
		if !moved {
			return
		}
	}
}

// evacuate tries to move every VM off pm; only if all fit elsewhere does the
// PM switch off (EcoCloud aborts partial evacuations at the coordinator; the
// gossip port moves VMs greedily and keeps the PM on when stuck, which only
// makes this baseline *less* aggressive).
func (p *Protocol) evacuate(e *sim.Engine, n *sim.Node, pm *dc.PM) {
	c := p.B.C
	for _, vm := range p.B.VMsOf(pm) {
		dst := p.findAssenting(e, n, vm)
		if dst == nil {
			return
		}
		if c.Migrate(vm, dst) != nil {
			return
		}
	}
	_ = p.B.TryPowerOffIfEmpty(pm.ID)
}

// findAssenting polls up to Candidates peers from the Cyclon view; each
// assents via the Bernoulli trial and must fit the VM's current demand while
// staying at or below T2 on both resources.
func (p *Protocol) findAssenting(e *sim.Engine, n *sim.Node, vm *dc.VM) *dc.PM {
	rng := p.rng.For(e, 0xec0c1d)
	c := p.B.C
	sel := p.Select
	if sel == nil {
		sel = gossip.CyclonSelector
	}
	for i := 0; i < p.Candidates; i++ {
		peer := sel(e, n, rng)
		if peer < 0 {
			return nil
		}
		pm := c.PMs[peer]
		if pm.ID == vm.Host() || !pm.On() {
			continue
		}
		u := c.CurUtil(pm)
		after := u.Add(vm.CurAbs().Div(pm.Spec.Capacity))
		if after[dc.CPU] > p.T2 || after[dc.Mem] > p.T2 {
			continue
		}
		if rng.Bernoulli(p.assentProb(u[dc.CPU])) {
			return pm
		}
	}
	return nil
}
