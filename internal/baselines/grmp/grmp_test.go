package grmp

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/trace"
)

func constCluster(t *testing.T, pms, vms int, cpu, mem float64) *dc.Cluster {
	t.Helper()
	var b bytes.Buffer
	b.WriteString("vm,round,cpu,mem\n")
	for vm := 0; vm < vms; vm++ {
		for r := 0; r < 5; r++ {
			fmt.Fprintf(&b, "%d,%d,%g,%g\n", vm, r, cpu, mem)
		}
	}
	set, err := trace.LoadCSV(&b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dc.New(dc.Config{PMs: pms, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	c.PlaceRandom(rng.Intn)
	return c
}

func install(t *testing.T, cl *dc.Cluster, seed uint64) *sim.Engine {
	t.Helper()
	e := sim.NewEngine(len(cl.PMs), seed)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	e.Register(cyclon.New(6, 3))
	e.Register(New(b))
	return e
}

func TestConsolidates(t *testing.T) {
	cl := constCluster(t, 12, 12, 0.2, 0.2)
	e := install(t, cl, 1)
	e.RunRounds(30)
	if cl.ActivePMs() >= 12 {
		t.Fatalf("no consolidation: %d active", cl.ActivePMs())
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRespectsStaticThreshold(t *testing.T) {
	// With constant demand, every acceptance kept the destination at or
	// below 0.8 on both resources — so the final state must too.
	cl := constCluster(t, 10, 20, 0.5, 0.3)
	e := install(t, cl, 2)
	e.RunRounds(30)
	for _, pm := range cl.PMs {
		if !pm.On() {
			continue
		}
		u := cl.CurUtil(pm)
		if u[dc.CPU] > 0.8+1e-9 || u[dc.Mem] > 0.8+1e-9 {
			t.Fatalf("PM %d packed beyond threshold: %v", pm.ID, u)
		}
	}
}

func TestShedsOverload(t *testing.T) {
	cl := constCluster(t, 3, 6, 1.0, 0.2)
	// Overload PM 0 with all six VMs (3000 > 2660 MIPS).
	for _, vm := range cl.VMs {
		if vm.Host() != 0 {
			if err := cl.Migrate(vm, cl.PMs[0]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !cl.Overloaded(cl.PMs[0]) {
		t.Fatal("setup: PM 0 should be overloaded")
	}
	e := install(t, cl, 3)
	e.RunRounds(10)
	if cl.Overloaded(cl.PMs[0]) {
		t.Fatalf("PM 0 still overloaded: %v", cl.CurUtil(cl.PMs[0]))
	}
}

func TestAggressiveSwitchOff(t *testing.T) {
	// GRMP's defining trait: it packs hard. 24 VMs at 0.3 CPU and 0.2
	// memory: 0.3*500=150 MIPS each; threshold 0.8 allows 2128 MIPS -> 14
	// VMs per PM by CPU, memory allows 0.8*4096/123 = 26. 2 PMs suffice.
	cl := constCluster(t, 12, 24, 0.3, 0.2)
	e := install(t, cl, 4)
	e.RunRounds(40)
	if got := cl.ActivePMs(); got > 3 {
		t.Fatalf("GRMP left %d PMs active, want <= 3", got)
	}
}
