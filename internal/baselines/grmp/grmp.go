// Package grmp implements the GRMP-style baseline of the evaluation: the
// aggressive, fully distributed gossip consolidation protocol of Wuhib,
// Yanggratoke and Stadler ("Allocating compute and network resources under
// management objectives in large-scale clouds", JNSM 2015), as configured in
// the paper's comparison — pairwise gossip exchanges in which the less
// utilised endpoint empties itself into the other up to a static upper
// threshold of 0.8, treating consolidation as multi-dimensional bin packing
// of the *current* demand without any model of future load.
package grmp

import (
	"sort"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/gossip"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
)

// ProtocolName registers the GRMP baseline.
const ProtocolName = "grmp"

// Protocol is the GRMP baseline consolidation protocol.
type Protocol struct {
	B *policy.Binding
	// Threshold is the static upper utilisation bound for accepting VMs
	// (the paper configures 0.8).
	Threshold float64
	// Select overrides the peer selector (defaults to Cyclon sampling).
	Select gossip.PeerSelector

	rng sim.BoundRNG
}

// New returns the baseline with the paper's static 0.8 threshold.
func New(b *policy.Binding) *Protocol {
	return &Protocol{B: b, Threshold: 0.8}
}

// Name implements sim.Protocol.
func (g *Protocol) Name() string { return ProtocolName }

// Setup implements sim.Protocol.
func (g *Protocol) Setup(e *sim.Engine, n *sim.Node) any {
	return struct{}{}
}

// Round implements one gossip exchange: the endpoints compare current
// utilisation and the lower one aggressively migrates VMs into the other,
// stopping only at the 0.8 threshold; an overloaded endpoint sheds first.
func (g *Protocol) Round(e *sim.Engine, n *sim.Node, round int) {
	sel := g.Select
	if sel == nil {
		sel = gossip.CyclonSelector
	}
	peer := sel(e, n, g.rng.For(e, 0x62e3))
	if peer < 0 {
		return
	}
	pmP := g.B.PM(n)
	pmQ := g.B.C.PMs[peer]
	g.updateState(pmP, pmQ)
	g.updateState(pmQ, pmP)
}

func (g *Protocol) updateState(s, o *dc.PM) {
	c := g.B.C
	if !s.On() || !o.On() {
		return
	}
	if c.Overloaded(s) {
		for c.Overloaded(s) {
			if !g.migrateOne(s, o) {
				return
			}
		}
		return
	}
	su, ou := c.CurUtil(s).Avg(), c.CurUtil(o).Avg()
	if su > ou || (su == ou && s.ID > o.ID) || c.Overloaded(o) {
		return
	}
	for s.NumVMs() > 0 {
		if !g.migrateOne(s, o) {
			return
		}
	}
	_ = g.B.TryPowerOffIfEmpty(s.ID)
}

// migrateOne moves the largest movable VM from s to o provided o stays at or
// below the static threshold on every resource under *current* demand — the
// exact check that makes GRMP blind to demand growth.
func (g *Protocol) migrateOne(s, o *dc.PM) bool {
	c := g.B.C
	vms := g.B.VMsOf(s)
	if len(vms) == 0 {
		return false
	}
	// Largest current CPU demand first: pack big items early, as bin
	// packing heuristics do.
	sort.Slice(vms, func(i, j int) bool {
		return vms[i].CurAbs()[dc.CPU] > vms[j].CurAbs()[dc.CPU]
	})
	oUtil := c.CurUtil(o)
	for _, vm := range vms {
		after := oUtil.Add(vm.CurAbs().Div(o.Spec.Capacity))
		if after[dc.CPU] <= g.Threshold && after[dc.Mem] <= g.Threshold {
			return c.Migrate(vm, o) == nil
		}
	}
	return false
}
