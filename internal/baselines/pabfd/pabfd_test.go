package pabfd

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/trace"
)

func constCluster(t *testing.T, pms, vms int, cpu, mem float64) *dc.Cluster {
	t.Helper()
	var b bytes.Buffer
	b.WriteString("vm,round,cpu,mem\n")
	for vm := 0; vm < vms; vm++ {
		for r := 0; r < 5; r++ {
			fmt.Fprintf(&b, "%d,%d,%g,%g\n", vm, r, cpu, mem)
		}
	}
	set, err := trace.LoadCSV(&b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dc.New(dc.Config{PMs: pms, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	c.PlaceRandom(rng.Intn)
	return c
}

func install(t *testing.T, cl *dc.Cluster, seed uint64) (*sim.Engine, *Controller) {
	t.Helper()
	e := sim.NewEngine(len(cl.PMs), seed)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := Install(e, b)
	ctrl.Period = 1 // deterministic tests step every round
	return e, ctrl
}

func TestMedianAndMAD(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("median odd = %g", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("median even = %g", got)
	}
	// MAD of {1,2,3,4,5}: median 3, deviations {2,1,0,1,2}, MAD = 1.
	if got := mad([]float64{1, 2, 3, 4, 5}); got != 1 {
		t.Fatalf("mad = %g", got)
	}
	// MAD is robust: one huge outlier barely moves it.
	if got := mad([]float64{1, 2, 3, 4, 1000}); got > 2 {
		t.Fatalf("mad with outlier = %g", got)
	}
}

func TestThresholdBounds(t *testing.T) {
	c := &Controller{Safety: 2.5, FallbackThreshold: 0.8, history: make([][]float64, 1)}
	// Short history: fallback.
	c.history[0] = []float64{0.5, 0.5}
	if got := c.threshold(0); got != 0.8 {
		t.Fatalf("short-history threshold = %g", got)
	}
	// Stable history: MAD ~ 0, threshold ~ 1 (the robust-statistic trap
	// that lets PABFD pack to saturation).
	c.history[0] = make([]float64, 20)
	for i := range c.history[0] {
		c.history[0][i] = 0.5
	}
	if got := c.threshold(0); math.Abs(got-1) > 1e-9 {
		t.Fatalf("stable-history threshold = %g, want 1", got)
	}
	// Wild history: floored at 0.4.
	for i := range c.history[0] {
		c.history[0][i] = float64(i%2) * 0.9
	}
	if got := c.threshold(0); got < 0.4-1e-9 {
		t.Fatalf("threshold below floor: %g", got)
	}
}

func TestConsolidatesUnderload(t *testing.T) {
	cl := constCluster(t, 12, 12, 0.2, 0.15)
	e, _ := install(t, cl, 1)
	e.RunRounds(10)
	if cl.ActivePMs() >= 12 {
		t.Fatalf("no consolidation: %d active", cl.ActivePMs())
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMitigatesOverload(t *testing.T) {
	cl := constCluster(t, 3, 6, 1.0, 0.2)
	for _, vm := range cl.VMs {
		if vm.Host() != 0 {
			if err := cl.Migrate(vm, cl.PMs[0]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !cl.Overloaded(cl.PMs[0]) {
		t.Fatal("setup: PM 0 should be overloaded")
	}
	e, _ := install(t, cl, 2)
	e.RunRounds(3)
	if cl.Overloaded(cl.PMs[0]) {
		t.Fatalf("controller failed to mitigate: %v", cl.CurUtil(cl.PMs[0]))
	}
}

func TestPowersOffEmptyHosts(t *testing.T) {
	cl := constCluster(t, 6, 4, 0.3, 0.2)
	e, _ := install(t, cl, 3)
	e.RunRounds(3)
	for _, pm := range cl.PMs {
		if pm.On() && pm.NumVMs() == 0 {
			t.Fatalf("PM %d empty but still on", pm.ID)
		}
	}
}

func TestReactivatesWhenNeeded(t *testing.T) {
	// Controller must power a host back on when no active host can absorb
	// an overload-relief migration. Build: 2 PMs, both packed to the brim,
	// then overload one; a third (empty, off) PM is the only escape.
	cl := constCluster(t, 3, 11, 1.0, 0.2)
	// PM2 empty and off; PMs 0,1 hold the VMs: 6 on PM0 (overloaded), 5 on
	// PM1 (2500/2660, no headroom for a 500-MIPS VM).
	for i, vm := range cl.VMs {
		dst := cl.PMs[i%2]
		if vm.Host() != dst.ID {
			if err := cl.Migrate(vm, dst); err != nil {
				t.Fatal(err)
			}
		}
	}
	e := sim.NewEngine(3, 4)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	// Empty PM 2 and power it off before the controller starts.
	if cl.PMs[2].NumVMs() != 0 {
		t.Fatal("setup: PM 2 should be empty")
	}
	if err := b.PowerOff(2); err != nil {
		t.Fatal(err)
	}
	ctrl := Install(e, b)
	ctrl.Period = 1
	e.RunRounds(3)
	if cl.Overloaded(cl.PMs[0]) && !cl.PMs[2].On() {
		t.Fatal("controller neither mitigated overload nor reactivated a host")
	}
}

func TestPeriodSkipsRounds(t *testing.T) {
	cl := constCluster(t, 6, 4, 0.2, 0.15)
	e := sim.NewEngine(6, 5)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := Install(e, b)
	ctrl.Period = 100 // only round 0 triggers
	steps := 0
	origHist := ctrl.history
	_ = origHist
	e.BeforeRound(func(e *sim.Engine, round int) {
		// Count controller activity indirectly via history growth.
		if len(ctrl.history[0]) > steps {
			steps = len(ctrl.history[0])
		}
	})
	e.RunRounds(5)
	if steps > 1 {
		t.Fatalf("controller ran %d times, want 1", steps)
	}
}
