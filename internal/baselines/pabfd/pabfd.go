// Package pabfd implements the centralized baseline of the evaluation:
// Beloglazov & Buyya's PABFD ("Optimal online deterministic algorithms and
// adaptive heuristics for energy and performance efficient dynamic
// consolidation of virtual machines in cloud data centers", CCPE 2012). A
// central controller monitors every host, derives a per-round adaptive upper
// CPU threshold from the Median Absolute Deviation (MAD) of recent host
// utilisation history, sheds VMs from hosts above the threshold (Minimum
// Migration Time selection), evacuates the least-utilised hosts, and places
// migrating VMs with Power-Aware Best Fit Decreasing.
package pabfd

import (
	"sort"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
)

// Controller is the centralized PABFD manager. It is not a gossip protocol:
// Install hooks it to run once per round with global knowledge.
type Controller struct {
	B *policy.Binding
	// Safety is the MAD safety parameter s in T_u = 1 − s·MAD
	// (Beloglazov's evaluation uses s = 2.5).
	Safety float64
	// HistoryLen bounds the per-host utilisation history window.
	HistoryLen int
	// FallbackThreshold is used until a host has enough history for a MAD
	// estimate.
	FallbackThreshold float64
	// Period is the controller's monitoring/optimisation period in rounds.
	// Beloglazov's controller runs every 5 minutes while the simulation
	// rounds are 2 minutes, so the default is 3 rounds: between controller
	// passes, demand keeps moving and overloads persist unmitigated — the
	// structural disadvantage of centralized DVMC the paper highlights.
	Period int

	history [][]float64
}

// Install wires a PABFD controller into engine e; it executes at the start
// of every round, after workload demand is refreshed.
func Install(e *sim.Engine, b *policy.Binding) *Controller {
	c := &Controller{
		B:                 b,
		Safety:            2.5,
		HistoryLen:        30,
		FallbackThreshold: 0.8,
		Period:            3,
	}
	c.history = make([][]float64, len(b.C.PMs))
	e.BeforeRound(func(e *sim.Engine, round int) {
		if c.Period > 1 && round%c.Period != 0 {
			return
		}
		c.Step(round)
	})
	return c
}

// Step runs one full controller pass: record history, compute thresholds,
// mitigate overloads, then consolidate underloaded hosts.
func (c *Controller) Step(round int) {
	cl := c.B.C
	// 1. Record utilisation history for active hosts.
	for _, pm := range cl.PMs {
		if pm.On() {
			c.history[pm.ID] = append(c.history[pm.ID], cl.CurUtil(pm)[dc.CPU])
			if len(c.history[pm.ID]) > c.HistoryLen {
				c.history[pm.ID] = c.history[pm.ID][1:]
			}
		}
	}
	th := make([]float64, len(cl.PMs))
	for _, pm := range cl.PMs {
		th[pm.ID] = c.threshold(pm.ID)
	}

	// 2. Overload mitigation: collect VMs from hosts above their threshold
	// using Minimum Migration Time (smallest memory first).
	var pending []*dc.VM
	overloaded := make(map[int]bool)
	for _, pm := range cl.PMs {
		if !pm.On() {
			continue
		}
		if cl.CurUtil(pm)[dc.CPU] <= th[pm.ID] {
			continue
		}
		overloaded[pm.ID] = true
		vms := c.B.VMsOf(pm)
		sort.Slice(vms, func(i, j int) bool {
			return vms[i].CurAbs()[dc.Mem] < vms[j].CurAbs()[dc.Mem]
		})
		for _, vm := range vms {
			if cl.CurUtil(pm)[dc.CPU] <= th[pm.ID] {
				break
			}
			// Detach decision is made here; actual migration happens at
			// placement. Model it as migrate-on-place: mark pending.
			pending = append(pending, vm)
			// Simulate removal for the threshold check by testing the
			// utilisation without this VM.
			if c.utilWithout(pm, pending) <= th[pm.ID] {
				break
			}
		}
	}
	c.place(pending, th, overloaded)

	// 3. Power off hosts that are already empty.
	for _, pm := range cl.PMs {
		if pm.On() && pm.NumVMs() == 0 {
			_ = c.B.PowerOff(pm.ID)
		}
	}

	// 4. Underload consolidation: repeatedly try to fully evacuate the
	// least-utilised active host. The loop is bounded by the host count:
	// each successful pass powers one host off.
	for iter := 0; iter < len(cl.PMs); iter++ {
		src := c.leastUtilisedEvacuable(th, overloaded)
		if src == nil {
			break
		}
		vms := c.B.VMsOf(src)
		plan, ok := c.planPlacement(vms, th, map[int]bool{src.ID: true})
		if !ok {
			break
		}
		// Execute the plan in the stable VMsOf order: plan is keyed by
		// pointer, and ranging over it directly would replay the migrations
		// in an order that varies run to run.
		for _, vm := range vms {
			_ = cl.Migrate(vm, plan[vm])
		}
		_ = c.B.TryPowerOffIfEmpty(src.ID)
	}
}

// threshold returns host id's adaptive upper threshold T_u = 1 − s·MAD,
// falling back to the static default while history is short. The result is
// floored so pathological MADs cannot force the threshold to zero.
func (c *Controller) threshold(id int) float64 {
	h := c.history[id]
	if len(h) < 10 {
		return c.FallbackThreshold
	}
	t := 1 - c.Safety*mad(h)
	if t < 0.4 {
		t = 0.4
	}
	if t > 1 {
		t = 1
	}
	return t
}

// mad returns the Median Absolute Deviation of xs.
func mad(xs []float64) float64 {
	m := median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		d := x - m
		if d < 0 {
			d = -d
		}
		dev[i] = d
	}
	return median(dev)
}

func median(xs []float64) float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// utilWithout returns pm's CPU utilisation excluding the pending VMs still
// attached to it.
func (c *Controller) utilWithout(pm *dc.PM, pending []*dc.VM) float64 {
	u := c.B.C.CurUtil(pm)[dc.CPU]
	for _, vm := range pending {
		if vm.Host() == pm.ID {
			u -= vm.CurAbs()[dc.CPU] / pm.Spec.Capacity[dc.CPU]
		}
	}
	return u
}

// place runs Power-Aware Best Fit Decreasing over the pending VMs: VMs in
// decreasing current CPU demand, each to the active host with the least
// power increase (ties: highest resulting utilisation) that keeps CPU at or
// below its threshold and memory within capacity. When no active host fits,
// an off host is powered on — the centralized controller, unlike the
// distributed protocols, can reactivate machines.
func (c *Controller) place(pending []*dc.VM, th []float64, exclude map[int]bool) {
	cl := c.B.C
	sort.Slice(pending, func(i, j int) bool {
		return pending[i].CurAbs()[dc.CPU] > pending[j].CurAbs()[dc.CPU]
	})
	for _, vm := range pending {
		dst := c.bestFit(vm, th, exclude)
		if dst == nil {
			dst = c.powerOnOne()
		}
		if dst == nil || dst.ID == vm.Host() {
			continue
		}
		_ = cl.Migrate(vm, dst)
	}
}

// planPlacement computes destinations for all vms without performing the
// migrations, so full-evacuation attempts are atomic. It accounts for the
// capacity consumed by earlier VMs in the same plan.
func (c *Controller) planPlacement(vms []*dc.VM, th []float64, exclude map[int]bool) (map[*dc.VM]*dc.PM, bool) {
	cl := c.B.C
	plan := make(map[*dc.VM]*dc.PM, len(vms))
	extra := make(map[int]dc.Vec)
	sorted := make([]*dc.VM, len(vms))
	copy(sorted, vms)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].CurAbs()[dc.CPU] > sorted[j].CurAbs()[dc.CPU]
	})
	for _, vm := range sorted {
		var best *dc.PM
		var bestU float64
		for _, pm := range cl.PMs {
			if !pm.On() || exclude[pm.ID] || pm.ID == vm.Host() {
				continue
			}
			u := cl.CurUtil(pm).Add(extra[pm.ID].Div(pm.Spec.Capacity))
			after := u.Add(vm.CurAbs().Div(pm.Spec.Capacity))
			if after[dc.CPU] > th[pm.ID] || after[dc.Mem] > 1 {
				continue
			}
			if best == nil || after[dc.CPU] > bestU {
				best, bestU = pm, after[dc.CPU]
			}
		}
		if best == nil {
			return nil, false
		}
		plan[vm] = best
		extra[best.ID] = extra[best.ID].Add(vm.CurAbs())
	}
	return plan, true
}

// bestFit returns the powered host that can take vm with the least power
// increase, preferring the fullest feasible host.
func (c *Controller) bestFit(vm *dc.VM, th []float64, exclude map[int]bool) *dc.PM {
	cl := c.B.C
	var best *dc.PM
	var bestPower, bestU float64
	for _, pm := range cl.PMs {
		if !pm.On() || exclude[pm.ID] || pm.ID == vm.Host() {
			continue
		}
		u := cl.CurUtil(pm)
		after := u.Add(vm.CurAbs().Div(pm.Spec.Capacity))
		if after[dc.CPU] > th[pm.ID] || after[dc.Mem] > 1 {
			continue
		}
		dPower := (pm.Spec.PowerMaxW - pm.Spec.PowerIdleW) * (after[dc.CPU] - u[dc.CPU])
		if best == nil || dPower < bestPower || (dPower == bestPower && after[dc.CPU] > bestU) {
			best, bestPower, bestU = pm, dPower, after[dc.CPU]
		}
	}
	return best
}

// powerOnOne reactivates the lowest-numbered off host, or returns nil when
// every host is already on.
func (c *Controller) powerOnOne() *dc.PM {
	for _, pm := range c.B.C.PMs {
		if !pm.On() {
			c.B.PowerOn(pm.ID)
			return pm
		}
	}
	return nil
}

// leastUtilisedEvacuable returns the active host with the lowest CPU
// utilisation that hosts at least one VM and was not overloaded this round,
// or nil when none qualifies.
func (c *Controller) leastUtilisedEvacuable(th []float64, overloaded map[int]bool) *dc.PM {
	cl := c.B.C
	var best *dc.PM
	var bestU float64
	for _, pm := range cl.PMs {
		if !pm.On() || overloaded[pm.ID] || pm.NumVMs() == 0 {
			continue
		}
		u := cl.CurUtil(pm)[dc.CPU]
		if u > th[pm.ID] {
			continue
		}
		if best == nil || u < bestU {
			best, bestU = pm, u
		}
	}
	return best
}
