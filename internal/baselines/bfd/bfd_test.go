package bfd

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/trace"
)

func clusterWithDemands(t *testing.T, pms int, cpus []float64) *dc.Cluster {
	t.Helper()
	var b bytes.Buffer
	b.WriteString("vm,round,cpu,mem\n")
	for vm, cpu := range cpus {
		for r := 0; r < 2; r++ {
			fmt.Fprintf(&b, "%d,%d,%g,0.1\n", vm, r, cpu)
		}
	}
	set, err := trace.LoadCSV(&b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dc.New(dc.Config{PMs: pms, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	c.PlaceRandom(rng.Intn)
	return c
}

func TestMinActivePMsHandComputed(t *testing.T) {
	// 4 VMs at 100% CPU (500 MIPS each): 5 fit per 2660-MIPS PM, so one
	// bin suffices for 4.
	c := clusterWithDemands(t, 10, []float64{1, 1, 1, 1})
	if got := MinActivePMs(c, 0); got != 1 {
		t.Fatalf("packing = %d, want 1", got)
	}
	// 6 VMs at 100%: 3000 MIPS needs 2 bins.
	c = clusterWithDemands(t, 10, []float64{1, 1, 1, 1, 1, 1})
	if got := MinActivePMs(c, 0); got != 2 {
		t.Fatalf("packing = %d, want 2", got)
	}
}

func TestMinActivePMsLowerBound(t *testing.T) {
	// Bin count can never be below ceil(total demand / capacity).
	demands := []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.9, 0.8, 0.2}
	c := clusterWithDemands(t, 10, demands)
	var total float64
	for _, d := range demands {
		total += d * 500
	}
	lower := int(total/2660) + 1
	got := MinActivePMs(c, 0)
	if got < lower {
		t.Fatalf("packing %d below LP bound %d", got, lower)
	}
	if got > len(demands) {
		t.Fatalf("packing %d above trivial bound", got)
	}
}

func TestMinActivePMsHeadroom(t *testing.T) {
	// With 50% headroom each bin holds half as much: count must not
	// decrease, and for this workload strictly increases.
	c := clusterWithDemands(t, 10, []float64{1, 1, 1, 1, 1, 1, 1, 1})
	loose := MinActivePMs(c, 0)
	tight := MinActivePMs(c, 0.5)
	if tight < loose {
		t.Fatalf("headroom reduced bins: %d < %d", tight, loose)
	}
	if tight == loose {
		t.Fatalf("50%% headroom should need more bins (%d)", tight)
	}
}

func TestMinActivePMsEmpty(t *testing.T) {
	set, err := trace.Generate(trace.DefaultGenConfig(1, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	c, err := dc.New(dc.Config{PMs: 2, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	// One VM, zero headroom: exactly 1 bin.
	rng := sim.NewRNG(1)
	c.PlaceRandom(rng.Intn)
	if got := MinActivePMs(c, 0); got != 1 {
		t.Fatalf("packing = %d, want 1", got)
	}
}

func TestMinActivePMsMemoryBound(t *testing.T) {
	// VMs whose memory dominates: 613 MB each at 100%, 4096/613 = 6 per
	// bin; 13 VMs need 3 bins even though CPU is tiny.
	var b bytes.Buffer
	b.WriteString("vm,round,cpu,mem\n")
	for vm := 0; vm < 13; vm++ {
		fmt.Fprintf(&b, "%d,0,0.01,1.0\n", vm)
		fmt.Fprintf(&b, "%d,1,0.01,1.0\n", vm)
	}
	set, err := trace.LoadCSV(&b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dc.New(dc.Config{PMs: 13, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	c.PlaceRandom(rng.Intn)
	if got := MinActivePMs(c, 0); got != 3 {
		t.Fatalf("memory-bound packing = %d, want 3", got)
	}
}
