// Package bfd provides the Best-Fit-Decreasing oracle packing used as the
// SLA-violation-free baseline in Figure 6: given the VMs' demand at one
// round, it computes how few PMs a (centralized, omniscient, migration-free)
// packer would need without saturating any resource.
package bfd

import (
	"sort"

	"github.com/glap-sim/glap/internal/dc"
)

// MinActivePMs packs every VM's current demand into bins of the cluster's PM
// capacity with Best Fit Decreasing (decreasing CPU demand; best fit = the
// feasible bin with the least remaining CPU) and returns the bin count. A
// headroom of zero packs to full capacity; the paper's baseline packs
// "without producing any SLA violation", i.e. strictly below saturation,
// which a tiny positive headroom expresses.
func MinActivePMs(c *dc.Cluster, headroom float64) int {
	if len(c.VMs) == 0 {
		return 0
	}
	// The oracle packs into bins of the first PM's capacity; on
	// heterogeneous clusters it is therefore a G5-only packing bound, which
	// keeps the baseline conservative (weaker machines only add capacity).
	capVec := c.PMs[0].Spec.Capacity
	limit := dc.Vec{}
	for r := 0; r < dc.NumResources; r++ {
		limit[r] = capVec[r] * (1 - headroom)
	}

	demands := make([]dc.Vec, 0, len(c.VMs))
	for _, vm := range c.VMs {
		demands = append(demands, vm.CurAbs())
	}
	sort.Slice(demands, func(i, j int) bool {
		return demands[i][dc.CPU] > demands[j][dc.CPU]
	})

	var bins []dc.Vec // accumulated load per bin
	for _, d := range demands {
		best := -1
		bestRemaining := 0.0
		for i, load := range bins {
			after := load.Add(d)
			if !after.FitsWithin(limit) {
				continue
			}
			remaining := limit[dc.CPU] - after[dc.CPU]
			if best < 0 || remaining < bestRemaining {
				best, bestRemaining = i, remaining
			}
		}
		if best < 0 {
			bins = append(bins, d)
		} else {
			bins[best] = bins[best].Add(d)
		}
	}
	return len(bins)
}
