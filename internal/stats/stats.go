// Package stats provides the small statistical toolkit used throughout the
// GLAP reproduction: summary statistics, percentiles, cosine similarity
// between Q-tables, histograms, and the normality diagnostics used to check
// Theorem 1 (convergence of gossip-aggregated Q-values to a normal
// distribution).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (division by n), or 0 for
// fewer than one sample.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Summary holds the distribution summary the paper reports for per-round
// metrics: the median plus the 10th and 90th percentiles across repetitions.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P10    float64
	Median float64
	P90    float64
	Max    float64
}

// Summarize computes a Summary over xs. It returns a zero Summary for an
// empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:      len(sorted),
		Mean:   Mean(sorted),
		StdDev: StdDev(sorted),
		Min:    sorted[0],
		P10:    percentileSorted(sorted, 10),
		Median: percentileSorted(sorted, 50),
		P90:    percentileSorted(sorted, 90),
		Max:    sorted[len(sorted)-1],
	}
}

// Cosine returns the cosine similarity of two equal-length vectors. It
// returns 0 when either vector has zero norm and an error when the lengths
// differ.
func Cosine(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: cosine of vectors with different lengths")
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0, nil
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb)), nil
}

// CosineAligned returns the cosine similarity of two aligned equal-length
// dense vectors, 0 when either has zero norm. It is the allocation-free hot
// path of the convergence instrumentation: unlike Cosine it neither checks
// lengths nor returns an error, so callers must pass slices laid out over
// the same index space (it panics on a shorter b, like any slice misuse).
func CosineAligned(a, b []float64) float64 {
	var dot, na, nb float64
	for i, va := range a {
		vb := b[i]
		dot += va * vb
		na += va * va
		nb += vb * vb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// CosineAligned32 is CosineAligned over float32 vectors: the inputs stay
// narrow (half the bytes per scan — the point of the F32 Q-value tier) while
// the dot product and norms accumulate in float64, so the result carries the
// full accumulator precision of the float64 path over the same values.
func CosineAligned32(a, b []float32) float64 {
	var dot, na, nb float64
	for i, x := range a {
		va, vb := float64(x), float64(b[i])
		dot += va * vb
		na += va * va
		nb += vb * vb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// CosineMaps computes cosine similarity between two sparse vectors
// represented as maps. Keys missing from one map contribute a zero
// coordinate. Identical maps yield exactly 1 (up to float rounding).
func CosineMaps[K comparable](a, b map[K]float64) float64 {
	var dot, na, nb float64
	for k, va := range a {
		na += va * va
		if vb, ok := b[k]; ok {
			dot += va * vb
		}
	}
	for _, vb := range b {
		nb += vb * vb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Skewness returns the sample skewness (g1) of xs.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// Kurtosis returns the excess kurtosis (g2) of xs; 0 for a normal
// distribution.
func Kurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4/(m2*m2) - 3
}

// JarqueBera returns the Jarque-Bera normality test statistic for xs. Under
// normality the statistic is asymptotically chi-squared with 2 degrees of
// freedom; values below ~5.99 fail to reject normality at the 5% level.
func JarqueBera(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return 0
	}
	s := Skewness(xs)
	k := Kurtosis(xs)
	return n / 6 * (s*s + k*k/4)
}

// Histogram bins xs into nbins equal-width bins spanning [min, max] and
// returns the bin counts together with the bin edges (nbins+1 values). A
// sample equal to max lands in the last bin.
func Histogram(xs []float64, nbins int) (counts []int, edges []float64, err error) {
	if len(xs) == 0 {
		return nil, nil, ErrEmpty
	}
	if nbins <= 0 {
		return nil, nil, errors.New("stats: nbins must be positive")
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo == hi {
		hi = lo + 1
	}
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	width := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, x := range xs {
		bin := int((x - lo) / width)
		if bin >= nbins {
			bin = nbins - 1
		}
		counts[bin]++
	}
	return counts, edges, nil
}

// Welford is an online mean/variance accumulator (Welford's algorithm). The
// zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples added.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Autocorrelation returns the lag-k autocorrelation of xs, used to validate
// that generated traces carry the strong temporal correlation seen in the
// Google cluster data.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag <= 0 || lag >= n {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i < n-lag; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean of xs (1.96·s/√n). It returns 0 for fewer than two
// samples; for the small replication counts used here it slightly
// understates the t-based interval, which is acceptable for the
// order-of-magnitude comparisons the harness prints.
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(n))
}
