package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestMeanBasics(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %g, want 0", got)
	}
	almost(t, Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12, "mean")
	almost(t, Mean([]float64{-5}), -5, 1e-12, "single")
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	almost(t, Variance(xs), 4, 1e-12, "variance")
	almost(t, StdDev(xs), 2, 1e-12, "stddev")
	if Variance(nil) != 0 {
		t.Fatal("variance of empty should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	p, err := Percentile(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, p, 35, 1e-12, "median")
	p, _ = Percentile(xs, 0)
	almost(t, p, 15, 1e-12, "p0")
	p, _ = Percentile(xs, 100)
	almost(t, p, 50, 1e-12, "p100")
	// Interpolation between ranks.
	p, _ = Percentile([]float64{10, 20}, 25)
	almost(t, p, 12.5, 1e-12, "p25 interp")

	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatalf("expected ErrEmpty, got %v", err)
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Fatal("expected error for negative percentile")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("expected error for percentile > 100")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 4, 2, 3})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bad summary: %+v", s)
	}
	almost(t, s.Median, 3, 1e-12, "median")
	almost(t, s.Mean, 3, 1e-12, "mean")
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary should have N=0")
	}
}

func TestSummaryPercentileOrder(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P10 && s.P10 <= s.Median && s.Median <= s.P90 && s.P90 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCosine(t *testing.T) {
	got, err := Cosine([]float64{1, 0}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, got, 0, 1e-12, "orthogonal")
	got, _ = Cosine([]float64{1, 2, 3}, []float64{2, 4, 6})
	almost(t, got, 1, 1e-12, "parallel")
	got, _ = Cosine([]float64{1, 1}, []float64{-1, -1})
	almost(t, got, -1, 1e-12, "antiparallel")
	got, _ = Cosine([]float64{0, 0}, []float64{1, 2})
	if got != 0 {
		t.Fatalf("zero vector cosine = %g, want 0", got)
	}
	if _, err := Cosine([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestCosineSelfIsOne(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		c, err := Cosine(xs, xs)
		if err != nil {
			return false
		}
		nonZero := false
		for _, x := range xs {
			if x != 0 {
				nonZero = true
			}
		}
		if !nonZero {
			return c == 0
		}
		return math.Abs(c-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCosineMaps(t *testing.T) {
	a := map[string]float64{"x": 1, "y": 2}
	b := map[string]float64{"x": 1, "y": 2}
	almost(t, CosineMaps(a, b), 1, 1e-12, "identical maps")

	c := map[string]float64{"z": 5}
	almost(t, CosineMaps(a, c), 0, 1e-12, "disjoint maps")

	if CosineMaps(map[string]float64{}, a) != 0 {
		t.Fatal("empty map should give 0")
	}
}

func TestCosineMapsRange(t *testing.T) {
	// Restrict coordinates to |v| < 1e150 so the squared norms stay finite;
	// Q-values in this codebase are O(100).
	f := func(a, b map[int8]float64) bool {
		for k, v := range a {
			if math.IsNaN(v) || math.Abs(v) >= 1e150 {
				delete(a, k)
			}
		}
		for k, v := range b {
			if math.IsNaN(v) || math.Abs(v) >= 1e150 {
				delete(b, k)
			}
		}
		c := CosineMaps(a, b)
		return c >= -1.0000001 && c <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSkewnessKurtosis(t *testing.T) {
	// Symmetric data: zero skew.
	sym := []float64{-2, -1, 0, 1, 2}
	almost(t, Skewness(sym), 0, 1e-12, "symmetric skew")
	// Uniform-ish data has negative excess kurtosis.
	if Kurtosis(sym) >= 0 {
		t.Fatalf("expected negative excess kurtosis, got %g", Kurtosis(sym))
	}
	// Right-skewed data.
	if Skewness([]float64{1, 1, 1, 1, 10}) <= 0 {
		t.Fatal("expected positive skew")
	}
	if Skewness([]float64{5}) != 0 || Kurtosis(nil) != 0 {
		t.Fatal("degenerate inputs should yield 0")
	}
}

func TestJarqueBera(t *testing.T) {
	// A near-normal sample should have a small JB statistic; a
	// heavy-tailed one should be large.
	var normal, heavy []float64
	x := 0.5
	for i := 0; i < 2000; i++ {
		// Deterministic quasi-normal via sum of 12 uniforms (Irwin-Hall).
		s := 0.0
		for j := 0; j < 12; j++ {
			x = math.Mod(x*997+0.12345+float64(j)*0.001, 1)
			s += x
		}
		normal = append(normal, s-6)
		if i%100 == 0 {
			heavy = append(heavy, 50)
		} else {
			heavy = append(heavy, 0)
		}
	}
	if jb := JarqueBera(normal); jb > 20 {
		t.Fatalf("JB of quasi-normal too large: %g", jb)
	}
	if jb := JarqueBera(heavy); jb < 100 {
		t.Fatalf("JB of heavy-tailed too small: %g", jb)
	}
	if JarqueBera([]float64{1, 2}) != 0 {
		t.Fatal("JB of tiny sample should be 0")
	}
}

func TestHistogram(t *testing.T) {
	counts, edges, err := Histogram([]float64{0, 0.5, 1, 1.5, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 2 || len(edges) != 3 {
		t.Fatalf("bad shapes: %v %v", counts, edges)
	}
	if counts[0]+counts[1] != 5 {
		t.Fatalf("counts don't sum to n: %v", counts)
	}
	// Max value must land in the last bin, not overflow.
	if counts[1] < 1 {
		t.Fatal("max sample not binned")
	}
	if _, _, err := Histogram(nil, 3); err != ErrEmpty {
		t.Fatal("expected ErrEmpty")
	}
	if _, _, err := Histogram([]float64{1}, 0); err == nil {
		t.Fatal("expected error for nbins=0")
	}
	// Constant data should not divide by zero.
	counts, _, err = Histogram([]float64{3, 3, 3}, 4)
	if err != nil || counts[0] != 3 {
		t.Fatalf("constant data: %v %v", counts, err)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{1.5, -2, 3.25, 0, 7, -1.125}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != int64(len(xs)) {
		t.Fatalf("N = %d", w.N())
	}
	almost(t, w.Mean(), Mean(xs), 1e-12, "welford mean")
	almost(t, w.Variance(), Variance(xs), 1e-12, "welford variance")
	almost(t, w.StdDev(), StdDev(xs), 1e-12, "welford stddev")

	var empty Welford
	if empty.Variance() != 0 {
		t.Fatal("empty Welford variance should be 0")
	}
}

func TestAutocorrelation(t *testing.T) {
	// A constant series has zero denominator -> 0 by convention.
	if Autocorrelation([]float64{1, 1, 1}, 1) != 0 {
		t.Fatal("constant series should give 0")
	}
	// A strongly trending series has high lag-1 autocorrelation.
	var xs []float64
	for i := 0; i < 100; i++ {
		xs = append(xs, float64(i))
	}
	if ac := Autocorrelation(xs, 1); ac < 0.9 {
		t.Fatalf("trend autocorrelation too small: %g", ac)
	}
	// Alternating series: strongly negative.
	var alt []float64
	for i := 0; i < 100; i++ {
		alt = append(alt, float64(i%2))
	}
	if ac := Autocorrelation(alt, 1); ac > -0.9 {
		t.Fatalf("alternating autocorrelation too large: %g", ac)
	}
	// Invalid lags.
	if Autocorrelation(xs, 0) != 0 || Autocorrelation(xs, len(xs)) != 0 {
		t.Fatal("invalid lags should give 0")
	}
}

func TestMedian(t *testing.T) {
	m, err := Median([]float64{9, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, m, 5, 1e-12, "odd median")
	m, _ = Median([]float64{1, 2, 3, 4})
	almost(t, m, 2.5, 1e-12, "even median")
}

func TestCI95(t *testing.T) {
	if CI95([]float64{5}) != 0 {
		t.Fatal("single sample CI should be 0")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9} // stddev 2, n 8
	want := 1.96 * 2 / math.Sqrt(8)
	almost(t, CI95(xs), want, 1e-12, "CI95")
	if CI95([]float64{3, 3, 3}) != 0 {
		t.Fatal("constant sample CI should be 0")
	}
}
