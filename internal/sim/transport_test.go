package sim

import "testing"

type recordingHandler struct {
	name     string
	received []Message
}

func (h *recordingHandler) Name() string { return h.name }
func (h *recordingHandler) Deliver(e *Engine, n *Node, m Message) {
	h.received = append(h.received, m)
}

func TestTransportDelivery(t *testing.T) {
	e := NewEngine(3, 1)
	tr := NewTransport(e, ConstantLatency(5))
	h := &recordingHandler{name: "h"}
	tr.Handle(h)
	tr.Send(0, 1, "h", "hello")
	tr.Send(2, 1, "h", 42)
	e.RunEvents(-1)
	if len(h.received) != 2 {
		t.Fatalf("delivered %d messages", len(h.received))
	}
	if h.received[0].From != 0 || h.received[0].Payload.(string) != "hello" {
		t.Fatalf("first message %+v", h.received[0])
	}
	if tr.Sent != 2 || tr.Delivered != 2 || tr.Dropped != 0 {
		t.Fatalf("counters %d/%d/%d", tr.Sent, tr.Delivered, tr.Dropped)
	}
}

func TestTransportLatencyOrdering(t *testing.T) {
	e := NewEngine(2, 1)
	tr := NewTransport(e, func(from, to int) int64 {
		if from == 0 {
			return 100 // slow path
		}
		return 1 // fast path
	})
	h := &recordingHandler{name: "h"}
	tr.Handle(h)
	tr.Send(0, 1, "h", "slow")
	tr.Send(1, 0, "h", "fast")
	e.RunEvents(-1)
	if h.received[0].Payload.(string) != "fast" || h.received[1].Payload.(string) != "slow" {
		t.Fatalf("latency ordering broken: %+v", h.received)
	}
}

func TestTransportDropsToDeadNodes(t *testing.T) {
	e := NewEngine(2, 1)
	tr := NewTransport(e, ConstantLatency(10))
	h := &recordingHandler{name: "h"}
	tr.Handle(h)
	tr.Send(0, 1, "h", "in-flight")
	e.SetUp(e.Node(1), false) // dies before delivery
	e.RunEvents(-1)
	if len(h.received) != 0 {
		t.Fatal("message delivered to dead node")
	}
	if tr.Dropped != 1 {
		t.Fatalf("Dropped = %d", tr.Dropped)
	}
	// Sending *from* a dead node is a no-op.
	tr.Send(1, 0, "h", "ghost")
	e.RunEvents(-1)
	if len(h.received) != 0 || tr.Sent != 1 {
		t.Fatal("dead node sent a message")
	}
}

func TestTransportDropProb(t *testing.T) {
	e := NewEngine(2, 3)
	tr := NewTransport(e, ConstantLatency(1))
	tr.DropProb = 1
	h := &recordingHandler{name: "h"}
	tr.Handle(h)
	for i := 0; i < 50; i++ {
		tr.Send(0, 1, "h", i)
	}
	e.RunEvents(-1)
	if len(h.received) != 0 || tr.Dropped != 50 {
		t.Fatalf("lossy transport delivered %d, dropped %d", len(h.received), tr.Dropped)
	}
}

// TestTransportCounterInvariant pins the accounting contract under the two
// failure modes at once — probabilistic send-side loss and destinations that
// die with messages in flight: after a full drain every sent message is
// either delivered or dropped, exactly once.
func TestTransportCounterInvariant(t *testing.T) {
	const nodes = 10
	e := NewEngine(nodes, 11)
	tr := NewTransport(e, ConstantLatency(7))
	tr.DropProb = 0.3
	h := &recordingHandler{name: "h"}
	tr.Handle(h)
	rng := NewRNG(99)
	for step := 0; step < 400; step++ {
		from, to := rng.Intn(nodes), rng.Intn(nodes)
		tr.Send(from, to, "h", step)
		// Churn: nodes flap while traffic is in flight.
		if step%17 == 0 {
			n := e.Node(rng.Intn(nodes))
			e.SetUp(n, !n.Up())
		}
		if step%5 == 0 {
			e.RunEvents(e.Now() + 3) // partial drain so messages interleave
		}
	}
	e.RunEvents(-1)
	if tr.Sent == 0 || tr.Dropped == 0 || tr.Delivered == 0 {
		t.Fatalf("degenerate run: sent=%d delivered=%d dropped=%d", tr.Sent, tr.Delivered, tr.Dropped)
	}
	if tr.Sent != tr.Delivered+tr.Dropped {
		t.Fatalf("invariant violated: Sent=%d != Delivered=%d + Dropped=%d",
			tr.Sent, tr.Delivered, tr.Dropped)
	}
	if int64(len(h.received)) != tr.Delivered {
		t.Fatalf("handler saw %d messages, Delivered=%d", len(h.received), tr.Delivered)
	}
}

func TestTransportUnknownProtoPanics(t *testing.T) {
	e := NewEngine(2, 1)
	tr := NewTransport(e, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Send(0, 1, "nope", nil)
}

func TestTransportDuplicateHandlerPanics(t *testing.T) {
	e := NewEngine(1, 1)
	tr := NewTransport(e, nil)
	tr.Handle(&recordingHandler{name: "h"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Handle(&recordingHandler{name: "h"})
}

func TestUniformLatencyRange(t *testing.T) {
	rng := NewRNG(1)
	lat := UniformLatency(rng, 5, 9)
	for i := 0; i < 200; i++ {
		d := lat(0, 1)
		if d < 5 || d > 9 {
			t.Fatalf("latency %d out of range", d)
		}
	}
	fixed := UniformLatency(rng, 7, 7)
	if fixed(0, 1) != 7 {
		t.Fatal("degenerate range broken")
	}
}
