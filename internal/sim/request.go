package sim

// ReqTable tracks in-flight request/response exchanges for event-driven
// protocols built on a Transport: every outstanding request gets a unique id
// and a deadline scheduled through the engine's event queue. Resolving the
// id before the deadline cancels the timeout; otherwise the expiry callback
// fires exactly once. Protocols use it so that lost messages abort cleanly —
// releasing whatever state (capacity reservations, busy flags) the request
// pinned — instead of leaking it.
type ReqTable struct {
	e       *Engine
	nextID  uint64
	pending map[uint64]*Event
}

// NewReqTable builds a request table on engine e.
func NewReqTable(e *Engine) *ReqTable {
	return &ReqTable{e: e, pending: make(map[uint64]*Event)}
}

// Add registers a request that expires after timeout virtual time units and
// returns its id. When the deadline passes without Resolve, onExpire(id)
// runs once and the request is removed.
func (rt *ReqTable) Add(timeout int64, onExpire func(id uint64)) uint64 {
	return rt.AddRetry(timeout, 1, nil, onExpire)
}

// AddRetry registers a request that is issued up to attempts times: send (if
// non-nil) fires immediately and again on every timeout until the attempts
// are exhausted, at which point onFail(id) runs once. Resolve cancels the
// pending deadline and stops further retries. Timeouts fire at priority 2 so
// that a response and its deadline sharing a timestamp resolve in the
// response's favour (Transport delivers at priority 1).
func (rt *ReqTable) AddRetry(timeout int64, attempts int, send func(), onFail func(id uint64)) uint64 {
	if timeout <= 0 {
		panic("sim: request timeout must be positive")
	}
	if attempts < 1 {
		attempts = 1
	}
	rt.nextID++
	id := rt.nextID
	var arm func(left int)
	arm = func(left int) {
		if send != nil {
			send()
		}
		rt.pending[id] = rt.e.After(timeout, 2, func() {
			if left > 1 {
				arm(left - 1)
				return
			}
			delete(rt.pending, id)
			if onFail != nil {
				onFail(id)
			}
		})
	}
	arm(attempts)
	return id
}

// Resolve marks the request answered, cancelling its deadline and any
// remaining retries. It reports whether the request was still pending;
// resolving an unknown or already-expired id is a no-op returning false, so
// duplicate or late responses are safe to feed through.
func (rt *ReqTable) Resolve(id uint64) bool {
	ev, ok := rt.pending[id]
	if !ok {
		return false
	}
	delete(rt.pending, id)
	rt.e.Cancel(ev)
	return true
}

// Open returns the number of unresolved requests.
func (rt *ReqTable) Open() int { return len(rt.pending) }
