package sim

import "sort"

// Deterministic failure injection: a FaultPlan is a precomputed schedule of
// node up/down transitions, applied at the start of the round they name,
// before any protocol runs. Precomputing the schedule (instead of rolling
// dice inside the round loop) keeps the injection independent of every other
// RNG stream in the run, so adding or removing faults never perturbs peer
// sampling, placement, or learning draws.

// FaultEvent is one power transition: node Node goes Up (recovery) or down
// (crash) at the start of round Round.
type FaultEvent struct {
	Round int
	Node  int
	Up    bool
}

// FaultPlan is a round-ordered schedule of fault events.
type FaultPlan struct {
	Events []FaultEvent
}

// Install registers the plan on the engine: at the start of each round every
// event scheduled for that round is handed to apply, in schedule order. The
// apply callback owns the actual transition — evacuating a cluster PM,
// mirroring SetUp, restoring checkpointed protocol state — because the
// engine cannot know what a crash means for the layers above it.
func (p *FaultPlan) Install(e *Engine, apply func(e *Engine, ev FaultEvent)) {
	byRound := make(map[int][]FaultEvent, len(p.Events))
	for _, ev := range p.Events {
		byRound[ev.Round] = append(byRound[ev.Round], ev)
	}
	e.BeforeRound(func(e *Engine, r int) {
		for _, ev := range byRound[r] {
			apply(e, ev)
		}
	})
}

// GenerateFaults draws a crash/recovery schedule: `crashes` distinct victims
// out of `nodes`, each crashing once at a round in [rounds/6, 2*rounds/3)
// — late enough that learning has state worth losing, early enough that
// recovery and reconvergence fit inside the run — and recovering mttr rounds
// later (mttr <= 0 means the node stays down). Recoveries past the end of
// the run are dropped. The schedule is sorted by round, ties in draw order.
func GenerateFaults(rng *RNG, nodes, rounds, crashes, mttr int) FaultPlan {
	if crashes > nodes {
		crashes = nodes
	}
	victims := make([]int, nodes)
	for i := range victims {
		victims[i] = i
	}
	rng.Shuffle(len(victims), func(i, j int) {
		victims[i], victims[j] = victims[j], victims[i]
	})
	lo, hi := rounds/6, 2*rounds/3
	if hi <= lo {
		hi = lo + 1
	}
	var plan FaultPlan
	for _, v := range victims[:crashes] {
		crash := lo + rng.Intn(hi-lo)
		plan.Events = append(plan.Events, FaultEvent{Round: crash, Node: v, Up: false})
		if mttr > 0 && crash+mttr < rounds {
			plan.Events = append(plan.Events, FaultEvent{Round: crash + mttr, Node: v, Up: true})
		}
	}
	sort.SliceStable(plan.Events, func(i, j int) bool {
		return plan.Events[i].Round < plan.Events[j].Round
	})
	return plan
}
