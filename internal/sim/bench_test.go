package sim

import "testing"

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkRNGIntn(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}

func BenchmarkRNGNormFloat64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

func BenchmarkRNGDerive(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Derive(uint64(i))
	}
}

type nopProto struct{}

func (nopProto) Name() string                    { return "nop" }
func (nopProto) Setup(e *Engine, n *Node) any    { return struct{}{} }
func (nopProto) Round(e *Engine, n *Node, r int) {}

// BenchmarkEngineRound measures the kernel's per-round overhead: shuffling
// and dispatching one protocol over 1000 nodes.
func BenchmarkEngineRound(b *testing.B) {
	e := NewEngine(1000, 1)
	e.Register(nopProto{})
	e.RunRounds(1) // setup outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRounds(1)
	}
}

func BenchmarkEventQueue(b *testing.B) {
	e := NewEngine(1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(int64(i), 0, func() {})
		if i%64 == 63 {
			e.RunEvents(int64(i))
		}
	}
}

func BenchmarkRunReplications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RunReplications(8, 4, func(rep int) int { return rep })
	}
}
