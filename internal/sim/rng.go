package sim

import (
	"math"
	"sync"
	"sync/atomic"
)

// RNG is a deterministic, splittable pseudo-random number generator based on
// xoshiro256** seeded through SplitMix64. Every stochastic component of a
// simulation draws from its own derived stream so that runs are
// bit-reproducible regardless of execution order across replications.
//
// RNG is not safe for concurrent use; derive one stream per goroutine.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances *x and returns the next SplitMix64 output. It is the
// recommended seeder for xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Two generators built from the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	// xoshiro must not start from the all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
	return r
}

// Derive returns a new independent stream keyed by this generator's seed
// material and the given keys. Deriving with the same keys always yields the
// same stream; different key tuples yield (statistically) independent ones.
// The parent generator is not advanced.
func (r *RNG) Derive(keys ...uint64) *RNG {
	x := r.s0 ^ rotl(r.s2, 17)
	for _, k := range keys {
		x ^= splitmix64(&x) ^ (k * 0xd1342543de82ef95)
		_ = splitmix64(&x)
	}
	return NewRNG(x)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits (xoshiro256**). The state lives in
// four named fields and the rotates are hand-expanded — the same update
// sequence as the textbook array form, phrased to fit the compiler's
// inlining budget: this is the innermost call of every stochastic hot loop
// (one draw per multiset element in the training kernel), where the call
// overhead was measurable in whole-pretrain profiles.
func (r *RNG) Uint64() uint64 {
	x := r.s1 * 5
	result := (x<<7 | x>>57) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = r.s3<<45 | r.s3>>19
	return result
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-int64(n)) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// Multiplying by 0x1p-53 is bit-identical to dividing by 1<<53 — both
	// scale by an exact power of two — and avoids a hardware divide on the
	// hottest draw path.
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Bool returns a fair random boolean.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Thresh53 converts a Bernoulli success probability into the 53-bit integer
// threshold consumed by BernoulliThresh: the number of draw values k in
// [0, 2⁵³) satisfying k·2⁻⁵³ < p, i.e. ⌈p·2⁵³⌉ clamped to [0, 2⁵³].
//
// The conversion is exactly decision-equivalent to the float compare
// `Float64() < p`: Float64 returns (Uint64()>>11)·2⁻⁵³, the product is exact
// (a 53-bit integer scaled by a power of two), so the compare holds iff the
// integer draw lies below the ceiling of p·2⁵³ — which p*0x1p53 computes
// without rounding for every p in [0, 1], powers of two being exact scale
// factors even for subnormal p. Out-of-range arguments degenerate the same
// way the float compare does: p ≤ 0 and NaN can never win (threshold 0),
// p ≥ 1 always wins (threshold 2⁵³, above every draw).
func Thresh53(p float64) uint64 {
	if !(p > 0) { // p <= 0, or NaN
		return 0
	}
	if p >= 1 {
		return 1 << 53
	}
	x := p * 0x1p53 // exact: power-of-two scaling, no rounding
	t := uint64(x)  // floor(x); x < 2⁵³ so the conversion is in range
	if float64(t) < x {
		t++ // x was not integral: round the threshold up
	}
	return t
}

// BernoulliThresh returns true with the probability encoded by a Thresh53
// threshold, consuming exactly one Uint64 — the same draw Bernoulli consumes.
// Hot loops with a fixed p hoist the threshold conversion out of the loop and
// run one shift and one integer compare per coin.
func (r *RNG) BernoulliThresh(t uint64) bool { return r.Uint64()>>11 < t }

// Bernoulli returns true with probability p. The integer-threshold compare is
// bit-identical, draw for draw, to the former `Float64() < p` (see Thresh53)
// while keeping the float convert/multiply off the hottest draw path.
func (r *RNG) Bernoulli(p float64) bool { return r.Uint64()>>11 < Thresh53(p) }

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	return r.PermInto(nil, n)
}

// PermInto is Perm into a caller-owned buffer: it returns a pseudo-random
// permutation of [0, n) in dst's backing array (grown only when too small),
// consuming exactly the draws Perm consumes. Callers on hot paths reuse one
// buffer across rounds to keep shuffling allocation-free.
func (r *RNG) PermInto(dst []int, n int) []int {
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		j := r.Intn(i + 1)
		dst[i] = dst[j]
		dst[j] = i
	}
	return dst
}

// Shuffle randomises the order of n elements using swap (Fisher-Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pareto returns a Pareto(shape, scale) variate, used by the trace generator
// to reproduce the heavy-tailed per-VM mean utilisations of the Google
// cluster data.
func (r *RNG) Pareto(shape, scale float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return scale / math.Pow(u, 1/shape)
		}
	}
}

// LogNormal returns exp(mu + sigma*Z) for a standard normal Z.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// BoundRNG is a lazily derived random stream bound to the engine it was
// derived from. Protocol values embed one instead of caching a bare *RNG so
// that registering the same protocol value on a second engine re-derives the
// stream from that engine's root — a protocol that silently kept the first
// engine's stream would break (seed, replication) determinism in sweeps that
// reuse protocol values. The zero value is ready for use.
type BoundRNG struct {
	e   *Engine
	rng *RNG
}

// For returns the stream derived from e's root with the given keys, deriving
// it on first use and re-deriving whenever e differs from the engine of the
// previous call. Derivation does not advance the engine's root, so the
// returned stream is identical no matter when in the run it is first
// requested.
func (b *BoundRNG) For(e *Engine, keys ...uint64) *RNG {
	if b.e != e {
		b.e, b.rng = e, e.RNG().Derive(keys...)
	}
	return b.rng
}

// BoundNodeRNG is the per-node counterpart of BoundRNG: one independent
// stream per node, each derived from the engine's root keyed by (keys...,
// node ID). Protocols that declare sim.ParallelRound draw from it instead of
// a single shared stream — a shared stream's values depend on node visit
// order, which a fork-join pass cannot (and must not) fix, whereas per-node
// streams make every node's randomness a function of the seed and the node
// alone. The zero value is ready for use.
//
// For is safe for concurrent use by the engine's round workers. The keys
// must be the same on every call for a given BoundNodeRNG value; the family
// is derived once per engine, on first use.
type BoundNodeRNG struct {
	binding atomic.Pointer[nodeStreams]
	mu      sync.Mutex
}

type nodeStreams struct {
	e    *Engine
	rngs []*RNG
}

// For returns node id's stream on engine e, deriving the whole per-node
// family on first use and re-deriving when e differs from the previous
// engine. Derivation reads but never advances the engine root, so the family
// is identical no matter when in the run — or from which worker — it is
// first requested.
func (b *BoundNodeRNG) For(e *Engine, id int, keys ...uint64) *RNG {
	if s := b.binding.Load(); s != nil && s.e == e {
		return s.rngs[id]
	}
	return b.bind(e, keys).rngs[id]
}

// bind builds (or re-builds) the per-node stream family for e. Concurrent
// first calls race benignly: derivation is deterministic and side-effect
// free, and the mutex ensures only one goroutine constructs the family.
func (b *BoundNodeRNG) bind(e *Engine, keys []uint64) *nodeStreams {
	b.mu.Lock()
	defer b.mu.Unlock()
	if s := b.binding.Load(); s != nil && s.e == e {
		return s
	}
	s := &nodeStreams{e: e, rngs: make([]*RNG, e.N())}
	nodeKeys := make([]uint64, len(keys)+1)
	copy(nodeKeys, keys)
	for i := range s.rngs {
		nodeKeys[len(keys)] = uint64(i)
		s.rngs[i] = e.RNG().Derive(nodeKeys...)
	}
	b.binding.Store(s)
	return s
}
