package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	// Must not be stuck at zero.
	nonzero := false
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("zero seed produced all-zero stream")
	}
}

func TestDeriveDeterministicAndIndependent(t *testing.T) {
	root := NewRNG(7)
	a := root.Derive(1, 2)
	b := root.Derive(1, 2)
	c := root.Derive(1, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same keys should derive same stream")
		}
	}
	a2 := NewRNG(7).Derive(1, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams with different keys overlap: %d matches", same)
	}
}

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	_ = a.Derive(5)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Derive advanced the parent stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bucket %d has fraction %g", i, frac)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	f := func(n uint8) bool {
		m := int(n % 64)
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := NewRNG(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(31)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean too far from 0: %g", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance too far from 1: %g", variance)
	}
}

func TestExpFloat64(t *testing.T) {
	r := NewRNG(37)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate: %g", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.03 {
		t.Fatalf("exponential mean too far from 1: %g", mean)
	}
}

func TestParetoAndLogNormalPositive(t *testing.T) {
	r := NewRNG(41)
	for i := 0; i < 1000; i++ {
		if v := r.Pareto(2, 0.5); v < 0.5 {
			t.Fatalf("Pareto below scale: %g", v)
		}
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal not positive: %g", v)
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := NewRNG(43)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := NewRNG(47)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestMul64(t *testing.T) {
	hi, lo := mul64(math.MaxUint64, math.MaxUint64)
	if hi != math.MaxUint64-1 || lo != 1 {
		t.Fatalf("mul64 max*max = (%d, %d)", hi, lo)
	}
	hi, lo = mul64(2, 3)
	if hi != 0 || lo != 6 {
		t.Fatalf("mul64 2*3 = (%d, %d)", hi, lo)
	}
}

func TestBoundRNGRebindsPerEngine(t *testing.T) {
	e1 := NewEngine(4, 9)
	e2 := NewEngine(4, 9)
	var b BoundRNG
	// Same engine: cached stream, draws advance.
	r := b.For(e1, 0xbeef)
	first := r.Uint64()
	if b.For(e1, 0xbeef) != r {
		t.Fatalf("For on the same engine must return the cached stream")
	}
	// New engine: fresh derivation, independent of draws on the old stream.
	got := b.For(e2, 0xbeef).Uint64()
	if got != first {
		t.Fatalf("rebound stream diverged: got %d want %d", got, first)
	}
	// Back to the first engine: re-derived, so the earlier draw is replayed.
	if back := b.For(e1, 0xbeef).Uint64(); back != first {
		t.Fatalf("re-derived stream diverged: got %d want %d", back, first)
	}
}

// floatBernoulli is the retired float-compare draw, kept verbatim as the
// reference the integer-threshold Bernoulli must reproduce bit-identically:
// same single Uint64 consumed, same decision for every (draw, p) pair.
func floatBernoulli(r *RNG, p float64) bool { return r.Float64() < p }

// TestBernoulliThresholdEquivalence sweeps p over a dense grid plus
// adversarial values and asserts the threshold compare is decision-identical
// to `Float64() < p` over pinned RNG streams — the draw-sequence contract
// that LearnProtocol{Reference: true} (and every golden fingerprint) relies
// on.
func TestBernoulliThresholdEquivalence(t *testing.T) {
	ps := []float64{
		0, 1, -1, -0.5, 2, 1e300, -1e300,
		math.NaN(), math.Inf(1), math.Inf(-1),
		math.SmallestNonzeroFloat64,       // subnormal: threshold must still round up to 1
		0x1p-53, 0x1p-53 * 2, 0x1p-53 * 3, // exactly k·2⁻⁵³: draw k must lose, k-1 win
		math.Nextafter(0x1p-53, 0),          // just below 2⁻⁵³
		math.Nextafter(0x1p-53, 1),          // just above 2⁻⁵³
		math.Nextafter(3*0x1p-53, 0),        // just below 3·2⁻⁵³
		math.Nextafter(3*0x1p-53, 1),        // just above
		1 - 0x1p-53, math.Nextafter(1.0, 0), // largest sub-1 probabilities
		0.15, 0.15 + 0.7*0.5, // the trainOnce pSender range
	}
	for p := 0.0; p <= 1.0; p += 1.0 / 512 {
		ps = append(ps, p)
	}
	for _, p := range ps {
		ref := NewRNG(101)
		got := NewRNG(101)
		thresh := Thresh53(p)
		for i := 0; i < 2000; i++ {
			want := floatBernoulli(ref, p)
			if g := got.Bernoulli(p); g != want {
				t.Fatalf("Bernoulli(%v) draw %d: got %v, float compare %v", p, i, g, want)
			}
			// The hoisted-threshold form must consume and decide identically.
			ref2, got2 := NewRNG(uint64(i)), NewRNG(uint64(i))
			if w, g := floatBernoulli(ref2, p), got2.BernoulliThresh(thresh); w != g {
				t.Fatalf("BernoulliThresh(Thresh53(%v)) seed %d: got %v, want %v", p, i, g, w)
			}
		}
	}
}

// TestThresh53Exact pins the threshold conversion on the boundary values the
// equivalence argument hinges on.
func TestThresh53Exact(t *testing.T) {
	cases := []struct {
		p    float64
		want uint64
	}{
		{0, 0},
		{-3, 0},
		{math.NaN(), 0},
		{math.Inf(-1), 0},
		{1, 1 << 53},
		{2, 1 << 53},
		{math.Inf(1), 1 << 53},
		{0.5, 1 << 52},
		{0.25, 1 << 51},
		{0x1p-53, 1},                     // exactly one winning draw (k=0)
		{math.Nextafter(0x1p-53, 0), 1},  // still only k=0 wins
		{math.SmallestNonzeroFloat64, 1}, // any p > 0 lets k=0 win
		{math.Nextafter(0x1p-53, 1), 2},  // k=1 now wins too
		{3 * 0x1p-53, 3},
		{1 - 0x1p-53, 1<<53 - 1},            // every draw but the top wins
		{math.Nextafter(1.0, 0), 1<<53 - 1}, // largest sub-1 float: 1-2⁻⁵³
	}
	for _, c := range cases {
		if got := Thresh53(c.p); got != c.want {
			t.Fatalf("Thresh53(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}
