// Package sim is a deterministic simulation kernel in the style of PeerSim:
// an event-driven scheduler with a cycle (round) driver layered on top,
// per-node protocol instances, observer hooks, and a parallel replication
// runner. All randomness flows through splittable RNG streams so that a
// (seed, replication) pair fully determines a run.
package sim

import (
	"fmt"
	"sync/atomic"

	"github.com/glap-sim/glap/internal/par"
)

// Node is one simulated machine. Per-protocol state is held in a slice
// indexed by the protocol's registration order.
type Node struct {
	// ID is the node's dense index in [0, N).
	ID int

	up     bool
	states []any
}

// Up reports whether the node is switched on. Protocol rounds are only
// executed on nodes that are up.
func (n *Node) Up() bool { return n.up }

// Protocol is a distributed protocol simulated by the kernel. One instance
// serves all nodes; per-node state is created by Setup and retrieved with
// Engine.State.
type Protocol interface {
	// Name identifies the protocol; it must be unique within an Engine.
	Name() string
	// Setup builds the per-node protocol state for node n. It runs once per
	// node before the first round.
	Setup(e *Engine, n *Node) any
	// Round executes one protocol round on node n. The paper's push-pull
	// gossip exchanges are simulated by letting the active node read and
	// write the passive peer's state directly, exactly as PeerSim does.
	Round(e *Engine, n *Node, round int)
}

// ParallelRound is the opt-in contract for fork-join execution of a
// protocol's node pass. A protocol may declare it when, for every node n,
// Round(e, n, r) only WRITES state owned by n (its own protocol states, its
// own derived random stream, n-local scratch) while shared structures —
// other nodes' states, the cluster, the engine — are only READ, and no two
// nodes' rounds observe each other's writes within the same pass. Protocols
// that mutate peer state (push-pull gossip exchanges, Algorithm 3
// consolidation moving VMs) must not declare it and always run sequentially
// — unless they additionally implement PairRound, which parallelises exactly
// those peer-mutating exchanges.
//
// Determinism is the caller's headline invariant: because each conforming
// Round is self-contained and draws from per-node randomness, the round's
// outcome is independent of execution order, so any worker count — including
// 1 — produces byte-identical simulations.
type ParallelRound interface {
	Protocol
	// Parallelizable reports whether Round currently satisfies the contract
	// above. Wrappers delegate to the wrapped protocol; a plain protocol
	// returns a constant true.
	Parallelizable() bool
}

// PairRound is the opt-in contract for deterministic pair-sharded execution
// of a protocol whose round is a sequence of pairwise exchanges (push-pull
// gossip, Algorithm 3 consolidation). When Engine.PairSharded is set and the
// protocol reports PairSharded(), the engine splits the round into two
// phases: a sequential DRAW phase that walks the shuffled node order and
// collects one (initiator, peer) pair per up node — consuming the protocol's
// random streams in exactly the order the sequential Round path would — and
// an EXECUTE phase that greedy-colors the pair list into batches of
// node-disjoint pairs (par.PairSchedule) and fans each batch out over
// ForChunks. The schedule depends only on the drawn pairs, never on the
// worker count, so sharded execution is byte-identical at any worker count.
//
// RunPair must confine its writes to the two endpoint nodes' state (their
// protocol states, their PMs' cluster columns, the pair's acct slot) and may
// read shared structures only through race-safe paths; global accounting
// must be diverted into per-pair slots (BeginPairs sizes them, idx addresses
// them in draw order) and folded deterministically in EndPairs. RunPair must
// not read other nodes' up-ness or state: batch barriers order conflicting
// pairs, but nothing orders disjoint ones.
//
// Note the sharded semantics are a distinct reference point from sequential
// Round execution: all draws observe the round-start state, whereas the
// sequential path interleaves draws with exchange effects. Each mode is
// internally deterministic; golden fingerprints pin them separately.
type PairRound interface {
	Protocol
	// PairSharded reports whether Round decomposes into DrawPair/RunPair
	// under the protocol's current configuration.
	PairSharded() bool
	// DrawPair performs initiator n's peer draw exactly as Round would
	// (including node-local side effects such as view pruning or scratch
	// resets) and returns the peer's node ID, or -1 for no exchange.
	DrawPair(e *Engine, n *Node, round int) int
	// BeginPairs announces the number of drawn pairs before execution so the
	// protocol can size per-pair accounting.
	BeginPairs(e *Engine, round, npairs int)
	// RunPair executes the exchange of pair idx (its index in draw order)
	// between initiator a and peer b.
	RunPair(e *Engine, a, b *Node, round, idx int)
	// EndPairs folds per-pair accounting back into shared state, in draw
	// order, after all batches joined.
	EndPairs(e *Engine, round int)
}

// QuiescentRound is the opt-in contract for quiescence-skipping. A protocol
// implements it to certify, from the current state, that running its Round
// on every node for every due round in [from, to) would have no effect
// observable in the simulation's outputs (metrics series, cluster
// accounting) — PROVIDED every other installed protocol and hook is
// simultaneously inert over the same span, which the engine establishes
// before skipping. Effects confined to overlay or RNG state that only
// influence other inert exchanges (e.g. Cyclon view churn) are not
// observable under that proviso and may be certified away.
type QuiescentRound interface {
	Protocol
	// InactiveSpan returns how many rounds starting at from (capped at to)
	// the protocol certifies as inert. Returning to-from certifies the full
	// span; anything less blocks skipping (the engine only skips whole
	// tails).
	InactiveSpan(e *Engine, from, to int) int
}

// Observer is called at the end of every completed round, after all
// protocols ran on all nodes.
type Observer func(e *Engine, round int)

// SpanHook is the span-capable form of a BeforeRound/Observe hook: Each
// fires per round exactly like a plain Observer, while Quiet/Span let the
// engine batch-advance a certified-quiet tail. Quiet must be a pure check —
// it reports whether the hook can reproduce rounds [from, to) in one fused
// Span call, without mutating anything — because the engine probes every
// hook before committing to a skip. Span must then produce state and
// samples bit-identical to calling Each for every round of the span.
// Hooks registered through the plain BeforeRound/Observe methods are not
// span-capable and block skipping, which keeps fault injectors and
// specialised observers conservative by default.
type SpanHook struct {
	Each  Observer
	Quiet func(e *Engine, from, to int) bool
	Span  func(e *Engine, from, to int)
}

type protoReg struct {
	proto Protocol
	every int // run each `every` rounds
	from  int // first round in which the protocol runs
	until int // last round (inclusive); <0 means forever
}

// dueIn reports whether the protocol would run in at least one round of
// [from, to) under its (every, from, until) window.
func (reg *protoReg) dueIn(from, to int) bool {
	lo := from
	if lo < reg.from {
		lo = reg.from
	}
	hi := to
	if reg.until >= 0 && reg.until+1 < hi {
		hi = reg.until + 1
	}
	if lo >= hi {
		return false
	}
	// First multiple of `every` (counted from reg.from) at or after lo.
	next := reg.from + ((lo-reg.from+reg.every-1)/reg.every)*reg.every
	return next < hi
}

// Engine drives one simulation run.
type Engine struct {
	rng       *RNG
	nodes     []*Node
	protocols []protoReg
	protoIdx  map[string]int
	queue     eventQueue
	now       int64
	observers []Observer
	obsSpan   []*SpanHook // parallel to observers; nil = plain hook
	pre       []Observer
	preSpan   []*SpanHook // parallel to pre; nil = plain hook
	round     int
	stopReq   bool
	upCount   atomic.Int64

	// Pair-sharded execution scratch and counters (see PairRound).
	pairBuf       []par.Pair
	pairSched     par.PairSchedule
	pairRounds    int64 // protocol passes executed via the sharded path
	pairBatches   int64 // total batches across those passes
	pairTotal     int64 // total pairs across those passes
	roundsSkipped int64 // rounds batch-advanced by quiescence-skipping

	// RoundPeriod is the virtual duration of one round. The paper uses
	// 2-minute rounds; the default is 120 (seconds).
	RoundPeriod int64

	// Workers bounds intra-run fork-join parallelism for protocols that
	// declare ParallelRound. <= 0 (the default) sizes automatically from the
	// machine-wide worker budget shared with RunReplications, so nested
	// parallelism cannot oversubscribe; 1 forces sequential execution; an
	// explicit count > 1 is honored exactly (differential and race tests
	// rely on that). Results are identical for every setting.
	Workers int

	// PairSharded enables the pair-sharded execution path for protocols that
	// implement PairRound and report PairSharded(). Off by default: the
	// sequential Round path stays the reference. Sharded execution is
	// deterministic and byte-identical across worker counts, but is its own
	// reference point (draws observe round-start state), so it is pinned by
	// its own golden fingerprints.
	PairSharded bool

	// SkipQuiescent enables quiescence-skipping: when the event queue is
	// empty and every due protocol plus every registered hook certifies the
	// entire remaining tail of the run as inert, RunRounds batch-advances
	// demand accounting and metrics in one fused pass instead of grinding
	// through the quiet rounds. Only whole tails are skipped — protocol and
	// shuffle randomness is not drawn for skipped rounds, which is provably
	// unobservable only when no live round follows. Results are
	// byte-identical with the option on or off.
	SkipQuiescent bool
}

// NewEngine builds an engine with n nodes, all initially up, seeded by seed.
func NewEngine(n int, seed uint64) *Engine {
	e := &Engine{
		rng:         NewRNG(seed),
		protoIdx:    make(map[string]int),
		RoundPeriod: 120,
	}
	e.nodes = make([]*Node, n)
	for i := range e.nodes {
		e.nodes[i] = &Node{ID: i, up: true}
	}
	e.upCount.Store(int64(n))
	return e
}

// RNG returns the engine's root random stream. Components should derive
// sub-streams rather than share it.
func (e *Engine) RNG() *RNG { return e.rng }

// Now returns the current virtual time.
func (e *Engine) Now() int64 { return e.now }

// Round returns the index of the round currently executing (or the last
// completed round between rounds).
func (e *Engine) Round() int { return e.round }

// N returns the number of nodes.
func (e *Engine) N() int { return len(e.nodes) }

// Nodes returns the node slice. Callers must not reorder it.
func (e *Engine) Nodes() []*Node { return e.nodes }

// Node returns the node with the given id.
func (e *Engine) Node(id int) *Node { return e.nodes[id] }

// UpCount returns the number of nodes currently up. The count is maintained
// incrementally by SetUp — observers call this every round, and the former
// O(n) scan was pure overhead on large clusters.
func (e *Engine) UpCount() int { return int(e.upCount.Load()) }

// SetUp switches node n on or off. Switched-off nodes do not execute
// protocol rounds and are skipped by peer samplers that filter dead peers.
// The shared counter is atomic so that pair-sharded consolidation batches
// may power off their (node-disjoint) endpoints concurrently; the per-node
// flag itself is only ever written by the node's own pair within a batch.
func (e *Engine) SetUp(n *Node, up bool) {
	if n.up == up {
		return
	}
	n.up = up
	if up {
		e.upCount.Add(1)
	} else {
		e.upCount.Add(-1)
	}
}

// Register adds a protocol that runs every round, starting at round 0.
func (e *Engine) Register(p Protocol) {
	e.RegisterWindow(p, 1, 0, -1)
}

// RegisterEvery adds a protocol that runs once per `every` rounds.
func (e *Engine) RegisterEvery(p Protocol, every int) {
	e.RegisterWindow(p, every, 0, -1)
}

// RegisterWindow adds a protocol that runs every `every` rounds within the
// round window [from, until]; until < 0 means no upper bound. Registration
// order determines intra-round execution order.
func (e *Engine) RegisterWindow(p Protocol, every, from, until int) {
	if every < 1 {
		panic("sim: protocol period must be >= 1")
	}
	if _, dup := e.protoIdx[p.Name()]; dup {
		panic(fmt.Sprintf("sim: duplicate protocol %q", p.Name()))
	}
	e.protoIdx[p.Name()] = len(e.protocols)
	e.protocols = append(e.protocols, protoReg{proto: p, every: every, from: from, until: until})
}

// Observe adds an end-of-round observer. Plain observers block
// quiescence-skipping; use ObserveSpan for hooks that can batch-advance.
func (e *Engine) Observe(o Observer) {
	e.observers = append(e.observers, o)
	e.obsSpan = append(e.obsSpan, nil)
}

// ObserveSpan adds a span-capable end-of-round observer (see SpanHook).
func (e *Engine) ObserveSpan(h SpanHook) {
	hc := h
	e.observers = append(e.observers, h.Each)
	e.obsSpan = append(e.obsSpan, &hc)
}

// BeforeRound adds a hook that fires at the start of every round, before any
// protocol runs. The cluster binding uses it to refresh VM demand so that
// protocols observe the round's workload. Plain hooks block
// quiescence-skipping; use BeforeRoundSpan for hooks that can batch-advance.
func (e *Engine) BeforeRound(o Observer) {
	e.pre = append(e.pre, o)
	e.preSpan = append(e.preSpan, nil)
}

// BeforeRoundSpan adds a span-capable start-of-round hook (see SpanHook).
func (e *Engine) BeforeRoundSpan(h SpanHook) {
	hc := h
	e.pre = append(e.pre, h.Each)
	e.preSpan = append(e.preSpan, &hc)
}

// RoundsSkipped returns the number of rounds batch-advanced by
// quiescence-skipping so far.
func (e *Engine) RoundsSkipped() int64 { return e.roundsSkipped }

// PairStats returns the pair-sharded execution counters: sharded protocol
// passes executed, total node-disjoint batches, and total pairs across them.
func (e *Engine) PairStats() (passes, batches, pairs int64) {
	return e.pairRounds, e.pairBatches, e.pairTotal
}

// State returns node n's state for the named protocol. It panics on unknown
// protocol names: that is always a wiring bug, not a runtime condition.
func (e *Engine) State(name string, n *Node) any {
	i, ok := e.protoIdx[name]
	if !ok {
		panic(fmt.Sprintf("sim: unknown protocol %q", name))
	}
	return n.states[i]
}

// setup runs Setup for every protocol on every node, in registration order.
func (e *Engine) setup() {
	for _, n := range e.nodes {
		if n.states == nil {
			n.states = make([]any, len(e.protocols))
		}
	}
	for pi, reg := range e.protocols {
		for _, n := range e.nodes {
			if n.states[pi] == nil {
				n.states[pi] = reg.proto.Setup(e, n)
			}
		}
	}
}

// At schedules fn at virtual time t (>= now).
func (e *Engine) At(t int64, priority int, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{Time: t, Priority: priority, Fn: fn}
	e.queue.push(ev)
	return ev
}

// After schedules fn after d time units.
func (e *Engine) After(d int64, priority int, fn func()) *Event {
	return e.At(e.now+d, priority, fn)
}

// Cancel removes a scheduled event.
func (e *Engine) Cancel(ev *Event) { e.queue.remove(ev) }

// Stop requests that RunRounds return at the end of the current round.
func (e *Engine) Stop() { e.stopReq = true }

// RunRounds executes `rounds` synchronous protocol rounds. Within one round
// every registered protocol (in registration order) runs over all up nodes
// in a freshly shuffled order, then observers fire. Events scheduled via
// At/After with timestamps inside the round window fire before the round's
// protocol pass.
func (e *Engine) RunRounds(rounds int) {
	e.setup()
	order := make([]*Node, len(e.nodes))
	copy(order, e.nodes)
	shuffleRNG := e.rng.Derive(0x5aff1e)
	for r := 0; r < rounds; r++ {
		e.round = r
		roundStart := int64(r) * e.RoundPeriod
		e.drainUntil(roundStart)
		e.now = roundStart
		// Quiescence fast path: only whole tails are skipped, because
		// skipped rounds draw no shuffle or protocol randomness — provably
		// unobservable only when no live round follows. r >= 1 keeps round 0
		// (protocol warm-up, From-gating) on the reference path.
		if e.SkipQuiescent && r >= 1 && e.queue.Len() == 0 && e.quietTail(r, rounds) {
			e.skipTail(r, rounds)
			e.roundsSkipped += int64(rounds - r)
			e.round = rounds
			e.now = int64(rounds) * e.RoundPeriod
			return
		}
		for _, o := range e.pre {
			o(e, r)
		}
		shuffleRNG.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for pi := range e.protocols {
			reg := &e.protocols[pi]
			if r < reg.from || (reg.until >= 0 && r > reg.until) {
				continue
			}
			if (r-reg.from)%reg.every != 0 {
				continue
			}
			if e.PairSharded {
				if pp, ok := reg.proto.(PairRound); ok && pp.PairSharded() {
					e.runPairsSharded(pp, order, r)
					continue
				}
			}
			if pr, ok := reg.proto.(ParallelRound); ok && pr.Parallelizable() {
				e.runNodesParallel(reg.proto, order, r)
				continue
			}
			for _, n := range order {
				if n.up {
					reg.proto.Round(e, n, r)
				}
			}
		}
		for _, o := range e.observers {
			o(e, r)
		}
		if e.stopReq {
			e.stopReq = false
			return
		}
	}
	e.round = rounds
	e.now = int64(rounds) * e.RoundPeriod
	e.drainUntil(e.now)
}

// quietTail reports whether rounds [from, to) are provably inert: every
// pre/observer hook is span-capable and certifies the span quiet, and every
// protocol due in the span implements QuiescentRound and certifies all of it.
// Checks are ordered cheapest-failure-first: hook capability is O(hooks), the
// cluster demand probe (a pre-hook Quiet) fails O(1) on noisy workloads, and
// the consolidation certificate scans PMs/VMs only when demand is constant.
func (e *Engine) quietTail(from, to int) bool {
	for _, h := range e.preSpan {
		if h == nil {
			return false
		}
	}
	for _, h := range e.obsSpan {
		if h == nil {
			return false
		}
	}
	for _, h := range e.preSpan {
		if h.Quiet == nil || !h.Quiet(e, from, to) {
			return false
		}
	}
	for pi := range e.protocols {
		reg := &e.protocols[pi]
		if !reg.dueIn(from, to) {
			continue
		}
		q, ok := reg.proto.(QuiescentRound)
		if !ok || q.InactiveSpan(e, from, to) < to-from {
			return false
		}
	}
	for _, h := range e.obsSpan {
		if h.Quiet == nil || !h.Quiet(e, from, to) {
			return false
		}
	}
	return true
}

// skipTail batch-advances the certified-quiet rounds [from, to): pre-hook
// spans apply in registration order (demand accounting), then observer spans
// (metrics), reproducing exactly what the per-round path would have produced.
func (e *Engine) skipTail(from, to int) {
	for _, h := range e.preSpan {
		h.Span(e, from, to)
	}
	for _, h := range e.obsSpan {
		h.Span(e, from, to)
	}
}

// runPairsSharded executes one PairRound protocol pass: a sequential draw
// phase over the shuffled order (consuming the protocol's random streams in
// exactly the sequential path's order), then batch-wise parallel execution of
// the node-disjoint pair schedule. The schedule and the per-batch barriers
// depend only on the drawn pairs, so the pass is byte-identical at any worker
// count.
func (e *Engine) runPairsSharded(pp PairRound, order []*Node, r int) {
	pairs := e.pairBuf[:0]
	for _, n := range order {
		if !n.up {
			continue
		}
		peer := pp.DrawPair(e, n, r)
		if peer < 0 {
			continue
		}
		pairs = append(pairs, par.Pair{A: int32(n.ID), B: int32(peer)})
	}
	e.pairBuf = pairs
	pp.BeginPairs(e, r, len(pairs))
	e.pairSched.Build(pairs, len(e.nodes))
	sched := &e.pairSched
	for b := 0; b < sched.Batches(); b++ {
		batch := sched.Order[sched.Offsets[b]:sched.Offsets[b+1]]
		chunk := (len(batch) + 31) / 32
		par.ForChunks(len(batch), chunk, e.Workers, func(lo, hi int) {
			for _, idx := range batch[lo:hi] {
				p := pairs[idx]
				pp.RunPair(e, e.nodes[p.A], e.nodes[p.B], r, int(idx))
			}
		})
	}
	pp.EndPairs(e, r)
	e.pairRounds++
	e.pairBatches += int64(sched.Batches())
	e.pairTotal += int64(len(pairs))
}

// runNodesParallel fans one ParallelRound protocol's pass over the shuffled
// node order. The order slice is partitioned into index-contiguous chunks and
// joined before returning, so observers never see a half-finished pass. The
// ParallelRound contract (per-node writes only, per-node randomness) makes
// the result independent of chunking and worker count.
func (e *Engine) runNodesParallel(p Protocol, order []*Node, r int) {
	// ~32 chunks regardless of worker count: fine-grained enough to balance
	// heterogeneous per-node work, coarse enough that scheduling is noise.
	chunk := (len(order) + 31) / 32
	par.ForChunks(len(order), chunk, e.Workers, func(lo, hi int) {
		for _, n := range order[lo:hi] {
			if n.up {
				p.Round(e, n, r)
			}
		}
	})
}

// drainUntil fires all pending events with Time <= t in order.
func (e *Engine) drainUntil(t int64) {
	for {
		next, ok := e.queue.peekTime()
		if !ok || next > t {
			return
		}
		ev := e.queue.pop()
		e.now = ev.Time
		ev.Fn()
	}
}

// RunEvents runs the engine purely event-driven until the queue empties or
// virtual time passes horizon (horizon < 0 means no bound). It is used by
// components that need finer-than-round timing.
func (e *Engine) RunEvents(horizon int64) {
	e.setup()
	for {
		next, ok := e.queue.peekTime()
		if !ok || (horizon >= 0 && next > horizon) {
			return
		}
		ev := e.queue.pop()
		e.now = ev.Time
		ev.Fn()
	}
}
