// Package sim is a deterministic simulation kernel in the style of PeerSim:
// an event-driven scheduler with a cycle (round) driver layered on top,
// per-node protocol instances, observer hooks, and a parallel replication
// runner. All randomness flows through splittable RNG streams so that a
// (seed, replication) pair fully determines a run.
package sim

import (
	"fmt"

	"github.com/glap-sim/glap/internal/par"
)

// Node is one simulated machine. Per-protocol state is held in a slice
// indexed by the protocol's registration order.
type Node struct {
	// ID is the node's dense index in [0, N).
	ID int

	up     bool
	states []any
}

// Up reports whether the node is switched on. Protocol rounds are only
// executed on nodes that are up.
func (n *Node) Up() bool { return n.up }

// Protocol is a distributed protocol simulated by the kernel. One instance
// serves all nodes; per-node state is created by Setup and retrieved with
// Engine.State.
type Protocol interface {
	// Name identifies the protocol; it must be unique within an Engine.
	Name() string
	// Setup builds the per-node protocol state for node n. It runs once per
	// node before the first round.
	Setup(e *Engine, n *Node) any
	// Round executes one protocol round on node n. The paper's push-pull
	// gossip exchanges are simulated by letting the active node read and
	// write the passive peer's state directly, exactly as PeerSim does.
	Round(e *Engine, n *Node, round int)
}

// ParallelRound is the opt-in contract for fork-join execution of a
// protocol's node pass. A protocol may declare it when, for every node n,
// Round(e, n, r) only WRITES state owned by n (its own protocol states, its
// own derived random stream, n-local scratch) while shared structures —
// other nodes' states, the cluster, the engine — are only READ, and no two
// nodes' rounds observe each other's writes within the same pass. Protocols
// that mutate peer state (push-pull gossip exchanges, Algorithm 3
// consolidation moving VMs) must not declare it and always run sequentially.
//
// Determinism is the caller's headline invariant: because each conforming
// Round is self-contained and draws from per-node randomness, the round's
// outcome is independent of execution order, so any worker count — including
// 1 — produces byte-identical simulations.
type ParallelRound interface {
	Protocol
	// Parallelizable reports whether Round currently satisfies the contract
	// above. Wrappers delegate to the wrapped protocol; a plain protocol
	// returns a constant true.
	Parallelizable() bool
}

// Observer is called at the end of every completed round, after all
// protocols ran on all nodes.
type Observer func(e *Engine, round int)

type protoReg struct {
	proto Protocol
	every int // run each `every` rounds
	from  int // first round in which the protocol runs
	until int // last round (inclusive); <0 means forever
}

// Engine drives one simulation run.
type Engine struct {
	rng       *RNG
	nodes     []*Node
	protocols []protoReg
	protoIdx  map[string]int
	queue     eventQueue
	now       int64
	observers []Observer
	pre       []Observer
	round     int
	stopReq   bool
	upCount   int

	// RoundPeriod is the virtual duration of one round. The paper uses
	// 2-minute rounds; the default is 120 (seconds).
	RoundPeriod int64

	// Workers bounds intra-run fork-join parallelism for protocols that
	// declare ParallelRound. <= 0 (the default) sizes automatically from the
	// machine-wide worker budget shared with RunReplications, so nested
	// parallelism cannot oversubscribe; 1 forces sequential execution; an
	// explicit count > 1 is honored exactly (differential and race tests
	// rely on that). Results are identical for every setting.
	Workers int
}

// NewEngine builds an engine with n nodes, all initially up, seeded by seed.
func NewEngine(n int, seed uint64) *Engine {
	e := &Engine{
		rng:         NewRNG(seed),
		protoIdx:    make(map[string]int),
		RoundPeriod: 120,
	}
	e.nodes = make([]*Node, n)
	for i := range e.nodes {
		e.nodes[i] = &Node{ID: i, up: true}
	}
	e.upCount = n
	return e
}

// RNG returns the engine's root random stream. Components should derive
// sub-streams rather than share it.
func (e *Engine) RNG() *RNG { return e.rng }

// Now returns the current virtual time.
func (e *Engine) Now() int64 { return e.now }

// Round returns the index of the round currently executing (or the last
// completed round between rounds).
func (e *Engine) Round() int { return e.round }

// N returns the number of nodes.
func (e *Engine) N() int { return len(e.nodes) }

// Nodes returns the node slice. Callers must not reorder it.
func (e *Engine) Nodes() []*Node { return e.nodes }

// Node returns the node with the given id.
func (e *Engine) Node(id int) *Node { return e.nodes[id] }

// UpCount returns the number of nodes currently up. The count is maintained
// incrementally by SetUp — observers call this every round, and the former
// O(n) scan was pure overhead on large clusters.
func (e *Engine) UpCount() int { return e.upCount }

// SetUp switches node n on or off. Switched-off nodes do not execute
// protocol rounds and are skipped by peer samplers that filter dead peers.
func (e *Engine) SetUp(n *Node, up bool) {
	if n.up == up {
		return
	}
	n.up = up
	if up {
		e.upCount++
	} else {
		e.upCount--
	}
}

// Register adds a protocol that runs every round, starting at round 0.
func (e *Engine) Register(p Protocol) {
	e.RegisterWindow(p, 1, 0, -1)
}

// RegisterEvery adds a protocol that runs once per `every` rounds.
func (e *Engine) RegisterEvery(p Protocol, every int) {
	e.RegisterWindow(p, every, 0, -1)
}

// RegisterWindow adds a protocol that runs every `every` rounds within the
// round window [from, until]; until < 0 means no upper bound. Registration
// order determines intra-round execution order.
func (e *Engine) RegisterWindow(p Protocol, every, from, until int) {
	if every < 1 {
		panic("sim: protocol period must be >= 1")
	}
	if _, dup := e.protoIdx[p.Name()]; dup {
		panic(fmt.Sprintf("sim: duplicate protocol %q", p.Name()))
	}
	e.protoIdx[p.Name()] = len(e.protocols)
	e.protocols = append(e.protocols, protoReg{proto: p, every: every, from: from, until: until})
}

// Observe adds an end-of-round observer.
func (e *Engine) Observe(o Observer) { e.observers = append(e.observers, o) }

// BeforeRound adds a hook that fires at the start of every round, before any
// protocol runs. The cluster binding uses it to refresh VM demand so that
// protocols observe the round's workload.
func (e *Engine) BeforeRound(o Observer) { e.pre = append(e.pre, o) }

// State returns node n's state for the named protocol. It panics on unknown
// protocol names: that is always a wiring bug, not a runtime condition.
func (e *Engine) State(name string, n *Node) any {
	i, ok := e.protoIdx[name]
	if !ok {
		panic(fmt.Sprintf("sim: unknown protocol %q", name))
	}
	return n.states[i]
}

// setup runs Setup for every protocol on every node, in registration order.
func (e *Engine) setup() {
	for _, n := range e.nodes {
		if n.states == nil {
			n.states = make([]any, len(e.protocols))
		}
	}
	for pi, reg := range e.protocols {
		for _, n := range e.nodes {
			if n.states[pi] == nil {
				n.states[pi] = reg.proto.Setup(e, n)
			}
		}
	}
}

// At schedules fn at virtual time t (>= now).
func (e *Engine) At(t int64, priority int, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{Time: t, Priority: priority, Fn: fn}
	e.queue.push(ev)
	return ev
}

// After schedules fn after d time units.
func (e *Engine) After(d int64, priority int, fn func()) *Event {
	return e.At(e.now+d, priority, fn)
}

// Cancel removes a scheduled event.
func (e *Engine) Cancel(ev *Event) { e.queue.remove(ev) }

// Stop requests that RunRounds return at the end of the current round.
func (e *Engine) Stop() { e.stopReq = true }

// RunRounds executes `rounds` synchronous protocol rounds. Within one round
// every registered protocol (in registration order) runs over all up nodes
// in a freshly shuffled order, then observers fire. Events scheduled via
// At/After with timestamps inside the round window fire before the round's
// protocol pass.
func (e *Engine) RunRounds(rounds int) {
	e.setup()
	order := make([]*Node, len(e.nodes))
	copy(order, e.nodes)
	shuffleRNG := e.rng.Derive(0x5aff1e)
	for r := 0; r < rounds; r++ {
		e.round = r
		roundStart := int64(r) * e.RoundPeriod
		e.drainUntil(roundStart)
		e.now = roundStart
		for _, o := range e.pre {
			o(e, r)
		}
		shuffleRNG.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for pi := range e.protocols {
			reg := &e.protocols[pi]
			if r < reg.from || (reg.until >= 0 && r > reg.until) {
				continue
			}
			if (r-reg.from)%reg.every != 0 {
				continue
			}
			if pr, ok := reg.proto.(ParallelRound); ok && pr.Parallelizable() {
				e.runNodesParallel(reg.proto, order, r)
				continue
			}
			for _, n := range order {
				if n.up {
					reg.proto.Round(e, n, r)
				}
			}
		}
		for _, o := range e.observers {
			o(e, r)
		}
		if e.stopReq {
			e.stopReq = false
			return
		}
	}
	e.round = rounds
	e.now = int64(rounds) * e.RoundPeriod
	e.drainUntil(e.now)
}

// runNodesParallel fans one ParallelRound protocol's pass over the shuffled
// node order. The order slice is partitioned into index-contiguous chunks and
// joined before returning, so observers never see a half-finished pass. The
// ParallelRound contract (per-node writes only, per-node randomness) makes
// the result independent of chunking and worker count.
func (e *Engine) runNodesParallel(p Protocol, order []*Node, r int) {
	// ~32 chunks regardless of worker count: fine-grained enough to balance
	// heterogeneous per-node work, coarse enough that scheduling is noise.
	chunk := (len(order) + 31) / 32
	par.ForChunks(len(order), chunk, e.Workers, func(lo, hi int) {
		for _, n := range order[lo:hi] {
			if n.up {
				p.Round(e, n, r)
			}
		}
	})
}

// drainUntil fires all pending events with Time <= t in order.
func (e *Engine) drainUntil(t int64) {
	for {
		next, ok := e.queue.peekTime()
		if !ok || next > t {
			return
		}
		ev := e.queue.pop()
		e.now = ev.Time
		ev.Fn()
	}
}

// RunEvents runs the engine purely event-driven until the queue empties or
// virtual time passes horizon (horizon < 0 means no bound). It is used by
// components that need finer-than-round timing.
func (e *Engine) RunEvents(horizon int64) {
	e.setup()
	for {
		next, ok := e.queue.peekTime()
		if !ok || (horizon >= 0 && next > horizon) {
			return
		}
		ev := e.queue.pop()
		e.now = ev.Time
		ev.Fn()
	}
}
