package sim

import "fmt"

// Message is a unit of communication routed through a Transport.
type Message struct {
	// From and To are node ids.
	From, To int
	// Proto names the handler that receives the message.
	Proto string
	// Payload is the protocol-defined content.
	Payload any
}

// Handler consumes messages for one protocol. Protocols that also need a
// periodic active thread implement Protocol as well and register with the
// engine in the usual way.
type Handler interface {
	// Name identifies the protocol the handler serves.
	Name() string
	// Deliver handles message m arriving at node n.
	Deliver(e *Engine, n *Node, m Message)
}

// LatencyFunc returns the virtual delivery delay for a message between two
// nodes.
type LatencyFunc func(from, to int) int64

// ConstantLatency returns a latency model with a fixed delay.
func ConstantLatency(d int64) LatencyFunc {
	return func(from, to int) int64 { return d }
}

// UniformLatency returns a latency model drawing uniformly from [min, max]
// per message using the given stream.
func UniformLatency(rng *RNG, min, max int64) LatencyFunc {
	if max < min {
		min, max = max, min
	}
	return func(from, to int) int64 {
		if max == min {
			return min
		}
		return min + int64(rng.Intn(int(max-min+1)))
	}
}

// Transport delivers messages between nodes through the engine's event
// queue, enabling PeerSim-style event-driven (asynchronous) protocols next
// to the cycle-driven ones. Deliveries to nodes that are down when the
// message arrives are dropped, as are messages when DropProb fires.
type Transport struct {
	e        *Engine
	latency  LatencyFunc
	handlers map[string]Handler

	// DropProb is the probability a message is silently lost (failure
	// injection for robustness tests).
	DropProb float64

	rng *RNG

	// Sent counts every message accepted from a live sender; Delivered and
	// Dropped partition those by outcome (loss injection, or a destination
	// that is down at delivery time). Once all in-flight messages have been
	// drained, Sent == Delivered + Dropped.
	Sent      int64
	Delivered int64
	Dropped   int64
}

// NewTransport builds a transport on engine e with the given latency model.
func NewTransport(e *Engine, latency LatencyFunc) *Transport {
	if latency == nil {
		latency = ConstantLatency(1)
	}
	return &Transport{
		e:        e,
		latency:  latency,
		handlers: make(map[string]Handler),
		rng:      e.RNG().Derive(0x7a5b07),
	}
}

// Handle registers a message handler. Registering two handlers for one
// protocol name panics: that is a wiring bug.
func (t *Transport) Handle(h Handler) {
	if _, dup := t.handlers[h.Name()]; dup {
		panic(fmt.Sprintf("sim: duplicate handler %q", h.Name()))
	}
	t.handlers[h.Name()] = h
}

// Send schedules delivery of a message. Sending from a down node is a
// no-op (dead nodes cannot talk); the recipient's liveness is checked at
// delivery time, so messages in flight to a node that dies are lost.
func (t *Transport) Send(from, to int, proto string, payload any) {
	h, ok := t.handlers[proto]
	if !ok {
		panic(fmt.Sprintf("sim: no handler for protocol %q", proto))
	}
	if !t.e.Node(from).Up() {
		return
	}
	t.Sent++
	if t.DropProb > 0 && t.rng.Bernoulli(t.DropProb) {
		t.Dropped++
		return
	}
	m := Message{From: from, To: to, Proto: proto, Payload: payload}
	t.e.After(t.latency(from, to), 1, func() {
		dst := t.e.Node(to)
		if !dst.Up() {
			t.Dropped++
			return
		}
		t.Delivered++
		h.Deliver(t.e, dst, m)
	})
}
