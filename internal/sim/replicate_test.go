package sim

import (
	"sync/atomic"
	"testing"
)

func TestRunReplicationsAllRun(t *testing.T) {
	results := RunReplications(10, 4, func(rep int) int { return rep * rep })
	if len(results) != 10 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r != i*i {
			t.Fatalf("result[%d] = %d", i, r)
		}
	}
}

func TestRunReplicationsZero(t *testing.T) {
	if got := RunReplications(0, 2, func(int) int { return 1 }); got != nil {
		t.Fatalf("expected nil, got %v", got)
	}
	if got := RunReplications(-3, 2, func(int) int { return 1 }); got != nil {
		t.Fatalf("expected nil for negative count, got %v", got)
	}
}

func TestRunReplicationsDefaultWorkers(t *testing.T) {
	var ran atomic.Int64
	RunReplications(5, 0, func(rep int) struct{} {
		ran.Add(1)
		return struct{}{}
	})
	if ran.Load() != 5 {
		t.Fatalf("ran %d", ran.Load())
	}
}

func TestRunReplicationsBoundedConcurrency(t *testing.T) {
	var cur, max atomic.Int64
	RunReplications(20, 3, func(rep int) struct{} {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		cur.Add(-1)
		return struct{}{}
	})
	if max.Load() > 3 {
		t.Fatalf("observed %d concurrent workers, want <= 3", max.Load())
	}
}

func TestReplicationSeedDistinct(t *testing.T) {
	seen := make(map[uint64]int)
	for rep := 0; rep < 100; rep++ {
		s := ReplicationSeed(12345, rep)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between reps %d and %d", prev, rep)
		}
		seen[s] = rep
	}
}

func TestReplicationSeedDeterministic(t *testing.T) {
	if ReplicationSeed(9, 4) != ReplicationSeed(9, 4) {
		t.Fatal("not deterministic")
	}
	if ReplicationSeed(9, 4) == ReplicationSeed(10, 4) {
		t.Fatal("different experiment seeds should differ")
	}
}
