package sim

import (
	"sync/atomic"
	"testing"
)

func TestRunReplicationsAllRun(t *testing.T) {
	results := RunReplications(10, 4, func(rep int) int { return rep * rep })
	if len(results) != 10 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r != i*i {
			t.Fatalf("result[%d] = %d", i, r)
		}
	}
}

func TestRunReplicationsZero(t *testing.T) {
	if got := RunReplications(0, 2, func(int) int { return 1 }); got != nil {
		t.Fatalf("expected nil, got %v", got)
	}
	if got := RunReplications(-3, 2, func(int) int { return 1 }); got != nil {
		t.Fatalf("expected nil for negative count, got %v", got)
	}
}

func TestRunReplicationsDefaultWorkers(t *testing.T) {
	var ran atomic.Int64
	RunReplications(5, 0, func(rep int) struct{} {
		ran.Add(1)
		return struct{}{}
	})
	if ran.Load() != 5 {
		t.Fatalf("ran %d", ran.Load())
	}
}

func TestRunReplicationsBoundedConcurrency(t *testing.T) {
	var cur, max atomic.Int64
	RunReplications(20, 3, func(rep int) struct{} {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		cur.Add(-1)
		return struct{}{}
	})
	if max.Load() > 3 {
		t.Fatalf("observed %d concurrent workers, want <= 3", max.Load())
	}
}

func TestReplicationSeedDistinct(t *testing.T) {
	seen := make(map[uint64]int)
	for rep := 0; rep < 100; rep++ {
		s := ReplicationSeed(12345, rep)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between reps %d and %d", prev, rep)
		}
		seen[s] = rep
	}
}

func TestReplicationSeedDeterministic(t *testing.T) {
	if ReplicationSeed(9, 4) != ReplicationSeed(9, 4) {
		t.Fatal("not deterministic")
	}
	if ReplicationSeed(9, 4) == ReplicationSeed(10, 4) {
		t.Fatal("different experiment seeds should differ")
	}
}

// legacyReplicationSeed is the original O(rep) warm-up loop. The constant-time
// jump in ReplicationSeed must reproduce it exactly — these seeds are baked
// into every golden fingerprint in the repo.
func legacyReplicationSeed(experimentSeed uint64, rep int) uint64 {
	x := experimentSeed ^ 0x2545f4914f6cdd1d
	for i := 0; i <= rep; i++ {
		_ = splitmix64(&x)
	}
	return splitmix64(&x)
}

func TestReplicationSeedMatchesLegacyLoop(t *testing.T) {
	for _, expSeed := range []uint64{0, 1, 42, 0xdeadbeef, ^uint64(0)} {
		for rep := 0; rep < 32; rep++ {
			got := ReplicationSeed(expSeed, rep)
			want := legacyReplicationSeed(expSeed, rep)
			if got != want {
				t.Fatalf("ReplicationSeed(%#x, %d) = %#x, legacy loop = %#x", expSeed, rep, got, want)
			}
		}
	}
}

func TestRunReplicationsWorkerClamping(t *testing.T) {
	// n < workers: every rep still runs exactly once.
	var ran atomic.Int64
	results := RunReplications(3, 16, func(rep int) int {
		ran.Add(1)
		return rep
	})
	if ran.Load() != 3 || len(results) != 3 {
		t.Fatalf("ran %d reps, got %d results; want 3", ran.Load(), len(results))
	}
	for i, r := range results {
		if r != i {
			t.Fatalf("result[%d] = %d", i, r)
		}
	}
	// workers == 1 runs inline and in order.
	var order []int
	RunReplications(5, 1, func(rep int) struct{} {
		order = append(order, rep)
		return struct{}{}
	})
	for i, r := range order {
		if r != i {
			t.Fatalf("sequential run out of order: %v", order)
		}
	}
}

func TestRunReplicationsPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "replication failed" {
					t.Fatalf("workers=%d: recovered %v, want \"replication failed\"", workers, r)
				}
			}()
			RunReplications(8, workers, func(rep int) int {
				if rep == 5 {
					panic("replication failed")
				}
				return rep
			})
			t.Fatalf("workers=%d: RunReplications returned without panicking", workers)
		}()
	}
}
