package sim

import (
	"github.com/glap-sim/glap/internal/par"
)

// RunReplications executes run(rep) for rep in [0, n) across a bounded worker
// pool and returns the results indexed by replication. The paper repeats
// every experiment 20 times; replications are independent simulations, so
// they parallelise perfectly.
//
// workers follows the par package semantics: <= 0 selects GOMAXPROCS (capped
// by the machine-wide budget shared with intra-run fork-joins), 1 runs
// inline, an explicit count > 1 is honored exactly (clamped to n). A panic in
// run is re-raised in the caller after the pool has drained.
func RunReplications[T any](n, workers int, run func(rep int) T) []T {
	if n <= 0 {
		return nil
	}
	results := make([]T, n)
	par.ForChunks(n, 1, workers, func(lo, hi int) {
		for rep := lo; rep < hi; rep++ {
			results[rep] = run(rep)
		}
	})
	return results
}

// ReplicationSeed derives a per-replication root seed from an experiment
// seed. Using a fixed mixing function (rather than seed+rep) keeps the
// replication streams far apart in the generator's state space.
//
// The warm-up used to be a loop of rep+1 discarded splitmix64 calls — O(rep)
// per seed, quadratic across a replication set. Each discarded call only
// advances the state by the splitmix64 increment, so the whole warm-up is a
// single jump of (rep+1) increments; the produced values are unchanged
// (TestReplicationSeedMatchesLegacyLoop pins the first 32).
func ReplicationSeed(experimentSeed uint64, rep int) uint64 {
	jumps := rep + 1
	if jumps < 0 {
		jumps = 0
	}
	x := experimentSeed ^ 0x2545f4914f6cdd1d
	x += uint64(jumps) * 0x9e3779b97f4a7c15
	return splitmix64(&x)
}
