package sim

import (
	"runtime"
	"sync"
)

// RunReplications executes run(rep) for rep in [0, n) across a bounded worker
// pool and returns the results indexed by replication. The paper repeats
// every experiment 20 times; replications are independent simulations, so
// they parallelise perfectly.
//
// workers <= 0 selects GOMAXPROCS workers.
func RunReplications[T any](n, workers int, run func(rep int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]T, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := range next {
				results[rep] = run(rep)
			}
		}()
	}
	for rep := 0; rep < n; rep++ {
		next <- rep
	}
	close(next)
	wg.Wait()
	return results
}

// ReplicationSeed derives a per-replication root seed from an experiment
// seed. Using a fixed mixing function (rather than seed+rep) keeps the
// replication streams far apart in the generator's state space.
func ReplicationSeed(experimentSeed uint64, rep int) uint64 {
	x := experimentSeed ^ 0x2545f4914f6cdd1d
	for i := 0; i <= rep; i++ {
		_ = splitmix64(&x)
	}
	return splitmix64(&x)
}
