package sim

import "testing"

func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	var fired []int
	mk := func(tm int64, prio, id int) *Event {
		return &Event{Time: tm, Priority: prio, Fn: func() { fired = append(fired, id) }}
	}
	q.push(mk(5, 0, 1))
	q.push(mk(3, 0, 2))
	q.push(mk(3, -1, 3)) // same time, higher priority (lower value)
	q.push(mk(3, 0, 4))  // same time+prio as id 2, inserted later
	q.push(mk(1, 9, 5))

	for {
		e := q.pop()
		if e == nil {
			break
		}
		e.Fn()
	}
	want := []int{5, 3, 2, 4, 1}
	if len(fired) != len(want) {
		t.Fatalf("fired %v", fired)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("order %v, want %v", fired, want)
		}
	}
}

func TestEventQueueRemove(t *testing.T) {
	var q eventQueue
	fired := 0
	e1 := &Event{Time: 1, Fn: func() { fired++ }}
	e2 := &Event{Time: 2, Fn: func() { fired++ }}
	q.push(e1)
	q.push(e2)
	q.remove(e1)
	if !e1.Cancelled() {
		t.Fatal("e1 should be cancelled")
	}
	for {
		e := q.pop()
		if e == nil {
			break
		}
		e.Fn()
	}
	if fired != 1 {
		t.Fatalf("fired %d events, want 1", fired)
	}
	// Removing an already-fired or cancelled event is a no-op.
	q.remove(e1)
	q.remove(e2)
}

func TestEventQueuePeekTime(t *testing.T) {
	var q eventQueue
	if _, ok := q.peekTime(); ok {
		t.Fatal("peek on empty queue should report !ok")
	}
	q.push(&Event{Time: 9, Fn: func() {}})
	q.push(&Event{Time: 4, Fn: func() {}})
	if tm, ok := q.peekTime(); !ok || tm != 4 {
		t.Fatalf("peek = %d, %v", tm, ok)
	}
	q.pop()
	if tm, ok := q.peekTime(); !ok || tm != 9 {
		t.Fatalf("peek after pop = %d, %v", tm, ok)
	}
}
