package sim

import "testing"

func TestReqTableExpires(t *testing.T) {
	e := NewEngine(1, 1)
	rt := NewReqTable(e)
	var expired []uint64
	id := rt.Add(10, func(id uint64) { expired = append(expired, id) })
	if rt.Open() != 1 {
		t.Fatalf("Open = %d, want 1", rt.Open())
	}
	e.RunEvents(-1)
	if len(expired) != 1 || expired[0] != id {
		t.Fatalf("expired = %v, want [%d]", expired, id)
	}
	if rt.Open() != 0 {
		t.Fatalf("Open = %d after expiry", rt.Open())
	}
	// Resolving after expiry is a safe no-op.
	if rt.Resolve(id) {
		t.Fatal("Resolve succeeded on an expired request")
	}
}

func TestReqTableResolveCancelsTimeout(t *testing.T) {
	e := NewEngine(1, 1)
	rt := NewReqTable(e)
	fired := false
	id := rt.Add(10, func(uint64) { fired = true })
	if !rt.Resolve(id) {
		t.Fatal("Resolve failed on a pending request")
	}
	if rt.Resolve(id) {
		t.Fatal("second Resolve succeeded")
	}
	e.RunEvents(-1)
	if fired {
		t.Fatal("timeout fired despite Resolve")
	}
	if rt.Open() != 0 {
		t.Fatalf("Open = %d", rt.Open())
	}
}

func TestReqTableRetries(t *testing.T) {
	e := NewEngine(1, 1)
	rt := NewReqTable(e)
	sends, failed := 0, 0
	rt.AddRetry(10, 3, func() { sends++ }, func(uint64) { failed++ })
	if sends != 1 {
		t.Fatalf("initial sends = %d, want 1", sends)
	}
	e.RunEvents(-1)
	if sends != 3 {
		t.Fatalf("sends = %d, want 3 attempts", sends)
	}
	if failed != 1 {
		t.Fatalf("failed = %d, want exactly 1", failed)
	}
}

func TestReqTableResolveStopsRetries(t *testing.T) {
	e := NewEngine(1, 1)
	rt := NewReqTable(e)
	sends, failed := 0, 0
	var id uint64
	id = rt.AddRetry(10, 5, func() {
		sends++
		if sends == 2 {
			// The "response" arrives during the second attempt's window.
			e.After(3, 1, func() { rt.Resolve(id) })
		}
	}, func(uint64) { failed++ })
	e.RunEvents(-1)
	if sends != 2 {
		t.Fatalf("sends = %d, want retries to stop after resolve", sends)
	}
	if failed != 0 {
		t.Fatalf("failed = %d, want 0", failed)
	}
}

func TestReqTableDistinctIDs(t *testing.T) {
	e := NewEngine(1, 1)
	rt := NewReqTable(e)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		id := rt.Add(1000, nil)
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}

// TestReqTableReplyAtDeadlineWins pins the priority contract AddRetry
// documents: Transport delivers responses at priority 1 and deadlines fire
// at priority 2, so a reply landing at exactly the timeout's timestamp
// resolves the request and the expiry callback must not run.
func TestReqTableReplyAtDeadlineWins(t *testing.T) {
	e := NewEngine(1, 1)
	rt := NewReqTable(e)
	expired := false
	id := rt.Add(10, func(uint64) { expired = true })
	resolved := false
	e.After(10, 1, func() { resolved = rt.Resolve(id) })
	e.RunEvents(-1)
	if !resolved {
		t.Fatal("reply sharing the deadline's timestamp failed to resolve the request")
	}
	if expired {
		t.Fatal("timeout fired despite the same-timestamp reply")
	}
	if rt.Open() != 0 {
		t.Fatalf("Open = %d", rt.Open())
	}
}

// TestReqTableReplyBehindDeadlineLoses is the converse: a reply queued
// behind the deadline at the same timestamp (priority 3) finds the request
// already expired.
func TestReqTableReplyBehindDeadlineLoses(t *testing.T) {
	e := NewEngine(1, 1)
	rt := NewReqTable(e)
	expired := false
	id := rt.Add(10, func(uint64) { expired = true })
	resolved := true
	e.After(10, 3, func() { resolved = rt.Resolve(id) })
	e.RunEvents(-1)
	if !expired {
		t.Fatal("timeout did not fire")
	}
	if resolved {
		t.Fatal("reply resolved a request that had already expired")
	}
}

// TestReqTableRetryExhaustionTiming pins the retry schedule: attempts fire
// at timeout boundaries, onFail runs exactly once when the last deadline
// lapses, and the table is empty afterwards so nothing can leak.
func TestReqTableRetryExhaustionTiming(t *testing.T) {
	e := NewEngine(1, 1)
	rt := NewReqTable(e)
	var sendTimes, failTimes []int64
	id := rt.AddRetry(10, 3, func() { sendTimes = append(sendTimes, e.Now()) },
		func(uint64) { failTimes = append(failTimes, e.Now()) })
	e.RunEvents(-1)
	wantSends := []int64{0, 10, 20}
	if len(sendTimes) != len(wantSends) {
		t.Fatalf("sends at %v, want %v", sendTimes, wantSends)
	}
	for i, at := range wantSends {
		if sendTimes[i] != at {
			t.Fatalf("sends at %v, want %v", sendTimes, wantSends)
		}
	}
	if len(failTimes) != 1 || failTimes[0] != 30 {
		t.Fatalf("onFail at %v, want exactly once at t=30", failTimes)
	}
	if rt.Open() != 0 {
		t.Fatalf("Open = %d after exhaustion", rt.Open())
	}
	if rt.Resolve(id) {
		t.Fatal("Resolve succeeded after retry exhaustion")
	}
}
