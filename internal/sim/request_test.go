package sim

import "testing"

func TestReqTableExpires(t *testing.T) {
	e := NewEngine(1, 1)
	rt := NewReqTable(e)
	var expired []uint64
	id := rt.Add(10, func(id uint64) { expired = append(expired, id) })
	if rt.Open() != 1 {
		t.Fatalf("Open = %d, want 1", rt.Open())
	}
	e.RunEvents(-1)
	if len(expired) != 1 || expired[0] != id {
		t.Fatalf("expired = %v, want [%d]", expired, id)
	}
	if rt.Open() != 0 {
		t.Fatalf("Open = %d after expiry", rt.Open())
	}
	// Resolving after expiry is a safe no-op.
	if rt.Resolve(id) {
		t.Fatal("Resolve succeeded on an expired request")
	}
}

func TestReqTableResolveCancelsTimeout(t *testing.T) {
	e := NewEngine(1, 1)
	rt := NewReqTable(e)
	fired := false
	id := rt.Add(10, func(uint64) { fired = true })
	if !rt.Resolve(id) {
		t.Fatal("Resolve failed on a pending request")
	}
	if rt.Resolve(id) {
		t.Fatal("second Resolve succeeded")
	}
	e.RunEvents(-1)
	if fired {
		t.Fatal("timeout fired despite Resolve")
	}
	if rt.Open() != 0 {
		t.Fatalf("Open = %d", rt.Open())
	}
}

func TestReqTableRetries(t *testing.T) {
	e := NewEngine(1, 1)
	rt := NewReqTable(e)
	sends, failed := 0, 0
	rt.AddRetry(10, 3, func() { sends++ }, func(uint64) { failed++ })
	if sends != 1 {
		t.Fatalf("initial sends = %d, want 1", sends)
	}
	e.RunEvents(-1)
	if sends != 3 {
		t.Fatalf("sends = %d, want 3 attempts", sends)
	}
	if failed != 1 {
		t.Fatalf("failed = %d, want exactly 1", failed)
	}
}

func TestReqTableResolveStopsRetries(t *testing.T) {
	e := NewEngine(1, 1)
	rt := NewReqTable(e)
	sends, failed := 0, 0
	var id uint64
	id = rt.AddRetry(10, 5, func() {
		sends++
		if sends == 2 {
			// The "response" arrives during the second attempt's window.
			e.After(3, 1, func() { rt.Resolve(id) })
		}
	}, func(uint64) { failed++ })
	e.RunEvents(-1)
	if sends != 2 {
		t.Fatalf("sends = %d, want retries to stop after resolve", sends)
	}
	if failed != 0 {
		t.Fatalf("failed = %d, want 0", failed)
	}
}

func TestReqTableDistinctIDs(t *testing.T) {
	e := NewEngine(1, 1)
	rt := NewReqTable(e)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		id := rt.Add(1000, nil)
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
}
