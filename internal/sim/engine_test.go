package sim

import (
	"fmt"
	"testing"
)

// countingProto records how many times Round ran per node.
type countingProto struct {
	name   string
	rounds map[int][]int // node -> rounds seen
	setups int
}

func newCountingProto(name string) *countingProto {
	return &countingProto{name: name, rounds: make(map[int][]int)}
}

func (p *countingProto) Name() string { return p.name }
func (p *countingProto) Setup(e *Engine, n *Node) any {
	p.setups++
	return &struct{ v int }{}
}
func (p *countingProto) Round(e *Engine, n *Node, r int) {
	p.rounds[n.ID] = append(p.rounds[n.ID], r)
}

func TestEngineRunsAllNodesEveryRound(t *testing.T) {
	e := NewEngine(5, 1)
	p := newCountingProto("p")
	e.Register(p)
	e.RunRounds(3)
	if p.setups != 5 {
		t.Fatalf("setups = %d, want 5", p.setups)
	}
	for id := 0; id < 5; id++ {
		if len(p.rounds[id]) != 3 {
			t.Fatalf("node %d ran %d rounds, want 3", id, len(p.rounds[id]))
		}
	}
}

func TestEngineWindowAndPeriod(t *testing.T) {
	e := NewEngine(2, 1)
	p := newCountingProto("p")
	e.RegisterWindow(p, 2, 3, 7) // rounds 3, 5, 7
	e.RunRounds(10)
	got := p.rounds[0]
	want := []int{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("rounds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rounds %v, want %v", got, want)
		}
	}
}

func TestEngineSkipsDownNodes(t *testing.T) {
	e := NewEngine(3, 1)
	p := newCountingProto("p")
	e.Register(p)
	e.SetUp(e.Node(1), false)
	e.RunRounds(4)
	if len(p.rounds[1]) != 0 {
		t.Fatalf("down node ran %d rounds", len(p.rounds[1]))
	}
	if len(p.rounds[0]) != 4 || len(p.rounds[2]) != 4 {
		t.Fatal("up nodes should run every round")
	}
	if e.UpCount() != 2 {
		t.Fatalf("UpCount = %d", e.UpCount())
	}
}

func TestEngineHookOrdering(t *testing.T) {
	e := NewEngine(1, 1)
	var order []string
	e.BeforeRound(func(e *Engine, r int) { order = append(order, fmt.Sprintf("pre%d", r)) })
	p := &funcProto{name: "p", fn: func(e *Engine, n *Node, r int) {
		order = append(order, fmt.Sprintf("round%d", r))
	}}
	e.Register(p)
	e.Observe(func(e *Engine, r int) { order = append(order, fmt.Sprintf("post%d", r)) })
	e.RunRounds(2)
	want := []string{"pre0", "round0", "post0", "pre1", "round1", "post1"}
	if len(order) != len(want) {
		t.Fatalf("order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

type funcProto struct {
	name  string
	fn    func(e *Engine, n *Node, r int)
	setup func(e *Engine, n *Node) any
}

func (p *funcProto) Name() string { return p.name }
func (p *funcProto) Setup(e *Engine, n *Node) any {
	if p.setup != nil {
		return p.setup(e, n)
	}
	return struct{}{}
}
func (p *funcProto) Round(e *Engine, n *Node, r int) { p.fn(e, n, r) }

func TestEngineStateAccess(t *testing.T) {
	e := NewEngine(2, 1)
	p := &funcProto{
		name:  "stateful",
		setup: func(e *Engine, n *Node) any { return &[]int{n.ID * 10} },
		fn:    func(e *Engine, n *Node, r int) {},
	}
	e.Register(p)
	e.RunRounds(1)
	got := e.State("stateful", e.Node(1)).(*[]int)
	if (*got)[0] != 10 {
		t.Fatalf("state = %v", *got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown protocol")
		}
	}()
	e.State("nope", e.Node(0))
}

func TestEngineDuplicateProtocolPanics(t *testing.T) {
	e := NewEngine(1, 1)
	e.Register(newCountingProto("dup"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Register(newCountingProto("dup"))
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine(10, 77)
		var visits []int
		e.Register(&funcProto{name: "v", fn: func(e *Engine, n *Node, r int) {
			visits = append(visits, n.ID)
		}})
		e.RunRounds(5)
		return visits
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEngineShufflesNodeOrder(t *testing.T) {
	e := NewEngine(20, 5)
	var firstRound, secondRound []int
	e.Register(&funcProto{name: "v", fn: func(e *Engine, n *Node, r int) {
		if r == 0 {
			firstRound = append(firstRound, n.ID)
		} else if r == 1 {
			secondRound = append(secondRound, n.ID)
		}
	}})
	e.RunRounds(2)
	same := true
	for i := range firstRound {
		if firstRound[i] != secondRound[i] {
			same = false
		}
	}
	if same {
		t.Fatal("node order identical across rounds; shuffle not applied")
	}
}

func TestEngineEvents(t *testing.T) {
	e := NewEngine(1, 1)
	e.Register(newCountingProto("p"))
	var fired []int64
	e.At(150, 0, func() { fired = append(fired, e.Now()) })
	e.At(250, 0, func() { fired = append(fired, e.Now()) })
	e.RunRounds(3) // rounds at t=0,120,240; horizon 360
	if len(fired) != 2 || fired[0] != 150 || fired[1] != 250 {
		t.Fatalf("fired %v", fired)
	}
}

func TestEngineAfterAndCancel(t *testing.T) {
	e := NewEngine(1, 1)
	e.Register(newCountingProto("p"))
	fired := 0
	ev := e.After(100, 0, func() { fired++ })
	e.After(200, 0, func() { fired++ })
	e.Cancel(ev)
	e.RunRounds(3)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1, 1)
	rounds := 0
	e.Register(&funcProto{name: "p", fn: func(e *Engine, n *Node, r int) {
		rounds++
		if r == 2 {
			e.Stop()
		}
	}})
	e.RunRounds(10)
	if rounds != 3 {
		t.Fatalf("ran %d rounds, want 3", rounds)
	}
}

func TestEngineRunEvents(t *testing.T) {
	e := NewEngine(1, 1)
	var order []string
	e.At(10, 0, func() { order = append(order, "a") })
	e.At(5, 0, func() {
		order = append(order, "b")
		e.After(2, 0, func() { order = append(order, "c") })
	})
	e.RunEvents(-1)
	want := []string{"b", "c", "a"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v", order)
		}
	}
}

func TestEngineRunEventsHorizon(t *testing.T) {
	e := NewEngine(1, 1)
	fired := 0
	e.At(5, 0, func() { fired++ })
	e.At(50, 0, func() { fired++ })
	e.RunEvents(10)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestRegisterPanicsOnBadPeriod(t *testing.T) {
	e := NewEngine(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.RegisterEvery(newCountingProto("p"), 0)
}
