package sim

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// countingProto records how many times Round ran per node.
type countingProto struct {
	name   string
	rounds map[int][]int // node -> rounds seen
	setups int
}

func newCountingProto(name string) *countingProto {
	return &countingProto{name: name, rounds: make(map[int][]int)}
}

func (p *countingProto) Name() string { return p.name }
func (p *countingProto) Setup(e *Engine, n *Node) any {
	p.setups++
	return &struct{ v int }{}
}
func (p *countingProto) Round(e *Engine, n *Node, r int) {
	p.rounds[n.ID] = append(p.rounds[n.ID], r)
}

func TestEngineRunsAllNodesEveryRound(t *testing.T) {
	e := NewEngine(5, 1)
	p := newCountingProto("p")
	e.Register(p)
	e.RunRounds(3)
	if p.setups != 5 {
		t.Fatalf("setups = %d, want 5", p.setups)
	}
	for id := 0; id < 5; id++ {
		if len(p.rounds[id]) != 3 {
			t.Fatalf("node %d ran %d rounds, want 3", id, len(p.rounds[id]))
		}
	}
}

func TestEngineWindowAndPeriod(t *testing.T) {
	e := NewEngine(2, 1)
	p := newCountingProto("p")
	e.RegisterWindow(p, 2, 3, 7) // rounds 3, 5, 7
	e.RunRounds(10)
	got := p.rounds[0]
	want := []int{3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("rounds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rounds %v, want %v", got, want)
		}
	}
}

func TestEngineSkipsDownNodes(t *testing.T) {
	e := NewEngine(3, 1)
	p := newCountingProto("p")
	e.Register(p)
	e.SetUp(e.Node(1), false)
	e.RunRounds(4)
	if len(p.rounds[1]) != 0 {
		t.Fatalf("down node ran %d rounds", len(p.rounds[1]))
	}
	if len(p.rounds[0]) != 4 || len(p.rounds[2]) != 4 {
		t.Fatal("up nodes should run every round")
	}
	if e.UpCount() != 2 {
		t.Fatalf("UpCount = %d", e.UpCount())
	}
}

func TestEngineHookOrdering(t *testing.T) {
	e := NewEngine(1, 1)
	var order []string
	e.BeforeRound(func(e *Engine, r int) { order = append(order, fmt.Sprintf("pre%d", r)) })
	p := &funcProto{name: "p", fn: func(e *Engine, n *Node, r int) {
		order = append(order, fmt.Sprintf("round%d", r))
	}}
	e.Register(p)
	e.Observe(func(e *Engine, r int) { order = append(order, fmt.Sprintf("post%d", r)) })
	e.RunRounds(2)
	want := []string{"pre0", "round0", "post0", "pre1", "round1", "post1"}
	if len(order) != len(want) {
		t.Fatalf("order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

type funcProto struct {
	name  string
	fn    func(e *Engine, n *Node, r int)
	setup func(e *Engine, n *Node) any
}

func (p *funcProto) Name() string { return p.name }
func (p *funcProto) Setup(e *Engine, n *Node) any {
	if p.setup != nil {
		return p.setup(e, n)
	}
	return struct{}{}
}
func (p *funcProto) Round(e *Engine, n *Node, r int) { p.fn(e, n, r) }

func TestEngineStateAccess(t *testing.T) {
	e := NewEngine(2, 1)
	p := &funcProto{
		name:  "stateful",
		setup: func(e *Engine, n *Node) any { return &[]int{n.ID * 10} },
		fn:    func(e *Engine, n *Node, r int) {},
	}
	e.Register(p)
	e.RunRounds(1)
	got := e.State("stateful", e.Node(1)).(*[]int)
	if (*got)[0] != 10 {
		t.Fatalf("state = %v", *got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown protocol")
		}
	}()
	e.State("nope", e.Node(0))
}

func TestEngineDuplicateProtocolPanics(t *testing.T) {
	e := NewEngine(1, 1)
	e.Register(newCountingProto("dup"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Register(newCountingProto("dup"))
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine(10, 77)
		var visits []int
		e.Register(&funcProto{name: "v", fn: func(e *Engine, n *Node, r int) {
			visits = append(visits, n.ID)
		}})
		e.RunRounds(5)
		return visits
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEngineShufflesNodeOrder(t *testing.T) {
	e := NewEngine(20, 5)
	var firstRound, secondRound []int
	e.Register(&funcProto{name: "v", fn: func(e *Engine, n *Node, r int) {
		if r == 0 {
			firstRound = append(firstRound, n.ID)
		} else if r == 1 {
			secondRound = append(secondRound, n.ID)
		}
	}})
	e.RunRounds(2)
	same := true
	for i := range firstRound {
		if firstRound[i] != secondRound[i] {
			same = false
		}
	}
	if same {
		t.Fatal("node order identical across rounds; shuffle not applied")
	}
}

func TestEngineEvents(t *testing.T) {
	e := NewEngine(1, 1)
	e.Register(newCountingProto("p"))
	var fired []int64
	e.At(150, 0, func() { fired = append(fired, e.Now()) })
	e.At(250, 0, func() { fired = append(fired, e.Now()) })
	e.RunRounds(3) // rounds at t=0,120,240; horizon 360
	if len(fired) != 2 || fired[0] != 150 || fired[1] != 250 {
		t.Fatalf("fired %v", fired)
	}
}

func TestEngineAfterAndCancel(t *testing.T) {
	e := NewEngine(1, 1)
	e.Register(newCountingProto("p"))
	fired := 0
	ev := e.After(100, 0, func() { fired++ })
	e.After(200, 0, func() { fired++ })
	e.Cancel(ev)
	e.RunRounds(3)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1, 1)
	rounds := 0
	e.Register(&funcProto{name: "p", fn: func(e *Engine, n *Node, r int) {
		rounds++
		if r == 2 {
			e.Stop()
		}
	}})
	e.RunRounds(10)
	if rounds != 3 {
		t.Fatalf("ran %d rounds, want 3", rounds)
	}
}

func TestEngineRunEvents(t *testing.T) {
	e := NewEngine(1, 1)
	var order []string
	e.At(10, 0, func() { order = append(order, "a") })
	e.At(5, 0, func() {
		order = append(order, "b")
		e.After(2, 0, func() { order = append(order, "c") })
	})
	e.RunEvents(-1)
	want := []string{"b", "c", "a"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v", order)
		}
	}
}

func TestEngineRunEventsHorizon(t *testing.T) {
	e := NewEngine(1, 1)
	fired := 0
	e.At(5, 0, func() { fired++ })
	e.At(50, 0, func() { fired++ })
	e.RunEvents(10)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestRegisterPanicsOnBadPeriod(t *testing.T) {
	e := NewEngine(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.RegisterEvery(newCountingProto("p"), 0)
}

// parallelProto is a ParallelRound-conforming protocol: each Round writes
// only the active node's own counter slot.
type parallelProto struct {
	name   string
	visits []atomic.Int64 // indexed by node ID
	par    bool
}

func (p *parallelProto) Name() string { return p.name }
func (p *parallelProto) Setup(e *Engine, n *Node) any {
	if p.visits == nil {
		p.visits = make([]atomic.Int64, e.N())
	}
	return nil
}
func (p *parallelProto) Round(e *Engine, n *Node, r int) { p.visits[n.ID].Add(1) }
func (p *parallelProto) Parallelizable() bool            { return p.par }

func TestParallelRoundVisitsEveryUpNodeOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 8} {
		e := NewEngine(100, 7)
		e.Workers = workers
		p := &parallelProto{name: "pp", par: true}
		e.Register(p)
		e.SetUp(e.Node(13), false)
		e.SetUp(e.Node(77), false)
		e.RunRounds(4)
		for id := range p.visits {
			want := int64(4)
			if id == 13 || id == 77 {
				want = 0
			}
			if got := p.visits[id].Load(); got != want {
				t.Fatalf("workers=%d: node %d visited %d times, want %d", workers, id, got, want)
			}
		}
	}
}

func TestParallelRoundFalseRunsSequential(t *testing.T) {
	// Parallelizable() == false must take the plain sequential path even when
	// Workers > 1; the per-node counts still come out right.
	e := NewEngine(20, 7)
	e.Workers = 8
	p := &parallelProto{name: "pp", par: false}
	e.Register(p)
	e.RunRounds(2)
	for id := range p.visits {
		if got := p.visits[id].Load(); got != 2 {
			t.Fatalf("node %d visited %d times, want 2", id, got)
		}
	}
}

// panicProto panics on one specific node's round.
type panicProto struct{ par bool }

func (p *panicProto) Name() string                 { return "panicer" }
func (p *panicProto) Setup(e *Engine, n *Node) any { return nil }
func (p *panicProto) Round(e *Engine, n *Node, r int) {
	if n.ID == 9 {
		panic("round blew up")
	}
}
func (p *panicProto) Parallelizable() bool { return p.par }

func TestParallelRoundPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 8} {
		func() {
			defer func() {
				if r := recover(); r != "round blew up" {
					t.Fatalf("workers=%d: recovered %v", workers, r)
				}
			}()
			e := NewEngine(40, 7)
			e.Workers = workers
			e.Register(&panicProto{par: true})
			e.RunRounds(1)
			t.Fatalf("workers=%d: RunRounds returned without panicking", workers)
		}()
	}
}

func TestUpCountTracksScan(t *testing.T) {
	e := NewEngine(50, 3)
	scan := func() int {
		c := 0
		for _, n := range e.Nodes() {
			if n.Up() {
				c++
			}
		}
		return c
	}
	rng := NewRNG(99)
	for i := 0; i < 500; i++ {
		n := e.Node(rng.Intn(50))
		e.SetUp(n, rng.Bool())
		if got, want := e.UpCount(), scan(); got != want {
			t.Fatalf("step %d: UpCount() = %d, scan = %d", i, got, want)
		}
	}
	// Redundant transitions must not skew the counter.
	n := e.Node(0)
	e.SetUp(n, true)
	e.SetUp(n, true)
	e.SetUp(n, true)
	if got, want := e.UpCount(), scan(); got != want {
		t.Fatalf("after redundant SetUp: UpCount() = %d, scan = %d", got, want)
	}
}

func TestBoundNodeRNGPerNodeStreamsStableAcrossEngines(t *testing.T) {
	var b BoundNodeRNG
	e1 := NewEngine(8, 42)
	// Per-node streams are deterministic functions of (seed, node) alone.
	first := make([]uint64, 8)
	for id := 0; id < 8; id++ {
		first[id] = b.For(e1, id, 0xabc).Uint64()
	}
	for id := 0; id < 8; id++ {
		for other := 0; other < 8; other++ {
			if id != other && first[id] == first[other] {
				t.Fatalf("nodes %d and %d share stream output", id, other)
			}
		}
	}
	// Rebinding to a new engine with the same seed reproduces the streams.
	var b2 BoundNodeRNG
	e2 := NewEngine(8, 42)
	for id := 0; id < 8; id++ {
		if got := b2.For(e2, id, 0xabc).Uint64(); got != first[id] {
			t.Fatalf("node %d: fresh engine stream %#x, want %#x", id, got, first[id])
		}
	}
	// Rebinding to a different-seed engine yields different streams.
	e3 := NewEngine(8, 43)
	if b.For(e3, 0, 0xabc).Uint64() == first[0] {
		t.Fatal("different engine seed must change the node stream")
	}
}
