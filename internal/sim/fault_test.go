package sim

import (
	"reflect"
	"testing"
)

func TestGenerateFaultsDeterministic(t *testing.T) {
	a := GenerateFaults(NewRNG(42), 50, 60, 5, 8)
	b := GenerateFaults(NewRNG(42), 50, 60, 5, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault plans")
	}
	c := GenerateFaults(NewRNG(43), 50, 60, 5, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault plans")
	}
}

func TestGenerateFaultsShape(t *testing.T) {
	const nodes, rounds, crashes, mttr = 50, 60, 5, 8
	plan := GenerateFaults(NewRNG(7), nodes, rounds, crashes, mttr)

	downAt := map[int]int{}
	downs, ups := 0, 0
	lastRound := -1
	for _, ev := range plan.Events {
		if ev.Round < lastRound {
			t.Fatal("events not sorted by round")
		}
		lastRound = ev.Round
		if ev.Node < 0 || ev.Node >= nodes {
			t.Fatalf("victim %d out of range", ev.Node)
		}
		if !ev.Up {
			downs++
			if _, dup := downAt[ev.Node]; dup {
				t.Fatalf("node %d crashes twice", ev.Node)
			}
			if ev.Round < rounds/6 || ev.Round >= 2*rounds/3 {
				t.Fatalf("crash round %d outside [%d, %d)", ev.Round, rounds/6, 2*rounds/3)
			}
			downAt[ev.Node] = ev.Round
		} else {
			ups++
			crash, ok := downAt[ev.Node]
			if !ok {
				t.Fatalf("node %d recovers without crashing", ev.Node)
			}
			if ev.Round != crash+mttr {
				t.Fatalf("node %d recovers at %d, want crash %d + mttr %d", ev.Node, ev.Round, crash, mttr)
			}
			if ev.Round >= rounds {
				t.Fatalf("recovery at %d past end of run %d", ev.Round, rounds)
			}
		}
	}
	if downs != crashes {
		t.Fatalf("%d crashes, want %d", downs, crashes)
	}
	if ups > downs {
		t.Fatalf("%d recoveries exceed %d crashes", ups, downs)
	}
}

func TestGenerateFaultsClampsAndMTTR(t *testing.T) {
	// More crashes than nodes: every node crashes exactly once.
	plan := GenerateFaults(NewRNG(1), 3, 30, 10, 0)
	downs := 0
	for _, ev := range plan.Events {
		if ev.Up {
			t.Fatal("mttr <= 0 must keep nodes down")
		}
		downs++
	}
	if downs != 3 {
		t.Fatalf("%d crashes, want all 3 nodes", downs)
	}
	// A tiny run still yields a valid window (hi <= lo collapses to one round).
	plan = GenerateFaults(NewRNG(2), 4, 1, 2, 0)
	for _, ev := range plan.Events {
		if ev.Round != 0 {
			t.Fatalf("1-round run scheduled a crash at %d", ev.Round)
		}
	}
}

func TestFaultPlanInstallAppliesInOrder(t *testing.T) {
	plan := FaultPlan{Events: []FaultEvent{
		{Round: 2, Node: 0, Up: false},
		{Round: 2, Node: 1, Up: false},
		{Round: 4, Node: 0, Up: true},
	}}
	e := NewEngine(3, 1)
	var got []FaultEvent
	plan.Install(e, func(e *Engine, ev FaultEvent) {
		got = append(got, ev)
		if e.Round() != ev.Round {
			t.Fatalf("event for round %d applied at round %d", ev.Round, e.Round())
		}
	})
	e.RunRounds(6)
	if !reflect.DeepEqual(got, plan.Events) {
		t.Fatalf("applied %v, want schedule order %v", got, plan.Events)
	}
}
