package sim

import "container/heap"

// Event is a unit of scheduled work in the event-driven layer of the kernel.
// Events fire in (Time, Priority, sequence) order, where the monotonically
// increasing sequence number breaks ties deterministically in insertion
// order.
type Event struct {
	// Time is the virtual timestamp at which the event fires.
	Time int64
	// Priority orders events that share a timestamp; lower fires first.
	Priority int
	// Fn is invoked when the event fires.
	Fn func()

	seq   uint64
	index int // heap index; -1 once popped or cancelled
}

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.index == -2 }

// eventQueue is a binary min-heap of events.
type eventQueue struct {
	items []*Event
	seq   uint64
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

func (q *eventQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(q.items)
	q.items = append(q.items, e)
}

func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	q.items = old[:n-1]
	return e
}

// push schedules e.
func (q *eventQueue) push(e *Event) {
	e.seq = q.seq
	q.seq++
	heap.Push(q, e)
}

// pop removes and returns the earliest event, or nil when empty.
func (q *eventQueue) pop() *Event {
	if len(q.items) == 0 {
		return nil
	}
	return heap.Pop(q).(*Event)
}

// remove cancels a scheduled event. It is a no-op if the event already fired.
func (q *eventQueue) remove(e *Event) {
	if e.index < 0 {
		return
	}
	heap.Remove(q, e.index)
	e.index = -2
}

// peekTime returns the timestamp of the earliest pending event; ok is false
// when the queue is empty.
func (q *eventQueue) peekTime() (t int64, ok bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].Time, true
}
