package trace

import (
	"bytes"
	"testing"
)

// BenchmarkGenerate measures synthesis of a paper-scale workload slice: 1000
// VMs for 720 rounds.
func BenchmarkGenerate(b *testing.B) {
	cfg := DefaultGenConfig(1000, 720, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAt(b *testing.B) {
	set, err := Generate(DefaultGenConfig(100, 200, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = set.At(i%100, i)
	}
}

func BenchmarkCSVRoundTrip(b *testing.B) {
	set, err := Generate(DefaultGenConfig(50, 100, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, set); err != nil {
			b.Fatal(err)
		}
		if _, err := LoadCSV(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
