package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// LoadCSV reads a workload Set from CSV rows of the form
//
//	vm,round,cpu,mem
//
// where cpu and mem are utilisation fractions in [0, 1]. A first line whose
// leading field is not an integer is treated as a header and skipped
// regardless of how many fields it has — real ClusterData extracts carry
// headers (or tool-emitted comment lines) with arbitrary field counts, and
// the old fixed FieldsPerRecord=4 rejected them before the skip could run.
// Data rows must have exactly 4 fields; a violation reports the offending
// line and its field count. This is the drop-in path for real Google
// ClusterData extracts: resample task usage onto the simulation round grid
// and export it in this format. All VMs must cover the same round range
// [0, R).
func LoadCSV(r io.Reader) (*Set, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	// Field-count validation happens per data row below, not in the reader:
	// the reader would reject a ≠4-field header line before the header skip
	// ever saw it.
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true

	type cell struct {
		round int
		s     Sample
	}
	byVM := map[int][]cell{}
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading CSV: %w", err)
		}
		line++
		if line == 1 {
			if _, err := strconv.Atoi(rec[0]); err != nil {
				continue // header
			}
		}
		if len(rec) != 4 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want 4 (vm,round,cpu,mem)", line, len(rec))
		}
		vm, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad vm id %q", line, rec[0])
		}
		round, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad round %q", line, rec[1])
		}
		cpu, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad cpu %q", line, rec[2])
		}
		mem, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad mem %q", line, rec[3])
		}
		if vm < 0 || round < 0 {
			return nil, fmt.Errorf("trace: line %d: negative vm or round", line)
		}
		if cpu < 0 || cpu > 1 || mem < 0 || mem > 1 {
			return nil, fmt.Errorf("trace: line %d: utilisation out of [0,1]", line)
		}
		byVM[vm] = append(byVM[vm], cell{round, Sample{CPU: cpu, Mem: mem}})
	}
	if len(byVM) == 0 {
		return nil, fmt.Errorf("trace: empty CSV")
	}

	vms := make([]int, 0, len(byVM))
	for vm := range byVM {
		vms = append(vms, vm)
	}
	sort.Ints(vms)
	if vms[len(vms)-1] != len(vms)-1 {
		return nil, fmt.Errorf("trace: vm ids must be dense 0..%d, got max %d", len(vms)-1, vms[len(vms)-1])
	}

	rounds := len(byVM[0])
	set := &Set{rounds: rounds, series: make([][]Sample, len(vms))}
	for _, vm := range vms {
		cells := byVM[vm]
		if len(cells) != rounds {
			return nil, fmt.Errorf("trace: vm %d has %d rounds, expected %d", vm, len(cells), rounds)
		}
		sort.Slice(cells, func(i, j int) bool { return cells[i].round < cells[j].round })
		ser := make([]Sample, rounds)
		for i, c := range cells {
			if c.round != i {
				return nil, fmt.Errorf("trace: vm %d: missing or duplicate round %d", vm, i)
			}
			ser[i] = c.s
		}
		set.series[vm] = ser
	}
	return set, nil
}

// WriteCSV writes the set in the format accepted by LoadCSV, including a
// header row.
func WriteCSV(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "vm,round,cpu,mem"); err != nil {
		return err
	}
	for vm := range s.series {
		for r, sm := range s.series[vm] {
			if _, err := fmt.Fprintf(bw, "%d,%d,%.6f,%.6f\n", vm, r, sm.CPU, sm.Mem); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// gzipMagic are the first two bytes of any gzip stream.
var gzipMagic = [2]byte{0x1f, 0x8b}

// LoadFile reads a workload set from path, transparently decompressing
// gzip-compressed traces (detected by magic bytes, not extension) — full
// Google-trace extracts are large, so compressed storage matters.
func LoadFile(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(2)
	if err == nil && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("trace: opening gzip: %w", err)
		}
		defer zr.Close()
		return LoadCSV(zr)
	}
	return LoadCSV(br)
}

// WriteFile writes the set to path; a ".gz" suffix selects gzip
// compression.
func WriteFile(path string, s *Set) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		zw := gzip.NewWriter(f)
		if err := WriteCSV(zw, s); err != nil {
			zw.Close()
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
		return f.Close()
	}
	if err := WriteCSV(f, s); err != nil {
		return err
	}
	return f.Close()
}
