package trace

import (
	"fmt"
	"strings"
	"testing"
)

// stepSet builds a one-VM materialised set over rounds [0, rounds) whose
// demand is lo before changeAt and hi from changeAt on.
func stepSet(t *testing.T, rounds, changeAt int, lo, hi float64) *Set {
	t.Helper()
	var b strings.Builder
	b.WriteString("vm,round,cpu,mem\n")
	for r := 0; r < rounds; r++ {
		v := lo
		if r >= changeAt {
			v = hi
		}
		fmt.Fprintf(&b, "0,%d,%g,%g\n", r, v, v)
	}
	set, err := LoadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestNextChangeFindsFirstChange(t *testing.T) {
	set := stepSet(t, 10, 5, 0.3, 0.6)
	if got := set.NextChange(0, 1, 10); got != 5 {
		t.Fatalf("NextChange(1,10) = %d, want 5", got)
	}
	// Probing from inside the changed tail: constant through the window.
	if got := set.NextChange(0, 6, 10); got != 10 {
		t.Fatalf("NextChange(6,10) = %d, want 10", got)
	}
	// Window ending before the change: constant.
	if got := set.NextChange(0, 1, 5); got != 5 {
		t.Fatalf("NextChange(1,5) = %d, want 5 (= to)", got)
	}
	// Empty window.
	if got := set.NextChange(0, 7, 7); got != 7 {
		t.Fatalf("NextChange(7,7) = %d, want 7", got)
	}
}

func TestNextChangeWrapAround(t *testing.T) {
	// The series repeats with period Rounds(): a window reaching past the
	// end must see the wrap back to the pre-change value.
	set := stepSet(t, 10, 5, 0.3, 0.6)
	if got := set.NextChange(0, 6, 100); got != 10 {
		t.Fatalf("NextChange(6,100) = %d, want 10 (wrap to round 0 value)", got)
	}
	// A genuinely constant series certifies an arbitrarily long window via
	// the one-period scan cap.
	konst := stepSet(t, 10, 0, 0.4, 0.4)
	if got := konst.NextChange(0, 1, 1<<20); got != 1<<20 {
		t.Fatalf("constant NextChange = %d, want %d", got, 1<<20)
	}
}

// TestNextChangeStreamingDifferential pins the streaming probe to the
// materialised scan window-for-window, and checks the probe is pure: the
// live At cursor must replay identical samples after arbitrary NextChange
// interleaving.
func TestNextChangeStreamingDifferential(t *testing.T) {
	const vms, rounds = 6, 40
	cfg := DefaultGenConfig(vms, rounds, 99)
	mat, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	str, err := GenerateStreaming(cfg)
	if err != nil {
		t.Fatal(err)
	}
	windows := [][2]int{{1, rounds}, {3, 17}, {rounds - 1, rounds}, {5, rounds + 25}, {1, 2}}
	for vm := 0; vm < vms; vm++ {
		for _, w := range windows {
			gm := mat.NextChange(vm, w[0], w[1])
			gs := str.NextChange(vm, w[0], w[1])
			if gm != gs {
				t.Fatalf("vm %d window %v: materialised %d, streaming %d", vm, w, gm, gs)
			}
		}
	}
	// Purity: replay the whole series through the live cursors after the
	// probes above and compare sample-for-sample.
	for r := 0; r < rounds; r++ {
		for vm := 0; vm < vms; vm++ {
			if mat.At(vm, r) != str.At(vm, r) {
				t.Fatalf("vm %d round %d: streaming sample diverged after NextChange probes", vm, r)
			}
		}
	}
}
