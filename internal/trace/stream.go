package trace

import (
	"math"

	"github.com/glap-sim/glap/internal/sim"
)

// vmStream is the compact per-VM synthesis state of a streaming Set. It
// holds exactly what genSeries keeps between rounds — the RNG cursor, the
// pattern state machine, the AR(1) noise levels and the per-VM constants —
// so one round's (cpu, mem) sample can be produced on demand without ever
// materialising the series. ~200 bytes per VM replace rounds×16 bytes of
// samples.
//
// The state is advanced by At; two goroutines must not query the same VM
// concurrently. Distinct VMs are fully independent, which is the access
// pattern of the chunk-parallel cluster refresh.
type vmStream struct {
	// init is the RNG state immediately after archetype selection; reset
	// replays the series header from it, so backward seeks (trace
	// wrap-around, a fresh cluster replaying the same Set) are exact.
	init sim.RNG
	// rng is the live cursor: every draw up to round next-1 has been
	// consumed, matching genSeries after next-1 loop iterations.
	rng sim.RNG
	pat pattern

	meanCPU float64
	meanMem float64
	phase   float64
	noiseC  float64
	noiseM  float64

	// next is the first round not yet synthesised; last is the sample at
	// round next-1 (the cluster queries each round at least twice: once to
	// seed and once to refresh).
	next int
	last Sample
}

// resetHeader replays the per-series preamble of genSeries — mean draws,
// pattern construction, phase, stationary noise init — leaving the stream
// positioned before round 0. Draw order must match genSeries exactly; the
// differential test locks this in.
func (st *vmStream) resetHeader(arch Archetype, cfg *GenConfig, basePhase float64) {
	rng := st.init
	st.meanCPU = clampRange(rng.LogNormal(cfg.MeanLogMu, cfg.MeanLogSigma), cfg.MinMean, cfg.MaxMean)
	st.meanMem = clampRange(0.5*st.meanCPU+0.15+0.08*rng.NormFloat64(), cfg.MinMean, cfg.MaxMean)
	st.pat = makePattern(&rng, arch, st.meanCPU, *cfg)
	st.phase = rng.Float64()
	if arch == Diurnal {
		st.phase = basePhase + 0.04*rng.NormFloat64()
	}
	sigmaStat := cfg.NoiseSigma / math.Sqrt(1-cfg.ARPhi*cfg.ARPhi)
	st.noiseC = sigmaStat * rng.NormFloat64()
	st.noiseM = 0.4 * sigmaStat * rng.NormFloat64()
	st.rng = rng
	st.next = 0
	st.last = Sample{}
}

// step synthesises the sample at round t (which must equal st.next) and
// advances the cursor. The body mirrors one iteration of the genSeries
// round loop.
func (st *vmStream) step(cfg *GenConfig, t int) Sample {
	base := st.pat.at(&st.rng, t, st.phase)
	st.noiseC = cfg.ARPhi*st.noiseC + cfg.NoiseSigma*st.rng.NormFloat64()
	st.noiseM = cfg.ARPhi*st.noiseM + 0.4*cfg.NoiseSigma*st.rng.NormFloat64()
	cpu := clamp01(base + st.noiseC)
	memBase := st.meanMem + 0.3*(base-st.meanCPU)
	st.last = Sample{CPU: cpu, Mem: clamp01(memBase + st.noiseM)}
	st.next = t + 1
	return st.last
}

// GenerateStreaming builds a synthetic workload Set that synthesises samples
// on demand instead of materialising every series up front. It produces
// byte-identical samples to Generate for the same config — same root RNG,
// same per-VM derived streams, same draw order — while holding only ~200
// bytes of state per VM, independent of the round count.
//
// Access is optimised for the simulator's pattern (each VM queried at
// monotonically non-decreasing rounds, possibly with gaps, possibly the same
// round repeatedly). Backward seeks replay the series from its header, so
// they are correct but cost O(rounds); replaying a Set on a fresh cluster
// pays that once per VM.
func GenerateStreaming(cfg GenConfig) (*Set, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := sim.NewRNG(cfg.Seed)
	set := &Set{
		rounds:    cfg.Rounds,
		arch:      make([]Archetype, cfg.VMs),
		streams:   make([]vmStream, cfg.VMs),
		streamCfg: cfg,
	}
	cum := cumulativeMix(cfg.Mix)
	set.basePhase = root.Float64()
	for vm := 0; vm < cfg.VMs; vm++ {
		rng := root.Derive(uint64(vm), 0x77ace)
		arch := pickArchetype(rng, cum)
		set.arch[vm] = arch
		st := &set.streams[vm]
		st.init = *rng
		st.resetHeader(arch, &set.streamCfg, set.basePhase)
	}
	return set, nil
}

// streamAt is At for streaming sets: fast-path repeat queries, advance
// in-order queries, and reset-and-replay backward seeks.
func (s *Set) streamAt(vm, r int) Sample {
	st := &s.streams[vm]
	r %= s.rounds
	if r == st.next-1 {
		return st.last
	}
	if r < st.next {
		st.resetHeader(s.arch[vm], &s.streamCfg, s.basePhase)
	}
	for st.next <= r {
		st.step(&s.streamCfg, st.next)
	}
	return st.last
}

// streamSeries materialises VM vm's full series from a throwaway copy of its
// stream state, leaving the live cursor untouched.
func (s *Set) streamSeries(vm int) []Sample {
	st := s.streams[vm]
	st.resetHeader(s.arch[vm], &s.streamCfg, s.basePhase)
	out := make([]Sample, s.rounds)
	for t := range out {
		out[t] = st.step(&s.streamCfg, t)
	}
	return out
}
