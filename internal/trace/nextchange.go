package trace

// NextChange returns the first round t in [from, to) at which VM vm's sample
// differs from its sample at round from-1, or to when the demand stays exactly
// constant across the whole window. It is the primitive behind the cluster's
// quiet-round certificate: a span is only skippable when every VM's demand is
// bit-identical round over round, so the comparison is exact, not
// level-bucketed.
//
// The probe is pure — streaming sets are scanned on a value copy of the VM's
// synthesis state, so the live cursor used by At is never disturbed. Because
// series repeat with period Rounds(), a window of one full period with no
// change proves constancy forever; the scan is capped there.
func (s *Set) NextChange(vm, from, to int) int {
	if from >= to {
		return to
	}
	// Cap the scan at one trace period past from: beyond that the series
	// repeats, so an unchanged period certifies the rest of the window.
	limit := to
	if cap := from + s.rounds; cap < limit {
		limit = cap
	}
	if s.streams == nil {
		ser := s.series[vm]
		n := len(ser)
		anchor := ser[((from-1)%n+n)%n]
		for t := from; t < limit; t++ {
			if ser[t%n] != anchor {
				return t
			}
		}
		return to
	}
	// Streaming: replay on a throwaway copy. Position the copy at from-1 to
	// read the anchor, then step forward through the window.
	st := s.streams[vm]
	anchor := s.probeAt(&st, vm, from-1)
	for t := from; t < limit; t++ {
		if s.probeAt(&st, vm, t) != anchor {
			return t
		}
	}
	return to
}

// probeAt is streamAt against a detached stream copy: same fast paths, same
// wrap-around, no effect on the live per-VM cursor.
func (s *Set) probeAt(st *vmStream, vm, r int) Sample {
	r %= s.rounds
	if r == st.next-1 {
		return st.last
	}
	if r < st.next {
		st.resetHeader(s.arch[vm], &s.streamCfg, s.basePhase)
	}
	for st.next <= r {
		st.step(&s.streamCfg, st.next)
	}
	return st.last
}
