package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"github.com/glap-sim/glap/internal/stats"
)

func genSmall(t *testing.T, vms, rounds int, seed uint64) *Set {
	t.Helper()
	set, err := Generate(DefaultGenConfig(vms, rounds, seed))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestGenerateShape(t *testing.T) {
	set := genSmall(t, 30, 100, 1)
	if set.NumVMs() != 30 || set.Rounds() != 100 {
		t.Fatalf("shape %d x %d", set.NumVMs(), set.Rounds())
	}
	for vm := 0; vm < set.NumVMs(); vm++ {
		if len(set.Series(vm)) != 100 {
			t.Fatalf("vm %d series length %d", vm, len(set.Series(vm)))
		}
	}
}

func TestGenerateBounds(t *testing.T) {
	f := func(seed uint16) bool {
		set, err := Generate(DefaultGenConfig(10, 50, uint64(seed)))
		if err != nil {
			return false
		}
		for vm := 0; vm < set.NumVMs(); vm++ {
			for r := 0; r < set.Rounds(); r++ {
				s := set.At(vm, r)
				if s.CPU < 0 || s.CPU > 1 || s.Mem < 0 || s.Mem > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genSmall(t, 20, 80, 9)
	b := genSmall(t, 20, 80, 9)
	for vm := 0; vm < 20; vm++ {
		for r := 0; r < 80; r++ {
			if a.At(vm, r) != b.At(vm, r) {
				t.Fatalf("divergence at vm %d round %d", vm, r)
			}
		}
	}
	c := genSmall(t, 20, 80, 10)
	same := true
	for vm := 0; vm < 20 && same; vm++ {
		for r := 0; r < 80; r++ {
			if a.At(vm, r) != c.At(vm, r) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical sets")
	}
}

func TestGenerateMeanUtilisationBand(t *testing.T) {
	set := genSmall(t, 400, 200, 3)
	cpu, mem := set.MeanUtilisation()
	// The calibration targets the Google traces' low average utilisation.
	if cpu < 0.12 || cpu > 0.45 {
		t.Fatalf("mean cpu %g outside calibration band", cpu)
	}
	if mem < 0.1 || mem > 0.55 {
		t.Fatalf("mean mem %g outside calibration band", mem)
	}
}

func TestGenerateAutocorrelation(t *testing.T) {
	set := genSmall(t, 100, 200, 4)
	var acs []float64
	for vm := 0; vm < set.NumVMs(); vm++ {
		ser := set.Series(vm)
		cs := make([]float64, len(ser))
		for i, s := range ser {
			cs[i] = s.CPU
		}
		if stats.Variance(cs) > 1e-9 {
			acs = append(acs, stats.Autocorrelation(cs, 1))
		}
	}
	if med, _ := stats.Median(acs); med < 0.5 {
		t.Fatalf("median lag-1 autocorrelation %g too low for cluster-like traces", med)
	}
}

func TestGenerateArchetypeMix(t *testing.T) {
	set := genSmall(t, 1000, 10, 5)
	counts := map[Archetype]int{}
	for vm := 0; vm < set.NumVMs(); vm++ {
		counts[set.ArchetypeOf(vm)]++
	}
	for a := Archetype(0); a < numArchetypes; a++ {
		if counts[a] == 0 {
			t.Fatalf("archetype %s never generated", a)
		}
	}
	// Bursty + spiky share should be substantial (volatility calibration).
	if frac := float64(counts[Bursty]+counts[Spiky]) / 1000; frac < 0.25 || frac > 0.55 {
		t.Fatalf("bursty+spiky fraction %g outside calibration band", frac)
	}
}

func TestGenerateCustomMix(t *testing.T) {
	cfg := DefaultGenConfig(50, 20, 6)
	cfg.Mix = map[Archetype]float64{Stable: 1}
	set, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for vm := 0; vm < set.NumVMs(); vm++ {
		if set.ArchetypeOf(vm) != Stable {
			t.Fatalf("vm %d has archetype %s", vm, set.ArchetypeOf(vm))
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{VMs: 0, Rounds: 10}); err == nil {
		t.Fatal("expected error for zero VMs")
	}
	if _, err := Generate(GenConfig{VMs: 1, Rounds: 0}); err == nil {
		t.Fatal("expected error for zero rounds")
	}
	if _, err := Generate(GenConfig{VMs: 1, Rounds: 1, ARPhi: 1.5}); err == nil {
		t.Fatal("expected error for ARPhi >= 1")
	}
}

func TestAtWrapsAround(t *testing.T) {
	set := genSmall(t, 3, 10, 7)
	if set.At(1, 13) != set.At(1, 3) {
		t.Fatal("At should wrap around the series length")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := genSmall(t, 7, 15, 8)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumVMs() != 7 || loaded.Rounds() != 15 {
		t.Fatalf("round-trip shape %d x %d", loaded.NumVMs(), loaded.Rounds())
	}
	for vm := 0; vm < 7; vm++ {
		for r := 0; r < 15; r++ {
			a, b := orig.At(vm, r), loaded.At(vm, r)
			if diff := a.CPU - b.CPU; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("cpu mismatch vm %d round %d: %g vs %g", vm, r, a.CPU, b.CPU)
			}
		}
	}
	// Loaded (non-synthetic) sets report Stable archetypes.
	if loaded.ArchetypeOf(0) != Stable {
		t.Fatal("loaded set should report Stable archetype")
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad vm":           "vm,round,cpu,mem\nx,0,0.5,0.5\nx,1,0.5,0.5\n",
		"bad round":        "0,x,0.5,0.5\n",
		"bad cpu":          "0,0,x,0.5\n",
		"bad mem":          "0,0,0.5,x\n",
		"cpu out of range": "0,0,1.5,0.5\n",
		"negative vm":      "-1,0,0.5,0.5\n",
		"sparse vm ids":    "0,0,0.5,0.5\n5,0,0.5,0.5\n",
		"missing round":    "0,0,0.5,0.5\n0,2,0.5,0.5\n",
		"uneven rounds":    "0,0,0.5,0.5\n0,1,0.5,0.5\n1,0,0.5,0.5\n",
	}
	for name, input := range cases {
		if _, err := LoadCSV(strings.NewReader(input)); err == nil {
			t.Fatalf("case %q: expected error", name)
		}
	}
}

func TestLoadCSVHeaderOptional(t *testing.T) {
	with := "vm,round,cpu,mem\n0,0,0.5,0.25\n"
	without := "0,0,0.5,0.25\n"
	for _, input := range []string{with, without} {
		set, err := LoadCSV(strings.NewReader(input))
		if err != nil {
			t.Fatalf("input %q: %v", input, err)
		}
		if set.NumVMs() != 1 || set.At(0, 0).CPU != 0.5 {
			t.Fatalf("input %q: bad set", input)
		}
	}
}

// TestLoadCSVArbitraryHeaders pins the loader fix for real-trace extracts:
// a first line whose leading field is not an integer is a header and must be
// skipped whatever its field count — tool-emitted comment lines have one
// field, ClusterData exports often carry extra columns. The old
// FieldsPerRecord=4 reader rejected both before the skip could run.
func TestLoadCSVArbitraryHeaders(t *testing.T) {
	cases := map[string]string{
		"one-field comment": "# google-clusterdata-2011 task_usage extract\n0,0,0.5,0.25\n",
		"two-field comment": "# clusterdata extract, resampled to 120 s\n0,0,0.5,0.25\n",
		"wide header":       "vm,round,cpu,mem,priority,scheduling_class\n0,0,0.5,0.25\n",
		"canonical header":  "vm,round,cpu,mem\n0,0,0.5,0.25\n",
	}
	for name, input := range cases {
		set, err := LoadCSV(strings.NewReader(input))
		if err != nil {
			t.Fatalf("case %q: %v", name, err)
		}
		if set.NumVMs() != 1 || set.Rounds() != 1 || set.At(0, 0).CPU != 0.5 {
			t.Fatalf("case %q: bad set", name)
		}
	}
}

// TestLoadCSVFieldCountError checks that a malformed data row is still
// rejected, and that the error names the offending line and its field count.
func TestLoadCSVFieldCountError(t *testing.T) {
	_, err := LoadCSV(strings.NewReader("0,0,0.5,0.25\n0,1,0.5\n"))
	if err == nil {
		t.Fatal("3-field data row accepted")
	}
	for _, want := range []string{"line 2", "3 fields"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestArchetypeString(t *testing.T) {
	names := map[Archetype]string{
		Stable: "stable", Diurnal: "diurnal", Periodic: "periodic",
		Bursty: "bursty", Spiky: "spiky", Archetype(99): "archetype(99)",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%d.String() = %q", a, a.String())
		}
	}
}

func TestDiurnalPhaseShared(t *testing.T) {
	// Diurnal VMs must swell together: the aggregate diurnal series should
	// have a pronounced peak-to-trough range.
	cfg := DefaultGenConfig(200, 120, 11)
	cfg.Mix = map[Archetype]float64{Diurnal: 1}
	cfg.NoiseSigma = 0.001
	set, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg := make([]float64, set.Rounds())
	for vm := 0; vm < set.NumVMs(); vm++ {
		for r := 0; r < set.Rounds(); r++ {
			agg[r] += set.At(vm, r).CPU
		}
	}
	lo, hi := agg[0], agg[0]
	for _, v := range agg {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi < 1.4*lo {
		t.Fatalf("aggregate diurnal swing too small: [%g, %g] — phases not shared?", lo, hi)
	}
}

func TestFileRoundTripPlainAndGzip(t *testing.T) {
	orig := genSmall(t, 5, 8, 12)
	dir := t.TempDir()
	for _, name := range []string{"plain.csv", "packed.csv.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, orig); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.NumVMs() != 5 || got.Rounds() != 8 {
			t.Fatalf("%s: shape %dx%d", name, got.NumVMs(), got.Rounds())
		}
		a, b := orig.At(2, 3), got.At(2, 3)
		if d := a.CPU - b.CPU; d > 1e-5 || d < -1e-5 {
			t.Fatalf("%s: value mismatch", name)
		}
	}
	// Gzip file must actually be smaller than plain for this content.
	plain, err := os.Stat(filepath.Join(dir, "plain.csv"))
	if err != nil {
		t.Fatal(err)
	}
	packed, err := os.Stat(filepath.Join(dir, "packed.csv.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if packed.Size() >= plain.Size() {
		t.Fatalf("gzip did not compress: %d vs %d", packed.Size(), plain.Size())
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Fatal("expected error for missing file")
	}
}
