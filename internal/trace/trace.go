// Package trace supplies per-VM resource utilisation time series that drive
// the consolidation simulations.
//
// The paper replays CPU and memory utilisation from the Google Cluster
// traces [12]. Those traces cannot be redistributed here, so this package
// implements a synthetic generator calibrated to the published
// characteristics of that data — low average utilisation (most VMs use a
// small fraction of their allocation), heavy-tailed per-VM means, strong
// temporal autocorrelation, diurnal patterns, and occasional bursts — plus a
// CSV loader so real trace extracts can be dropped in when available. The
// consolidation algorithms only ever observe one (cpu, mem) sample per VM
// per round, so any series with these statistical properties exercises the
// same code paths and decision structure.
package trace

import (
	"fmt"
	"math"
)

// Sample is one observation of a VM's resource demand, expressed as
// fractions in [0, 1] of the VM's allocated CPU and memory capacity.
type Sample struct {
	CPU float64
	Mem float64
}

// Archetype labels the workload pattern family of a synthetic VM. The mix of
// archetypes is what gives PMs the heterogeneous, time-varying aggregate
// load that motivates GLAP.
type Archetype int

const (
	// Stable VMs hover around a fixed mean with small noise (long-running
	// services).
	Stable Archetype = iota
	// Diurnal VMs follow a day-long sinusoid (user-facing workloads).
	Diurnal
	// Periodic VMs oscillate with a short period (cron-style batch work).
	Periodic
	// Bursty VMs alternate a low baseline with sustained high-load episodes
	// (MapReduce-style batch jobs).
	Bursty
	// Spiky VMs exhibit brief random spikes over a low baseline.
	Spiky

	numArchetypes = 5
)

// String returns the archetype name.
func (a Archetype) String() string {
	switch a {
	case Stable:
		return "stable"
	case Diurnal:
		return "diurnal"
	case Periodic:
		return "periodic"
	case Bursty:
		return "bursty"
	case Spiky:
		return "spiky"
	default:
		return fmt.Sprintf("archetype(%d)", int(a))
	}
}

// Set is a replayable workload: one utilisation series per VM, all of equal
// length.
type Set struct {
	rounds int
	series [][]Sample
	arch   []Archetype

	// Streaming mode (series == nil): samples are synthesised on demand
	// from compact per-VM state instead of materialised slices. See
	// stream.go.
	streams   []vmStream
	streamCfg GenConfig
	basePhase float64
}

// NumVMs returns the number of VM series in the set.
func (s *Set) NumVMs() int {
	if s.streams != nil {
		return len(s.streams)
	}
	return len(s.series)
}

// Rounds returns the series length.
func (s *Set) Rounds() int { return s.rounds }

// Streaming reports whether samples are synthesised on demand rather than
// held in materialised per-VM slices.
func (s *Set) Streaming() bool { return s.streams != nil }

// At returns VM vm's demand sample at round r. Rounds beyond the series
// length wrap around, so simulations may run longer than the trace.
//
// For streaming sets, At advances VM vm's synthesis state; callers may
// query distinct VMs concurrently but must not query the same VM from two
// goroutines at once. Materialised sets are read-only and safe for any
// concurrent access.
func (s *Set) At(vm, r int) Sample {
	if s.streams != nil {
		return s.streamAt(vm, r)
	}
	ser := s.series[vm]
	return ser[r%len(ser)]
}

// ArchetypeOf returns the generating archetype for VM vm, or Stable for
// loaded (non-synthetic) sets.
func (s *Set) ArchetypeOf(vm int) Archetype {
	if s.arch == nil {
		return Stable
	}
	return s.arch[vm]
}

// Series returns the full series for VM vm. For materialised sets this is
// the raw backing slice and callers must not modify it; streaming sets
// synthesise a fresh copy (without disturbing the live cursor), so the
// caller owns it.
func (s *Set) Series(vm int) []Sample {
	if s.streams != nil {
		return s.streamSeries(vm)
	}
	return s.series[vm]
}

// MeanUtilisation returns the average CPU and memory utilisation over all
// VMs and rounds.
func (s *Set) MeanUtilisation() (cpu, mem float64) {
	var n float64
	if s.streams != nil {
		for vm := range s.streams {
			st := s.streams[vm]
			st.resetHeader(s.arch[vm], &s.streamCfg, s.basePhase)
			for t := 0; t < s.rounds; t++ {
				sm := st.step(&s.streamCfg, t)
				cpu += sm.CPU
				mem += sm.Mem
				n++
			}
		}
	} else {
		for _, ser := range s.series {
			for _, sm := range ser {
				cpu += sm.CPU
				mem += sm.Mem
				n++
			}
		}
	}
	if n == 0 {
		return 0, 0
	}
	return cpu / n, mem / n
}

// clamp01 clips x into [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// clampRange clips x into [lo, hi].
func clampRange(x, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, x))
}
