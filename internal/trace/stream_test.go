package trace

import (
	"math"
	"sync"
	"testing"

	"github.com/glap-sim/glap/internal/sim"
)

// diffConfigs are the generator configurations the streaming/materialised
// differential sweeps: every archetype is exercised by the default mix, and
// the all-one-archetype mixes pin each state machine individually.
func diffConfigs() []GenConfig {
	cfgs := []GenConfig{
		DefaultGenConfig(64, 96, 1),
		DefaultGenConfig(48, 720, 0xfeed),
	}
	short := DefaultGenConfig(32, 120, 7)
	short.DayRounds = 48
	cfgs = append(cfgs, short)
	for a := Archetype(0); a < numArchetypes; a++ {
		c := DefaultGenConfig(16, 200, 0x9000+uint64(a))
		c.Mix = map[Archetype]float64{a: 1}
		cfgs = append(cfgs, c)
	}
	return cfgs
}

func sampleEq(a, b Sample) bool {
	return math.Float64bits(a.CPU) == math.Float64bits(b.CPU) &&
		math.Float64bits(a.Mem) == math.Float64bits(b.Mem)
}

// TestStreamingMatchesMaterialised locks the streaming source to the
// materialised generator sample-for-sample, bit-for-bit, across archetypes,
// seeds, day lengths and access orders.
func TestStreamingMatchesMaterialised(t *testing.T) {
	for _, cfg := range diffConfigs() {
		mat, err := Generate(cfg)
		if err != nil {
			t.Fatalf("Generate: %v", err)
		}
		str, err := GenerateStreaming(cfg)
		if err != nil {
			t.Fatalf("GenerateStreaming: %v", err)
		}
		if !str.Streaming() || mat.Streaming() {
			t.Fatalf("mode flags wrong: streaming=%v materialised=%v", str.Streaming(), mat.Streaming())
		}
		if str.NumVMs() != mat.NumVMs() || str.Rounds() != mat.Rounds() {
			t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)", str.NumVMs(), str.Rounds(), mat.NumVMs(), mat.Rounds())
		}
		for vm := 0; vm < mat.NumVMs(); vm++ {
			if str.ArchetypeOf(vm) != mat.ArchetypeOf(vm) {
				t.Fatalf("seed %d vm %d: archetype %v != %v", cfg.Seed, vm, str.ArchetypeOf(vm), mat.ArchetypeOf(vm))
			}
			// In-order replay, with the simulator's double-query of each
			// round (seed + refresh).
			for r := 0; r < cfg.Rounds; r++ {
				got := str.At(vm, r)
				if again := str.At(vm, r); !sampleEq(got, again) {
					t.Fatalf("seed %d vm %d r %d: repeat query changed sample", cfg.Seed, vm, r)
				}
				if want := mat.At(vm, r); !sampleEq(got, want) {
					t.Fatalf("seed %d vm %d r %d: %+v != %+v", cfg.Seed, vm, r, got, want)
				}
			}
		}
	}
}

// TestStreamingGapAndWrapAccess exercises the lifecycle access pattern:
// rounds skipped while a VM has not yet arrived, repeats, wrap-around past
// the series end, and backward seeks when a fresh cluster replays the Set.
func TestStreamingGapAndWrapAccess(t *testing.T) {
	cfg := DefaultGenConfig(40, 72, 0xabcde)
	mat, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	str, err := GenerateStreaming(cfg)
	if err != nil {
		t.Fatalf("GenerateStreaming: %v", err)
	}
	rng := sim.NewRNG(99)
	for vm := 0; vm < cfg.VMs; vm++ {
		r := 0
		// Monotone-with-gaps walk well past one wrap.
		for r < 3*cfg.Rounds {
			if want, got := mat.At(vm, r), str.At(vm, r); !sampleEq(got, want) {
				t.Fatalf("vm %d r %d: %+v != %+v", vm, r, got, want)
			}
			if rng.Bernoulli(0.3) { // linger: re-query the same round
				continue
			}
			r += 1 + rng.Intn(7)
		}
		// Backward seek (fresh cluster replaying round 0).
		if want, got := mat.At(vm, 0), str.At(vm, 0); !sampleEq(got, want) {
			t.Fatalf("vm %d: backward seek to round 0: %+v != %+v", vm, got, want)
		}
	}
}

// TestStreamingSeriesAndMean pins the whole-series views used by tooling.
func TestStreamingSeriesAndMean(t *testing.T) {
	cfg := DefaultGenConfig(24, 150, 0x5151)
	mat, _ := Generate(cfg)
	str, _ := GenerateStreaming(cfg)
	// Advance some live cursors first; Series must not disturb them.
	str.At(3, 17)
	for vm := 0; vm < cfg.VMs; vm++ {
		ms, ss := mat.Series(vm), str.Series(vm)
		if len(ms) != len(ss) {
			t.Fatalf("vm %d: series length %d != %d", vm, len(ss), len(ms))
		}
		for r := range ms {
			if !sampleEq(ms[r], ss[r]) {
				t.Fatalf("vm %d r %d: %+v != %+v", vm, r, ss[r], ms[r])
			}
		}
	}
	if want, got := mat.At(3, 17), str.At(3, 17); !sampleEq(got, want) {
		t.Fatalf("live cursor disturbed by Series: %+v != %+v", got, want)
	}
	mc, mm := mat.MeanUtilisation()
	sc, sm := str.MeanUtilisation()
	if math.Float64bits(mc) != math.Float64bits(sc) || math.Float64bits(mm) != math.Float64bits(sm) {
		t.Fatalf("MeanUtilisation: (%v,%v) != (%v,%v)", sc, sm, mc, mm)
	}
}

// TestStreamingConcurrentDisjointVMs drives disjoint VM chunks from
// concurrent goroutines, the cluster refresh's access pattern. Run under
// -race this proves per-VM state independence.
func TestStreamingConcurrentDisjointVMs(t *testing.T) {
	cfg := DefaultGenConfig(64, 90, 0xc0ffee)
	mat, _ := Generate(cfg)
	str, _ := GenerateStreaming(cfg)
	const chunk = 8
	var wg sync.WaitGroup
	errs := make(chan string, cfg.VMs)
	for lo := 0; lo < cfg.VMs; lo += chunk {
		hi := lo + chunk
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for r := 0; r < 2*cfg.Rounds; r++ {
				for vm := lo; vm < hi; vm++ {
					if want, got := mat.At(vm, r), str.At(vm, r); !sampleEq(got, want) {
						errs <- "mismatch"
						return
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
