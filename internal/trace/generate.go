package trace

import (
	"fmt"
	"math"

	"github.com/glap-sim/glap/internal/sim"
)

// GenConfig parameterises the synthetic Google-cluster-style generator.
type GenConfig struct {
	// VMs is the number of series to generate.
	VMs int
	// Rounds is the series length. The paper uses 720 two-minute rounds
	// (24 h); a diurnal cycle spans DayRounds rounds.
	Rounds int
	// Seed determines every random choice; equal configs generate equal
	// sets.
	Seed uint64

	// Mix gives relative archetype weights. A zero map selects the default
	// calibration (40% stable, 20% diurnal, 15% periodic, 15% bursty, 10%
	// spiky), which matches the Google traces' dominance of long-running
	// low-utilisation tasks with a heavy batch tail.
	Mix map[Archetype]float64

	// MeanLogMu / MeanLogSigma parameterise the lognormal distribution of
	// per-VM mean CPU utilisation, clipped to [MinMean, MaxMean]. The
	// defaults yield a ~25-30% average with a heavy right tail, matching
	// the published cluster statistics.
	MeanLogMu    float64
	MeanLogSigma float64
	MinMean      float64
	MaxMean      float64

	// ARPhi is the AR(1) coefficient of the additive noise; ~0.9 reproduces
	// the strong short-lag autocorrelation of real utilisation series.
	ARPhi float64
	// NoiseSigma is the innovation standard deviation of the AR(1) noise.
	NoiseSigma float64

	// DayRounds is the length of one simulated day in rounds (diurnal
	// period). Defaults to Rounds.
	DayRounds int
}

// DefaultGenConfig returns the calibration used throughout the reproduction
// for the given scale.
func DefaultGenConfig(vms, rounds int, seed uint64) GenConfig {
	return GenConfig{
		VMs:          vms,
		Rounds:       rounds,
		Seed:         seed,
		MeanLogMu:    math.Log(0.22),
		MeanLogSigma: 0.55,
		MinMean:      0.03,
		MaxMean:      0.85,
		ARPhi:        0.9,
		NoiseSigma:   0.05,
		DayRounds:    rounds,
	}
}

func (c *GenConfig) withDefaults() GenConfig {
	cfg := *c
	if cfg.Mix == nil {
		cfg.Mix = map[Archetype]float64{
			Stable: 0.20, Diurnal: 0.30, Periodic: 0.10, Bursty: 0.25, Spiky: 0.15,
		}
	}
	if cfg.MeanLogMu == 0 && cfg.MeanLogSigma == 0 {
		cfg.MeanLogMu = math.Log(0.22)
		cfg.MeanLogSigma = 0.55
	}
	if cfg.MaxMean == 0 {
		cfg.MinMean, cfg.MaxMean = 0.03, 0.85
	}
	if cfg.ARPhi == 0 {
		cfg.ARPhi = 0.9
	}
	if cfg.NoiseSigma == 0 {
		cfg.NoiseSigma = 0.05
	}
	if cfg.DayRounds == 0 {
		cfg.DayRounds = cfg.Rounds
	}
	return cfg
}

// Validate reports configuration errors.
func (c *GenConfig) Validate() error {
	if c.VMs <= 0 {
		return fmt.Errorf("trace: VMs must be positive, got %d", c.VMs)
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("trace: Rounds must be positive, got %d", c.Rounds)
	}
	if c.ARPhi < 0 || c.ARPhi >= 1 {
		return fmt.Errorf("trace: ARPhi must be in [0,1), got %g", c.ARPhi)
	}
	return nil
}

// Generate builds a synthetic workload Set from cfg.
func Generate(cfg GenConfig) (*Set, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := sim.NewRNG(cfg.Seed)
	set := &Set{
		rounds: cfg.Rounds,
		series: make([][]Sample, cfg.VMs),
		arch:   make([]Archetype, cfg.VMs),
	}
	cum := cumulativeMix(cfg.Mix)
	// Diurnal VMs share one cluster-wide phase (plus small per-VM jitter):
	// user-facing load peaks at the same local time across a data center,
	// which is what makes threshold-based consolidation at the trough so
	// dangerous and demand prediction valuable.
	basePhase := root.Float64()
	for vm := 0; vm < cfg.VMs; vm++ {
		rng := root.Derive(uint64(vm), 0x77ace)
		arch := pickArchetype(rng, cum)
		set.arch[vm] = arch
		set.series[vm] = genSeries(rng, arch, cfg, basePhase)
	}
	return set, nil
}

// cumulativeMix converts archetype weights to a cumulative distribution over
// the fixed archetype order.
func cumulativeMix(mix map[Archetype]float64) [numArchetypes]float64 {
	var cum [numArchetypes]float64
	total := 0.0
	for a := Archetype(0); a < numArchetypes; a++ {
		total += math.Max(0, mix[a])
	}
	if total == 0 {
		total = 1
		mix = map[Archetype]float64{Stable: 1}
	}
	acc := 0.0
	for a := Archetype(0); a < numArchetypes; a++ {
		acc += math.Max(0, mix[a]) / total
		cum[a] = acc
	}
	cum[numArchetypes-1] = 1
	return cum
}

func pickArchetype(rng *sim.RNG, cum [numArchetypes]float64) Archetype {
	u := rng.Float64()
	for a := Archetype(0); a < numArchetypes; a++ {
		if u <= cum[a] {
			return a
		}
	}
	return Stable
}

// genSeries produces one VM's (cpu, mem) series. CPU follows the archetype
// pattern with AR(1) noise; memory tracks a dampened version of the pattern
// with its own, quieter noise — memory demand in the cluster traces is far
// steadier than CPU.
func genSeries(rng *sim.RNG, arch Archetype, cfg GenConfig, basePhase float64) []Sample {
	meanCPU := clampRange(rng.LogNormal(cfg.MeanLogMu, cfg.MeanLogSigma), cfg.MinMean, cfg.MaxMean)
	// Memory mean is positively correlated with CPU mean but regresses
	// toward a moderate level.
	meanMem := clampRange(0.5*meanCPU+0.15+0.08*rng.NormFloat64(), cfg.MinMean, cfg.MaxMean)

	out := make([]Sample, cfg.Rounds)
	pat := newPattern(rng, arch, meanCPU, cfg)
	noiseC, noiseM := 0.0, 0.0
	phase := rng.Float64()
	if arch == Diurnal {
		phase = basePhase + 0.04*rng.NormFloat64()
	}
	sigmaStat := cfg.NoiseSigma / math.Sqrt(1-cfg.ARPhi*cfg.ARPhi)
	noiseC = sigmaStat * rng.NormFloat64()
	noiseM = 0.4 * sigmaStat * rng.NormFloat64()
	for t := 0; t < cfg.Rounds; t++ {
		base := pat.at(rng, t, phase)
		noiseC = cfg.ARPhi*noiseC + cfg.NoiseSigma*rng.NormFloat64()
		noiseM = cfg.ARPhi*noiseM + 0.4*cfg.NoiseSigma*rng.NormFloat64()
		cpu := clamp01(base + noiseC)
		memBase := meanMem + 0.3*(base-meanCPU)
		mem := clamp01(memBase + noiseM)
		out[t] = Sample{CPU: cpu, Mem: mem}
	}
	return out
}

// pattern is the deterministic (pre-noise) load shape of one VM.
type pattern struct {
	arch   Archetype
	mean   float64
	amp    float64
	period float64
	// bursty two-state Markov chain
	high     bool
	pLowHigh float64
	pHighLow float64
	lowLevel float64
	hiLevel  float64
	// spiky state
	spikeLeft int
	spikeLvl  float64
	pSpike    float64
}

func newPattern(rng *sim.RNG, arch Archetype, mean float64, cfg GenConfig) *pattern {
	p := makePattern(rng, arch, mean, cfg)
	return &p
}

// makePattern is newPattern as a value: the streaming source embeds pattern
// state directly in its per-VM record instead of chasing a pointer. Draw
// order is identical to the materialised generator's.
func makePattern(rng *sim.RNG, arch Archetype, mean float64, cfg GenConfig) pattern {
	p := pattern{arch: arch, mean: mean}
	switch arch {
	case Stable:
	case Diurnal:
		p.amp = clampRange(0.5+0.4*rng.Float64(), 0, 0.95) * mean
		p.period = float64(cfg.DayRounds)
	case Periodic:
		p.amp = clampRange(0.3+0.5*rng.Float64(), 0, 0.9) * mean
		p.period = 20 + 60*rng.Float64()
	case Bursty:
		p.lowLevel = mean * 0.5
		p.hiLevel = math.Min(mean*3.2, 1.0)
		p.pLowHigh = 1.0 / 20 // mean low dwell: 20 rounds
		p.pHighLow = 1.0 / 6  // mean high dwell: 6 rounds
	case Spiky:
		p.pSpike = 0.04
	}
	return p
}

func (p *pattern) at(rng *sim.RNG, t int, phase float64) float64 {
	switch p.arch {
	case Stable:
		return p.mean
	case Diurnal, Periodic:
		return p.mean + p.amp*math.Sin(2*math.Pi*(float64(t)/p.period+phase))
	case Bursty:
		if p.high {
			if rng.Bernoulli(p.pHighLow) {
				p.high = false
			}
		} else if rng.Bernoulli(p.pLowHigh) {
			p.high = true
		}
		if p.high {
			return p.hiLevel
		}
		return p.lowLevel
	case Spiky:
		if p.spikeLeft > 0 {
			p.spikeLeft--
			return p.spikeLvl
		}
		if rng.Bernoulli(p.pSpike) {
			p.spikeLeft = rng.Intn(5) + 1
			p.spikeLvl = clampRange(p.mean+0.4+0.6*rng.Float64(), 0, 1.0)
			return p.spikeLvl
		}
		return p.mean * 0.7
	default:
		return p.mean
	}
}
