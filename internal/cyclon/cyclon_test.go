package cyclon

import (
	"testing"

	"github.com/glap-sim/glap/internal/sim"
)

func runCyclon(t *testing.T, nodes, rounds, view, shuffle int, seed uint64) *sim.Engine {
	t.Helper()
	e := sim.NewEngine(nodes, seed)
	e.Register(New(view, shuffle))
	e.RunRounds(rounds)
	return e
}

func TestViewInvariants(t *testing.T) {
	const nodes, view = 40, 8
	e := runCyclon(t, nodes, 30, view, 4, 1)
	for _, n := range e.Nodes() {
		v := ViewOf(e, n)
		if v.Len() > view {
			t.Fatalf("node %d view size %d > %d", n.ID, v.Len(), view)
		}
		if v.Len() == 0 {
			t.Fatalf("node %d has empty view", n.ID)
		}
		seen := map[int]bool{}
		for _, entry := range v.Entries() {
			if entry.Peer == n.ID {
				t.Fatalf("node %d has itself in view", n.ID)
			}
			if entry.Peer < 0 || entry.Peer >= nodes {
				t.Fatalf("node %d has out-of-range peer %d", n.ID, entry.Peer)
			}
			if seen[entry.Peer] {
				t.Fatalf("node %d has duplicate peer %d", n.ID, entry.Peer)
			}
			seen[entry.Peer] = true
			if entry.Age < 0 || entry.Age > 30+1 {
				t.Fatalf("node %d entry age %d out of range", n.ID, entry.Age)
			}
		}
	}
}

func TestBootstrapSmallNetwork(t *testing.T) {
	// View size larger than the network: after bootstrap each view holds
	// all other nodes; shuffling may transiently drop one (the discarded
	// oldest target) but views must stay near-complete and non-empty.
	e := runCyclon(t, 4, 0, 20, 8, 2)
	for _, n := range e.Nodes() {
		if got := ViewOf(e, n).Len(); got != 3 {
			t.Fatalf("node %d bootstrap view size %d, want 3", n.ID, got)
		}
	}
	e.RunRounds(5)
	for _, n := range e.Nodes() {
		if got := ViewOf(e, n).Len(); got < 2 {
			t.Fatalf("node %d view size %d after shuffles, want >= 2", n.ID, got)
		}
	}
}

func TestInDegreeBalance(t *testing.T) {
	// After shuffling, in-degrees should be roughly balanced — the defining
	// property of Cyclon overlays (no node should be isolated or a hub).
	const nodes = 60
	e := runCyclon(t, nodes, 50, 8, 4, 3)
	indeg := make([]int, nodes)
	for _, n := range e.Nodes() {
		for _, entry := range ViewOf(e, n).Entries() {
			indeg[entry.Peer]++
		}
	}
	for id, d := range indeg {
		if d == 0 {
			t.Fatalf("node %d has in-degree 0", id)
		}
		if d > 8*4 {
			t.Fatalf("node %d has in-degree %d — hub formation", id, d)
		}
	}
}

func TestDeadPeersEvicted(t *testing.T) {
	e := sim.NewEngine(30, 4)
	e.Register(New(6, 3))
	e.RunRounds(10)
	// Kill a third of the network.
	for id := 0; id < 10; id++ {
		e.SetUp(e.Node(id), false)
	}
	e.RunRounds(30)
	for _, n := range e.Nodes() {
		if !n.Up() {
			continue
		}
		for _, entry := range ViewOf(e, n).Entries() {
			if entry.Peer < 10 {
				t.Fatalf("live node %d still references dead node %d", n.ID, entry.Peer)
			}
		}
	}
}

func TestSelectPeer(t *testing.T) {
	e := runCyclon(t, 20, 10, 6, 3, 5)
	rng := sim.NewRNG(11)
	for _, n := range e.Nodes() {
		p := SelectPeer(e, n, rng)
		if p < 0 || p == n.ID {
			t.Fatalf("SelectPeer(%d) = %d", n.ID, p)
		}
		if !e.Node(p).Up() {
			t.Fatalf("selected dead peer %d", p)
		}
	}
}

func TestSelectPeerPrunesDead(t *testing.T) {
	e := runCyclon(t, 10, 5, 4, 2, 6)
	// Kill everyone except node 0.
	for id := 1; id < 10; id++ {
		e.SetUp(e.Node(id), false)
	}
	rng := sim.NewRNG(3)
	if p := SelectPeer(e, e.Node(0), rng); p != -1 {
		t.Fatalf("SelectPeer with no live peers = %d, want -1", p)
	}
	if ViewOf(e, e.Node(0)).Len() != 0 {
		t.Fatal("dead entries should have been pruned")
	}
}

func TestNewDefaults(t *testing.T) {
	p := New(0, 0)
	if p.ViewSize != 20 {
		t.Fatalf("default view size %d", p.ViewSize)
	}
	if p.ShuffleLen <= 0 || p.ShuffleLen > p.ViewSize {
		t.Fatalf("default shuffle length %d", p.ShuffleLen)
	}
	p = New(10, 99) // shuffle > view clamps
	if p.ShuffleLen > p.ViewSize {
		t.Fatalf("shuffle length %d not clamped", p.ShuffleLen)
	}
}

func TestConnectivityReachability(t *testing.T) {
	// The union of views must form a connected digraph (weakly) so gossip
	// reaches everyone.
	const nodes = 50
	e := runCyclon(t, nodes, 40, 8, 4, 7)
	adj := make([][]int, nodes)
	for _, n := range e.Nodes() {
		for _, entry := range ViewOf(e, n).Entries() {
			adj[n.ID] = append(adj[n.ID], entry.Peer)
			adj[entry.Peer] = append(adj[entry.Peer], n.ID)
		}
	}
	seen := make([]bool, nodes)
	stack := []int{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	if count != nodes {
		t.Fatalf("overlay disconnected: reached %d of %d", count, nodes)
	}
}

func TestViewAccessors(t *testing.T) {
	v := &View{}
	v.entries = []Entry{{Peer: 3, Age: 1}, {Peer: 5, Age: 2}}
	if !v.Contains(3) || v.Contains(4) {
		t.Fatal("Contains broken")
	}
	peers := v.Peers()
	if len(peers) != 2 || peers[0] != 3 || peers[1] != 5 {
		t.Fatalf("Peers = %v", peers)
	}
	// Entries returns a copy.
	ents := v.Entries()
	ents[0].Peer = 99
	if v.entries[0].Peer == 99 {
		t.Fatal("Entries should return a copy")
	}
	v.remove(3)
	if v.Contains(3) || v.Len() != 1 {
		t.Fatal("remove broken")
	}
	if (&View{}).oldestIndex() != -1 {
		t.Fatal("oldestIndex of empty view should be -1")
	}
}

// TestProtocolReuseDeterminism pins the BoundRNG fix: running the same
// Protocol value on a second engine must match a fresh instance on that
// engine — the derived stream may not leak state across engines.
func TestProtocolReuseDeterminism(t *testing.T) {
	const nodes, rounds, view, shuffle = 30, 20, 6, 3
	p := New(view, shuffle)
	e1 := sim.NewEngine(nodes, 3)
	e1.Register(p)
	e1.RunRounds(rounds)
	e2 := sim.NewEngine(nodes, 5)
	e2.Register(p) // reused instance
	e2.RunRounds(rounds)
	ref := runCyclon(t, nodes, rounds, view, shuffle, 5)
	for _, n := range e2.Nodes() {
		got, want := ViewOf(e2, n).Entries(), ViewOf(ref, n).Entries()
		if len(got) != len(want) {
			t.Fatalf("node %d: view size %d != %d", n.ID, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node %d entry %d: reused instance %+v != fresh %+v", n.ID, i, got[i], want[i])
			}
		}
	}
}
