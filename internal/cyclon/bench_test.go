package cyclon

import (
	"testing"

	"github.com/glap-sim/glap/internal/sim"
)

// BenchmarkShuffleRound measures one full Cyclon round over 1000 nodes with
// the paper-scale view (20 entries, 8-entry shuffles).
func BenchmarkShuffleRound(b *testing.B) {
	e := sim.NewEngine(1000, 1)
	e.Register(New(20, 8))
	e.RunRounds(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRounds(1)
	}
}

// BenchmarkMergeFold isolates the view-merge fold on a full view receiving a
// ShuffleLen-deep exchange of entirely new peers — the worst case for the
// eviction scan, where every received entry walks the sent-away membership
// check. The monotone cursor keeps the whole fold O(view + shuffle·sent)
// instead of O(shuffle · view · sent).
func BenchmarkMergeFold(b *testing.B) {
	e := sim.NewEngine(1000, 1)
	c := New(20, 8)
	e.Register(c)
	e.RunRounds(1)
	master := make([]Entry, 20)
	for i := range master {
		master[i] = Entry{Peer: i + 1, Age: i}
	}
	sent := make([]Entry, 8)
	for i := range sent {
		sent[i] = Entry{Peer: i + 1, Age: i} // first 8 view entries sent away
	}
	received := make([]Entry, 8)
	for i := range received {
		received[i] = Entry{Peer: 100 + i} // all new to the view, age 0
	}
	v := &View{entries: make([]Entry, 20)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(v.entries, master)
		c.merge(e, v, 0, received, sent)
	}
}

func BenchmarkSelectPeer(b *testing.B) {
	e := sim.NewEngine(200, 1)
	e.Register(New(20, 8))
	e.RunRounds(10)
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SelectPeer(e, e.Node(i%200), rng)
	}
}
