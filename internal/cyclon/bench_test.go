package cyclon

import (
	"testing"

	"github.com/glap-sim/glap/internal/sim"
)

// BenchmarkShuffleRound measures one full Cyclon round over 1000 nodes with
// the paper-scale view (20 entries, 8-entry shuffles).
func BenchmarkShuffleRound(b *testing.B) {
	e := sim.NewEngine(1000, 1)
	e.Register(New(20, 8))
	e.RunRounds(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRounds(1)
	}
}

func BenchmarkSelectPeer(b *testing.B) {
	e := sim.NewEngine(200, 1)
	e.Register(New(20, 8))
	e.RunRounds(10)
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SelectPeer(e, e.Node(i%200), rng)
	}
}
