// Package cyclon implements the Cyclon gossip-based membership protocol
// (Voulgaris, Gavidia, van Steen, 2005): every node keeps a small partial
// view of the network and, once per round, swaps a random subset of it with
// its oldest neighbour. The resulting overlay approximates a random graph
// and provides the uniform random peer sampling that both the GLAP learning
// and consolidation components, as well as the gossip baselines, rely on.
package cyclon

import (
	"github.com/glap-sim/glap/internal/sim"
)

// ProtocolName is the registration name used with sim.Engine.
const ProtocolName = "cyclon"

// Entry is one view slot: a peer id and the entry's age in rounds.
type Entry struct {
	Peer int
	Age  int
}

// View is a node's partial membership view.
type View struct {
	entries []Entry
}

// Len returns the number of entries.
func (v *View) Len() int { return len(v.entries) }

// Entries returns a copy of the view's entries.
func (v *View) Entries() []Entry {
	out := make([]Entry, len(v.entries))
	copy(out, v.entries)
	return out
}

// Contains reports whether peer is in the view.
func (v *View) Contains(peer int) bool {
	for _, e := range v.entries {
		if e.Peer == peer {
			return true
		}
	}
	return false
}

// Peers returns the peer ids in the view.
func (v *View) Peers() []int {
	out := make([]int, len(v.entries))
	for i, e := range v.entries {
		out[i] = e.Peer
	}
	return out
}

func (v *View) remove(peer int) {
	for i, e := range v.entries {
		if e.Peer == peer {
			v.entries = append(v.entries[:i], v.entries[i+1:]...)
			return
		}
	}
}

// oldestIndex returns the index of the entry with maximal age, or -1 when
// the view is empty. Ties break toward the lowest index, which is
// deterministic given the deterministic view construction.
func (v *View) oldestIndex() int {
	best, bestAge := -1, -1
	for i, e := range v.entries {
		if e.Age > bestAge {
			best, bestAge = i, e.Age
		}
	}
	return best
}

// Protocol is the Cyclon protocol. Register it first so that higher layers
// can sample peers in the same round.
type Protocol struct {
	// ViewSize is the partial view capacity (paper-typical: 20).
	ViewSize int
	// ShuffleLen is the number of entries exchanged per shuffle (<=
	// ViewSize; typical: 8).
	ShuffleLen int

	rng sim.BoundRNG

	// scratch holds the per-shuffle request/reply/permutation buffers,
	// reused across nodes and rounds so the steady-state shuffle allocates
	// nothing. Safe because the protocol mutates peer views and therefore
	// always runs its node pass sequentially (it does not implement
	// sim.ParallelRound).
	scratch struct {
		req, reply []Entry
		perm       []int
		sent       []int
	}
}

// rngFor returns the protocol's random stream for engine e, re-deriving it
// when the protocol value is reused on a different engine so that every
// engine sees the stream its own seed determines.
func (c *Protocol) rngFor(e *sim.Engine) *sim.RNG { return c.rng.For(e, 0xc1c10) }

// New returns a Cyclon protocol with the given view size and shuffle length.
func New(viewSize, shuffleLen int) *Protocol {
	if viewSize <= 0 {
		viewSize = 20
	}
	if shuffleLen <= 0 || shuffleLen > viewSize {
		shuffleLen = (viewSize + 1) / 2
	}
	return &Protocol{ViewSize: viewSize, ShuffleLen: shuffleLen}
}

// Name implements sim.Protocol.
func (c *Protocol) Name() string { return ProtocolName }

// Setup bootstraps node n's view with ViewSize distinct random peers.
func (c *Protocol) Setup(e *sim.Engine, n *sim.Node) any {
	rng := c.rngFor(e)
	v := &View{}
	size := c.ViewSize
	if size > e.N()-1 {
		size = e.N() - 1
	}
	for len(v.entries) < size {
		p := rng.Intn(e.N())
		if p == n.ID || v.Contains(p) {
			continue
		}
		v.entries = append(v.entries, Entry{Peer: p})
	}
	return v
}

// viewOf returns node n's Cyclon view.
func viewOf(e *sim.Engine, n *sim.Node) *View {
	return e.State(ProtocolName, n).(*View)
}

// InactiveSpan implements sim.QuiescentRound. Cyclon shuffles mutate only
// the overlay views and the protocol's random stream; neither appears in the
// simulation's outputs. Their sole downstream effect is which peers the
// sampling selectors return — and the engine only skips when every protocol
// consuming those samples is simultaneously inert for EVERY possible peer
// choice, which is exactly the proviso of the QuiescentRound contract. The
// overlay therefore certifies any span unconditionally.
func (c *Protocol) InactiveSpan(e *sim.Engine, from, to int) int { return to - from }

// Round implements one Cyclon shuffle for node n: age the view, pick the
// oldest live neighbour q, exchange ShuffleLen entries, and merge replies
// preferring fresh entries. Entries pointing at switched-off nodes are
// discarded as they are encountered (the simulation analogue of a timeout).
func (c *Protocol) Round(e *sim.Engine, n *sim.Node, round int) {
	rng := c.rngFor(e)
	v := viewOf(e, n)
	for i := range v.entries {
		v.entries[i].Age++
	}
	// Pick oldest live target, dropping dead entries on the way.
	var q *sim.Node
	for {
		oi := v.oldestIndex()
		if oi < 0 {
			return
		}
		cand := e.Node(v.entries[oi].Peer)
		if cand.Up() {
			q = cand
			v.entries = append(v.entries[:oi], v.entries[oi+1:]...)
			break
		}
		v.entries = append(v.entries[:oi], v.entries[oi+1:]...)
	}

	// Build the request: self with age 0 plus up to ShuffleLen-1 random
	// view entries. Entries are copied by value into the reused scratch
	// buffers, so later view mutations cannot alias them.
	req := append(c.scratch.req[:0], Entry{Peer: n.ID, Age: 0})
	idx := rng.PermInto(c.scratch.perm, len(v.entries))
	for _, i := range idx {
		if len(req) >= c.ShuffleLen {
			break
		}
		req = append(req, v.entries[i])
	}

	// The passive side replies with up to ShuffleLen random entries and
	// merges the request.
	qv := viewOf(e, q)
	reply := c.scratch.reply[:0]
	qidx := rng.PermInto(idx, len(qv.entries))
	for _, i := range qidx {
		if len(reply) >= c.ShuffleLen {
			break
		}
		reply = append(reply, qv.entries[i])
	}
	c.scratch.req, c.scratch.reply, c.scratch.perm = req, reply, qidx
	c.merge(e, qv, q.ID, req, reply)
	c.merge(e, v, n.ID, reply, req)
	// Re-add the shuffle partner when space allows: without this, views in
	// very small networks erode (the discarded oldest target is often not
	// compensated by the reply, which may contain only duplicates or self).
	if len(v.entries) < c.ViewSize && !v.Contains(q.ID) {
		v.entries = append(v.entries, Entry{Peer: q.ID})
	}
}

// merge folds received entries into view v (owned by self), preferring to
// overwrite the entries that were sent away, never duplicating peers or
// adding self, and keeping the freshest age for duplicates. The sent-away
// membership lives in a reused slice rather than a map: shuffles exchange at
// most ShuffleLen (typically 8) distinct peers, where a linear scan beats
// map hashing and allocates nothing.
func (c *Protocol) merge(e *sim.Engine, v *View, self int, received, sent []Entry) {
	sentPeers := c.scratch.sent[:0]
	for _, s := range sent {
		sentPeers = append(sentPeers, s.Peer)
	}
	// evictFrom is a monotone cursor over the view for the sent-away scans:
	// slots below it have been checked and can never re-acquire a sent-away
	// peer within this merge, so the per-received-entry scan restarts where
	// the last one stopped instead of from slot 0 (the scan was 2.4% of a
	// whole-pretrain profile). Soundness rests on an invariant of the loop:
	// sentPeers ⊆ view at all times — a received entry never carries a
	// sent-away peer that is absent from the view (a sent-away eviction
	// removes the peer from sentPeers, and an oldest-entry eviction only runs
	// when no sent-away peer remains anywhere in the view) — so every view
	// write below the cursor installs a peer that is not in sentPeers, and a
	// scan from the cursor finds the same first hit a scan from 0 would.
	evictFrom := 0
	for _, r := range received {
		if r.Peer == self || !e.Node(r.Peer).Up() {
			continue
		}
		if i := indexOf(v.entries, r.Peer); i >= 0 {
			if r.Age < v.entries[i].Age {
				v.entries[i].Age = r.Age
			}
			continue
		}
		if len(v.entries) < c.ViewSize {
			v.entries = append(v.entries, r)
			continue
		}
		// View full: first evict an entry we sent away, else the oldest.
		if len(sentPeers) > 0 {
			if ei := firstInFrom(v.entries, sentPeers, evictFrom); ei >= 0 {
				sentPeers = removePeer(sentPeers, v.entries[ei].Peer)
				v.entries[ei] = r
				evictFrom = ei + 1
				continue
			}
			// No sent-away peer anywhere in [evictFrom:), and none below the
			// cursor by the invariant: the list is dead for this merge.
			sentPeers = sentPeers[:0]
		}
		if oi := v.oldestIndex(); oi >= 0 && v.entries[oi].Age > r.Age {
			v.entries[oi] = r
		}
	}
	c.scratch.sent = sentPeers
}

func indexOf(entries []Entry, peer int) int {
	for i, e := range entries {
		if e.Peer == peer {
			return i
		}
	}
	return -1
}

// firstInFrom returns the index of the first entry at or after from whose
// peer is in sent, or -1. merge's cursor discipline guarantees no sent peer
// sits below from, so the result equals a scan of the whole slice.
func firstInFrom(entries []Entry, sent []int, from int) int {
	for i := from; i < len(entries); i++ {
		for _, p := range sent {
			if entries[i].Peer == p {
				return i
			}
		}
	}
	return -1
}

// removePeer deletes one occurrence of peer from the sent list. Order is
// irrelevant — the list is only ever a membership set — so it swap-deletes.
func removePeer(sent []int, peer int) []int {
	for i, p := range sent {
		if p == peer {
			sent[i] = sent[len(sent)-1]
			return sent[:len(sent)-1]
		}
	}
	return sent
}

// SelectPeer returns a uniformly random live peer from n's view, removing
// dead entries as a side effect. It returns -1 when no live peer is known.
// rng must be the caller's own stream (peer selection belongs to the calling
// protocol's randomness, not Cyclon's).
func SelectPeer(e *sim.Engine, n *sim.Node, rng *sim.RNG) int {
	v := viewOf(e, n)
	for v.Len() > 0 {
		i := rng.Intn(v.Len())
		peer := v.entries[i].Peer
		if e.Node(peer).Up() {
			return peer
		}
		v.entries = append(v.entries[:i], v.entries[i+1:]...)
	}
	return -1
}

// ViewOf exposes node n's view for observers and tests.
func ViewOf(e *sim.Engine, n *sim.Node) *View { return viewOf(e, n) }
