package newscast

import (
	"testing"

	"github.com/glap-sim/glap/internal/sim"
)

// BenchmarkExchangeRound measures one Newscast round over 1000 nodes with
// the default view size.
func BenchmarkExchangeRound(b *testing.B) {
	e := sim.NewEngine(1000, 1)
	e.Register(New(20))
	e.RunRounds(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRounds(1)
	}
}
