package newscast

import (
	"testing"

	"github.com/glap-sim/glap/internal/sim"
)

func run(t *testing.T, nodes, rounds, view int, seed uint64) *sim.Engine {
	t.Helper()
	e := sim.NewEngine(nodes, seed)
	e.Register(New(view))
	e.RunRounds(rounds)
	return e
}

func TestViewInvariants(t *testing.T) {
	const nodes, view = 40, 8
	e := run(t, nodes, 30, view, 1)
	for _, n := range e.Nodes() {
		v := ViewOf(e, n)
		if v.Len() == 0 || v.Len() > view {
			t.Fatalf("node %d view size %d", n.ID, v.Len())
		}
		seen := map[int]bool{}
		for _, entry := range v.entries {
			if entry.Peer == n.ID {
				t.Fatalf("node %d references itself", n.ID)
			}
			if seen[entry.Peer] {
				t.Fatalf("node %d has duplicate peer %d", n.ID, entry.Peer)
			}
			seen[entry.Peer] = true
		}
		// Entries sorted freshest-first.
		for i := 1; i < len(v.entries); i++ {
			if v.entries[i].Time > v.entries[i-1].Time {
				t.Fatalf("node %d view not freshness-sorted", n.ID)
			}
		}
	}
}

func TestFreshnessPropagates(t *testing.T) {
	// After enough rounds, stale bootstrap entries (time 0) should have
	// been displaced by fresh descriptors in most views.
	e := run(t, 40, 30, 8, 2)
	stale, total := 0, 0
	for _, n := range e.Nodes() {
		for _, entry := range ViewOf(e, n).entries {
			total++
			if entry.Time == 0 {
				stale++
			}
		}
	}
	if stale*5 > total {
		t.Fatalf("%d/%d entries still stale after 30 rounds", stale, total)
	}
}

func TestConnectivity(t *testing.T) {
	// Newscast views correlate strongly (both endpoints keep the same
	// merged view), so connectivity needs a larger c than Cyclon; the
	// protocol's own literature recommends c ≳ 2·ln(N)·k. Use the default
	// view size of 20 for a 50-node network.
	const nodes = 50
	e := run(t, nodes, 40, 20, 3)
	adj := make([][]int, nodes)
	for _, n := range e.Nodes() {
		for _, peer := range ViewOf(e, n).Peers() {
			adj[n.ID] = append(adj[n.ID], peer)
			adj[peer] = append(adj[peer], n.ID)
		}
	}
	seen := make([]bool, nodes)
	stack := []int{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	if count != nodes {
		t.Fatalf("overlay disconnected: reached %d of %d", count, nodes)
	}
}

func TestDeadNodesPruned(t *testing.T) {
	e := sim.NewEngine(30, 4)
	e.Register(New(6))
	e.RunRounds(10)
	for id := 0; id < 10; id++ {
		e.SetUp(e.Node(id), false)
	}
	e.RunRounds(25)
	for _, n := range e.Nodes() {
		if !n.Up() {
			continue
		}
		for _, peer := range ViewOf(e, n).Peers() {
			if peer < 10 {
				t.Fatalf("live node %d references dead node %d", n.ID, peer)
			}
		}
	}
}

func TestSelectPeer(t *testing.T) {
	e := run(t, 20, 10, 6, 5)
	rng := sim.NewRNG(7)
	for _, n := range e.Nodes() {
		p := SelectPeer(e, n, rng)
		if p < 0 || p == n.ID || !e.Node(p).Up() {
			t.Fatalf("SelectPeer(%d) = %d", n.ID, p)
		}
	}
}

func TestDefaults(t *testing.T) {
	if New(0).ViewSize != 20 {
		t.Fatal("default view size")
	}
}
