// Package newscast implements the Newscast membership protocol (Jelasity &
// van Steen): each node keeps a view of (peer, heartbeat) entries; once per
// round it picks a random peer from its view, the two nodes exchange full
// views plus fresh self-entries, and each keeps the c freshest entries.
//
// Newscast is the other standard peer-sampling service shipped with PeerSim
// (next to Cyclon). The GLAP stack is written against a PeerSelector
// abstraction, so either overlay can drive it; the comparison tests verify
// the consolidation outcome is insensitive to the choice, which supports
// the paper's claim that GLAP only needs *a* random peer-sampling service.
package newscast

import (
	"sort"

	"github.com/glap-sim/glap/internal/sim"
)

// ProtocolName registers the Newscast protocol.
const ProtocolName = "newscast"

// Entry is one view item: a peer and the (virtual) time its descriptor was
// created. Fresher entries win.
type Entry struct {
	Peer int
	Time int
}

// View is a node's partial view, kept sorted by descending freshness.
type View struct {
	entries []Entry
}

// Len returns the number of entries.
func (v *View) Len() int { return len(v.entries) }

// Peers returns the peer ids in the view.
func (v *View) Peers() []int {
	out := make([]int, len(v.entries))
	for i, e := range v.entries {
		out[i] = e.Peer
	}
	return out
}

// Contains reports whether peer is in the view.
func (v *View) Contains(peer int) bool {
	for _, e := range v.entries {
		if e.Peer == peer {
			return true
		}
	}
	return false
}

// Protocol is the Newscast protocol.
type Protocol struct {
	// ViewSize is the number of entries kept after each merge (typical:
	// 20).
	ViewSize int

	rng sim.BoundRNG
}

// New returns a Newscast protocol with the given view size.
func New(viewSize int) *Protocol {
	if viewSize <= 0 {
		viewSize = 20
	}
	return &Protocol{ViewSize: viewSize}
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return ProtocolName }

// Setup bootstraps the view with random peers at heartbeat 0.
func (p *Protocol) Setup(e *sim.Engine, n *sim.Node) any {
	rng := p.rng.For(e, 0x4e05ca)
	v := &View{}
	size := p.ViewSize
	if size > e.N()-1 {
		size = e.N() - 1
	}
	for v.Len() < size {
		peer := rng.Intn(e.N())
		if peer == n.ID || v.Contains(peer) {
			continue
		}
		v.entries = append(v.entries, Entry{Peer: peer})
	}
	return v
}

func viewOf(e *sim.Engine, n *sim.Node) *View {
	return e.State(ProtocolName, n).(*View)
}

// ViewOf exposes node n's view for tests and selectors.
func ViewOf(e *sim.Engine, n *sim.Node) *View { return viewOf(e, n) }

// Round implements one Newscast exchange: pick a live peer from the view,
// merge both views plus fresh self-descriptors, and truncate both to the c
// freshest distinct entries.
func (p *Protocol) Round(e *sim.Engine, n *sim.Node, round int) {
	rng := p.rng.For(e, 0x4e05ca)
	v := viewOf(e, n)
	var q *sim.Node
	for v.Len() > 0 {
		i := rng.Intn(v.Len())
		cand := e.Node(v.entries[i].Peer)
		if cand.Up() {
			q = cand
			break
		}
		v.entries = append(v.entries[:i], v.entries[i+1:]...)
	}
	if q == nil {
		return
	}
	qv := viewOf(e, q)

	merged := make(map[int]int, v.Len()+qv.Len()+2) // peer -> freshest time
	add := func(peer, tm int) {
		if cur, ok := merged[peer]; !ok || tm > cur {
			merged[peer] = tm
		}
	}
	now := round + 1
	add(n.ID, now)
	add(q.ID, now)
	for _, en := range v.entries {
		add(en.Peer, en.Time)
	}
	for _, en := range qv.entries {
		add(en.Peer, en.Time)
	}

	rebuild := func(self int) []Entry {
		out := make([]Entry, 0, len(merged))
		for peer, tm := range merged {
			if peer == self || !e.Node(peer).Up() {
				continue
			}
			out = append(out, Entry{Peer: peer, Time: tm})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Time != out[j].Time {
				return out[i].Time > out[j].Time
			}
			return out[i].Peer < out[j].Peer
		})
		if len(out) > p.ViewSize {
			out = out[:p.ViewSize]
		}
		return out
	}
	v.entries = rebuild(n.ID)
	qv.entries = rebuild(q.ID)
}

// SelectPeer returns a uniformly random live peer from n's view, pruning
// dead entries, or -1 when none is known — the same contract as
// cyclon.SelectPeer, so it plugs into gossip.PeerSelector directly.
func SelectPeer(e *sim.Engine, n *sim.Node, rng *sim.RNG) int {
	v := viewOf(e, n)
	for v.Len() > 0 {
		i := rng.Intn(v.Len())
		peer := v.entries[i].Peer
		if e.Node(peer).Up() {
			return peer
		}
		v.entries = append(v.entries[:i], v.entries[i+1:]...)
	}
	return -1
}

// Selector adapts SelectPeer to the gossip.PeerSelector signature.
func Selector(e *sim.Engine, n *sim.Node, rng *sim.RNG) int {
	return SelectPeer(e, n, rng)
}
