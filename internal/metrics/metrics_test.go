package metrics

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/trace"
)

func clusterWithDemand(t *testing.T, pms, vms int, cpu float64) *dc.Cluster {
	t.Helper()
	var b bytes.Buffer
	b.WriteString("vm,round,cpu,mem\n")
	for vm := 0; vm < vms; vm++ {
		for r := 0; r < 8; r++ {
			fmt.Fprintf(&b, "%d,%d,%g,0.2\n", vm, r, cpu)
		}
	}
	set, err := trace.LoadCSV(&b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dc.New(dc.Config{PMs: pms, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(5)
	c.PlaceRandom(rng.Intn)
	return c
}

func TestSLAVOCountsOverloadTime(t *testing.T) {
	// Overloaded single PM: SLAVO = 1 (always at 100%).
	c := clusterWithDemand(t, 1, 6, 1.0)
	for _, vm := range c.VMs {
		if vm.Host() != 0 {
			_ = c.Migrate(vm, c.PMs[0])
		}
	}
	c.AdvanceRound(1)
	c.AdvanceRound(2)
	if got := SLAVO(c); math.Abs(got-1) > 1e-12 {
		t.Fatalf("SLAVO = %g, want 1", got)
	}
	// Lightly loaded cluster: SLAVO = 0.
	c2 := clusterWithDemand(t, 2, 4, 0.2)
	c2.AdvanceRound(1)
	if SLAVO(c2) != 0 {
		t.Fatal("SLAVO should be 0 without overload")
	}
}

func TestSLALMAndSLAV(t *testing.T) {
	c := clusterWithDemand(t, 2, 2, 0.5)
	c.AdvanceRound(1)
	if SLALM(c) != 0 {
		t.Fatal("SLALM should be 0 before any migration")
	}
	vm := c.VMs[0]
	_ = c.Migrate(vm, c.PMs[1-vm.Host()])
	if SLALM(c) <= 0 {
		t.Fatal("SLALM should be positive after migration")
	}
	// SLAV = SLAVO * SLALM.
	if got := SLAV(c); math.Abs(got-SLAVO(c)*SLALM(c)) > 1e-15 {
		t.Fatalf("SLAV = %g", got)
	}
}

func TestSLAVOEmptyCluster(t *testing.T) {
	// No PM ever active (fresh cluster, no rounds): no division by zero.
	c := clusterWithDemand(t, 2, 2, 0.5)
	if got := SLAVO(c); got != 0 {
		t.Fatalf("SLAVO = %g on fresh cluster", got)
	}
}

func TestCollectorSeries(t *testing.T) {
	c := clusterWithDemand(t, 3, 6, 0.3)
	e := sim.NewEngine(3, 1)
	if _, err := policy.Bind(e, c); err != nil {
		t.Fatal(err)
	}
	series := Attach(e, c, 0)
	e.RunRounds(5)
	series.Finalize(c)

	if len(series.Samples) != 5 {
		t.Fatalf("%d samples, want 5", len(series.Samples))
	}
	for i, s := range series.Samples {
		if s.Round != i {
			t.Fatalf("sample %d has round %d", i, s.Round)
		}
		if s.ActivePMs != 3 {
			t.Fatalf("active = %d", s.ActivePMs)
		}
	}
	if last, ok := series.Last(); !ok || last.Round != 4 {
		t.Fatal("Last broken")
	}
}

func TestCollectorFromRound(t *testing.T) {
	c := clusterWithDemand(t, 2, 2, 0.3)
	e := sim.NewEngine(2, 1)
	if _, err := policy.Bind(e, c); err != nil {
		t.Fatal(err)
	}
	series := Attach(e, c, 3)
	e.RunRounds(6)
	if len(series.Samples) != 3 {
		t.Fatalf("%d samples, want 3 (rounds 3-5)", len(series.Samples))
	}
	if series.Samples[0].Round != 3 {
		t.Fatalf("first sample at round %d", series.Samples[0].Round)
	}
}

func TestSeriesExtractors(t *testing.T) {
	s := &Series{Samples: []Snapshot{
		{Round: 0, ActivePMs: 10, OverloadedPMs: 2, Migrations: 5, MigrationEnergyJ: 50},
		{Round: 1, ActivePMs: 8, OverloadedPMs: 0, Migrations: 9, MigrationEnergyJ: 90},
		{Round: 2, ActivePMs: 0, OverloadedPMs: 0, Migrations: 9, MigrationEnergyJ: 90},
	}}
	over := s.OverloadedPerRound()
	if over[0] != 2 || over[1] != 0 {
		t.Fatalf("overloaded %v", over)
	}
	act := s.ActivePerRound()
	if act[0] != 10 || act[1] != 8 {
		t.Fatalf("active %v", act)
	}
	per := s.MigrationsPerRound()
	if per[0] != 5 || per[1] != 4 || per[2] != 0 {
		t.Fatalf("per-round %v", per)
	}
	cum := s.CumulativeMigrations()
	if cum[0] != 5 || cum[2] != 9 {
		t.Fatalf("cumulative %v", cum)
	}
	frac := s.FractionOverloaded()
	if math.Abs(frac[0]-0.2) > 1e-12 || frac[1] != 0 || frac[2] != 0 {
		t.Fatalf("fraction %v (zero active must not divide by zero)", frac)
	}
}

func TestLastEmpty(t *testing.T) {
	s := &Series{}
	if _, ok := s.Last(); ok {
		t.Fatal("Last on empty series should report !ok")
	}
}

func TestTotalEnergyAndESV(t *testing.T) {
	c := clusterWithDemand(t, 2, 4, 0.5)
	if TotalEnergyKWh(c) != 0 {
		t.Fatal("fresh cluster should have zero energy")
	}
	c.AdvanceRound(1)
	kwh := TotalEnergyKWh(c)
	if kwh <= 0 {
		t.Fatalf("energy %g after a round", kwh)
	}
	// Two active G5 machines for 120 s: between 2*93*120 and 2*135*120 J.
	lo, hi := 2*93.0*120/3.6e6, 2*135.0*120/3.6e6
	if kwh < lo || kwh > hi {
		t.Fatalf("energy %g outside [%g, %g] kWh", kwh, lo, hi)
	}
	if got := ESV(c); math.Abs(got-kwh*SLAV(c)) > 1e-18 {
		t.Fatalf("ESV = %g, want energy*SLAV", got)
	}
}

// pingPongMigrator moves VM 0 to the other PM every round (2-PM cluster).
type pingPongMigrator struct{ c *dc.Cluster }

func (p *pingPongMigrator) Name() string                         { return "test-migrator" }
func (p *pingPongMigrator) Setup(e *sim.Engine, n *sim.Node) any { return struct{}{} }
func (p *pingPongMigrator) Round(e *sim.Engine, n *sim.Node, round int) {
	if n.ID != 0 {
		return
	}
	vm := p.c.VMs[0]
	dst := p.c.PMs[1-vm.Host()]
	if err := p.c.Migrate(vm, dst); err != nil {
		panic(err)
	}
}

// TestMigrationsPerRoundWithFrom pins the baseline fix: a collector attached
// with From > 0 must not fold the migrations of the skipped window into its
// first per-round delta.
func TestMigrationsPerRoundWithFrom(t *testing.T) {
	c := clusterWithDemand(t, 2, 2, 0.3)
	e := sim.NewEngine(2, 1)
	if _, err := policy.Bind(e, c); err != nil {
		t.Fatal(err)
	}
	e.Register(&pingPongMigrator{c: c})
	series := Attach(e, c, 3)
	e.RunRounds(6)
	per := series.MigrationsPerRound()
	if len(per) != 3 {
		t.Fatalf("%d samples, want 3", len(per))
	}
	for i, v := range per {
		if v != 1 {
			t.Fatalf("per-round[%d] = %v, want 1 (pre-From migrations leaked into the delta: %v)", i, v, per)
		}
	}
}
