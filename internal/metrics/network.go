package metrics

import (
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/topology"
)

// NetworkSeries tracks the data center network's switch activity and energy
// under a topology model — the quantity the paper's future-work extension
// optimises.
type NetworkSeries struct {
	// SwitchPowerW is the instantaneous network power sampled at the end
	// of each round.
	SwitchPowerW []float64
	// ActiveEdge is the number of powered edge (top-of-rack) switches per
	// round.
	ActiveEdge []int
	// EnergyJ is the accumulated network energy over the run.
	EnergyJ float64
}

// AttachNetwork registers a per-round network observer for cluster c laid
// out as tree, using the given switch power model.
func AttachNetwork(e *sim.Engine, c *dc.Cluster, tree *topology.Tree, spec topology.SwitchSpec) *NetworkSeries {
	ns := &NetworkSeries{}
	pmOn := func(pm int) bool { return c.PMs[pm].On() }
	e.Observe(func(e *sim.Engine, round int) {
		p := tree.SwitchPowerW(pmOn, spec)
		edge, _, _ := tree.ActiveSwitches(pmOn)
		ns.SwitchPowerW = append(ns.SwitchPowerW, p)
		ns.ActiveEdge = append(ns.ActiveEdge, edge)
		ns.EnergyJ += p * c.RoundSeconds
	})
	return ns
}

// EnergyKWh returns the accumulated network energy in kilowatt-hours, the
// unit the scenario reports share with the server-side TotalEnergyKWh.
func (ns *NetworkSeries) EnergyKWh() float64 { return ns.EnergyJ / 3.6e6 }

// MeanPowerW returns the average network power over the run.
func (ns *NetworkSeries) MeanPowerW() float64 {
	if len(ns.SwitchPowerW) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range ns.SwitchPowerW {
		sum += p
	}
	return sum / float64(len(ns.SwitchPowerW))
}
