// Package metrics computes the evaluation metrics of Section V-B: SLAVO,
// SLALM and SLAV (Equations 1-2), active/overloaded PM counts, migration
// counters and energy overheads — plus the per-round series collector every
// experiment samples "at the end of each round".
package metrics

import (
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/par"
	"github.com/glap-sim/glap/internal/sim"
)

// The SLA and energy scans fan out over c.Workers via par.OrderedSum, whose
// index-ordered fold keeps the float results bit-identical to the sequential
// loops for every worker count. Skipped items contribute +0.0, which leaves
// a sum of non-negative terms unchanged bit-for-bit.

// SLAVO is Eq. 1 left: the mean, over PMs that were ever active, of the
// fraction of active time spent at 100% CPU utilisation.
func SLAVO(c *dc.Cluster) float64 {
	n := par.OrderedCount(len(c.PMs), 64, c.Workers, func(i int) bool {
		return c.PMs[i].ActiveSeconds() > 0
	})
	if n == 0 {
		return 0
	}
	sum := par.OrderedSum(len(c.PMs), 64, c.Workers, func(i int) float64 {
		pm := c.PMs[i]
		if pm.ActiveSeconds() <= 0 {
			return 0
		}
		return pm.OverloadSeconds() / pm.ActiveSeconds()
	})
	return sum / float64(n)
}

// SLALM is Eq. 1 right: the mean, over VMs, of the migration-induced CPU
// degradation relative to the VM's total requested CPU.
func SLALM(c *dc.Cluster) float64 {
	if len(c.VMs) == 0 {
		return 0
	}
	sum := par.OrderedSum(len(c.VMs), 256, c.Workers, func(i int) float64 {
		return c.VMs[i].DegradationRatio()
	})
	return sum / float64(len(c.VMs))
}

// SLAV is Eq. 2: SLAVO × SLALM.
func SLAV(c *dc.Cluster) float64 { return SLAVO(c) * SLALM(c) }

// Snapshot captures the end-of-round counters of one cluster.
type Snapshot struct {
	Round            int
	ActivePMs        int
	OverloadedPMs    int
	Migrations       int64
	MigrationEnergyJ float64
}

// Series is a per-round time series of snapshots plus the cluster's final
// SLA metrics once the run completes.
type Series struct {
	Samples []Snapshot

	// Final metrics, filled by Finalize.
	SLAVO float64
	SLALM float64
	SLAV  float64

	// baseMigrations is the cluster's cumulative migration count at the
	// moment observation began (the last skipped round, or attach time).
	// MigrationsPerRound deltas start from it so migrations performed before
	// Collector.From are not folded into the first observed round.
	baseMigrations int64
}

// Collector samples a cluster at the end of every engine round.
type Collector struct {
	C      *dc.Cluster
	Series *Series
	// From discards samples before this round (used to skip pre-training
	// windows when policies share one engine).
	From int
}

// Attach registers a collector on engine e observing cluster c and returns
// its series.
//
// The collector is span-capable: every Snapshot field is a function of the
// cluster's current state and cumulative counters only, all of which are
// frozen across a certified-quiet span, so the span form computes the
// snapshot once and replicates it with the round number varying — exactly
// the samples the per-round path would have appended.
func Attach(e *sim.Engine, c *dc.Cluster, fromRound int) *Series {
	col := &Collector{C: c, Series: &Series{baseMigrations: c.Migrations}, From: fromRound}
	sample := func(round int) {
		if round < col.From {
			col.Series.baseMigrations = c.Migrations
			return
		}
		col.Series.Samples = append(col.Series.Samples, Snapshot{
			Round:            round,
			ActivePMs:        c.ActivePMs(),
			OverloadedPMs:    c.OverloadedPMs(),
			Migrations:       c.Migrations,
			MigrationEnergyJ: c.MigrationEnergyJ,
		})
	}
	e.ObserveSpan(sim.SpanHook{
		Each: func(e *sim.Engine, round int) { sample(round) },
		Quiet: func(e *sim.Engine, from, to int) bool {
			return true // sampling never blocks: pure reads of frozen state
		},
		Span: func(e *sim.Engine, from, to int) {
			if to <= col.From {
				// Entirely inside the discard window: track the base only.
				col.Series.baseMigrations = c.Migrations
				return
			}
			lo := from
			if lo < col.From {
				col.Series.baseMigrations = c.Migrations
				lo = col.From
			}
			snap := Snapshot{
				ActivePMs:        c.ActivePMs(),
				OverloadedPMs:    c.OverloadedPMs(),
				Migrations:       c.Migrations,
				MigrationEnergyJ: c.MigrationEnergyJ,
			}
			for r := lo; r < to; r++ {
				snap.Round = r
				col.Series.Samples = append(col.Series.Samples, snap)
			}
		},
	})
	return col.Series
}

// Finalize fills the series' SLA metrics from the cluster's accumulated
// accounting.
func (s *Series) Finalize(c *dc.Cluster) {
	s.SLAVO = SLAVO(c)
	s.SLALM = SLALM(c)
	s.SLAV = SLAV(c)
}

// Last returns the final snapshot; ok is false for an empty series.
func (s *Series) Last() (Snapshot, bool) {
	if len(s.Samples) == 0 {
		return Snapshot{}, false
	}
	return s.Samples[len(s.Samples)-1], true
}

// OverloadedPerRound extracts the overloaded-PM count series as float64 for
// summary statistics.
func (s *Series) OverloadedPerRound() []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = float64(sm.OverloadedPMs)
	}
	return out
}

// ActivePerRound extracts the active-PM count series.
func (s *Series) ActivePerRound() []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = float64(sm.ActivePMs)
	}
	return out
}

// MigrationsPerRound extracts the per-round (non-cumulative) migration
// counts. The first delta is taken against the cumulative count when
// observation began, so a collector attached with From > 0 does not fold
// every pre-window migration into its first sample.
func (s *Series) MigrationsPerRound() []float64 {
	out := make([]float64, len(s.Samples))
	prev := s.baseMigrations
	for i, sm := range s.Samples {
		out[i] = float64(sm.Migrations - prev)
		prev = sm.Migrations
	}
	return out
}

// CumulativeMigrations extracts the running migration totals.
func (s *Series) CumulativeMigrations() []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = float64(sm.Migrations)
	}
	return out
}

// FractionOverloaded returns, per round, overloaded/active (0 when no PM is
// active) — the Figure 6 metric.
func (s *Series) FractionOverloaded() []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		if sm.ActivePMs > 0 {
			out[i] = float64(sm.OverloadedPMs) / float64(sm.ActivePMs)
		}
	}
	return out
}

// TotalEnergyKWh returns the cluster's total server energy over the run —
// baseline power of active PMs plus the live-migration overhead — in kWh,
// the unit Beloglazov & Buyya report energy in.
func TotalEnergyKWh(c *dc.Cluster) float64 {
	// The fold starts at MigrationEnergyJ (not 0), so par.OrderedSum would
	// associate differently; gather the per-PM terms in parallel and fold
	// them here in the original order from the original initial value.
	vals := make([]float64, len(c.PMs))
	par.ForChunks(len(c.PMs), 64, c.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			vals[i] = c.PMs[i].EnergyJ()
		}
	})
	total := c.MigrationEnergyJ
	for _, v := range vals {
		total += v
	}
	return total / 3.6e6
}

// ESV is the combined Energy-SLA-Violation metric of the PABFD line of
// work: total energy (kWh) × SLAV. Lower is better on both axes at once.
func ESV(c *dc.Cluster) float64 {
	return TotalEnergyKWh(c) * SLAV(c)
}
