package gossip

// This file is the single home of the scalar pairwise-averaging arithmetic —
// the merge operator of the paper's Algorithm 2 in its two transport forms.
// The cycle-driven Protocol (NewAverage) applies MergeScalar to both
// endpoint states at once; the message-passing AsyncAverage moves the same
// mass via PushDelta/reply. The forms are intentionally NOT reduced to one
// expression: (a+b)/2 and b+(a-b)/2 differ in floating point, and each
// transport's golden behaviour is pinned to its own form. What the shared
// file guarantees — and the equivalence test enforces — is that both
// conserve total mass and contract toward the same mean.

// MergeScalar is the synchronous pairwise merge: both endpoints adopt the
// midpoint of their values.
func MergeScalar(a, b *Scalar) {
	avg := (a.V + b.V) / 2
	a.V, b.V = avg, avg
}

// PushDelta is the asynchronous form of the same merge: given the local
// value and a pushed remote value, it returns the mass delta the receiver
// adds to itself and echoes back for the sender to subtract. Each completed
// push/reply pair moves delta without creating or destroying mass, which
// keeps the network-wide sum invariant under arbitrary interleaving.
func PushDelta(local, pushed float64) float64 {
	return (pushed - local) / 2
}
