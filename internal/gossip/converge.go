package gossip

import (
	"github.com/glap-sim/glap/internal/par"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/stats"
)

// VectorFunc extracts a sparse vector from a node for similarity
// measurement; nodes returning nil are skipped (e.g. PMs that never ran the
// learning phase).
type VectorFunc[K comparable] func(e *sim.Engine, n *sim.Node) map[K]float64

// MeanPairwiseCosine estimates how close the per-node vectors are to
// identical by averaging the cosine similarity over `pairs` random pairs of
// distinct up nodes with non-nil vectors. This is the convergence metric of
// the Figure 5 experiment. It returns 1 for fewer than two eligible nodes
// (a single holder is trivially converged).
func MeanPairwiseCosine[K comparable](e *sim.Engine, vec VectorFunc[K], pairs int, rng *sim.RNG) float64 {
	var holders []*sim.Node
	vecs := make(map[int]map[K]float64)
	for _, n := range e.Nodes() {
		if !n.Up() {
			continue
		}
		if v := vec(e, n); v != nil && len(v) > 0 {
			holders = append(holders, n)
			vecs[n.ID] = v
		}
	}
	if len(holders) < 2 {
		return 1
	}
	if pairs <= 0 {
		pairs = 64
	}
	sum, cnt := 0.0, 0
	for i := 0; i < pairs; i++ {
		a := holders[rng.Intn(len(holders))]
		b := holders[rng.Intn(len(holders))]
		if a.ID == b.ID {
			continue
		}
		sum += stats.CosineMaps(vecs[a.ID], vecs[b.ID])
		cnt++
	}
	if cnt == 0 {
		return 1
	}
	return sum / float64(cnt)
}

// DenseVectorFunc extracts a node's dense, aligned similarity vector; all
// nodes must use one layout (same length, same cell order). Nodes returning
// nil or empty are skipped. Convergence measurement runs every measured
// round over every node, so the dense form — typically a per-node reusable
// buffer over the calibrated Q space — replaces the per-sample map builds
// of VectorFunc with slice fills.
type DenseVectorFunc func(e *sim.Engine, n *sim.Node) []float64

// DenseVectorFunc32 is DenseVectorFunc over float32 vectors — the form
// F32-tier Q stores export so similarity measurement never widens whole
// tables to float64.
type DenseVectorFunc32 func(e *sim.Engine, n *sim.Node) []float32

// denseElem are the element types dense similarity vectors come in.
type denseElem interface{ ~float32 | ~float64 }

// collectDense gathers the eligible nodes' dense vectors, indexed alongside
// holders. Vector extraction fans out over the engine's workers — vec fills
// the node's own buffer, a node-local write under the ParallelRound rules —
// and the compaction that follows is sequential in node order, so the holder
// list is identical for every worker count.
func collectDense[F denseElem](e *sim.Engine, vec func(e *sim.Engine, n *sim.Node) []F) ([]*sim.Node, [][]F) {
	nodes := e.Nodes()
	byNode := make([][]F, len(nodes))
	par.ForChunks(len(nodes), 64, e.Workers, func(lo, hi int) {
		for i, n := range nodes[lo:hi] {
			if !n.Up() {
				continue
			}
			if v := vec(e, n); len(v) > 0 {
				byNode[lo+i] = v
			}
		}
	})
	var holders []*sim.Node
	var vecs [][]F
	for i, v := range byNode {
		if v != nil {
			holders = append(holders, nodes[i])
			vecs = append(vecs, v)
		}
	}
	return holders, vecs
}

// meanPairwiseCosineDense is the sampling core shared by both element
// widths; cos supplies the aligned cosine kernel for F.
func meanPairwiseCosineDense[F denseElem](e *sim.Engine, vec func(e *sim.Engine, n *sim.Node) []F, pairs int, rng *sim.RNG, cos func(a, b []F) float64) float64 {
	holders, vecs := collectDense(e, vec)
	if len(holders) < 2 {
		return 1
	}
	if pairs <= 0 {
		pairs = 64
	}
	type pair struct{ a, b int }
	sampled := make([]pair, 0, pairs)
	for i := 0; i < pairs; i++ {
		a := rng.Intn(len(holders))
		b := rng.Intn(len(holders))
		if holders[a].ID == holders[b].ID {
			continue
		}
		sampled = append(sampled, pair{a, b})
	}
	if len(sampled) == 0 {
		return 1
	}
	sum := par.OrderedSum(len(sampled), 8, e.Workers, func(i int) float64 {
		return cos(vecs[sampled[i].a], vecs[sampled[i].b])
	})
	return sum / float64(len(sampled))
}

// MeanPairwiseCosineDense is MeanPairwiseCosine over aligned dense vectors:
// each sampled pair costs one dot-product scan, with no map allocation. Pair
// sampling stays sequential (the rng draw sequence is part of the golden
// fingerprint); the dot products fan out over the engine's workers and fold
// in sample order, bit-identical to the sequential loop.
func MeanPairwiseCosineDense(e *sim.Engine, vec DenseVectorFunc, pairs int, rng *sim.RNG) float64 {
	return meanPairwiseCosineDense(e, (func(e *sim.Engine, n *sim.Node) []float64)(vec), pairs, rng, stats.CosineAligned)
}

// MeanPairwiseCosineDense32 is MeanPairwiseCosineDense over float32 vectors:
// the same pair-draw sequence and fold order, with each scan touching half
// the bytes. The cosine kernel accumulates in float64 (stats.CosineAligned32),
// so only the vector storage — not the measurement arithmetic — is narrowed.
func MeanPairwiseCosineDense32(e *sim.Engine, vec DenseVectorFunc32, pairs int, rng *sim.RNG) float64 {
	return meanPairwiseCosineDense(e, (func(e *sim.Engine, n *sim.Node) []float32)(vec), pairs, rng, stats.CosineAligned32)
}

// allPairsCosineDense is the exhaustive core shared by both element widths.
func allPairsCosineDense[F denseElem](e *sim.Engine, vec func(e *sim.Engine, n *sim.Node) []F, cos func(a, b []F) float64) float64 {
	_, vecs := collectDense(e, vec)
	if len(vecs) < 2 {
		return 1
	}
	sum, cnt := 0.0, 0
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			sum += cos(vecs[i], vecs[j])
			cnt++
		}
	}
	return sum / float64(cnt)
}

// AllPairsCosineDense computes the exact mean pairwise cosine similarity
// over aligned dense vectors; O(n²) pairs, intended for small networks and
// tests.
func AllPairsCosineDense(e *sim.Engine, vec DenseVectorFunc) float64 {
	return allPairsCosineDense(e, (func(e *sim.Engine, n *sim.Node) []float64)(vec), stats.CosineAligned)
}

// AllPairsCosineDense32 is AllPairsCosineDense over float32 vectors.
func AllPairsCosineDense32(e *sim.Engine, vec DenseVectorFunc32) float64 {
	return allPairsCosineDense(e, (func(e *sim.Engine, n *sim.Node) []float32)(vec), stats.CosineAligned32)
}

// AllPairsCosine computes the exact mean pairwise cosine similarity across
// all pairs of eligible nodes; O(n^2) and intended for small networks and
// tests.
func AllPairsCosine[K comparable](e *sim.Engine, vec VectorFunc[K]) float64 {
	var vecs []map[K]float64
	for _, n := range e.Nodes() {
		if !n.Up() {
			continue
		}
		if v := vec(e, n); v != nil && len(v) > 0 {
			vecs = append(vecs, v)
		}
	}
	if len(vecs) < 2 {
		return 1
	}
	sum, cnt := 0.0, 0
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			sum += stats.CosineMaps(vecs[i], vecs[j])
			cnt++
		}
	}
	return sum / float64(cnt)
}
