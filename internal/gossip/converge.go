package gossip

import (
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/stats"
)

// VectorFunc extracts a sparse vector from a node for similarity
// measurement; nodes returning nil are skipped (e.g. PMs that never ran the
// learning phase).
type VectorFunc[K comparable] func(e *sim.Engine, n *sim.Node) map[K]float64

// MeanPairwiseCosine estimates how close the per-node vectors are to
// identical by averaging the cosine similarity over `pairs` random pairs of
// distinct up nodes with non-nil vectors. This is the convergence metric of
// the Figure 5 experiment. It returns 1 for fewer than two eligible nodes
// (a single holder is trivially converged).
func MeanPairwiseCosine[K comparable](e *sim.Engine, vec VectorFunc[K], pairs int, rng *sim.RNG) float64 {
	var holders []*sim.Node
	vecs := make(map[int]map[K]float64)
	for _, n := range e.Nodes() {
		if !n.Up() {
			continue
		}
		if v := vec(e, n); v != nil && len(v) > 0 {
			holders = append(holders, n)
			vecs[n.ID] = v
		}
	}
	if len(holders) < 2 {
		return 1
	}
	if pairs <= 0 {
		pairs = 64
	}
	sum, cnt := 0.0, 0
	for i := 0; i < pairs; i++ {
		a := holders[rng.Intn(len(holders))]
		b := holders[rng.Intn(len(holders))]
		if a.ID == b.ID {
			continue
		}
		sum += stats.CosineMaps(vecs[a.ID], vecs[b.ID])
		cnt++
	}
	if cnt == 0 {
		return 1
	}
	return sum / float64(cnt)
}

// AllPairsCosine computes the exact mean pairwise cosine similarity across
// all pairs of eligible nodes; O(n^2) and intended for small networks and
// tests.
func AllPairsCosine[K comparable](e *sim.Engine, vec VectorFunc[K]) float64 {
	var vecs []map[K]float64
	for _, n := range e.Nodes() {
		if !n.Up() {
			continue
		}
		if v := vec(e, n); v != nil && len(v) > 0 {
			vecs = append(vecs, v)
		}
	}
	if len(vecs) < 2 {
		return 1
	}
	sum, cnt := 0.0, 0
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			sum += stats.CosineMaps(vecs[i], vecs[j])
			cnt++
		}
	}
	return sum / float64(cnt)
}
