package gossip

import (
	"github.com/glap-sim/glap/internal/sim"
)

// AsyncAverage is the event-driven (message-passing) counterpart of
// NewAverage: instead of the simulator shortcut of merging both endpoint
// states in place, endpoints exchange real messages through a Transport
// with latency and possible loss.
//
// The exchange transfers *mass deltas*, which makes it exact under
// asynchrony: on a push carrying the sender's value a, the receiver moves
// delta = (a-b)/2 into its own value and returns delta to the sender, who
// subtracts it from whatever its value is by then. Every message pair moves
// mass without creating or destroying it, so the network-wide sum is
// invariant even when exchanges interleave arbitrarily — only a *lost*
// reply leaks mass, which the loss tests quantify.
type AsyncAverage struct {
	// ProtoName registers both the round protocol and the message handler.
	ProtoName string
	// Tr carries the messages.
	Tr *sim.Transport
	// Init produces the initial value per node.
	Init func(e *sim.Engine, n *sim.Node) float64
	// Select picks the gossip partner; nil defaults to UniformSelector
	// (the async protocol is usually exercised without a Cyclon overlay).
	Select PeerSelector

	rng sim.BoundRNG
}

// asyncState is the per-node value cell.
type asyncState struct {
	V float64
}

type pushMsg struct{ V float64 }
type replyMsg struct{ Delta float64 }

// Name implements sim.Protocol and sim.Handler.
func (a *AsyncAverage) Name() string { return a.ProtoName }

// Setup implements sim.Protocol.
func (a *AsyncAverage) Setup(e *sim.Engine, n *sim.Node) any {
	return &asyncState{V: a.Init(e, n)}
}

// Round implements the active thread: push the current value to one peer.
func (a *AsyncAverage) Round(e *sim.Engine, n *sim.Node, round int) {
	sel := a.Select
	if sel == nil {
		sel = UniformSelector
	}
	peer := sel(e, n, a.rng.For(e, 0xa57c, hashName(a.ProtoName)))
	if peer < 0 {
		return
	}
	st := e.State(a.ProtoName, n).(*asyncState)
	a.Tr.Send(n.ID, peer, a.ProtoName, pushMsg{V: st.V})
}

// Deliver implements sim.Handler.
func (a *AsyncAverage) Deliver(e *sim.Engine, n *sim.Node, m sim.Message) {
	st := e.State(a.ProtoName, n).(*asyncState)
	switch p := m.Payload.(type) {
	case pushMsg:
		delta := PushDelta(st.V, p.V)
		st.V += delta
		a.Tr.Send(n.ID, m.From, a.ProtoName, replyMsg{Delta: delta})
	case replyMsg:
		st.V -= p.Delta
	}
}

// Value returns node n's current estimate.
func (a *AsyncAverage) Value(e *sim.Engine, n *sim.Node) float64 {
	return e.State(a.ProtoName, n).(*asyncState).V
}
