package gossip

import (
	"math"
	"testing"

	"github.com/glap-sim/glap/internal/sim"
)

// runAsync builds and runs an AsyncAverage epidemic over n nodes with the
// given latency model and drop probability; returns the protocol and engine.
func runAsync(t *testing.T, n, rounds int, seed uint64, latency sim.LatencyFunc, drop float64) (*AsyncAverage, *sim.Engine) {
	t.Helper()
	e := sim.NewEngine(n, seed)
	tr := sim.NewTransport(e, latency)
	tr.DropProb = drop
	avg := &AsyncAverage{
		ProtoName: "async-avg",
		Tr:        tr,
		Init:      func(e *sim.Engine, node *sim.Node) float64 { return float64(node.ID) },
	}
	tr.Handle(avg)
	e.Register(avg)
	e.RunRounds(rounds)
	e.RunEvents(-1) // drain in-flight messages
	return avg, e
}

func sumValues(a *AsyncAverage, e *sim.Engine) float64 {
	s := 0.0
	for _, n := range e.Nodes() {
		s += a.Value(e, n)
	}
	return s
}

func TestAsyncAverageConservesMass(t *testing.T) {
	const n = 40
	avg, e := runAsync(t, n, 30, 1, sim.ConstantLatency(7), 0)
	want := float64(n*(n-1)) / 2
	if got := sumValues(avg, e); math.Abs(got-want) > 1e-6 {
		t.Fatalf("mass %g, want %g", got, want)
	}
}

func TestAsyncAverageConverges(t *testing.T) {
	const n = 40
	avg, e := runAsync(t, n, 60, 2, sim.ConstantLatency(3), 0)
	mean := float64(n-1) / 2
	for _, node := range e.Nodes() {
		if got := avg.Value(e, node); math.Abs(got-mean) > 1.5 {
			t.Fatalf("node %d at %g, want ~%g", node.ID, got, mean)
		}
	}
}

func TestAsyncAverageRandomLatency(t *testing.T) {
	// Heavily jittered delivery must not break conservation: deltas are
	// applied against whatever value the node has when the reply lands.
	const n = 30
	rng := sim.NewRNG(9)
	avg, e := runAsync(t, n, 50, 3, sim.UniformLatency(rng, 1, 500), 0)
	want := float64(n*(n-1)) / 2
	if got := sumValues(avg, e); math.Abs(got-want) > 1e-6 {
		t.Fatalf("mass %g under jitter, want %g", got, want)
	}
}

func TestAsyncAverageLossLeaksBoundedMass(t *testing.T) {
	// With message loss, only the delta in a lost reply leaks. The drift
	// must stay small relative to the total mass, and the protocol must
	// not blow up.
	const n = 30
	avg, e := runAsync(t, n, 40, 4, sim.ConstantLatency(2), 0.05)
	want := float64(n*(n-1)) / 2
	got := sumValues(avg, e)
	if math.Abs(got-want) > want/4 {
		t.Fatalf("loss leaked too much mass: %g vs %g", got, want)
	}
	for _, node := range e.Nodes() {
		v := avg.Value(e, node)
		if v < -float64(n) || v > 2*float64(n) {
			t.Fatalf("node %d diverged to %g", node.ID, v)
		}
	}
}

func TestAsyncMatchesSyncFixedPoint(t *testing.T) {
	// The async and in-place (cycle-driven) averaging protocols must agree
	// on the limit: the initial mean.
	const n = 24
	eSync := sim.NewEngine(n, 5)
	sync := NewAverage("sync", func(e *sim.Engine, node *sim.Node) float64 {
		return float64(node.ID * node.ID)
	}, UniformSelector)
	eSync.Register(sync)
	eSync.RunRounds(60)

	eAsync := sim.NewEngine(n, 5)
	tr := sim.NewTransport(eAsync, sim.ConstantLatency(5))
	async := &AsyncAverage{
		ProtoName: "async",
		Tr:        tr,
		Init:      func(e *sim.Engine, node *sim.Node) float64 { return float64(node.ID * node.ID) },
	}
	tr.Handle(async)
	eAsync.Register(async)
	eAsync.RunRounds(120)
	eAsync.RunEvents(-1)

	var want float64
	for i := 0; i < n; i++ {
		want += float64(i * i)
	}
	want /= n
	for _, node := range eAsync.Nodes() {
		if got := async.Value(eAsync, node); math.Abs(got-want) > want/10 {
			t.Fatalf("async node %d at %g, want ~%g", node.ID, got, want)
		}
	}
	for _, node := range eSync.Nodes() {
		if got := StateOf[*Scalar](eSync, "sync", node).V; math.Abs(got-want) > want/10 {
			t.Fatalf("sync node %d at %g, want ~%g", node.ID, got, want)
		}
	}
}
