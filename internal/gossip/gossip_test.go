package gossip

import (
	"math"
	"testing"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/sim"
)

func TestAverageConvergesUniformSelector(t *testing.T) {
	const n = 50
	e := sim.NewEngine(n, 1)
	avg := NewAverage("avg", func(e *sim.Engine, node *sim.Node) float64 {
		return float64(node.ID) // mean = (n-1)/2
	}, UniformSelector)
	e.Register(avg)
	e.RunRounds(40)

	want := float64(n-1) / 2
	for _, node := range e.Nodes() {
		got := StateOf[*Scalar](e, "avg", node).V
		if math.Abs(got-want) > 0.5 {
			t.Fatalf("node %d converged to %g, want ~%g", node.ID, got, want)
		}
	}
}

func TestAverageConvergesCyclonSelector(t *testing.T) {
	const n = 50
	e := sim.NewEngine(n, 2)
	e.Register(cyclon.New(8, 4))
	avg := NewAverage("avg", func(e *sim.Engine, node *sim.Node) float64 {
		if node.ID == 0 {
			return float64(n) // one hot node
		}
		return 0
	}, nil) // default: Cyclon
	e.Register(avg)
	e.RunRounds(60)

	for _, node := range e.Nodes() {
		got := StateOf[*Scalar](e, "avg", node).V
		if math.Abs(got-1) > 0.5 {
			t.Fatalf("node %d converged to %g, want ~1", node.ID, got)
		}
	}
}

func TestAveragePreservesMass(t *testing.T) {
	// Push-pull averaging conserves the sum exactly.
	const n = 16
	e := sim.NewEngine(n, 3)
	avg := NewAverage("avg", func(e *sim.Engine, node *sim.Node) float64 {
		return float64(node.ID * node.ID)
	}, UniformSelector)
	e.Register(avg)
	var want float64
	for i := 0; i < n; i++ {
		want += float64(i * i)
	}
	e.RunRounds(25)
	var got float64
	for _, node := range e.Nodes() {
		got += StateOf[*Scalar](e, "avg", node).V
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("mass not conserved: %g vs %g", got, want)
	}
}

func TestUniformSelector(t *testing.T) {
	e := sim.NewEngine(10, 4)
	e.Register(NewAverage("x", func(e *sim.Engine, n *sim.Node) float64 { return 0 }, UniformSelector))
	e.RunRounds(1)
	rng := sim.NewRNG(5)
	counts := map[int]int{}
	self := e.Node(0)
	for i := 0; i < 2000; i++ {
		p := UniformSelector(e, self, rng)
		if p == 0 || p < 0 {
			t.Fatalf("selected %d", p)
		}
		counts[p]++
	}
	for id := 1; id < 10; id++ {
		if counts[id] < 120 {
			t.Fatalf("peer %d selected only %d times", id, counts[id])
		}
	}
}

func TestUniformSelectorSkipsDead(t *testing.T) {
	e := sim.NewEngine(5, 6)
	e.Register(NewAverage("x", func(e *sim.Engine, n *sim.Node) float64 { return 0 }, UniformSelector))
	e.RunRounds(1)
	for id := 1; id < 4; id++ {
		e.SetUp(e.Node(id), false)
	}
	rng := sim.NewRNG(7)
	for i := 0; i < 50; i++ {
		if p := UniformSelector(e, e.Node(0), rng); p != 4 {
			t.Fatalf("selected %d, want 4 (only live peer)", p)
		}
	}
	e.SetUp(e.Node(4), false)
	if p := UniformSelector(e, e.Node(0), rng); p != -1 {
		t.Fatalf("selected %d with no live peers", p)
	}
}

func TestMeanPairwiseCosine(t *testing.T) {
	e := sim.NewEngine(6, 8)
	vecs := map[int]map[string]float64{
		0: {"a": 1, "b": 2},
		1: {"a": 1, "b": 2},
		2: {"a": 1, "b": 2},
		3: {"a": 1, "b": 2},
		4: {"a": 1, "b": 2},
		5: {"a": 1, "b": 2},
	}
	vf := func(e *sim.Engine, n *sim.Node) map[string]float64 { return vecs[n.ID] }
	rng := sim.NewRNG(9)
	if got := MeanPairwiseCosine(e, vf, 32, rng); math.Abs(got-1) > 1e-9 {
		t.Fatalf("identical vectors similarity = %g", got)
	}
	// Orthogonal halves: mean similarity well below 1.
	for id := 3; id < 6; id++ {
		vecs[id] = map[string]float64{"c": 1}
	}
	if got := MeanPairwiseCosine(e, vf, 256, rng); got > 0.8 {
		t.Fatalf("orthogonal halves similarity = %g", got)
	}
}

func TestMeanPairwiseCosineEdgeCases(t *testing.T) {
	e := sim.NewEngine(3, 10)
	rng := sim.NewRNG(1)
	// No holders at all: trivially converged.
	empty := func(e *sim.Engine, n *sim.Node) map[string]float64 { return nil }
	if got := MeanPairwiseCosine(e, empty, 8, rng); got != 1 {
		t.Fatalf("no holders similarity = %g, want 1", got)
	}
	// Single holder.
	one := func(e *sim.Engine, n *sim.Node) map[string]float64 {
		if n.ID == 0 {
			return map[string]float64{"a": 1}
		}
		return nil
	}
	if got := MeanPairwiseCosine(e, one, 8, rng); got != 1 {
		t.Fatalf("single holder similarity = %g, want 1", got)
	}
}

func TestAllPairsCosine(t *testing.T) {
	e := sim.NewEngine(4, 11)
	vecs := map[int]map[string]float64{
		0: {"a": 1},
		1: {"a": 1},
		2: {"b": 1},
		3: nil,
	}
	vf := func(e *sim.Engine, n *sim.Node) map[string]float64 { return vecs[n.ID] }
	// Pairs: (0,1)=1, (0,2)=0, (1,2)=0 -> mean 1/3.
	if got := AllPairsCosine(e, vf); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("AllPairsCosine = %g, want 1/3", got)
	}
}

func TestDeadNodesDoNotGossip(t *testing.T) {
	e := sim.NewEngine(4, 12)
	avg := NewAverage("avg", func(e *sim.Engine, n *sim.Node) float64 {
		return float64(n.ID)
	}, UniformSelector)
	e.Register(avg)
	e.SetUp(e.Node(3), false)
	e.RunRounds(30)
	// Node 3's value must be untouched: nobody selects it, it never acts.
	if got := StateOf[*Scalar](e, "avg", e.Node(3)).V; got != 3 {
		t.Fatalf("dead node value changed to %g", got)
	}
	// Live nodes converge to mean of 0,1,2 = 1.
	for id := 0; id < 3; id++ {
		got := StateOf[*Scalar](e, "avg", e.Node(id)).V
		if math.Abs(got-1) > 0.2 {
			t.Fatalf("node %d converged to %g, want ~1", id, got)
		}
	}
}

func TestMeanPairwiseCosineDense(t *testing.T) {
	e := sim.NewEngine(6, 8)
	vecs := make([][]float64, 6)
	for i := range vecs {
		vecs[i] = []float64{1, 2, 0}
	}
	vf := func(e *sim.Engine, n *sim.Node) []float64 { return vecs[n.ID] }
	rng := sim.NewRNG(9)
	if got := MeanPairwiseCosineDense(e, vf, 32, rng); math.Abs(got-1) > 1e-9 {
		t.Fatalf("identical vectors similarity = %g", got)
	}
	// Orthogonal halves: mean similarity well below 1.
	for id := 3; id < 6; id++ {
		vecs[id] = []float64{0, 0, 1}
	}
	if got := MeanPairwiseCosineDense(e, vf, 256, rng); got > 0.8 {
		t.Fatalf("orthogonal halves similarity = %g", got)
	}
}

func TestMeanPairwiseCosineDenseEdgeCases(t *testing.T) {
	e := sim.NewEngine(3, 10)
	rng := sim.NewRNG(1)
	empty := func(e *sim.Engine, n *sim.Node) []float64 { return nil }
	if got := MeanPairwiseCosineDense(e, empty, 8, rng); got != 1 {
		t.Fatalf("no holders similarity = %g, want 1", got)
	}
	one := func(e *sim.Engine, n *sim.Node) []float64 {
		if n.ID == 0 {
			return []float64{1}
		}
		return nil
	}
	if got := MeanPairwiseCosineDense(e, one, 8, rng); got != 1 {
		t.Fatalf("single holder similarity = %g, want 1", got)
	}
	// Down nodes are excluded like in the map-based variant.
	all := func(e *sim.Engine, n *sim.Node) []float64 { return []float64{1} }
	e.SetUp(e.Node(1), false)
	e.SetUp(e.Node(2), false)
	if got := MeanPairwiseCosineDense(e, all, 8, rng); got != 1 {
		t.Fatalf("single up holder similarity = %g, want 1", got)
	}
}

func TestAllPairsCosineDense(t *testing.T) {
	e := sim.NewEngine(4, 11)
	vecs := [][]float64{
		{1, 0},
		{1, 0},
		{0, 1},
		nil,
	}
	vf := func(e *sim.Engine, n *sim.Node) []float64 { return vecs[n.ID] }
	// Pairs: (0,1)=1, (0,2)=0, (1,2)=0 -> mean 1/3.
	if got := AllPairsCosineDense(e, vf); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("AllPairsCosineDense = %g, want 1/3", got)
	}
}

// TestDenseMatchesMapCosine cross-checks the two instrumentation paths on
// identical data: the dense vectors are the map vectors laid out over a
// fixed index space, so all-pairs similarity must agree to float rounding.
func TestDenseMatchesMapCosine(t *testing.T) {
	const dim = 64
	e := sim.NewEngine(8, 13)
	rng := sim.NewRNG(17)
	maps := make([]map[int]float64, 8)
	dense := make([][]float64, 8)
	for i := range maps {
		maps[i] = make(map[int]float64)
		dense[i] = make([]float64, dim)
		for k := 0; k < dim; k++ {
			if rng.Float64() < 0.4 {
				v := rng.Float64()*4 - 2
				maps[i][k] = v
				dense[i][k] = v
			}
		}
	}
	mf := func(e *sim.Engine, n *sim.Node) map[int]float64 { return maps[n.ID] }
	df := func(e *sim.Engine, n *sim.Node) []float64 { return dense[n.ID] }
	got := AllPairsCosineDense(e, df)
	want := AllPairsCosine(e, mf)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("dense %g vs map %g", got, want)
	}
}
