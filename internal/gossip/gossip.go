// Package gossip provides the generic push-pull epidemic building blocks the
// GLAP stack is assembled from: a round-based push-pull protocol over an
// arbitrary per-node state with a symmetric merge function, a scalar
// averaging specialisation, and the convergence instrumentation (pairwise
// cosine similarity) used by the Figure 5 experiment.
package gossip

import (
	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/sim"
)

// PeerSelector picks a gossip partner for node n, returning -1 when none is
// available.
type PeerSelector func(e *sim.Engine, n *sim.Node, rng *sim.RNG) int

// CyclonSelector samples a live peer from the node's Cyclon view; it is the
// default selector for every protocol in this reproduction.
func CyclonSelector(e *sim.Engine, n *sim.Node, rng *sim.RNG) int {
	return cyclon.SelectPeer(e, n, rng)
}

// UniformSelector samples a live peer uniformly from the whole network. It
// models an idealised peer-sampling service and is used in tests to separate
// protocol behaviour from overlay quality.
func UniformSelector(e *sim.Engine, n *sim.Node, rng *sim.RNG) int {
	alive := 0
	for _, m := range e.Nodes() {
		if m.Up() && m.ID != n.ID {
			alive++
		}
	}
	if alive == 0 {
		return -1
	}
	k := rng.Intn(alive)
	for _, m := range e.Nodes() {
		if m.Up() && m.ID != n.ID {
			if k == 0 {
				return m.ID
			}
			k--
		}
	}
	return -1
}

// Protocol is a push-pull epidemic over per-node state of type T. Each
// round, every up node selects one peer and the two states are merged
// symmetrically, exactly like the active/passive thread pair in the paper's
// Algorithm 2.
type Protocol[T any] struct {
	// ProtoName registers the protocol under this name.
	ProtoName string
	// Init builds node n's initial state.
	Init func(e *sim.Engine, n *sim.Node) T
	// Merge combines the two endpoint states in place.
	Merge func(a, b T)
	// Select picks the gossip partner; nil defaults to CyclonSelector.
	Select PeerSelector
	// Sharded opts the protocol into the engine's pair-sharded execution
	// path (see sim.PairRound). Only set it when Merge confines its writes
	// to the two endpoint states and commutes across node-disjoint pairs;
	// the engine's option additionally gates the path globally.
	Sharded bool

	rng sim.BoundRNG
}

// Name implements sim.Protocol.
func (g *Protocol[T]) Name() string { return g.ProtoName }

// Setup implements sim.Protocol.
func (g *Protocol[T]) Setup(e *sim.Engine, n *sim.Node) any {
	return g.Init(e, n)
}

// Round implements sim.Protocol: one active push-pull exchange.
func (g *Protocol[T]) Round(e *sim.Engine, n *sim.Node, round int) {
	sel := g.Select
	if sel == nil {
		sel = CyclonSelector
	}
	peer := sel(e, n, g.rng.For(e, 0x60551b, hashName(g.ProtoName)))
	if peer < 0 {
		return
	}
	a := e.State(g.ProtoName, n).(T)
	b := e.State(g.ProtoName, e.Node(peer)).(T)
	g.Merge(a, b)
}

// PairSharded implements sim.PairRound (see the Sharded field).
func (g *Protocol[T]) PairSharded() bool { return g.Sharded }

// DrawPair implements sim.PairRound: Round's peer draw.
func (g *Protocol[T]) DrawPair(e *sim.Engine, n *sim.Node, round int) int {
	sel := g.Select
	if sel == nil {
		sel = CyclonSelector
	}
	return sel(e, n, g.rng.For(e, 0x60551b, hashName(g.ProtoName)))
}

// BeginPairs implements sim.PairRound (no per-pair accounting).
func (g *Protocol[T]) BeginPairs(e *sim.Engine, round, npairs int) {}

// RunPair implements sim.PairRound: the symmetric merge of pair (a, b).
func (g *Protocol[T]) RunPair(e *sim.Engine, a, b *sim.Node, round, idx int) {
	g.Merge(e.State(g.ProtoName, a).(T), e.State(g.ProtoName, b).(T))
}

// EndPairs implements sim.PairRound (nothing to fold).
func (g *Protocol[T]) EndPairs(e *sim.Engine, round int) {}

// StateOf returns node n's gossip state.
func StateOf[T any](e *sim.Engine, name string, n *sim.Node) T {
	return e.State(name, n).(T)
}

func hashName(s string) uint64 {
	// FNV-1a, enough to decorrelate RNG streams of same-shaped protocols.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Scalar is the per-node state of the averaging specialisation.
type Scalar struct {
	// V is the node's current estimate.
	V float64
}

// NewAverage returns a push-pull averaging protocol: after convergence every
// node's V approaches the network-wide mean of the initial values. This is
// the textbook aggregation epidemic whose convergence Theorem 1 analyses.
func NewAverage(name string, init func(e *sim.Engine, n *sim.Node) float64, sel PeerSelector) *Protocol[*Scalar] {
	return &Protocol[*Scalar]{
		ProtoName: name,
		Init: func(e *sim.Engine, n *sim.Node) *Scalar {
			return &Scalar{V: init(e, n)}
		},
		Merge:  MergeScalar,
		Select: sel,
	}
}
