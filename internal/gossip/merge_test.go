package gossip

import (
	"math"
	"testing"

	"github.com/glap-sim/glap/internal/sim"
)

// TestMergeScalarConservesMass pins the synchronous merge form: both
// endpoints adopt the midpoint and the pair's total mass is preserved
// exactly for values without rounding, and to within float tolerance in
// general.
func TestMergeScalarConservesMass(t *testing.T) {
	rng := sim.NewRNG(11)
	for i := 0; i < 1000; i++ {
		a := &Scalar{V: rng.Float64()*200 - 100}
		b := &Scalar{V: rng.Float64()*200 - 100}
		sum := a.V + b.V
		MergeScalar(a, b)
		if a.V != b.V {
			t.Fatalf("endpoints disagree after merge: %v vs %v", a.V, b.V)
		}
		if math.Abs((a.V+b.V)-sum) > 1e-12*math.Max(1, math.Abs(sum)) {
			t.Fatalf("mass not conserved: %v -> %v", sum, a.V+b.V)
		}
	}
}

// TestPushDeltaMatchesMergeScalar pins that one completed push/reply pair
// of the asynchronous form moves both endpoints to the same midpoint the
// synchronous merge computes, up to the float difference between the two
// evaluation orders ((a+b)/2 vs b+(a-b)/2 — at most one ulp apart).
func TestPushDeltaMatchesMergeScalar(t *testing.T) {
	rng := sim.NewRNG(13)
	for i := 0; i < 1000; i++ {
		av := rng.Float64()*200 - 100
		bv := rng.Float64()*200 - 100

		// Async: a pushes its value, b applies the delta and echoes it, a
		// subtracts.
		delta := PushDelta(bv, av)
		asyncB := bv + delta
		asyncA := av - delta

		sa, sb := &Scalar{V: av}, &Scalar{V: bv}
		MergeScalar(sa, sb)

		if math.Abs(asyncA-sa.V) > 1e-12 || math.Abs(asyncB-sb.V) > 1e-12 {
			t.Fatalf("async pair (%v,%v) != sync midpoint %v for inputs (%v,%v)",
				asyncA, asyncB, sa.V, av, bv)
		}
		// Mass conservation is exact in the async form: b gains exactly what
		// a loses.
		if got, want := asyncA+asyncB, av+bv; math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
			t.Fatalf("async mass not conserved: %v -> %v", want, got)
		}
	}
}
