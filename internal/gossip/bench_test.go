package gossip

import (
	"testing"

	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/stats"
)

// BenchmarkAverageRound measures one push-pull averaging round over 1000
// nodes with uniform sampling.
func BenchmarkAverageRound(b *testing.B) {
	e := sim.NewEngine(1000, 1)
	e.Register(NewAverage("avg", func(e *sim.Engine, n *sim.Node) float64 {
		return float64(n.ID)
	}, UniformSelector))
	e.RunRounds(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRounds(1)
	}
}

// BenchmarkAsyncAverageRound measures the event-driven variant: one round of
// message sends plus delivery draining.
func BenchmarkAsyncAverageRound(b *testing.B) {
	e := sim.NewEngine(1000, 1)
	tr := sim.NewTransport(e, sim.ConstantLatency(1))
	avg := &AsyncAverage{
		ProtoName: "async",
		Tr:        tr,
		Init:      func(e *sim.Engine, n *sim.Node) float64 { return float64(n.ID) },
	}
	tr.Handle(avg)
	e.Register(avg)
	e.RunRounds(1)
	e.RunEvents(-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRounds(1)
		e.RunEvents(-1)
	}
}

// BenchmarkMeanPairwiseCosine measures the Figure 5 instrumentation over 500
// nodes with 200-cell sparse vectors.
func BenchmarkMeanPairwiseCosine(b *testing.B) {
	e := sim.NewEngine(500, 1)
	e.Register(NewAverage("x", func(e *sim.Engine, n *sim.Node) float64 { return 0 }, UniformSelector))
	e.RunRounds(1)
	vecs := make([]map[int]float64, 500)
	for i := range vecs {
		v := make(map[int]float64, 200)
		for k := 0; k < 200; k++ {
			v[(i+k)%300] = float64(k)
		}
		vecs[i] = v
	}
	vf := func(e *sim.Engine, n *sim.Node) map[int]float64 { return vecs[n.ID] }
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MeanPairwiseCosine(e, vf, 64, rng)
	}
}

// glapIOCells is the GLAP φ^io vector length: two 81×81 Q-tables.
const glapIOCells = 2 * 81 * 81

// BenchmarkCosine measures one aligned dense cosine over GLAP-sized φ^io
// vectors — the per-pair cost of the dense convergence instrumentation.
func BenchmarkCosine(b *testing.B) {
	va := make([]float64, glapIOCells)
	vb := make([]float64, glapIOCells)
	for i := range va {
		va[i] = float64(i % 97)
		vb[i] = float64((i + 13) % 89)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = stats.CosineAligned(va, vb)
	}
}

// BenchmarkCosineSparse is the retired map-based baseline for
// BenchmarkCosine, on identical data.
func BenchmarkCosineSparse(b *testing.B) {
	ma := make(map[int]float64, glapIOCells)
	mb := make(map[int]float64, glapIOCells)
	for i := 0; i < glapIOCells; i++ {
		ma[i] = float64(i % 97)
		mb[i] = float64((i + 13) % 89)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = stats.CosineMaps(ma, mb)
	}
}

// BenchmarkMeanPairwiseCosineDense measures the full Figure 5 sample over
// 500 nodes holding GLAP-sized dense vectors.
func BenchmarkMeanPairwiseCosineDense(b *testing.B) {
	e := sim.NewEngine(500, 1)
	e.Register(NewAverage("x", func(e *sim.Engine, n *sim.Node) float64 { return 0 }, UniformSelector))
	e.RunRounds(1)
	vecs := make([][]float64, 500)
	for i := range vecs {
		v := make([]float64, glapIOCells)
		for k := range v {
			v[k] = float64((i + k) % 301)
		}
		vecs[i] = v
	}
	vf := func(e *sim.Engine, n *sim.Node) []float64 { return vecs[n.ID] }
	rng := sim.NewRNG(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MeanPairwiseCosineDense(e, vf, 64, rng)
	}
}
