package gossip

import (
	"testing"

	"github.com/glap-sim/glap/internal/sim"
)

// BenchmarkAverageRound measures one push-pull averaging round over 1000
// nodes with uniform sampling.
func BenchmarkAverageRound(b *testing.B) {
	e := sim.NewEngine(1000, 1)
	e.Register(NewAverage("avg", func(e *sim.Engine, n *sim.Node) float64 {
		return float64(n.ID)
	}, UniformSelector))
	e.RunRounds(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRounds(1)
	}
}

// BenchmarkAsyncAverageRound measures the event-driven variant: one round of
// message sends plus delivery draining.
func BenchmarkAsyncAverageRound(b *testing.B) {
	e := sim.NewEngine(1000, 1)
	tr := sim.NewTransport(e, sim.ConstantLatency(1))
	avg := &AsyncAverage{
		ProtoName: "async",
		Tr:        tr,
		Init:      func(e *sim.Engine, n *sim.Node) float64 { return float64(n.ID) },
	}
	tr.Handle(avg)
	e.Register(avg)
	e.RunRounds(1)
	e.RunEvents(-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRounds(1)
		e.RunEvents(-1)
	}
}

// BenchmarkMeanPairwiseCosine measures the Figure 5 instrumentation over 500
// nodes with 200-cell sparse vectors.
func BenchmarkMeanPairwiseCosine(b *testing.B) {
	e := sim.NewEngine(500, 1)
	e.Register(NewAverage("x", func(e *sim.Engine, n *sim.Node) float64 { return 0 }, UniformSelector))
	e.RunRounds(1)
	vecs := make([]map[int]float64, 500)
	for i := range vecs {
		v := make(map[int]float64, 200)
		for k := 0; k < 200; k++ {
			v[(i+k)%300] = float64(k)
		}
		vecs[i] = v
	}
	vf := func(e *sim.Engine, n *sim.Node) map[int]float64 { return vecs[n.ID] }
	rng := sim.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MeanPairwiseCosine(e, vf, 64, rng)
	}
}
