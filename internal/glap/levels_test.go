package glap

import (
	"testing"
	"testing/quick"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/qlearn"
)

func TestLevelOfThresholds(t *testing.T) {
	// Exact boundary semantics of the Section IV-A calibration table.
	cases := []struct {
		x    float64
		want Level
	}{
		{0, Low}, {0.2, Low},
		{0.200001, Medium}, {0.4, Medium},
		{0.41, High}, {0.5, High},
		{0.51, XHigh}, {0.6, XHigh},
		{0.61, X2High}, {0.7, X2High},
		{0.71, X3High}, {0.8, X3High},
		{0.81, X4High}, {0.9, X4High},
		{0.91, X5High}, {0.999, X5High},
		{1.0, Overload}, {1.5, Overload},
	}
	for _, tc := range cases {
		if got := LevelOf(tc.x); got != tc.want {
			t.Fatalf("LevelOf(%g) = %s, want %s", tc.x, got, tc.want)
		}
	}
}

func TestLevelString(t *testing.T) {
	names := []string{"Low", "Medium", "High", "xHigh", "2xHigh", "3xHigh", "4xHigh", "5xHigh", "Overload"}
	for l := Low; l <= Overload; l++ {
		if l.String() != names[l] {
			t.Fatalf("Level(%d).String() = %q, want %q", l, l.String(), names[l])
		}
	}
	if Level(42).String() != "Level(42)" {
		t.Fatal("unknown level string wrong")
	}
}

func TestPaperExample(t *testing.T) {
	// Section IV-A: a VM with average CPU 0.85 and memory 0.56 is the
	// action (4xHigh, xHigh).
	ls := LevelsOf(dc.Vec{0.85, 0.56})
	if ls[dc.CPU] != X4High || ls[dc.Mem] != XHigh {
		t.Fatalf("paper example = %s", ls)
	}
	if ls.String() != "(4xHigh, xHigh)" {
		t.Fatalf("String = %q", ls.String())
	}
}

func TestStatePackRoundTrip(t *testing.T) {
	f := func(a, b uint8) bool {
		ls := Levels{Level(a % NumLevels), Level(b % NumLevels)}
		return LevelsOfState(ls.State()) == ls && LevelsOfAction(ls.Action()) == ls
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatePackDistinct(t *testing.T) {
	seen := map[qlearn.State]bool{}
	for a := Low; a <= Overload; a++ {
		for b := Low; b <= Overload; b++ {
			s := Levels{a, b}.State()
			if seen[s] {
				t.Fatalf("state collision at (%s, %s)", a, b)
			}
			seen[s] = true
		}
	}
	if len(seen) != 81 {
		t.Fatalf("expected 81 distinct states, got %d", len(seen))
	}
}

func TestHasOverload(t *testing.T) {
	if (Levels{Low, Low}).HasOverload() {
		t.Fatal("no overload expected")
	}
	if !(Levels{Overload, Low}).HasOverload() || !(Levels{Low, Overload}).HasOverload() {
		t.Fatal("overload not detected")
	}
}

func TestRewardTableOf(t *testing.T) {
	// Aggregation across resources: sum of per-resource destination
	// rewards.
	got := DefaultRewardOut.Of(Levels{Low, Medium})
	if got != 9+8 {
		t.Fatalf("RewardOut(Low,Medium) = %g", got)
	}
	got = DefaultRewardIn.Of(Levels{X5High, Overload})
	if got != 8-1000 {
		t.Fatalf("RewardIn(5xHigh,Overload) = %g", got)
	}
}

func TestDefaultRewardShapes(t *testing.T) {
	if !DefaultRewardOut.validStrictlyDecreasing() {
		t.Fatal("RewardOut must be strictly decreasing and positive")
	}
	if !DefaultRewardIn.validInShape() {
		t.Fatal("RewardIn must be positive below Overload, negative at Overload")
	}
	// r_O << 0 relative to the positive rewards.
	if DefaultRewardIn[Overload] > -10*DefaultRewardIn[X5High] {
		t.Fatal("Overload penalty not much smaller than zero")
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Alpha: 2, Gamma: 0.5, LearnUtilThreshold: 0.5, LearnIterations: 1, RewardOut: DefaultRewardOut, RewardIn: DefaultRewardIn, LearnRounds: 1, AggRounds: 1},
		{Alpha: 0.5, Gamma: 1, LearnUtilThreshold: 0.5, LearnIterations: 1, RewardOut: DefaultRewardOut, RewardIn: DefaultRewardIn, LearnRounds: 1, AggRounds: 1},
		{Alpha: 0.5, Gamma: 0.5, LearnUtilThreshold: 2, LearnIterations: 1, RewardOut: DefaultRewardOut, RewardIn: DefaultRewardIn, LearnRounds: 1, AggRounds: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
	// Reward shape violations.
	cfg := DefaultConfig()
	cfg.RewardOut[Low] = 0.5 // no longer decreasing from nothing... make invalid:
	cfg.RewardOut = RewardTable{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if err := cfg.Validate(); err == nil {
		t.Fatal("increasing RewardOut should fail validation")
	}
	cfg = DefaultConfig()
	cfg.RewardIn[Overload] = 5
	if err := cfg.Validate(); err == nil {
		t.Fatal("positive Overload in-reward should fail validation")
	}
}

func TestConfigWithDefaults(t *testing.T) {
	var zero Config
	filled := zero.withDefaults()
	if err := filled.Validate(); err != nil {
		t.Fatalf("defaulted config invalid: %v", err)
	}
	if filled.Alpha != DefaultConfig().Alpha || filled.LearnRounds != DefaultConfig().LearnRounds {
		t.Fatal("defaults not applied")
	}
	// Partial overrides survive.
	custom := Config{Alpha: 0.9}.withDefaults()
	if custom.Alpha != 0.9 || custom.Gamma != DefaultConfig().Gamma {
		t.Fatal("override lost or default missing")
	}
}
