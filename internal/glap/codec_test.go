package glap

import (
	"bytes"
	"strings"
	"testing"

	"github.com/glap-sim/glap/internal/qlearn"
)

func TestSaveLoadTables(t *testing.T) {
	orig := &NodeTables{
		Out:     qlearn.New(0.5, 0.8),
		In:      qlearn.New(0.5, 0.8),
		Trained: true,
	}
	orig.Out.Set(Levels{X3High, Medium}.State(), Levels{High, Low}.Action(), 42.5)
	orig.In.Set(Levels{X5High, XHigh}.State(), Levels{Medium, Low}.Action(), -987)

	var buf bytes.Buffer
	if err := SaveTables(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTables(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !qlearn.Equal(orig.Out, got.Out) || !qlearn.Equal(orig.In, got.In) {
		t.Fatal("round-trip lost table contents")
	}
	if !got.Trained {
		t.Fatal("round-trip lost Trained flag")
	}
}

func TestSaveLoadEndToEnd(t *testing.T) {
	// Pre-train a tiny cluster, checkpoint, restore, and verify the
	// restored store drives consolidation identically to the original.
	cl := genCluster(t, 12, 24, 60, 31)
	pre, err := Pretrain(Config{LearnRounds: 20, AggRounds: 15}, cl, 31, PretrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := SharedTables(pre)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTables(&buf, shared); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadTables(&buf)
	if err != nil {
		t.Fatal(err)
	}

	run := func(tables *NodeTables) int64 {
		cl := genCluster(t, 12, 24, 60, 31)
		e, _ := installConsolidation(t, cl, tables, 77)
		e.RunRounds(30)
		return cl.Migrations
	}
	if a, b := run(shared), run(restored); a != b {
		t.Fatalf("restored tables behave differently: %d vs %d migrations", a, b)
	}
}

// TestCheckpointRestoreByteIdentical pins the warm-restart contract the
// crash scenario relies on: restoring a checkpoint and re-checkpointing the
// result reproduces the snapshot byte for byte, and the restored store equals
// the original.
func TestCheckpointRestoreByteIdentical(t *testing.T) {
	cl := genCluster(t, 8, 16, 40, 5)
	pre, err := Pretrain(Config{LearnRounds: 15, AggRounds: 10}, cl, 5, PretrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := SharedTables(pre)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := CheckpointTables(shared)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreTables(cp)
	if err != nil {
		t.Fatal(err)
	}
	again, err := CheckpointTables(restored)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cp, again) {
		t.Fatal("re-checkpointing a restored store is not byte-identical")
	}
	if !qlearn.Equal(shared.Out, restored.Out) || !qlearn.Equal(shared.In, restored.In) {
		t.Fatal("restored store differs from the original")
	}
	if !restored.Trained {
		t.Fatal("restore lost the Trained flag")
	}
}

func TestLoadTablesErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":     "nope",
		"bad version": `{"version":9,"out":{},"in":{}}`,
		"bad inner":   `{"version":1,"out":{"version":1,"alpha":9,"gamma":0.5},"in":{"version":1,"alpha":0.5,"gamma":0.5}}`,
	}
	for name, in := range cases {
		if _, err := LoadTables(strings.NewReader(in)); err == nil {
			t.Fatalf("case %q: expected error", name)
		}
	}
}
