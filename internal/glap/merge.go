package glap

import (
	"github.com/glap-sim/glap/internal/qlearn"
)

// This file is the single home of Algorithm 2's pairwise Q-table merge in
// its two transport forms. The cycle-driven AggProtocol merges two live
// stores in place (MergeTables); the message-passing AsyncAggProtocol
// serialises one endpoint's φ^io into a TableSnapshot and folds it into the
// other (SnapshotTables/MergeSnapshot). Both forms average cells present on
// both sides and adopt cells present on one, so all PMs converge to
// identical Q-values; the asyncagg equivalence test pins that a completed
// push/reply pair equals one synchronous exchange.

// MergeTables runs one synchronous pairwise merge of Algorithm 2's UPDATE
// on two live stores: both endpoints end up with the unified tables.
// qlearn.Merge makes the exchange one scan whether or not the stores still
// differ, writing only cells that change — near and past convergence (the
// common regime late in the aggregation phase) the pass leaves both tables'
// memory untouched.
func MergeTables(p, q *NodeTables) {
	qlearn.Merge(p.Out, q.Out)
	qlearn.Merge(p.In, q.In)
}

// TableSnapshot carries one endpoint's φ^io cells — the wire form of the
// merge for transports that cannot touch the peer's store directly.
type TableSnapshot struct {
	Out, In map[qlearn.Key]float64
}

// SnapshotTables captures t's φ^io for transmission.
func SnapshotTables(t *NodeTables) TableSnapshot {
	return TableSnapshot{Out: t.Out.Flat(), In: t.In.Flat()}
}

// MergeSnapshot folds a received snapshot into dst per Algorithm 2's
// UPDATE: average cells present on both sides, adopt cells present only in
// the snapshot.
func MergeSnapshot(dst *NodeTables, snap TableSnapshot) {
	apply := func(tbl *qlearn.Table, cells map[qlearn.Key]float64) {
		for k, v := range cells {
			if tbl.Has(k.S, k.A) {
				tbl.Set(k.S, k.A, (tbl.Get(k.S, k.A)+v)/2)
			} else {
				tbl.Set(k.S, k.A, v)
			}
		}
	}
	apply(dst.Out, snap.Out)
	apply(dst.In, snap.In)
}
