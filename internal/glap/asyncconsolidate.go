package glap

import (
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/glap/decision"
	"github.com/glap-sim/glap/internal/gossip"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/qlearn"
	"github.com/glap-sim/glap/internal/sim"
)

// AsyncConsolidateProtocolName registers the event-driven consolidation
// variant.
const AsyncConsolidateProtocolName = "glap-consolidate-async"

// AsyncConsolidateProtocol is the message-passing realisation of Algorithm 3:
// where ConsolidateProtocol uses the simulator shortcut of running both
// endpoints' UPDATESTATE inside one round callback, this variant performs the
// push-pull state exchange, the π_out/π_in-vetted migration offers, and the
// accept/commit handshake as real sim.Transport messages subject to latency
// and loss.
//
// One interaction is a sequence:
//
//	initiator --acLoad(push)--> peer       (state exchange)
//	initiator <--acLoad(reply)-- peer
//	sender    --acOffer-->       target    (π_out pick, π_in + capacity
//	sender    <--acVerdict--     target     pre-vetted on estimates; target
//	sender    --acDone-->        target     re-vets fresh and reserves)
//
// Both endpoints run the direction rule on the exchanged states, so either
// side of the exchange may become the sender, exactly as in the synchronous
// protocol. The sender repeats offer/verdict/done until its goal (exit
// overload, or empty-and-power-off) is met or an offer is rejected. Because
// the remote state is only an estimate — stale by one latency, and advanced
// locally after each commit — the target re-vets every offer against its
// fresh state and, on acceptance, reserves the VM's demand until the
// sender's commit (or abort) lands or a hold timer expires. Every in-flight
// stage carries a request timeout so lost messages abort the sequence
// cleanly instead of wedging the endpoint in the busy state.
type AsyncConsolidateProtocol struct {
	B *policy.Binding
	// Tr carries the messages.
	Tr *sim.Transport
	// Tables returns the Q store for a node. Nil defaults to the learning
	// component registered on the same engine (TablesOf). Pre-trained
	// deployments inject tables here.
	Tables func(e *sim.Engine, n *sim.Node) *NodeTables
	// Select overrides the peer selector (defaults to Cyclon sampling).
	Select gossip.PeerSelector
	// CurrentDemandOnly mirrors Config.CurrentDemandOnly for the runtime
	// decision states (ablation switch).
	CurrentDemandOnly bool
	// OfferTimeout bounds each request stage in virtual time; 0 defaults to
	// 2×RoundPeriod at first use. Deployments on slow links should scale it
	// with the expected round-trip.
	OfferTimeout int64
	// OfferAttempts is the number of times an offer is (re)sent before the
	// sequence is abandoned (default 2). Retries reuse the offer token, so
	// duplicates are idempotent at the target.
	OfferAttempts int

	// Counters for robustness instrumentation.
	Exchanges int64 // state exchanges initiated
	Offers    int64 // migration offers issued (excluding retries)
	Accepts   int64 // offers accepted by targets (fresh, non-duplicate)
	Rejects   int64 // offers rejected by targets
	Commits   int64 // migrations committed by senders
	Aborts    int64 // abort notices sent for stale or failed accepts
	Expired   int64 // request or hold deadlines that fired

	rng       sim.BoundRNG
	rt        *sim.ReqTable
	rtEngine  *sim.Engine
	nextToken uint64
}

// loadState is the PM state travelling in an exchange: absolute current and
// average demand sums plus capacity, from which the receiver derives
// utilisation, overload, headroom, and the calibrated decision state.
type loadState struct {
	Cur, Avg, Cap dc.Vec
	NumVMs        int
}

func (p *AsyncConsolidateProtocol) snapshot(pm *dc.PM) loadState {
	c := p.B.C
	return loadState{
		Cur:    c.CurUtil(pm).Mul(pm.Spec.Capacity),
		Avg:    c.AvgUtil(pm).Mul(pm.Spec.Capacity),
		Cap:    pm.Spec.Capacity,
		NumVMs: pm.NumVMs(),
	}
}

// overloaded mirrors Cluster.Overloaded on a snapshot.
func (ls loadState) overloaded() bool {
	u := ls.Cur.Div(ls.Cap)
	for _, x := range u {
		if x >= 1 {
			return true
		}
	}
	return false
}

// util is the mean current utilisation used by the direction rule.
func (ls loadState) util() float64 { return ls.Cur.Div(ls.Cap).Avg() }

// free is the remaining capacity under current demand, clamped at zero.
func (ls loadState) free() dc.Vec {
	var f dc.Vec
	for r := 0; r < dc.NumResources; r++ {
		f[r] = ls.Cap[r] - ls.Cur[r]
		if f[r] < 0 {
			f[r] = 0
		}
	}
	return f
}

// state is the calibrated decision state of the snapshot.
func (ls loadState) state(currentOnly bool) qlearn.State {
	d := ls.Avg
	if currentOnly {
		d = ls.Cur
	}
	return LevelsOf(d.Div(ls.Cap)).State()
}

// view summarises the snapshot for the shared direction rule; at zero
// latency it matches the live pmView of the same PM exactly (pinned by the
// differential test).
func (ls loadState) view(id int) decision.View {
	return decision.View{ID: id, Overloaded: ls.overloaded(), Util: ls.util()}
}

// acNode is the per-node protocol state.
type acNode struct {
	// Sender-side sequence state.
	busy         bool
	epoch        uint64
	mode         decision.Mode
	target       int
	remote       loadState
	offerVM      int
	pendingToken uint64
	exchReq      uint64
	offerReq     uint64
	// done records tokens whose outcome this sender already settled, so a
	// late duplicate verdict is never answered with a second (contradictory)
	// acDone.
	done map[uint64]bool

	// Target-side state: open reservation holds (token → request id) and
	// tokens already released, so duplicate offers from retries are answered
	// idempotently without re-reserving.
	holds    map[uint64]uint64
	finished map[uint64]bool
}

// Message payloads.
type acLoad struct {
	Epoch uint64
	From  loadState
	Reply bool
}

type acOffer struct {
	Token             uint64
	VM                int
	Action            qlearn.Action
	Demand, AvgDemand dc.Vec
}

type acVerdict struct {
	Token  uint64
	Accept bool
}

type acDone struct {
	Token  uint64
	Commit bool
}

// Name implements sim.Protocol and sim.Handler.
func (p *AsyncConsolidateProtocol) Name() string { return AsyncConsolidateProtocolName }

// Setup implements sim.Protocol.
func (p *AsyncConsolidateProtocol) Setup(e *sim.Engine, n *sim.Node) any {
	return &acNode{
		done:     make(map[uint64]bool),
		holds:    make(map[uint64]uint64),
		finished: make(map[uint64]bool),
	}
}

func (p *AsyncConsolidateProtocol) state(e *sim.Engine, n *sim.Node) *acNode {
	return e.State(AsyncConsolidateProtocolName, n).(*acNode)
}

func (p *AsyncConsolidateProtocol) tables(e *sim.Engine, n *sim.Node) *NodeTables {
	if p.Tables != nil {
		return p.Tables(e, n)
	}
	return TablesOf(e, n)
}

func (p *AsyncConsolidateProtocol) pmState(c *dc.Cluster, pm *dc.PM) qlearn.State {
	return DecisionPMState(c, pm, p.CurrentDemandOnly)
}

func (p *AsyncConsolidateProtocol) vmAction(vm *dc.VM) qlearn.Action {
	return DecisionVMAction(vm, p.CurrentDemandOnly)
}

// reqs returns the engine-bound request table, creating it on first use (or
// when the protocol value is reused on a new engine).
func (p *AsyncConsolidateProtocol) reqs(e *sim.Engine) *sim.ReqTable {
	if p.rtEngine != e {
		p.rtEngine, p.rt = e, sim.NewReqTable(e)
	}
	return p.rt
}

func (p *AsyncConsolidateProtocol) timeout(e *sim.Engine) int64 {
	if p.OfferTimeout > 0 {
		return p.OfferTimeout
	}
	return 2 * e.RoundPeriod
}

func (p *AsyncConsolidateProtocol) attempts() int {
	if p.OfferAttempts > 0 {
		return p.OfferAttempts
	}
	return 2
}

// Round implements the active thread: start one state exchange per round
// unless a previous sequence is still in flight.
func (p *AsyncConsolidateProtocol) Round(e *sim.Engine, n *sim.Node, round int) {
	st := p.state(e, n)
	pm := p.B.PM(n)
	if st.busy || !pm.On() {
		return
	}
	sel := p.Select
	if sel == nil {
		sel = gossip.CyclonSelector
	}
	peer := sel(e, n, p.rng.For(e, 0xa57c05))
	if peer < 0 {
		return
	}
	st.busy = true
	st.epoch++
	st.target = peer
	p.Exchanges++
	ep := st.epoch
	p.Tr.Send(n.ID, peer, AsyncConsolidateProtocolName, acLoad{Epoch: ep, From: p.snapshot(pm)})
	st.exchReq = p.reqs(e).Add(p.timeout(e), func(uint64) {
		// The reply was lost (or the peer died): release the busy flag so
		// the next round can try again.
		if st.busy && st.epoch == ep && st.pendingToken == 0 {
			st.busy = false
			p.Expired++
		}
	})
}

// Deliver implements sim.Handler.
func (p *AsyncConsolidateProtocol) Deliver(e *sim.Engine, n *sim.Node, m sim.Message) {
	switch msg := m.Payload.(type) {
	case acLoad:
		p.onLoad(e, n, m.From, msg)
	case acOffer:
		p.onOffer(e, n, m.From, msg)
	case acVerdict:
		p.onVerdict(e, n, m.From, msg)
	case acDone:
		p.onDone(e, n, msg)
	}
}

// shouldSend runs the shared direction rule for the local endpoint against
// the remote snapshot; ModeNone means this endpoint does not act as sender.
func (p *AsyncConsolidateProtocol) shouldSend(pm *dc.PM, remote loadState, remoteID int) decision.Mode {
	return decision.Direction(pmView(p.B.C, pm), remote.view(remoteID))
}

// onLoad handles the state exchange at both endpoints.
func (p *AsyncConsolidateProtocol) onLoad(e *sim.Engine, n *sim.Node, from int, msg acLoad) {
	st := p.state(e, n)
	pm := p.B.PM(n)
	if !pm.On() {
		return
	}
	if !msg.Reply {
		// Passive endpoint: answer with our state (echoing the initiator's
		// epoch), then run the direction rule ourselves — either side of an
		// exchange may become the sender.
		p.Tr.Send(n.ID, from, AsyncConsolidateProtocolName,
			acLoad{Epoch: msg.Epoch, From: p.snapshot(pm), Reply: true})
		if st.busy {
			return
		}
		if mode := p.shouldSend(pm, msg.From, from); mode != decision.ModeNone {
			st.busy = true
			st.epoch++
			st.mode = mode
			st.target = from
			st.remote = msg.From
			st.pendingToken = 0
			p.offerNext(e, n, st, pm)
		}
		return
	}
	// Initiator: match the reply to the outstanding exchange.
	if !st.busy || st.epoch != msg.Epoch || st.pendingToken != 0 {
		return
	}
	p.reqs(e).Resolve(st.exchReq)
	mode := p.shouldSend(pm, msg.From, from)
	if mode == decision.ModeNone {
		st.busy = false
		return
	}
	st.mode = mode
	st.target = from
	st.remote = msg.From
	p.offerNext(e, n, st, pm)
}

// offerNext issues the next migration offer of the sequence, or finishes the
// sequence when the goal is met or no admissible offer exists.
func (p *AsyncConsolidateProtocol) offerNext(e *sim.Engine, n *sim.Node, st *acNode, pm *dc.PM) {
	c := p.B.C
	finish := func() {
		st.busy = false
		st.pendingToken = 0
		if st.mode == decision.ModeEmpty && pm.NumVMs() == 0 {
			_ = p.B.TryPowerOffIfEmpty(pm.ID)
		}
	}
	if st.mode == decision.ModeShed && !c.Overloaded(pm) {
		finish()
		return
	}
	if st.mode == decision.ModeEmpty && pm.NumVMs() == 0 {
		finish()
		return
	}
	// π_out over the sender's fresh state, π_in and capacity pre-vetted on
	// the remote estimate — the same shared core migrateOne drives, except
	// the target will re-vet with its fresh state before reserving.
	tbl := p.tables(e, n)
	off, ok := decision.SelectOffer(tbl.Out, p.pmState(c, pm), p.B.VMsOf(pm), p.vmAction)
	if !ok {
		finish()
		return
	}
	if !decision.VetOffer(tbl.In, st.remote.state(p.CurrentDemandOnly), off.Action, off.VM.CurAbs(), st.remote.free()) {
		finish()
		return
	}
	vm := off.VM
	p.nextToken++
	token := p.nextToken
	st.offerVM = vm.ID
	st.pendingToken = token
	p.Offers++
	offer := acOffer{Token: token, VM: vm.ID, Action: off.Action, Demand: vm.CurAbs(), AvgDemand: vm.AvgAbs()}
	target := st.target
	st.offerReq = p.reqs(e).AddRetry(p.timeout(e), p.attempts(), func() {
		p.Tr.Send(n.ID, target, AsyncConsolidateProtocolName, offer)
	}, func(uint64) {
		// All attempts lost: abandon the sequence. The target's hold timer
		// releases any reservation a lost verdict left behind.
		if st.busy && st.pendingToken == token {
			st.busy = false
			st.pendingToken = 0
			p.Expired++
		}
	})
}

// onOffer handles a migration offer at the target: re-vet against fresh
// state, reserve on acceptance, and reply.
func (p *AsyncConsolidateProtocol) onOffer(e *sim.Engine, n *sim.Node, from int, msg acOffer) {
	st := p.state(e, n)
	pm := p.B.PM(n)
	reply := func(accept bool) {
		p.Tr.Send(n.ID, from, AsyncConsolidateProtocolName, acVerdict{Token: msg.Token, Accept: accept})
	}
	if _, open := st.holds[msg.Token]; open {
		// Duplicate of an offer we already accepted (the verdict is in
		// flight or was lost): repeat the verdict, keep the reservation.
		reply(true)
		return
	}
	if st.finished[msg.Token] {
		// Duplicate of an offer whose outcome is already settled; repeat the
		// acceptance without re-reserving — the sender has committed or
		// aborted and ignores this verdict.
		reply(true)
		return
	}
	if !pm.On() {
		reply(false)
		return
	}
	c := p.B.C
	// Fresh re-vet: π_in on the target's own state, and admission against
	// capacity net of open reservations.
	if !decision.VetOffer(p.tables(e, n).In, p.pmState(c, pm), msg.Action, msg.Demand, c.FreeCurReserved(pm)) {
		p.Rejects++
		reply(false)
		return
	}
	if err := c.Reserve(pm, msg.Token, msg.Demand); err != nil {
		p.Rejects++
		reply(false)
		return
	}
	p.Accepts++
	// Hold the reservation until the sender's commit/abort lands; a lost
	// verdict or commit must not pin capacity forever.
	hold := p.reqs(e).Add(2*p.timeout(e), func(uint64) {
		if c.ReleaseReservation(pm, msg.Token) {
			p.Expired++
		}
		delete(st.holds, msg.Token)
		st.finished[msg.Token] = true
	})
	st.holds[msg.Token] = hold
	reply(true)
}

// onVerdict handles the target's accept/reject at the sender.
func (p *AsyncConsolidateProtocol) onVerdict(e *sim.Engine, n *sim.Node, from int, msg acVerdict) {
	st := p.state(e, n)
	pm := p.B.PM(n)
	if !st.busy || st.pendingToken != msg.Token {
		// Stale verdict: the sequence moved on (offer expired, or this is a
		// duplicate). An acceptance we never consumed pins a reservation at
		// the target — abort it explicitly rather than waiting for the hold
		// timer.
		if msg.Accept && !st.done[msg.Token] {
			st.done[msg.Token] = true
			p.Aborts++
			p.Tr.Send(n.ID, from, AsyncConsolidateProtocolName, acDone{Token: msg.Token})
		}
		return
	}
	p.reqs(e).Resolve(st.offerReq)
	st.pendingToken = 0
	if !msg.Accept {
		// Mirror the synchronous protocol: a rejected offer ends the
		// sequence (π_in or capacity said no).
		st.busy = false
		return
	}
	c := p.B.C
	vm := c.VMs[st.offerVM]
	dst := c.PMs[st.target]
	st.done[msg.Token] = true
	if vm.Host() != pm.ID || !dst.On() || c.Migrate(vm, dst) != nil {
		// The VM departed or moved, or the target died after accepting:
		// abort so the reservation is released promptly.
		p.Aborts++
		p.Tr.Send(n.ID, from, AsyncConsolidateProtocolName, acDone{Token: msg.Token})
		st.busy = false
		return
	}
	p.Commits++
	p.Tr.Send(n.ID, from, AsyncConsolidateProtocolName, acDone{Token: msg.Token, Commit: true})
	// Advance the remote estimate so follow-up offers in this sequence vet
	// against the target's expected post-migration state.
	st.remote.Cur = st.remote.Cur.Add(vm.CurAbs())
	st.remote.Avg = st.remote.Avg.Add(vm.AvgAbs())
	st.remote.NumVMs++
	p.offerNext(e, n, st, pm)
}

// onDone releases the reservation at the target when the sender's commit or
// abort lands.
func (p *AsyncConsolidateProtocol) onDone(e *sim.Engine, n *sim.Node, msg acDone) {
	st := p.state(e, n)
	pm := p.B.PM(n)
	if hold, ok := st.holds[msg.Token]; ok {
		p.reqs(e).Resolve(hold)
		delete(st.holds, msg.Token)
		p.B.C.ReleaseReservation(pm, msg.Token)
	}
	st.finished[msg.Token] = true
}

// OpenRequests returns the number of unresolved request deadlines — zero
// once a run has fully drained.
func (p *AsyncConsolidateProtocol) OpenRequests() int {
	if p.rt == nil {
		return 0
	}
	return p.rt.Open()
}
