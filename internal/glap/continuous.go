package glap

import (
	"fmt"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
)

// phased wraps a protocol and runs it only on rounds where active(round)
// holds, which lets the learning and aggregation phases recur periodically
// while the engine's registration windows stay simple.
type phased struct {
	inner  sim.Protocol
	active func(round int) bool
}

func (p *phased) Name() string                         { return p.inner.Name() }
func (p *phased) Setup(e *sim.Engine, n *sim.Node) any { return p.inner.Setup(e, n) }
func (p *phased) Round(e *sim.Engine, n *sim.Node, r int) {
	if p.active(r) {
		p.inner.Round(e, n, r)
	}
}

// Parallelizable delegates to the wrapped protocol so that a phased learning
// component still fans out while a phased aggregation or consolidation
// component stays sequential.
func (p *phased) Parallelizable() bool {
	pr, ok := p.inner.(sim.ParallelRound)
	return ok && pr.Parallelizable()
}

// PairSharded delegates pair-sharded capability to the wrapped protocol.
func (p *phased) PairSharded() bool {
	pp, ok := p.inner.(sim.PairRound)
	return ok && pp.PairSharded()
}

// DrawPair delegates, returning no pair on inactive rounds so the sharded
// path reproduces the phased gating exactly (no draws, no exchanges).
func (p *phased) DrawPair(e *sim.Engine, n *sim.Node, r int) int {
	if !p.active(r) {
		return -1
	}
	return p.inner.(sim.PairRound).DrawPair(e, n, r)
}

func (p *phased) BeginPairs(e *sim.Engine, r, npairs int) {
	p.inner.(sim.PairRound).BeginPairs(e, r, npairs)
}

func (p *phased) RunPair(e *sim.Engine, a, b *sim.Node, r, idx int) {
	p.inner.(sim.PairRound).RunPair(e, a, b, r, idx)
}

func (p *phased) EndPairs(e *sim.Engine, r int) {
	p.inner.(sim.PairRound).EndPairs(e, r)
}

// InactiveSpan implements sim.QuiescentRound for the phased wrapper: rounds
// gated off by the phase predicate are inert by construction, and active
// rounds delegate to the wrapped protocol's certificate (blocking unless it
// certifies everything from the first active round on). The scan is bounded
// by the phase predicate's period in practice — the first active round ends
// it.
func (p *phased) InactiveSpan(e *sim.Engine, from, to int) int {
	first := -1
	for r := from; r < to; r++ {
		if p.active(r) {
			first = r
			break
		}
	}
	if first < 0 {
		return to - from
	}
	q, ok := p.inner.(sim.QuiescentRound)
	if ok && q.InactiveSpan(e, first, to) >= to-first {
		return to - from
	}
	return first - from
}

// InstallContinuous registers the full GLAP stack in the paper's continuous
// deployment: the two-phase learning protocol re-runs on a fixed interval —
// "the learning component runs as required by a predefined policy e.g. ...
// based on a fixed time interval" (Section IV-B) — while the consolidation
// component keeps operating throughout on the previous Q-values (the
// "continue using the previous Q-values" configuration).
//
// Within every relearnEvery-round cycle, rounds [0, LearnRounds) run
// Algorithm 1 and rounds [LearnRounds, LearnRounds+AggRounds) run
// Algorithm 2. relearnEvery must therefore be at least
// LearnRounds+AggRounds. Consolidation starts after the first full
// pre-training cycle completes.
func InstallContinuous(e *sim.Engine, b *policy.Binding, cfg Config, relearnEvery int, opts PretrainOptions) (*ConsolidateProtocol, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pretrainLen := cfg.LearnRounds + cfg.AggRounds
	if relearnEvery < pretrainLen {
		return nil, fmt.Errorf("glap: relearnEvery %d shorter than one learning cycle (%d)", relearnEvery, pretrainLen)
	}
	e.Register(cyclon.New(opts.CyclonViewSize, opts.CyclonShuffleLen))
	learn := &LearnProtocol{Cfg: cfg, B: b}
	e.Register(&phased{
		inner:  learn,
		active: func(r int) bool { return r%relearnEvery < cfg.LearnRounds },
	})
	e.Register(&phased{
		inner: &AggProtocol{},
		active: func(r int) bool {
			phase := r % relearnEvery
			return phase >= cfg.LearnRounds && phase < pretrainLen
		},
	})
	cons := &ConsolidateProtocol{B: b, CurrentDemandOnly: cfg.CurrentDemandOnly}
	e.RegisterWindow(&phased{
		inner:  cons,
		active: func(r int) bool { return r >= pretrainLen },
	}, 1, 0, -1)
	return cons, nil
}
