package glap

import (
	"fmt"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
)

// phased wraps a protocol and runs it only on rounds where active(round)
// holds, which lets the learning and aggregation phases recur periodically
// while the engine's registration windows stay simple.
type phased struct {
	inner  sim.Protocol
	active func(round int) bool
}

func (p *phased) Name() string                         { return p.inner.Name() }
func (p *phased) Setup(e *sim.Engine, n *sim.Node) any { return p.inner.Setup(e, n) }
func (p *phased) Round(e *sim.Engine, n *sim.Node, r int) {
	if p.active(r) {
		p.inner.Round(e, n, r)
	}
}

// Parallelizable delegates to the wrapped protocol so that a phased learning
// component still fans out while a phased aggregation or consolidation
// component stays sequential.
func (p *phased) Parallelizable() bool {
	pr, ok := p.inner.(sim.ParallelRound)
	return ok && pr.Parallelizable()
}

// InstallContinuous registers the full GLAP stack in the paper's continuous
// deployment: the two-phase learning protocol re-runs on a fixed interval —
// "the learning component runs as required by a predefined policy e.g. ...
// based on a fixed time interval" (Section IV-B) — while the consolidation
// component keeps operating throughout on the previous Q-values (the
// "continue using the previous Q-values" configuration).
//
// Within every relearnEvery-round cycle, rounds [0, LearnRounds) run
// Algorithm 1 and rounds [LearnRounds, LearnRounds+AggRounds) run
// Algorithm 2. relearnEvery must therefore be at least
// LearnRounds+AggRounds. Consolidation starts after the first full
// pre-training cycle completes.
func InstallContinuous(e *sim.Engine, b *policy.Binding, cfg Config, relearnEvery int, opts PretrainOptions) (*ConsolidateProtocol, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pretrainLen := cfg.LearnRounds + cfg.AggRounds
	if relearnEvery < pretrainLen {
		return nil, fmt.Errorf("glap: relearnEvery %d shorter than one learning cycle (%d)", relearnEvery, pretrainLen)
	}
	e.Register(cyclon.New(opts.CyclonViewSize, opts.CyclonShuffleLen))
	learn := &LearnProtocol{Cfg: cfg, B: b}
	e.Register(&phased{
		inner:  learn,
		active: func(r int) bool { return r%relearnEvery < cfg.LearnRounds },
	})
	e.Register(&phased{
		inner: &AggProtocol{},
		active: func(r int) bool {
			phase := r % relearnEvery
			return phase >= cfg.LearnRounds && phase < pretrainLen
		},
	})
	cons := &ConsolidateProtocol{B: b, CurrentDemandOnly: cfg.CurrentDemandOnly}
	e.RegisterWindow(&phased{
		inner:  cons,
		active: func(r int) bool { return r >= pretrainLen },
	}, 1, 0, -1)
	return cons, nil
}
