package glap

import (
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/glap/decision"
	"github.com/glap-sim/glap/internal/gossip"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/qlearn"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/topology"
)

// ConsolidateProtocolName registers the Gossip Consolidation component.
const ConsolidateProtocolName = "glap-consolidate"

// ConsolidateProtocol is Algorithm 3: each round every PM push-pulls its
// load state with one random neighbour. An overloaded endpoint sheds VMs
// until it leaves the overloaded state; otherwise the endpoint with the
// lower current utilisation acts as sender and migrates VMs — chosen by
// π_out over φ^out — toward switching itself off. Each candidate migration
// is vetted on the sender, on behalf of the target, by π_in over φ^in
// (identical Q-values make this remote decision sound) plus the current-
// demand capacity check, eliminating a round trip.
type ConsolidateProtocol struct {
	B *policy.Binding
	// Tables returns the Q store for a node. Nil defaults to the learning
	// component registered on the same engine (TablesOf). Pre-trained
	// deployments inject tables here.
	Tables func(e *sim.Engine, n *sim.Node) *NodeTables
	// Select overrides the peer selector (defaults to Cyclon sampling).
	Select gossip.PeerSelector
	// CurrentDemandOnly mirrors Config.CurrentDemandOnly for the runtime
	// decision states (ablation switch).
	CurrentDemandOnly bool
	// Topo, when set, activates the topology-aware direction rule: between
	// two non-overloaded endpoints, the PM whose rack hosts fewer active
	// machines empties first, so sparsely occupied racks drain completely
	// and their edge switches can sleep. Rack occupancy is top-of-rack-
	// local information, so a deployment can maintain it without any
	// global view.
	Topo *topology.Tree

	rng sim.BoundRNG
}

// Name implements sim.Protocol.
func (p *ConsolidateProtocol) Name() string { return ConsolidateProtocolName }

// Setup implements sim.Protocol.
func (p *ConsolidateProtocol) Setup(e *sim.Engine, n *sim.Node) any {
	return struct{}{}
}

// pmState returns the decision state for a PM under the active demand mode.
func (p *ConsolidateProtocol) pmState(c *dc.Cluster, pm *dc.PM) qlearn.State {
	return DecisionPMState(c, pm, p.CurrentDemandOnly)
}

// vmAction returns the calibrated action for a VM under the active mode.
func (p *ConsolidateProtocol) vmAction(vm *dc.VM) qlearn.Action {
	return DecisionVMAction(vm, p.CurrentDemandOnly)
}

func (p *ConsolidateProtocol) tables(e *sim.Engine, n *sim.Node) *NodeTables {
	if p.Tables != nil {
		return p.Tables(e, n)
	}
	return TablesOf(e, n)
}

// Round implements one push-pull interaction: the initiator and the passive
// peer exchange states and both run UPDATESTATE (Algorithm 3, lines 1-17).
func (p *ConsolidateProtocol) Round(e *sim.Engine, n *sim.Node, round int) {
	sel := p.Select
	if sel == nil {
		sel = gossip.CyclonSelector
	}
	peer := sel(e, n, p.rng.For(e, 0xc0501))
	if peer < 0 {
		return
	}
	pmP := p.B.PM(n)
	pmQ := p.B.C.PMs[peer]
	p.updateState(e, n, pmP, pmQ)
	p.updateState(e, e.Node(peer), pmQ, pmP)
}

// updateState runs Algorithm 3's UPDATESTATE for endpoint s against peer o:
// the shared direction rule decides the sender role, then the matching
// migration loop drives the shared π_out/π_in core via migrateOne.
func (p *ConsolidateProtocol) updateState(e *sim.Engine, n *sim.Node, s, o *dc.PM) {
	c := p.B.C
	if !s.On() || !o.On() {
		return
	}
	st := p.tables(e, n)
	mode := decision.Direction(pmView(c, s), pmView(c, o))
	// Under the topology extension, rack occupancy replaces the utilisation
	// rule across racks: the endpoint in the sparser rack is the sender, so
	// sparsely occupied racks drain completely and their switches sleep.
	if p.Topo != nil && mode != decision.ModeShed && !c.Overloaded(o) && !p.Topo.SameRack(s.ID, o.ID) {
		if p.topoSends(s, o) {
			mode = decision.ModeEmpty
		} else {
			mode = decision.ModeNone
		}
	}
	switch mode {
	case decision.ModeShed:
		// Shed VMs while overloaded (lines 12-13).
		for c.Overloaded(s) {
			if !p.migrateOne(st, s, o) {
				return
			}
		}
	case decision.ModeEmpty:
		// The lower-utilisation endpoint empties itself (lines 14-16).
		for s.NumVMs() > 0 {
			if !p.migrateOne(st, s, o) {
				return
			}
		}
		_ = p.B.TryPowerOffIfEmpty(s.ID)
	}
}

// topoSends applies the cross-rack direction override: the endpoint in the
// rack with fewer active machines sends; equal occupancy drains the
// higher-numbered rack toward the lower one — a fixed gradient that gives
// otherwise-symmetric racks a consistent draining order using only local
// information.
func (p *ConsolidateProtocol) topoSends(s, o *dc.PM) bool {
	sr, or := p.rackActive(s.ID), p.rackActive(o.ID)
	if sr != or {
		return sr < or
	}
	return p.Topo.RackOf(s.ID) > p.Topo.RackOf(o.ID)
}

// rackActive counts the powered PMs in pm's rack.
func (p *ConsolidateProtocol) rackActive(pm int) int {
	rack := p.Topo.RackOf(pm)
	lo := rack * p.Topo.PMsPerRack
	hi := lo + p.Topo.PMsPerRack
	if hi > len(p.B.C.PMs) {
		hi = len(p.B.C.PMs)
	}
	n := 0
	for i := lo; i < hi; i++ {
		if p.B.C.PMs[i].On() {
			n++
		}
	}
	return n
}

// migrateOne performs one MIGRATE() step (Algorithm 3, lines 18-24) from s
// to o and reports whether a VM moved: the shared π_out core picks the
// offer, the shared π_in core vets it — on the sender, on behalf of the
// target, against the target's live state and free capacity — and the
// migration executes on acceptance.
func (p *ConsolidateProtocol) migrateOne(st *NodeTables, s, o *dc.PM) bool {
	c := p.B.C
	off, ok := decision.SelectOffer(st.Out, p.pmState(c, s), p.B.VMsOf(s), p.vmAction)
	if !ok {
		return false
	}
	if !decision.VetOffer(st.In, p.pmState(c, o), off.Action, off.VM.CurAbs(), c.FreeCur(o)) {
		return false
	}
	return c.Migrate(off.VM, o) == nil
}
