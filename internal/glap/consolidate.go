package glap

import (
	"sort"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/glap/decision"
	"github.com/glap-sim/glap/internal/gossip"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/qlearn"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/topology"
)

// ConsolidateProtocolName registers the Gossip Consolidation component.
const ConsolidateProtocolName = "glap-consolidate"

// ConsolidateProtocol is Algorithm 3: each round every PM push-pulls its
// load state with one random neighbour. An overloaded endpoint sheds VMs
// until it leaves the overloaded state; otherwise the endpoint with the
// lower current utilisation acts as sender and migrates VMs — chosen by
// π_out over φ^out — toward switching itself off. Each candidate migration
// is vetted on the sender, on behalf of the target, by π_in over φ^in
// (identical Q-values make this remote decision sound) plus the current-
// demand capacity check, eliminating a round trip.
type ConsolidateProtocol struct {
	B *policy.Binding
	// Tables returns the Q store for a node. Nil defaults to the learning
	// component registered on the same engine (TablesOf). Pre-trained
	// deployments inject tables here.
	Tables func(e *sim.Engine, n *sim.Node) *NodeTables
	// Select overrides the peer selector (defaults to Cyclon sampling).
	Select gossip.PeerSelector
	// CurrentDemandOnly mirrors Config.CurrentDemandOnly for the runtime
	// decision states (ablation switch).
	CurrentDemandOnly bool
	// Topo, when set, activates the topology-aware direction rule: between
	// two non-overloaded endpoints, the PM whose rack hosts fewer active
	// machines empties first, so sparsely occupied racks drain completely
	// and their edge switches can sleep. Rack occupancy is top-of-rack-
	// local information, so a deployment can maintain it without any
	// global view.
	Topo *topology.Tree

	rng sim.BoundRNG

	// accts holds one migration-accounting slot per drawn pair of the
	// current pair-sharded pass (see sim.PairRound); EndPairs folds them
	// back into the cluster ledger in draw order.
	accts []dc.MigAcct
}

// Name implements sim.Protocol.
func (p *ConsolidateProtocol) Name() string { return ConsolidateProtocolName }

// Setup implements sim.Protocol.
func (p *ConsolidateProtocol) Setup(e *sim.Engine, n *sim.Node) any {
	return struct{}{}
}

// pmState returns the decision state for a PM under the active demand mode.
func (p *ConsolidateProtocol) pmState(c *dc.Cluster, pm *dc.PM) qlearn.State {
	return DecisionPMState(c, pm, p.CurrentDemandOnly)
}

// vmAction returns the calibrated action for a VM under the active mode.
func (p *ConsolidateProtocol) vmAction(vm *dc.VM) qlearn.Action {
	return DecisionVMAction(vm, p.CurrentDemandOnly)
}

func (p *ConsolidateProtocol) tables(e *sim.Engine, n *sim.Node) *NodeTables {
	if p.Tables != nil {
		return p.Tables(e, n)
	}
	return TablesOf(e, n)
}

// Round implements one push-pull interaction: the initiator and the passive
// peer exchange states and both run UPDATESTATE (Algorithm 3, lines 1-17).
func (p *ConsolidateProtocol) Round(e *sim.Engine, n *sim.Node, round int) {
	sel := p.Select
	if sel == nil {
		sel = gossip.CyclonSelector
	}
	peer := sel(e, n, p.rng.For(e, 0xc0501))
	if peer < 0 {
		return
	}
	pmP := p.B.PM(n)
	pmQ := p.B.C.PMs[peer]
	p.updateState(e, n, pmP, pmQ, nil)
	p.updateState(e, e.Node(peer), pmQ, pmP, nil)
}

// PairSharded implements sim.PairRound. The topology-aware direction rule
// reads rack-global power state — beyond the two endpoints other pairs may
// be flipping concurrently — so it keeps the sequential path.
func (p *ConsolidateProtocol) PairSharded() bool { return p.Topo == nil }

// DrawPair implements sim.PairRound: exactly Round's peer draw.
func (p *ConsolidateProtocol) DrawPair(e *sim.Engine, n *sim.Node, round int) int {
	sel := p.Select
	if sel == nil {
		sel = gossip.CyclonSelector
	}
	return sel(e, n, p.rng.For(e, 0xc0501))
}

// BeginPairs implements sim.PairRound: size the per-pair accounting slots.
func (p *ConsolidateProtocol) BeginPairs(e *sim.Engine, round, npairs int) {
	if cap(p.accts) < npairs {
		p.accts = make([]dc.MigAcct, npairs)
	}
	p.accts = p.accts[:npairs]
}

// RunPair implements sim.PairRound: the push-pull exchange of Round with the
// cluster-global migration counters diverted into the pair's slot. All other
// writes are confined to the endpoint PMs and their hosted VMs.
func (p *ConsolidateProtocol) RunPair(e *sim.Engine, a, b *sim.Node, round, idx int) {
	acct := &p.accts[idx]
	pmP := p.B.PM(a)
	pmQ := p.B.C.PMs[b.ID]
	p.updateState(e, a, pmP, pmQ, acct)
	p.updateState(e, b, pmQ, pmP, acct)
}

// EndPairs implements sim.PairRound: fold the diverted accounting in draw
// order, reproducing the sequential ledger exactly for the same pair list.
func (p *ConsolidateProtocol) EndPairs(e *sim.Engine, round int) {
	for i := range p.accts {
		p.B.C.FoldMigAcct(&p.accts[i])
	}
}

// updateState runs Algorithm 3's UPDATESTATE for endpoint s against peer o:
// the shared direction rule decides the sender role, then the matching
// migration loop drives the shared π_out/π_in core via migrateOne.
func (p *ConsolidateProtocol) updateState(e *sim.Engine, n *sim.Node, s, o *dc.PM, acct *dc.MigAcct) {
	c := p.B.C
	if !s.On() || !o.On() {
		return
	}
	st := p.tables(e, n)
	mode := decision.Direction(pmView(c, s), pmView(c, o))
	// Under the topology extension, rack occupancy replaces the utilisation
	// rule across racks: the endpoint in the sparser rack is the sender, so
	// sparsely occupied racks drain completely and their switches sleep.
	if p.Topo != nil && mode != decision.ModeShed && !c.Overloaded(o) && !p.Topo.SameRack(s.ID, o.ID) {
		if p.topoSends(s, o) {
			mode = decision.ModeEmpty
		} else {
			mode = decision.ModeNone
		}
	}
	switch mode {
	case decision.ModeShed:
		// Shed VMs while overloaded (lines 12-13).
		for c.Overloaded(s) {
			if !p.migrateOne(st, s, o, acct) {
				return
			}
		}
	case decision.ModeEmpty:
		// The lower-utilisation endpoint empties itself (lines 14-16).
		for s.NumVMs() > 0 {
			if !p.migrateOne(st, s, o, acct) {
				return
			}
		}
		_ = p.B.TryPowerOffIfEmpty(s.ID)
	}
}

// topoSends applies the cross-rack direction override: the endpoint in the
// rack with fewer active machines sends; equal occupancy drains the
// higher-numbered rack toward the lower one — a fixed gradient that gives
// otherwise-symmetric racks a consistent draining order using only local
// information.
func (p *ConsolidateProtocol) topoSends(s, o *dc.PM) bool {
	sr, or := p.rackActive(s.ID), p.rackActive(o.ID)
	if sr != or {
		return sr < or
	}
	return p.Topo.RackOf(s.ID) > p.Topo.RackOf(o.ID)
}

// rackActive counts the powered PMs in pm's rack.
func (p *ConsolidateProtocol) rackActive(pm int) int {
	rack := p.Topo.RackOf(pm)
	lo := rack * p.Topo.PMsPerRack
	hi := lo + p.Topo.PMsPerRack
	if hi > len(p.B.C.PMs) {
		hi = len(p.B.C.PMs)
	}
	n := 0
	for i := lo; i < hi; i++ {
		if p.B.C.PMs[i].On() {
			n++
		}
	}
	return n
}

// migrateOne performs one MIGRATE() step (Algorithm 3, lines 18-24) from s
// to o and reports whether a VM moved: the shared π_out core picks the
// offer, the shared π_in core vets it — on the sender, on behalf of the
// target, against the target's live state and free capacity — and the
// migration executes on acceptance.
func (p *ConsolidateProtocol) migrateOne(st *NodeTables, s, o *dc.PM, acct *dc.MigAcct) bool {
	c := p.B.C
	off, ok := decision.SelectOffer(st.Out, p.pmState(c, s), p.B.VMsOf(s), p.vmAction)
	if !ok {
		return false
	}
	if !decision.VetOffer(st.In, p.pmState(c, o), off.Action, off.VM.CurAbs(), c.FreeCur(o)) {
		return false
	}
	return c.MigrateAcct(off.VM, o, acct) == nil
}

// InactiveSpan implements sim.QuiescentRound. The consolidation pass is
// provably inert for [from, to) — under the engine's proviso that demand is
// exactly constant and every other protocol is simultaneously quiet — when,
// from the current state:
//
//   - no powered PM is empty (an empty sender would power itself off);
//   - unless states are current-demand-only, every powered PM's and every
//     placed VM's average-demand levels match its current-demand levels:
//     the running average moves monotonically toward the constant current
//     value per component and the level buckets are intervals, so matching
//     levels persist for the whole span and every decision state is frozen;
//   - no admissible migration exists between any (sender, target) pair the
//     direction rule can produce. Both shed and empty migrations go through
//     the same migrateOne core, and π_out's offer is target-independent, so
//     each potential sender's offer is computed once from its own tables
//     and vetted against per-target-state buckets holding the
//     component-wise maximum free capacity over exactly the targets
//     direction admits for that sender: non-overloaded senders reach the
//     non-overloaded PMs above them in (utilisation, ID) order, while
//     overloaded senders shed toward every other powered PM. If even the
//     roomiest admissible target of every state rejects the offer, every
//     real target does too.
//
// An overloaded PM therefore does not by itself block certification: if its
// shed offer is inadmissible everywhere, the shed loop's first migrateOne
// fails and — with demand constant and no other migrations — it stays
// overloaded with the same inadmissible offer for the whole span. With no
// admissible offer anywhere, every exchange's first migrateOne fails and
// updateState returns before any state change, so the conditions themselves
// persist: the whole span is certified. The topology-aware rule adds
// rack-draining behaviour this certificate does not model, so it never
// certifies.
func (p *ConsolidateProtocol) InactiveSpan(e *sim.Engine, from, to int) int {
	if p.Topo != nil {
		return 0
	}
	c := p.B.C
	for _, pm := range c.PMs {
		if !pm.On() {
			continue
		}
		if pm.NumVMs() == 0 {
			return 0
		}
		if !p.CurrentDemandOnly && LevelsOf(c.AvgUtil(pm)) != LevelsOf(c.CurUtil(pm)) {
			return 0
		}
	}
	if !p.CurrentDemandOnly {
		for _, vm := range c.VMs {
			if vm.Host() < 0 {
				continue
			}
			if LevelsOf(vm.AvgDemand()) != LevelsOf(vm.CurDemand()) {
				return 0
			}
		}
	}
	// Direction (decision.Direction) totally orders the non-overloaded
	// powered PMs by (current mean utilisation, ID): an exchange only ever
	// moves VMs from the strictly lower-ranked endpoint toward a
	// higher-ranked one. Sweep the powered PMs from the top of that order
	// downward, maintaining per-target-state component-wise maxima of free
	// capacity over the PMs already passed — when a sender is vetted, the
	// maxima cover exactly the targets direction admits (and never the
	// sender itself). π_out's offer is target-independent, so it is computed
	// once per sender from the sender's own tables; if even the roomiest
	// admissible target of every state rejects it, every real target does
	// too. Mixing components from different targets only over-admits, which
	// keeps the bound conservative.
	order := make([]*sim.Node, 0, len(e.Nodes()))
	var over []*sim.Node
	for _, n := range e.Nodes() {
		pm := p.B.PM(n)
		if !pm.On() {
			continue
		}
		if c.Overloaded(pm) {
			over = append(over, n)
		} else {
			order = append(order, n)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		pi, pj := p.B.PM(order[i]), p.B.PM(order[j])
		ui, uj := c.CurUtil(pi).Avg(), c.CurUtil(pj).Avg()
		if ui != uj {
			return ui < uj
		}
		return pi.ID < pj.ID
	})
	maxFree := make(map[qlearn.State]dc.Vec)
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		pm := p.B.PM(n)
		st := p.tables(e, n)
		if off, ok := decision.SelectOffer(st.Out, p.pmState(c, pm), p.B.VMsOf(pm), p.vmAction); ok {
			demand := off.VM.CurAbs()
			for state, free := range maxFree {
				if decision.VetOffer(st.In, state, off.Action, demand, free) {
					return 0
				}
			}
		}
		s := p.pmState(c, pm)
		free := c.FreeCur(pm)
		if have, ok := maxFree[s]; ok {
			for r := 0; r < dc.NumResources; r++ {
				if have[r] > free[r] {
					free[r] = have[r]
				}
			}
		}
		maxFree[s] = free
	}
	// After the sweep, maxFree covers every non-overloaded powered PM. An
	// overloaded PM sheds regardless of direction, so vet its offer against
	// those maxima plus each other overloaded PM pairwise (never itself).
	for _, n := range over {
		pm := p.B.PM(n)
		st := p.tables(e, n)
		off, ok := decision.SelectOffer(st.Out, p.pmState(c, pm), p.B.VMsOf(pm), p.vmAction)
		if !ok {
			continue
		}
		demand := off.VM.CurAbs()
		for state, free := range maxFree {
			if decision.VetOffer(st.In, state, off.Action, demand, free) {
				return 0
			}
		}
		for _, m := range over {
			if m == n {
				continue
			}
			opm := p.B.PM(m)
			if decision.VetOffer(st.In, p.pmState(c, opm), off.Action, demand, c.FreeCur(opm)) {
				return 0
			}
		}
	}
	return to - from
}
