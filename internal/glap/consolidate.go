package glap

import (
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/gossip"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/qlearn"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/topology"
)

// ConsolidateProtocolName registers the Gossip Consolidation component.
const ConsolidateProtocolName = "glap-consolidate"

// ConsolidateProtocol is Algorithm 3: each round every PM push-pulls its
// load state with one random neighbour. An overloaded endpoint sheds VMs
// until it leaves the overloaded state; otherwise the endpoint with the
// lower current utilisation acts as sender and migrates VMs — chosen by
// π_out over φ^out — toward switching itself off. Each candidate migration
// is vetted on the sender, on behalf of the target, by π_in over φ^in
// (identical Q-values make this remote decision sound) plus the current-
// demand capacity check, eliminating a round trip.
type ConsolidateProtocol struct {
	B *policy.Binding
	// Tables returns the Q store for a node. Nil defaults to the learning
	// component registered on the same engine (TablesOf). Pre-trained
	// deployments inject tables here.
	Tables func(e *sim.Engine, n *sim.Node) *NodeTables
	// Select overrides the peer selector (defaults to Cyclon sampling).
	Select gossip.PeerSelector
	// CurrentDemandOnly mirrors Config.CurrentDemandOnly for the runtime
	// decision states (ablation switch).
	CurrentDemandOnly bool
	// Topo, when set, activates the topology-aware direction rule: between
	// two non-overloaded endpoints, the PM whose rack hosts fewer active
	// machines empties first, so sparsely occupied racks drain completely
	// and their edge switches can sleep. Rack occupancy is top-of-rack-
	// local information, so a deployment can maintain it without any
	// global view.
	Topo *topology.Tree

	rng sim.BoundRNG
}

// Name implements sim.Protocol.
func (p *ConsolidateProtocol) Name() string { return ConsolidateProtocolName }

// Setup implements sim.Protocol.
func (p *ConsolidateProtocol) Setup(e *sim.Engine, n *sim.Node) any {
	return struct{}{}
}

// pmState returns the decision state for a PM: average-demand based unless
// the current-only ablation is active.
func (p *ConsolidateProtocol) pmState(c *dc.Cluster, pm *dc.PM) qlearn.State {
	if p.CurrentDemandOnly {
		return PMStateCur(c, pm)
	}
	return PMStateAvg(c, pm)
}

// vmAction returns the calibrated action for a VM under the active mode.
func (p *ConsolidateProtocol) vmAction(vm *dc.VM) qlearn.Action {
	if p.CurrentDemandOnly {
		return LevelsOf(vm.CurDemand()).Action()
	}
	return VMAction(vm)
}

func (p *ConsolidateProtocol) tables(e *sim.Engine, n *sim.Node) *NodeTables {
	if p.Tables != nil {
		return p.Tables(e, n)
	}
	return TablesOf(e, n)
}

// Round implements one push-pull interaction: the initiator and the passive
// peer exchange states and both run UPDATESTATE (Algorithm 3, lines 1-17).
func (p *ConsolidateProtocol) Round(e *sim.Engine, n *sim.Node, round int) {
	sel := p.Select
	if sel == nil {
		sel = gossip.CyclonSelector
	}
	peer := sel(e, n, p.rng.For(e, 0xc0501))
	if peer < 0 {
		return
	}
	pmP := p.B.PM(n)
	pmQ := p.B.C.PMs[peer]
	p.updateState(e, n, pmP, pmQ)
	p.updateState(e, e.Node(peer), pmQ, pmP)
}

// updateState runs Algorithm 3's UPDATESTATE for endpoint s against peer o.
func (p *ConsolidateProtocol) updateState(e *sim.Engine, n *sim.Node, s, o *dc.PM) {
	c := p.B.C
	if !s.On() || !o.On() {
		return
	}
	st := p.tables(e, n)
	if c.Overloaded(s) {
		// Shed VMs while overloaded (lines 12-13).
		for c.Overloaded(s) {
			if !p.migrateOne(st, s, o) {
				return
			}
		}
		return
	}
	if c.Overloaded(o) {
		return
	}
	// The endpoint with the lower current utilisation empties itself
	// (lines 14-16); ties break toward the lower ID so exactly one side
	// acts. Under the topology extension, rack occupancy dominates the
	// direction choice: the endpoint in the sparser rack is the sender.
	if p.Topo != nil && !p.Topo.SameRack(s.ID, o.ID) {
		sr, or := p.rackActive(s.ID), p.rackActive(o.ID)
		switch {
		case sr < or:
			// s's rack is sparser: s is the sender; fall through.
		case sr > or:
			return
		case p.Topo.RackOf(s.ID) < p.Topo.RackOf(o.ID):
			// Equal occupancy: drain the higher-numbered rack toward the
			// lower one. The fixed gradient gives otherwise-symmetric racks
			// a consistent draining order using only local information.
			return
		}
	} else if !lowerUtil(c, s, o) {
		return
	}
	for s.NumVMs() > 0 {
		if !p.migrateOne(st, s, o) {
			return
		}
	}
	_ = p.B.TryPowerOffIfEmpty(s.ID)
}

// lowerUtil reports whether s has strictly lower current utilisation than o
// (ties break toward the lower ID, so exactly one endpoint acts per pair).
func lowerUtil(c *dc.Cluster, s, o *dc.PM) bool {
	su, ou := c.CurUtil(s).Avg(), c.CurUtil(o).Avg()
	return su < ou || (su == ou && s.ID < o.ID)
}

// rackActive counts the powered PMs in pm's rack.
func (p *ConsolidateProtocol) rackActive(pm int) int {
	rack := p.Topo.RackOf(pm)
	lo := rack * p.Topo.PMsPerRack
	hi := lo + p.Topo.PMsPerRack
	if hi > len(p.B.C.PMs) {
		hi = len(p.B.C.PMs)
	}
	n := 0
	for i := lo; i < hi; i++ {
		if p.B.C.PMs[i].On() {
			n++
		}
	}
	return n
}

// migrateOne performs one MIGRATE() step (Algorithm 3, lines 18-24) from s
// to o and reports whether a VM moved. It picks the action with the highest
// φ^out value among the sender's available VMs, breaks ties toward the VM
// with the cheapest migration, and aborts when π_in rejects the action for
// the target's state or the target lacks capacity for the VM's current
// demand.
func (p *ConsolidateProtocol) migrateOne(st *NodeTables, s, o *dc.PM) bool {
	c := p.B.C
	vms := p.B.VMsOf(s)
	if len(vms) == 0 {
		return false
	}
	// Group available VMs by calibrated action.
	byAction := make(map[qlearn.Action][]*dc.VM)
	actions := make([]qlearn.Action, 0, 4)
	for _, vm := range vms {
		a := p.vmAction(vm)
		if _, seen := byAction[a]; !seen {
			actions = append(actions, a)
		}
		byAction[a] = append(byAction[a], vm)
	}
	a, _, ok := st.Out.Best(p.pmState(c, s), actions)
	if !ok {
		return false
	}
	vm := policy.CheapestToMigrate(byAction[a])
	// π_in: the sender decides for the target using the shared φ^in.
	if st.In.Get(p.pmState(c, o), a) < 0 {
		return false
	}
	if !c.FitsCur(vm, o) {
		return false
	}
	return c.Migrate(vm, o) == nil
}
