package glap

import (
	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/gossip"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/topology"
)

// LocalitySelector implements the paper's future-work extension at the peer
// sampling layer: gossip partners are drawn from the Cyclon view with a
// strict preference for PMs in the same rack, then the same pod, then
// anywhere. Consolidation pairs therefore form inside racks first, so VMs
// drain toward rack-local machines, whole racks empty, and their edge
// switches can sleep — while cross-rack migrations (slow and costly under
// oversubscription) become rare.
//
// The selector only reorders candidates the overlay already provides; the
// overlay itself remains the uniform Cyclon graph, so convergence of the
// learning and aggregation phases is unaffected.
// Tier weights: mostly rack-local pairs, but enough same-pod and cross-pod
// pairings that residual VMs in nearly-empty racks can still drain away and
// whole racks switch off. A strict rack-first preference would trap one
// partially-filled PM per rack and keep every edge switch powered.
const (
	pSameRack = 0.60
	pSamePod  = 0.25
)

func LocalitySelector(tree *topology.Tree) gossip.PeerSelector {
	return func(e *sim.Engine, n *sim.Node, rng *sim.RNG) int {
		view := cyclon.ViewOf(e, n)
		var sameRack, samePod, other []int
		for _, entry := range view.Entries() {
			if !e.Node(entry.Peer).Up() {
				continue
			}
			switch {
			case tree.SameRack(n.ID, entry.Peer):
				sameRack = append(sameRack, entry.Peer)
			case tree.SamePod(n.ID, entry.Peer):
				samePod = append(samePod, entry.Peer)
			default:
				other = append(other, entry.Peer)
			}
		}
		tiers := [][]int{sameRack, samePod, other}
		u := rng.Float64()
		var order []int
		switch {
		case u < pSameRack:
			order = []int{0, 1, 2}
		case u < pSameRack+pSamePod:
			order = []int{1, 0, 2}
		default:
			order = []int{2, 1, 0}
		}
		for _, i := range order {
			if len(tiers[i]) > 0 {
				return tiers[i][rng.Intn(len(tiers[i]))]
			}
		}
		return -1
	}
}

// BandwidthModel adapts a topology tree to the cluster's migration
// bandwidth hook: edge bandwidth scaled by the oversubscription factor of
// the path between the two machines.
func BandwidthModel(tree *topology.Tree, edgeMBps float64) func(src, dst int) float64 {
	return func(src, dst int) float64 {
		return edgeMBps * tree.BandwidthFactor(src, dst)
	}
}
