package glap

import (
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/glap/decision"
	"github.com/glap-sim/glap/internal/qlearn"
)

// This file adapts live cluster state to the pure decision core in
// internal/glap/decision. Both consolidation transports (the cycle-driven
// ConsolidateProtocol and the message-passing AsyncConsolidateProtocol)
// lower their endpoints through these helpers, so the decision arithmetic
// exists exactly once.

// DecisionPMState returns the calibrated decision state for a PM:
// average-demand based per Section IV-B, or current-demand only under the
// ablation switch.
func DecisionPMState(c *dc.Cluster, pm *dc.PM, currentOnly bool) qlearn.State {
	if currentOnly {
		return PMStateCur(c, pm)
	}
	return PMStateAvg(c, pm)
}

// DecisionVMAction returns the calibrated action for a VM under the active
// demand mode.
func DecisionVMAction(vm *dc.VM, currentOnly bool) qlearn.Action {
	if currentOnly {
		return LevelsOf(vm.CurDemand()).Action()
	}
	return VMAction(vm)
}

// pmView summarises a live PM for the direction rule.
func pmView(c *dc.Cluster, pm *dc.PM) decision.View {
	return decision.View{
		ID:         pm.ID,
		Overloaded: c.Overloaded(pm),
		Util:       c.CurUtil(pm).Avg(),
	}
}
