package glap

import (
	"testing"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/topology"
)

func mustTree(t *testing.T, n, rack, pod int) *topology.Tree {
	t.Helper()
	tree, err := topology.New(n, rack, pod)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestBandwidthModel(t *testing.T) {
	tree := mustTree(t, 16, 4, 2)
	bw := BandwidthModel(tree, 1000)
	if got := bw(0, 1); got != 1000 {
		t.Fatalf("same-rack bw %g", got)
	}
	if got := bw(0, 4); got != 400 {
		t.Fatalf("same-pod bw %g", got)
	}
	if got := bw(0, 8); got != 160 {
		t.Fatalf("cross-pod bw %g", got)
	}
}

func TestLocalitySelectorPrefersRack(t *testing.T) {
	// 32 nodes in 4-PM racks; node 0's Cyclon view will eventually include
	// both rack-mates and strangers. Count tier frequencies over many
	// selections: same-rack peers must dominate when available.
	tree := mustTree(t, 32, 4, 2)
	e := sim.NewEngine(32, 9)
	e.Register(cyclon.New(16, 8))
	e.RunRounds(20)

	sel := LocalitySelector(tree)
	rng := sim.NewRNG(4)
	rackHits, podHits, otherHits := 0, 0, 0
	for i := 0; i < 3000; i++ {
		p := sel(e, e.Node(0), rng)
		if p < 0 {
			continue
		}
		switch {
		case tree.SameRack(0, p):
			rackHits++
		case tree.SamePod(0, p):
			podHits++
		default:
			otherHits++
		}
	}
	// The view holds ~3 rack-mates out of 16 entries; uniform selection
	// would pick them ~19% of the time. The locality selector must pick
	// them the majority of the time while still mixing in wider tiers.
	if rackHits < otherHits {
		t.Fatalf("rack=%d pod=%d other=%d: locality preference absent", rackHits, podHits, otherHits)
	}
	if otherHits == 0 && podHits == 0 {
		t.Fatal("selector never leaves the rack; draining would deadlock")
	}
}

func TestLocalitySelectorDeadPeers(t *testing.T) {
	tree := mustTree(t, 8, 4, 2)
	e := sim.NewEngine(8, 10)
	e.Register(cyclon.New(7, 3))
	e.RunRounds(5)
	for id := 1; id < 8; id++ {
		e.SetUp(e.Node(id), false)
	}
	sel := LocalitySelector(tree)
	rng := sim.NewRNG(5)
	if p := sel(e, e.Node(0), rng); p != -1 {
		t.Fatalf("selected dead peer %d", p)
	}
}

func TestRackActive(t *testing.T) {
	cl := constCluster(t, 8, 8, 0.2, 0.2)
	e := sim.NewEngine(8, 11)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	tree := mustTree(t, 8, 4, 2)
	cons := &ConsolidateProtocol{B: b, Topo: tree}
	if got := cons.rackActive(0); got != 4 {
		t.Fatalf("rack 0 active = %d, want 4", got)
	}
	// Empty and power off PM 1.
	for _, id := range cl.PMs[1].VMIDs() {
		if err := cl.Migrate(cl.VMs[id], cl.PMs[0]); err != nil {
			t.Fatal(err)
		}
	}
	if !b.TryPowerOffIfEmpty(1) {
		t.Fatal("could not power off PM 1")
	}
	if got := cons.rackActive(0); got != 3 {
		t.Fatalf("rack 0 active after power-off = %d, want 3", got)
	}
	if got := cons.rackActive(5); got != 4 {
		t.Fatalf("rack 1 active = %d, want 4", got)
	}
}

func TestTopologyAwareConsolidationDrainsRacks(t *testing.T) {
	// End-to-end: with the topology extension, the surviving active PMs
	// must concentrate in fewer racks than uniform GLAP leaves them in.
	cl := genCluster(t, 24, 48, 80, 19)
	pre, err := Pretrain(Config{LearnRounds: 20, AggRounds: 15}, genCluster(t, 24, 48, 80, 19), 19, PretrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := SharedTables(pre)
	if err != nil {
		t.Fatal(err)
	}
	tree := mustTree(t, 24, 4, 3)

	e := sim.NewEngine(24, 20)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	cons := InstallConsolidation(e, b, shared, Config{}, PretrainOptions{})
	cons.Select = LocalitySelector(tree)
	cons.Topo = tree
	e.RunRounds(60)

	racksUp := map[int]bool{}
	active := 0
	for _, pm := range cl.PMs {
		if pm.On() {
			racksUp[tree.RackOf(pm.ID)] = true
			active++
		}
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if active >= 24 {
		t.Fatal("no consolidation under topology extension")
	}
	// Active PMs should occupy a compact set of racks: within a couple of
	// racks of the densest possible packing (ceil(active/rackSize)).
	ideal := (active + tree.PMsPerRack - 1) / tree.PMsPerRack
	if len(racksUp) > ideal+2 {
		t.Fatalf("%d active PMs spread over %d racks (ideal %d)", active, len(racksUp), ideal)
	}
}
