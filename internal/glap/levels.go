// Package glap implements the paper's contribution: the GLAP (Gossip
// Learning Resource Allocation Protocol) dynamic VM consolidation algorithm.
// It comprises the 9-level state/action calibration (Section IV-A), the two
// reward systems, the two-phase distributed learning protocol (Algorithms 1
// and 2), and the gossip consolidation component (Algorithm 3).
package glap

import (
	"fmt"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/qlearn"
)

// Level is one of the paper's nine calibrated utilisation levels.
type Level uint8

// The nine utilisation levels of Section IV-A.
const (
	Low Level = iota
	Medium
	High
	XHigh
	X2High
	X3High
	X4High
	X5High
	Overload

	// NumLevels is the size of the level scale.
	NumLevels = 9
)

// String returns the paper's level name.
func (l Level) String() string {
	switch l {
	case Low:
		return "Low"
	case Medium:
		return "Medium"
	case High:
		return "High"
	case XHigh:
		return "xHigh"
	case X2High:
		return "2xHigh"
	case X3High:
		return "3xHigh"
	case X4High:
		return "4xHigh"
	case X5High:
		return "5xHigh"
	case Overload:
		return "Overload"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// LevelOf calibrates a utilisation fraction onto the nine-level scale using
// the thresholds of Section IV-A. Utilisation at or above capacity maps to
// Overload. The comparison tree evaluates at most four of the boundaries
// (the linear chain averaged five with poorly predicted branches — this
// runs four times per training iteration and once per PM/VM state read in
// consolidation); every boundary keeps the exact constant and operator of
// the paper's calibration, so results are bit-identical to the chain.
func LevelOf(x float64) Level {
	if x <= 0.5 {
		if x <= 0.2 {
			return Low
		}
		if x <= 0.4 {
			return Medium
		}
		return High
	}
	if x <= 0.7 {
		if x <= 0.6 {
			return XHigh
		}
		return X2High
	}
	if x <= 0.9 {
		if x <= 0.8 {
			return X3High
		}
		return X4High
	}
	if x < 1 {
		return X5High
	}
	return Overload
}

// Levels is a calibrated multi-resource load state: one Level per resource.
// With two resources and nine levels there are 81 possible states/actions.
type Levels [dc.NumResources]Level

// LevelsOf calibrates a utilisation vector.
func LevelsOf(util dc.Vec) Levels {
	var ls Levels
	for r := 0; r < dc.NumResources; r++ {
		ls[r] = LevelOf(util[r])
	}
	return ls
}

// String renders e.g. "(4xHigh, xHigh)".
func (ls Levels) String() string {
	return fmt.Sprintf("(%s, %s)", ls[dc.CPU], ls[dc.Mem])
}

// HasOverload reports whether any resource is at the Overload level.
func (ls Levels) HasOverload() bool {
	for _, l := range ls {
		if l == Overload {
			return true
		}
	}
	return false
}

// State packs the level pair into a Q-learning state.
func (ls Levels) State() qlearn.State {
	v := uint32(0)
	for _, l := range ls {
		v = v*NumLevels + uint32(l)
	}
	return qlearn.State(v)
}

// Action packs the level pair into a Q-learning action.
func (ls Levels) Action() qlearn.Action { return qlearn.Action(ls.State()) }

// LevelsOfState unpacks a packed state back into its level pair.
func LevelsOfState(s qlearn.State) Levels {
	var ls Levels
	v := uint32(s)
	for i := dc.NumResources - 1; i >= 0; i-- {
		ls[i] = Level(v % NumLevels)
		v /= NumLevels
	}
	return ls
}

// LevelsOfAction unpacks a packed action.
func LevelsOfAction(a qlearn.Action) Levels { return LevelsOfState(qlearn.State(a)) }

// PMStateAvg returns the PM's calibrated state from its VMs' average
// demands — the paper's pre-action state.
func PMStateAvg(c *dc.Cluster, pm *dc.PM) qlearn.State {
	return LevelsOf(c.AvgUtil(pm)).State()
}

// PMStateCur returns the PM's calibrated state from current demands — the
// paper's post-action state.
func PMStateCur(c *dc.Cluster, pm *dc.PM) qlearn.State {
	return LevelsOf(c.CurUtil(pm)).State()
}

// VMAction returns the VM's calibrated action from its average demand.
func VMAction(vm *dc.VM) qlearn.Action {
	return LevelsOf(vm.AvgDemand()).Action()
}
