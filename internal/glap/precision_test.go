package glap

import (
	"bytes"
	"math"
	"testing"

	"github.com/glap-sim/glap/internal/qlearn"
)

// TestPretrainF32BoundedDivergence runs the same pre-training twice — default
// F64 and the F32 value tier — and pins the tier's accuracy contract. The
// training draws are value-independent (actions come from demand levels,
// rewards from levels, partitions from the RNG), so both runs visit identical
// cells; only the stored values drift by accumulated float32 rounding. The
// per-cell divergence must stay within a tight relative envelope, the φ^io
// cosine trajectory must still converge to ~1, and every F32 cell must be
// exactly float32-representable.
func TestPretrainF32BoundedDivergence(t *testing.T) {
	run := func(prec qlearn.Precision) *PretrainResult {
		cl := genCluster(t, 24, 72, 120, 11)
		cfg := Config{LearnRounds: 40, AggRounds: 40, Precision: prec}
		res, err := Pretrain(cfg, cl, 11, PretrainOptions{MeasureEvery: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r64, r32 := run(qlearn.F64), run(qlearn.F32)

	if got := r32.FinalSimilarity(); got < 0.999 {
		t.Fatalf("F32 final similarity %g, want ~1", got)
	}
	if len(r32.Convergence) != len(r64.Convergence) {
		t.Fatalf("convergence series lengths differ: %d vs %d", len(r64.Convergence), len(r32.Convergence))
	}
	// The cosine trajectory is a normalised statistic over thousands of
	// cells; float32 storage shifts each sample by at most a few ulps of
	// accumulated rounding.
	for i := range r32.Convergence {
		if d := math.Abs(r32.Convergence[i] - r64.Convergence[i]); d > 1e-4 {
			t.Fatalf("convergence[%d] diverged by %g: F64 %v vs F32 %v", i, d, r64.Convergence[i], r32.Convergence[i])
		}
	}

	checkTable := func(node int, t64, t32 *qlearn.Table) {
		t.Helper()
		if t32.Precision() != qlearn.F32 {
			t.Fatalf("node %d: table lost the F32 tier", node)
		}
		if t64.Len() != t32.Len() {
			t.Fatalf("node %d: cell sets diverged (%d vs %d) — draws are supposed to be value-independent", node, t64.Len(), t32.Len())
		}
		for k, v64 := range t64.Flat() {
			v32 := t32.Get(k.S, k.A)
			if v32 != float64(float32(v32)) {
				t.Fatalf("node %d cell %v: F32 table holds non-f32 value %v", node, k, v32)
			}
			scale := math.Abs(v64)
			if scale < 1 {
				scale = 1
			}
			if d := math.Abs(v64 - v32); d > 4e-4*scale {
				t.Fatalf("node %d cell %v: |ΔQ| = %g exceeds bound (F64 %v, F32 %v)", node, k, d, v64, v32)
			}
		}
	}
	for i := range r64.Tables {
		checkTable(i, r64.Tables[i].Out, r32.Tables[i].Out)
		checkTable(i, r64.Tables[i].In, r32.Tables[i].In)
	}
}

// TestPretrainF32WorkerCountBitEquivalence is the F32 half of the worker
// invariance: the narrow tier must stay byte-identical for Workers=1 and
// Workers=8, including its float32-backed convergence samples. Run under
// -race in CI alongside the F64 variant.
func TestPretrainF32WorkerCountBitEquivalence(t *testing.T) {
	run := func(workers int) *PretrainResult {
		cl := genCluster(t, 30, 60, 60, 3)
		cl.Workers = workers
		res, err := Pretrain(Config{LearnRounds: 25, AggRounds: 15, Precision: qlearn.F32}, cl, 17,
			PretrainOptions{MeasureEvery: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if len(a.Convergence) != len(b.Convergence) {
		t.Fatalf("convergence series lengths differ: %d vs %d", len(a.Convergence), len(b.Convergence))
	}
	for i := range a.Convergence {
		if math.Float64bits(a.Convergence[i]) != math.Float64bits(b.Convergence[i]) {
			t.Fatalf("convergence[%d] diverges: %v vs %v", i, a.Convergence[i], b.Convergence[i])
		}
	}
	for i := range a.Tables {
		ta, tb := a.Tables[i], b.Tables[i]
		if tableFingerprint(ta.Out) != tableFingerprint(tb.Out) || tableFingerprint(ta.In) != tableFingerprint(tb.In) {
			t.Fatalf("node %d tables diverge across worker counts", i)
		}
	}
}

// TestF32CheckpointRoundTrip pins the warm-restart contract for the narrow
// tier: a checkpointed F32 store restores as F32 with every value intact,
// re-checkpoints byte-identically, and keeps merging on its own tier.
func TestF32CheckpointRoundTrip(t *testing.T) {
	st := NewNodeTables(Config{Precision: qlearn.F32})
	st.Out.Set(1, 2, 0.1)
	st.Out.Set(3, 4, -7.5)
	st.In.Set(5, 6, 0.25)
	st.Trained = true

	blob, err := CheckpointTables(st)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RestoreTables(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Out.Precision() != qlearn.F32 || got.In.Precision() != qlearn.F32 {
		t.Fatal("restore dropped the F32 tier")
	}
	if !got.Trained {
		t.Fatal("restore dropped the Trained flag")
	}
	if !qlearn.Equal(st.Out, got.Out) || !qlearn.Equal(st.In, got.In) {
		t.Fatal("restore lost values")
	}
	blob2, err := CheckpointTables(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("re-checkpoint not byte-identical")
	}

	// Merging two restored F32 stores stays on-tier and averages through
	// the F32 rounding point.
	other := NewNodeTables(Config{Precision: qlearn.F32})
	other.Out.Set(1, 2, 0.3)
	MergeTables(got, other)
	want := float64(float32((float64(float32(0.1)) + float64(float32(0.3))) / 2))
	if v := got.Out.Get(1, 2); v != want {
		t.Fatalf("merged value %v, want %v", v, want)
	}
	if got.Out.Precision() != qlearn.F32 || other.Out.Precision() != qlearn.F32 {
		t.Fatal("merge changed a tier")
	}
}

// TestIOVec32MatchesIOVec: the narrow φ^io buffer must agree cell-for-cell
// with the float64 buffer (up to representation) on both tiers.
func TestIOVec32MatchesIOVec(t *testing.T) {
	for _, prec := range []qlearn.Precision{qlearn.F64, qlearn.F32} {
		st := NewNodeTables(Config{Precision: prec})
		st.Out.Set(1, 2, 0.1)
		st.In.Set(3, 4, -2.5)
		wide, narrow := st.IOVec(), st.IOVec32()
		if len(wide) != IOVecLen || len(narrow) != IOVecLen {
			t.Fatalf("%v: buffer lengths %d/%d, want %d", prec, len(wide), len(narrow), IOVecLen)
		}
		for i := range wide {
			if float32(wide[i]) != narrow[i] {
				t.Fatalf("%v: cell %d: IOVec %v vs IOVec32 %v", prec, i, wide[i], narrow[i])
			}
		}
	}
}
