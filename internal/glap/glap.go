package glap

import (
	"fmt"
	"time"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/gossip"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/qlearn"
	"github.com/glap-sim/glap/internal/sim"
)

// PretrainResult is the outcome of the two-phase gossip learning protocol.
type PretrainResult struct {
	// Tables holds every node's Q store at the end of the aggregation
	// phase. After convergence they are identical (up to stragglers).
	Tables []*NodeTables
	// Convergence is the mean pairwise cosine similarity of φ^io sampled
	// at the end of each measured round: first the learning-phase (WOG)
	// rounds, then the aggregation-phase (WG) rounds.
	Convergence []float64
	// ConvergenceRound[i] is the round Convergence[i] was measured at.
	ConvergenceRound []int
	// LearnRounds and AggRounds echo the phase split used.
	LearnRounds, AggRounds int
	// LearnSec and AggSec attribute the run's wall time to the two phases:
	// rounds [0, LearnRounds) (Algorithm 1) and the rest (Algorithm 2 plus
	// result collection). The split lets the scale benchmark report which
	// phase a regression lives in without a profiler.
	LearnSec, AggSec float64
}

// FinalSimilarity returns the last measured convergence value (1 when
// nothing was measured).
func (r *PretrainResult) FinalSimilarity() float64 {
	if len(r.Convergence) == 0 {
		return 1
	}
	return r.Convergence[len(r.Convergence)-1]
}

// PretrainOptions tunes the pretraining run.
type PretrainOptions struct {
	// MeasureEvery samples convergence every k rounds (0 disables
	// measurement, 1 measures every round).
	MeasureEvery int
	// MeasurePairs is the number of random node pairs per sample
	// (default 64).
	MeasurePairs int
	// CyclonViewSize / CyclonShuffleLen configure the overlay
	// (defaults 20 / 8).
	CyclonViewSize   int
	CyclonShuffleLen int
	// Workers bounds fork-join parallelism inside the pretraining engine and
	// its cluster (see sim.Engine.Workers for the semantics). Results are
	// identical for every setting.
	Workers int
}

// Pretrain executes the paper's pre-training: Algorithm 1 for
// cfg.LearnRounds rounds, then Algorithm 2 for cfg.AggRounds rounds, on a
// dedicated engine bound to cl. The cluster advances through the workload
// while training so that VMs accumulate the average-demand history the
// state calibration depends on. cl is consumed by the call; build the
// comparison cluster separately so every policy starts from the same
// initial placement.
func Pretrain(cfg Config, cl *dc.Cluster, seed uint64, opts PretrainOptions) (*PretrainResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := sim.NewEngine(len(cl.PMs), seed)
	e.Workers = opts.Workers
	cl.Workers = opts.Workers
	b, err := policy.Bind(e, cl)
	if err != nil {
		return nil, err
	}
	e.Register(cyclon.New(opts.CyclonViewSize, opts.CyclonShuffleLen))
	learn := &LearnProtocol{Cfg: cfg, B: b}
	e.RegisterWindow(learn, 1, 0, cfg.LearnRounds-1)
	agg := &AggProtocol{}
	e.RegisterWindow(agg, 1, cfg.LearnRounds, cfg.LearnRounds+cfg.AggRounds-1)

	res := &PretrainResult{LearnRounds: cfg.LearnRounds, AggRounds: cfg.AggRounds}
	if opts.MeasureEvery > 0 {
		pairs := opts.MeasurePairs
		if pairs <= 0 {
			pairs = 64
		}
		measureRNG := e.RNG().Derive(0x3ea5)
		e.Observe(func(e *sim.Engine, round int) {
			if round%opts.MeasureEvery != 0 {
				return
			}
			// F32 stacks measure over the narrow buffers directly; both
			// branches consume one pair-draw sequence from measureRNG.
			var sim1 float64
			if cfg.Precision == qlearn.F32 {
				sim1 = gossip.MeanPairwiseCosineDense32(e, IOVectorDense32, pairs, measureRNG)
			} else {
				sim1 = gossip.MeanPairwiseCosineDense(e, IOVectorDense, pairs, measureRNG)
			}
			res.Convergence = append(res.Convergence, sim1)
			res.ConvergenceRound = append(res.ConvergenceRound, round)
		})
	}

	// Phase attribution: an observer timestamps the learning→aggregation
	// boundary. Registering a plain observer is safe here — the pretrain
	// engine never enables quiescence skipping, so every round is executed
	// and observed.
	start := time.Now()
	boundary := start
	e.Observe(func(e *sim.Engine, round int) {
		if round == cfg.LearnRounds-1 {
			boundary = time.Now()
		}
	})

	e.RunRounds(cfg.LearnRounds + cfg.AggRounds)

	res.Tables = make([]*NodeTables, e.N())
	for i, n := range e.Nodes() {
		res.Tables[i] = TablesOf(e, n)
	}
	res.LearnSec = boundary.Sub(start).Seconds()
	res.AggSec = time.Since(boundary).Seconds()
	return res, nil
}

// SharedTables collapses a pretraining result into one Q store: the store of
// the node with the largest table (post-convergence they are identical, so
// any maximal holder works). It returns an error when no node learned
// anything.
func SharedTables(res *PretrainResult) (*NodeTables, error) {
	var best *NodeTables
	for _, t := range res.Tables {
		if t == nil {
			continue
		}
		if best == nil || t.Out.Len()+t.In.Len() > best.Out.Len()+best.In.Len() {
			best = t
		}
	}
	if best == nil || best.Out.Len()+best.In.Len() == 0 {
		return nil, fmt.Errorf("glap: pretraining produced no Q-values")
	}
	return best, nil
}

// InstallConsolidation registers the Cyclon overlay and the consolidation
// component on engine e, bound to b's cluster, using the given pre-trained
// Q store for every node. cfg only contributes runtime switches (currently
// CurrentDemandOnly); learning parameters have already been baked into the
// tables. It returns the consolidation protocol.
func InstallConsolidation(e *sim.Engine, b *policy.Binding, tables *NodeTables, cfg Config, opts PretrainOptions) *ConsolidateProtocol {
	e.Register(cyclon.New(opts.CyclonViewSize, opts.CyclonShuffleLen))
	cons := &ConsolidateProtocol{
		B:                 b,
		Tables:            func(e *sim.Engine, n *sim.Node) *NodeTables { return tables },
		CurrentDemandOnly: cfg.CurrentDemandOnly,
	}
	e.Register(cons)
	return cons
}

// InstallOnline registers the full GLAP stack on a single engine: Cyclon
// always on, the learning phase for cfg.LearnRounds rounds, the aggregation
// phase for cfg.AggRounds rounds, and the consolidation component from the
// end of pre-training onward — the paper's continuous deployment where the
// learning component periodically feeds the consolidation component.
// Consolidation rounds therefore begin at round cfg.LearnRounds+cfg.AggRounds.
func InstallOnline(e *sim.Engine, b *policy.Binding, cfg Config, opts PretrainOptions) (*ConsolidateProtocol, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e.Register(cyclon.New(opts.CyclonViewSize, opts.CyclonShuffleLen))
	learn := &LearnProtocol{Cfg: cfg, B: b}
	e.RegisterWindow(learn, 1, 0, cfg.LearnRounds-1)
	e.RegisterWindow(&AggProtocol{}, 1, cfg.LearnRounds, cfg.LearnRounds+cfg.AggRounds-1)
	cons := &ConsolidateProtocol{B: b, CurrentDemandOnly: cfg.CurrentDemandOnly}
	e.RegisterWindow(cons, 1, cfg.LearnRounds+cfg.AggRounds, -1)
	return cons, nil
}
