package glap

import (
	"testing"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/qlearn"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/trace"
)

func newBenchCyclon() *cyclon.Protocol { return cyclon.New(20, 8) }

func benchTrace(vms int) (*trace.Set, error) {
	return trace.Generate(trace.DefaultGenConfig(vms, 200, 5))
}

// BenchmarkLearningRound measures one Algorithm 1 round over a 100-PM
// cluster — the dominant cost of GLAP pre-training.
func BenchmarkLearningRound(b *testing.B) {
	cl := benchGenCluster(b, 100, 300)
	e := sim.NewEngine(100, 1)
	bd, err := policy.Bind(e, cl)
	if err != nil {
		b.Fatal(err)
	}
	learn := &LearnProtocol{Cfg: DefaultConfig(), B: bd}
	e.Register(newBenchCyclon())
	e.Register(learn)
	e.RunRounds(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRounds(1)
	}
}

// BenchmarkAggRound measures one Algorithm 2 round (pairwise table
// unification across the cluster) — the aggregation-phase hot path the
// dense Q-table backing exists for.
func BenchmarkAggRound(b *testing.B) {
	cl := benchGenCluster(b, 100, 300)
	e := sim.NewEngine(100, 1)
	bd, err := policy.Bind(e, cl)
	if err != nil {
		b.Fatal(err)
	}
	e.Register(newBenchCyclon())
	learn := &LearnProtocol{Cfg: DefaultConfig(), B: bd}
	e.RegisterWindow(learn, 1, 0, 19) // populate tables first
	e.Register(&AggProtocol{})
	e.RunRounds(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRounds(1)
	}
}

// BenchmarkConsolidationRound measures one Algorithm 3 round with converged
// tables over a 200-PM cluster.
func BenchmarkConsolidationRound(b *testing.B) {
	pre := benchGenCluster(b, 50, 150)
	res, err := Pretrain(Config{LearnRounds: 20, AggRounds: 10}, pre, 1, PretrainOptions{})
	if err != nil {
		b.Fatal(err)
	}
	shared, err := SharedTables(res)
	if err != nil {
		b.Fatal(err)
	}
	cl := benchGenCluster(b, 200, 600)
	e := sim.NewEngine(200, 2)
	bd, err := policy.Bind(e, cl)
	if err != nil {
		b.Fatal(err)
	}
	InstallConsolidation(e, bd, shared, Config{}, PretrainOptions{})
	e.RunRounds(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRounds(1)
	}
}

// BenchmarkIOVec measures the reusable dense φ^io fill that replaced the
// per-sample IOFlat map build in convergence measurement.
func BenchmarkIOVec(b *testing.B) {
	tb := &NodeTables{Out: qlearn.New(0.5, 0.8), In: qlearn.New(0.5, 0.8)}
	for s := 0; s < 81; s++ {
		for a := 0; a < 81; a++ {
			tb.Out.Set(qlearn.State(s), qlearn.Action(a), float64(s+a))
			tb.In.Set(qlearn.State(s), qlearn.Action(a), float64(s-a))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tb.IOVec()
	}
}

// BenchmarkIOFlat is the retired map-based baseline for BenchmarkIOVec.
func BenchmarkIOFlat(b *testing.B) {
	tb := &NodeTables{Out: qlearn.New(0.5, 0.8), In: qlearn.New(0.5, 0.8)}
	for s := 0; s < 81; s++ {
		for a := 0; a < 81; a++ {
			tb.Out.Set(qlearn.State(s), qlearn.Action(a), float64(s+a))
			tb.In.Set(qlearn.State(s), qlearn.Action(a), float64(s-a))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tb.IOFlat()
	}
}

// BenchmarkTrainOnce measures one fused simulated-migration training
// iteration — Algorithm 1's inner loop — over a typical collected profile
// set. The fused kernel must run allocation-free in steady state; CI runs
// this bench with -benchmem and TestTrainOnceZeroAllocs pins the invariant.
func BenchmarkTrainOnce(b *testing.B) {
	cfg := DefaultConfig()
	l := &LearnProtocol{Cfg: cfg}
	st := &NodeTables{Out: qlearn.New(cfg.Alpha, cfg.Gamma), In: qlearn.New(cfg.Alpha, cfg.Gamma)}
	sc := &st.scratch
	for _, p := range benchProfiles(6, 11) {
		sc.base = append(sc.base, profileToKernel(p))
	}
	sc.total = coverCount(sc.base, benchCapacity[dc.CPU], cfg.DuplicationTargetUtil)
	rng := sim.NewRNG(3)
	for i := 0; i < 64; i++ {
		l.trainOnce(rng, st, sc, benchCapacity)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.trainOnce(rng, st, sc, benchCapacity)
	}
}

// BenchmarkTrainOnceReference is the retained pre-fusion baseline for
// BenchmarkTrainOnce: materialised multiset, partition into an allocated
// subset slice, four O(P) subset scans per iteration.
func BenchmarkTrainOnceReference(b *testing.B) {
	cfg := DefaultConfig()
	l := &LearnProtocol{Cfg: cfg}
	st := &NodeTables{Out: qlearn.New(cfg.Alpha, cfg.Gamma), In: qlearn.New(cfg.Alpha, cfg.Gamma)}
	dup := duplicateToCover(benchProfiles(6, 11), benchCapacity, cfg.DuplicationTargetUtil)
	rng := sim.NewRNG(3)
	for i := 0; i < 64; i++ {
		l.refTrainOnce(rng, st, dup, benchCapacity)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.refTrainOnce(rng, st, dup, benchCapacity)
	}
}

// TestTrainOnceZeroAllocs pins the fused kernel's steady-state allocation
// count at exactly zero — the regression guard behind BenchmarkTrainOnce.
func TestTrainOnceZeroAllocs(t *testing.T) {
	cfg := DefaultConfig()
	l := &LearnProtocol{Cfg: cfg}
	st := &NodeTables{Out: qlearn.New(cfg.Alpha, cfg.Gamma), In: qlearn.New(cfg.Alpha, cfg.Gamma)}
	// Pre-size the cell arrays: the compact backing grows amortised, and a
	// measured iteration that visits a brand-new cell at a capacity boundary
	// would otherwise count one legitimate growth allocation.
	st.Out.Reserve(qlearn.DenseSpan * qlearn.DenseSpan)
	st.In.Reserve(qlearn.DenseSpan * qlearn.DenseSpan)
	sc := &st.scratch
	for _, p := range benchProfiles(6, 11) {
		sc.base = append(sc.base, profileToKernel(p))
	}
	sc.total = coverCount(sc.base, benchCapacity[dc.CPU], cfg.DuplicationTargetUtil)
	rng := sim.NewRNG(3)
	for i := 0; i < 64; i++ {
		l.trainOnce(rng, st, sc, benchCapacity)
	}
	if n := testing.AllocsPerRun(200, func() {
		l.trainOnce(rng, st, sc, benchCapacity)
	}); n != 0 {
		t.Fatalf("fused trainOnce allocates %v times per iteration; want 0", n)
	}
}

func BenchmarkLevelOf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = LevelOf(float64(i%100) / 100)
	}
}

func BenchmarkStatePack(b *testing.B) {
	ls := Levels{X3High, Medium}
	for i := 0; i < b.N; i++ {
		_ = LevelsOfState(ls.State())
	}
}

// helpers shared by the benchmarks (the test helpers take *testing.T).

func benchGenCluster(b *testing.B, pms, vms int) *dc.Cluster {
	b.Helper()
	set, err := benchTrace(vms)
	if err != nil {
		b.Fatal(err)
	}
	c, err := dc.New(dc.Config{PMs: pms, Workload: set})
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(7)
	c.PlaceRandom(rng.Intn)
	return c
}
