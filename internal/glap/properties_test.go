package glap

// Property-style tests on invariants of the learned Q-values.

import (
	"testing"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
)

// trainedTables runs a learning-only stack and pools every node's tables.
func trainedTables(t *testing.T, seed uint64) []*NodeTables {
	t.Helper()
	cl := genCluster(t, 16, 48, 60, seed)
	e := sim.NewEngine(16, seed)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	e.Register(cyclon.New(8, 4))
	e.Register(&LearnProtocol{Cfg: DefaultConfig(), B: b})
	e.RunRounds(30)
	var out []*NodeTables
	for _, n := range e.Nodes() {
		out = append(out, TablesOf(e, n))
	}
	return out
}

func TestOutTableValuesNonNegativeAndBounded(t *testing.T) {
	// R_out is positive everywhere, Q starts at 0 and the update is a
	// convex combination with a positive target, so out-values must stay
	// in [0, Rmax/(1-γ)].
	cfg := DefaultConfig()
	rmax := 0.0
	for _, r := range cfg.RewardOut {
		if 2*r > rmax { // two resources aggregate
			rmax = 2 * r
		}
	}
	bound := rmax / (1 - cfg.Gamma)
	for _, tb := range trainedTables(t, 3) {
		for _, k := range tb.Out.Keys() {
			v := tb.Out.Get(k.S, k.A)
			if v < 0 {
				t.Fatalf("negative out-value %g at %v", v, k)
			}
			if v > bound+1e-9 {
				t.Fatalf("out-value %g exceeds Bellman bound %g", v, bound)
			}
		}
	}
}

func TestInTableValuesBoundedBelow(t *testing.T) {
	// The most negative reachable in-value is bounded by the Bellman
	// fixed point with the full overload penalty on both resources.
	cfg := DefaultConfig()
	worstReward := 2 * cfg.RewardIn[Overload] // both resources overloaded
	lower := worstReward / (1 - cfg.Gamma)
	for _, tb := range trainedTables(t, 5) {
		for _, k := range tb.In.Keys() {
			v := tb.In.Get(k.S, k.A)
			if v < lower-1e-9 {
				t.Fatalf("in-value %g below Bellman lower bound %g", v, lower)
			}
		}
	}
}

func TestStatesWithinCalibratedSpace(t *testing.T) {
	// Every learned cell's state and action must decode to valid level
	// pairs (membership in the 81-element calibrated space).
	for _, tb := range trainedTables(t, 7) {
		check := func(kS, kA uint32) {
			if kS >= 81 || kA >= 81 {
				t.Fatalf("cell (%d, %d) outside the 81x81 space", kS, kA)
			}
		}
		for _, k := range tb.Out.Keys() {
			check(uint32(k.S), uint32(k.A))
		}
		for _, k := range tb.In.Keys() {
			check(uint32(k.S), uint32(k.A))
		}
	}
}

func TestLearningIsDeterministic(t *testing.T) {
	a := trainedTables(t, 11)
	b := trainedTables(t, 11)
	for i := range a {
		if a[i].Out.Len() != b[i].Out.Len() || a[i].In.Len() != b[i].In.Len() {
			t.Fatalf("node %d tables differ across identical runs", i)
		}
		for _, k := range a[i].Out.Keys() {
			if a[i].Out.Get(k.S, k.A) != b[i].Out.Get(k.S, k.A) {
				t.Fatalf("node %d out cell %v differs", i, k)
			}
		}
	}
}
