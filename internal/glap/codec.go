package glap

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"github.com/glap-sim/glap/internal/qlearn"
)

// storeJSON is the serialised form of a NodeTables Q store: both tables
// embedded as their own JSON documents so the qlearn codec owns the cell
// format.
type storeJSON struct {
	Version int             `json:"version"`
	Trained bool            `json:"trained"`
	Out     json.RawMessage `json:"out"`
	In      json.RawMessage `json:"in"`
}

const storeVersion = 1

// SaveTables serialises a Q store. Pre-trained stores checkpointed this way
// can be re-deployed without re-running the 700-round learning phase.
func SaveTables(w io.Writer, t *NodeTables) error {
	encode := func(tbl *qlearn.Table) (json.RawMessage, error) {
		var buf bytes.Buffer
		if err := tbl.Encode(&buf); err != nil {
			return nil, err
		}
		return json.RawMessage(buf.Bytes()), nil
	}
	out, err := encode(t.Out)
	if err != nil {
		return err
	}
	in, err := encode(t.In)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(storeJSON{
		Version: storeVersion, Trained: t.Trained, Out: out, In: in,
	}); err != nil {
		return fmt.Errorf("glap: encoding Q store: %w", err)
	}
	return bw.Flush()
}

// CheckpointTables serialises a Q store to bytes — the in-memory form of
// SaveTables that the failure scenarios use to snapshot a PM's tables right
// before an injected crash, so a recovered machine can warm-restart instead
// of re-learning from scratch.
func CheckpointTables(t *NodeTables) ([]byte, error) {
	var buf bytes.Buffer
	if err := SaveTables(&buf, t); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RestoreTables rebuilds a Q store from a CheckpointTables snapshot. The
// restored store is byte-identical under re-checkpointing: the codec is the
// warm-restart contract, so a restore must lose nothing. The value-precision
// tier rides in the embedded qlearn envelopes (version 2 records "f32";
// version-1 documents restore as F64), so an F32 PM warm-restarts as F32.
func RestoreTables(b []byte) (*NodeTables, error) {
	return LoadTables(bytes.NewReader(b))
}

// LoadTables reads a Q store written by SaveTables.
func LoadTables(r io.Reader) (*NodeTables, error) {
	var in storeJSON
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&in); err != nil {
		return nil, fmt.Errorf("glap: decoding Q store: %w", err)
	}
	if in.Version != storeVersion {
		return nil, fmt.Errorf("glap: unsupported Q store version %d", in.Version)
	}
	out, err := qlearn.Decode(bytes.NewReader(in.Out))
	if err != nil {
		return nil, err
	}
	inTbl, err := qlearn.Decode(bytes.NewReader(in.In))
	if err != nil {
		return nil, err
	}
	return &NodeTables{Out: out, In: inTbl, Trained: in.Trained}, nil
}
