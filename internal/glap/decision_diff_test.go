package glap

import (
	"fmt"
	"testing"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/glap/decision"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/qlearn"
	"github.com/glap-sim/glap/internal/sim"
)

// This file is the differential property test of the decision/transport
// split: the pure decision core, the cycle-driven ConsolidateProtocol, and
// the message-passing AsyncConsolidateProtocol at zero loss and latency must
// produce identical offer/accept decisions. It extends the run-level
// equivalence pin of asyncconsolidate_test.go down to the function level:
// each core function is checked against an independently written oracle over
// randomized inputs, and each protocol's lowering of live cluster state into
// the core is checked against the other's.

// oracleDirection is Algorithm 3's direction rule transcribed directly from
// the paper's pseudocode, structured differently from decision.Direction on
// purpose.
func oracleDirection(self, peer decision.View) decision.Mode {
	switch {
	case self.Overloaded:
		return decision.ModeShed
	case peer.Overloaded:
		return decision.ModeNone
	case self.Util > peer.Util:
		return decision.ModeNone
	case self.Util == peer.Util && self.ID >= peer.ID:
		return decision.ModeNone
	default:
		return decision.ModeEmpty
	}
}

// TestDirectionMatchesOracle drives the shared direction rule against the
// independent transcription over randomized views, including forced
// equal-utilisation pairs so the ID tie-break is exercised.
func TestDirectionMatchesOracle(t *testing.T) {
	rng := sim.NewRNG(101)
	view := func(id int) decision.View {
		return decision.View{
			ID:         id,
			Overloaded: rng.Intn(4) == 0,
			Util:       float64(rng.Intn(8)) / 8, // coarse grid → frequent ties
		}
	}
	for i := 0; i < 2000; i++ {
		self, peer := view(rng.Intn(50)), view(rng.Intn(50))
		if i%5 == 0 {
			peer.Util = self.Util // force the tie-break path
		}
		want, got := oracleDirection(self, peer), decision.Direction(self, peer)
		if got != want {
			t.Fatalf("Direction(%+v, %+v) = %v, oracle says %v", self, peer, got, want)
		}
		// Exactly one endpoint of a non-overloaded pair may empty itself.
		if !self.Overloaded && !peer.Overloaded && self.ID != peer.ID {
			a := decision.Direction(self, peer)
			b := decision.Direction(peer, self)
			if a == decision.ModeEmpty && b == decision.ModeEmpty {
				t.Fatalf("both endpoints of (%+v, %+v) elected to empty", self, peer)
			}
		}
	}
}

// randomTable fills a fresh Q-table with random values over the calibrated
// state/action space, leaving a fraction of cells unwritten.
func randomTable(rng *sim.RNG, states, actions int, holeEvery int) *qlearn.Table {
	tbl := qlearn.New(0.5, 0.5)
	i := 0
	for s := 0; s < states; s++ {
		for a := 0; a < actions; a++ {
			i++
			if holeEvery > 0 && i%holeEvery == 0 {
				continue
			}
			tbl.Set(qlearn.State(s), qlearn.Action(a), rng.Float64()*2-1)
		}
	}
	return tbl
}

// TestSelectOfferMatchesBruteForce runs π_out over real clusters and random
// Q-tables and compares against a brute-force oracle that re-derives the
// argmax and tie-breaks from first principles: actions grouped in first-seen
// order, highest Q wins with first-listed action on ties, and the smallest
// current memory footprint wins within the chosen bucket (first-seen on
// ties).
func TestSelectOfferMatchesBruteForce(t *testing.T) {
	cl := genCluster(t, 12, 40, 30, 7)
	rng := sim.NewRNG(19)
	action := func(vm *dc.VM) qlearn.Action { return DecisionVMAction(vm, false) }
	for round := 0; round < 25; round++ {
		cl.AdvanceRound(round)
		out := randomTable(rng, 81, 81, 7)
		for _, pm := range cl.PMs {
			vms := vmsOn(cl, pm)
			sender := PMStateAvg(cl, pm)

			// Brute force: first-seen action order, strictly-greater argmax.
			var actions []qlearn.Action
			seen := map[qlearn.Action]bool{}
			for _, vm := range vms {
				if a := action(vm); !seen[a] {
					seen[a] = true
					actions = append(actions, a)
				}
			}
			var wantOff decision.Offer
			wantOK := len(actions) > 0
			if wantOK {
				best := actions[0]
				for _, a := range actions[1:] {
					if out.Get(sender, a) > out.Get(sender, best) {
						best = a
					}
				}
				for _, vm := range vms {
					if action(vm) != best {
						continue
					}
					if wantOff.VM == nil || vm.CurAbs()[dc.Mem] < wantOff.VM.CurAbs()[dc.Mem] {
						wantOff.VM = vm
					}
				}
				wantOff.Action = best
			}

			got, ok := decision.SelectOffer(out, sender, vms, action)
			if ok != wantOK {
				t.Fatalf("round %d pm %d: SelectOffer ok=%v, oracle ok=%v", round, pm.ID, ok, wantOK)
			}
			if ok && (got.VM != wantOff.VM || got.Action != wantOff.Action) {
				t.Fatalf("round %d pm %d: SelectOffer picked vm=%d action=%d, oracle vm=%d action=%d",
					round, pm.ID, got.VM.ID, got.Action, wantOff.VM.ID, wantOff.Action)
			}
		}
	}
}

// vmsOn collects pm's VMs in ascending ID order without going through
// policy.Binding, mirroring Binding.VMsOf's contract independently.
func vmsOn(c *dc.Cluster, pm *dc.PM) []*dc.VM {
	var vms []*dc.VM
	for _, vm := range c.VMs {
		if vm.Host() == pm.ID {
			vms = append(vms, vm)
		}
	}
	return vms
}

// TestVetOfferMatchesOracle pins π_in plus the capacity check against its
// two-clause definition over randomized tables, demands, and free vectors —
// including zero free capacity and sign-boundary Q-values.
func TestVetOfferMatchesOracle(t *testing.T) {
	rng := sim.NewRNG(23)
	in := randomTable(rng, 81, 81, 5)
	in.Set(3, 4, 0) // exact zero: π_in accepts (>= 0)
	for i := 0; i < 4000; i++ {
		s := qlearn.State(rng.Intn(90)) // occasionally out of table range
		a := qlearn.Action(rng.Intn(90))
		demand := dc.Vec{rng.Float64() * 1000, rng.Float64() * 1000}
		free := dc.Vec{rng.Float64() * 1000, rng.Float64() * 1000}
		if i%7 == 0 {
			free = dc.Vec{} // zero headroom
		}
		if i%11 == 0 {
			demand = free // exact fit boundary
		}
		want := in.Get(s, a) >= 0 && demand.FitsWithin(free)
		if got := decision.VetOffer(in, s, a, demand, free); got != want {
			t.Fatalf("VetOffer(s=%d a=%d demand=%v free=%v) = %v, oracle %v (q=%g)",
				s, a, demand, free, got, want, in.Get(s, a))
		}
	}
}

// TestAsyncSnapshotMatchesLiveDecisions is the zero-latency function-level
// pin: the async protocol decides from loadState snapshots that travelled
// over the wire, the sync protocol from the live cluster. With no latency
// the snapshot is exactly as fresh as the live view, so for every PM pair
// the direction, the decision states, and the sender-side offer vet must
// coincide between the two lowerings.
func TestAsyncSnapshotMatchesLiveDecisions(t *testing.T) {
	const pms, vms, wlRounds = 16, 48, 40
	shared := pretrainShared(t, pms, vms, wlRounds, 53)
	cl := genCluster(t, pms, vms, wlRounds, 53)
	e := sim.NewEngine(pms, 54)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	async := &AsyncConsolidateProtocol{B: b}
	for round := 0; round < wlRounds; round++ {
		cl.AdvanceRound(round)
		snaps := make([]loadState, pms)
		for i, pm := range cl.PMs {
			snaps[i] = async.snapshot(pm)
		}
		for _, pm := range cl.PMs {
			// The snapshot's decision state must equal the live lowering in
			// both demand modes.
			if got, want := snaps[pm.ID].state(false), PMStateAvg(cl, pm); got != want {
				t.Fatalf("round %d pm %d: snapshot avg state %v, live %v", round, pm.ID, got, want)
			}
			if got, want := snaps[pm.ID].state(true), PMStateCur(cl, pm); got != want {
				t.Fatalf("round %d pm %d: snapshot cur state %v, live %v", round, pm.ID, got, want)
			}
			for _, o := range cl.PMs {
				if o.ID == pm.ID {
					continue
				}
				// Direction from the remote snapshot ≡ direction from the
				// live peer view.
				snapMode := decision.Direction(pmView(cl, pm), snaps[o.ID].view(o.ID))
				liveMode := decision.Direction(pmView(cl, pm), pmView(cl, o))
				if snapMode != liveMode {
					t.Fatalf("round %d pair (%d,%d): snapshot direction %v, live %v",
						round, pm.ID, o.ID, snapMode, liveMode)
				}
				if snapMode == decision.ModeNone {
					continue
				}
				// Sender-side pre-vet against the snapshot ≡ the synchronous
				// vet against the live target.
				off, ok := decision.SelectOffer(shared.Out, PMStateAvg(cl, pm), vmsOn(cl, pm),
					func(vm *dc.VM) qlearn.Action { return VMAction(vm) })
				if !ok {
					continue
				}
				snapVet := decision.VetOffer(shared.In, snaps[o.ID].state(false), off.Action,
					off.VM.CurAbs(), snaps[o.ID].free())
				liveVet := decision.VetOffer(shared.In, PMStateAvg(cl, o), off.Action,
					off.VM.CurAbs(), cl.FreeCur(o))
				if snapVet != liveVet {
					t.Fatalf("round %d pair (%d,%d): snapshot vet %v, live vet %v for vm %d action %d",
						round, pm.ID, o.ID, snapVet, liveVet, off.VM.ID, off.Action)
				}
			}
		}
	}
}

// TestSyncProtocolMatchesCoreReplay runs ConsolidateProtocol.updateState on
// one cluster and an independent replay — written here directly against the
// decision core and cluster primitives — on an identically seeded twin, for
// a shared pseudo-random pair schedule. Identical final placements, power
// states and migration counts pin that the protocol adds nothing to the
// core's decisions beyond transporting them.
func TestSyncProtocolMatchesCoreReplay(t *testing.T) {
	const pms, vms, wlRounds = 16, 48, 40
	shared := pretrainShared(t, pms, vms, wlRounds, 53)
	build := func() (*dc.Cluster, *sim.Engine, *policy.Binding) {
		cl := genCluster(t, pms, vms, wlRounds, 53)
		e := sim.NewEngine(pms, 54)
		b, err := policy.Bind(e, cl)
		if err != nil {
			t.Fatal(err)
		}
		return cl, e, b
	}
	clA, eA, bA := build()
	clB, _, bB := build()
	proto := &ConsolidateProtocol{
		B:      bA,
		Tables: func(*sim.Engine, *sim.Node) *NodeTables { return shared },
	}

	// replay is Algorithm 3's UPDATESTATE written against the core only.
	replay := func(s, o *dc.PM) {
		if !s.On() || !o.On() {
			return
		}
		step := func() bool {
			off, ok := decision.SelectOffer(shared.Out, PMStateAvg(clB, s), bB.VMsOf(s),
				func(vm *dc.VM) qlearn.Action { return VMAction(vm) })
			if !ok {
				return false
			}
			if !decision.VetOffer(shared.In, PMStateAvg(clB, o), off.Action, off.VM.CurAbs(), clB.FreeCur(o)) {
				return false
			}
			return clB.Migrate(off.VM, o) == nil
		}
		switch decision.Direction(pmView(clB, s), pmView(clB, o)) {
		case decision.ModeShed:
			for clB.Overloaded(s) && step() {
			}
		case decision.ModeEmpty:
			for s.NumVMs() > 0 && step() {
			}
			_ = bB.TryPowerOffIfEmpty(s.ID)
		}
	}

	rng := sim.NewRNG(77)
	for round := 0; round < wlRounds; round++ {
		clA.AdvanceRound(round)
		clB.AdvanceRound(round)
		for i := 0; i < pms; i++ {
			s, o := rng.Intn(pms), rng.Intn(pms)
			if s == o {
				continue
			}
			proto.updateState(eA, eA.Node(s), clA.PMs[s], clA.PMs[o], nil)
			replay(clB.PMs[s], clB.PMs[o])
			if err := diffClusters(clA, clB); err != nil {
				t.Fatalf("round %d after pair (%d,%d): %v", round, s, o, err)
			}
		}
	}
	if clA.Migrations == 0 {
		t.Fatal("schedule produced no migrations; the equivalence was vacuous")
	}
}

// diffClusters reports the first placement or power divergence between two
// same-shaped clusters.
func diffClusters(a, b *dc.Cluster) error {
	for i := range a.VMs {
		if a.VMs[i].Host() != b.VMs[i].Host() {
			return fmt.Errorf("vm %d on pm %d vs %d", i, a.VMs[i].Host(), b.VMs[i].Host())
		}
	}
	for i := range a.PMs {
		if a.PMs[i].On() != b.PMs[i].On() {
			return fmt.Errorf("pm %d power %v vs %v", i, a.PMs[i].On(), b.PMs[i].On())
		}
	}
	if a.Migrations != b.Migrations {
		return fmt.Errorf("migrations %d vs %d", a.Migrations, b.Migrations)
	}
	return nil
}
