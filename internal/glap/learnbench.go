package glap

import (
	"runtime"
	"time"

	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/qlearn"
	"github.com/glap-sim/glap/internal/sim"
)

// LearnKernelStats reports the measured cost of one simulated-migration
// training iteration (Algorithm 1's inner loop) for one kernel.
type LearnKernelStats struct {
	// Kernel is "reference" (pre-fusion multiset materialisation + four
	// subset scans) or "fused" (single-pass zero-alloc kernel).
	Kernel string `json:"kernel"`
	// BaseVMs is the collected base profile count before duplication.
	BaseVMs int `json:"base_vms"`
	// MultisetLen is the duplicated multiset size the iteration sweeps.
	MultisetLen int `json:"multiset_len"`
	// Iters is the number of measured training iterations.
	Iters int `json:"iters"`

	NsPerIter     float64 `json:"ns_per_iter"`
	AllocsPerIter float64 `json:"allocs_per_iter"`
	BytesPerIter  float64 `json:"bytes_per_iter"`
}

// benchProfiles synthesises a deterministic base profile set whose demands
// span the calibrated level range, against the given PM capacity.
func benchProfiles(baseVMs int, seed uint64) []profile {
	rng := sim.NewRNG(seed)
	ps := make([]profile, baseVMs)
	for i := range ps {
		var cur, avg dc.Vec
		for r := 0; r < dc.NumResources; r++ {
			avg[r] = 0.05 + 0.6*rng.Float64()
			cur[r] = 0.05 + 0.6*rng.Float64()
		}
		ps[i] = profile{cur: cur, avg: avg, cap: dc.Vec{500, 613}}
	}
	return ps
}

// benchCapacity is the PM capacity the synthetic kernel benchmark trains
// against (one PM hosting small-spec VMs, as in the evaluation clusters).
var benchCapacity = dc.Vec{2660, 4096}

// MeasureLearnKernel times iters training iterations of the chosen kernel
// (reference=true selects the retired pre-fusion implementation) over a
// synthetic base set of baseVMs profiles duplicated to the default coverage
// target, and reports ns, heap allocations and heap bytes per iteration.
// Both kernels are driven from identically seeded streams over identical
// profile sets, so the comparison isolates kernel cost.
func MeasureLearnKernel(reference bool, baseVMs, iters int, seed uint64) LearnKernelStats {
	cfg := DefaultConfig()
	l := &LearnProtocol{Cfg: cfg}
	st := &NodeTables{
		Out: qlearn.NewP(cfg.Alpha, cfg.Gamma, cfg.Precision),
		In:  qlearn.NewP(cfg.Alpha, cfg.Gamma, cfg.Precision),
	}
	ps := benchProfiles(baseVMs, seed)
	rng := sim.NewRNG(seed + 1)

	stats := LearnKernelStats{Kernel: "fused", BaseVMs: baseVMs, Iters: iters}
	var run func()
	if reference {
		stats.Kernel = "reference"
		dup := duplicateToCover(append([]profile(nil), ps...), benchCapacity, cfg.DuplicationTargetUtil)
		stats.MultisetLen = len(dup)
		run = func() { l.refTrainOnce(rng, st, dup, benchCapacity) }
	} else {
		sc := &st.scratch
		for i := range ps {
			sc.base = append(sc.base, profileToKernel(ps[i]))
		}
		sc.total = coverCount(sc.base, benchCapacity[dc.CPU], cfg.DuplicationTargetUtil)
		stats.MultisetLen = sc.total
		run = func() { l.trainOnce(rng, st, sc, benchCapacity) }
	}

	// Warm up: settle table backings and scratch capacities, then measure
	// wall time and heap traffic across the iteration loop.
	for i := 0; i < 64; i++ {
		run()
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		run()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	stats.NsPerIter = float64(elapsed.Nanoseconds()) / float64(iters)
	stats.AllocsPerIter = float64(after.Mallocs-before.Mallocs) / float64(iters)
	stats.BytesPerIter = float64(after.TotalAlloc-before.TotalAlloc) / float64(iters)
	return stats
}

// profileToKernel converts a reference profile into the fused kernel's
// precomputed form — the same precomputation appendKernelProfile applies
// when collecting live VMs.
func profileToKernel(p profile) kernelProfile {
	var k kernelProfile
	for r := 0; r < dc.NumResources; r++ {
		k.wAvg[r] = p.avg[r] * p.cap[r]
		k.wCur[r] = p.cur[r] * p.cap[r]
	}
	k.actAvg = LevelsOf(p.avg).Action()
	k.actCur = LevelsOf(p.cur).Action()
	return k
}
