package glap

// GLAP is written against a peer-sampling abstraction; these tests verify
// the consolidation outcome does not hinge on the specific overlay (Cyclon
// vs Newscast), supporting the paper's premise that any random peer
// sampling service suffices.

import (
	"testing"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/newscast"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
)

func TestConsolidationOverNewscast(t *testing.T) {
	pre := genCluster(t, 20, 40, 80, 53)
	res, err := Pretrain(Config{LearnRounds: 20, AggRounds: 15}, pre, 53, PretrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := SharedTables(res)
	if err != nil {
		t.Fatal(err)
	}

	runWith := func(useNewscast bool) int {
		cl := genCluster(t, 20, 40, 80, 53)
		e := sim.NewEngine(20, 99)
		b, err := policy.Bind(e, cl)
		if err != nil {
			t.Fatal(err)
		}
		cons := &ConsolidateProtocol{
			B:      b,
			Tables: func(e *sim.Engine, n *sim.Node) *NodeTables { return shared },
		}
		if useNewscast {
			e.Register(newscast.New(8))
			cons.Select = newscast.Selector
		} else {
			e.Register(cyclon.New(8, 4))
		}
		e.Register(cons)
		e.RunRounds(40)
		if err := cl.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return cl.ActivePMs()
	}

	cyclonActive := runWith(false)
	newscastActive := runWith(true)
	if cyclonActive >= 20 || newscastActive >= 20 {
		t.Fatalf("no consolidation: cyclon=%d newscast=%d", cyclonActive, newscastActive)
	}
	// The overlays should reach comparable packings (same tables, same
	// workload, random pairings differ).
	diff := cyclonActive - newscastActive
	if diff < 0 {
		diff = -diff
	}
	if diff > 5 {
		t.Fatalf("overlay choice changed the outcome materially: cyclon=%d newscast=%d",
			cyclonActive, newscastActive)
	}
}
