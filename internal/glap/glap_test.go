package glap

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/qlearn"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/trace"
)

// constCluster builds a cluster of pms machines whose VMs all demand the
// given constant fractions, placed deterministically.
func constCluster(t *testing.T, pms, vms int, cpu, mem float64) *dc.Cluster {
	t.Helper()
	var b bytes.Buffer
	b.WriteString("vm,round,cpu,mem\n")
	for vm := 0; vm < vms; vm++ {
		for r := 0; r < 20; r++ {
			fmt.Fprintf(&b, "%d,%d,%g,%g\n", vm, r, cpu, mem)
		}
	}
	set, err := trace.LoadCSV(&b)
	if err != nil {
		t.Fatal(err)
	}
	c, err := dc.New(dc.Config{PMs: pms, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(13)
	c.PlaceRandom(rng.Intn)
	return c
}

func genCluster(t *testing.T, pms, vms, rounds int, seed uint64) *dc.Cluster {
	t.Helper()
	set, err := trace.Generate(trace.DefaultGenConfig(vms, rounds, seed))
	if err != nil {
		t.Fatal(err)
	}
	c, err := dc.New(dc.Config{PMs: pms, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(seed)
	c.PlaceRandom(rng.Intn)
	return c
}

func TestDuplicateToCover(t *testing.T) {
	cap := dc.Vec{2660, 4096}
	ps := []profile{
		{avg: dc.Vec{0.5, 0.5}, cur: dc.Vec{0.5, 0.5}, cap: dc.Vec{500, 613}},
	}
	out := duplicateToCover(ps, cap, 1.5)
	var sum float64
	for _, p := range out {
		sum += p.avg[dc.CPU] * p.cap[dc.CPU]
	}
	if sum < 1.5*2660 {
		t.Fatalf("aggregate %g below target", sum)
	}
	// Zero-demand profiles do not loop forever.
	zero := []profile{{cap: dc.Vec{500, 613}}}
	if got := duplicateToCover(zero, cap, 1.5); len(got) != 1 {
		t.Fatalf("zero-demand duplication grew to %d", len(got))
	}
	// Bounded blowup.
	tiny := []profile{{avg: dc.Vec{0.0001, 0}, cur: dc.Vec{0.0001, 0}, cap: dc.Vec{500, 613}}}
	if got := duplicateToCover(tiny, cap, 5); len(got) > 64 {
		t.Fatalf("duplication unbounded: %d", len(got))
	}
}

func TestLearningBuildsTables(t *testing.T) {
	cl := genCluster(t, 20, 60, 50, 3)
	e := sim.NewEngine(20, 3)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	e.Register(cyclon.New(8, 4))
	cfg := DefaultConfig()
	learn := &LearnProtocol{Cfg: cfg, B: b}
	e.Register(learn)
	e.RunRounds(30)

	trained, cells := 0, 0
	for _, n := range e.Nodes() {
		st := TablesOf(e, n)
		if st.Trained {
			trained++
			cells += st.Out.Len() + st.In.Len()
		}
	}
	if trained == 0 {
		t.Fatal("no node trained")
	}
	if cells == 0 {
		t.Fatal("no Q-cells produced")
	}
}

func TestLearningRespectsThreshold(t *testing.T) {
	// Every PM is at ~94% CPU: above the 50% learning threshold, so no
	// node may train.
	cl := constCluster(t, 2, 10, 1.0, 0.2) // 5 VMs/PM at 100% = 2500/2660
	e := sim.NewEngine(2, 5)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	e.Register(cyclon.New(4, 2))
	learn := &LearnProtocol{Cfg: DefaultConfig(), B: b}
	e.Register(learn)
	e.RunRounds(5)
	for _, n := range e.Nodes() {
		if TablesOf(e, n).Trained {
			t.Fatal("overloaded PM must not run the learning phase")
		}
	}
}

func TestLearningInRewardsTeachRejection(t *testing.T) {
	// With every VM at a constant high demand, accepting a VM into an
	// almost-full virtual PM lands in Overload during training, so the
	// learned in-table must contain strongly negative cells.
	cl := constCluster(t, 4, 8, 0.9, 0.3)
	// 2 VMs/PM at 0.9 → avg util 0.338: below the learning threshold.
	e := sim.NewEngine(4, 7)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	e.Register(cyclon.New(4, 2))
	learn := &LearnProtocol{Cfg: DefaultConfig(), B: b}
	e.Register(learn)
	e.RunRounds(40)

	negative := 0
	for _, n := range e.Nodes() {
		st := TablesOf(e, n)
		for _, k := range st.In.Keys() {
			if st.In.Get(k.S, k.A) < 0 {
				negative++
			}
		}
	}
	if negative == 0 {
		t.Fatal("no negative in-cells learned despite guaranteed overloads")
	}
}

func TestPretrainConverges(t *testing.T) {
	cl := genCluster(t, 24, 72, 120, 11)
	cfg := Config{LearnRounds: 40, AggRounds: 40}
	res, err := Pretrain(cfg, cl, 11, PretrainOptions{MeasureEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FinalSimilarity(); got < 0.999 {
		t.Fatalf("final similarity %g, want ~1", got)
	}
	if len(res.Convergence) == 0 || len(res.Convergence) != len(res.ConvergenceRound) {
		t.Fatal("convergence series malformed")
	}
	// All nodes hold the same cells with near-identical values after
	// aggregation (push-pull averaging converges exponentially, so exact
	// float equality is not guaranteed).
	var ref *NodeTables
	for _, tb := range res.Tables {
		if ref == nil {
			ref = tb
			continue
		}
		if ref.Out.Len() != tb.Out.Len() || ref.In.Len() != tb.In.Len() {
			t.Fatal("key sets differ after aggregation phase")
		}
		for _, k := range ref.Out.Keys() {
			if !tb.Out.Has(k.S, k.A) {
				t.Fatal("out key missing on some node")
			}
		}
		for _, k := range ref.In.Keys() {
			if !tb.In.Has(k.S, k.A) {
				t.Fatal("in key missing on some node")
			}
		}
	}
	// Measurement rounds must be increasing.
	for i := 1; i < len(res.ConvergenceRound); i++ {
		if res.ConvergenceRound[i] <= res.ConvergenceRound[i-1] {
			t.Fatal("non-increasing measurement rounds")
		}
	}
}

func TestPretrainValidatesConfig(t *testing.T) {
	cl := genCluster(t, 4, 8, 10, 1)
	bad := Config{Alpha: 5}
	if _, err := Pretrain(bad, cl, 1, PretrainOptions{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestSharedTables(t *testing.T) {
	empty := &PretrainResult{Tables: []*NodeTables{
		{Out: qlearn.New(0.5, 0.8), In: qlearn.New(0.5, 0.8)},
	}}
	if _, err := SharedTables(empty); err == nil {
		t.Fatal("expected error for empty tables")
	}
	full := &NodeTables{Out: qlearn.New(0.5, 0.8), In: qlearn.New(0.5, 0.8)}
	full.Out.Set(1, 1, 5)
	res := &PretrainResult{Tables: []*NodeTables{empty.Tables[0], full, nil}}
	got, err := SharedTables(res)
	if err != nil {
		t.Fatal(err)
	}
	if got != full {
		t.Fatal("should pick the largest table")
	}
}

func TestIOFlatNamespaces(t *testing.T) {
	tb := &NodeTables{Out: qlearn.New(0.5, 0.8), In: qlearn.New(0.5, 0.8)}
	tb.Out.Set(1, 1, 5)
	tb.In.Set(1, 1, -3)
	flat := tb.IOFlat()
	if len(flat) != 2 {
		t.Fatalf("in/out cells collided: %v", flat)
	}
	if flat[IOKey{Key: qlearn.Key{S: 1, A: 1}}] != 5 ||
		flat[IOKey{Key: qlearn.Key{S: 1, A: 1}, In: true}] != -3 {
		t.Fatalf("flat values wrong: %v", flat)
	}
}

func TestNodeTablesClone(t *testing.T) {
	tb := &NodeTables{Out: qlearn.New(0.5, 0.8), In: qlearn.New(0.5, 0.8), Trained: true}
	tb.Out.Set(1, 1, 5)
	c := tb.Clone()
	c.Out.Set(1, 1, 99)
	if tb.Out.Get(1, 1) == 99 {
		t.Fatal("clone shares table storage")
	}
	if !c.Trained {
		t.Fatal("clone lost Trained flag")
	}
}

// fixedTables builds a shared Q store with hand-written values.
func fixedTables(outVals, inVals map[qlearn.Key]float64) *NodeTables {
	tb := &NodeTables{Out: qlearn.New(0.5, 0.8), In: qlearn.New(0.5, 0.8), Trained: true}
	for k, v := range outVals {
		tb.Out.Set(k.S, k.A, v)
	}
	for k, v := range inVals {
		tb.In.Set(k.S, k.A, v)
	}
	return tb
}

func installConsolidation(t *testing.T, cl *dc.Cluster, tables *NodeTables, seed uint64) (*sim.Engine, *policy.Binding) {
	t.Helper()
	e := sim.NewEngine(len(cl.PMs), seed)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	InstallConsolidation(e, b, tables, Config{}, PretrainOptions{CyclonViewSize: 6, CyclonShuffleLen: 3})
	return e, b
}

func TestConsolidationEmptiesAndSwitchesOff(t *testing.T) {
	// Plenty of headroom and a permissive in-table: the cluster must
	// consolidate and switch off PMs.
	cl := constCluster(t, 10, 10, 0.2, 0.2)
	tables := fixedTables(nil, nil) // all-zero: everything accepted
	tables.Out.Set(0, 0, 0)         // non-empty so SharedTables-style checks pass
	e, _ := installConsolidation(t, cl, tables, 21)
	e.RunRounds(30)
	if cl.ActivePMs() >= 10 {
		t.Fatalf("no consolidation happened: %d active", cl.ActivePMs())
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every VM still placed on a powered PM.
	for _, vm := range cl.VMs {
		if vm.Host() < 0 || !cl.PMs[vm.Host()].On() {
			t.Fatalf("VM %d lost its host", vm.ID)
		}
	}
}

func TestConsolidationRejectsOnNegativeQ(t *testing.T) {
	// An in-table that rejects everything must block all migrations.
	cl := constCluster(t, 6, 12, 0.3, 0.3)
	inVals := map[qlearn.Key]float64{}
	for s := 0; s < 81; s++ {
		for a := 0; a < 81; a++ {
			inVals[qlearn.Key{S: qlearn.State(s), A: qlearn.Action(a)}] = -1
		}
	}
	tables := fixedTables(nil, inVals)
	e, _ := installConsolidation(t, cl, tables, 23)
	e.RunRounds(10)
	if cl.Migrations != 0 {
		t.Fatalf("%d migrations despite universal rejection", cl.Migrations)
	}
	if cl.ActivePMs() != 6 {
		t.Fatal("PMs switched off without migrating")
	}
}

func TestConsolidationShedsOverload(t *testing.T) {
	// One PM is overloaded (6 VMs at 100% CPU = 3000 > 2660), the rest of
	// the cluster is empty. With permissive tables the overloaded PM must
	// shed VMs and exit the overloaded state.
	var b bytes.Buffer
	b.WriteString("vm,round,cpu,mem\n")
	for vm := 0; vm < 6; vm++ {
		for r := 0; r < 10; r++ {
			fmt.Fprintf(&b, "%d,%d,1.0,0.2\n", vm, r)
		}
	}
	set, err := trace.LoadCSV(&b)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := dc.New(dc.Config{PMs: 3, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	// Stuff all 6 VMs onto PM 0: place normally, then migrate them in
	// (migration is admission-free; admission is the protocol's job).
	rng := sim.NewRNG(1)
	cl.PlaceRandom(rng.Intn)
	for _, vm := range cl.VMs {
		if vm.Host() != 0 {
			if err := cl.Migrate(vm, cl.PMs[0]); err != nil {
				t.Fatal(err)
			}
		}
	}
	cl.Migrations = 0 // reset setup migrations
	if !cl.Overloaded(cl.PMs[0]) {
		t.Fatal("setup: PM 0 should be overloaded")
	}
	tables := fixedTables(nil, nil)
	e, _ := installConsolidation(t, cl, tables, 29)
	e.RunRounds(10)
	if cl.Overloaded(cl.PMs[0]) {
		t.Fatalf("PM 0 still overloaded after 10 rounds (util %v)", cl.CurUtil(cl.PMs[0]))
	}
	if cl.Migrations == 0 {
		t.Fatal("no migrations recorded")
	}
}

func TestConsolidationCapacityGuard(t *testing.T) {
	// Destination lacks capacity: migration must not happen even with
	// permissive tables. Two PMs, each packed to 94% CPU.
	cl := constCluster(t, 2, 10, 1.0, 0.2) // 5 VMs x 500 = 2500/2660 each
	tables := fixedTables(nil, nil)
	e, _ := installConsolidation(t, cl, tables, 31)
	e.RunRounds(5)
	if cl.Migrations != 0 {
		t.Fatalf("%d migrations into full PMs", cl.Migrations)
	}
}

func TestInstallOnlineEndToEnd(t *testing.T) {
	cl := genCluster(t, 16, 32, 100, 17)
	e := sim.NewEngine(16, 17)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{LearnRounds: 20, AggRounds: 20}
	if _, err := InstallOnline(e, b, cfg, PretrainOptions{}); err != nil {
		t.Fatal(err)
	}
	e.RunRounds(80) // 40 pre-training + 40 consolidation
	if cl.ActivePMs() >= 16 {
		t.Fatalf("online stack did not consolidate: %d active", cl.ActivePMs())
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInstallOnlineValidates(t *testing.T) {
	cl := genCluster(t, 4, 8, 10, 1)
	e := sim.NewEngine(4, 1)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InstallOnline(e, b, Config{Gamma: 2}, PretrainOptions{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestPMStateHelpers(t *testing.T) {
	cl := constCluster(t, 1, 4, 0.5, 0.25)
	pm := cl.PMs[0]
	// 4 VMs * 0.5 * 500 / 2660 = 0.376 CPU (Medium), 4*0.25*613/4096 =
	// 0.1496 Mem (Low).
	wantCPU := LevelOf(4 * 0.5 * 500 / 2660)
	wantMem := LevelOf(4 * 0.25 * 613 / 4096)
	got := LevelsOfState(PMStateCur(cl, pm))
	if got[dc.CPU] != wantCPU || got[dc.Mem] != wantMem {
		t.Fatalf("cur state %s", got)
	}
	if PMStateAvg(cl, pm) != PMStateCur(cl, pm) {
		t.Fatal("avg and cur states should match for constant demand")
	}
	vm := cl.VMs[0]
	if a := LevelsOfAction(VMAction(vm)); a[dc.CPU] != High || a[dc.Mem] != Medium {
		t.Fatalf("VM action %s", a)
	}
	_ = math.Pi // keep math import for future numeric checks
}
