package glap

// Empirical validation of Theorem 1: the gossip aggregation process
// repeatedly averages Q-values drawn from random nodes, and the resulting
// per-node value X = x0/2^n + x1/2^n + x2/2^(n-1) + ... + xn/2 converges in
// distribution to a normal as the number of rounds grows, by the
// Lindeberg/Lyapunov CLT. We reproduce the theorem's setting directly — a
// population of i.i.d. NON-normal initial values repeatedly pair-averaged by
// push-pull gossip — and check normality of the resulting cross-node value
// distribution with the Jarque-Bera statistic.

import (
	"testing"

	"github.com/glap-sim/glap/internal/gossip"
	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/stats"
)

// theorem1Values runs a scalar push-pull averaging epidemic over n nodes
// whose initial values are drawn from a highly skewed (exponential-like)
// distribution, stops after `rounds` rounds — mid-convergence, where the
// theorem's distributional claim applies — and returns the node values
// re-centred and re-scaled.
func theorem1Values(t *testing.T, n, rounds int, seed uint64) []float64 {
	t.Helper()
	e := sim.NewEngine(n, seed)
	rng := sim.NewRNG(seed).Derive(42)
	avg := gossip.NewAverage("t1", func(e *sim.Engine, node *sim.Node) float64 {
		// Squared-uniform initial values: strongly right-skewed, far from
		// normal (JB rejects decisively for n = 1000).
		u := rng.Float64()
		return u * u * 100
	}, gossip.UniformSelector)
	e.Register(avg)
	e.RunRounds(rounds)
	out := make([]float64, n)
	for i, node := range e.Nodes() {
		out[i] = gossip.StateOf[*gossip.Scalar](e, "t1", node).V
	}
	return out
}

func TestTheorem1InitialDistributionNotNormal(t *testing.T) {
	xs := theorem1Values(t, 1000, 0, 7)
	if jb := stats.JarqueBera(xs); jb < 50 {
		t.Fatalf("initial skewed distribution unexpectedly normal: JB=%g", jb)
	}
}

func TestTheorem1AggregationNormalizes(t *testing.T) {
	// After a few gossip rounds each node's value is a weighted sum of
	// several independent initial values; the JB statistic must collapse
	// by orders of magnitude relative to round 0.
	before := stats.JarqueBera(theorem1Values(t, 1000, 0, 7))
	after := stats.JarqueBera(theorem1Values(t, 1000, 6, 7))
	if after > before/2 {
		t.Fatalf("JB did not collapse: before=%g after=%g", before, after)
	}
	// Skewness must also shrink toward 0.
	skewBefore := stats.Skewness(theorem1Values(t, 1000, 0, 7))
	skewAfter := stats.Skewness(theorem1Values(t, 1000, 6, 7))
	if abs64(skewAfter) > abs64(skewBefore)/2 {
		t.Fatalf("skewness did not shrink: %g -> %g", skewBefore, skewAfter)
	}
}

func TestTheorem1MeanPreserved(t *testing.T) {
	// The aggregation must preserve the expectation u_x (mass
	// conservation of push-pull averaging).
	before := theorem1Values(t, 500, 0, 9)
	after := theorem1Values(t, 500, 8, 9)
	mb, ma := stats.Mean(before), stats.Mean(after)
	if abs64(mb-ma) > 1e-6 {
		t.Fatalf("mean not preserved: %g -> %g", mb, ma)
	}
	// And the variance must shrink monotonically toward 0 (consensus).
	if stats.Variance(after) >= stats.Variance(before) {
		t.Fatal("variance did not shrink under aggregation")
	}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
