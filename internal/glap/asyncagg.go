package glap

import (
	"github.com/glap-sim/glap/internal/gossip"
	"github.com/glap-sim/glap/internal/sim"
)

// AsyncAggProtocolName registers the event-driven aggregation variant.
const AsyncAggProtocolName = "glap-aggregate-async"

// AsyncAggProtocol is the message-passing realisation of Algorithm 2: where
// AggProtocol uses the simulator shortcut of merging both endpoint tables in
// place, this variant exchanges real messages through a sim.Transport with
// latency and possible loss — each endpoint sends a snapshot of its φ^io and
// merges the snapshot it receives. Under loss an exchange may complete
// one-sided; averaging remains a contraction, so the population still
// converges to identical tables, just more slowly. The equivalence tests
// pin exactly that behaviour.
//
// It operates on the Q store owned by LearnProtocol (same engine), like the
// cycle-driven variant.
type AsyncAggProtocol struct {
	// Tr carries the snapshots.
	Tr *sim.Transport
	// Select picks the partner; nil defaults to Cyclon sampling.
	Select gossip.PeerSelector

	rng sim.BoundRNG
}

// tableSnapshot is the wire message: the shared snapshot form of the merge
// plus a Reply flag distinguishing the passive endpoint's response (which
// must not trigger a further reply).
type tableSnapshot struct {
	TableSnapshot
	Reply bool
}

func snapshotOf(t *NodeTables, reply bool) tableSnapshot {
	return tableSnapshot{TableSnapshot: SnapshotTables(t), Reply: reply}
}

// Name implements sim.Protocol and sim.Handler.
func (a *AsyncAggProtocol) Name() string { return AsyncAggProtocolName }

// Setup implements sim.Protocol; the Q store lives with the learning
// component.
func (a *AsyncAggProtocol) Setup(e *sim.Engine, n *sim.Node) any {
	return struct{}{}
}

// Round implements the active thread: push a snapshot to one partner.
func (a *AsyncAggProtocol) Round(e *sim.Engine, n *sim.Node, round int) {
	sel := a.Select
	if sel == nil {
		sel = gossip.CyclonSelector
	}
	peer := sel(e, n, a.rng.For(e, 0xa57a66))
	if peer < 0 {
		return
	}
	a.Tr.Send(n.ID, peer, AsyncAggProtocolName, snapshotOf(TablesOf(e, n), false))
}

// Deliver implements sim.Handler: merge the received snapshot; if it was a
// push, answer with our pre-merge state so the initiator converges too.
func (a *AsyncAggProtocol) Deliver(e *sim.Engine, n *sim.Node, m sim.Message) {
	snap, ok := m.Payload.(tableSnapshot)
	if !ok {
		return
	}
	mine := TablesOf(e, n)
	if !snap.Reply {
		// Respond with the state *before* merging, mirroring the
		// synchronous exchange where both sides average the same pair.
		a.Tr.Send(n.ID, m.From, AsyncAggProtocolName, snapshotOf(mine, true))
	}
	MergeSnapshot(mine, snap.TableSnapshot)
}
