package glap

import (
	"testing"

	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
)

func TestInstallContinuousValidation(t *testing.T) {
	cl := genCluster(t, 4, 8, 10, 1)
	e := sim.NewEngine(4, 1)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{LearnRounds: 10, AggRounds: 5}
	if _, err := InstallContinuous(e, b, cfg, 10, PretrainOptions{}); err == nil {
		t.Fatal("cycle shorter than learning phase should fail")
	}
	if _, err := InstallContinuous(e, b, Config{Alpha: 9}, 1000, PretrainOptions{}); err == nil {
		t.Fatal("invalid config should fail")
	}
}

func TestInstallContinuousRelearns(t *testing.T) {
	cl := genCluster(t, 16, 32, 200, 23)
	e := sim.NewEngine(16, 23)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{LearnRounds: 15, AggRounds: 10}
	if _, err := InstallContinuous(e, b, cfg, 60, PretrainOptions{}); err != nil {
		t.Fatal(err)
	}

	// Track Q-cell growth over time: after the first cycle the tables are
	// populated; a later re-learning cycle must keep them fresh (cell count
	// never resets, values keep being updated).
	sizeAt := map[int]int{}
	e.Observe(func(e *sim.Engine, round int) {
		if round == 30 || round == 85 || round == 145 {
			total := 0
			for _, n := range e.Nodes() {
				tb := TablesOf(e, n)
				total += tb.Out.Len() + tb.In.Len()
			}
			sizeAt[round] = total
		}
	})
	e.RunRounds(150)

	if sizeAt[30] == 0 {
		t.Fatal("no Q-cells after first learning cycle")
	}
	if sizeAt[85] < sizeAt[30] || sizeAt[145] < sizeAt[85] {
		t.Fatalf("Q coverage shrank across re-learning cycles: %v", sizeAt)
	}
	// Consolidation ran alongside: PMs were switched off.
	if cl.ActivePMs() >= 16 {
		t.Fatal("continuous stack did not consolidate")
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if cl.Migrations == 0 {
		t.Fatal("no migrations under continuous deployment")
	}
}

func TestInstallContinuousConsolidationWaitsForTables(t *testing.T) {
	// Consolidation must not act before the first learning cycle ends.
	cl := genCluster(t, 8, 16, 100, 29)
	e := sim.NewEngine(8, 29)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{LearnRounds: 20, AggRounds: 10}
	if _, err := InstallContinuous(e, b, cfg, 100, PretrainOptions{}); err != nil {
		t.Fatal(err)
	}
	e.RunRounds(29) // one round short of the consolidation start
	if cl.Migrations != 0 {
		t.Fatalf("%d migrations before pre-training completed", cl.Migrations)
	}
}
