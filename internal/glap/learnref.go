package glap

import (
	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/qlearn"
	"github.com/glap-sim/glap/internal/sim"
)

// This file preserves the pre-fusion Algorithm-1 training kernel as a
// reference implementation (the qlearn.Sparse pattern): the profile
// multiset is materialised by slice duplication and every training
// iteration partitions it and runs four O(P) subset aggregation scans.
// It exists for the differential tests (TestLearnKernelDifferential pins
// the fused kernel against it draw-for-draw) and for the before/after
// measurement of `glapbench -exp learn`. Both kernels consume the node
// stream identically: one Bernoulli coin per multiset element per attempt,
// then one Intn for the eviction pick.
//
// The only arithmetic difference is the FP evaluation order of the
// sender's post-action state: the reference scans the sender subset
// skipping the evicted VM, the fused kernel subtracts the evicted VM from
// the full sender sum. The two orderings agree to an ulp, and the
// calibrated level state they feed quantises far more coarsely than that
// (boundaries at 0.1-wide utilisation steps), so the resulting Q-tables
// coincide exactly on every corpus the differential test replays — see
// DESIGN.md §7.

// roundReference is the body of the pre-fusion learning round: collect,
// materialise the duplicated multiset, train. The caller has already
// applied the utilisation gate and derived rng.
func (l *LearnProtocol) roundReference(e *sim.Engine, n *sim.Node, rng *sim.RNG, pm *dc.PM) {
	// Collect profiles: local VMs plus the VMs of one random neighbour.
	var profiles []profile
	for _, vm := range l.B.VMsOf(pm) {
		profiles = append(profiles, profileOf(vm))
	}
	if peer := cyclon.SelectPeer(e, n, rng); peer >= 0 {
		for _, vm := range l.B.VMsOf(l.B.C.PMs[peer]) {
			profiles = append(profiles, profileOf(vm))
		}
	}
	if len(profiles) == 0 {
		return
	}

	// Duplicate profiles until the aggregate average CPU demand reaches
	// DuplicationTargetUtil of PM capacity so that high and overloaded
	// states are visited during training.
	profiles = duplicateToCover(profiles, pm.Spec.Capacity, l.Cfg.DuplicationTargetUtil)

	st := TablesOf(e, n)
	for it := 0; it < l.Cfg.LearnIterations; it++ {
		l.refTrainOnce(rng, st, profiles, pm.Spec.Capacity)
	}
	st.Trained = true
}

// duplicateToCover replicates the profile set until its aggregate average
// CPU demand reaches target × capacity, appending the base profiles
// cyclically and capping the blowup at 64× the base size. coverCount
// computes the length of this multiset without materialising it.
func duplicateToCover(ps []profile, cap dc.Vec, target float64) []profile {
	sumCPU := 0.0
	for _, p := range ps {
		sumCPU += p.avg[dc.CPU] * p.cap[dc.CPU]
	}
	if sumCPU <= 0 {
		return ps
	}
	base := len(ps)
	for sumCPU < target*cap[dc.CPU] && len(ps) < 64*base {
		for i := 0; i < base && sumCPU < target*cap[dc.CPU]; i++ {
			ps = append(ps, ps[i])
			sumCPU += ps[i].avg[dc.CPU] * ps[i].cap[dc.CPU]
		}
	}
	return ps
}

// refTrainOnce is the pre-fusion training iteration: partition the
// materialised profiles into a virtual sender and a virtual recipient, move
// one random sender VM, and apply updateOUT / updateIN per Equation 1.
// Pre-action states use average demand; post-action states use current
// demand (Figure 3).
func (l *LearnProtocol) refTrainOnce(rng *sim.RNG, st *NodeTables, profiles []profile, cap dc.Vec) {
	// Random partition with a freshly drawn split bias per iteration (see
	// trainOnce for the rationale).
	var sender, target []int
	pSender := 0.15 + 0.7*rng.Float64()
	for attempt := 0; attempt < 8; attempt++ {
		sender, target = sender[:0], target[:0]
		for i := range profiles {
			if rng.Bernoulli(pSender) {
				sender = append(sender, i)
			} else {
				target = append(target, i)
			}
		}
		if len(sender) > 0 {
			break
		}
	}
	if len(sender) == 0 {
		return
	}
	pick := sender[rng.Intn(len(sender))]
	vm := profiles[pick]
	useAvg := !l.Cfg.CurrentDemandOnly
	actionDemand := vm.avg
	if !useAvg {
		actionDemand = vm.cur
	}
	action := LevelsOf(actionDemand).Action()

	// updateOUT: the sender's transition after evicting vm.
	sBefore := aggStateIdx(profiles, sender, -1, nil, cap, useAvg)
	sAfter := aggStateIdx(profiles, sender, pick, nil, cap, false)
	l.updateOut(st.Out, sBefore, action, sAfter)

	// updateIN: the recipient's transition after accepting vm.
	tBefore := aggStateIdx(profiles, target, -1, nil, cap, useAvg)
	tAfter := aggStateIdx(profiles, target, -1, &vm, cap, false)
	l.updateIn(st.In, tBefore, action, tAfter)
}

// aggStateIdx aggregates profiles[idx] for idx in subset (skipping skip),
// plus extra, into a calibrated state.
func aggStateIdx(profiles []profile, subset []int, skip int, extra *profile, cap dc.Vec, useAvg bool) qlearn.State {
	var sum dc.Vec
	for _, i := range subset {
		if i == skip {
			continue
		}
		d := profiles[i].cur
		if useAvg {
			d = profiles[i].avg
		}
		for r := 0; r < dc.NumResources; r++ {
			sum[r] += d[r] * profiles[i].cap[r]
		}
	}
	if extra != nil {
		d := extra.cur
		if useAvg {
			d = extra.avg
		}
		for r := 0; r < dc.NumResources; r++ {
			sum[r] += d[r] * extra.cap[r]
		}
	}
	return LevelsOf(sum.Div(cap)).State()
}
