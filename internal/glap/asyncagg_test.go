package glap

import (
	"testing"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/gossip"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
)

// runAsyncAgg builds a learning + async-aggregation stack and returns the
// engine after running learnRounds of training followed by aggRounds of
// message-passing aggregation with the given latency and loss.
func runAsyncAgg(t *testing.T, nodes, learnRounds, aggRounds int, latency sim.LatencyFunc, drop float64, seed uint64) *sim.Engine {
	t.Helper()
	cl := genCluster(t, nodes, 3*nodes, 100, seed)
	e := sim.NewEngine(nodes, seed)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	e.Register(cyclon.New(8, 4))
	learn := &LearnProtocol{Cfg: DefaultConfig(), B: b}
	e.RegisterWindow(learn, 1, 0, learnRounds-1)

	tr := sim.NewTransport(e, latency)
	tr.DropProb = drop
	agg := &AsyncAggProtocol{Tr: tr}
	tr.Handle(agg)
	e.RegisterWindow(agg, 1, learnRounds, learnRounds+aggRounds-1)

	e.RunRounds(learnRounds + aggRounds)
	e.RunEvents(-1)
	return e
}

func TestAsyncAggConverges(t *testing.T) {
	e := runAsyncAgg(t, 20, 20, 40, sim.ConstantLatency(10), 0, 41)
	sim1 := gossip.AllPairsCosine(e, IOVector)
	if sim1 < 0.999 {
		t.Fatalf("async aggregation similarity %g, want ~1", sim1)
	}
	// Key-set agreement: every node must hold the union.
	var ref *NodeTables
	for _, n := range e.Nodes() {
		tb := TablesOf(e, n)
		if ref == nil {
			ref = tb
			continue
		}
		if tb.Out.Len() != ref.Out.Len() || tb.In.Len() != ref.In.Len() {
			t.Fatalf("key sets differ: %d/%d vs %d/%d",
				tb.Out.Len(), tb.In.Len(), ref.Out.Len(), ref.In.Len())
		}
	}
}

func TestAsyncAggConvergesUnderLoss(t *testing.T) {
	// 10% message loss: convergence slows but must still reach high
	// similarity — averaging is a contraction even one-sided.
	e := runAsyncAgg(t, 20, 20, 80, sim.ConstantLatency(5), 0.10, 43)
	sim1 := gossip.AllPairsCosine(e, IOVector)
	if sim1 < 0.99 {
		t.Fatalf("lossy async aggregation similarity %g, want > 0.99", sim1)
	}
}

func TestAsyncAggMatchesSyncDirection(t *testing.T) {
	// Async and sync aggregation must agree on the qualitative outcome:
	// starting from the same learned tables, both drive similarity from
	// well below 1 to ~1.
	eAsync := runAsyncAgg(t, 16, 15, 0, sim.ConstantLatency(3), 0, 47)
	before := gossip.AllPairsCosine(eAsync, IOVector)
	if before > 0.95 {
		t.Skipf("learning phase already converged (%g); nothing to compare", before)
	}
	eAsync2 := runAsyncAgg(t, 16, 15, 40, sim.ConstantLatency(3), 0, 47)
	after := gossip.AllPairsCosine(eAsync2, IOVector)
	if after <= before {
		t.Fatalf("async aggregation did not improve similarity: %g -> %g", before, after)
	}
	if after < 0.999 {
		t.Fatalf("async aggregation stalled at %g", after)
	}
}
