// Package decision is the transport-agnostic core of GLAP's Algorithm 3:
// the direction rule that picks which endpoint of a push-pull exchange acts
// as sender, the π_out = argmax Q_out VM selection, and the π_in accept
// test. The functions are pure — they consume plain endpoint views and
// Q-tables and touch neither the simulation engine nor any transport — so
// the cycle-driven protocol (glap.ConsolidateProtocol), the message-passing
// protocol (glap.AsyncConsolidateProtocol), and any future transport drive
// bit-identical decisions from one implementation. The differential tests
// in internal/glap pin exactly that.
//
// The split mirrors how distributed-RL systems are usually factored:
// gossip-TD methods are defined as "local update rule + gossip
// communication", with the decision/aggregation operator swappable
// independently of the transport that carries it.
package decision

import (
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/qlearn"
)

// Mode is the sender role Algorithm 3's direction rule assigns to an
// endpoint for one exchange.
type Mode int

const (
	// ModeNone: this endpoint does not send in the exchange.
	ModeNone Mode = iota
	// ModeShed: the endpoint is overloaded and sheds VMs until it is not
	// (Algorithm 3, lines 12-13).
	ModeShed
	// ModeEmpty: the endpoint has the lower utilisation and empties itself
	// toward power-off (lines 14-16).
	ModeEmpty
)

// String names the mode for diagnostics.
func (m Mode) String() string {
	switch m {
	case ModeShed:
		return "shed"
	case ModeEmpty:
		return "empty"
	default:
		return "none"
	}
}

// View is the decision-relevant summary of one endpoint of an exchange.
// The synchronous protocol builds it from the live cluster; the
// asynchronous protocol builds the remote side from the load snapshot that
// travelled over the wire — at zero latency and loss the two constructions
// coincide exactly.
type View struct {
	// ID is the PM/node identifier (the direction tie-breaker).
	ID int
	// Overloaded reports whether any resource is at or above capacity
	// under current demand.
	Overloaded bool
	// Util is the mean current utilisation across resources.
	Util float64
}

// Direction runs Algorithm 3's direction rule for endpoint self against
// peer: an overloaded endpoint sheds regardless of the peer's state;
// otherwise, unless the peer is overloaded, the endpoint with strictly
// lower mean current utilisation empties itself, with ties breaking toward
// the lower ID so exactly one side of any exchange acts.
func Direction(self, peer View) Mode {
	if self.Overloaded {
		return ModeShed
	}
	if peer.Overloaded {
		return ModeNone
	}
	if self.Util < peer.Util || (self.Util == peer.Util && self.ID < peer.ID) {
		return ModeEmpty
	}
	return ModeNone
}

// Offer is π_out's migration choice: the VM to move and its calibrated
// action.
type Offer struct {
	VM     *dc.VM
	Action qlearn.Action
}

// SelectOffer runs π_out (Algorithm 3, lines 18-21): it buckets the
// sender's available VMs by calibrated action, picks the action with the
// highest φ^out value in the sender's state, and within that bucket picks
// the cheapest VM to migrate (smallest current memory footprint). Buckets
// keep first-seen order, so with VMs in ascending-ID order the argmax
// tie-break is deterministic. ok is false when the sender holds no VMs or
// no candidate action has a known Q-value.
func SelectOffer(out *qlearn.Table, sender qlearn.State, vms []*dc.VM, action func(*dc.VM) qlearn.Action) (Offer, bool) {
	if len(vms) == 0 {
		return Offer{}, false
	}
	byAction := make(map[qlearn.Action][]*dc.VM)
	actions := make([]qlearn.Action, 0, 4)
	for _, vm := range vms {
		a := action(vm)
		if _, seen := byAction[a]; !seen {
			actions = append(actions, a)
		}
		byAction[a] = append(byAction[a], vm)
	}
	a, _, ok := out.Best(sender, actions)
	if !ok {
		return Offer{}, false
	}
	return Offer{VM: policy.CheapestToMigrate(byAction[a]), Action: a}, true
}

// VetOffer runs the π_in accept test plus the capacity check (Algorithm 3,
// lines 22-23): the offered action must have non-negative φ^in value in the
// target's state, and the offered demand must fit within the target's free
// capacity. The caller chooses which free vector to vet against — the live
// one (synchronous), a remote estimate (sender-side pre-vet), or capacity
// net of open reservations (target-side re-vet).
func VetOffer(in *qlearn.Table, target qlearn.State, a qlearn.Action, demand, free dc.Vec) bool {
	return in.Get(target, a) >= 0 && demand.FitsWithin(free)
}
