package glap

import (
	"fmt"

	"github.com/glap-sim/glap/internal/qlearn"
)

// Config parameterises the GLAP stack. Zero-valued fields take the defaults
// of DefaultConfig.
type Config struct {
	// Alpha is the Q-learning rate α ∈ (0, 1].
	Alpha float64
	// Gamma is the discount factor γ ∈ [0, 1); values near one make the
	// learner strive for long-term safety (reject VMs that overload a PM
	// "in the near future"), which is the heart of GLAP's threshold-free
	// admission control.
	Gamma float64

	// LearnUtilThreshold gates the local learning phase: only PMs whose
	// average CPU utilisation is at or below this value simulate
	// consolidation locally, to avoid disturbing collocated VMs. The
	// Figure 5 experiment uses 0.5 ("PMs with up to 50% free CPU").
	LearnUtilThreshold float64
	// LearnIterations is k, the number of simulated migrations per
	// learning round (Algorithm 1's inner loop).
	LearnIterations int
	// DuplicationTargetUtil controls profile duplication: collected VM
	// profiles are replicated until their aggregate average CPU demand
	// reaches this multiple of PM capacity, so that highly loaded (and
	// overloaded) states are visited during training.
	DuplicationTargetUtil float64

	// RewardOut and RewardIn are the two reward systems.
	RewardOut RewardTable
	RewardIn  RewardTable

	// LearnRounds and AggRounds split the pre-training phase: Algorithm 1
	// runs for LearnRounds rounds, then Algorithm 2 for AggRounds rounds.
	// The paper pre-trains for 700 rounds total.
	LearnRounds int
	AggRounds   int

	// Precision selects the Q-value storage tier for every table in the
	// stack (learning kernel, merges, snapshots, checkpoints, and the
	// dense φ^io convergence vectors). The zero value is qlearn.F64, the
	// bit-exact default; qlearn.F32 halves the value-memory floor at the
	// cost of one rounding step per stored update (see DESIGN.md §7).
	Precision qlearn.Precision

	// CurrentDemandOnly is an ablation switch: when set, pre-action states
	// and actions are calibrated from *current* instead of *average* VM
	// demand, disabling the demand-history signal the paper credits for
	// GLAP's overload prediction (Section IV-B argues current-only states
	// are "unsuitable for an environment with dynamic and unpredictable
	// workloads"). The ablation benchmarks quantify that claim.
	CurrentDemandOnly bool
}

// DefaultConfig returns the calibration used in the evaluation.
func DefaultConfig() Config {
	return Config{
		Alpha:                 0.5,
		Gamma:                 0.8,
		LearnUtilThreshold:    0.5,
		LearnIterations:       30,
		DuplicationTargetUtil: 1.6,
		RewardOut:             DefaultRewardOut,
		RewardIn:              DefaultRewardIn,
		LearnRounds:           500,
		AggRounds:             200,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Alpha == 0 {
		c.Alpha = d.Alpha
	}
	if c.Gamma == 0 {
		c.Gamma = d.Gamma
	}
	if c.LearnUtilThreshold == 0 {
		c.LearnUtilThreshold = d.LearnUtilThreshold
	}
	if c.LearnIterations == 0 {
		c.LearnIterations = d.LearnIterations
	}
	if c.DuplicationTargetUtil == 0 {
		c.DuplicationTargetUtil = d.DuplicationTargetUtil
	}
	if c.RewardOut == (RewardTable{}) {
		c.RewardOut = d.RewardOut
	}
	if c.RewardIn == (RewardTable{}) {
		c.RewardIn = d.RewardIn
	}
	if c.LearnRounds == 0 {
		c.LearnRounds = d.LearnRounds
	}
	// Zero means "default"; a negative value explicitly disables the
	// aggregation phase (the WOG ablation).
	if c.AggRounds == 0 {
		c.AggRounds = d.AggRounds
	} else if c.AggRounds < 0 {
		c.AggRounds = 0
	}
	return c
}

// Validate reports configuration errors after defaulting.
func (c Config) Validate() error {
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("glap: Alpha %g out of (0,1]", c.Alpha)
	}
	if c.Gamma < 0 || c.Gamma >= 1 {
		return fmt.Errorf("glap: Gamma %g out of [0,1)", c.Gamma)
	}
	if c.LearnUtilThreshold <= 0 || c.LearnUtilThreshold > 1 {
		return fmt.Errorf("glap: LearnUtilThreshold %g out of (0,1]", c.LearnUtilThreshold)
	}
	if c.LearnIterations < 1 {
		return fmt.Errorf("glap: LearnIterations must be >= 1")
	}
	if !c.RewardOut.validStrictlyDecreasing() {
		return fmt.Errorf("glap: RewardOut must be positive and strictly decreasing across levels")
	}
	if !c.RewardIn.validInShape() {
		return fmt.Errorf("glap: RewardIn must be positive below Overload and negative at Overload")
	}
	if c.LearnRounds < 0 || c.AggRounds < 0 {
		return fmt.Errorf("glap: negative phase lengths")
	}
	if c.Precision > qlearn.F32 {
		return fmt.Errorf("glap: unknown precision tier %d", c.Precision)
	}
	return nil
}
