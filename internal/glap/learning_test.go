package glap

import (
	"fmt"
	"testing"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/qlearn"
	"github.com/glap-sim/glap/internal/sim"
)

// runLearnPhase builds a fresh cluster+engine pair and runs rounds learning
// rounds with the given kernel, returning every node's tables.
func runLearnPhase(t *testing.T, reference bool, pms, vms, rounds int, seed uint64) []*NodeTables {
	t.Helper()
	cl := genCluster(t, pms, vms, rounds+10, seed)
	e := sim.NewEngine(pms, seed)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	e.Register(cyclon.New(8, 4))
	learn := &LearnProtocol{Cfg: DefaultConfig(), B: b, Reference: reference}
	e.Register(learn)
	e.RunRounds(rounds)
	out := make([]*NodeTables, e.N())
	for i, n := range e.Nodes() {
		out[i] = TablesOf(e, n)
	}
	return out
}

// TestLearnKernelDifferential pins the fused single-pass kernel against the
// retained reference kernel draw-for-draw: identical clusters, seeds and
// random streams must yield cell-identical Q-tables on every node. The two
// kernels differ in the FP evaluation order of the sender's post-action
// state (subtract-from-total vs skip-during-scan); the calibrated level
// quantisation absorbs that ulp-level difference, and this test is the
// witness that it does across a multi-seed corpus.
func TestLearnKernelDifferential(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 7, 11, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := runLearnPhase(t, true, 20, 60, 30, seed)
			fused := runLearnPhase(t, false, 20, 60, 30, seed)
			for i := range ref {
				if ref[i].Trained != fused[i].Trained {
					t.Fatalf("node %d: Trained diverged (ref=%v fused=%v)",
						i, ref[i].Trained, fused[i].Trained)
				}
				if !qlearn.Equal(ref[i].Out, fused[i].Out) {
					t.Fatalf("node %d: φ^out diverged (ref %d cells, fused %d cells)",
						i, ref[i].Out.Len(), fused[i].Out.Len())
				}
				if !qlearn.Equal(ref[i].In, fused[i].In) {
					t.Fatalf("node %d: φ^in diverged (ref %d cells, fused %d cells)",
						i, ref[i].In.Len(), fused[i].In.Len())
				}
			}
		})
	}
}

// TestLearnKernelDifferentialCurrentDemandOnly repeats the differential
// check under the CurrentDemandOnly ablation, which flips every pre-action
// state and action to the current-demand signal.
func TestLearnKernelDifferentialCurrentDemandOnly(t *testing.T) {
	run := func(reference bool) []*NodeTables {
		cl := genCluster(t, 15, 45, 40, 5)
		e := sim.NewEngine(15, 5)
		b, err := policy.Bind(e, cl)
		if err != nil {
			t.Fatal(err)
		}
		e.Register(cyclon.New(8, 4))
		cfg := DefaultConfig()
		cfg.CurrentDemandOnly = true
		e.Register(&LearnProtocol{Cfg: cfg, B: b, Reference: reference})
		e.RunRounds(25)
		out := make([]*NodeTables, e.N())
		for i, n := range e.Nodes() {
			out[i] = TablesOf(e, n)
		}
		return out
	}
	ref, fused := run(true), run(false)
	for i := range ref {
		if !qlearn.Equal(ref[i].Out, fused[i].Out) || !qlearn.Equal(ref[i].In, fused[i].In) {
			t.Fatalf("node %d: tables diverged under CurrentDemandOnly", i)
		}
	}
}

// TestCoverCountMatchesDuplicateToCover pins the arithmetic multiset size
// against the materialising reference across a sweep of profile sets and
// coverage targets, including the degenerate corners.
func TestCoverCountMatchesDuplicateToCover(t *testing.T) {
	cap := dc.Vec{2660, 4096}
	rng := sim.NewRNG(99)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		ps := make([]profile, n)
		for i := range ps {
			ps[i] = profile{
				avg: dc.Vec{rng.Float64() * 0.7, rng.Float64() * 0.7},
				cur: dc.Vec{rng.Float64() * 0.7, rng.Float64() * 0.7},
				cap: dc.Vec{100 + 500*rng.Float64(), 128 + 600*rng.Float64()},
			}
		}
		target := rng.Float64() * 3
		base := make([]kernelProfile, n)
		for i := range ps {
			base[i] = profileToKernel(ps[i])
		}
		want := len(duplicateToCover(append([]profile(nil), ps...), cap, target))
		got := coverCount(base, cap[dc.CPU], target)
		if got != want {
			t.Fatalf("trial %d (n=%d target=%g): coverCount=%d, duplicateToCover len=%d",
				trial, n, target, got, want)
		}
	}
}

// TestDuplicateToCoverEdgeCases covers the corners of the duplication rule
// for both the materialising reference and the arithmetic coverCount: zero
// aggregate CPU demand, an aggregate already above the target, the exact
// 64×-base blowup cap, and a single-profile input.
func TestDuplicateToCoverEdgeCases(t *testing.T) {
	cap := dc.Vec{2660, 4096}
	check := func(name string, ps []profile, target float64, wantLen int) {
		t.Helper()
		got := duplicateToCover(append([]profile(nil), ps...), cap, target)
		if len(got) != wantLen {
			t.Fatalf("%s: duplicateToCover len=%d, want %d", name, len(got), wantLen)
		}
		base := make([]kernelProfile, len(ps))
		for i := range ps {
			base[i] = profileToKernel(ps[i])
		}
		if n := coverCount(base, cap[dc.CPU], target); n != wantLen {
			t.Fatalf("%s: coverCount=%d, want %d", name, n, wantLen)
		}
	}

	// Zero aggregate CPU demand: duplication cannot make progress and must
	// return the input unchanged instead of looping forever.
	check("zero-cpu", []profile{
		{avg: dc.Vec{0, 0.5}, cur: dc.Vec{0.1, 0.5}, cap: dc.Vec{500, 613}},
		{avg: dc.Vec{0, 0.2}, cur: dc.Vec{0.2, 0.2}, cap: dc.Vec{500, 613}},
	}, 1.6, 2)

	// Aggregate already above target: no duplication at all.
	check("above-target", []profile{
		{avg: dc.Vec{0.9, 0.3}, cur: dc.Vec{0.9, 0.3}, cap: dc.Vec{2000, 613}},
		{avg: dc.Vec{0.9, 0.3}, cur: dc.Vec{0.9, 0.3}, cap: dc.Vec{2000, 613}},
	}, 0.5, 2)

	// Exact 64×-base cap: a demand so small the target is unreachable stops
	// at exactly 64 copies of each base profile, never more.
	check("cap-64x", []profile{
		{avg: dc.Vec{0.0001, 0}, cur: dc.Vec{0.0001, 0}, cap: dc.Vec{500, 613}},
	}, 5, 64)
	check("cap-64x-multi", []profile{
		{avg: dc.Vec{0.0001, 0}, cur: dc.Vec{0.0001, 0}, cap: dc.Vec{500, 613}},
		{avg: dc.Vec{0.0002, 0}, cur: dc.Vec{0.0002, 0}, cap: dc.Vec{500, 613}},
	}, 5, 128)

	// Single-profile input duplicating to a reachable target: the profile
	// contributes 0.5*500=250 CPU per copy toward 1.6*2660=4256, so 18
	// copies (ceil(4256/250)) are needed.
	check("single-profile", []profile{
		{avg: dc.Vec{0.5, 0.5}, cur: dc.Vec{0.5, 0.5}, cap: dc.Vec{500, 613}},
	}, 1.6, 18)
}

// TestTrainOncePartitionRetry characterises the partition retry rule, which
// is deliberately asymmetric: the 8-attempt loop only guards against an
// empty *sender* (without a sender there is no migration to simulate and
// the iteration is skipped), while an all-sender draw leaves the recipient
// partition empty and trains anyway — the empty virtual recipient is the
// legitimate (Low, Low) pre-state of an idle PM accepting the VM, a state
// φ^in demonstrably needs. Both kernels implement the same rule; the test
// pins both.
func TestTrainOncePartitionRetry(t *testing.T) {
	cfg := DefaultConfig()
	p := profile{avg: dc.Vec{0.5, 0.5}, cur: dc.Vec{0.5, 0.5}, cap: dc.Vec{500, 613}}
	cap := dc.Vec{2660, 4096}
	emptyState := LevelsOf(dc.Vec{}).State() // (Low, Low): the empty partition's state

	// With a single-element multiset every draw is all-or-nothing: the
	// element lands in the sender (recipient empty, trains) or the sender
	// is empty (retry, then skip). Scan seeds for both outcomes.
	newStore := func() *NodeTables {
		return &NodeTables{Out: qlearn.New(cfg.Alpha, cfg.Gamma), In: qlearn.New(cfg.Alpha, cfg.Gamma)}
	}
	runBoth := func(seed uint64) (fused, ref *NodeTables) {
		l := &LearnProtocol{Cfg: cfg}
		fused = newStore()
		sc := &fused.scratch
		sc.base = append(sc.base[:0], profileToKernel(p))
		sc.total = 1
		l.trainOnce(sim.NewRNG(seed), fused, sc, cap)
		ref = newStore()
		l.refTrainOnce(sim.NewRNG(seed), ref, []profile{p}, cap)
		return fused, ref
	}

	var sawTrain, sawSkip bool
	for seed := uint64(1); seed <= 200 && !(sawTrain && sawSkip); seed++ {
		fused, ref := runBoth(seed)
		if fused.Out.Len() != ref.Out.Len() || fused.In.Len() != ref.In.Len() {
			t.Fatalf("seed %d: kernels disagree (fused out=%d in=%d, ref out=%d in=%d)",
				seed, fused.Out.Len(), fused.In.Len(), ref.Out.Len(), ref.In.Len())
		}
		switch {
		case fused.Out.Len() == 1:
			// All-sender partition: the recipient table was trained on the
			// empty-target pre-state.
			sawTrain = true
			action := LevelsOf(p.avg).Action()
			if !fused.In.Has(emptyState, action) {
				t.Fatalf("seed %d: all-sender draw did not train φ^in on the empty-recipient state", seed)
			}
			if !fused.Out.Has(LevelsOf(p.avg.Mul(p.cap).Div(cap)).State(), action) {
				t.Fatalf("seed %d: sender pre-state not the lone profile's aggregate", seed)
			}
		case fused.Out.Len() == 0:
			// Eight empty-sender draws: the iteration is skipped entirely —
			// neither table may learn anything.
			sawSkip = true
			if fused.In.Len() != 0 {
				t.Fatalf("seed %d: skipped iteration still trained φ^in", seed)
			}
		}
	}
	if !sawTrain {
		t.Fatal("no seed produced the all-sender (empty recipient) case")
	}
	if !sawSkip {
		t.Fatal("no seed produced the 8×-empty-sender skip case")
	}
}

// TestLearnRoundZeroAlloc asserts the tentpole invariant: once buffers and
// table backings are warm, a full learning round — profile collection,
// duplication bookkeeping and LearnIterations fused training iterations —
// performs zero heap allocations.
func TestLearnRoundZeroAlloc(t *testing.T) {
	cl := genCluster(t, 20, 60, 80, 9)
	e := sim.NewEngine(20, 9)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	e.Register(cyclon.New(8, 4))
	learn := &LearnProtocol{Cfg: DefaultConfig(), B: b}
	e.Register(learn)
	e.RunRounds(10) // warm up: allocate table backings and scratch

	// Pre-size every node's scratch and table backings to their worst case
	// so the measurement below is a pure steady-state check (a later round
	// can otherwise legitimately grow a high-water buffer once — the compact
	// cell arrays grow amortised, unlike the retired dense span).
	for _, n := range e.Nodes() {
		st := TablesOf(e, n)
		st.Out.Reserve(qlearn.DenseSpan * qlearn.DenseSpan)
		st.In.Reserve(qlearn.DenseSpan * qlearn.DenseSpan)
		sc := &st.scratch
		if cap(sc.ids) < 64 {
			sc.ids = make([]int, 0, 64)
		}
		if cap(sc.base) < 64 {
			sc.base = make([]kernelProfile, 0, 64)
		}
		if cap(sc.sender) < 64*64 {
			sc.sender = make([]int32, 0, 64*64)
		}
	}

	nodes := e.Nodes()
	allocs := testing.AllocsPerRun(20, func() {
		for _, n := range nodes {
			learn.Round(e, n, 10)
		}
	})
	if allocs != 0 {
		t.Fatalf("learning round allocates: %.1f allocs/run, want 0", allocs)
	}
}
