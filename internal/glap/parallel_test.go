package glap

import (
	"math"
	"testing"

	"github.com/glap-sim/glap/internal/qlearn"
)

// tableFingerprint folds a Q-table's dense cells into a comparable bit sum.
func tableFingerprint(tb *qlearn.Table) uint64 {
	var h uint64
	for k, v := range tb.Flat() {
		h ^= (uint64(k.S)*0x9e3779b97f4a7c15 + uint64(k.A)*0xbf58476d1ce4e5b9) * (math.Float64bits(v) | 1)
	}
	return h
}

// TestPretrainWorkerCountBitEquivalence is the package-level half of the
// headline invariant: the whole pre-training phase — parallel learning
// rounds, demand refresh, convergence sampling — must be byte-identical for
// Workers=1 and Workers=8. Run under -race in CI, it doubles as the race
// check on the parallel pretrain path.
func TestPretrainWorkerCountBitEquivalence(t *testing.T) {
	run := func(workers int) *PretrainResult {
		cl := genCluster(t, 30, 60, 60, 3)
		cl.Workers = workers
		res, err := Pretrain(Config{LearnRounds: 25, AggRounds: 15}, cl, 17,
			PretrainOptions{MeasureEvery: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if len(a.Convergence) != len(b.Convergence) {
		t.Fatalf("convergence series lengths differ: %d vs %d", len(a.Convergence), len(b.Convergence))
	}
	for i := range a.Convergence {
		if math.Float64bits(a.Convergence[i]) != math.Float64bits(b.Convergence[i]) {
			t.Fatalf("convergence[%d] diverges: %v vs %v", i, a.Convergence[i], b.Convergence[i])
		}
	}
	if len(a.Tables) != len(b.Tables) {
		t.Fatalf("table counts differ")
	}
	for i := range a.Tables {
		ta, tb := a.Tables[i], b.Tables[i]
		if ta.Trained != tb.Trained {
			t.Fatalf("node %d Trained flag diverges", i)
		}
		if tableFingerprint(ta.Out) != tableFingerprint(tb.Out) {
			t.Fatalf("node %d Out table diverges", i)
		}
		if tableFingerprint(ta.In) != tableFingerprint(tb.In) {
			t.Fatalf("node %d In table diverges", i)
		}
	}
}
