package glap

import (
	"testing"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
)

// pretrainShared pretrains on a throwaway cluster and collapses the result
// into one shared Q store, as deployments do.
func pretrainShared(t *testing.T, pms, vms, wlRounds int, seed uint64) *NodeTables {
	t.Helper()
	pre := genCluster(t, pms, vms, wlRounds, seed)
	res, err := Pretrain(Config{LearnRounds: 20, AggRounds: 15}, pre, seed, PretrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := SharedTables(res)
	if err != nil {
		t.Fatal(err)
	}
	return shared
}

// runAsyncConsolidate runs the message-passing consolidation stack and
// returns the cluster, protocol, and transport for inspection. The run is
// fully drained: pending timeouts and in-flight messages are played out
// after the last round.
func runAsyncConsolidate(t *testing.T, shared *NodeTables, pms, vms, wlRounds, rounds int,
	seed uint64, drop float64, latency int64) (*dc.Cluster, *AsyncConsolidateProtocol, *sim.Transport) {
	t.Helper()
	cl := genCluster(t, pms, vms, wlRounds, seed)
	e := sim.NewEngine(pms, seed+1)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	e.Register(cyclon.New(8, 4))
	tr := sim.NewTransport(e, sim.ConstantLatency(latency))
	tr.DropProb = drop
	cons := &AsyncConsolidateProtocol{
		B:  b,
		Tr: tr,
		Tables: func(e *sim.Engine, n *sim.Node) *NodeTables {
			return shared
		},
	}
	tr.Handle(cons)
	e.Register(cons)
	e.RunRounds(rounds)
	e.RunEvents(-1)
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return cl, cons, tr
}

// runSyncConsolidate is the cycle-driven reference under the same workload
// and tables.
func runSyncConsolidate(t *testing.T, shared *NodeTables, pms, vms, wlRounds, rounds int, seed uint64) *dc.Cluster {
	t.Helper()
	cl := genCluster(t, pms, vms, wlRounds, seed)
	e := sim.NewEngine(pms, seed+1)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	e.Register(cyclon.New(8, 4))
	e.Register(&ConsolidateProtocol{
		B:      b,
		Tables: func(e *sim.Engine, n *sim.Node) *NodeTables { return shared },
	})
	e.RunRounds(rounds)
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestAsyncConsolidateMatchesSyncAtZeroLoss is the equivalence gate: with no
// loss and unit latency, the message-passing protocol must consolidate to a
// packing of the same quality as the synchronous shortcut.
func TestAsyncConsolidateMatchesSyncAtZeroLoss(t *testing.T) {
	const pms, vms, wlRounds, rounds = 20, 40, 80, 40
	shared := pretrainShared(t, pms, vms, wlRounds, 53)
	syncCl := runSyncConsolidate(t, shared, pms, vms, wlRounds, rounds, 53)
	asyncCl, cons, _ := runAsyncConsolidate(t, shared, pms, vms, wlRounds, rounds, 53, 0, 1)

	syncActive, asyncActive := syncCl.ActivePMs(), asyncCl.ActivePMs()
	if asyncActive >= pms {
		t.Fatalf("async protocol did not consolidate: %d/%d PMs active", asyncActive, pms)
	}
	diff := asyncActive - syncActive
	if diff < 0 {
		diff = -diff
	}
	// Same tables, same workload, different interleaving: the packings must
	// land close together.
	if diff > 4 {
		t.Fatalf("async=%d active PMs vs sync=%d; difference %d exceeds tolerance", asyncActive, syncActive, diff)
	}
	if cons.Commits == 0 {
		t.Fatal("no migrations committed through the message path")
	}
	if got := int64(asyncCl.Migrations); got != cons.Commits {
		t.Fatalf("cluster counted %d migrations, protocol committed %d", got, cons.Commits)
	}
	if open := asyncCl.OpenReservations(); open != 0 {
		t.Fatalf("%d reservations still open after drain", open)
	}
}

// TestAsyncConsolidateNoLeaksUnderLoss is the robustness gate: at 20%
// message loss every reservation and request must still be resolved or
// expired once the run drains, and the transport counters must balance.
func TestAsyncConsolidateNoLeaksUnderLoss(t *testing.T) {
	const pms, vms, wlRounds, rounds = 20, 40, 80, 40
	shared := pretrainShared(t, pms, vms, wlRounds, 53)
	cl, cons, tr := runAsyncConsolidate(t, shared, pms, vms, wlRounds, rounds, 53, 0.20, 30)

	if open := cl.OpenReservations(); open != 0 {
		t.Fatalf("%d reservations leaked under loss", open)
	}
	if open := cons.OpenRequests(); open != 0 {
		t.Fatalf("%d requests still pending after drain", open)
	}
	if tr.Sent != tr.Delivered+tr.Dropped {
		t.Fatalf("transport counters unbalanced: sent=%d delivered=%d dropped=%d",
			tr.Sent, tr.Delivered, tr.Dropped)
	}
	if tr.Dropped == 0 {
		t.Fatal("loss injection did not fire; the test exercised nothing")
	}
	// Loss delays consolidation but must not break it outright.
	if cl.ActivePMs() >= pms {
		t.Fatalf("no consolidation under loss: %d/%d PMs active", cl.ActivePMs(), pms)
	}
	if cons.Expired == 0 {
		t.Fatal("no request expired despite 20% loss; timeout path untested")
	}
}

// TestAsyncConsolidateDeterminism pins that two identically seeded runs
// produce identical outcomes — the protocol draws all randomness from
// engine-derived streams.
func TestAsyncConsolidateDeterminism(t *testing.T) {
	const pms, vms, wlRounds, rounds = 16, 32, 60, 30
	shared := pretrainShared(t, pms, vms, wlRounds, 61)
	run := func() (int, int64, int64) {
		cl, cons, tr := runAsyncConsolidate(t, shared, pms, vms, wlRounds, rounds, 61, 0.10, 15)
		return cl.ActivePMs(), cons.Commits, tr.Sent
	}
	a1, c1, s1 := run()
	a2, c2, s2 := run()
	if a1 != a2 || c1 != c2 || s1 != s2 {
		t.Fatalf("non-deterministic: run1=(%d,%d,%d) run2=(%d,%d,%d)", a1, c1, s1, a2, c2, s2)
	}
}

// TestAsyncLostVerdictReleasesReservation drives the target-side expiry path
// deterministically: an offer is accepted and reserved, but the verdict (and
// everything after it) is lost, so no commit or abort ever arrives. The hold
// timer — armed for two request timeouts — must release the reservation on
// retry exhaustion instead of pinning target capacity forever.
func TestAsyncLostVerdictReleasesReservation(t *testing.T) {
	shared := pretrainShared(t, 4, 8, 8, 3)
	cl := genCluster(t, 4, 8, 8, 3)
	e := sim.NewEngine(4, 4)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	tr := sim.NewTransport(e, sim.ConstantLatency(1))
	tr.DropProb = 1 // the verdict vanishes; the sender never answers
	cons := &AsyncConsolidateProtocol{
		B: b, Tr: tr, OfferTimeout: 10,
		Tables: func(*sim.Engine, *sim.Node) *NodeTables { return shared },
	}
	tr.Handle(cons)
	e.Register(cons)

	e.RunEvents(0) // run protocol setup without executing any round
	target := e.Nodes()[0]
	pm := b.PM(target)
	var vm *dc.VM
	for _, cand := range cl.VMs {
		if cand.Host() >= 0 && cand.Host() != pm.ID {
			vm = cand
			break
		}
	}
	if vm == nil {
		t.Fatal("no VM hosted away from the target PM")
	}
	act := cons.vmAction(vm)
	// Guarantee π_in admits the offer so the test exercises the reservation,
	// not the vet.
	shared.In.Set(cons.pmState(cl, pm), act, 1)
	demand := dc.Vec{1, 1}
	cons.onOffer(e, target, vm.Host(), acOffer{
		Token: 42, VM: vm.ID, Action: act, Demand: demand, AvgDemand: demand,
	})
	if cons.Accepts != 1 {
		t.Fatalf("Accepts = %d, want the offer accepted", cons.Accepts)
	}
	if cl.OpenReservations() != 1 {
		t.Fatalf("OpenReservations = %d after acceptance, want 1", cl.OpenReservations())
	}
	if cl.Reserved(pm) == (dc.Vec{}) {
		t.Fatal("acceptance reserved no capacity on the target")
	}

	e.RunEvents(-1)
	if cl.OpenReservations() != 0 {
		t.Fatalf("OpenReservations = %d after drain, want 0", cl.OpenReservations())
	}
	if cl.Reserved(pm) != (dc.Vec{}) {
		t.Fatalf("target still pins reserved capacity %v", cl.Reserved(pm))
	}
	if cons.Expired != 1 {
		t.Fatalf("Expired = %d, want the hold timer counted once", cons.Expired)
	}
	if cons.OpenRequests() != 0 {
		t.Fatalf("OpenRequests = %d after drain", cons.OpenRequests())
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncTotalLossDrainsClean runs the full stack under 100% message loss:
// every exchange and offer retries to exhaustion. After the drain no node
// may remain busy, no request may stay open, no reservation may survive and
// nothing can have committed.
func TestAsyncTotalLossDrainsClean(t *testing.T) {
	shared := pretrainShared(t, 8, 16, 10, 5)
	cl, cons, _ := runAsyncConsolidate(t, shared, 8, 16, 10, 6, 5, 1.0, 1)
	if cons.Exchanges == 0 {
		t.Fatal("no exchange was ever started")
	}
	if cons.Expired == 0 {
		t.Fatal("total loss produced no expiries — retries did not exhaust")
	}
	if cons.Commits != 0 {
		t.Fatalf("Commits = %d under total loss", cons.Commits)
	}
	if cons.OpenRequests() != 0 {
		t.Fatalf("OpenRequests = %d after drain", cons.OpenRequests())
	}
	if cl.OpenReservations() != 0 {
		t.Fatalf("OpenReservations = %d after drain", cl.OpenReservations())
	}
	for _, n := range cons.rtEngine.Nodes() {
		if cons.state(cons.rtEngine, n).busy {
			t.Fatalf("node %d still busy after drain", n.ID)
		}
	}
}
