package glap

import (
	"testing"

	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/sim"
)

// pretrainShared pretrains on a throwaway cluster and collapses the result
// into one shared Q store, as deployments do.
func pretrainShared(t *testing.T, pms, vms, wlRounds int, seed uint64) *NodeTables {
	t.Helper()
	pre := genCluster(t, pms, vms, wlRounds, seed)
	res, err := Pretrain(Config{LearnRounds: 20, AggRounds: 15}, pre, seed, PretrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := SharedTables(res)
	if err != nil {
		t.Fatal(err)
	}
	return shared
}

// runAsyncConsolidate runs the message-passing consolidation stack and
// returns the cluster, protocol, and transport for inspection. The run is
// fully drained: pending timeouts and in-flight messages are played out
// after the last round.
func runAsyncConsolidate(t *testing.T, shared *NodeTables, pms, vms, wlRounds, rounds int,
	seed uint64, drop float64, latency int64) (*dc.Cluster, *AsyncConsolidateProtocol, *sim.Transport) {
	t.Helper()
	cl := genCluster(t, pms, vms, wlRounds, seed)
	e := sim.NewEngine(pms, seed+1)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	e.Register(cyclon.New(8, 4))
	tr := sim.NewTransport(e, sim.ConstantLatency(latency))
	tr.DropProb = drop
	cons := &AsyncConsolidateProtocol{
		B:  b,
		Tr: tr,
		Tables: func(e *sim.Engine, n *sim.Node) *NodeTables {
			return shared
		},
	}
	tr.Handle(cons)
	e.Register(cons)
	e.RunRounds(rounds)
	e.RunEvents(-1)
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return cl, cons, tr
}

// runSyncConsolidate is the cycle-driven reference under the same workload
// and tables.
func runSyncConsolidate(t *testing.T, shared *NodeTables, pms, vms, wlRounds, rounds int, seed uint64) *dc.Cluster {
	t.Helper()
	cl := genCluster(t, pms, vms, wlRounds, seed)
	e := sim.NewEngine(pms, seed+1)
	b, err := policy.Bind(e, cl)
	if err != nil {
		t.Fatal(err)
	}
	e.Register(cyclon.New(8, 4))
	e.Register(&ConsolidateProtocol{
		B:      b,
		Tables: func(e *sim.Engine, n *sim.Node) *NodeTables { return shared },
	})
	e.RunRounds(rounds)
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestAsyncConsolidateMatchesSyncAtZeroLoss is the equivalence gate: with no
// loss and unit latency, the message-passing protocol must consolidate to a
// packing of the same quality as the synchronous shortcut.
func TestAsyncConsolidateMatchesSyncAtZeroLoss(t *testing.T) {
	const pms, vms, wlRounds, rounds = 20, 40, 80, 40
	shared := pretrainShared(t, pms, vms, wlRounds, 53)
	syncCl := runSyncConsolidate(t, shared, pms, vms, wlRounds, rounds, 53)
	asyncCl, cons, _ := runAsyncConsolidate(t, shared, pms, vms, wlRounds, rounds, 53, 0, 1)

	syncActive, asyncActive := syncCl.ActivePMs(), asyncCl.ActivePMs()
	if asyncActive >= pms {
		t.Fatalf("async protocol did not consolidate: %d/%d PMs active", asyncActive, pms)
	}
	diff := asyncActive - syncActive
	if diff < 0 {
		diff = -diff
	}
	// Same tables, same workload, different interleaving: the packings must
	// land close together.
	if diff > 4 {
		t.Fatalf("async=%d active PMs vs sync=%d; difference %d exceeds tolerance", asyncActive, syncActive, diff)
	}
	if cons.Commits == 0 {
		t.Fatal("no migrations committed through the message path")
	}
	if got := int64(asyncCl.Migrations); got != cons.Commits {
		t.Fatalf("cluster counted %d migrations, protocol committed %d", got, cons.Commits)
	}
	if open := asyncCl.OpenReservations(); open != 0 {
		t.Fatalf("%d reservations still open after drain", open)
	}
}

// TestAsyncConsolidateNoLeaksUnderLoss is the robustness gate: at 20%
// message loss every reservation and request must still be resolved or
// expired once the run drains, and the transport counters must balance.
func TestAsyncConsolidateNoLeaksUnderLoss(t *testing.T) {
	const pms, vms, wlRounds, rounds = 20, 40, 80, 40
	shared := pretrainShared(t, pms, vms, wlRounds, 53)
	cl, cons, tr := runAsyncConsolidate(t, shared, pms, vms, wlRounds, rounds, 53, 0.20, 30)

	if open := cl.OpenReservations(); open != 0 {
		t.Fatalf("%d reservations leaked under loss", open)
	}
	if open := cons.OpenRequests(); open != 0 {
		t.Fatalf("%d requests still pending after drain", open)
	}
	if tr.Sent != tr.Delivered+tr.Dropped {
		t.Fatalf("transport counters unbalanced: sent=%d delivered=%d dropped=%d",
			tr.Sent, tr.Delivered, tr.Dropped)
	}
	if tr.Dropped == 0 {
		t.Fatal("loss injection did not fire; the test exercised nothing")
	}
	// Loss delays consolidation but must not break it outright.
	if cl.ActivePMs() >= pms {
		t.Fatalf("no consolidation under loss: %d/%d PMs active", cl.ActivePMs(), pms)
	}
	if cons.Expired == 0 {
		t.Fatal("no request expired despite 20% loss; timeout path untested")
	}
}

// TestAsyncConsolidateDeterminism pins that two identically seeded runs
// produce identical outcomes — the protocol draws all randomness from
// engine-derived streams.
func TestAsyncConsolidateDeterminism(t *testing.T) {
	const pms, vms, wlRounds, rounds = 16, 32, 60, 30
	shared := pretrainShared(t, pms, vms, wlRounds, 61)
	run := func() (int, int64, int64) {
		cl, cons, tr := runAsyncConsolidate(t, shared, pms, vms, wlRounds, rounds, 61, 0.10, 15)
		return cl.ActivePMs(), cons.Commits, tr.Sent
	}
	a1, c1, s1 := run()
	a2, c2, s2 := run()
	if a1 != a2 || c1 != c2 || s1 != s2 {
		t.Fatalf("non-deterministic: run1=(%d,%d,%d) run2=(%d,%d,%d)", a1, c1, s1, a2, c2, s2)
	}
}
