package glap

import "github.com/glap-sim/glap/internal/dc"

// RewardTable assigns a per-resource reward to the destination level of a
// transition. The total reward of a transition is the sum over resources of
// the destination level's reward ("the total reward of any transition from
// s to ś is aggregation rewards of each resource").
type RewardTable [NumLevels]float64

// Of returns the aggregate reward for reaching the destination levels.
func (rt RewardTable) Of(dst Levels) float64 {
	total := 0.0
	for r := 0; r < dc.NumResources; r++ {
		total += rt[dst[r]]
	}
	return total
}

// DefaultRewardOut is the sender-mode reward system: strictly decreasing
// with the destination load level (r_L > r_M > ... > r_O, all positive), so
// transitions that empty the PM fastest earn the most and the learner drives
// senders aggressively toward sleep mode.
var DefaultRewardOut = RewardTable{
	Low:      9,
	Medium:   8,
	High:     7,
	XHigh:    6,
	X2High:   5,
	X3High:   4,
	X4High:   3,
	X5High:   2,
	Overload: 1,
}

// DefaultRewardIn is the recipient-mode reward system: positive and
// increasing toward (but excluding) Overload, so recipients are "avaricious"
// and fill up, while the strongly negative Overload entry teaches the
// learner that acceptances leading to overload — now or via the discounted
// future term — must be rejected (r_O << 0).
//
// The magnitude of the Overload penalty matters: with discounting, safe
// acceptance chains bootstrap to Q ≈ r/(1−γ) ≈ +74, so the penalty must be
// an order of magnitude larger for cells with a non-trivial overload
// probability to turn negative. The paper makes the same point: "the
// smaller negative reward value, the less probability of producing SLA
// violations". −1000 rejects cells whose observed overload frequency
// exceeds roughly 7%; the ablation benchmarks sweep this value.
var DefaultRewardIn = RewardTable{
	Low:      1,
	Medium:   2,
	High:     3,
	XHigh:    4,
	X2High:   5,
	X3High:   6,
	X4High:   7,
	X5High:   8,
	Overload: -1000,
}

// validStrictlyDecreasing reports whether the out-reward ordering constraint
// of Section IV-A holds.
func (rt RewardTable) validStrictlyDecreasing() bool {
	for i := 1; i < NumLevels; i++ {
		if rt[i] >= rt[i-1] {
			return false
		}
	}
	return rt[Overload] > 0
}

// validInShape reports whether the in-reward shape constraint holds:
// positive everywhere except a strongly negative Overload entry.
func (rt RewardTable) validInShape() bool {
	for i := Low; i < Overload; i++ {
		if rt[i] <= 0 {
			return false
		}
	}
	return rt[Overload] < 0
}
