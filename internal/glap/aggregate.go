package glap

import (
	"github.com/glap-sim/glap/internal/gossip"
	"github.com/glap-sim/glap/internal/sim"
)

// AggProtocolName registers the aggregation phase of the Gossip Learning
// component.
const AggProtocolName = "glap-aggregate"

// AggProtocol is Algorithm 2: a push-pull gossip in which every PM exchanges
// its φ^io (both Q-tables) with one random neighbour per round and the two
// endpoints merge — averaging cells present on both sides and adopting cells
// present on one — so that all PMs converge to identical Q-values.
//
// The protocol operates on the Q store owned by LearnProtocol, which must be
// registered on the same engine.
type AggProtocol struct {
	// Select overrides the peer selector (defaults to Cyclon sampling).
	Select gossip.PeerSelector

	rng sim.BoundRNG
}

// Name implements sim.Protocol.
func (a *AggProtocol) Name() string { return AggProtocolName }

// Setup implements sim.Protocol. The aggregation phase has no state of its
// own; it mutates the learning component's tables.
func (a *AggProtocol) Setup(e *sim.Engine, n *sim.Node) any {
	return struct{}{}
}

// Round implements one active-thread exchange of Algorithm 2.
func (a *AggProtocol) Round(e *sim.Engine, n *sim.Node, round int) {
	st := TablesOf(e, n)
	// Training is over for this node once aggregation runs; its scratch
	// buffers (a few KB each) are dead weight exactly when the merge unions
	// drive the run's peak heap, so drop them here. They are append-grown
	// caches, rebuilt lazily if a continuous-mode re-learning phase follows.
	st.scratch = learnScratch{}
	sel := a.Select
	if sel == nil {
		sel = gossip.CyclonSelector
	}
	peer := sel(e, n, a.rng.For(e, 0xa66a66))
	if peer < 0 {
		return
	}
	MergeTables(st, TablesOf(e, e.Node(peer)))
}

// IOVector adapts a node's φ^io to the map-based convergence
// instrumentation; nodes with empty tables are excluded from similarity
// measurement, matching the paper's remark that PMs lacking resources may
// own no Q-values after the learning phase. Kept as a compatibility adapter
// for tests; measurement hot paths use IOVectorDense.
func IOVector(e *sim.Engine, n *sim.Node) map[IOKey]float64 {
	t := TablesOf(e, n)
	if t.Out.Len()+t.In.Len() == 0 {
		return nil
	}
	return t.IOFlat()
}

// IOVectorDense adapts a node's dense φ^io buffer to the aligned-slice
// convergence instrumentation, with the same empty-table exclusion as
// IOVector.
func IOVectorDense(e *sim.Engine, n *sim.Node) []float64 {
	t := TablesOf(e, n)
	if t.Out.Len()+t.In.Len() == 0 {
		return nil
	}
	return t.IOVec()
}
