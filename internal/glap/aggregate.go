package glap

import (
	"github.com/glap-sim/glap/internal/gossip"
	"github.com/glap-sim/glap/internal/sim"
)

// AggProtocolName registers the aggregation phase of the Gossip Learning
// component.
const AggProtocolName = "glap-aggregate"

// AggProtocol is Algorithm 2: a push-pull gossip in which every PM exchanges
// its φ^io (both Q-tables) with one random neighbour per round and the two
// endpoints merge — averaging cells present on both sides and adopting cells
// present on one — so that all PMs converge to identical Q-values.
//
// The protocol operates on the Q store owned by LearnProtocol, which must be
// registered on the same engine.
type AggProtocol struct {
	// Select overrides the peer selector (defaults to Cyclon sampling).
	Select gossip.PeerSelector

	rng sim.BoundRNG
}

// Name implements sim.Protocol.
func (a *AggProtocol) Name() string { return AggProtocolName }

// Setup implements sim.Protocol. The aggregation phase has no state of its
// own; it mutates the learning component's tables.
func (a *AggProtocol) Setup(e *sim.Engine, n *sim.Node) any {
	return struct{}{}
}

// Round implements one active-thread exchange of Algorithm 2.
func (a *AggProtocol) Round(e *sim.Engine, n *sim.Node, round int) {
	st := TablesOf(e, n)
	// Training is over for this node once aggregation runs; its scratch
	// buffers (a few KB each) are dead weight exactly when the merge unions
	// drive the run's peak heap, so drop them here. They are append-grown
	// caches, rebuilt lazily if a continuous-mode re-learning phase follows.
	st.scratch = learnScratch{}
	sel := a.Select
	if sel == nil {
		sel = gossip.CyclonSelector
	}
	peer := sel(e, n, a.rng.For(e, 0xa66a66))
	if peer < 0 {
		return
	}
	MergeTables(st, TablesOf(e, e.Node(peer)))
}

// PairSharded implements sim.PairRound. Aggregation always operates on the
// per-node table stores (TablesOf), and MergeTables confines its writes to
// the two endpoints' tables — the copy-on-write value backings make
// concurrent merges of node-disjoint pairs value-deterministic regardless of
// backing identity — so the protocol is unconditionally pair-capable.
func (a *AggProtocol) PairSharded() bool { return true }

// DrawPair implements sim.PairRound: Round's scratch drop and peer draw.
func (a *AggProtocol) DrawPair(e *sim.Engine, n *sim.Node, round int) int {
	st := TablesOf(e, n)
	st.scratch = learnScratch{}
	sel := a.Select
	if sel == nil {
		sel = gossip.CyclonSelector
	}
	return sel(e, n, a.rng.For(e, 0xa66a66))
}

// BeginPairs implements sim.PairRound (no per-pair accounting).
func (a *AggProtocol) BeginPairs(e *sim.Engine, round, npairs int) {}

// RunPair implements sim.PairRound: the push-pull merge of pair (a, b).
func (a *AggProtocol) RunPair(e *sim.Engine, p, q *sim.Node, round, idx int) {
	MergeTables(TablesOf(e, p), TablesOf(e, q))
}

// EndPairs implements sim.PairRound (nothing to fold).
func (a *AggProtocol) EndPairs(e *sim.Engine, round int) {}

// IOVector adapts a node's φ^io to the map-based convergence
// instrumentation; nodes with empty tables are excluded from similarity
// measurement, matching the paper's remark that PMs lacking resources may
// own no Q-values after the learning phase. Kept as a compatibility adapter
// for tests; measurement hot paths use IOVectorDense.
func IOVector(e *sim.Engine, n *sim.Node) map[IOKey]float64 {
	t := TablesOf(e, n)
	if t.Out.Len()+t.In.Len() == 0 {
		return nil
	}
	return t.IOFlat()
}

// IOVectorDense adapts a node's dense φ^io buffer to the aligned-slice
// convergence instrumentation, with the same empty-table exclusion as
// IOVector.
func IOVectorDense(e *sim.Engine, n *sim.Node) []float64 {
	t := TablesOf(e, n)
	if t.Out.Len()+t.In.Len() == 0 {
		return nil
	}
	return t.IOVec()
}

// IOVectorDense32 is IOVectorDense over the float32 buffer — the adapter
// F32-tier stacks feed to gossip.MeanPairwiseCosineDense32 so convergence
// measurement reads the narrow backings directly.
func IOVectorDense32(e *sim.Engine, n *sim.Node) []float32 {
	t := TablesOf(e, n)
	if t.Out.Len()+t.In.Len() == 0 {
		return nil
	}
	return t.IOVec32()
}
