package glap

import (
	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/qlearn"
	"github.com/glap-sim/glap/internal/sim"
)

// LearnProtocolName registers the Gossip Learning component.
const LearnProtocolName = "glap-learn"

// NodeTables is a PM's Q-value store: the φ^out and φ^in tables plus a flag
// recording whether this node ran local training (PMs above the utilisation
// threshold end the learning phase without any Q-values and only obtain them
// through aggregation).
type NodeTables struct {
	Out *qlearn.Table
	In  *qlearn.Table
	// Trained is set once the node executed at least one local training
	// round.
	Trained bool

	// ioVec is the node's reusable dense φ^io buffer, (re)filled by IOVec.
	// Convergence measurement samples it every measured round, so the
	// buffer is kept across samples instead of building a map each time.
	ioVec []float64
}

// Clone deep-copies the store. The scratch IOVec buffer is not carried
// over; the clone refills its own on first use.
func (t *NodeTables) Clone() *NodeTables {
	return &NodeTables{Out: t.Out.Clone(), In: t.In.Clone(), Trained: t.Trained}
}

// ioSpan is the per-dimension size of the dense φ^io layout: the calibrated
// level space (NumLevels² packed states and actions).
const ioSpan = NumLevels * NumLevels

// IOVecLen is the length of the dense φ^io vector: the φ^out cells over the
// full calibrated state×action space followed by the φ^in cells.
const IOVecLen = 2 * ioSpan * ioSpan

// IOVec flattens both tables into one dense vector (the paper's
// φ^io = φ^in ∪ φ^out) aligned over the calibrated space, reusing the
// node's buffer. Out-cells occupy the first half and in-cells the second,
// so the two tables never collide — the dense counterpart of IOFlat's key
// namespacing. All NodeTables share one layout, so vectors from different
// nodes feed straight into aligned-slice cosine similarity.
func (t *NodeTables) IOVec() []float64 {
	if t.ioVec == nil {
		t.ioVec = make([]float64, IOVecLen)
	}
	t.Out.FillDense(t.ioVec[:ioSpan*ioSpan], ioSpan, ioSpan)
	t.In.FillDense(t.ioVec[ioSpan*ioSpan:], ioSpan, ioSpan)
	return t.ioVec
}

// IOFlat flattens both tables into one sparse vector, namespacing in-cells
// and out-cells so they never collide. It is retained as a compatibility
// adapter for tests and map-based tooling; the measurement hot path uses
// IOVec.
func (t *NodeTables) IOFlat() map[IOKey]float64 {
	out := make(map[IOKey]float64, t.Out.Len()+t.In.Len())
	for k, v := range t.Out.Flat() {
		out[IOKey{Key: k}] = v
	}
	for k, v := range t.In.Flat() {
		out[IOKey{Key: k, In: true}] = v
	}
	return out
}

// IOKey namespaces a Q-table cell by table direction.
type IOKey struct {
	qlearn.Key
	In bool
}

// profile is a VM workload profile exchanged during the learning phase:
// current and average demand fractions plus the VM's nominal capacity.
type profile struct {
	cur, avg dc.Vec
	cap      dc.Vec
}

func profileOf(vm *dc.VM) profile {
	return profile{cur: vm.CurDemand(), avg: vm.AvgDemand(), cap: vm.Spec.Capacity}
}

// LearnProtocol is Algorithm 1: within each learning round, every PM whose
// load permits collects the VM profiles of one random neighbour, merges them
// with its own, duplicates them to cover heavily loaded states, and then
// simulates k sender/recipient migrations, updating φ^out and φ^in with
// Equation 1.
type LearnProtocol struct {
	Cfg Config
	B   *policy.Binding

	rng sim.BoundNodeRNG
}

// Name implements sim.Protocol.
func (l *LearnProtocol) Name() string { return LearnProtocolName }

// Parallelizable implements sim.ParallelRound: Round only writes the active
// node's own Q store, its own cyclon view, and its own derived random
// stream; peers and the cluster are read-only. That makes the learning phase
// — the paper's "700 more rounds" of pre-training — safe to fan out across
// the engine's workers with byte-identical results for any worker count.
func (l *LearnProtocol) Parallelizable() bool { return true }

// Setup creates the node's empty Q store.
func (l *LearnProtocol) Setup(e *sim.Engine, n *sim.Node) any {
	return &NodeTables{
		Out: qlearn.New(l.Cfg.Alpha, l.Cfg.Gamma),
		In:  qlearn.New(l.Cfg.Alpha, l.Cfg.Gamma),
	}
}

// TablesOf returns node n's Q store.
func TablesOf(e *sim.Engine, n *sim.Node) *NodeTables {
	return e.State(LearnProtocolName, n).(*NodeTables)
}

// Round implements one local training round (Algorithm 1 body). Each node
// draws from its own derived stream — a prerequisite of the ParallelRound
// contract, and what keeps training independent of node visit order.
func (l *LearnProtocol) Round(e *sim.Engine, n *sim.Node, round int) {
	rng := l.rng.For(e, n.ID, 0x61ea51)
	c := l.B.C
	pm := l.B.PM(n)
	// Only lightly loaded PMs train, to avoid impacting collocated VMs.
	if c.AvgUtil(pm)[dc.CPU] > l.Cfg.LearnUtilThreshold {
		return
	}

	// Collect profiles: local VMs plus the VMs of one random neighbour.
	var profiles []profile
	for _, vm := range l.B.VMsOf(pm) {
		profiles = append(profiles, profileOf(vm))
	}
	if peer := cyclon.SelectPeer(e, n, rng); peer >= 0 {
		for _, vm := range l.B.VMsOf(c.PMs[peer]) {
			profiles = append(profiles, profileOf(vm))
		}
	}
	if len(profiles) == 0 {
		return
	}

	// Duplicate profiles until the aggregate average CPU demand reaches
	// DuplicationTargetUtil of PM capacity so that high and overloaded
	// states are visited during training.
	profiles = duplicateToCover(profiles, pm.Spec.Capacity, l.Cfg.DuplicationTargetUtil)

	st := TablesOf(e, n)
	for it := 0; it < l.Cfg.LearnIterations; it++ {
		l.trainOnce(rng, st, profiles, pm.Spec.Capacity)
	}
	st.Trained = true
}

// duplicateToCover replicates the profile set until its aggregate average
// CPU demand reaches target × capacity.
func duplicateToCover(ps []profile, cap dc.Vec, target float64) []profile {
	sumCPU := 0.0
	for _, p := range ps {
		sumCPU += p.avg[dc.CPU] * p.cap[dc.CPU]
	}
	if sumCPU <= 0 {
		return ps
	}
	base := len(ps)
	for sumCPU < target*cap[dc.CPU] && len(ps) < 64*base {
		for i := 0; i < base && sumCPU < target*cap[dc.CPU]; i++ {
			ps = append(ps, ps[i])
			sumCPU += ps[i].avg[dc.CPU] * ps[i].cap[dc.CPU]
		}
	}
	return ps
}

// trainOnce performs one simulated migration: partition the profiles into a
// virtual sender and a virtual recipient, move one random sender VM, and
// apply updateOUT / updateIN per Equation 1. Pre-action states use average
// demand; post-action states use current demand (Figure 3).
func (l *LearnProtocol) trainOnce(rng *sim.RNG, st *NodeTables, profiles []profile, cap dc.Vec) {
	// Random partition with a freshly drawn split bias per iteration so
	// the virtual recipient's pre-state sweeps the whole load range — from
	// nearly empty to beyond capacity — and the high states that matter
	// for rejection decisions are actually visited during training.
	var sender, target []int
	pSender := 0.15 + 0.7*rng.Float64()
	for attempt := 0; attempt < 8; attempt++ {
		sender, target = sender[:0], target[:0]
		for i := range profiles {
			if rng.Bernoulli(pSender) {
				sender = append(sender, i)
			} else {
				target = append(target, i)
			}
		}
		if len(sender) > 0 {
			break
		}
	}
	if len(sender) == 0 {
		return
	}
	pick := sender[rng.Intn(len(sender))]
	vm := profiles[pick]
	useAvg := !l.Cfg.CurrentDemandOnly
	actionDemand := vm.avg
	if !useAvg {
		actionDemand = vm.cur
	}
	action := LevelsOf(actionDemand).Action()

	// updateOUT: the sender's transition after evicting vm.
	sBefore := aggStateIdx(profiles, sender, -1, nil, cap, useAvg)
	sAfter := aggStateIdx(profiles, sender, pick, nil, cap, false)
	l.updateOut(st.Out, sBefore, action, sAfter)

	// updateIN: the recipient's transition after accepting vm.
	tBefore := aggStateIdx(profiles, target, -1, nil, cap, useAvg)
	tAfter := aggStateIdx(profiles, target, -1, &vm, cap, false)
	l.updateIn(st.In, tBefore, action, tAfter)
}

// aggStateIdx aggregates profiles[idx] for idx in subset (skipping skip),
// plus extra, into a calibrated state.
func aggStateIdx(profiles []profile, subset []int, skip int, extra *profile, cap dc.Vec, useAvg bool) qlearn.State {
	var sum dc.Vec
	for _, i := range subset {
		if i == skip {
			continue
		}
		d := profiles[i].cur
		if useAvg {
			d = profiles[i].avg
		}
		for r := 0; r < dc.NumResources; r++ {
			sum[r] += d[r] * profiles[i].cap[r]
		}
	}
	if extra != nil {
		d := extra.cur
		if useAvg {
			d = extra.avg
		}
		for r := 0; r < dc.NumResources; r++ {
			sum[r] += d[r] * extra.cap[r]
		}
	}
	return LevelsOf(sum.Div(cap)).State()
}

func (l *LearnProtocol) updateOut(out *qlearn.Table, s qlearn.State, a qlearn.Action, next qlearn.State) {
	r := l.Cfg.RewardOut.Of(LevelsOfState(next))
	out.Update(s, a, r, next)
}

func (l *LearnProtocol) updateIn(in *qlearn.Table, s qlearn.State, a qlearn.Action, next qlearn.State) {
	r := l.Cfg.RewardIn.Of(LevelsOfState(next))
	in.Update(s, a, r, next)
}
