package glap

import (
	"github.com/glap-sim/glap/internal/cyclon"
	"github.com/glap-sim/glap/internal/dc"
	"github.com/glap-sim/glap/internal/policy"
	"github.com/glap-sim/glap/internal/qlearn"
	"github.com/glap-sim/glap/internal/sim"
)

// LearnProtocolName registers the Gossip Learning component.
const LearnProtocolName = "glap-learn"

// NodeTables is a PM's Q-value store: the φ^out and φ^in tables plus a flag
// recording whether this node ran local training (PMs above the utilisation
// threshold end the learning phase without any Q-values and only obtain them
// through aggregation).
type NodeTables struct {
	Out *qlearn.Table
	In  *qlearn.Table
	// Trained is set once the node executed at least one local training
	// round.
	Trained bool

	// ioVec is the node's reusable dense φ^io buffer, (re)filled by IOVec.
	// Convergence measurement samples it every measured round, so the
	// buffer is kept across samples instead of building a map each time.
	// F32-tier stacks use ioVec32 instead, so measurement never
	// materialises a whole-table float64 copy of float32 values.
	ioVec   []float64
	ioVec32 []float32

	// scratch holds the node's reusable training buffers. Keeping them in
	// the per-node store (rather than on the protocol) preserves the
	// ParallelRound contract: a training round touches nothing but state
	// owned by its node.
	scratch learnScratch
}

// Clone deep-copies the store. The scratch buffers (IOVec, training
// scratch) are not carried over; the clone refills its own on first use.
func (t *NodeTables) Clone() *NodeTables {
	return &NodeTables{Out: t.Out.Clone(), In: t.In.Clone(), Trained: t.Trained}
}

// NewNodeTables builds an empty, untrained Q store under cfg's learning
// parameters — the state a cold-restarted PM comes back with after a crash
// wiped its tables.
func NewNodeTables(cfg Config) *NodeTables {
	cfg = cfg.withDefaults()
	return &NodeTables{
		Out: qlearn.NewP(cfg.Alpha, cfg.Gamma, cfg.Precision),
		In:  qlearn.NewP(cfg.Alpha, cfg.Gamma, cfg.Precision),
	}
}

// ioSpan is the per-dimension size of the dense φ^io layout: the calibrated
// level space (NumLevels² packed states and actions).
const ioSpan = NumLevels * NumLevels

// IOVecLen is the length of the dense φ^io vector: the φ^out cells over the
// full calibrated state×action space followed by the φ^in cells.
const IOVecLen = 2 * ioSpan * ioSpan

// IOVec flattens both tables into one dense vector (the paper's
// φ^io = φ^in ∪ φ^out) aligned over the calibrated space, reusing the
// node's buffer. Out-cells occupy the first half and in-cells the second,
// so the two tables never collide — the dense counterpart of IOFlat's key
// namespacing. All NodeTables share one layout, so vectors from different
// nodes feed straight into aligned-slice cosine similarity.
func (t *NodeTables) IOVec() []float64 {
	if t.ioVec == nil {
		t.ioVec = make([]float64, IOVecLen)
	}
	t.Out.FillDense(t.ioVec[:ioSpan*ioSpan], ioSpan, ioSpan)
	t.In.FillDense(t.ioVec[ioSpan*ioSpan:], ioSpan, ioSpan)
	return t.ioVec
}

// IOVec32 is the float32 counterpart of IOVec for F32-tier stacks: it
// reads the float32 backings directly (and narrows any float64 cells),
// keeping convergence measurement free of whole-table f64 materialisation
// and halving the bytes each cosine scan touches.
func (t *NodeTables) IOVec32() []float32 {
	if t.ioVec32 == nil {
		t.ioVec32 = make([]float32, IOVecLen)
	}
	t.Out.FillDense32(t.ioVec32[:ioSpan*ioSpan], ioSpan, ioSpan)
	t.In.FillDense32(t.ioVec32[ioSpan*ioSpan:], ioSpan, ioSpan)
	return t.ioVec32
}

// IOFlat flattens both tables into one sparse vector, namespacing in-cells
// and out-cells so they never collide. It is retained as a compatibility
// adapter for tests and map-based tooling; the measurement hot path uses
// IOVec.
func (t *NodeTables) IOFlat() map[IOKey]float64 {
	out := make(map[IOKey]float64, t.Out.Len()+t.In.Len())
	for k, v := range t.Out.Flat() {
		out[IOKey{Key: k}] = v
	}
	for k, v := range t.In.Flat() {
		out[IOKey{Key: k, In: true}] = v
	}
	return out
}

// IOKey namespaces a Q-table cell by table direction.
type IOKey struct {
	qlearn.Key
	In bool
}

// profile is a VM workload profile exchanged during the learning phase:
// current and average demand fractions plus the VM's nominal capacity. The
// fused kernel works on the precomputed kernelProfile form; profile remains
// the reference kernel's (and the paper's) exchange unit.
type profile struct {
	cur, avg dc.Vec
	cap      dc.Vec
}

func profileOf(vm *dc.VM) profile {
	return profile{cur: vm.CurDemand(), avg: vm.AvgDemand(), cap: vm.Spec.Capacity}
}

// kernelProfile is one collected VM profile in the fused kernel's
// representation: the demand fractions pre-multiplied by the VM's capacity
// (the only form the aggregation ever needs) and the VM's calibrated action
// under both demand signals. Everything trainOnce touches per multiset
// element is precomputed here once per round.
type kernelProfile struct {
	// wAvg and wCur are the weighted demand vectors avg·cap and cur·cap.
	wAvg, wCur dc.Vec
	// actAvg and actCur are the VM's calibrated migration action from
	// average and current demand respectively (the CurrentDemandOnly
	// ablation switches between them).
	actAvg, actCur qlearn.Action
}

// learnScratch is a node's reusable training state. The duplicated profile
// multiset of Algorithm 1 is represented as the base profiles plus a total
// repeat count: multiset element k is base[k mod len(base)], because
// duplication appends the base profiles cyclically. Duplication is thereby
// O(1) space bookkeeping instead of slice inflation (the reference kernel
// materialises up to 64× the base set).
type learnScratch struct {
	// ids is the VM-id collection buffer fed to dc.PM.AppendVMIDs.
	ids []int
	// base holds the collected profiles (own VMs then peer VMs, each in
	// ascending VM-ID order — the same order the reference kernel collects).
	base []kernelProfile
	// total is the multiset size after duplication (≥ len(base)).
	total int
	// totAvg and totCur are the duplicated multiset's summed weighted demand
	// vectors, precomputed once per Round (they are constant across training
	// iterations and partition-retry attempts). trainOnce folds only the
	// sender side of each partition and derives the recipient sums as
	// totals − sender, halving the FP work of the partition loop.
	totAvg, totCur dc.Vec
	// sender is trainOnce's sender-partition buffer: multiset indices, kept
	// across iterations and rounds so steady-state training allocates
	// nothing.
	sender []int32
}

// appendKernelProfile collects vm into the scratch base set.
func appendKernelProfile(dst []kernelProfile, vm *dc.VM) []kernelProfile {
	cur, avg, cp := vm.CurDemand(), vm.AvgDemand(), vm.Spec.Capacity
	var k kernelProfile
	for r := 0; r < dc.NumResources; r++ {
		k.wAvg[r] = avg[r] * cp[r]
		k.wCur[r] = cur[r] * cp[r]
	}
	k.actAvg = LevelsOf(avg).Action()
	k.actCur = LevelsOf(cur).Action()
	return append(dst, k)
}

// LearnProtocol is Algorithm 1: within each learning round, every PM whose
// load permits collects the VM profiles of one random neighbour, merges them
// with its own, duplicates them to cover heavily loaded states, and then
// simulates k sender/recipient migrations, updating φ^out and φ^in with
// Equation 1.
type LearnProtocol struct {
	Cfg Config
	B   *policy.Binding

	// Reference selects the retired pre-fusion kernel (kept, like
	// qlearn.Sparse, as a differential baseline — see learnref.go). Both
	// kernels draw the identical random sequence, so a Reference run is
	// comparable draw-for-draw with a fused run.
	Reference bool

	rng sim.BoundNodeRNG
}

// Name implements sim.Protocol.
func (l *LearnProtocol) Name() string { return LearnProtocolName }

// Parallelizable implements sim.ParallelRound: Round only writes the active
// node's own Q store (including its node-local training scratch), its own
// cyclon view, and its own derived random stream; peers and the cluster are
// read-only. That makes the learning phase — the paper's "700 more rounds"
// of pre-training — safe to fan out across the engine's workers with
// byte-identical results for any worker count.
func (l *LearnProtocol) Parallelizable() bool { return true }

// Setup creates the node's empty Q store.
func (l *LearnProtocol) Setup(e *sim.Engine, n *sim.Node) any {
	return &NodeTables{
		Out: qlearn.NewP(l.Cfg.Alpha, l.Cfg.Gamma, l.Cfg.Precision),
		In:  qlearn.NewP(l.Cfg.Alpha, l.Cfg.Gamma, l.Cfg.Precision),
	}
}

// TablesOf returns node n's Q store.
func TablesOf(e *sim.Engine, n *sim.Node) *NodeTables {
	return e.State(LearnProtocolName, n).(*NodeTables)
}

// Round implements one local training round (Algorithm 1 body). Each node
// draws from its own derived stream — a prerequisite of the ParallelRound
// contract, and what keeps training independent of node visit order.
//
// The round is allocation-free in steady state: profile collection refills
// the node's scratch buffers instead of rebuilding slices from nil,
// duplication computes a repeat count instead of materialising copies, and
// the training iterations run the fused single-pass kernel below.
func (l *LearnProtocol) Round(e *sim.Engine, n *sim.Node, round int) {
	rng := l.rng.For(e, n.ID, 0x61ea51)
	c := l.B.C
	pm := l.B.PM(n)
	// Only lightly loaded PMs train, to avoid impacting collocated VMs.
	if c.AvgUtil(pm)[dc.CPU] > l.Cfg.LearnUtilThreshold {
		return
	}
	if l.Reference {
		l.roundReference(e, n, rng, pm)
		return
	}

	st := TablesOf(e, n)
	sc := &st.scratch

	// Collect profiles: local VMs plus the VMs of one random neighbour,
	// each set in ascending VM-ID order.
	sc.base = sc.base[:0]
	sc.ids = pm.AppendVMIDs(sc.ids[:0])
	for _, id := range sc.ids {
		sc.base = appendKernelProfile(sc.base, c.VMs[id])
	}
	if peer := cyclon.SelectPeer(e, n, rng); peer >= 0 {
		sc.ids = c.PMs[peer].AppendVMIDs(sc.ids[:0])
		for _, id := range sc.ids {
			sc.base = appendKernelProfile(sc.base, c.VMs[id])
		}
	}
	if len(sc.base) == 0 {
		return
	}

	// Duplicate profiles until the aggregate average CPU demand reaches
	// DuplicationTargetUtil of PM capacity so that high and overloaded
	// states are visited during training. Only the multiset size is
	// computed; elements are addressed as base[k mod len(base)].
	sc.total = coverCount(sc.base, pm.Spec.Capacity[dc.CPU], l.Cfg.DuplicationTargetUtil)
	sc.totAvg, sc.totCur = multisetTotals(sc.base, sc.total)

	for it := 0; it < l.Cfg.LearnIterations; it++ {
		l.trainOnce(rng, st, sc, pm.Spec.Capacity)
	}
	st.Trained = true
}

// coverCount returns the size of the duplicated profile multiset: the base
// profiles followed by cyclic repeats until the running aggregate average
// CPU demand reaches target × capacity, capped at 64× the base size. The
// running sum replays the reference duplicateToCover's accumulation order
// exactly (float addition is order-sensitive), so the count matches the
// reference kernel's materialised length element-for-element.
func coverCount(base []kernelProfile, capCPU, target float64) int {
	sum := 0.0
	for i := range base {
		sum += base[i].wAvg[dc.CPU]
	}
	if sum <= 0 {
		return len(base)
	}
	n, limit, maxN := len(base), target*capCPU, 64*len(base)
	for sum < limit && n < maxN {
		for i := 0; i < len(base) && sum < limit; i++ {
			sum += base[i].wAvg[dc.CPU]
			n++
		}
	}
	return n
}

// multisetTotals returns the duplicated multiset's summed weighted average-
// and current-demand vectors. Multiset element k is base[k mod len(base)], so
// the totals are (total / len(base)) full cycles of the base sums plus the
// prefix of the first total mod len(base) elements — one pass over base
// regardless of the duplication factor (up to 64×).
func multisetTotals(base []kernelProfile, total int) (avg, cur dc.Vec) {
	nb := len(base)
	rem := total % nb
	var bAvg, bCur, pAvg, pCur dc.Vec
	for i := range base {
		if i == rem {
			pAvg, pCur = bAvg, bCur
		}
		for r := 0; r < dc.NumResources; r++ {
			bAvg[r] += base[i].wAvg[r]
			bCur[r] += base[i].wCur[r]
		}
	}
	full := float64(total / nb)
	for r := 0; r < dc.NumResources; r++ {
		avg[r] = full*bAvg[r] + pAvg[r]
		cur[r] = full*bCur[r] + pCur[r]
	}
	return avg, cur
}

// trainOnce performs one simulated migration: partition the profile multiset
// into a virtual sender and a virtual recipient, move one random sender VM,
// and apply updateOUT / updateIN per Equation 1. Pre-action states use
// average demand; post-action states use current demand (Figure 3).
//
// Partition and aggregation are fused into a single pass: every multiset
// element draws its Bernoulli coin (the same sequence the reference kernel
// draws) and, when it lands sender-side, immediately folds its weighted
// average- and current-demand vectors into the sender accumulators. The
// recipient partition is never folded at all: its sums are derived as the
// precomputed multiset totals minus the sender sums, halving the FP work of
// the partition loop (the derived sums differ from a direct fold only at ulp
// scale, which level quantisation absorbs — see DESIGN.md §7). The Bernoulli
// threshold is converted once per trainOnce and the k-loop runs the one-shift
// one-compare form. Post-action states derive incrementally: sAfter is the
// sender's current-demand sum minus the evicted VM, tAfter the recipient's
// sum plus it. Only the sender indices are materialised (the eviction pick
// needs them); the recipient partition exists solely as its derived sums.
func (l *LearnProtocol) trainOnce(rng *sim.RNG, st *NodeTables, sc *learnScratch, pmCap dc.Vec) {
	base := sc.base
	nb := len(base)
	// Random partition with a freshly drawn split bias per iteration so
	// the virtual recipient's pre-state sweeps the whole load range — from
	// nearly empty to beyond capacity — and the high states that matter
	// for rejection decisions are actually visited during training.
	pSender := 0.15 + 0.7*rng.Float64()
	thresh := sim.Thresh53(pSender)
	sender := sc.sender[:cap(sc.sender)]
	if len(sender) < sc.total {
		// Grow once to the high-water multiset size so the k-loop writes by
		// index instead of appending (no per-element capacity check).
		sender = make([]int32, sc.total)
	}
	sc.sender = sender // keep the grown buffer for the next iteration
	cnt := 0
	var sAvg, sCur dc.Vec
	for attempt := 0; attempt < 8; attempt++ {
		cnt = 0
		sAvg, sCur = dc.Vec{}, dc.Vec{}
		// Walk the multiset cycle by cycle: the inner loop's bound is the
		// base length (or the final partial cycle), so element addressing
		// needs no wrap branch and profiles stream linearly.
		for k := 0; k < sc.total; {
			span := nb
			if rem := sc.total - k; rem < span {
				span = rem
			}
			for j := 0; j < span; j++ {
				if rng.BernoulliThresh(thresh) {
					sender[cnt] = int32(k + j)
					cnt++
					p := &base[j]
					for r := 0; r < dc.NumResources; r++ {
						sAvg[r] += p.wAvg[r]
						sCur[r] += p.wCur[r]
					}
				}
			}
			k += span
		}
		if cnt > 0 {
			break
		}
	}
	if cnt == 0 {
		return
	}
	sender = sender[:cnt]
	tAvg := sc.totAvg.Sub(sAvg)
	tCur := sc.totCur.Sub(sCur)
	// An all-sender draw leaves the recipient partition empty; training
	// proceeds regardless — an empty virtual recipient is the legitimate
	// (Low, Low) pre-state of an idle PM, and φ^in needs those transitions
	// (see TestTrainOncePartitionRetry for the characterisation).
	pick := int(sender[rng.Intn(len(sender))])
	p := &base[pick%nb]
	useAvg := !l.Cfg.CurrentDemandOnly
	action := p.actAvg
	if !useAvg {
		action = p.actCur
	}

	// updateOUT: the sender's transition after evicting the picked VM.
	sBefore := sAvg
	if !useAvg {
		sBefore = sCur
	}
	l.updateOut(st.Out, stateOfSum(sBefore, pmCap), action, stateOfSum(sCur.Sub(p.wCur), pmCap))

	// updateIN: the recipient's transition after accepting it.
	tBefore := tAvg
	if !useAvg {
		tBefore = tCur
	}
	l.updateIn(st.In, stateOfSum(tBefore, pmCap), action, stateOfSum(tCur.Add(p.wCur), pmCap))
}

// stateOfSum calibrates an aggregate absolute demand vector against a PM
// capacity.
func stateOfSum(sum, cap dc.Vec) qlearn.State {
	return LevelsOf(sum.Div(cap)).State()
}

func (l *LearnProtocol) updateOut(out *qlearn.Table, s qlearn.State, a qlearn.Action, next qlearn.State) {
	r := l.Cfg.RewardOut.Of(LevelsOfState(next))
	out.Update(s, a, r, next)
}

func (l *LearnProtocol) updateIn(in *qlearn.Table, s qlearn.State, a qlearn.Action, next qlearn.State) {
	r := l.Cfg.RewardIn.Of(LevelsOfState(next))
	in.Update(s, a, r, next)
}
