package dc

import (
	"testing"

	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/trace"
)

func lifecycleCluster(t *testing.T) *Cluster {
	t.Helper()
	set, err := trace.Generate(trace.DefaultGenConfig(10, 30, 3))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{PMs: 5, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSetLifecycleValidation(t *testing.T) {
	c := lifecycleCluster(t)
	if err := c.SetLifecycle(99, 1, 5); err == nil {
		t.Fatal("bad id accepted")
	}
	if err := c.SetLifecycle(0, -1, 5); err == nil {
		t.Fatal("negative arrival accepted")
	}
	if err := c.SetLifecycle(0, 5, 5); err == nil {
		t.Fatal("empty lifetime accepted")
	}
	rng := sim.NewRNG(1)
	c.PlaceRandom(rng.Intn)
	if err := c.SetLifecycle(0, 1, 5); err == nil {
		t.Fatal("lifecycle change after placement accepted")
	}
}

func TestLifecycleArrivalAndDeparture(t *testing.T) {
	c := lifecycleCluster(t)
	if err := c.SetLifecycle(0, 5, 10); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLifecycle(1, 3, -1); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	c.PlaceRandom(rng.Intn)
	if c.VMs[0].Present() || c.VMs[1].Present() {
		t.Fatal("future arrivals must not be pre-placed")
	}
	if c.PresentVMs() != 8 {
		t.Fatalf("present = %d, want 8", c.PresentVMs())
	}

	c.AdvanceRound(3)
	if !c.VMs[1].Present() || c.VMs[0].Present() {
		t.Fatal("round 3: only VM 1 should have arrived")
	}
	c.AdvanceRound(5)
	if !c.VMs[0].Present() {
		t.Fatal("round 5: VM 0 should have arrived")
	}
	if c.VMs[0].AvgDemand() != c.VMs[0].CurDemand() {
		t.Fatal("arrival should restart demand monitoring")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	c.AdvanceRound(10)
	if c.VMs[0].Present() {
		t.Fatal("round 10: VM 0 should have departed")
	}
	if !c.VMs[0].Departed() {
		t.Fatal("departed flag not set")
	}
	c.AdvanceRound(11)
	if c.VMs[0].Present() {
		t.Fatal("departed VM returned")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLifecycleRequestedCPUOnlyWhilePresent(t *testing.T) {
	c := lifecycleCluster(t)
	if err := c.SetLifecycle(0, 10, 12); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	c.PlaceRandom(rng.Intn)
	for r := 1; r < 9; r++ {
		c.AdvanceRound(r)
	}
	if got := c.VMs[0].DegradationRatio(); got != 0 {
		t.Fatalf("absent VM accrued degradation ratio %g", got)
	}
	// requestedCPU must be zero while absent: Present()==false all along.
	if c.vmRequested[0] != 0 {
		t.Fatalf("absent VM accrued %g requested CPU", c.vmRequested[0])
	}
	c.AdvanceRound(10)
	c.AdvanceRound(11)
	if c.vmRequested[0] <= 0 {
		t.Fatal("present VM accrued no requested CPU")
	}
}

func TestLifecycleCachedSumsStayConsistent(t *testing.T) {
	c := lifecycleCluster(t)
	for id := 0; id < 5; id++ {
		if err := c.SetLifecycle(id, id+1, id+10); err != nil {
			t.Fatal(err)
		}
	}
	rng := sim.NewRNG(2)
	c.PlaceRandom(rng.Intn)
	for r := 1; r < 25; r++ {
		c.AdvanceRound(r)
		for _, pm := range c.PMs {
			var want Vec
			for _, id := range pm.VMIDs() {
				want = want.Add(c.VMs[id].CurAbs())
			}
			got := c.CurUtil(pm)
			ref := want.Div(pm.Spec.Capacity)
			for res := 0; res < NumResources; res++ {
				d := got[res] - ref[res]
				if d > 1e-9 || d < -1e-9 {
					t.Fatalf("round %d PM %d: cached %v, recomputed %v", r, pm.ID, got, ref)
				}
			}
		}
	}
	// All five churned VMs have departed by round 15.
	if got := c.PresentVMs(); got != 5 {
		t.Fatalf("present = %d, want the 5 permanent VMs", got)
	}
}

// TestLifecycleRetryKeepsRunningAverage pins the arrival-retry fix: when an
// arriving VM finds no powered PM, its demand monitoring must be restarted
// exactly once (at arrival), not wiped again on every retry round, and each
// failed attempt must be surfaced through FailedPlacements.
func TestLifecycleRetryKeepsRunningAverage(t *testing.T) {
	c := lifecycleCluster(t)
	for id := range c.VMs {
		if err := c.SetLifecycle(id, 2, -1); err != nil {
			t.Fatal(err)
		}
	}
	rng := sim.NewRNG(1)
	c.PlaceRandom(rng.Intn) // no-op: every VM arrives later
	for _, pm := range c.PMs {
		if err := c.SetPMOn(pm, false); err != nil {
			t.Fatal(err)
		}
	}
	// Rounds 2..4: arrivals retry against a fully powered-off cluster.
	for r := 1; r <= 4; r++ {
		c.AdvanceRound(r)
	}
	if c.PresentVMs() != 0 {
		t.Fatalf("placed %d VMs on a powered-off cluster", c.PresentVMs())
	}
	wantFailed := int64(3 * len(c.VMs)) // rounds 2, 3, 4
	if c.FailedPlacements != wantFailed {
		t.Fatalf("FailedPlacements = %d, want %d", c.FailedPlacements, wantFailed)
	}
	vm := c.VMs[0]
	if c.vmCount[vm.ID] != 1 {
		t.Fatalf("monitoring count = %d before placement, want 1", c.vmCount[vm.ID])
	}
	// Power back up: round 5 places everyone, later rounds fold samples into
	// the running average seeded at arrival.
	for _, pm := range c.PMs {
		if err := c.SetPMOn(pm, true); err != nil {
			t.Fatal(err)
		}
	}
	c.AdvanceRound(5)
	if c.PresentVMs() != len(c.VMs) {
		t.Fatalf("placed %d of %d VMs after power-up", c.PresentVMs(), len(c.VMs))
	}
	if c.FailedPlacements != wantFailed {
		t.Fatalf("FailedPlacements moved to %d after successful placement", c.FailedPlacements)
	}
	c.AdvanceRound(6)
	if c.vmCount[vm.ID] != 3 {
		// Seed at arrival (1) + placement round sample + round 6 sample.
		t.Fatalf("monitoring count = %d after two placed rounds, want 3", c.vmCount[vm.ID])
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
