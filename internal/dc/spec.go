// Package dc models the cloud data center the consolidation protocols
// operate on: physical machines (PMs), virtual machines (VMs), resource
// accounting, live-migration mechanics and costs, and the linear power model
// used for the energy-overhead experiments (Figure 10, Eq. 3 of the paper).
package dc

// Resource identifies one of the two resources the paper considers.
type Resource int

const (
	// CPU capacity is measured in MIPS.
	CPU Resource = iota
	// Mem capacity is measured in MB.
	Mem

	// NumResources is the number of modelled resources.
	NumResources = 2
)

// String returns the resource name.
func (r Resource) String() string {
	if r == CPU {
		return "cpu"
	}
	return "mem"
}

// Vec is a resource vector indexed by Resource.
type Vec [NumResources]float64

// Add returns v + w.
func (v Vec) Add(w Vec) Vec {
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec {
	for i := range v {
		v[i] -= w[i]
	}
	return v
}

// Mul returns element-wise v * w.
func (v Vec) Mul(w Vec) Vec {
	for i := range v {
		v[i] *= w[i]
	}
	return v
}

// Scale returns v * k.
func (v Vec) Scale(k float64) Vec {
	for i := range v {
		v[i] *= k
	}
	return v
}

// Div returns element-wise v / w (0 where w is 0).
func (v Vec) Div(w Vec) Vec {
	for i := range v {
		if w[i] == 0 {
			v[i] = 0
		} else {
			v[i] /= w[i]
		}
	}
	return v
}

// Max returns the largest component.
func (v Vec) Max() float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Avg returns the mean of the components. The paper calibrates states on
// "average resource utilisation degree".
func (v Vec) Avg() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / NumResources
}

// FitsWithin reports whether every component of v is <= the matching
// component of w.
func (v Vec) FitsWithin(w Vec) bool {
	for i := range v {
		if v[i] > w[i] {
			return false
		}
	}
	return true
}

// PMSpec describes a physical machine model.
type PMSpec struct {
	// Name of the hardware model.
	Name string
	// Capacity per resource (MIPS, MB).
	Capacity Vec
	// NetBandwidthMBps is the bandwidth available to live migration, in
	// MB/s.
	NetBandwidthMBps float64
	// PowerIdleW and PowerMaxW define the linear power model
	// P(u) = PowerIdleW + (PowerMaxW-PowerIdleW)*u for CPU utilisation u.
	PowerIdleW float64
	PowerMaxW  float64
	// MigrationCPUOverhead is the fraction of CPU capacity consumed by a
	// live migration on each endpoint while it is in flight; it determines
	// P^lm in Eq. 3.
	MigrationCPUOverhead float64
}

// VMSpec describes a virtual machine type: the resources it is allocated at
// creation (its nominal size).
type VMSpec struct {
	Name     string
	Capacity Vec // allocated MIPS, MB
}

// HPProLiantML110G5 is the PM model used in Section V-A: 2660 MIPS CPU,
// 4 GB memory, 10 Gb/s network. Idle/peak power follow the SPECpower
// figures used by Beloglazov & Buyya for the same server (93 W / 135 W).
var HPProLiantML110G5 = PMSpec{
	Name:                 "HP ProLiant ML110 G5",
	Capacity:             Vec{2660, 4096},
	NetBandwidthMBps:     1250, // 10 Gb/s
	PowerIdleW:           93,
	PowerMaxW:            135,
	MigrationCPUOverhead: 0.10,
}

// HPProLiantML110G4 is a weaker server generation (1860 MIPS, 4 GB,
// 86 W / 117 W — the second machine type of Beloglazov & Buyya's testbed),
// available for heterogeneous-hardware experiments where power-aware
// placement decisions actually differ across hosts.
var HPProLiantML110G4 = PMSpec{
	Name:                 "HP ProLiant ML110 G4",
	Capacity:             Vec{1860, 4096},
	NetBandwidthMBps:     1250,
	PowerIdleW:           86,
	PowerMaxW:            117,
	MigrationCPUOverhead: 0.10,
}

// EC2Micro is the VM model used in Section V-A: 500 MIPS CPU, 613 MB memory.
var EC2Micro = VMSpec{
	Name:     "EC2 micro",
	Capacity: Vec{500, 613},
}
