package dc

import "github.com/glap-sim/glap/internal/par"

// Quiet-round certification and fused span advance. QuietSpan is the pure
// probe behind sim.SpanHook.Quiet: it proves that AdvanceRound would be a
// pure repetition for every round of [from, to) — no lifecycle event fires,
// no reservation is in flight, and every placed VM's demand stays exactly
// constant. AdvanceSpan is the matching SpanHook.Span: it replays the per-VM
// and per-PM accounting for the whole span in one fused pass, bit-identical
// to calling AdvanceRound once per round.
//
// The demand check is exact, not level-bucketed: PM energy is continuous in
// CPU utilisation (Eq. 1), so any demand drift — even one that never crosses
// a level boundary — changes the energy ledger and must keep the per-round
// path. Exact constancy also makes the replay below trivially exact: every
// skipped round folds the same current-demand vector. Level-boundary
// stability of the running averages is then implied: the average moves
// monotonically toward the (constant) current value per component, so if its
// level bucket matched before the span it matches throughout (the
// consolidation protocol's certificate builds on this).

// QuietSpan reports whether rounds [from, to) are provably inert for the
// cluster's demand and lifecycle accounting. It mutates nothing but the
// per-VM certificate cache, which stores proven facts about the immutable
// workload trace. from must be >= 1 (the engine never probes round 0), so
// the anchor sample at from-1 is the demand AdvanceRound(from-1) installed.
func (c *Cluster) QuietSpan(from, to int) bool {
	if from >= to {
		return true
	}
	if len(c.reservations) > 0 {
		return false
	}
	if c.vmQuietFrom == nil {
		c.vmQuietFrom = make([]int32, len(c.VMs))
		c.vmQuietUntil = make([]int32, len(c.VMs))
	}
	for id := range c.VMs {
		flags := c.vmFlags[id]
		if flags&vmFlagPending != 0 {
			return false // scheduled or retrying arrival
		}
		if c.vmHost[id] < 0 {
			continue // departed or never-arriving: AdvanceRound skips it
		}
		if d := c.vmDepart[id]; d >= 0 && int(d) < to {
			return false // departure fires inside the span
		}
		// Demand constancy, served from the certificate cache when a
		// previously proven window covers the query. Certified windows share
		// the anchor transitively (from lies inside or at the start of the
		// cached window), so containment is sufficient.
		if int(c.vmQuietFrom[id]) <= from && to <= int(c.vmQuietUntil[id]) && c.vmQuietUntil[id] > 0 {
			continue
		}
		nc := c.workload.NextChange(id, from, to)
		c.vmQuietFrom[id] = int32(from)
		c.vmQuietUntil[id] = int32(nc)
		if nc < to {
			return false
		}
	}
	return true
}

// AdvanceSpan advances the cluster across the certified-quiet rounds
// [from, to) in one fused pass. It must only run after QuietSpan(from, to)
// returned true. Per-VM running averages replay their k := to-from updates
// register-exactly (float division is not foldable); time and energy
// accumulators replay k individual additions for the same reason. The per-PM
// demand sums are folded once from the final per-VM values — exactly what
// the last sequential AdvanceRound's from-scratch rebuild would produce.
func (c *Cluster) AdvanceSpan(from, to int) {
	k := to - from
	if k <= 0 {
		return
	}
	c.round = to - 1
	// No stepLifecycle: QuietSpan proved no arrival or departure is due.
	par.ForChunks(len(c.VMs), vmChunk, c.Workers, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			if c.vmHost[id] < 0 {
				continue
			}
			cur := c.vmCur[id] // constant across the span, per the certificate
			avg := c.vmAvg[id]
			n := float64(c.vmCount[id])
			for j := 0; j < k; j++ {
				for res := 0; res < NumResources; res++ {
					avg[res] = (n*avg[res] + cur[res]) / (n + 1)
				}
				n++
			}
			c.vmAvg[id] = avg
			c.vmCount[id] += int32(k)
			reqAdd := cur[CPU] * c.vmCap[id][CPU] * c.RoundSeconds
			for j := 0; j < k; j++ {
				c.vmRequested[id] += reqAdd
			}
		}
	})
	par.ForChunks(len(c.PMs), pmChunk, c.Workers, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			var curSum, avgSum Vec
			for _, id := range c.pmVMs[p] {
				cur, avg, cp := c.vmCur[id], c.vmAvg[id], c.vmCap[id]
				curSum = curSum.Add(Vec{cur[CPU] * cp[CPU], cur[Mem] * cp[Mem]})
				avgSum = avgSum.Add(Vec{avg[CPU] * cp[CPU], avg[Mem] * cp[Mem]})
			}
			c.pmCurSum[p] = curSum
			c.pmAvgSum[p] = avgSum
			if !c.pmOn(p) {
				continue
			}
			pm := c.PMs[p]
			cpuU := curSum.Div(pm.Spec.Capacity)[CPU]
			over := cpuU >= 1
			if over {
				cpuU = 1
			}
			eAdd := (pm.Spec.PowerIdleW + (pm.Spec.PowerMaxW-pm.Spec.PowerIdleW)*cpuU) * c.RoundSeconds
			for j := 0; j < k; j++ {
				c.pmActiveSec[p] += c.RoundSeconds
				if over {
					c.pmOverloadSec[p] += c.RoundSeconds
				}
				c.pmEnergyJ[p] += eAdd
			}
		}
	})
}
