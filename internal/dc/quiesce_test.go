package dc

import (
	"testing"

	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/trace"
)

// mustStepWorkload builds a workload constant everywhere except VM 0, whose
// demand steps up at round changeAt.
func mustStepWorkload(t *testing.T, vms, rounds, changeAt int) *trace.Set {
	t.Helper()
	var b []byte
	b = append(b, []byte("vm,round,cpu,mem\n")...)
	for vm := 0; vm < vms; vm++ {
		for r := 0; r < rounds; r++ {
			v := 0.3
			if vm == 0 && r >= changeAt {
				v = 0.5
			}
			b = appendRow(b, vm, r, v, v)
		}
	}
	set, err := trace.LoadCSV(bytesReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestQuietSpanDemandChange(t *testing.T) {
	set := mustStepWorkload(t, 8, 20, 12)
	c, err := New(Config{PMs: 4, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	c.PlaceRandom(rng.Intn)
	c.AdvanceRound(0)
	if !c.QuietSpan(1, 12) {
		t.Fatal("window before the step must certify quiet")
	}
	if c.QuietSpan(1, 13) {
		t.Fatal("window containing the step must not certify")
	}
	// The certificate cache must not leak the short window's verdict into
	// the longer one (and vice versa on re-probe).
	if !c.QuietSpan(1, 12) {
		t.Fatal("re-probe of the quiet window flipped after a failed probe")
	}
	// From inside the stepped tail the demand is constant again.
	for r := 1; r <= 12; r++ {
		c.AdvanceRound(r)
	}
	if !c.QuietSpan(13, 20) {
		t.Fatal("post-step tail must certify quiet")
	}
}

func TestQuietSpanReservationBlocks(t *testing.T) {
	c := newTestCluster(t, 4, 8, 0.3, 0.3)
	c.AdvanceRound(0)
	if !c.QuietSpan(1, 10) {
		t.Fatal("constant workload must certify quiet")
	}
	var target *PM
	for _, pm := range c.PMs {
		if pm.On() {
			target = pm
			break
		}
	}
	if err := c.Reserve(target, 42, Vec{0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
	if c.QuietSpan(1, 10) {
		t.Fatal("in-flight reservation must block certification")
	}
	if !c.ReleaseReservation(target, 42) {
		t.Fatal("reservation 42 should have been open")
	}
	if !c.QuietSpan(1, 10) {
		t.Fatal("released reservation must unblock certification")
	}
}

// TestAdvanceSpanMatchesAdvanceRound pins the fused span advance
// bit-identical to the per-round path over a certified-quiet window: every
// running average, counter, and energy/time accumulator must match exactly.
func TestAdvanceSpanMatchesAdvanceRound(t *testing.T) {
	build := func() *Cluster {
		set := mustSyntheticConst(t, 16, 10, 0.37, 0.29)
		c, err := New(Config{PMs: 6, Workload: set})
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(11)
		c.PlaceRandom(rng.Intn)
		c.AdvanceRound(0)
		return c
	}
	const to = 9
	seq, fused := build(), build()
	for r := 1; r < to; r++ {
		seq.AdvanceRound(r)
	}
	if !fused.QuietSpan(1, to) {
		t.Fatal("constant workload must certify quiet")
	}
	fused.AdvanceSpan(1, to)

	if seq.round != fused.round {
		t.Fatalf("round: seq %d, fused %d", seq.round, fused.round)
	}
	for id := range seq.VMs {
		if seq.vmAvg[id] != fused.vmAvg[id] {
			t.Fatalf("vm %d avg: seq %v, fused %v", id, seq.vmAvg[id], fused.vmAvg[id])
		}
		if seq.vmCount[id] != fused.vmCount[id] {
			t.Fatalf("vm %d count: seq %d, fused %d", id, seq.vmCount[id], fused.vmCount[id])
		}
		if seq.vmRequested[id] != fused.vmRequested[id] {
			t.Fatalf("vm %d requested: seq %v, fused %v", id, seq.vmRequested[id], fused.vmRequested[id])
		}
	}
	for p := range seq.PMs {
		if seq.pmCurSum[p] != fused.pmCurSum[p] || seq.pmAvgSum[p] != fused.pmAvgSum[p] {
			t.Fatalf("pm %d demand sums diverged", p)
		}
		if seq.pmEnergyJ[p] != fused.pmEnergyJ[p] {
			t.Fatalf("pm %d energy: seq %v, fused %v", p, seq.pmEnergyJ[p], fused.pmEnergyJ[p])
		}
		if seq.pmActiveSec[p] != fused.pmActiveSec[p] || seq.pmOverloadSec[p] != fused.pmOverloadSec[p] {
			t.Fatalf("pm %d time accounting diverged", p)
		}
	}
	if err := seq.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := fused.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
