package dc

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"testing"
	"testing/quick"

	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/trace"
)

func appendRow(b []byte, vm, r int, cpu, mem float64) []byte {
	return append(b, []byte(fmt.Sprintf("%d,%d,%g,%g\n", vm, r, cpu, mem))...)
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

// mustSyntheticConst builds a workload where every VM demands the same
// fractions every round, via the CSV path to keep trace.Set opaque.
func mustSyntheticConst(t *testing.T, vms, rounds int, cpu, mem float64) *trace.Set {
	t.Helper()
	var b []byte
	b = append(b, []byte("vm,round,cpu,mem\n")...)
	for vm := 0; vm < vms; vm++ {
		for r := 0; r < rounds; r++ {
			b = appendRow(b, vm, r, cpu, mem)
		}
	}
	set, err := trace.LoadCSV(bytesReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func newTestCluster(t *testing.T, pms, vms int, cpu, mem float64) *Cluster {
	t.Helper()
	set := mustSyntheticConst(t, vms, 10, cpu, mem)
	c, err := New(Config{PMs: pms, Workload: set, LogMigrations: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	c.PlaceRandom(rng.Intn)
	return c
}

func TestNewValidation(t *testing.T) {
	set := mustSyntheticConst(t, 2, 2, 0.5, 0.5)
	if _, err := New(Config{PMs: 0, Workload: set}); err == nil {
		t.Fatal("expected error for zero PMs")
	}
	if _, err := New(Config{PMs: 2}); err == nil {
		t.Fatal("expected error for missing workload")
	}
}

func TestNewDefaults(t *testing.T) {
	set := mustSyntheticConst(t, 2, 2, 0.5, 0.5)
	c, err := New(Config{PMs: 2, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	if c.PMs[0].Spec.Name != HPProLiantML110G5.Name {
		t.Fatal("PM spec should default to the paper's server")
	}
	if c.VMs[0].Spec.Name != EC2Micro.Name {
		t.Fatal("VM spec should default to EC2 micro")
	}
	if c.RoundSeconds != 120 {
		t.Fatalf("RoundSeconds = %g", c.RoundSeconds)
	}
}

func TestPlaceRandomPlacesEveryVM(t *testing.T) {
	c := newTestCluster(t, 10, 30, 0.3, 0.3)
	for _, vm := range c.VMs {
		if vm.Host() < 0 {
			t.Fatalf("VM %d unplaced", vm.ID)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceRandomRespectsAllocationWhenFeasible(t *testing.T) {
	// 10 PMs x 5 nominal VM slots = 50 slots; 30 VMs easily fit.
	c := newTestCluster(t, 10, 30, 0.3, 0.3)
	for _, pm := range c.PMs {
		var alloc Vec
		for _, id := range pm.VMIDs() {
			alloc = alloc.Add(c.VMs[id].Spec.Capacity)
		}
		if !alloc.FitsWithin(pm.Spec.Capacity) {
			t.Fatalf("PM %d over-allocated: %v", pm.ID, alloc)
		}
	}
}

func TestPlaceRandomDeterministic(t *testing.T) {
	hosts := func(seed uint64) []int {
		set := mustSyntheticConst(t, 20, 2, 0.2, 0.2)
		c, _ := New(Config{PMs: 8, Workload: set})
		rng := sim.NewRNG(seed)
		c.PlaceRandom(rng.Intn)
		out := make([]int, len(c.VMs))
		for i, vm := range c.VMs {
			out[i] = vm.Host()
		}
		return out
	}
	a, b := hosts(5), hosts(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("placement not deterministic for equal seeds")
		}
	}
}

func TestUtilizationAccounting(t *testing.T) {
	// 1 PM, 2 VMs at 50% CPU each: 2*0.5*500/2660 CPU utilisation.
	c := newTestCluster(t, 1, 2, 0.5, 0.25)
	u := c.CurUtil(c.PMs[0])
	wantCPU := 2 * 0.5 * 500 / 2660
	wantMem := 2 * 0.25 * 613 / 4096
	if math.Abs(u[CPU]-wantCPU) > 1e-9 || math.Abs(u[Mem]-wantMem) > 1e-9 {
		t.Fatalf("util %v, want (%g, %g)", u, wantCPU, wantMem)
	}
	// Average equals current for constant demand.
	if a := c.AvgUtil(c.PMs[0]); math.Abs(a[CPU]-wantCPU) > 1e-9 {
		t.Fatalf("avg util %v", a)
	}
}

func TestRunningAverage(t *testing.T) {
	// Demand 0.2 at round 0 (seeded), then rounds with varying demand;
	// verify the {c,v} running-average recurrence.
	var b []byte
	b = append(b, []byte("vm,round,cpu,mem\n")...)
	demands := []float64{0.2, 0.4, 0.6, 0.8}
	for r, d := range demands {
		b = appendRow(b, 0, r, d, d)
	}
	set, err := trace.LoadCSV(bytesReader(b))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{PMs: 1, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	c.PlaceRandom(rng.Intn)
	// After New, count=1 with avg = demand(0) = 0.2.
	vm := c.VMs[0]
	if math.Abs(vm.AvgDemand()[CPU]-0.2) > 1e-12 {
		t.Fatalf("initial avg %v", vm.AvgDemand())
	}
	c.AdvanceRound(1) // sees 0.4: avg = (0.2+0.4)/2 = 0.3
	if math.Abs(vm.AvgDemand()[CPU]-0.3) > 1e-12 {
		t.Fatalf("avg after r1 = %v", vm.AvgDemand())
	}
	c.AdvanceRound(2) // sees 0.6: avg = (0.2+0.4+0.6)/3 = 0.4
	if math.Abs(vm.AvgDemand()[CPU]-0.4) > 1e-12 {
		t.Fatalf("avg after r2 = %v", vm.AvgDemand())
	}
	if math.Abs(vm.CurDemand()[CPU]-0.6) > 1e-12 {
		t.Fatalf("cur after r2 = %v", vm.CurDemand())
	}
}

func TestOverloadDetection(t *testing.T) {
	// 6 VMs at 100% CPU on one PM: 6*500 = 3000 > 2660.
	c := newTestCluster(t, 1, 6, 1.0, 0.2)
	if !c.Overloaded(c.PMs[0]) {
		t.Fatalf("PM should be overloaded: util %v", c.CurUtil(c.PMs[0]))
	}
	if c.OverloadedPMs() != 1 {
		t.Fatal("OverloadedPMs should be 1")
	}
	c2 := newTestCluster(t, 2, 2, 0.5, 0.2)
	for _, pm := range c2.PMs {
		if c2.Overloaded(pm) {
			t.Fatal("lightly loaded PM flagged overloaded")
		}
	}
}

func TestFreeCurAndFitsCur(t *testing.T) {
	c := newTestCluster(t, 2, 1, 0.5, 0.5)
	vm := c.VMs[0]
	src := c.PMs[vm.Host()]
	dst := c.PMs[1-vm.Host()]
	if !c.FitsCur(vm, dst) {
		t.Fatal("VM should fit empty PM")
	}
	free := c.FreeCur(src)
	if free[CPU] >= src.Spec.Capacity[CPU] {
		t.Fatal("free capacity should be reduced by the hosted VM")
	}
}

func TestMigrate(t *testing.T) {
	c := newTestCluster(t, 2, 1, 0.5, 0.5)
	vm := c.VMs[0]
	src := c.PMs[vm.Host()]
	dst := c.PMs[1-vm.Host()]
	if err := c.Migrate(vm, dst); err != nil {
		t.Fatal(err)
	}
	if vm.Host() != dst.ID || src.NumVMs() != 0 || dst.NumVMs() != 1 {
		t.Fatal("migration did not move the VM")
	}
	if vm.MigrationCount() != 1 || c.Migrations != 1 {
		t.Fatal("migration counters not updated")
	}
	if c.MigrationEnergyJ <= 0 {
		t.Fatal("migration energy not accounted")
	}
	if len(c.MigrationLog()) != 1 {
		t.Fatal("migration log not appended")
	}
	m := c.MigrationLog()[0]
	// tau = memMB / bandwidth = 0.5*613/1250.
	wantTau := 0.5 * 613 / 1250
	if math.Abs(m.Seconds-wantTau) > 1e-9 {
		t.Fatalf("tau = %g, want %g", m.Seconds, wantTau)
	}
	// Eq. 3 with 10% CPU overhead on both homogeneous endpoints.
	wantE := 2 * (135 - 93) * 0.10 * wantTau
	if math.Abs(m.EnergyJ-wantE) > 1e-9 {
		t.Fatalf("energy = %g, want %g", m.EnergyJ, wantE)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateErrors(t *testing.T) {
	c := newTestCluster(t, 3, 1, 0.5, 0.5)
	vm := c.VMs[0]
	cur := c.PMs[vm.Host()]
	if err := c.Migrate(vm, cur); err == nil {
		t.Fatal("expected error migrating to same PM")
	}
	var other *PM
	for _, pm := range c.PMs {
		if pm.ID != vm.Host() && pm.NumVMs() == 0 {
			other = pm
		}
	}
	if err := c.SetPMOn(other, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Migrate(vm, other); err == nil {
		t.Fatal("expected error migrating to powered-off PM")
	}
}

func TestMigrateUpdatesSLALM(t *testing.T) {
	c := newTestCluster(t, 2, 1, 0.8, 0.5)
	vm := c.VMs[0]
	c.AdvanceRound(1) // accrue requested CPU
	before := vm.DegradationRatio()
	if err := c.Migrate(vm, c.PMs[1-vm.Host()]); err != nil {
		t.Fatal(err)
	}
	if vm.DegradationRatio() <= before {
		t.Fatal("migration should increase degradation ratio")
	}
}

func TestSetPMOnGuard(t *testing.T) {
	c := newTestCluster(t, 1, 1, 0.5, 0.5)
	if err := c.SetPMOn(c.PMs[0], false); err == nil {
		t.Fatal("expected error switching off a PM hosting VMs")
	}
	c2 := newTestCluster(t, 2, 1, 0.5, 0.5)
	var empty *PM
	for _, pm := range c2.PMs {
		if pm.NumVMs() == 0 {
			empty = pm
		}
	}
	if err := c2.SetPMOn(empty, false); err != nil {
		t.Fatal(err)
	}
	if c2.ActivePMs() != 1 {
		t.Fatalf("ActivePMs = %d", c2.ActivePMs())
	}
}

func TestAdvanceRoundAccounting(t *testing.T) {
	// Non-overloaded PM accrues active time and energy, no overload time.
	c := newTestCluster(t, 1, 2, 0.5, 0.2)
	c.AdvanceRound(1)
	pm := c.PMs[0]
	if pm.ActiveSeconds() != 120 {
		t.Fatalf("active seconds %g", pm.ActiveSeconds())
	}
	if pm.OverloadSeconds() != 0 {
		t.Fatal("no overload expected")
	}
	if pm.EnergyJ() <= 93*120 {
		t.Fatalf("energy %g should exceed idle floor", pm.EnergyJ())
	}
	// Overloaded PM accrues overload time; energy capped at max power.
	c2 := newTestCluster(t, 1, 6, 1.0, 0.2)
	c2.AdvanceRound(1)
	pm2 := c2.PMs[0]
	if pm2.OverloadSeconds() != 120 {
		t.Fatalf("overload seconds %g", pm2.OverloadSeconds())
	}
	if pm2.EnergyJ() > 135*120+1e-9 {
		t.Fatalf("energy %g exceeds max-power bound", pm2.EnergyJ())
	}
}

func TestCachedSumsMatchRecomputation(t *testing.T) {
	// Property: after arbitrary migrations and round advances, the cached
	// CurUtil matches a from-scratch recomputation.
	set, err := trace.Generate(trace.DefaultGenConfig(30, 20, 3))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{PMs: 8, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(9)
	c.PlaceRandom(rng.Intn)

	f := func(steps []uint16) bool {
		for i, s := range steps {
			if i%3 == 0 {
				c.AdvanceRound(int(s) % 20)
				continue
			}
			vm := c.VMs[int(s)%len(c.VMs)]
			dst := c.PMs[int(s/7)%len(c.PMs)]
			if dst.ID != vm.Host() {
				_ = c.Migrate(vm, dst)
			}
		}
		for _, pm := range c.PMs {
			var sum Vec
			for _, id := range pm.VMIDs() {
				sum = sum.Add(c.VMs[id].CurAbs())
			}
			got := c.CurUtil(pm)
			want := sum.Div(pm.Spec.Capacity)
			for r := 0; r < NumResources; r++ {
				if math.Abs(got[r]-want[r]) > 1e-6 {
					return false
				}
			}
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	c := newTestCluster(t, 2, 2, 0.5, 0.5)
	c.vmHost[0] = 1 - c.vmHost[0] // corrupt
	if err := c.CheckInvariants(); err == nil {
		t.Fatal("expected invariant violation")
	}
}

func TestDegradationRatioZeroWhenNoRequest(t *testing.T) {
	c := newTestCluster(t, 2, 1, 0.0, 0.5)
	if c.VMs[0].DegradationRatio() != 0 {
		t.Fatal("zero requested CPU should yield zero ratio")
	}
}

// TestAdvanceRoundWorkerCountBitEquivalence drives two identically-seeded
// clusters through the same rounds, one sequential and one with 8 explicit
// workers, and requires every float accumulator to match bit-for-bit — the
// determinism contract of the fork-join AdvanceRound.
func TestAdvanceRoundWorkerCountBitEquivalence(t *testing.T) {
	build := func(workers int) *Cluster {
		set, err := trace.Generate(trace.DefaultGenConfig(40, 120, 3))
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(Config{PMs: 40, Workload: set})
		if err != nil {
			t.Fatal(err)
		}
		c.Workers = workers
		rng := sim.NewRNG(11)
		c.PlaceRandom(rng.Intn)
		return c
	}
	a, b := build(1), build(8)
	bits := math.Float64bits
	for r := 0; r < 60; r++ {
		a.AdvanceRound(r)
		b.AdvanceRound(r)
	}
	if got, want := b.ActivePMs(), a.ActivePMs(); got != want {
		t.Fatalf("ActivePMs: %d vs %d", got, want)
	}
	if got, want := b.OverloadedPMs(), a.OverloadedPMs(); got != want {
		t.Fatalf("OverloadedPMs: %d vs %d", got, want)
	}
	for i := range a.PMs {
		for res := 0; res < NumResources; res++ {
			if bits(a.pmCurSum[i][res]) != bits(b.pmCurSum[i][res]) {
				t.Fatalf("PM %d curSum[%d] diverges: %x vs %x", i, res, bits(a.pmCurSum[i][res]), bits(b.pmCurSum[i][res]))
			}
			if bits(a.pmAvgSum[i][res]) != bits(b.pmAvgSum[i][res]) {
				t.Fatalf("PM %d avgSum[%d] diverges", i, res)
			}
		}
		if bits(a.pmEnergyJ[i]) != bits(b.pmEnergyJ[i]) {
			t.Fatalf("PM %d energyJ diverges: %x vs %x", i, bits(a.pmEnergyJ[i]), bits(b.pmEnergyJ[i]))
		}
		if a.pmActiveSec[i] != b.pmActiveSec[i] || a.pmOverloadSec[i] != b.pmOverloadSec[i] {
			t.Fatalf("PM %d time accounting diverges", i)
		}
	}
	for i := range a.VMs {
		for res := 0; res < NumResources; res++ {
			if bits(a.vmAvg[i][res]) != bits(b.vmAvg[i][res]) {
				t.Fatalf("VM %d avg[%d] diverges", i, res)
			}
		}
		if bits(a.vmRequested[i]) != bits(b.vmRequested[i]) {
			t.Fatalf("VM %d requestedCPU diverges", i)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckInvariantsParallelDetectsCorruption(t *testing.T) {
	// The chunked scan must still catch a violation planted anywhere,
	// including in the last chunk of a cluster spanning several chunks.
	set := mustSyntheticConst(t, 10, 2, 0.1, 0.1)
	c, err := New(Config{PMs: 3 * pmChunk, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(5)
	c.PlaceRandom(rng.Intn)
	c.Workers = 8
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	vm := c.VMs[0]
	c.hostedRemove(vm.Host(), int32(vm.ID))
	c.hostedInsert(len(c.PMs)-1, int32(vm.ID))
	if err := c.CheckInvariants(); err == nil {
		t.Fatal("corruption in last chunk went undetected")
	}
}
