package dc

import "fmt"

// Capacity reservations support in-flight migrations for message-passing
// consolidation protocols: when a target PM accepts a migration offer it
// reserves the VM's demand so that concurrent offers from other senders are
// admitted against the remaining headroom, not against capacity that is
// already spoken for. The reservation is released when the sender's commit
// (or abort) arrives, or when the target's hold timer expires because the
// reply was lost. Reservations are keyed by the offer token, so duplicate
// messages from retries are idempotent.
//
// Reservations live in one cluster-level map keyed by (PM, token) — at any
// instant only the PMs with in-flight offers hold any, so per-PM maps would
// waste a header per machine. The per-PM aggregate demand and count are
// cached in flat slices.

// Reserve sets aside demand d on pm under token. Reserving on a powered-off
// PM or reusing an open token is rejected.
func (c *Cluster) Reserve(pm *PM, token uint64, d Vec) error {
	if !c.pmOn(pm.ID) {
		return fmt.Errorf("dc: cannot reserve on powered-off PM %d", pm.ID)
	}
	k := resKey{pm: int32(pm.ID), token: token}
	if _, open := c.reservations[k]; open {
		return fmt.Errorf("dc: PM %d already holds reservation %d", pm.ID, token)
	}
	if c.reservations == nil {
		c.reservations = make(map[resKey]Vec)
	}
	c.reservations[k] = d
	c.pmResSum[pm.ID] = c.pmResSum[pm.ID].Add(d)
	c.pmResCount[pm.ID]++
	return nil
}

// ReleaseReservation drops the reservation held under token and reports
// whether it was open. Releasing an unknown token is a no-op (false), so
// commit, abort, and timeout may race without double-releasing.
func (c *Cluster) ReleaseReservation(pm *PM, token uint64) bool {
	k := resKey{pm: int32(pm.ID), token: token}
	d, open := c.reservations[k]
	if !open {
		return false
	}
	delete(c.reservations, k)
	c.pmResSum[pm.ID] = c.pmResSum[pm.ID].Sub(d)
	c.pmResCount[pm.ID]--
	if c.pmResCount[pm.ID] == 0 {
		// Reset the cache exactly at zero so float cancellation error
		// cannot accumulate across reserve/release cycles.
		c.pmResSum[pm.ID] = Vec{}
	}
	return true
}

// ReleaseAllReservations drops every reservation pm holds and returns how
// many were open. A crashing PM calls this so capacity promised to in-flight
// migrations is not left spoken-for on a dead machine: the sender-side
// protocol state recovers via its own timeouts, and a later commit or
// timeout release for a dropped token is an idempotent no-op.
func (c *Cluster) ReleaseAllReservations(pm *PM) int {
	n := int(c.pmResCount[pm.ID])
	if n == 0 {
		return 0
	}
	for k := range c.reservations {
		if k.pm == int32(pm.ID) {
			delete(c.reservations, k)
		}
	}
	c.pmResSum[pm.ID] = Vec{}
	c.pmResCount[pm.ID] = 0
	return n
}

// Reserved returns pm's aggregate reserved demand.
func (c *Cluster) Reserved(pm *PM) Vec { return c.pmResSum[pm.ID] }

// OpenReservations counts reservations currently held across the cluster.
// After a run drains, a leak-free protocol leaves this at zero.
func (c *Cluster) OpenReservations() int {
	return len(c.reservations)
}

// FreeCurReserved returns the remaining absolute capacity under current
// demand with open reservations subtracted, clamped at zero.
func (c *Cluster) FreeCurReserved(pm *PM) Vec {
	free := c.FreeCur(pm).Sub(c.pmResSum[pm.ID])
	for r := 0; r < NumResources; r++ {
		if free[r] < 0 {
			free[r] = 0
		}
	}
	return free
}

// FitsCurReserved reports whether absolute demand d fits in pm's free
// capacity after accounting for open reservations — the admission check a
// target runs on an incoming migration offer.
func (c *Cluster) FitsCurReserved(d Vec, pm *PM) bool {
	return d.FitsWithin(c.FreeCurReserved(pm))
}
