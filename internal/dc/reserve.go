package dc

import "fmt"

// Capacity reservations support in-flight migrations for message-passing
// consolidation protocols: when a target PM accepts a migration offer it
// reserves the VM's demand so that concurrent offers from other senders are
// admitted against the remaining headroom, not against capacity that is
// already spoken for. The reservation is released when the sender's commit
// (or abort) arrives, or when the target's hold timer expires because the
// reply was lost. Reservations are keyed by the offer token, so duplicate
// messages from retries are idempotent.

// Reserve sets aside demand d on pm under token. Reserving on a powered-off
// PM or reusing an open token is rejected.
func (c *Cluster) Reserve(pm *PM, token uint64, d Vec) error {
	if !pm.on {
		return fmt.Errorf("dc: cannot reserve on powered-off PM %d", pm.ID)
	}
	if _, open := pm.reserved[token]; open {
		return fmt.Errorf("dc: PM %d already holds reservation %d", pm.ID, token)
	}
	if pm.reserved == nil {
		pm.reserved = make(map[uint64]Vec)
	}
	pm.reserved[token] = d
	pm.reservedSum = pm.reservedSum.Add(d)
	return nil
}

// ReleaseReservation drops the reservation held under token and reports
// whether it was open. Releasing an unknown token is a no-op (false), so
// commit, abort, and timeout may race without double-releasing.
func (c *Cluster) ReleaseReservation(pm *PM, token uint64) bool {
	d, open := pm.reserved[token]
	if !open {
		return false
	}
	delete(pm.reserved, token)
	pm.reservedSum = pm.reservedSum.Sub(d)
	if len(pm.reserved) == 0 {
		pm.reservedSum = Vec{}
	}
	return true
}

// Reserved returns pm's aggregate reserved demand.
func (c *Cluster) Reserved(pm *PM) Vec { return pm.reservedSum }

// OpenReservations counts reservations currently held across the cluster.
// After a run drains, a leak-free protocol leaves this at zero.
func (c *Cluster) OpenReservations() int {
	n := 0
	for _, pm := range c.PMs {
		n += len(pm.reserved)
	}
	return n
}

// FreeCurReserved returns the remaining absolute capacity under current
// demand with open reservations subtracted, clamped at zero.
func (c *Cluster) FreeCurReserved(pm *PM) Vec {
	free := c.FreeCur(pm).Sub(pm.reservedSum)
	for r := 0; r < NumResources; r++ {
		if free[r] < 0 {
			free[r] = 0
		}
	}
	return free
}

// FitsCurReserved reports whether absolute demand d fits in pm's free
// capacity after accounting for open reservations — the admission check a
// target runs on an incoming migration offer.
func (c *Cluster) FitsCurReserved(d Vec, pm *PM) bool {
	return d.FitsWithin(c.FreeCurReserved(pm))
}
