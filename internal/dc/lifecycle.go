package dc

import "fmt"

// VM lifecycle: by default every VM exists for the whole run (the paper's
// setup). SetLifecycle gives a VM an arrival and departure round instead,
// enabling the dynamic-population experiments that motivate the paper's
// re-learning trigger ("if the arrival and departure rates of VMs exceed a
// threshold"). An arriving VM is placed by first-fit over nominal
// allocation using the cluster's placement randomness; a departing VM is
// detached and never returns.

// SetLifecycle schedules VM id to arrive at round arrive and depart at
// round depart (depart < 0 means never). It must be called before the
// simulation starts; VMs with arrive > 0 are skipped by PlaceRandom and
// join the cluster when their round comes.
func (c *Cluster) SetLifecycle(id, arrive, depart int) error {
	if id < 0 || id >= len(c.VMs) {
		return fmt.Errorf("dc: no VM %d", id)
	}
	if arrive < 0 || (depart >= 0 && depart <= arrive) {
		return fmt.Errorf("dc: invalid lifecycle [%d, %d)", arrive, depart)
	}
	if c.vmHost[id] >= 0 {
		return fmt.Errorf("dc: VM %d already placed; set lifecycles before placement", id)
	}
	c.vmArrive[id] = int32(arrive)
	c.vmDepart[id] = int32(depart)
	return nil
}

// Present reports whether the VM is currently part of the cluster (arrived
// and not yet departed).
func (v *VM) Present() bool { return v.c.vmHost[v.ID] >= 0 }

// Departed reports whether the VM has left the cluster for good.
func (v *VM) Departed() bool { return v.c.vmFlags[v.ID]&vmFlagDeparted != 0 }

// PresentVMs returns the number of VMs currently placed.
func (c *Cluster) PresentVMs() int {
	n := 0
	for _, h := range c.vmHost {
		if h >= 0 {
			n++
		}
	}
	return n
}

// stepLifecycle performs arrivals and departures for round r. Departures
// run first so freed capacity is available to arrivals in the same round.
func (c *Cluster) stepLifecycle(r int) {
	for id := range c.VMs {
		if c.vmHost[id] >= 0 && c.vmDepart[id] >= 0 && r >= int(c.vmDepart[id]) {
			c.detach(c.VMs[id], c.PMs[c.vmHost[id]])
			c.vmHost[id] = -1
			c.vmFlags[id] |= vmFlagDeparted
		}
	}
	for id := range c.VMs {
		if c.vmHost[id] < 0 && c.vmFlags[id]&vmFlagDeparted == 0 && r >= int(c.vmArrive[id]) && c.vmArrive[id] > 0 {
			// The current demand tracks the workload while the VM waits for
			// a slot, but monitoring restarts only once per arrival: a
			// placement retry in a later round must not wipe the running
			// average back to a single sample.
			sample := c.workload.At(id, r)
			c.vmCur[id] = Vec{sample.CPU, sample.Mem}
			if c.vmFlags[id]&vmFlagSeeded == 0 {
				c.vmAvg[id] = c.vmCur[id]
				c.vmCount[id] = 1
				c.vmFlags[id] |= vmFlagSeeded
			}
			if !c.placeArrival(c.VMs[id]) {
				c.FailedPlacements++
			}
		}
	}
}

// placeArrival places a newly arrived VM: random-first over powered PMs
// with nominal-allocation headroom, falling back to first-fit, then to
// stuffing — mirroring PlaceRandom's policy for the initial population. It
// reports whether the VM found a host; false means no PM is powered and the
// arrival retries next round.
func (c *Cluster) placeArrival(vm *VM) bool {
	intn := c.placeIntn
	if intn == nil {
		intn = func(n int) int { return int(vm.ID) % n }
	}
	allocOf := func(p int) Vec {
		var alloc Vec
		for _, id := range c.pmVMs[p] {
			alloc = alloc.Add(c.vmCap[id])
		}
		return alloc
	}
	for attempt := 0; attempt < 2*len(c.PMs); attempt++ {
		p := intn(len(c.PMs))
		pm := c.PMs[p]
		if !c.pmOn(p) {
			continue
		}
		if allocOf(p).Add(vm.Spec.Capacity).FitsWithin(pm.Spec.Capacity) {
			c.attach(vm, pm)
			return true
		}
	}
	start := intn(len(c.PMs))
	for off := 0; off < len(c.PMs); off++ {
		p := (start + off) % len(c.PMs)
		if !c.pmOn(p) {
			continue
		}
		if allocOf(p).Add(vm.Spec.Capacity).FitsWithin(c.PMs[p].Spec.Capacity) {
			c.attach(vm, c.PMs[p])
			return true
		}
	}
	// Over-subscribed: stuff onto any powered PM.
	for off := 0; off < len(c.PMs); off++ {
		p := (start + off) % len(c.PMs)
		if c.pmOn(p) {
			c.attach(vm, c.PMs[p])
			return true
		}
	}
	return false
}
