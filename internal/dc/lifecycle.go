package dc

import "fmt"

// VM lifecycle: by default every VM exists for the whole run (the paper's
// setup). SetLifecycle gives a VM an arrival and departure round instead,
// enabling the dynamic-population experiments that motivate the paper's
// re-learning trigger ("if the arrival and departure rates of VMs exceed a
// threshold"). An arriving VM is placed by first-fit over nominal
// allocation using the cluster's placement randomness; a departing VM is
// detached and never returns.

// SetLifecycle schedules VM id to arrive at round arrive and depart at
// round depart (depart < 0 means never). It must be called before the
// simulation starts; VMs with arrive > 0 are skipped by PlaceRandom and
// join the cluster when their round comes.
func (c *Cluster) SetLifecycle(id, arrive, depart int) error {
	if id < 0 || id >= len(c.VMs) {
		return fmt.Errorf("dc: no VM %d", id)
	}
	if arrive < 0 || (depart >= 0 && depart <= arrive) {
		return fmt.Errorf("dc: invalid lifecycle [%d, %d)", arrive, depart)
	}
	vm := c.VMs[id]
	if vm.Host >= 0 {
		return fmt.Errorf("dc: VM %d already placed; set lifecycles before placement", id)
	}
	vm.arrive = arrive
	vm.depart = depart
	return nil
}

// Present reports whether the VM is currently part of the cluster (arrived
// and not yet departed).
func (v *VM) Present() bool { return v.Host >= 0 }

// Departed reports whether the VM has left the cluster for good.
func (v *VM) Departed() bool { return v.departed }

// PresentVMs returns the number of VMs currently placed.
func (c *Cluster) PresentVMs() int {
	n := 0
	for _, vm := range c.VMs {
		if vm.Present() {
			n++
		}
	}
	return n
}

// stepLifecycle performs arrivals and departures for round r. Departures
// run first so freed capacity is available to arrivals in the same round.
func (c *Cluster) stepLifecycle(r int) {
	for _, vm := range c.VMs {
		if vm.Host >= 0 && vm.depart >= 0 && r >= vm.depart {
			c.detach(vm, c.PMs[vm.Host])
			vm.Host = -1
			vm.departed = true
		}
	}
	for _, vm := range c.VMs {
		if vm.Host < 0 && !vm.departed && r >= vm.arrive && vm.arrive > 0 {
			// The current demand tracks the workload while the VM waits for
			// a slot, but monitoring restarts only once per arrival: a
			// placement retry in a later round must not wipe the running
			// average back to a single sample.
			sample := c.workload.At(vm.ID, r)
			vm.Cur = Vec{sample.CPU, sample.Mem}
			if !vm.seeded {
				vm.avg = vm.Cur
				vm.count = 1
				vm.seeded = true
			}
			if !c.placeArrival(vm) {
				c.FailedPlacements++
			}
		}
	}
}

// placeArrival places a newly arrived VM: random-first over powered PMs
// with nominal-allocation headroom, falling back to first-fit, then to
// stuffing — mirroring PlaceRandom's policy for the initial population. It
// reports whether the VM found a host; false means no PM is powered and the
// arrival retries next round.
func (c *Cluster) placeArrival(vm *VM) bool {
	intn := c.placeIntn
	if intn == nil {
		intn = func(n int) int { return int(vm.ID) % n }
	}
	allocOf := func(pm *PM) Vec {
		var alloc Vec
		for _, hosted := range pm.vms {
			alloc = alloc.Add(hosted.Spec.Capacity)
		}
		return alloc
	}
	for attempt := 0; attempt < 2*len(c.PMs); attempt++ {
		pm := c.PMs[intn(len(c.PMs))]
		if !pm.on {
			continue
		}
		if allocOf(pm).Add(vm.Spec.Capacity).FitsWithin(pm.Spec.Capacity) {
			c.attach(vm, pm)
			return true
		}
	}
	start := intn(len(c.PMs))
	for off := 0; off < len(c.PMs); off++ {
		pm := c.PMs[(start+off)%len(c.PMs)]
		if !pm.on {
			continue
		}
		if allocOf(pm).Add(vm.Spec.Capacity).FitsWithin(pm.Spec.Capacity) {
			c.attach(vm, pm)
			return true
		}
	}
	// Over-subscribed: stuff onto any powered PM.
	for off := 0; off < len(c.PMs); off++ {
		pm := c.PMs[(start+off)%len(c.PMs)]
		if pm.on {
			c.attach(vm, pm)
			return true
		}
	}
	return false
}
