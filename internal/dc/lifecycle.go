package dc

import "fmt"

// VM lifecycle: by default every VM exists for the whole run (the paper's
// setup). SetLifecycle gives a VM an arrival and departure round instead,
// enabling the dynamic-population experiments that motivate the paper's
// re-learning trigger ("if the arrival and departure rates of VMs exceed a
// threshold"). An arriving VM is placed by first-fit over nominal
// allocation using the cluster's placement randomness; a departing VM is
// detached and never returns.

// SetLifecycle schedules VM id to arrive at round arrive and depart at
// round depart (depart < 0 means never). It must be called before the
// simulation starts; VMs with arrive > 0 are skipped by PlaceRandom and
// join the cluster when their round comes.
func (c *Cluster) SetLifecycle(id, arrive, depart int) error {
	if id < 0 || id >= len(c.VMs) {
		return fmt.Errorf("dc: no VM %d", id)
	}
	if arrive < 0 || (depart >= 0 && depart <= arrive) {
		return fmt.Errorf("dc: invalid lifecycle [%d, %d)", arrive, depart)
	}
	if c.vmHost[id] >= 0 {
		return fmt.Errorf("dc: VM %d already placed; set lifecycles before placement", id)
	}
	c.vmArrive[id] = int32(arrive)
	c.vmDepart[id] = int32(depart)
	c.vmFlags[id] |= vmFlagPending
	return nil
}

// RecycleVM returns a departed VM's dense ID to service as a fresh arrival
// scheduled for round arrive (depart < 0 means never): the workload's series
// for the ID drives the "new" VM from that round on. The departed flag and
// monitoring history are cleared — a recycled ID is a different VM, so its
// running average must restart from its first observed sample. Arrivals are
// gated on the pending flag this sets, so a recycled VM arrives even at a
// round where vmArrive is 0 or in the past.
func (c *Cluster) RecycleVM(id, arrive, depart int) error {
	if id < 0 || id >= len(c.VMs) {
		return fmt.Errorf("dc: no VM %d", id)
	}
	if c.vmFlags[id]&vmFlagDeparted == 0 || c.vmHost[id] >= 0 {
		return fmt.Errorf("dc: VM %d has not departed; only departed IDs can be recycled", id)
	}
	if arrive < 0 || (depart >= 0 && depart <= arrive) {
		return fmt.Errorf("dc: invalid lifecycle [%d, %d)", arrive, depart)
	}
	c.vmArrive[id] = int32(arrive)
	c.vmDepart[id] = int32(depart)
	c.vmFlags[id] = vmFlagPending
	c.vmCur[id] = Vec{}
	c.vmAvg[id] = Vec{}
	c.vmCount[id] = 0
	return nil
}

// Present reports whether the VM is currently part of the cluster (arrived
// and not yet departed).
func (v *VM) Present() bool { return v.c.vmHost[v.ID] >= 0 }

// Departed reports whether the VM has left the cluster for good.
func (v *VM) Departed() bool { return v.c.vmFlags[v.ID]&vmFlagDeparted != 0 }

// PresentVMs returns the number of VMs currently placed.
func (c *Cluster) PresentVMs() int {
	n := 0
	for _, h := range c.vmHost {
		if h >= 0 {
			n++
		}
	}
	return n
}

// stepLifecycle performs arrivals and departures for round r. Departures
// run first so freed capacity is available to arrivals in the same round.
func (c *Cluster) stepLifecycle(r int) {
	for id := range c.VMs {
		if c.vmHost[id] >= 0 && c.vmDepart[id] >= 0 && r >= int(c.vmDepart[id]) {
			c.detach(c.VMs[id], c.PMs[c.vmHost[id]])
			c.vmHost[id] = -1
			c.vmFlags[id] |= vmFlagDeparted
		}
	}
	for id := range c.VMs {
		if c.vmHost[id] < 0 && c.vmFlags[id]&(vmFlagDeparted|vmFlagPending) == vmFlagPending && r >= int(c.vmArrive[id]) {
			// The current demand tracks the workload while the VM waits for
			// a slot, but monitoring restarts only once per arrival: a
			// placement retry in a later round must not wipe the running
			// average back to a single sample.
			sample := c.workload.At(id, r)
			c.vmCur[id] = Vec{sample.CPU, sample.Mem}
			if c.vmFlags[id]&vmFlagSeeded == 0 {
				c.vmAvg[id] = c.vmCur[id]
				c.vmCount[id] = 1
				c.vmFlags[id] |= vmFlagSeeded
			}
			if !c.placeArrival(c.VMs[id]) {
				c.FailedPlacements++
			}
		}
	}
}

// placeArrival places a newly arrived VM: random-first over powered PMs
// with nominal-allocation headroom, falling back to first-fit, then to
// stuffing — mirroring PlaceRandom's policy for the initial population. The
// allocation checks read the cluster-maintained per-PM allocation sums, so
// one arrival costs O(attempts), not O(PMs × occupancy) as the former
// re-summation of every probed PM's hosted list did.
//
// The stuffing fallback respects open reservations: capacity a target has
// promised to an in-flight migration is never handed to an arrival, so a
// message-passing protocol's accepted offer cannot be invalidated by the
// lifecycle machinery racing it. It reports whether the VM found a host;
// false means no admissible PM exists and the arrival retries next round.
func (c *Cluster) placeArrival(vm *VM) bool {
	intn := c.placeIntn
	if intn == nil {
		intn = func(n int) int { return int(vm.ID) % n }
	}
	need := vm.Spec.Capacity
	for attempt := 0; attempt < 2*len(c.PMs); attempt++ {
		p := intn(len(c.PMs))
		if !c.pmOn(p) {
			continue
		}
		if c.pmAllocSum[p].Add(need).FitsWithin(c.PMs[p].Spec.Capacity) {
			c.attach(vm, c.PMs[p])
			return true
		}
	}
	start := intn(len(c.PMs))
	for off := 0; off < len(c.PMs); off++ {
		p := (start + off) % len(c.PMs)
		if !c.pmOn(p) {
			continue
		}
		if c.pmAllocSum[p].Add(need).FitsWithin(c.PMs[p].Spec.Capacity) {
			c.attach(vm, c.PMs[p])
			return true
		}
	}
	// Over-subscribed by allocation: stuff onto a powered PM, preferring one
	// whose reservation-adjusted current headroom admits the VM's demand.
	cur := vm.CurAbs()
	for off := 0; off < len(c.PMs); off++ {
		p := (start + off) % len(c.PMs)
		if c.pmOn(p) && c.FitsCurReserved(cur, c.PMs[p]) {
			c.attach(vm, c.PMs[p])
			return true
		}
	}
	// Nothing has headroom: stuff onto a powered PM holding no reservations
	// (over-admission must stay expressible — it is how bad placement shows
	// up as SLA violation), but never onto one whose free capacity is spoken
	// for by an in-flight offer.
	for off := 0; off < len(c.PMs); off++ {
		p := (start + off) % len(c.PMs)
		if c.pmOn(p) && c.pmResCount[p] == 0 {
			c.attach(vm, c.PMs[p])
			return true
		}
	}
	return false
}
