package dc

import (
	"testing"

	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/trace"
)

func benchCluster(b *testing.B, pms, vms int) *Cluster {
	b.Helper()
	set, err := trace.Generate(trace.DefaultGenConfig(vms, 720, 1))
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(Config{PMs: pms, Workload: set})
	if err != nil {
		b.Fatal(err)
	}
	rng := sim.NewRNG(1)
	c.PlaceRandom(rng.Intn)
	return c
}

// BenchmarkAdvanceRound measures the per-round cluster bookkeeping at
// paper scale (1000 PMs, 3000 VMs): demand refresh, running averages, cached
// sums and energy accounting.
func BenchmarkAdvanceRound(b *testing.B) {
	c := benchCluster(b, 1000, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AdvanceRound(i % 720)
	}
}

func BenchmarkMigrate(b *testing.B) {
	c := benchCluster(b, 100, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := c.VMs[i%len(c.VMs)]
		dst := c.PMs[(vm.Host()+1)%len(c.PMs)]
		if err := c.Migrate(vm, dst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCurUtil(b *testing.B) {
	c := benchCluster(b, 100, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.CurUtil(c.PMs[i%100])
	}
}

func BenchmarkPlaceRandom(b *testing.B) {
	set, err := trace.Generate(trace.DefaultGenConfig(2000, 10, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := New(Config{PMs: 500, Workload: set})
		if err != nil {
			b.Fatal(err)
		}
		rng := sim.NewRNG(uint64(i))
		b.StartTimer()
		c.PlaceRandom(rng.Intn)
	}
}
