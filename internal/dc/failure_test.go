package dc

import (
	"fmt"
	"strings"
	"testing"

	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/trace"
)

func TestCrashPMEvacuatesAndReleasesReservations(t *testing.T) {
	set, err := trace.Generate(trace.DefaultGenConfig(10, 30, 3))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{PMs: 5, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	c.PlaceRandom(rng.Intn)

	victim := c.PMs[0]
	if err := c.Reserve(victim, 1, Vec{100, 100}); err != nil {
		t.Fatal(err)
	}
	if err := c.Reserve(victim, 2, Vec{50, 50}); err != nil {
		t.Fatal(err)
	}
	hosted := victim.VMIDs()

	rep, err := c.CrashPM(victim)
	if err != nil {
		t.Fatal(err)
	}
	if victim.On() {
		t.Fatal("crashed PM still powered")
	}
	if rep.ReservationsReleased != 2 {
		t.Fatalf("released %d reservations, want 2", rep.ReservationsReleased)
	}
	if c.OpenReservations() != 0 || c.Reserved(victim) != (Vec{}) {
		t.Fatal("crash left reservations open on the dead PM")
	}
	if rep.Evacuated+rep.Stranded != len(hosted) {
		t.Fatalf("evacuated %d + stranded %d != %d hosted", rep.Evacuated, rep.Stranded, len(hosted))
	}
	// 4 surviving ProLiants can absorb a fifth machine's micro VMs.
	if rep.Stranded != 0 {
		t.Fatalf("stranded %d VMs despite surviving headroom", rep.Stranded)
	}
	for _, id := range hosted {
		if h := c.VMs[id].Host(); h < 0 || h == victim.ID {
			t.Fatalf("VM %d hosted on %d after evacuating PM %d", id, h, victim.ID)
		}
	}
	if victim.NumVMs() != 0 {
		t.Fatal("dead PM still hosts VMs")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	if _, err := c.CrashPM(victim); err == nil {
		t.Fatal("crashing an already-off PM accepted")
	}
	if err := c.RecoverPM(victim); err != nil {
		t.Fatal(err)
	}
	if !victim.On() || victim.NumVMs() != 0 {
		t.Fatal("recovered PM should be powered and empty")
	}
	if err := c.RecoverPM(victim); err == nil {
		t.Fatal("recovering an already-on PM accepted")
	}
}

func TestCrashPMStrandsWithoutHeadroomAndRetries(t *testing.T) {
	set, err := trace.Generate(trace.DefaultGenConfig(4, 30, 5))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{PMs: 2, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	c.PlaceRandom(rng.Intn)

	// Consolidate everything onto PM 0 and dark the rest of the fleet, then
	// kill PM 0: every VM must strand into the arrival-retry path.
	for _, vm := range c.VMs {
		if vm.Host() != 0 {
			if err := c.Migrate(vm, c.PMs[0]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.SetPMOn(c.PMs[1], false); err != nil {
		t.Fatal(err)
	}
	rep, err := c.CrashPM(c.PMs[0])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stranded != len(c.VMs) || rep.Evacuated != 0 {
		t.Fatalf("evacuated %d / stranded %d, want 0 / %d", rep.Evacuated, rep.Stranded, len(c.VMs))
	}
	if c.FailedPlacements != int64(len(c.VMs)) {
		t.Fatalf("FailedPlacements = %d, want %d", c.FailedPlacements, len(c.VMs))
	}
	if c.PresentVMs() != 0 {
		t.Fatal("stranded VMs still present")
	}
	// Stranding keeps monitoring history: the VM survives, its host did not.
	for _, vm := range c.VMs {
		if c.vmCount[vm.ID] < 1 || c.vmFlags[vm.ID]&vmFlagSeeded == 0 {
			t.Fatalf("VM %d lost its monitoring history in the crash", vm.ID)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Power restored: the next round's arrival scan re-places every orphan.
	if err := c.SetPMOn(c.PMs[1], true); err != nil {
		t.Fatal(err)
	}
	c.AdvanceRound(1)
	if c.PresentVMs() != len(c.VMs) {
		t.Fatalf("re-placed %d of %d stranded VMs", c.PresentVMs(), len(c.VMs))
	}
	for _, vm := range c.VMs {
		if vm.Host() != 1 {
			t.Fatalf("VM %d landed on %d, only PM 1 is powered", vm.ID, vm.Host())
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecycleVMRoundZeroArrival pins the arrival-gate fix: arrivals are gated
// on the pending flag, not on vmArrive > 0, so a recycled ID scheduled with
// arrive=0 (or any past round) joins at the next round step instead of being
// silently skipped forever.
func TestRecycleVMRoundZeroArrival(t *testing.T) {
	set, err := trace.Generate(trace.DefaultGenConfig(6, 30, 9))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{PMs: 3, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RecycleVM(0, 0, -1); err == nil {
		t.Fatal("recycling a VM that never departed accepted")
	}
	if err := c.SetLifecycle(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	c.PlaceRandom(rng.Intn)
	for r := 1; r <= 3; r++ {
		c.AdvanceRound(r)
	}
	if !c.VMs[0].Departed() {
		t.Fatal("VM 0 should have departed at round 3")
	}

	if err := c.RecycleVM(0, 0, -1); err != nil {
		t.Fatal(err)
	}
	if err := c.RecycleVM(0, 5, 4); err == nil {
		t.Fatal("recycle with depart <= arrive accepted")
	}
	c.AdvanceRound(4)
	if !c.VMs[0].Present() {
		t.Fatal("recycled VM with arrive=0 never re-entered the cluster")
	}
	if c.VMs[0].Departed() {
		t.Fatal("recycled VM still flagged departed")
	}
	if c.vmCount[0] != 2 {
		// Seed at arrival (1) + the arrival round's demand sample: the old
		// VM's history is gone.
		t.Fatalf("recycled VM monitoring count = %d, want a fresh restart at 2", c.vmCount[0])
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// reservationCluster builds a 2-PM cluster from a hand-written workload: one
// VM per PM fits by allocation, a third arriving VM must take the stuffing
// path. Demands are constant so the test controls every admission check.
func reservationCluster(t *testing.T) *Cluster {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("vm,round,cpu,mem\n")
	for vm := 0; vm < 3; vm++ {
		for r := 0; r < 10; r++ {
			fmt.Fprintf(&sb, "%d,%d,0.5,0.5\n", vm, r)
		}
	}
	set, err := trace.LoadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		PMs:      2,
		PMSpec:   PMSpec{Name: "test", Capacity: Vec{1000, 1000}, NetBandwidthMBps: 100, PowerIdleW: 50, PowerMaxW: 100},
		VMSpec:   VMSpec{Name: "test", Capacity: Vec{600, 600}},
		Workload: set,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPlaceArrivalRespectsReservations pins the stuffing-fallback fix: an
// arrival must never consume capacity a target PM has promised to an
// in-flight migration.
func TestPlaceArrivalRespectsReservations(t *testing.T) {
	c := reservationCluster(t)
	if err := c.SetLifecycle(2, 1, -1); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1)
	c.PlaceRandom(rng.Intn)
	if c.PresentVMs() != 2 {
		t.Fatalf("placed %d initial VMs, want 2", c.PresentVMs())
	}
	// Each PM hosts one 600-cap VM; a second never fits by allocation
	// (1200 > 1000), so VM 2's arrival must stuff by current demand
	// (300 absolute against 700 free). Reserving PM 0's remaining headroom
	// forces the arrival onto PM 1.
	host0 := c.VMs[0].Host()
	other := 1 - host0
	if err := c.Reserve(c.PMs[host0], 7, Vec{700, 700}); err != nil {
		t.Fatal(err)
	}
	if err := c.Reserve(c.PMs[other], 8, Vec{700, 700}); err != nil {
		t.Fatal(err)
	}
	// Both PMs fully reserved: the arrival must fail — the zero-reservation
	// stuffing fallback may not touch a PM with capacity spoken for.
	c.AdvanceRound(1)
	if c.VMs[2].Present() {
		t.Fatalf("arrival landed on PM %d despite full reservations", c.VMs[2].Host())
	}
	if c.FailedPlacements != 1 {
		t.Fatalf("FailedPlacements = %d, want 1", c.FailedPlacements)
	}
	// Release the far PM's reservation: the retry must land there and leave
	// the still-reserved PM untouched.
	if !c.ReleaseReservation(c.PMs[other], 8) {
		t.Fatal("release failed")
	}
	c.AdvanceRound(2)
	if !c.VMs[2].Present() {
		t.Fatal("arrival retry failed with a free PM available")
	}
	if got := c.VMs[2].Host(); got != other {
		t.Fatalf("arrival landed on %d, want unreserved PM %d", got, other)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
