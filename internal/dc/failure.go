package dc

import "fmt"

// PM failure injection. A crash is an abrupt power loss, not a graceful
// consolidation power-off: the machine may still host VMs and hold capacity
// reservations for in-flight migrations, and both must be resolved the
// instant it dies. The protocol layer is deliberately not consulted — a real
// crash gives the control plane no warning either; sender-side async state
// recovers through its own timeouts, for which the reservation release here
// is an idempotent no-op.

// CrashReport summarises what one CrashPM call had to clean up.
type CrashReport struct {
	// Evacuated counts hosted VMs immediately re-placed on surviving PMs
	// (modelling restart-from-image on another machine, so it is not a live
	// migration and does not touch the migration ledger).
	Evacuated int
	// Stranded counts hosted VMs for which no surviving PM was admissible;
	// they re-enter the arrival path and retry placement every round.
	Stranded int
	// ReservationsReleased counts in-flight migration reservations the crash
	// voided on the dead target.
	ReservationsReleased int
}

// CrashPM kills a powered PM: open reservations are released, the machine is
// marked down, and every hosted VM is evacuated through the arrival
// placement path (or stranded into it when the fleet has no admissible
// headroom). A stranded VM keeps its monitoring history — it is the same VM,
// so its running average must survive the outage — and retries placement
// each round until it lands. The caller is responsible for mirroring the
// power state into the simulation engine (sim.Engine.SetUp) so gossip stops
// selecting the dead node.
func (c *Cluster) CrashPM(pm *PM) (CrashReport, error) {
	if !c.pmOn(pm.ID) {
		return CrashReport{}, fmt.Errorf("dc: PM %d is already off", pm.ID)
	}
	rep := CrashReport{ReservationsReleased: c.ReleaseAllReservations(pm)}
	ids := pm.VMIDs()
	// Down the PM before evacuating so placeArrival cannot bounce a VM back
	// onto the dying machine.
	c.setPMUp(pm.ID, false)
	for _, id := range ids {
		vm := c.VMs[id]
		c.detach(vm, pm)
		c.vmHost[id] = -1
		if c.placeArrival(vm) {
			rep.Evacuated++
		} else {
			c.vmFlags[id] |= vmFlagPending | vmFlagSeeded
			rep.Stranded++
			c.FailedPlacements++
		}
	}
	return rep, nil
}

// RecoverPM returns a crashed PM to service, empty and powered. Whether it
// resumes with its pre-crash Q-tables (warm restart from checkpoint) or
// re-learns from scratch is the protocol layer's decision; the cluster only
// models the hardware coming back.
func (c *Cluster) RecoverPM(pm *PM) error {
	if c.pmOn(pm.ID) {
		return fmt.Errorf("dc: PM %d is already on", pm.ID)
	}
	c.setPMUp(pm.ID, true)
	return nil
}
