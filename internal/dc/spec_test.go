package dc

import (
	"testing"
	"testing/quick"
)

func TestVecOps(t *testing.T) {
	a := Vec{1, 2}
	b := Vec{3, 5}
	if got := a.Add(b); got != (Vec{4, 7}) {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Vec{2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := b.Div(a); got != (Vec{3, 2.5}) {
		t.Fatalf("Div = %v", got)
	}
	if got := (Vec{1, 2}).Div(Vec{0, 2}); got != (Vec{0, 1}) {
		t.Fatalf("Div by zero component = %v", got)
	}
	if (Vec{3, 9}).Max() != 9 || (Vec{9, 3}).Max() != 9 {
		t.Fatal("Max broken")
	}
	if (Vec{2, 4}).Avg() != 3 {
		t.Fatal("Avg broken")
	}
}

func TestVecFitsWithin(t *testing.T) {
	if !(Vec{1, 2}).FitsWithin(Vec{1, 2}) {
		t.Fatal("equal should fit")
	}
	if (Vec{1.01, 2}).FitsWithin(Vec{1, 2}) {
		t.Fatal("larger cpu should not fit")
	}
	if (Vec{1, 2.01}).FitsWithin(Vec{1, 2}) {
		t.Fatal("larger mem should not fit")
	}
}

func TestVecAddSubInverse(t *testing.T) {
	f := func(a0, a1, b0, b1 float64) bool {
		if !finite(a0) || !finite(a1) || !finite(b0) || !finite(b1) {
			return true
		}
		a := Vec{a0, a1}
		b := Vec{b0, b1}
		got := a.Add(b).Sub(b)
		const tol = 1e-6
		return abs(got[0]-a0) <= tol*(1+abs(a0)+abs(b0)) &&
			abs(got[1]-a1) <= tol*(1+abs(a1)+abs(b1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func finite(x float64) bool { return x == x && x < 1e100 && x > -1e100 }
func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestResourceString(t *testing.T) {
	if CPU.String() != "cpu" || Mem.String() != "mem" {
		t.Fatal("resource names wrong")
	}
}

func TestCatalogValues(t *testing.T) {
	// The exact hardware numbers from Section V-A.
	if HPProLiantML110G5.Capacity != (Vec{2660, 4096}) {
		t.Fatalf("PM capacity %v", HPProLiantML110G5.Capacity)
	}
	if EC2Micro.Capacity != (Vec{500, 613}) {
		t.Fatalf("VM capacity %v", EC2Micro.Capacity)
	}
	if HPProLiantML110G5.PowerIdleW >= HPProLiantML110G5.PowerMaxW {
		t.Fatal("idle power must be below max power")
	}
	if HPProLiantML110G5.NetBandwidthMBps != 1250 {
		t.Fatalf("bandwidth %g, want 1250 MB/s (10 Gb/s)", HPProLiantML110G5.NetBandwidthMBps)
	}
}
