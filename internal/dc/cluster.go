package dc

import (
	"fmt"
	"sort"

	"github.com/glap-sim/glap/internal/par"
	"github.com/glap-sim/glap/internal/trace"
)

// VM is one virtual machine instance. Demand fields are fractions of the
// VM's allocated capacity; absolute demand is fraction * Spec.Capacity.
type VM struct {
	// ID is the VM's dense index.
	ID int
	// Spec is the VM's nominal allocation.
	Spec VMSpec
	// Host is the hosting PM id, or -1 while unplaced.
	Host int

	// Cur is the current-round demand fraction per resource.
	Cur Vec
	// avg is the running average demand per resource, maintained as the
	// paper's {c, v} tuple: v is the mean of the first c observations.
	avg   Vec
	count int

	// Migrations counts completed live migrations of this VM.
	Migrations int
	// degradedCPU accumulates C_d: the CPU-work degradation caused by
	// migration, estimated as 10% of the VM's CPU utilisation over each
	// migration (MIPS·seconds).
	degradedCPU float64
	// requestedCPU accumulates C_r: total CPU capacity requested over the
	// VM's lifetime (MIPS·seconds).
	requestedCPU float64

	// Lifecycle bounds: the VM exists in rounds [arrive, depart); depart<0
	// means forever. departed marks a VM that has left for good; seeded
	// records that arrival restarted demand monitoring, so placement
	// retries in later rounds don't wipe the running average again.
	arrive   int
	depart   int
	departed bool
	seeded   bool
}

// AvgDemand returns the running average demand fraction per resource (the
// paper's "average demand monitored up to now").
func (v *VM) AvgDemand() Vec { return v.avg }

// CurDemand returns the current demand fraction per resource.
func (v *VM) CurDemand() Vec { return v.Cur }

// CurAbs returns the current absolute demand (MIPS, MB).
func (v *VM) CurAbs() Vec {
	return Vec{v.Cur[CPU] * v.Spec.Capacity[CPU], v.Cur[Mem] * v.Spec.Capacity[Mem]}
}

// AvgAbs returns the average absolute demand (MIPS, MB).
func (v *VM) AvgAbs() Vec {
	return Vec{v.avg[CPU] * v.Spec.Capacity[CPU], v.avg[Mem] * v.Spec.Capacity[Mem]}
}

// DegradationRatio returns C_d / C_r for the SLALM metric; 0 when the VM has
// not yet requested any CPU.
func (v *VM) DegradationRatio() float64 {
	if v.requestedCPU == 0 {
		return 0
	}
	return v.degradedCPU / v.requestedCPU
}

// PM is one physical machine.
type PM struct {
	// ID is the PM's dense index.
	ID int
	// Spec is the hardware model.
	Spec PMSpec

	vms map[int]*VM
	on  bool

	// curSum and avgSum cache the aggregate absolute demand of the hosted
	// VMs (current and running-average). They are maintained incrementally
	// on attach/detach and rebuilt from scratch each AdvanceRound, so
	// floating-point drift cannot accumulate across rounds.
	curSum Vec
	avgSum Vec

	// reserved holds capacity set aside for in-flight migrations, keyed by
	// offer token; reservedSum caches the aggregate (see reserve.go).
	reserved    map[uint64]Vec
	reservedSum Vec

	// activeSeconds is total time switched on; overloadSeconds is time
	// spent at 100% CPU utilisation (for SLAVO).
	activeSeconds   float64
	overloadSeconds float64
	// energyJ accumulates baseline power consumption while on.
	energyJ float64
}

// On reports whether the PM is powered.
func (p *PM) On() bool { return p.on }

// NumVMs returns the number of hosted VMs.
func (p *PM) NumVMs() int { return len(p.vms) }

// VMIDs returns the hosted VM ids in ascending order. The copy is the
// caller's to keep.
func (p *PM) VMIDs() []int {
	return p.AppendVMIDs(make([]int, 0, len(p.vms)))
}

// AppendVMIDs appends the hosted VM ids in ascending order to dst and
// returns the extended slice. Callers on a hot path pass a reused buffer
// (typically dst[:0]) so the collection allocates nothing once the buffer
// has grown to the high-water VM count — the learning kernel walks two PMs'
// VM sets every training round and must not build garbage doing so.
func (p *PM) AppendVMIDs(dst []int) []int {
	start := len(dst)
	for id := range p.vms {
		dst = append(dst, id)
	}
	sort.Ints(dst[start:])
	return dst
}

// ActiveSeconds returns total powered-on time (T_a in Eq. 1).
func (p *PM) ActiveSeconds() float64 { return p.activeSeconds }

// OverloadSeconds returns total time at 100% CPU utilisation (T_s in Eq. 1).
func (p *PM) OverloadSeconds() float64 { return p.overloadSeconds }

// EnergyJ returns the PM's accumulated baseline energy (excluding migration
// overhead, which the cluster ledger tracks separately).
func (p *PM) EnergyJ() float64 { return p.energyJ }

// Migration describes one completed live migration for the energy ledger.
type Migration struct {
	VM       int
	From, To int
	Round    int
	// Seconds is the migration duration τ (VM memory / bandwidth).
	Seconds float64
	// EnergyJ is the overhead energy per Eq. 3.
	EnergyJ float64
}

// Cluster is the full data center: PMs, VMs, the driving workload, and the
// global accounting the evaluation metrics are computed from.
type Cluster struct {
	PMs []*PM
	VMs []*VM

	workload  *trace.Set
	round     int
	migBW     func(src, dst int) float64
	placeIntn func(n int) int

	// RoundSeconds is the wall-clock length of one round (the paper: 120 s).
	RoundSeconds float64

	// Workers bounds fork-join parallelism in AdvanceRound, the PM counting
	// scans, and CheckInvariants (see sim.Engine.Workers for the semantics:
	// <= 0 auto-sizes from the shared budget, 1 runs sequentially, > 1 is
	// honored exactly). Results are identical for every setting.
	Workers int

	// hosted is AdvanceRound's reusable scratch: per-PM lists of present VMs
	// in ascending VM-ID order, so each PM's demand sums fold in the exact
	// order the former sequential rebuild used.
	hosted [][]*VM

	// Migrations is the cumulative migration count.
	Migrations int64
	// FailedPlacements counts arrival rounds in which an arriving VM could
	// not be placed (no powered PM); each failed attempt counts once, so the
	// value also reflects how long arrivals waited.
	FailedPlacements int64
	// MigrationEnergyJ is the cumulative migration energy overhead (Eq. 3).
	MigrationEnergyJ float64
	migrationLog     []Migration
	logMigrations    bool
}

// Config assembles a Cluster.
type Config struct {
	// PMs is the number of physical machines.
	PMs int
	// PMSpec and VMSpec select hardware models; zero values default to the
	// paper's HP ProLiant ML110 G5 and EC2 micro.
	PMSpec PMSpec
	VMSpec VMSpec
	// PMSpecFor, when set, assigns a per-machine hardware model
	// (heterogeneous clusters); it overrides PMSpec.
	PMSpecFor func(pm int) PMSpec
	// Workload drives per-VM demand; it also fixes the number of VMs.
	Workload *trace.Set
	// RoundSeconds defaults to 120.
	RoundSeconds float64
	// LogMigrations keeps a per-migration record (needed only by the
	// energy-breakdown example; the counters are always maintained).
	LogMigrations bool
	// MigrationBandwidth, when set, overrides the bandwidth (MB/s)
	// available to a live migration between two PMs — the hook through
	// which the network topology model imposes oversubscription penalties
	// on cross-rack and cross-pod transfers.
	MigrationBandwidth func(src, dst int) float64
}

// New builds a cluster with all PMs on and no VMs placed. Call a placement
// routine (e.g. PlaceRandom) before running rounds.
func New(cfg Config) (*Cluster, error) {
	if cfg.PMs <= 0 {
		return nil, fmt.Errorf("dc: PMs must be positive, got %d", cfg.PMs)
	}
	if cfg.Workload == nil || cfg.Workload.NumVMs() == 0 {
		return nil, fmt.Errorf("dc: workload with at least one VM required")
	}
	if cfg.PMSpec.Capacity == (Vec{}) {
		cfg.PMSpec = HPProLiantML110G5
	}
	if cfg.VMSpec.Capacity == (Vec{}) {
		cfg.VMSpec = EC2Micro
	}
	if cfg.RoundSeconds == 0 {
		cfg.RoundSeconds = 120
	}
	c := &Cluster{
		workload:      cfg.Workload,
		RoundSeconds:  cfg.RoundSeconds,
		logMigrations: cfg.LogMigrations,
		migBW:         cfg.MigrationBandwidth,
	}
	c.PMs = make([]*PM, cfg.PMs)
	for i := range c.PMs {
		spec := cfg.PMSpec
		if cfg.PMSpecFor != nil {
			spec = cfg.PMSpecFor(i)
		}
		c.PMs[i] = &PM{ID: i, Spec: spec, vms: make(map[int]*VM), on: true}
	}
	c.VMs = make([]*VM, cfg.Workload.NumVMs())
	for i := range c.VMs {
		vm := &VM{ID: i, Spec: cfg.VMSpec, Host: -1, depart: -1}
		// Seed demand from round 0 so states are meaningful before the
		// first AdvanceRound.
		s := cfg.Workload.At(i, 0)
		vm.Cur = Vec{s.CPU, s.Mem}
		vm.avg = vm.Cur
		vm.count = 1
		c.VMs[i] = vm
	}
	return c, nil
}

// Round returns the index of the last advanced round.
func (c *Cluster) Round() int { return c.round }

// Workload returns the driving trace set.
func (c *Cluster) Workload() *trace.Set { return c.workload }

// MigrationLog returns the per-migration records (only populated when
// Config.LogMigrations was set).
func (c *Cluster) MigrationLog() []Migration { return c.migrationLog }

// PlaceRandom distributes all unplaced VMs uniformly at random over powered
// PMs using the provided index picker (intn(n) must return a uniform value
// in [0, n)). Initial allocation is by VM type — full nominal size — as in
// Section V-A, so the placement may not respect *current* demand headroom
// but always respects allocated capacity where possible; when the cluster is
// oversubscribed (ratio > capacity), remaining VMs are placed round-robin.
func (c *Cluster) PlaceRandom(intn func(n int) int) {
	c.placeIntn = intn
	alloc := make([]Vec, len(c.PMs))
	for _, vm := range c.VMs {
		if vm.Host >= 0 || vm.arrive > 0 {
			continue
		}
		placed := false
		for attempt := 0; attempt < 3*len(c.PMs); attempt++ {
			p := intn(len(c.PMs))
			pm := c.PMs[p]
			if !pm.on {
				continue
			}
			if alloc[p].Add(vm.Spec.Capacity).FitsWithin(pm.Spec.Capacity) {
				c.attach(vm, pm)
				alloc[p] = alloc[p].Add(vm.Spec.Capacity)
				placed = true
				break
			}
		}
		if !placed {
			// First-fit scan before giving up on the allocation bound.
			start := intn(len(c.PMs))
			for off := 0; off < len(c.PMs); off++ {
				p := (start + off) % len(c.PMs)
				pm := c.PMs[p]
				if !pm.on {
					continue
				}
				if alloc[p].Add(vm.Spec.Capacity).FitsWithin(pm.Spec.Capacity) {
					c.attach(vm, pm)
					alloc[p] = alloc[p].Add(vm.Spec.Capacity)
					placed = true
					break
				}
			}
		}
		if !placed {
			// The cluster is genuinely over-subscribed by allocation;
			// stuff the VM anyway so every VM runs somewhere.
			pm := c.PMs[vm.ID%len(c.PMs)]
			c.attach(vm, pm)
			alloc[pm.ID] = alloc[pm.ID].Add(vm.Spec.Capacity)
		}
	}
}

func (c *Cluster) attach(vm *VM, pm *PM) {
	pm.vms[vm.ID] = vm
	vm.Host = pm.ID
	pm.curSum = pm.curSum.Add(vm.CurAbs())
	pm.avgSum = pm.avgSum.Add(vm.AvgAbs())
}

func (c *Cluster) detach(vm *VM, pm *PM) {
	delete(pm.vms, vm.ID)
	pm.curSum = pm.curSum.Sub(vm.CurAbs())
	pm.avgSum = pm.avgSum.Sub(vm.AvgAbs())
}

// CurUtil returns the PM's current utilisation fraction per resource:
// aggregate current absolute VM demand divided by capacity. Values may
// exceed 1 when demand outstrips capacity; the PM is then overloaded and the
// excess manifests as SLA violation.
func (c *Cluster) CurUtil(pm *PM) Vec {
	return pm.curSum.Div(pm.Spec.Capacity)
}

// AvgUtil returns the PM's utilisation per resource computed from the VMs'
// running average demand (the paper's pre-action PM state).
func (c *Cluster) AvgUtil(pm *PM) Vec {
	return pm.avgSum.Div(pm.Spec.Capacity)
}

// Overloaded reports whether the PM's current demand saturates at least one
// resource (utilisation >= 1 on any axis).
func (c *Cluster) Overloaded(pm *PM) bool {
	u := c.CurUtil(pm)
	for _, x := range u {
		if x >= 1 {
			return true
		}
	}
	return false
}

// FreeCur returns the remaining absolute capacity under current demand,
// clamped at zero.
func (c *Cluster) FreeCur(pm *PM) Vec {
	u := c.CurUtil(pm)
	var free Vec
	for r := 0; r < NumResources; r++ {
		f := (1 - u[r]) * pm.Spec.Capacity[r]
		if f < 0 {
			f = 0
		}
		free[r] = f
	}
	return free
}

// FitsCur reports whether vm's current absolute demand fits in pm's free
// capacity under current demand — the capacity check of Algorithm 3.
func (c *Cluster) FitsCur(vm *VM, pm *PM) bool {
	return vm.CurAbs().FitsWithin(c.FreeCur(pm))
}

// SetPMOn powers the PM on or off. Switching off a PM that still hosts VMs
// or holds open reservations is rejected: consolidation protocols must empty
// a machine first, and a machine expecting an in-flight VM must stay up to
// receive it.
func (c *Cluster) SetPMOn(pm *PM, on bool) error {
	if !on && len(pm.vms) > 0 {
		return fmt.Errorf("dc: cannot switch off PM %d: hosts %d VMs", pm.ID, len(pm.vms))
	}
	if !on && len(pm.reserved) > 0 {
		return fmt.Errorf("dc: cannot switch off PM %d: %d open reservations", pm.ID, len(pm.reserved))
	}
	pm.on = on
	return nil
}

// Migrate live-migrates vm from its current host to dst, updating counters
// and the energy ledger (Eq. 3). It returns an error when dst is off, vm is
// unplaced, or src == dst. Capacity is deliberately not re-checked here:
// admission is the protocol's decision (Algorithm 3 performs the check), and
// over-admission must be expressible so that bad policies produce the SLA
// violations the paper measures.
func (c *Cluster) Migrate(vm *VM, dst *PM) error {
	if vm.Host < 0 {
		return fmt.Errorf("dc: VM %d is not placed", vm.ID)
	}
	if !dst.on {
		return fmt.Errorf("dc: destination PM %d is off", dst.ID)
	}
	src := c.PMs[vm.Host]
	if src.ID == dst.ID {
		return fmt.Errorf("dc: VM %d already on PM %d", vm.ID, dst.ID)
	}
	c.detach(vm, src)
	c.attach(vm, dst)
	vm.Migrations++

	// Migration time: VM memory footprint over available bandwidth. The
	// footprint is the VM's current memory demand (post-copy of the working
	// set), bounded below by a small constant so empty VMs still cost.
	memMB := vm.Cur[Mem] * vm.Spec.Capacity[Mem]
	if memMB < 1 {
		memMB = 1
	}
	bw := src.Spec.NetBandwidthMBps
	if dst.Spec.NetBandwidthMBps < bw {
		bw = dst.Spec.NetBandwidthMBps
	}
	if c.migBW != nil {
		if custom := c.migBW(src.ID, dst.ID); custom > 0 {
			bw = custom
		}
	}
	tau := memMB / bw

	// Eq. 3: E = ((P_i^lm - P_i^idle) + (P_j^lm - P_j^idle)) * tau, with
	// P^lm - P^idle modelled as the dynamic power of the migration's CPU
	// overhead on each endpoint.
	eSrc := (src.Spec.PowerMaxW - src.Spec.PowerIdleW) * src.Spec.MigrationCPUOverhead
	eDst := (dst.Spec.PowerMaxW - dst.Spec.PowerIdleW) * dst.Spec.MigrationCPUOverhead
	energy := (eSrc + eDst) * tau

	// SLALM: performance degradation estimated as 10% of the VM's CPU
	// utilisation during the migration.
	vm.degradedCPU += 0.10 * vm.Cur[CPU] * vm.Spec.Capacity[CPU] * tau

	c.Migrations++
	c.MigrationEnergyJ += energy
	if c.logMigrations {
		c.migrationLog = append(c.migrationLog, Migration{
			VM: vm.ID, From: src.ID, To: dst.ID, Round: c.round,
			Seconds: tau, EnergyJ: energy,
		})
	}
	return nil
}

// Fork-join chunk sizes. Per-VM demand refresh is a handful of flops, so
// chunks are large; per-PM work folds a whole hosted-VM list, so chunks are
// smaller. Both depend only on the problem size, never on worker count.
const (
	vmChunk = 256
	pmChunk = 64
)

// AdvanceRound moves the cluster to round r: every VM's current demand is
// refreshed from the workload and folded into its running average, and PM
// time/energy accounting advances by one round. Both passes fan out over
// c.Workers: the VM refresh writes only the VM's own fields, and each PM's
// rebuild writes only that PM — with its demand sums folded in ascending
// VM-ID order, exactly the order the former sequential rebuild used, so the
// floats are bit-identical for every worker count.
func (c *Cluster) AdvanceRound(r int) {
	c.round = r
	c.stepLifecycle(r)
	par.ForChunks(len(c.VMs), vmChunk, c.Workers, func(lo, hi int) {
		for _, vm := range c.VMs[lo:hi] {
			if !vm.Present() {
				continue
			}
			s := c.workload.At(vm.ID, r)
			vm.Cur = Vec{s.CPU, s.Mem}
			// Running average: ((c*v) + d(t)) / (c+1), per resource.
			n := float64(vm.count)
			for res := 0; res < NumResources; res++ {
				vm.avg[res] = (n*vm.avg[res] + vm.Cur[res]) / (n + 1)
			}
			vm.count++
			vm.requestedCPU += vm.Cur[CPU] * vm.Spec.Capacity[CPU] * c.RoundSeconds
		}
	})
	// Rebuild the cached demand sums from scratch: demand changed for every
	// VM, and a fresh summation avoids accumulating float drift. The hosted
	// lists are built sequentially in ascending VM-ID order — summing over
	// the pm.vms map would add in a randomized order, and float addition is
	// order-sensitive, so map order would make runs only probabilistically
	// reproducible.
	if cap(c.hosted) < len(c.PMs) {
		c.hosted = make([][]*VM, len(c.PMs))
	}
	c.hosted = c.hosted[:len(c.PMs)]
	for i := range c.hosted {
		c.hosted[i] = c.hosted[i][:0]
	}
	for _, vm := range c.VMs {
		if vm.Present() {
			c.hosted[vm.Host] = append(c.hosted[vm.Host], vm)
		}
	}
	par.ForChunks(len(c.PMs), pmChunk, c.Workers, func(lo, hi int) {
		for _, pm := range c.PMs[lo:hi] {
			pm.curSum, pm.avgSum = Vec{}, Vec{}
			for _, vm := range c.hosted[pm.ID] {
				pm.curSum = pm.curSum.Add(vm.CurAbs())
				pm.avgSum = pm.avgSum.Add(vm.AvgAbs())
			}
			if !pm.on {
				continue
			}
			pm.activeSeconds += c.RoundSeconds
			u := c.CurUtil(pm)
			cpuU := u[CPU]
			if cpuU >= 1 {
				pm.overloadSeconds += c.RoundSeconds
				cpuU = 1
			}
			pm.energyJ += (pm.Spec.PowerIdleW + (pm.Spec.PowerMaxW-pm.Spec.PowerIdleW)*cpuU) * c.RoundSeconds
		}
	})
}

// ActivePMs returns the number of powered PMs.
func (c *Cluster) ActivePMs() int {
	return par.OrderedCount(len(c.PMs), pmChunk, c.Workers, func(i int) bool {
		return c.PMs[i].on
	})
}

// OverloadedPMs returns the number of powered PMs whose current demand
// saturates at least one resource.
func (c *Cluster) OverloadedPMs() int {
	return par.OrderedCount(len(c.PMs), pmChunk, c.Workers, func(i int) bool {
		return c.PMs[i].on && c.Overloaded(c.PMs[i])
	})
}

// CheckInvariants verifies structural consistency (every VM on exactly one
// powered PM that also lists it). It is used by tests and returns the first
// violation found. The per-PM scans fan out over c.Workers with per-chunk
// hosting counts merged in chunk-index order afterwards, so the reported
// violation is deterministic: the one from the lowest PM index range wins,
// matching the former sequential scan.
func (c *Cluster) CheckInvariants() error {
	pmChunks := chunkCount(len(c.PMs), pmChunk)
	pmErrs := make([]error, pmChunks)
	counts := make([]map[int]int, pmChunks)
	par.ForChunks(len(c.PMs), pmChunk, c.Workers, func(lo, hi int) {
		ci := lo / pmChunk
		seen := make(map[int]int)
		counts[ci] = seen
		for _, pm := range c.PMs[lo:hi] {
			for id, vm := range pm.vms {
				if vm.ID != id {
					pmErrs[ci] = fmt.Errorf("dc: PM %d maps id %d to VM %d", pm.ID, id, vm.ID)
					return
				}
				if vm.Host != pm.ID {
					pmErrs[ci] = fmt.Errorf("dc: VM %d hosted by PM %d but Host=%d", vm.ID, pm.ID, vm.Host)
					return
				}
				if !pm.on {
					pmErrs[ci] = fmt.Errorf("dc: powered-off PM %d hosts VM %d", pm.ID, vm.ID)
					return
				}
				seen[id]++
			}
		}
	})
	for _, err := range pmErrs {
		if err != nil {
			return err
		}
	}
	seen := make(map[int]int)
	for _, m := range counts {
		for id, n := range m {
			seen[id] += n
		}
	}
	vmErrs := make([]error, chunkCount(len(c.VMs), vmChunk))
	par.ForChunks(len(c.VMs), vmChunk, c.Workers, func(lo, hi int) {
		for _, vm := range c.VMs[lo:hi] {
			if vm.Host >= 0 && seen[vm.ID] != 1 {
				vmErrs[lo/vmChunk] = fmt.Errorf("dc: VM %d appears on %d PMs", vm.ID, seen[vm.ID])
				return
			}
		}
	})
	for _, err := range vmErrs {
		if err != nil {
			return err
		}
	}
	resErrs := make([]error, pmChunks)
	par.ForChunks(len(c.PMs), pmChunk, c.Workers, func(lo, hi int) {
		for _, pm := range c.PMs[lo:hi] {
			var sum Vec
			for _, d := range pm.reserved {
				sum = sum.Add(d)
			}
			for r := 0; r < NumResources; r++ {
				diff := sum[r] - pm.reservedSum[r]
				if diff < -1e-6 || diff > 1e-6 {
					resErrs[lo/pmChunk] = fmt.Errorf("dc: PM %d reservedSum drifted: cached %v, actual %v", pm.ID, pm.reservedSum, sum)
					return
				}
			}
			if !pm.on && len(pm.reserved) > 0 {
				resErrs[lo/pmChunk] = fmt.Errorf("dc: powered-off PM %d holds %d reservations", pm.ID, len(pm.reserved))
				return
			}
		}
	})
	for _, err := range resErrs {
		if err != nil {
			return err
		}
	}
	return nil
}

// chunkCount mirrors par.ForChunks's partitioning: the number of chunks a
// problem of size n splits into.
func chunkCount(n, chunk int) int {
	if n <= 0 {
		return 0
	}
	return (n + chunk - 1) / chunk
}
