package dc

import (
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/glap-sim/glap/internal/par"
	"github.com/glap-sim/glap/internal/trace"
)

// The cluster core is laid out struct-of-arrays: every piece of mutable
// per-VM and per-PM state lives in an ID-indexed flat slice owned by the
// Cluster, and the exported VM/PM types are thin handles (ID + hardware
// spec + back-pointer) whose accessor methods read those slices. The handle
// objects themselves are immutable after New, carved from two contiguous
// backing arrays, so a 100k-PM cluster is a fixed set of flat allocations
// instead of hundreds of thousands of pointer-chased structs and per-PM
// maps. Hot loops (AdvanceRound, the learning kernel's VM walks) touch
// densely packed state with unit stride.

// Flag bits of vmFlags.
const (
	vmFlagDeparted uint8 = 1 << iota
	vmFlagSeeded
	// vmFlagPending marks a VM with a scheduled or retrying arrival: set by
	// SetLifecycle, RecycleVM and crash-stranding, cleared by attach. The
	// arrival scan gates on this flag — not on vmArrive > 0, which would
	// silently exclude a legitimately-scheduled round-0 arrival after an ID
	// is recycled.
	vmFlagPending
)

// VM is a handle onto one virtual machine's state. Demand fields are
// fractions of the VM's allocated capacity; absolute demand is
// fraction * Spec.Capacity.
type VM struct {
	// ID is the VM's dense index.
	ID int
	// Spec is the VM's nominal allocation.
	Spec VMSpec

	c *Cluster
}

// Host returns the hosting PM id, or -1 while unplaced.
func (v *VM) Host() int { return int(v.c.vmHost[v.ID]) }

// AvgDemand returns the running average demand fraction per resource (the
// paper's "average demand monitored up to now").
func (v *VM) AvgDemand() Vec { return v.c.vmAvg[v.ID] }

// CurDemand returns the current demand fraction per resource.
func (v *VM) CurDemand() Vec { return v.c.vmCur[v.ID] }

// SetCurDemand overrides the VM's current demand fraction, keeping the host
// PM's cached demand sums consistent. It exists for tests that sculpt
// specific demand scenarios; simulations refresh demand from the workload
// in AdvanceRound.
func (v *VM) SetCurDemand(d Vec) {
	c := v.c
	if h := c.vmHost[v.ID]; h >= 0 {
		c.pmCurSum[h] = c.pmCurSum[h].Sub(v.CurAbs())
		c.vmCur[v.ID] = d
		c.pmCurSum[h] = c.pmCurSum[h].Add(v.CurAbs())
		return
	}
	c.vmCur[v.ID] = d
}

// CurAbs returns the current absolute demand (MIPS, MB).
func (v *VM) CurAbs() Vec {
	cur, cp := v.c.vmCur[v.ID], v.c.vmCap[v.ID]
	return Vec{cur[CPU] * cp[CPU], cur[Mem] * cp[Mem]}
}

// AvgAbs returns the average absolute demand (MIPS, MB).
func (v *VM) AvgAbs() Vec {
	avg, cp := v.c.vmAvg[v.ID], v.c.vmCap[v.ID]
	return Vec{avg[CPU] * cp[CPU], avg[Mem] * cp[Mem]}
}

// MigrationCount returns the number of completed live migrations of this VM.
func (v *VM) MigrationCount() int { return int(v.c.vmMigs[v.ID]) }

// DegradationRatio returns C_d / C_r for the SLALM metric; 0 when the VM has
// not yet requested any CPU.
func (v *VM) DegradationRatio() float64 {
	if v.c.vmRequested[v.ID] == 0 {
		return 0
	}
	return v.c.vmDegraded[v.ID] / v.c.vmRequested[v.ID]
}

// PM is a handle onto one physical machine's state.
type PM struct {
	// ID is the PM's dense index.
	ID int
	// Spec is the hardware model.
	Spec PMSpec

	c *Cluster
}

// On reports whether the PM is powered.
func (p *PM) On() bool { return p.c.pmOn(p.ID) }

// NumVMs returns the number of hosted VMs.
func (p *PM) NumVMs() int { return len(p.c.pmVMs[p.ID]) }

// VMIDs returns the hosted VM ids in ascending order. The copy is the
// caller's to keep.
func (p *PM) VMIDs() []int {
	return p.AppendVMIDs(make([]int, 0, p.NumVMs()))
}

// AppendVMIDs appends the hosted VM ids in ascending order to dst and
// returns the extended slice. Callers on a hot path pass a reused buffer
// (typically dst[:0]) so the collection allocates nothing once the buffer
// has grown to the high-water VM count — the learning kernel walks two PMs'
// VM sets every training round and must not build garbage doing so. The
// per-PM lists are maintained in sorted order, so this is a straight copy.
func (p *PM) AppendVMIDs(dst []int) []int {
	for _, id := range p.c.pmVMs[p.ID] {
		dst = append(dst, int(id))
	}
	return dst
}

// ActiveSeconds returns total powered-on time (T_a in Eq. 1).
func (p *PM) ActiveSeconds() float64 { return p.c.pmActiveSec[p.ID] }

// OverloadSeconds returns total time at 100% CPU utilisation (T_s in Eq. 1).
func (p *PM) OverloadSeconds() float64 { return p.c.pmOverloadSec[p.ID] }

// EnergyJ returns the PM's accumulated baseline energy (excluding migration
// overhead, which the cluster ledger tracks separately).
func (p *PM) EnergyJ() float64 { return p.c.pmEnergyJ[p.ID] }

// Migration describes one completed live migration for the energy ledger.
type Migration struct {
	VM       int
	From, To int
	Round    int
	// Seconds is the migration duration τ (VM memory / bandwidth).
	Seconds float64
	// EnergyJ is the overhead energy per Eq. 3.
	EnergyJ float64
}

// resKey identifies one capacity reservation: reservations are keyed by
// (PM, offer token) in a single cluster-level map, since at any instant
// only a handful of the cluster's PMs hold one — a per-PM map would burn a
// map header per machine for a nearly-always-empty structure.
type resKey struct {
	pm    int32
	token uint64
}

// Cluster is the full data center: PMs, VMs, the driving workload, and the
// global accounting the evaluation metrics are computed from. All mutable
// per-entity state is held in the ID-indexed slices below; PMs and VMs are
// stable handles into them.
type Cluster struct {
	PMs []*PM
	VMs []*VM

	// Per-VM state, indexed by VM id.
	vmHost      []int32   // hosting PM id, -1 while unplaced
	vmCur       []Vec     // current-round demand fraction
	vmAvg       []Vec     // running average demand (the paper's {c, v} tuple...)
	vmCount     []int32   // ...where this is c, the number of observations
	vmCap       []Vec     // absolute capacity (Spec.Capacity), precomputed
	vmMigs      []int32   // completed live migrations
	vmDegraded  []float64 // C_d: migration CPU degradation (MIPS·s)
	vmRequested []float64 // C_r: lifetime requested CPU (MIPS·s)
	vmArrive    []int32   // first round present
	vmDepart    []int32   // first round absent, -1 = never
	vmFlags     []uint8   // vmFlagDeparted | vmFlagSeeded

	// Quiet-demand certificate cache (see quiesce.go): demand is known
	// constant on [vmQuietFrom, vmQuietUntil) relative to the sample at
	// vmQuietFrom-1. Allocated lazily on the first QuietSpan probe; traces
	// are immutable, so certified windows never need invalidation.
	vmQuietFrom  []int32
	vmQuietUntil []int32

	// Per-PM state, indexed by PM id.
	pmUp          []uint64 // powered-state bitset, bit p of word p/64
	pmCurSum      []Vec    // aggregate current absolute demand of hosted VMs
	pmAvgSum      []Vec    // aggregate running-average absolute demand
	pmAllocSum    []Vec    // aggregate nominal allocation (Spec.Capacity) of hosted VMs
	pmResSum      []Vec    // aggregate reserved demand (see reserve.go)
	pmResCount    []int32  // open reservations
	pmActiveSec   []float64
	pmOverloadSec []float64
	pmEnergyJ     []float64
	// pmVMs holds each PM's hosted VM ids in ascending order. The initial
	// per-PM capacity is carved from one shared arena sized for the mean
	// occupancy (full slice expressions cap each window, so a PM that
	// outgrows its window reallocates individually without touching its
	// neighbours). Sorted maintenance keeps AppendVMIDs a straight copy and
	// makes every demand fold run in ascending VM-ID order.
	pmVMs [][]int32

	// reservations holds capacity set aside for in-flight migrations,
	// keyed by (PM, offer token); pmResSum/pmResCount cache the per-PM
	// aggregates (see reserve.go).
	reservations map[resKey]Vec

	workload  *trace.Set
	round     int
	migBW     func(src, dst int) float64
	placeIntn func(n int) int

	// RoundSeconds is the wall-clock length of one round (the paper: 120 s).
	RoundSeconds float64

	// Workers bounds fork-join parallelism in AdvanceRound, the PM counting
	// scans, and CheckInvariants (see sim.Engine.Workers for the semantics:
	// <= 0 auto-sizes from the shared budget, 1 runs sequentially, > 1 is
	// honored exactly). Results are identical for every setting.
	Workers int

	// Migrations is the cumulative migration count.
	Migrations int64
	// FailedPlacements counts arrival rounds in which an arriving VM could
	// not be placed (no powered PM); each failed attempt counts once, so the
	// value also reflects how long arrivals waited.
	FailedPlacements int64
	// MigrationEnergyJ is the cumulative migration energy overhead (Eq. 3).
	MigrationEnergyJ float64
	migrationLog     []Migration
	logMigrations    bool
}

// pmOn reads the powered bit of PM p. The bitset packs 64 PMs per word, so
// pair-sharded consolidation batches — whose pairs are node-disjoint but may
// land in the same word — access it atomically; on amd64 the load is a plain
// MOV, so the sequential paths pay nothing.
func (c *Cluster) pmOn(p int) bool {
	return atomic.LoadUint64(&c.pmUp[uint(p)>>6])&(1<<(uint(p)&63)) != 0
}

func (c *Cluster) setPMUp(p int, on bool) {
	w := &c.pmUp[uint(p)>>6]
	bit := uint64(1) << (uint(p) & 63)
	for {
		old := atomic.LoadUint64(w)
		var next uint64
		if on {
			next = old | bit
		} else {
			next = old &^ bit
		}
		if next == old || atomic.CompareAndSwapUint64(w, old, next) {
			return
		}
	}
}

// hostedInsert adds VM id to PM p's sorted hosted list.
func (c *Cluster) hostedInsert(p int, id int32) {
	list := c.pmVMs[p]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = id
	c.pmVMs[p] = list
}

// hostedRemove drops VM id from PM p's sorted hosted list.
func (c *Cluster) hostedRemove(p int, id int32) {
	list := c.pmVMs[p]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	if i < len(list) && list[i] == id {
		copy(list[i:], list[i+1:])
		c.pmVMs[p] = list[:len(list)-1]
	}
}

// Config assembles a Cluster.
type Config struct {
	// PMs is the number of physical machines.
	PMs int
	// PMSpec and VMSpec select hardware models; zero values default to the
	// paper's HP ProLiant ML110 G5 and EC2 micro.
	PMSpec PMSpec
	VMSpec VMSpec
	// PMSpecFor, when set, assigns a per-machine hardware model
	// (heterogeneous clusters); it overrides PMSpec.
	PMSpecFor func(pm int) PMSpec
	// Workload drives per-VM demand; it also fixes the number of VMs.
	Workload *trace.Set
	// RoundSeconds defaults to 120.
	RoundSeconds float64
	// LogMigrations keeps a per-migration record (needed only by the
	// energy-breakdown example; the counters are always maintained).
	LogMigrations bool
	// MigrationBandwidth, when set, overrides the bandwidth (MB/s)
	// available to a live migration between two PMs — the hook through
	// which the network topology model imposes oversubscription penalties
	// on cross-rack and cross-pod transfers.
	MigrationBandwidth func(src, dst int) float64
}

// New builds a cluster with all PMs on and no VMs placed. Call a placement
// routine (e.g. PlaceRandom) before running rounds.
func New(cfg Config) (*Cluster, error) {
	if cfg.PMs <= 0 {
		return nil, fmt.Errorf("dc: PMs must be positive, got %d", cfg.PMs)
	}
	if cfg.Workload == nil || cfg.Workload.NumVMs() == 0 {
		return nil, fmt.Errorf("dc: workload with at least one VM required")
	}
	if cfg.PMSpec.Capacity == (Vec{}) {
		cfg.PMSpec = HPProLiantML110G5
	}
	if cfg.VMSpec.Capacity == (Vec{}) {
		cfg.VMSpec = EC2Micro
	}
	if cfg.RoundSeconds == 0 {
		cfg.RoundSeconds = 120
	}
	numVMs := cfg.Workload.NumVMs()
	c := &Cluster{
		workload:      cfg.Workload,
		RoundSeconds:  cfg.RoundSeconds,
		logMigrations: cfg.LogMigrations,
		migBW:         cfg.MigrationBandwidth,

		vmHost:      make([]int32, numVMs),
		vmCur:       make([]Vec, numVMs),
		vmAvg:       make([]Vec, numVMs),
		vmCount:     make([]int32, numVMs),
		vmCap:       make([]Vec, numVMs),
		vmMigs:      make([]int32, numVMs),
		vmDegraded:  make([]float64, numVMs),
		vmRequested: make([]float64, numVMs),
		vmArrive:    make([]int32, numVMs),
		vmDepart:    make([]int32, numVMs),
		vmFlags:     make([]uint8, numVMs),

		pmUp:          make([]uint64, (cfg.PMs+63)/64),
		pmCurSum:      make([]Vec, cfg.PMs),
		pmAvgSum:      make([]Vec, cfg.PMs),
		pmAllocSum:    make([]Vec, cfg.PMs),
		pmResSum:      make([]Vec, cfg.PMs),
		pmResCount:    make([]int32, cfg.PMs),
		pmActiveSec:   make([]float64, cfg.PMs),
		pmOverloadSec: make([]float64, cfg.PMs),
		pmEnergyJ:     make([]float64, cfg.PMs),
		pmVMs:         make([][]int32, cfg.PMs),
	}

	// Hosted-list arena: one window per PM sized for mean occupancy plus
	// slack. Consolidation skews occupancy, so windows are a starting
	// point, not a bound — append past a window's cap spills that PM onto
	// its own allocation.
	perPM := numVMs/cfg.PMs + 2
	arena := make([]int32, cfg.PMs*perPM)
	for i := range c.pmVMs {
		c.pmVMs[i] = arena[i*perPM : i*perPM : (i+1)*perPM]
	}

	pmBack := make([]PM, cfg.PMs)
	c.PMs = make([]*PM, cfg.PMs)
	for i := range c.PMs {
		spec := cfg.PMSpec
		if cfg.PMSpecFor != nil {
			spec = cfg.PMSpecFor(i)
		}
		pmBack[i] = PM{ID: i, Spec: spec, c: c}
		c.PMs[i] = &pmBack[i]
		c.setPMUp(i, true)
	}

	vmBack := make([]VM, numVMs)
	c.VMs = make([]*VM, numVMs)
	for i := range c.VMs {
		vmBack[i] = VM{ID: i, Spec: cfg.VMSpec, c: c}
		c.VMs[i] = &vmBack[i]
		c.vmHost[i] = -1
		c.vmDepart[i] = -1
		c.vmCap[i] = cfg.VMSpec.Capacity
		// Seed demand from round 0 so states are meaningful before the
		// first AdvanceRound.
		s := cfg.Workload.At(i, 0)
		c.vmCur[i] = Vec{s.CPU, s.Mem}
		c.vmAvg[i] = c.vmCur[i]
		c.vmCount[i] = 1
	}
	return c, nil
}

// Round returns the index of the last advanced round.
func (c *Cluster) Round() int { return c.round }

// Workload returns the driving trace set.
func (c *Cluster) Workload() *trace.Set { return c.workload }

// MigrationLog returns the per-migration records (only populated when
// Config.LogMigrations was set).
func (c *Cluster) MigrationLog() []Migration { return c.migrationLog }

// PlaceRandom distributes all unplaced VMs uniformly at random over powered
// PMs using the provided index picker (intn(n) must return a uniform value
// in [0, n)). Initial allocation is by VM type — full nominal size — as in
// Section V-A, so the placement may not respect *current* demand headroom
// but always respects allocated capacity where possible; when the cluster is
// oversubscribed (ratio > capacity), remaining VMs are placed round-robin.
func (c *Cluster) PlaceRandom(intn func(n int) int) {
	c.placeIntn = intn
	for _, vm := range c.VMs {
		if c.vmHost[vm.ID] >= 0 || c.vmArrive[vm.ID] > 0 {
			continue
		}
		placed := false
		for attempt := 0; attempt < 3*len(c.PMs); attempt++ {
			p := intn(len(c.PMs))
			pm := c.PMs[p]
			if !c.pmOn(p) {
				continue
			}
			if c.pmAllocSum[p].Add(vm.Spec.Capacity).FitsWithin(pm.Spec.Capacity) {
				c.attach(vm, pm)
				placed = true
				break
			}
		}
		if !placed {
			// First-fit scan before giving up on the allocation bound.
			start := intn(len(c.PMs))
			for off := 0; off < len(c.PMs); off++ {
				p := (start + off) % len(c.PMs)
				pm := c.PMs[p]
				if !c.pmOn(p) {
					continue
				}
				if c.pmAllocSum[p].Add(vm.Spec.Capacity).FitsWithin(pm.Spec.Capacity) {
					c.attach(vm, pm)
					placed = true
					break
				}
			}
		}
		if !placed {
			// The cluster is genuinely over-subscribed by allocation;
			// stuff the VM anyway so every VM runs somewhere.
			c.attach(vm, c.PMs[vm.ID%len(c.PMs)])
		}
	}
}

func (c *Cluster) attach(vm *VM, pm *PM) {
	c.hostedInsert(pm.ID, int32(vm.ID))
	c.vmHost[vm.ID] = int32(pm.ID)
	c.vmFlags[vm.ID] &^= vmFlagPending
	c.pmCurSum[pm.ID] = c.pmCurSum[pm.ID].Add(vm.CurAbs())
	c.pmAvgSum[pm.ID] = c.pmAvgSum[pm.ID].Add(vm.AvgAbs())
	c.pmAllocSum[pm.ID] = c.pmAllocSum[pm.ID].Add(c.vmCap[vm.ID])
}

func (c *Cluster) detach(vm *VM, pm *PM) {
	c.hostedRemove(pm.ID, int32(vm.ID))
	c.pmCurSum[pm.ID] = c.pmCurSum[pm.ID].Sub(vm.CurAbs())
	c.pmAvgSum[pm.ID] = c.pmAvgSum[pm.ID].Sub(vm.AvgAbs())
	c.pmAllocSum[pm.ID] = c.pmAllocSum[pm.ID].Sub(c.vmCap[vm.ID])
	if len(c.pmVMs[pm.ID]) == 0 {
		// Reset exactly at empty so float cancellation cannot accumulate
		// across attach/detach cycles of a long churny run.
		c.pmAllocSum[pm.ID] = Vec{}
	}
}

// CurUtil returns the PM's current utilisation fraction per resource:
// aggregate current absolute VM demand divided by capacity. Values may
// exceed 1 when demand outstrips capacity; the PM is then overloaded and the
// excess manifests as SLA violation.
func (c *Cluster) CurUtil(pm *PM) Vec {
	return c.pmCurSum[pm.ID].Div(pm.Spec.Capacity)
}

// AvgUtil returns the PM's utilisation per resource computed from the VMs'
// running average demand (the paper's pre-action PM state).
func (c *Cluster) AvgUtil(pm *PM) Vec {
	return c.pmAvgSum[pm.ID].Div(pm.Spec.Capacity)
}

// Overloaded reports whether the PM's current demand saturates at least one
// resource (utilisation >= 1 on any axis).
func (c *Cluster) Overloaded(pm *PM) bool {
	u := c.CurUtil(pm)
	for _, x := range u {
		if x >= 1 {
			return true
		}
	}
	return false
}

// FreeCur returns the remaining absolute capacity under current demand,
// clamped at zero.
func (c *Cluster) FreeCur(pm *PM) Vec {
	u := c.CurUtil(pm)
	var free Vec
	for r := 0; r < NumResources; r++ {
		f := (1 - u[r]) * pm.Spec.Capacity[r]
		if f < 0 {
			f = 0
		}
		free[r] = f
	}
	return free
}

// FitsCur reports whether vm's current absolute demand fits in pm's free
// capacity under current demand — the capacity check of Algorithm 3.
func (c *Cluster) FitsCur(vm *VM, pm *PM) bool {
	return vm.CurAbs().FitsWithin(c.FreeCur(pm))
}

// SetPMOn powers the PM on or off. Switching off a PM that still hosts VMs
// or holds open reservations is rejected: consolidation protocols must empty
// a machine first, and a machine expecting an in-flight VM must stay up to
// receive it.
func (c *Cluster) SetPMOn(pm *PM, on bool) error {
	if !on && len(c.pmVMs[pm.ID]) > 0 {
		return fmt.Errorf("dc: cannot switch off PM %d: hosts %d VMs", pm.ID, len(c.pmVMs[pm.ID]))
	}
	if !on && c.pmResCount[pm.ID] > 0 {
		return fmt.Errorf("dc: cannot switch off PM %d: %d open reservations", pm.ID, c.pmResCount[pm.ID])
	}
	c.setPMUp(pm.ID, on)
	return nil
}

// MigAcct collects the cluster-global side of migrations performed by one
// pair of a pair-sharded consolidation batch. Everything Migrate touches is
// confined to the two endpoint PMs and the moved VM's own columns — except
// the cumulative counters and the migration log, which concurrent pairs would
// race on. MigrateAcct diverts those into a per-pair MigAcct; FoldMigAcct
// replays them into the ledger in draw order, so the folded totals and log
// match a sequential execution of the same pair list.
type MigAcct struct {
	Migrations int64
	EnergyJ    float64
	Log        []Migration
}

// MigrateAcct is Migrate with the cluster-global accounting diverted into
// acct (see MigAcct). acct == nil falls back to direct ledger updates.
func (c *Cluster) MigrateAcct(vm *VM, dst *PM, acct *MigAcct) error {
	return c.migrate(vm, dst, acct)
}

// FoldMigAcct folds one pair's diverted accounting into the cluster ledger.
// Call it once per pair, in draw order.
func (c *Cluster) FoldMigAcct(acct *MigAcct) {
	c.Migrations += acct.Migrations
	c.MigrationEnergyJ += acct.EnergyJ
	if c.logMigrations && len(acct.Log) > 0 {
		c.migrationLog = append(c.migrationLog, acct.Log...)
	}
	acct.Migrations = 0
	acct.EnergyJ = 0
	acct.Log = acct.Log[:0]
}

// Migrate live-migrates vm from its current host to dst, updating counters
// and the energy ledger (Eq. 3). It returns an error when dst is off, vm is
// unplaced, or src == dst. Capacity is deliberately not re-checked here:
// admission is the protocol's decision (Algorithm 3 performs the check), and
// over-admission must be expressible so that bad policies produce the SLA
// violations the paper measures.
func (c *Cluster) Migrate(vm *VM, dst *PM) error {
	return c.migrate(vm, dst, nil)
}

func (c *Cluster) migrate(vm *VM, dst *PM, acct *MigAcct) error {
	host := c.vmHost[vm.ID]
	if host < 0 {
		return fmt.Errorf("dc: VM %d is not placed", vm.ID)
	}
	if !c.pmOn(dst.ID) {
		return fmt.Errorf("dc: destination PM %d is off", dst.ID)
	}
	src := c.PMs[host]
	if src.ID == dst.ID {
		return fmt.Errorf("dc: VM %d already on PM %d", vm.ID, dst.ID)
	}
	c.detach(vm, src)
	c.attach(vm, dst)
	c.vmMigs[vm.ID]++

	// Migration time: VM memory footprint over available bandwidth. The
	// footprint is the VM's current memory demand (post-copy of the working
	// set), bounded below by a small constant so empty VMs still cost.
	memMB := c.vmCur[vm.ID][Mem] * c.vmCap[vm.ID][Mem]
	if memMB < 1 {
		memMB = 1
	}
	bw := src.Spec.NetBandwidthMBps
	if dst.Spec.NetBandwidthMBps < bw {
		bw = dst.Spec.NetBandwidthMBps
	}
	if c.migBW != nil {
		if custom := c.migBW(src.ID, dst.ID); custom > 0 {
			bw = custom
		}
	}
	tau := memMB / bw

	// Eq. 3: E = ((P_i^lm - P_i^idle) + (P_j^lm - P_j^idle)) * tau, with
	// P^lm - P^idle modelled as the dynamic power of the migration's CPU
	// overhead on each endpoint.
	eSrc := (src.Spec.PowerMaxW - src.Spec.PowerIdleW) * src.Spec.MigrationCPUOverhead
	eDst := (dst.Spec.PowerMaxW - dst.Spec.PowerIdleW) * dst.Spec.MigrationCPUOverhead
	energy := (eSrc + eDst) * tau

	// SLALM: performance degradation estimated as 10% of the VM's CPU
	// utilisation during the migration.
	c.vmDegraded[vm.ID] += 0.10 * c.vmCur[vm.ID][CPU] * c.vmCap[vm.ID][CPU] * tau

	if acct != nil {
		acct.Migrations++
		acct.EnergyJ += energy
		if c.logMigrations {
			acct.Log = append(acct.Log, Migration{
				VM: vm.ID, From: src.ID, To: dst.ID, Round: c.round,
				Seconds: tau, EnergyJ: energy,
			})
		}
		return nil
	}
	c.Migrations++
	c.MigrationEnergyJ += energy
	if c.logMigrations {
		c.migrationLog = append(c.migrationLog, Migration{
			VM: vm.ID, From: src.ID, To: dst.ID, Round: c.round,
			Seconds: tau, EnergyJ: energy,
		})
	}
	return nil
}

// Fork-join chunk sizes. Per-VM demand refresh is a handful of flops, so
// chunks are large; per-PM work folds a whole hosted-VM list, so chunks are
// smaller. Both depend only on the problem size, never on worker count.
const (
	vmChunk = 256
	pmChunk = 64
)

// AdvanceRound moves the cluster to round r: every VM's current demand is
// refreshed from the workload and folded into its running average, and PM
// time/energy accounting advances by one round. Both passes fan out over
// c.Workers: the VM refresh writes only the VM's own slots, and each PM's
// rebuild writes only that PM — with its demand sums folded in ascending
// VM-ID order (the per-PM hosted lists are maintained sorted), exactly the
// order the former sequential rebuild used, so the floats are bit-identical
// for every worker count.
func (c *Cluster) AdvanceRound(r int) {
	c.round = r
	c.stepLifecycle(r)
	par.ForChunks(len(c.VMs), vmChunk, c.Workers, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			if c.vmHost[id] < 0 {
				continue
			}
			s := c.workload.At(id, r)
			cur := Vec{s.CPU, s.Mem}
			c.vmCur[id] = cur
			// Running average: ((c*v) + d(t)) / (c+1), per resource.
			n := float64(c.vmCount[id])
			avg := c.vmAvg[id]
			for res := 0; res < NumResources; res++ {
				avg[res] = (n*avg[res] + cur[res]) / (n + 1)
			}
			c.vmAvg[id] = avg
			c.vmCount[id]++
			c.vmRequested[id] += cur[CPU] * c.vmCap[id][CPU] * c.RoundSeconds
		}
	})
	// Rebuild the cached demand sums from scratch: demand changed for every
	// VM, and a fresh summation avoids accumulating float drift. The sorted
	// hosted lists make each fold run in ascending VM-ID order — a fixed
	// order, because float addition is order-sensitive and any randomized
	// order would make runs only probabilistically reproducible.
	par.ForChunks(len(c.PMs), pmChunk, c.Workers, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			var curSum, avgSum Vec
			for _, id := range c.pmVMs[p] {
				cur, avg, cp := c.vmCur[id], c.vmAvg[id], c.vmCap[id]
				curSum = curSum.Add(Vec{cur[CPU] * cp[CPU], cur[Mem] * cp[Mem]})
				avgSum = avgSum.Add(Vec{avg[CPU] * cp[CPU], avg[Mem] * cp[Mem]})
			}
			c.pmCurSum[p] = curSum
			c.pmAvgSum[p] = avgSum
			if !c.pmOn(p) {
				continue
			}
			pm := c.PMs[p]
			c.pmActiveSec[p] += c.RoundSeconds
			cpuU := curSum.Div(pm.Spec.Capacity)[CPU]
			if cpuU >= 1 {
				c.pmOverloadSec[p] += c.RoundSeconds
				cpuU = 1
			}
			c.pmEnergyJ[p] += (pm.Spec.PowerIdleW + (pm.Spec.PowerMaxW-pm.Spec.PowerIdleW)*cpuU) * c.RoundSeconds
		}
	})
}

// ActivePMs returns the number of powered PMs.
func (c *Cluster) ActivePMs() int {
	return par.OrderedCount(len(c.PMs), pmChunk, c.Workers, func(i int) bool {
		return c.pmOn(i)
	})
}

// OverloadedPMs returns the number of powered PMs whose current demand
// saturates at least one resource.
func (c *Cluster) OverloadedPMs() int {
	return par.OrderedCount(len(c.PMs), pmChunk, c.Workers, func(i int) bool {
		return c.pmOn(i) && c.Overloaded(c.PMs[i])
	})
}

// CheckInvariants verifies structural consistency (every VM on exactly one
// powered PM that also lists it, sorted hosted lists, reservation caches in
// sync). It is used by tests and returns the first violation found. The
// per-PM scans fan out over c.Workers with per-chunk hosting counts merged
// in chunk-index order afterwards, so the reported violation is
// deterministic: the one from the lowest PM index range wins, matching the
// former sequential scan.
func (c *Cluster) CheckInvariants() error {
	pmChunks := chunkCount(len(c.PMs), pmChunk)
	pmErrs := make([]error, pmChunks)
	counts := make([]map[int]int, pmChunks)
	par.ForChunks(len(c.PMs), pmChunk, c.Workers, func(lo, hi int) {
		ci := lo / pmChunk
		seen := make(map[int]int)
		counts[ci] = seen
		for p := lo; p < hi; p++ {
			prev := int32(-1)
			var alloc Vec
			for _, id := range c.pmVMs[p] {
				if id <= prev {
					pmErrs[ci] = fmt.Errorf("dc: PM %d hosted list not sorted at id %d", p, id)
					return
				}
				prev = id
				if int(id) >= len(c.VMs) {
					pmErrs[ci] = fmt.Errorf("dc: PM %d lists unknown VM %d", p, id)
					return
				}
				if c.vmHost[id] != int32(p) {
					pmErrs[ci] = fmt.Errorf("dc: VM %d hosted by PM %d but Host=%d", id, p, c.vmHost[id])
					return
				}
				if !c.pmOn(p) {
					pmErrs[ci] = fmt.Errorf("dc: powered-off PM %d hosts VM %d", p, id)
					return
				}
				alloc = alloc.Add(c.vmCap[id])
				seen[int(id)]++
			}
			for r := 0; r < NumResources; r++ {
				diff := alloc[r] - c.pmAllocSum[p][r]
				if diff < -1e-6 || diff > 1e-6 {
					pmErrs[ci] = fmt.Errorf("dc: PM %d allocSum drifted: cached %v, actual %v", p, c.pmAllocSum[p], alloc)
					return
				}
			}
		}
	})
	for _, err := range pmErrs {
		if err != nil {
			return err
		}
	}
	seen := make(map[int]int)
	for _, m := range counts {
		for id, n := range m {
			seen[id] += n
		}
	}
	vmErrs := make([]error, chunkCount(len(c.VMs), vmChunk))
	par.ForChunks(len(c.VMs), vmChunk, c.Workers, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			if c.vmHost[id] >= 0 && seen[id] != 1 {
				vmErrs[lo/vmChunk] = fmt.Errorf("dc: VM %d appears on %d PMs", id, seen[id])
				return
			}
		}
	})
	for _, err := range vmErrs {
		if err != nil {
			return err
		}
	}
	// Reservation caches: fold the cluster-level map into per-PM sums once,
	// then compare against the cached aggregates chunk-parallel.
	actualSum := make(map[int32]Vec)
	actualCount := make(map[int32]int32)
	for k, d := range c.reservations {
		actualSum[k.pm] = actualSum[k.pm].Add(d)
		actualCount[k.pm]++
	}
	resErrs := make([]error, pmChunks)
	par.ForChunks(len(c.PMs), pmChunk, c.Workers, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			if actualCount[int32(p)] != c.pmResCount[p] {
				resErrs[lo/pmChunk] = fmt.Errorf("dc: PM %d reservation count drifted: cached %d, actual %d", p, c.pmResCount[p], actualCount[int32(p)])
				return
			}
			sum := actualSum[int32(p)]
			for r := 0; r < NumResources; r++ {
				diff := sum[r] - c.pmResSum[p][r]
				if diff < -1e-6 || diff > 1e-6 {
					resErrs[lo/pmChunk] = fmt.Errorf("dc: PM %d reservedSum drifted: cached %v, actual %v", p, c.pmResSum[p], sum)
					return
				}
			}
			if !c.pmOn(p) && c.pmResCount[p] > 0 {
				resErrs[lo/pmChunk] = fmt.Errorf("dc: powered-off PM %d holds %d reservations", p, c.pmResCount[p])
				return
			}
		}
	})
	for _, err := range resErrs {
		if err != nil {
			return err
		}
	}
	return nil
}

// chunkCount mirrors par.ForChunks's partitioning: the number of chunks a
// problem of size n splits into.
func chunkCount(n, chunk int) int {
	if n <= 0 {
		return 0
	}
	return (n + chunk - 1) / chunk
}
