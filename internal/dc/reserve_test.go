package dc

import (
	"testing"

	"github.com/glap-sim/glap/internal/sim"
	"github.com/glap-sim/glap/internal/trace"
)

func reserveCluster(t *testing.T) *Cluster {
	t.Helper()
	set, err := trace.Generate(trace.DefaultGenConfig(8, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{PMs: 4, Workload: set})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(2)
	c.PlaceRandom(rng.Intn)
	c.AdvanceRound(1)
	return c
}

func TestReserveShrinksFreeCapacity(t *testing.T) {
	c := reserveCluster(t)
	pm := c.PMs[0]
	free := c.FreeCur(pm)
	d := Vec{free[CPU] / 2, free[Mem] / 2}
	if err := c.Reserve(pm, 1, d); err != nil {
		t.Fatal(err)
	}
	if got := c.FreeCurReserved(pm); !d.FitsWithin(got.Add(Vec{1e-9, 1e-9})) || got[CPU] >= free[CPU] {
		t.Fatalf("FreeCurReserved = %v, FreeCur = %v, reserved %v", got, free, d)
	}
	if c.FitsCurReserved(free, pm) {
		t.Fatal("full free capacity admitted despite open reservation")
	}
	if !c.FitsCurReserved(d, pm) {
		t.Fatal("fitting demand rejected")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReserveTokenLifecycle(t *testing.T) {
	c := reserveCluster(t)
	pm := c.PMs[1]
	d := Vec{10, 10}
	if err := c.Reserve(pm, 7, d); err != nil {
		t.Fatal(err)
	}
	if err := c.Reserve(pm, 7, d); err == nil {
		t.Fatal("duplicate token accepted")
	}
	if c.OpenReservations() != 1 {
		t.Fatalf("OpenReservations = %d, want 1", c.OpenReservations())
	}
	if !c.ReleaseReservation(pm, 7) {
		t.Fatal("release of open token reported not found")
	}
	if c.ReleaseReservation(pm, 7) {
		t.Fatal("double release reported found")
	}
	if c.OpenReservations() != 0 {
		t.Fatalf("OpenReservations = %d after release, want 0", c.OpenReservations())
	}
	if got := c.Reserved(pm); got != (Vec{}) {
		t.Fatalf("Reserved = %v after release, want zero", got)
	}
}

func TestReservationBlocksPowerOff(t *testing.T) {
	c := reserveCluster(t)
	// Find an empty powered PM (or empty one by construction).
	pm := c.PMs[2]
	for _, id := range pm.VMIDs() {
		vm := c.VMs[id]
		for _, dst := range c.PMs {
			if dst.ID != pm.ID && dst.On() {
				if err := c.Migrate(vm, dst); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
	}
	if err := c.Reserve(pm, 3, Vec{5, 5}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetPMOn(pm, false); err == nil {
		t.Fatal("power-off accepted with open reservation")
	}
	c.ReleaseReservation(pm, 3)
	if err := c.SetPMOn(pm, false); err != nil {
		t.Fatalf("power-off rejected after release: %v", err)
	}
	if err := c.Reserve(pm, 4, Vec{5, 5}); err == nil {
		t.Fatal("reservation accepted on powered-off PM")
	}
}
