package par

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestForChunksCoversAllItems(t *testing.T) {
	for _, tc := range []struct{ n, chunk, workers int }{
		{100, 7, 4},
		{100, 7, 0},  // auto
		{100, 7, 1},  // inline
		{3, 10, 8},   // n < chunk, workers > chunks
		{5, 1, 100},  // workers > n
		{1, 1, 8},    // single item
		{64, 64, 2},  // exactly one chunk
		{65, 64, 2},  // one full + one partial chunk
		{0, 4, 4},    // empty
		{-3, 4, 4},   // negative
		{10, 0, 4},   // chunk < 1 defaults to 1
		{10, -2, -5}, // everything degenerate
	} {
		n := tc.n
		if n < 0 {
			n = 0
		}
		seen := make([]atomic.Int32, n+1)
		ForChunks(tc.n, tc.chunk, tc.workers, func(lo, hi int) {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("ForChunks(%v): bad chunk [%d, %d)", tc, lo, hi)
			}
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
			}
		})
		for i := 0; i < n; i++ {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("ForChunks(%v): item %d visited %d times", tc, i, got)
			}
		}
	}
}

func TestForChunksChunkBoundariesIgnoreWorkers(t *testing.T) {
	// The same (n, chunk) must yield the same chunk set for any worker count.
	collect := func(workers int) map[[2]int]bool {
		var mu atomic.Pointer[map[[2]int]bool]
		m := make(map[[2]int]bool)
		mu.Store(&m)
		var lock atomic.Int32
		ForChunks(103, 8, workers, func(lo, hi int) {
			for !lock.CompareAndSwap(0, 1) {
			}
			(*mu.Load())[[2]int{lo, hi}] = true
			lock.Store(0)
		})
		return m
	}
	a, b := collect(1), collect(7)
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Fatalf("chunk %v missing at workers=7", k)
		}
	}
}

func TestForChunksPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 8} {
		func() {
			defer func() {
				r := recover()
				if r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			ForChunks(64, 1, workers, func(lo, hi int) {
				if lo == 13 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: ForChunks returned without panicking", workers)
		}()
	}
}

func TestForChunksPanicInCallerWorker(t *testing.T) {
	// Chunk 0 is always claimed first by the caller when workers run behind;
	// panic on every chunk so whichever executor runs first trips it.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ForChunks(8, 1, 4, func(lo, hi int) { panic(lo) })
}

func TestOrderedSumMatchesSequential(t *testing.T) {
	// Values spanning many magnitudes make float addition order-sensitive;
	// OrderedSum must reproduce the sequential fold bit-for-bit.
	vals := make([]float64, 1000)
	x := uint64(88172645463325252)
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = math.Ldexp(float64(x>>11), int(x%64)-32)
	}
	want := 0.0
	for _, v := range vals {
		want += v
	}
	for _, workers := range []int{0, 1, 3, 16} {
		got := OrderedSum(len(vals), 17, workers, func(i int) float64 { return vals[i] })
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("workers=%d: sum %x, want %x", workers, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestOrderedCount(t *testing.T) {
	for _, workers := range []int{0, 1, 5} {
		got := OrderedCount(1000, 13, workers, func(i int) bool { return i%3 == 0 })
		if got != 334 {
			t.Fatalf("workers=%d: count %d, want 334", workers, got)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("explicit count must pass through")
	}
	if Workers(0) < 1 || Workers(-2) < 1 {
		t.Fatal("auto must resolve to >= 1")
	}
}

func TestBudgetRoundTrips(t *testing.T) {
	// Draining and refilling the budget must leave it at capacity: run many
	// auto fork-joins and verify the token count is restored.
	before := len(extraTokens)
	for i := 0; i < 50; i++ {
		ForChunks(256, 4, 0, func(lo, hi int) {})
	}
	if after := len(extraTokens); after != before {
		t.Fatalf("budget leaked: %d tokens before, %d after", before, after)
	}
}
