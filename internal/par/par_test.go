package par

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestForChunksCoversAllItems(t *testing.T) {
	for _, tc := range []struct{ n, chunk, workers int }{
		{100, 7, 4},
		{100, 7, 0},  // auto
		{100, 7, 1},  // inline
		{3, 10, 8},   // n < chunk, workers > chunks
		{5, 1, 100},  // workers > n
		{1, 1, 8},    // single item
		{64, 64, 2},  // exactly one chunk
		{65, 64, 2},  // one full + one partial chunk
		{0, 4, 4},    // empty
		{-3, 4, 4},   // negative
		{10, 0, 4},   // chunk < 1 defaults to 1
		{10, -2, -5}, // everything degenerate
	} {
		n := tc.n
		if n < 0 {
			n = 0
		}
		seen := make([]atomic.Int32, n+1)
		ForChunks(tc.n, tc.chunk, tc.workers, func(lo, hi int) {
			if lo < 0 || hi > tc.n || lo >= hi {
				t.Errorf("ForChunks(%v): bad chunk [%d, %d)", tc, lo, hi)
			}
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
			}
		})
		for i := 0; i < n; i++ {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("ForChunks(%v): item %d visited %d times", tc, i, got)
			}
		}
	}
}

func TestForChunksChunkBoundariesIgnoreWorkers(t *testing.T) {
	// The same (n, chunk) must yield the same chunk set for any worker count.
	collect := func(workers int) map[[2]int]bool {
		var mu atomic.Pointer[map[[2]int]bool]
		m := make(map[[2]int]bool)
		mu.Store(&m)
		var lock atomic.Int32
		ForChunks(103, 8, workers, func(lo, hi int) {
			for !lock.CompareAndSwap(0, 1) {
			}
			(*mu.Load())[[2]int{lo, hi}] = true
			lock.Store(0)
		})
		return m
	}
	a, b := collect(1), collect(7)
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Fatalf("chunk %v missing at workers=7", k)
		}
	}
}

func TestForChunksPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 8} {
		func() {
			defer func() {
				r := recover()
				if r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			ForChunks(64, 1, workers, func(lo, hi int) {
				if lo == 13 {
					panic("boom")
				}
			})
			t.Fatalf("workers=%d: ForChunks returned without panicking", workers)
		}()
	}
}

func TestForChunksPanicInCallerWorker(t *testing.T) {
	// Chunk 0 is always claimed first by the caller when workers run behind;
	// panic on every chunk so whichever executor runs first trips it.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ForChunks(8, 1, 4, func(lo, hi int) { panic(lo) })
}

func TestOrderedSumMatchesSequential(t *testing.T) {
	// Values spanning many magnitudes make float addition order-sensitive;
	// OrderedSum must reproduce the sequential fold bit-for-bit.
	vals := make([]float64, 1000)
	x := uint64(88172645463325252)
	for i := range vals {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		vals[i] = math.Ldexp(float64(x>>11), int(x%64)-32)
	}
	want := 0.0
	for _, v := range vals {
		want += v
	}
	for _, workers := range []int{0, 1, 3, 16} {
		got := OrderedSum(len(vals), 17, workers, func(i int) float64 { return vals[i] })
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("workers=%d: sum %x, want %x", workers, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestOrderedCount(t *testing.T) {
	for _, workers := range []int{0, 1, 5} {
		got := OrderedCount(1000, 13, workers, func(i int) bool { return i%3 == 0 })
		if got != 334 {
			t.Fatalf("workers=%d: count %d, want 334", workers, got)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("explicit count must pass through")
	}
	if Workers(0) < 1 || Workers(-2) < 1 {
		t.Fatal("auto must resolve to >= 1")
	}
}

func TestBudgetRoundTrips(t *testing.T) {
	// Draining and refilling the budget must leave it at capacity: run many
	// auto fork-joins and verify the token count is restored.
	before := len(extraTokens)
	for i := 0; i < 50; i++ {
		ForChunks(256, 4, 0, func(lo, hi int) {})
	}
	if after := len(extraTokens); after != before {
		t.Fatalf("budget leaked: %d tokens before, %d after", before, after)
	}
}

func TestForChunksEdgeTable(t *testing.T) {
	// Pins the n < workers and n == 0 edges: fn runs exactly once per chunk,
	// never for empty input, and concurrency never exceeds min(workers,
	// chunks) — i.e. no executor exists without a chunk to claim.
	for _, tc := range []struct {
		n, chunk, workers int
		wantChunks        int
	}{
		{0, 4, 8, 0},  // empty input: no chunks, no goroutines
		{-1, 4, 8, 0}, // negative input behaves as empty
		{1, 4, 8, 1},  // one partial chunk, seven idle workers requested
		{2, 1, 64, 2}, // n < workers: at most 2 executors may run
		{3, 2, 8, 2},  // chunks < workers
		{7, 3, 2, 3},  // workers < chunks
		{5, 5, 5, 1},  // single exact chunk runs inline
		{6, 4, 1, 2},  // inline multi-chunk
	} {
		var calls, inFlight, highWater atomic.Int32
		ForChunks(tc.n, tc.chunk, tc.workers, func(lo, hi int) {
			cur := inFlight.Add(1)
			for {
				hw := highWater.Load()
				if cur <= hw || highWater.CompareAndSwap(hw, cur) {
					break
				}
			}
			calls.Add(1)
			inFlight.Add(-1)
		})
		if got := int(calls.Load()); got != tc.wantChunks {
			t.Errorf("ForChunks(%+v): fn called %d times, want %d", tc, got, tc.wantChunks)
		}
		maxExec := tc.workers
		if tc.workers <= 0 {
			maxExec = int(^uint(0) >> 1)
		}
		if tc.wantChunks < maxExec {
			maxExec = tc.wantChunks
		}
		if hw := int(highWater.Load()); hw > maxExec {
			t.Errorf("ForChunks(%+v): %d concurrent executions, want <= %d", tc, hw, maxExec)
		}
	}
}

func TestPairScheduleBatchesAreNodeDisjoint(t *testing.T) {
	// A dense, conflict-heavy pair list drawn from a fixed xorshift stream.
	const n = 50
	x := uint64(0x9e3779b97f4a7c15)
	next := func(m int32) int32 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return int32(x % uint64(m))
	}
	var pairs []Pair
	for i := 0; i < 400; i++ {
		a := next(n)
		b := next(n - 1)
		if b >= a {
			b++
		}
		pairs = append(pairs, Pair{a, b})
	}
	var s PairSchedule
	s.Build(pairs, n)
	if len(s.Order) != len(pairs) {
		t.Fatalf("schedule covers %d pairs, want %d", len(s.Order), len(pairs))
	}
	seenPair := make([]bool, len(pairs))
	lastBatchOf := make([]int, n)
	for i := range lastBatchOf {
		lastBatchOf[i] = -1
	}
	for b := 0; b < s.Batches(); b++ {
		inBatch := map[int32]bool{}
		for _, idx := range s.Order[s.Offsets[b]:s.Offsets[b+1]] {
			if seenPair[idx] {
				t.Fatalf("pair %d scheduled twice", idx)
			}
			seenPair[idx] = true
			p := pairs[idx]
			if inBatch[p.A] || inBatch[p.B] {
				t.Fatalf("batch %d not node-disjoint at pair %d (%d,%d)", b, idx, p.A, p.B)
			}
			inBatch[p.A], inBatch[p.B] = true, true
			lastBatchOf[p.A], lastBatchOf[p.B] = b, b
		}
	}
	for i, ok := range seenPair {
		if !ok {
			t.Fatalf("pair %d missing from schedule", i)
		}
	}
}

func TestPairScheduleConflictingPairsKeepDrawOrder(t *testing.T) {
	// Pairs sharing an endpoint must execute in draw order (monotone batch
	// index), so each node's exchange sequence matches sequential execution.
	pairs := []Pair{{0, 1}, {2, 3}, {1, 2}, {0, 3}, {0, 1}}
	var s PairSchedule
	s.Build(pairs, 4)
	pos := make([]int, len(pairs)) // schedule position of each pair
	batch := make([]int, len(pairs))
	for b := 0; b < s.Batches(); b++ {
		for o := s.Offsets[b]; o < s.Offsets[b+1]; o++ {
			pos[s.Order[o]] = int(o)
			batch[s.Order[o]] = b
		}
	}
	for i := 0; i < len(pairs); i++ {
		for j := i + 1; j < len(pairs); j++ {
			pi, pj := pairs[i], pairs[j]
			shared := pi.A == pj.A || pi.A == pj.B || pi.B == pj.A || pi.B == pj.B
			if shared && batch[i] >= batch[j] {
				t.Fatalf("conflicting pairs %d,%d in batches %d,%d (want strictly increasing)",
					i, j, batch[i], batch[j])
			}
		}
	}
	// Greedy earliest-fit: the two disjoint leading pairs share batch 0.
	if batch[0] != 0 || batch[1] != 0 {
		t.Fatalf("disjoint pairs {0,1},{2,3} in batches %d,%d, want both 0", batch[0], batch[1])
	}
}

func TestPairScheduleDeterministicAndReusable(t *testing.T) {
	// Rebuilding (including after an interleaved build of a different list)
	// must reproduce the same schedule — Build is a pure function of input.
	mk := func(seed uint64, n, count int32) []Pair {
		x := seed
		var out []Pair
		for i := int32(0); i < count; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			a := int32(x % uint64(n))
			b := (a + 1 + int32((x>>32)%uint64(n-1))) % n
			out = append(out, Pair{a, b})
		}
		return out
	}
	pa := mk(7, 30, 120)
	pb := mk(99, 64, 50)
	var s1, s2 PairSchedule
	s1.Build(pa, 30)
	ord := append([]int32(nil), s1.Order...)
	off := append([]int32(nil), s1.Offsets...)
	s1.Build(pb, 64) // dirty the scratch with a different shape
	s1.Build(pa, 30)
	s2.Build(pa, 30)
	for i := range ord {
		if s1.Order[i] != ord[i] || s2.Order[i] != ord[i] {
			t.Fatalf("order diverged at %d: rebuild=%d fresh=%d first=%d",
				i, s1.Order[i], s2.Order[i], ord[i])
		}
	}
	if len(s1.Offsets) != len(off) {
		t.Fatalf("batch count changed across rebuild: %d vs %d", len(s1.Offsets)-1, len(off)-1)
	}
	for i := range off {
		if s1.Offsets[i] != off[i] {
			t.Fatalf("offsets diverged at %d", i)
		}
	}
}

func TestPairScheduleEmpty(t *testing.T) {
	var s PairSchedule
	s.Build(nil, 10)
	if s.Batches() != 0 || len(s.Order) != 0 {
		t.Fatalf("empty pair list: %d batches, %d order entries", s.Batches(), len(s.Order))
	}
}
