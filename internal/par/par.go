// Package par provides the deterministic fork-join primitives shared by the
// simulation kernel, the cluster model and the metrics scans.
//
// The design contract is that worker count NEVER influences results: callers
// partition work into chunks whose boundaries depend only on the problem
// size, keep per-item work self-contained (own state writes, shared state
// reads), and combine floating-point partials in index order. Under that
// contract the scheduler is free to size the pool opportunistically, so one
// machine-wide budget of extra workers is shared by every fork-join user —
// nested parallelism (replications running parallel engines running parallel
// rounds) degrades toward sequential execution instead of oversubscribing
// the machine.
//
// Worker-count semantics, used consistently across the repo:
//
//   - workers <= 0 ("auto"): size from the shared budget, at most GOMAXPROCS
//     concurrent executors machine-wide. This is the default everywhere.
//   - workers == 1: run inline on the caller, no goroutines.
//   - workers > 1 ("explicit"): spawn exactly min(workers, chunks) executors,
//     bypassing the budget. Differential and race tests rely on explicit
//     counts creating real concurrency even on saturated machines.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// extraTokens is the machine-wide budget of additional (beyond-the-caller)
// workers available to auto-sized fork-joins. Capacity GOMAXPROCS-1: the
// caller of every fork-join already occupies one processor, so a fully
// drained budget means every core is busy and new fork-joins run inline.
var extraTokens = func() chan struct{} {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 0 {
		n = 0
	}
	ch := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		ch <- struct{}{}
	}
	return ch
}()

// acquireExtra claims up to n extra-worker tokens without blocking and
// returns how many it got.
func acquireExtra(n int) int {
	got := 0
	for got < n {
		select {
		case <-extraTokens:
			got++
		default:
			return got
		}
	}
	return got
}

// releaseExtra returns n tokens to the budget.
func releaseExtra(n int) {
	for i := 0; i < n; i++ {
		extraTokens <- struct{}{}
	}
}

// Workers resolves a requested worker count to an effective one: values <= 0
// select GOMAXPROCS. It does not consult the shared budget; use it where a
// nominal count is needed (e.g. for reporting).
func Workers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// ForChunks partitions [0, n) into contiguous chunks of size chunk (the last
// may be shorter) and calls fn(lo, hi) once per chunk, spread over a bounded
// set of goroutines per the package worker-count semantics. Chunk boundaries
// depend only on n and chunk — never on workers — so callers that reduce
// per-chunk partials in chunk-index order get bit-stable float results
// across worker counts.
//
// Chunks are claimed in index order but may complete in any order; fn must
// not assume chunk c-1 finished before chunk c starts. A panic in fn (on any
// worker) is re-raised in the caller with its original panic value after all
// workers have stopped.
func ForChunks(n, chunk, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk < 1 {
		chunk = 1
	}
	chunks := (n + chunk - 1) / chunk
	target := workers
	auto := workers <= 0
	if auto {
		target = runtime.GOMAXPROCS(0)
	}
	if target > chunks {
		target = chunks
	}
	extra := target - 1
	if auto && extra > 0 {
		extra = acquireExtra(extra)
		defer releaseExtra(extra)
	}
	if extra <= 0 {
		// Inline: no goroutines, panics propagate naturally.
		for c := 0; c < chunks; c++ {
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}

	var (
		next  atomic.Int64 // next unclaimed chunk index
		stop  atomic.Bool  // set on first panic; workers stop claiming
		mu    sync.Mutex
		pv    any // first recovered panic value
		hasPV bool
		wg    sync.WaitGroup
	)
	work := func() {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if !hasPV {
					hasPV, pv = true, r
				}
				mu.Unlock()
				stop.Store(true)
			}
		}()
		for !stop.Load() {
			c := int(next.Add(1) - 1)
			if c >= chunks {
				return
			}
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	wg.Add(extra)
	for i := 0; i < extra; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work() // the caller participates as a worker
	wg.Wait()
	if hasPV {
		panic(pv)
	}
}

// OrderedSum computes sum(fn(0) + fn(1) + ... + fn(n-1)) with the per-item
// evaluations fanned out over workers but the final float summation folded
// strictly in index order, so the result is bit-identical to the sequential
// loop regardless of worker count or chunking.
func OrderedSum(n, chunk, workers int, fn func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	vals := make([]float64, n)
	ForChunks(n, chunk, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			vals[i] = fn(i)
		}
	})
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum
}

// OrderedCount counts the i in [0, n) for which pred(i) holds, with the
// predicate evaluations fanned out over workers. Integer addition is exact,
// so per-chunk partials may be combined in any order.
func OrderedCount(n, chunk, workers int, pred func(i int) bool) int {
	if n <= 0 {
		return 0
	}
	var total atomic.Int64
	ForChunks(n, chunk, workers, func(lo, hi int) {
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i) {
				c++
			}
		}
		total.Add(int64(c))
	})
	return int(total.Load())
}
