package par

// Pair scheduling for deterministic pair-sharded round execution.
//
// A gossip round is a list of node pairs drawn in a fixed sequence from the
// per-node RNG streams. Two pairs conflict when they share an endpoint: their
// exchanges mutate the same per-node state and must not run concurrently.
// PairSchedule greedy-colors the draw-ordered pair list into batches of
// node-disjoint pairs; batches run one after another, each batch fanned out
// over ForChunks. The coloring depends only on the pair list — never on the
// worker count — so sharded execution inherits the package determinism
// contract: byte-identical results at any worker count.
//
// The greedy rule assigns pair i to batch 1 + max(batch of the latest earlier
// pair touching either endpoint), i.e. the earliest batch that keeps every
// batch node-disjoint without reordering conflicting pairs. Consequences the
// protocols rely on:
//
//   - Within a batch, pairs keep draw order (the coloring pass is stable).
//   - Two pairs sharing a node run in draw order across batches, so a node's
//     own exchange sequence is exactly the sequential one.
//   - Independent pairs may run in any interleaving; protocols opting in via
//     sim.PairRound must make pair effects commute across disjoint pairs
//     (exact integer/set updates, or order-folded accounting at EndPairs).

// Pair is one scheduled interaction between two distinct node indices.
type Pair struct {
	A, B int32
}

// PairSchedule is a batch-major reordering of a drawn pair list: batch b is
// Order[Offsets[b]:Offsets[b+1]], each entry the index of a pair in the
// original draw-ordered slice. All pairs within a batch are node-disjoint.
type PairSchedule struct {
	Order   []int32 // permutation of [0, len(pairs)), batch-major, draw-stable within a batch
	Offsets []int32 // len = Batches()+1; batch b spans Order[Offsets[b]:Offsets[b+1]]

	batchOf []int32 // scratch: latest batch touching each node, -1 = none
	touched []int32 // scratch: nodes written in batchOf this Build
	counts  []int32 // scratch: pairs per batch, then the placement cursor
	colors  []int32 // scratch: per-pair batch assignment
}

// Batches returns the number of batches in the current schedule.
func (s *PairSchedule) Batches() int {
	if len(s.Offsets) == 0 {
		return 0
	}
	return len(s.Offsets) - 1
}

// Build greedy-colors pairs (drawn over node indices [0, n)) into node-
// disjoint batches, reusing the schedule's scratch storage. The result is a
// pure function of the pair list; Build does not allocate once the scratch
// has grown to a given (n, len(pairs)) high-water mark.
func (s *PairSchedule) Build(pairs []Pair, n int) {
	if cap(s.batchOf) < n {
		grown := make([]int32, n)
		for i := range grown {
			grown[i] = -1
		}
		s.batchOf, s.touched = grown, s.touched[:0]
	}
	s.batchOf = s.batchOf[:cap(s.batchOf)]
	// Reset only the entries the previous Build dirtied.
	for _, v := range s.touched {
		s.batchOf[v] = -1
	}
	s.touched = s.touched[:0]
	s.counts = s.counts[:0]
	if cap(s.colors) < len(pairs) {
		s.colors = make([]int32, 0, len(pairs))
	}
	s.colors = s.colors[:0]

	// Pass 1: color each pair and count batch sizes.
	maxBatch := int32(-1)
	for _, p := range pairs {
		b := s.batchOf[p.A]
		if bb := s.batchOf[p.B]; bb > b {
			b = bb
		}
		b++
		if s.batchOf[p.A] == -1 {
			s.touched = append(s.touched, p.A)
		}
		if s.batchOf[p.B] == -1 {
			s.touched = append(s.touched, p.B)
		}
		s.batchOf[p.A], s.batchOf[p.B] = b, b
		if b > maxBatch {
			maxBatch = b
			s.counts = append(s.counts, 0)
		}
		s.counts[b]++
		s.colors = append(s.colors, b)
	}

	// Offsets from the batch-size prefix sum.
	batches := int(maxBatch + 1)
	if cap(s.Offsets) < batches+1 {
		s.Offsets = make([]int32, batches+1)
	}
	s.Offsets = s.Offsets[:batches+1]
	s.Offsets[0] = 0
	for b := 0; b < batches; b++ {
		s.Offsets[b+1] = s.Offsets[b] + s.counts[b]
	}

	// Pass 2: stable batch-major placement (counts becomes the write cursor).
	for b := range s.counts {
		s.counts[b] = s.Offsets[b]
	}
	if cap(s.Order) < len(pairs) {
		s.Order = make([]int32, len(pairs))
	}
	s.Order = s.Order[:len(pairs)]
	for i, b := range s.colors {
		s.Order[s.counts[b]] = int32(i)
		s.counts[b]++
	}
}
