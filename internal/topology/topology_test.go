package topology

import (
	"testing"
	"testing/quick"
)

func mustTree(t *testing.T, n, perRack, racksPerPod int) *Tree {
	t.Helper()
	tr, err := New(n, perRack, racksPerPod)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 2); err == nil {
		t.Fatal("expected error for zero PMs")
	}
	if _, err := New(8, 0, 2); err == nil {
		t.Fatal("expected error for zero rack size")
	}
	if _, err := New(8, 4, 0); err == nil {
		t.Fatal("expected error for zero pod size")
	}
}

func TestLayout(t *testing.T) {
	// 20 PMs, 4 per rack, 2 racks per pod: 5 racks, 3 pods (last partial).
	tr := mustTree(t, 20, 4, 2)
	if tr.NumRacks() != 5 || tr.NumPods() != 3 {
		t.Fatalf("racks=%d pods=%d", tr.NumRacks(), tr.NumPods())
	}
	if tr.RackOf(0) != 0 || tr.RackOf(3) != 0 || tr.RackOf(4) != 1 || tr.RackOf(19) != 4 {
		t.Fatal("RackOf broken")
	}
	if tr.PodOf(0) != 0 || tr.PodOf(7) != 0 || tr.PodOf(8) != 1 || tr.PodOf(19) != 2 {
		t.Fatal("PodOf broken")
	}
}

func TestDistance(t *testing.T) {
	tr := mustTree(t, 16, 4, 2)
	if tr.Distance(3, 3) != 0 {
		t.Fatal("self distance")
	}
	if tr.Distance(0, 3) != 2 {
		t.Fatal("same-rack distance")
	}
	if tr.Distance(0, 4) != 4 {
		t.Fatal("same-pod distance")
	}
	if tr.Distance(0, 8) != 6 {
		t.Fatal("cross-pod distance")
	}
}

func TestDistanceSymmetric(t *testing.T) {
	tr := mustTree(t, 64, 4, 4)
	f := func(a, b uint8) bool {
		x, y := int(a)%64, int(b)%64
		return tr.Distance(x, y) == tr.Distance(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthFactorMonotone(t *testing.T) {
	tr := mustTree(t, 64, 4, 4)
	if tr.BandwidthFactor(0, 1) != 1 {
		t.Fatal("same-rack factor should be 1")
	}
	if tr.BandwidthFactor(0, 4) >= tr.BandwidthFactor(0, 1) {
		t.Fatal("cross-rack factor should be smaller")
	}
	if tr.BandwidthFactor(0, 60) >= tr.BandwidthFactor(0, 4) {
		t.Fatal("cross-pod factor should be smallest")
	}
}

func TestActiveSwitches(t *testing.T) {
	tr := mustTree(t, 16, 4, 2) // 4 racks, 2 pods
	allOn := func(int) bool { return true }
	edge, agg, core := tr.ActiveSwitches(allOn)
	if edge != 4 || agg != 2 || core != 1 {
		t.Fatalf("all on: %d/%d/%d", edge, agg, core)
	}
	allOff := func(int) bool { return false }
	edge, agg, core = tr.ActiveSwitches(allOff)
	if edge != 0 || agg != 0 || core != 0 {
		t.Fatalf("all off: %d/%d/%d", edge, agg, core)
	}
	// Only PM 5 on: rack 1, pod 0.
	one := func(pm int) bool { return pm == 5 }
	edge, agg, core = tr.ActiveSwitches(one)
	if edge != 1 || agg != 1 || core != 1 {
		t.Fatalf("one on: %d/%d/%d", edge, agg, core)
	}
	// PMs 0 and 15 on: racks 0 and 3, pods 0 and 1.
	two := func(pm int) bool { return pm == 0 || pm == 15 }
	edge, agg, core = tr.ActiveSwitches(two)
	if edge != 2 || agg != 2 || core != 1 {
		t.Fatalf("two pods: %d/%d/%d", edge, agg, core)
	}
}

func TestSwitchPowerW(t *testing.T) {
	tr := mustTree(t, 16, 4, 2)
	allOn := func(int) bool { return true }
	want := 4*150.0 + 2*300.0 + 600.0
	if got := tr.SwitchPowerW(allOn, DefaultSwitchSpec); got != want {
		t.Fatalf("power %g, want %g", got, want)
	}
	if got := tr.SwitchPowerW(func(int) bool { return false }, DefaultSwitchSpec); got != 0 {
		t.Fatalf("all-off power %g", got)
	}
}

func TestConsolidationSavesSwitches(t *testing.T) {
	// The property the future-work extension exploits: concentrating the
	// same number of active PMs into fewer racks powers off switches.
	tr := mustTree(t, 32, 4, 2)
	spread := func(pm int) bool { return pm%4 == 0 } // one per rack: 8 racks up
	packed := func(pm int) bool { return pm/4 < 2 }  // racks 0-1 only
	if tr.SwitchPowerW(packed, DefaultSwitchSpec) >= tr.SwitchPowerW(spread, DefaultSwitchSpec) {
		t.Fatal("packing into fewer racks should reduce switch power")
	}
}
