// Package topology models the data center network as the classic
// three-tier tree (top-of-rack/edge switches, aggregation switches per pod,
// a core layer) and provides the switch power accounting needed by the
// paper's stated future work: "extend the algorithm to be aware of the
// network topology such that it will switch off network switches, an
// important factor of energy consumption in cloud data centers."
//
// The model supplies three things to the consolidation layer:
//
//  1. locality — which PMs share a rack or pod;
//  2. migration bandwidth — cross-rack and cross-pod transfers traverse
//     oversubscribed links and are slower (hence costlier, per Eq. 3);
//  3. switch energy — an edge switch can sleep when its whole rack is off,
//     an aggregation switch when its whole pod is off.
package topology

import "fmt"

// Tree is a three-tier data center network over a dense PM id space.
type Tree struct {
	// PMsPerRack is the number of PMs under one edge (top-of-rack) switch.
	PMsPerRack int
	// RacksPerPod is the number of racks under one aggregation switch.
	RacksPerPod int

	nPMs int
}

// New builds a tree over nPMs machines. The last rack and pod may be
// partially filled.
func New(nPMs, pmsPerRack, racksPerPod int) (*Tree, error) {
	if nPMs <= 0 {
		return nil, fmt.Errorf("topology: nPMs must be positive, got %d", nPMs)
	}
	if pmsPerRack <= 0 || racksPerPod <= 0 {
		return nil, fmt.Errorf("topology: rack/pod sizes must be positive, got %d/%d", pmsPerRack, racksPerPod)
	}
	return &Tree{PMsPerRack: pmsPerRack, RacksPerPod: racksPerPod, nPMs: nPMs}, nil
}

// NumPMs returns the number of machines.
func (t *Tree) NumPMs() int { return t.nPMs }

// RackOf returns the rack index of PM id.
func (t *Tree) RackOf(pm int) int { return pm / t.PMsPerRack }

// PodOf returns the pod index of PM id.
func (t *Tree) PodOf(pm int) int { return t.RackOf(pm) / t.RacksPerPod }

// NumRacks returns the number of (possibly partial) racks.
func (t *Tree) NumRacks() int { return (t.nPMs + t.PMsPerRack - 1) / t.PMsPerRack }

// NumPods returns the number of (possibly partial) pods.
func (t *Tree) NumPods() int { return (t.NumRacks() + t.RacksPerPod - 1) / t.RacksPerPod }

// SameRack reports whether two PMs share an edge switch.
func (t *Tree) SameRack(a, b int) bool { return t.RackOf(a) == t.RackOf(b) }

// SamePod reports whether two PMs share an aggregation switch.
func (t *Tree) SamePod(a, b int) bool { return t.PodOf(a) == t.PodOf(b) }

// Distance returns the switch hop count of the path between two PMs:
// 0 for the same PM, 2 within a rack (up and down through the ToR),
// 4 within a pod, 6 across pods (through the core).
func (t *Tree) Distance(a, b int) int {
	switch {
	case a == b:
		return 0
	case t.SameRack(a, b):
		return 2
	case t.SamePod(a, b):
		return 4
	default:
		return 6
	}
}

// LatencyFactor returns the network delay multiplier for a message between
// two PMs, derived from hop count: 1 within a rack, 2 across racks in a
// pod, 3 across pods. It scales NetConfig's base one-way latency so that
// topology-aware runs pay propagation cost proportional to path length.
func (t *Tree) LatencyFactor(a, b int) int64 {
	switch t.Distance(a, b) {
	case 0, 2:
		return 1
	case 4:
		return 2
	default:
		return 3
	}
}

// BandwidthFactor returns the fraction of edge bandwidth available to a
// transfer between two PMs under the conventional 1:2.5 per-tier
// oversubscription of three-tier designs: full bandwidth within a rack,
// 40% across racks in a pod, 16% across pods.
func (t *Tree) BandwidthFactor(a, b int) float64 {
	switch t.Distance(a, b) {
	case 0, 2:
		return 1
	case 4:
		return 0.4
	default:
		return 0.16
	}
}

// SwitchSpec holds the power draw of each switch tier. The defaults follow
// commonly cited figures for data-center studies (ToR ~150 W, aggregation
// ~300 W, core ~600 W).
type SwitchSpec struct {
	EdgeW float64
	AggW  float64
	CoreW float64
}

// DefaultSwitchSpec is the power model used by the topology experiments.
var DefaultSwitchSpec = SwitchSpec{EdgeW: 150, AggW: 300, CoreW: 600}

// ActiveSwitches counts the switches that must stay powered given the
// per-PM power state: an edge switch sleeps when every PM in its rack is
// off, an aggregation switch when every rack in its pod sleeps, and the
// (single, modelled) core layer stays up while any pod is active.
func (t *Tree) ActiveSwitches(pmOn func(pm int) bool) (edge, agg, core int) {
	rackUp := make([]bool, t.NumRacks())
	for pm := 0; pm < t.nPMs; pm++ {
		if pmOn(pm) {
			rackUp[t.RackOf(pm)] = true
		}
	}
	podUp := make([]bool, t.NumPods())
	for rack, up := range rackUp {
		if up {
			edge++
			podUp[rack/t.RacksPerPod] = true
		}
	}
	for _, up := range podUp {
		if up {
			agg++
			core = 1
		}
	}
	return edge, agg, core
}

// SwitchPowerW returns the instantaneous network power draw under the given
// PM power state.
func (t *Tree) SwitchPowerW(pmOn func(pm int) bool, spec SwitchSpec) float64 {
	edge, agg, core := t.ActiveSwitches(pmOn)
	return float64(edge)*spec.EdgeW + float64(agg)*spec.AggW + float64(core)*spec.CoreW
}
