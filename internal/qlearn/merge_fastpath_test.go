package qlearn

import (
	"math/rand"
	"testing"
)

// fastPathPair builds a merge pair whose union is the fixed 300-cell set
// {0..299} (≥ canonMinCells) with values scaled by f: p misses cell 0 and q
// misses cell 299, so merging takes the union path and the resulting cell
// set qualifies for canonical interning.
func fastPathPair(prec Precision, f float64) (*Table, *Table) {
	p, q := NewP(0.5, 0.8, prec), NewP(0.5, 0.8, prec)
	for i := 0; i < 300; i++ {
		s, a := State(i/81), Action(i%81)
		if i != 0 {
			p.Set(s, a, f*float64(i+1))
		}
		if i != 299 {
			q.Set(s, a, 3*f*float64(i+1))
		}
	}
	return p, q
}

// alignedTable returns a table whose backing aliases the canonical interned
// array for fastPathPair's cell set (idxShared, ref > 1 — the converged
// steady state), with values determined by f. Interning triggers on a set's
// second sighting, so at most two union merges are needed; earlier tests in
// the package may already have seeded the set.
func alignedTable(t testing.TB, prec Precision, f float64) *Table {
	t.Helper()
	for attempt := 0; attempt < 3; attempt++ {
		p, q := fastPathPair(prec, f)
		Unify(p, q)
		if p.b.idxShared {
			return p
		}
	}
	t.Fatal("union merge never interned its cell set")
	return nil
}

// refMerge is the map-based reference of Algorithm 2's UPDATE: average cells
// present in both (only when the values differ — matching the merge kernels,
// which copy agreeing values verbatim), copy cells present in one.
func refMerge(a, b map[Key]float64, prec Precision) map[Key]float64 {
	out := make(map[Key]float64, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if av, ok := out[k]; ok {
			if av != v {
				out[k] = prec.round((av + v) / 2)
			}
		} else {
			out[k] = v
		}
	}
	return out
}

func flatEqual(t *testing.T, got *Table, want map[Key]float64, label string) {
	t.Helper()
	f := got.Flat()
	if len(f) != len(want) {
		t.Fatalf("%s: %d cells, want %d", label, len(f), len(want))
	}
	for k, v := range want {
		if f[k] != v {
			t.Fatalf("%s: cell %v = %v, want %v", label, k, f[k], v)
		}
	}
}

// TestMergeFastPathAligned drives the converged steady state — two pairs
// aliasing one canonical cell-set array, both backings shared — and checks
// the merge takes the aligned fast path (no union build), produces exactly
// the reference averages, and leaves the pair on one canonical-backed
// backing.
func TestMergeFastPathAligned(t *testing.T) {
	for _, prec := range []Precision{F64, F32} {
		t.Run(prec.String(), func(t *testing.T) {
			a := alignedTable(t, prec, 1)
			b := alignedTable(t, prec, 2)
			if &a.b.idx[0] != &b.b.idx[0] {
				t.Fatal("pairs did not alias one canonical cell-set array")
			}
			canon := &a.b.idx[0]
			want := refMerge(a.Flat(), b.Flat(), prec)
			before := ReadMergeStats()
			if !Merge(a, b) {
				t.Fatal("Merge of differing aligned tables reported no change")
			}
			after := ReadMergeStats()
			if after.AlignedIdx != before.AlignedIdx+1 {
				t.Fatalf("AlignedIdx %d -> %d, want +1", before.AlignedIdx, after.AlignedIdx)
			}
			if after.Unions != before.Unions {
				t.Fatal("aligned merge fell through to the general union path")
			}
			if a.b != b.b {
				t.Fatal("merge left the pair on separate backings")
			}
			if !a.b.idxShared || &a.b.idx[0] != canon {
				t.Fatal("merged backing does not alias the canonical cell set")
			}
			flatEqual(t, a, want, "merged table")
			flatEqual(t, b, want, "merged peer")
		})
	}
}

// TestMergeFastPathAlignedCollapse: an aligned pair with identical values
// must collapse onto one backing with no writes and report no change.
func TestMergeFastPathAlignedCollapse(t *testing.T) {
	for _, prec := range []Precision{F64, F32} {
		t.Run(prec.String(), func(t *testing.T) {
			a := alignedTable(t, prec, 1)
			b := alignedTable(t, prec, 1)
			before := ReadMergeStats()
			if Merge(a, b) {
				t.Fatal("Merge of equal aligned tables reported a change")
			}
			after := ReadMergeStats()
			if after.AlignedIdx != before.AlignedIdx+1 {
				t.Fatalf("AlignedIdx %d -> %d, want +1", before.AlignedIdx, after.AlignedIdx)
			}
			if a.b != b.b {
				t.Fatal("equal aligned pair did not collapse onto one backing")
			}
		})
	}
}

// TestMergeFastPathSupersetAlias: a union that equals one side's canonical
// cell set must alias that array instead of rebuilding it, and still produce
// the reference result.
func TestMergeFastPathSupersetAlias(t *testing.T) {
	for _, prec := range []Precision{F64, F32} {
		t.Run(prec.String(), func(t *testing.T) {
			a := alignedTable(t, prec, 1)
			canon := &a.b.idx[0]
			sub := NewP(0.5, 0.8, prec)
			for i := 10; i < 20; i++ {
				sub.Set(State(i/81), Action(i%81), 5)
			}
			want := refMerge(a.Flat(), sub.Flat(), prec)
			before := ReadMergeStats()
			if !Merge(a, sub) {
				t.Fatal("Merge with a differing subset reported no change")
			}
			after := ReadMergeStats()
			if after.Unions != before.Unions+1 {
				t.Fatalf("Unions %d -> %d, want +1", before.Unions, after.Unions)
			}
			if after.AlignedIdx != before.AlignedIdx {
				t.Fatal("subset merge wrongly counted as aligned")
			}
			if a.b != sub.b {
				t.Fatal("merge left the pair on separate backings")
			}
			if !a.b.idxShared || &a.b.idx[0] != canon {
				t.Fatal("union did not alias the superset's canonical cell set")
			}
			flatEqual(t, a, want, "superset table")
			flatEqual(t, sub, want, "subset table")
		})
	}
}

// TestMergeFastPathSharedBacking: re-merging an already-merged pair is a
// pointer compare.
func TestMergeFastPathSharedBacking(t *testing.T) {
	p, q := fastPathPair(F64, 1)
	Unify(p, q)
	before := ReadMergeStats()
	if Merge(p, q) {
		t.Fatal("Merge of a pair sharing one backing reported a change")
	}
	after := ReadMergeStats()
	if after.SharedBacking != before.SharedBacking+1 {
		t.Fatalf("SharedBacking %d -> %d, want +1", before.SharedBacking, after.SharedBacking)
	}
	if after.FastHits() <= before.FastHits() {
		t.Fatal("FastHits did not advance")
	}
}

// TestMergeFastPathGossipDifferential replays a pseudo-random gossip mixing
// schedule over eight tables against the map-based reference, on both tiers.
// The schedule organically exercises every merge path — unions while cell
// sets still differ, adopts and collapses as pairs converge, and the aligned
// fast path once interning saturates — and every table must match the
// reference cell-for-cell after every exchange.
func TestMergeFastPathGossipDifferential(t *testing.T) {
	for _, prec := range []Precision{F64, F32} {
		t.Run(prec.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			const n = 8
			tables := make([]*Table, n)
			refs := make([]map[Key]float64, n)
			for i := range tables {
				tables[i] = NewP(0.5, 0.8, prec)
				refs[i] = map[Key]float64{}
				for c := 0; c < 280+rng.Intn(40); c++ {
					ci := rng.Intn(DenseSpan * DenseSpan)
					s, a := State(ci/DenseSpan), Action(ci%DenseSpan)
					v := prec.round(rng.NormFloat64())
					tables[i].Set(s, a, v)
					refs[i][Key{S: s, A: a}] = v
				}
			}
			for step := 0; step < 200; step++ {
				i, j := rng.Intn(n), rng.Intn(n)
				if i == j {
					continue
				}
				m := refMerge(refs[i], refs[j], prec)
				changed := len(m) != len(refs[i]) || len(m) != len(refs[j])
				if !changed {
					for k, v := range m {
						if refs[i][k] != v || refs[j][k] != v {
							changed = true
							break
						}
					}
				}
				if got := Merge(tables[i], tables[j]); got != changed {
					t.Fatalf("step %d: Merge(%d,%d) = %v, reference says %v", step, i, j, got, changed)
				}
				refs[i], refs[j] = m, m
				flatEqual(t, tables[i], m, "post-merge left")
				flatEqual(t, tables[j], m, "post-merge right")
			}
		})
	}
}

// TestCellSetHashCache pins the idxHash lifecycle: lazily computed, carried
// across detach copies and clones, and invalidated by cell-set growth.
func TestCellSetHashCache(t *testing.T) {
	p, q := fastPathPair(F64, 1)
	Unify(p, q)
	b := p.b
	h := b.cellSetHash()
	if h == 0 || h != fnvIdx(b.idx) {
		t.Fatalf("cellSetHash = %#x, want fnvIdx %#x", h, fnvIdx(b.idx))
	}
	if b.idxHash.Load() != h {
		t.Fatal("cellSetHash did not cache its result")
	}
	c := p.Clone()
	if c.b.idxHash.Load() != h {
		t.Fatal("Clone dropped the cached cell-set identity")
	}
	c.Set(80, 80, 1) // new cell: identity must go stale
	if got := c.b.idxHash.Load(); got != 0 {
		t.Fatalf("insert left stale idxHash %#x", got)
	}
	if c.b.cellSetHash() != fnvIdx(c.b.idx) {
		t.Fatal("recomputed hash does not match grown cell set")
	}
}
