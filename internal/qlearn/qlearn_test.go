package qlearn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct{ alpha, gamma float64 }{
		{0, 0.5}, {-0.1, 0.5}, {1.1, 0.5}, {0.5, -0.1}, {0.5, 1}, {0.5, 1.5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%g, %g) should panic", tc.alpha, tc.gamma)
				}
			}()
			New(tc.alpha, tc.gamma)
		}()
	}
	New(1, 0)   // boundary values are legal
	New(0.5, 0) // ditto
}

func TestGetSetHasLen(t *testing.T) {
	q := New(0.5, 0.8)
	if q.Len() != 0 || q.Has(1, 2) || q.Get(1, 2) != 0 {
		t.Fatal("fresh table should be empty with zero reads")
	}
	q.Set(1, 2, 3.5)
	if !q.Has(1, 2) || q.Get(1, 2) != 3.5 || q.Len() != 1 {
		t.Fatal("set/get broken")
	}
	q.Set(1, 2, -1) // overwrite, no length change
	if q.Get(1, 2) != -1 || q.Len() != 1 {
		t.Fatal("overwrite broken")
	}
	q.Set(1, 3, 7)
	q.Set(2, 2, 9)
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
}

func TestMaxKnown(t *testing.T) {
	q := New(0.5, 0.8)
	if q.MaxKnown(5) != 0 {
		t.Fatal("unknown state should bootstrap to 0")
	}
	q.Set(5, 1, -3)
	q.Set(5, 2, -7)
	if q.MaxKnown(5) != -3 {
		t.Fatalf("MaxKnown = %g, want -3 (all-negative row)", q.MaxKnown(5))
	}
	q.Set(5, 3, 4)
	if q.MaxKnown(5) != 4 {
		t.Fatalf("MaxKnown = %g, want 4", q.MaxKnown(5))
	}
}

func TestUpdateFormula(t *testing.T) {
	q := New(0.5, 0.8)
	q.Set(1, 1, 10)  // Q_t(s,a)
	q.Set(2, 9, 20)  // max_a' Q_t(s',a')
	q.Set(2, 8, -50) // not the max
	got := q.Update(1, 1, 4, 2)
	// (1-0.5)*10 + 0.5*(4 + 0.8*20) = 5 + 0.5*20 = 15
	want := 15.0
	if math.Abs(got-want) > 1e-12 || math.Abs(q.Get(1, 1)-want) > 1e-12 {
		t.Fatalf("Update = %g, want %g", got, want)
	}
	// Unknown next state bootstraps to 0.
	got = q.Update(3, 3, -10, 99)
	// (1-0.5)*0 + 0.5*(-10 + 0) = -5
	if math.Abs(got-(-5)) > 1e-12 {
		t.Fatalf("Update = %g, want -5", got)
	}
}

func TestUpdateConverges(t *testing.T) {
	// Repeated identical transitions must converge to R + gamma*maxNext.
	q := New(0.5, 0.8)
	q.Set(2, 1, 100)
	for i := 0; i < 200; i++ {
		q.Update(1, 1, 5, 2)
	}
	want := 5 + 0.8*100
	if math.Abs(q.Get(1, 1)-want) > 1e-6 {
		t.Fatalf("fixed point %g, want %g", q.Get(1, 1), want)
	}
}

func TestBest(t *testing.T) {
	q := New(0.5, 0.8)
	if _, _, ok := q.Best(1, nil); ok {
		t.Fatal("Best over empty candidates should report !ok")
	}
	q.Set(1, 10, 5)
	q.Set(1, 20, 9)
	q.Set(1, 30, -2)
	a, v, ok := q.Best(1, []Action{10, 20, 30})
	if !ok || a != 20 || v != 9 {
		t.Fatalf("Best = %d, %g, %v", a, v, ok)
	}
	// Unwritten candidates read as 0 and can win over negatives.
	a, v, ok = q.Best(1, []Action{30, 99})
	if !ok || a != 99 || v != 0 {
		t.Fatalf("Best = %d, %g, %v", a, v, ok)
	}
	// Ties break toward the earlier candidate.
	q.Set(1, 40, 9)
	a, _, _ = q.Best(1, []Action{40, 20})
	if a != 40 {
		t.Fatalf("tie broke to %d, want 40", a)
	}
}

func TestKeysSorted(t *testing.T) {
	q := New(0.5, 0.8)
	q.Set(2, 1, 1)
	q.Set(1, 2, 1)
	q.Set(1, 1, 1)
	keys := q.Keys()
	want := []Key{{1, 1}, {1, 2}, {2, 1}}
	if len(keys) != len(want) {
		t.Fatalf("keys %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys %v, want %v", keys, want)
		}
	}
}

func TestFlatAndClone(t *testing.T) {
	q := New(0.5, 0.8)
	q.Set(1, 1, 2.5)
	q.Set(3, 4, -1)
	flat := q.Flat()
	if len(flat) != 2 || flat[Key{1, 1}] != 2.5 || flat[Key{3, 4}] != -1 {
		t.Fatalf("flat %v", flat)
	}
	c := q.Clone()
	if !Equal(q, c) {
		t.Fatal("clone not equal")
	}
	c.Set(1, 1, 99)
	if q.Get(1, 1) == 99 {
		t.Fatal("clone shares storage with original")
	}
	if c.Alpha != q.Alpha || c.Gamma != q.Gamma {
		t.Fatal("clone lost parameters")
	}
}

func TestUnify(t *testing.T) {
	p := New(0.5, 0.8)
	q := New(0.5, 0.8)
	p.Set(1, 1, 10) // both
	q.Set(1, 1, 20)
	p.Set(2, 2, 5) // only p
	q.Set(3, 3, 7) // only q

	Unify(p, q)

	if !Equal(p, q) {
		t.Fatal("tables not equal after Unify")
	}
	if p.Get(1, 1) != 15 {
		t.Fatalf("common cell = %g, want 15", p.Get(1, 1))
	}
	if p.Get(2, 2) != 5 || q.Get(2, 2) != 5 {
		t.Fatal("p-only cell not propagated")
	}
	if p.Get(3, 3) != 7 || q.Get(3, 3) != 7 {
		t.Fatal("q-only cell not propagated")
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
}

func TestUnifyIdempotentOnEqual(t *testing.T) {
	p := New(0.5, 0.8)
	p.Set(1, 1, 4)
	p.Set(2, 7, -3)
	q := p.Clone()
	Unify(p, q)
	if p.Get(1, 1) != 4 || p.Get(2, 7) != -3 {
		t.Fatal("Unify on equal tables changed values")
	}
}

func TestUnifyProperty(t *testing.T) {
	// Property: after Unify, tables are equal, the key set is the union,
	// and common keys hold the pairwise average.
	f := func(pa, qa map[uint8]int8) bool {
		p := New(0.5, 0.8)
		q := New(0.5, 0.8)
		for k, v := range pa {
			p.Set(State(k%7), Action(k/7), float64(v))
		}
		for k, v := range qa {
			q.Set(State(k%7), Action(k/7), float64(v))
		}
		pOrig := p.Clone()
		qOrig := q.Clone()
		Unify(p, q)
		if !Equal(p, q) {
			return false
		}
		for _, k := range p.Keys() {
			pHad, qHad := pOrig.Has(k.S, k.A), qOrig.Has(k.S, k.A)
			switch {
			case pHad && qHad:
				want := (pOrig.Get(k.S, k.A) + qOrig.Get(k.S, k.A)) / 2
				if p.Get(k.S, k.A) != want {
					return false
				}
			case pHad:
				if p.Get(k.S, k.A) != pOrig.Get(k.S, k.A) {
					return false
				}
			case qHad:
				if p.Get(k.S, k.A) != qOrig.Get(k.S, k.A) {
					return false
				}
			default:
				return false // key appeared from nowhere
			}
		}
		return p.Len() >= pOrig.Len() && p.Len() >= qOrig.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqual(t *testing.T) {
	p := New(0.5, 0.8)
	q := New(0.5, 0.8)
	if !Equal(p, q) {
		t.Fatal("empty tables should be equal")
	}
	p.Set(1, 1, 2)
	if Equal(p, q) {
		t.Fatal("different lengths should not be equal")
	}
	q.Set(1, 1, 3)
	if Equal(p, q) {
		t.Fatal("different values should not be equal")
	}
	q.Set(1, 1, 2)
	if !Equal(p, q) {
		t.Fatal("same contents should be equal")
	}
	p.Set(2, 2, 1)
	q.Set(3, 3, 1)
	if Equal(p, q) {
		t.Fatal("same length, different keys should not be equal")
	}
}

func TestEpsilonGreedy(t *testing.T) {
	q := New(0.5, 0.8)
	q.Set(1, 10, 5)
	q.Set(1, 20, 9)
	cands := []Action{10, 20}
	rnd := func(n int) int { return 0 }

	// eps = 0: always exploit.
	a, ok := q.EpsilonGreedy(1, cands, 0, rnd, func() float64 { return 0 })
	if !ok || a != 20 {
		t.Fatalf("exploit = %d, %v", a, ok)
	}
	// eps = 1: always explore (rnd picks index 0).
	a, ok = q.EpsilonGreedy(1, cands, 1, rnd, func() float64 { return 0.5 })
	if !ok || a != 10 {
		t.Fatalf("explore = %d, %v", a, ok)
	}
	// Empty candidates.
	if _, ok := q.EpsilonGreedy(1, nil, 0.5, rnd, func() float64 { return 0 }); ok {
		t.Fatal("empty candidates should report !ok")
	}
}
