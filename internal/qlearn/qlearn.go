// Package qlearn implements the tabular Q-learning machinery GLAP builds
// on: Q-tables over discrete (state, action) pairs, the standard update rule
//
//	Q_{t+1}(s,a) = (1-α)·Q_t(s,a) + α·(R + γ·max_a' Q_t(s',a'))
//
// (Equation 1 of the paper), greedy/ε-greedy action selection, and the
// gossip merge ("average when both know the pair, adopt when only one does")
// that Algorithm 2's aggregation phase applies.
//
// Tables are backed by a dense value array plus a presence bitset, keyed by
// int(s)*numA + int(a). GLAP's calibrated state/action space is small and
// fixed — (CPU, MEM) level pairs on the paper's 9-level scale, 81 states ×
// 81 actions — and the aggregation phase push-pulls full tables at
// N×rounds frequency, which makes Unify/Equal/Clone the simulation's hot
// path. The dense layout turns them into branch-light linear scans over
// aligned slices with zero steady-state allocation; gossip-averaged RL is
// exactly the repeated-pairwise-merge workload where flat-vector state pays
// off (Mathkar & Borkar model the iterates as vectors). Keys outside the
// calibrated span are legal: the backing grows on demand.
package qlearn

import (
	"fmt"
	"math"
	"math/bits"
)

// State is a discrete environment state. GLAP packs a PM's calibrated
// (CPU level, MEM level) pair into one State.
type State uint32

// Action is a discrete action. GLAP packs a VM's calibrated level pair the
// same way.
type Action uint32

// Key identifies one Q-table cell.
type Key struct {
	S State
	A Action
}

// DenseSpan is the per-dimension capacity the backing array starts with:
// GLAP's calibrated level space (9 levels × 2 resources = 81 packed states
// and actions). The first write allocates DenseSpan×DenseSpan cells, so
// tables over the calibrated space never reallocate.
const DenseSpan = 81

// Table is a Q-table together with its learning parameters. The zero value
// is not ready; use New.
//
// Storage is dense: q[s*numA+a] holds the value of cell (s, a) and a bitset
// records which cells have been written. Cells never written hold 0 in q,
// so reads skip the bitset entirely.
type Table struct {
	// Alpha is the learning rate in (0, 1].
	Alpha float64
	// Gamma is the discount factor in [0, 1).
	Gamma float64

	numS, numA int       // current dense dimensions
	q          []float64 // len numS*numA; unwritten cells hold 0
	mask       []uint64  // presence bitset over cell indices
	n          int       // number of written cells

	// rowMax caches MaxKnown per state (NaN = stale). Equation 1 computes
	// the max over the next state's row on every training update; the
	// cache turns that from a row scan into a load for the overwhelmingly
	// common case where updates raise values or miss the row maximum. Set
	// maintains it incrementally and invalidates a row conservatively when
	// its maximum may have dropped; Unify and grow invalidate wholesale.
	rowMax []float64
}

// New returns an empty table with the given learning rate and discount. The
// backing array is allocated lazily on first write, so never-trained tables
// (PMs that end the learning phase without Q-values) stay cheap.
func New(alpha, gamma float64) *Table {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("qlearn: alpha %g out of (0,1]", alpha))
	}
	if gamma < 0 || gamma >= 1 {
		panic(fmt.Sprintf("qlearn: gamma %g out of [0,1)", gamma))
	}
	return &Table{Alpha: alpha, Gamma: gamma}
}

// Len returns the number of (state, action) cells present.
func (t *Table) Len() int { return t.n }

// Get returns the Q-value for (s, a); missing cells read as 0, matching the
// optimistic-zero initialisation the paper's reward design assumes. The
// zero-for-absent invariant of the backing array makes this a pure bounds
// check plus load.
func (t *Table) Get(s State, a Action) float64 {
	si, ai := int(s), int(a)
	if si >= t.numS || ai >= t.numA {
		return 0
	}
	return t.q[si*t.numA+ai]
}

// Has reports whether the cell (s, a) has been written.
func (t *Table) Has(s State, a Action) bool {
	si, ai := int(s), int(a)
	if si >= t.numS || ai >= t.numA {
		return false
	}
	i := si*t.numA + ai
	return t.mask[i>>6]&(1<<uint(i&63)) != 0
}

// Set writes the Q-value for (s, a), growing the backing array when the key
// falls outside the current dense span. Writes inside the span — the steady
// state — do not allocate.
func (t *Table) Set(s State, a Action, v float64) {
	si, ai := int(s), int(a)
	if si >= t.numS || ai >= t.numA {
		t.grow(roundDim(si+1, t.numS), roundDim(ai+1, t.numA))
	}
	i := si*t.numA + ai
	if w, b := i>>6, uint64(1)<<uint(i&63); t.mask[w]&b == 0 {
		t.mask[w] |= b
		t.n++
	}
	if rm := t.rowMax[si]; rm == rm { // cache valid (not NaN)
		switch {
		case v > rm:
			t.rowMax[si] = v
		case v < rm && t.q[i] == rm:
			// The overwritten cell may have been the row maximum (or an
			// unwritten cell reading as the cached 0 of an empty row);
			// recompute lazily on the next MaxKnown.
			t.rowMax[si] = nan
		}
	}
	t.q[i] = v
}

var nan = math.NaN()

// invalidateRowMax marks every cached row maximum stale.
func (t *Table) invalidateRowMax() {
	for i := range t.rowMax {
		t.rowMax[i] = nan
	}
}

// roundDim picks the grown size for one dimension: at least DenseSpan, then
// doubling, so growth beyond the calibrated space stays amortised.
func roundDim(need, cur int) int {
	d := cur
	if d < DenseSpan {
		d = DenseSpan
	}
	for d < need {
		d *= 2
	}
	return d
}

// grow reallocates the backing to exactly (ns, na) dimensions, preserving
// all cells. It is a no-op when the table already spans the request.
func (t *Table) grow(ns, na int) {
	if ns <= t.numS && na <= t.numA {
		return
	}
	if ns < t.numS {
		ns = t.numS
	}
	if na < t.numA {
		na = t.numA
	}
	q := make([]float64, ns*na)
	mask := make([]uint64, (ns*na+63)/64)
	for s := 0; s < t.numS; s++ {
		copy(q[s*na:], t.q[s*t.numA:(s+1)*t.numA])
	}
	for _, i := range t.presentIndices() {
		j := (i/t.numA)*na + i%t.numA
		mask[j>>6] |= 1 << uint(j&63)
	}
	t.numS, t.numA, t.q, t.mask = ns, na, q, mask
	t.rowMax = make([]float64, ns)
	t.invalidateRowMax()
}

// presentIndices returns the raw cell indices of all written cells in
// ascending order. Only used on the (rare) growth path.
func (t *Table) presentIndices() []int {
	out := make([]int, 0, t.n)
	for w, word := range t.mask {
		for b := word; b != 0; b &= b - 1 {
			out = append(out, w<<6+bits.TrailingZeros64(b))
		}
	}
	return out
}

// MaxKnown returns the largest Q-value recorded for state s, or 0 when the
// state has never been visited (the bootstrap value for unseen states).
// The row's presence words are walked exactly once, with the first and last
// word trimmed to the row bounds — this sits inside Equation 1's hot path
// (one call per training update), where the former per-cell nextPresent
// scan re-read and re-masked the same words repeatedly.
func (t *Table) MaxKnown(s State) float64 {
	si := int(s)
	if si >= t.numS {
		return 0
	}
	if rm := t.rowMax[si]; rm == rm {
		return rm
	}
	lo, hi := si*t.numA, (si+1)*t.numA
	best, found := 0.0, false
	for w := lo >> 6; w <= (hi-1)>>6; w++ {
		word := t.mask[w]
		if word == 0 {
			continue
		}
		base := w << 6
		if base < lo {
			word &^= 1<<uint(lo-base) - 1
		}
		if base+64 > hi {
			word &= 1<<uint(hi-base) - 1
		}
		for b := word; b != 0; b &= b - 1 {
			if v := t.q[base+bits.TrailingZeros64(b)]; !found || v > best {
				best, found = v, true
			}
		}
	}
	t.rowMax[si] = best
	return best
}

// Update applies Equation 1 for the transition (s, a) -> next with observed
// reward r, and returns the new Q-value. In steady state (both states inside
// the dense span) it performs no allocation.
func (t *Table) Update(s State, a Action, r float64, next State) float64 {
	old := t.Get(s, a)
	v := (1-t.Alpha)*old + t.Alpha*(r+t.Gamma*t.MaxKnown(next))
	t.Set(s, a, v)
	return v
}

// Best returns the action among candidates with the highest Q-value in
// state s, together with that value. Unwritten cells count as 0. ok is false
// when candidates is empty. Ties break toward the action listed first, which
// keeps selection deterministic for a fixed candidate order.
func (t *Table) Best(s State, candidates []Action) (a Action, q float64, ok bool) {
	if len(candidates) == 0 {
		return 0, 0, false
	}
	a, q = candidates[0], t.Get(s, candidates[0])
	for _, c := range candidates[1:] {
		if v := t.Get(s, c); v > q {
			a, q = c, v
		}
	}
	return a, q, true
}

// Keys returns all written cells in (state, action) order. The dense index
// s*numA+a is already sorted by (s, a), so this is a single bitset walk.
func (t *Table) Keys() []Key {
	keys := make([]Key, 0, t.n)
	for w, word := range t.mask {
		for b := word; b != 0; b &= b - 1 {
			i := w<<6 + bits.TrailingZeros64(b)
			keys = append(keys, Key{State(i / t.numA), Action(i % t.numA)})
		}
	}
	return keys
}

// Flat returns the table contents as a sparse map. It is retained as a
// compatibility adapter for the codec, snapshots and tests; hot paths use
// the dense backing directly (see FillDense).
func (t *Table) Flat() map[Key]float64 {
	out := make(map[Key]float64, t.n)
	for w, word := range t.mask {
		for b := word; b != 0; b &= b - 1 {
			i := w<<6 + bits.TrailingZeros64(b)
			out[Key{State(i / t.numA), Action(i % t.numA)}] = t.q[i]
		}
	}
	return out
}

// FillDense writes the table's cells into dst laid out as numS×numA
// (dst[s*numA+a], unwritten cells 0) and returns dst. Cells outside the
// requested span are dropped; GLAP's calibrated tables never have any. The
// caller supplies dst so per-sample convergence measurement can reuse one
// buffer instead of building a map per node per round.
func (t *Table) FillDense(dst []float64, numS, numA int) []float64 {
	if len(dst) < numS*numA {
		panic(fmt.Sprintf("qlearn: FillDense dst len %d < %d×%d", len(dst), numS, numA))
	}
	for i := range dst[:numS*numA] {
		dst[i] = 0
	}
	cs, ca := t.numS, t.numA
	if cs > numS {
		cs = numS
	}
	if ca > numA {
		ca = numA
	}
	for s := 0; s < cs; s++ {
		copy(dst[s*numA:s*numA+ca], t.q[s*t.numA:])
	}
	return dst
}

// Clone returns a deep copy of the table: two copies of flat slices.
func (t *Table) Clone() *Table {
	c := &Table{Alpha: t.Alpha, Gamma: t.Gamma, numS: t.numS, numA: t.numA, n: t.n}
	if t.q != nil {
		c.q = make([]float64, len(t.q))
		copy(c.q, t.q)
		c.mask = make([]uint64, len(t.mask))
		copy(c.mask, t.mask)
		c.rowMax = make([]float64, len(t.rowMax))
		copy(c.rowMax, t.rowMax)
	}
	return c
}

// Unify merges two tables in place per Algorithm 2's UPDATE: cells present
// in both become the average of the two values in both tables; cells present
// in only one are copied to the other. After Unify the tables are equal.
//
// With aligned dense backings the merge is one pass over the presence
// words — averaging where both bits are set, copying where one is — with no
// per-cell hashing and no allocation once both tables span the same
// dimensions. Aggregation gossip runs this once per node per round over the
// full table, so this loop dominates Algorithm 2's cost at cluster scale.
func Unify(p, q *Table) {
	if p.numS != q.numS || p.numA != q.numA {
		ns, na := p.numS, p.numA
		if q.numS > ns {
			ns = q.numS
		}
		if q.numA > na {
			na = q.numA
		}
		p.grow(ns, na)
		q.grow(ns, na)
	}
	n := 0
	for w := range p.mask {
		pw, qw := p.mask[w], q.mask[w]
		if pw|qw == 0 {
			continue
		}
		base := w << 6
		for b := pw & qw; b != 0; b &= b - 1 {
			i := base + bits.TrailingZeros64(b)
			avg := (p.q[i] + q.q[i]) / 2
			p.q[i], q.q[i] = avg, avg
		}
		for b := pw &^ qw; b != 0; b &= b - 1 {
			i := base + bits.TrailingZeros64(b)
			q.q[i] = p.q[i]
		}
		for b := qw &^ pw; b != 0; b &= b - 1 {
			i := base + bits.TrailingZeros64(b)
			p.q[i] = q.q[i]
		}
		u := pw | qw
		p.mask[w], q.mask[w] = u, u
		n += bits.OnesCount64(u)
	}
	p.n, q.n = n, n
	// Averaging and adoption rewrite cells behind Set's back; drop both
	// caches rather than track maxima through the merge.
	p.invalidateRowMax()
	q.invalidateRowMax()
}

// Merge is Unify fused with the change check: one pass that averages and
// adopts exactly like Unify but writes a cell only when its value actually
// changes, and reports whether anything did. Callers that previously ran
// Equal-then-Unify paid two nearly-full scans per exchange once gossip
// neared convergence (Equal fails late, then Unify rewrites everything);
// Merge keeps the single-scan cost bound and leaves already-agreeing cells'
// cachelines clean. Post-merge state is identical to Unify's, and the rowMax
// caches survive a no-op merge (the tables did not change).
func Merge(p, q *Table) bool {
	if p.numS != q.numS || p.numA != q.numA {
		// Misaligned backings (tables grown past the calibrated span at
		// different times) take the slow path; after one Unify the pair is
		// aligned for good.
		if Equal(p, q) {
			return false
		}
		Unify(p, q)
		return true
	}
	changed := false
	n := 0
	for w := range p.mask {
		pw, qw := p.mask[w], q.mask[w]
		u := pw | qw
		if u == 0 {
			continue
		}
		base := w << 6
		for b := pw & qw; b != 0; b &= b - 1 {
			i := base + bits.TrailingZeros64(b)
			if pv, qv := p.q[i], q.q[i]; pv != qv {
				avg := (pv + qv) / 2
				p.q[i], q.q[i] = avg, avg
				changed = true
			}
		}
		for b := pw &^ qw; b != 0; b &= b - 1 {
			i := base + bits.TrailingZeros64(b)
			q.q[i] = p.q[i]
		}
		for b := qw &^ pw; b != 0; b &= b - 1 {
			i := base + bits.TrailingZeros64(b)
			p.q[i] = q.q[i]
		}
		if pw != qw {
			p.mask[w], q.mask[w] = u, u
			changed = true
		}
		n += bits.OnesCount64(u)
	}
	p.n, q.n = n, n
	if changed {
		p.invalidateRowMax()
		q.invalidateRowMax()
	}
	return changed
}

// Equal reports whether two tables hold exactly the same cells and values.
// It exits on the first difference. For tables with aligned backings — the
// invariable case once aggregation gossip has run — it is two linear slice
// scans.
func Equal(p, q *Table) bool {
	if p.n != q.n {
		return false
	}
	if p.n == 0 {
		return true
	}
	if p.numS == q.numS && p.numA == q.numA {
		for w := range p.mask {
			if p.mask[w] != q.mask[w] {
				return false
			}
		}
		// Unwritten cells hold 0 on both sides, so whole-array comparison
		// is exact.
		for i := range p.q {
			if p.q[i] != q.q[i] {
				return false
			}
		}
		return true
	}
	// Dimensions differ (tables grown past the calibrated span at different
	// times): compare cell-wise. n equality above rules out extras in q.
	for w, word := range p.mask {
		for b := word; b != 0; b &= b - 1 {
			i := w<<6 + bits.TrailingZeros64(b)
			s, a := State(i/p.numA), Action(i%p.numA)
			if !q.Has(s, a) || q.Get(s, a) != p.q[i] {
				return false
			}
		}
	}
	return true
}

// EpsilonGreedy selects among candidates: with probability eps a uniformly
// random candidate (exploration), otherwise the Best action (exploitation).
// rnd(n) must return a uniform integer in [0, n). ok is false when
// candidates is empty.
func (t *Table) EpsilonGreedy(s State, candidates []Action, eps float64, rnd func(n int) int, coin func() float64) (a Action, ok bool) {
	if len(candidates) == 0 {
		return 0, false
	}
	if eps > 0 && coin() < eps {
		return candidates[rnd(len(candidates))], true
	}
	a, _, ok = t.Best(s, candidates)
	return a, ok
}
