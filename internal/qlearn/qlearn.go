// Package qlearn implements the tabular Q-learning machinery GLAP builds
// on: Q-tables over discrete (state, action) pairs, the standard update rule
//
//	Q_{t+1}(s,a) = (1-α)·Q_t(s,a) + α·(R + γ·max_a' Q_t(s',a'))
//
// (Equation 1 of the paper), greedy/ε-greedy action selection, and the
// gossip merge ("average when both know the pair, adopt when only one does")
// that Algorithm 2's aggregation phase applies.
//
// Tables are backed by a compact sorted cell array — parallel idx/vals
// slices holding only the written cells of the calibrated 81×81 span, ~10
// bytes per cell — shared copy-on-write between tables. A pairwise merge
// (Unify/Merge) leaves both endpoints referencing one backing, so during
// Algorithm 2's aggregation phase the per-PM tables of an N-node cluster
// collapse toward N/2 distinct backings instead of N dense arrays. This is
// what keeps hyperscale runs affordable: a dense 81×81 float64 array costs
// ~52 KiB per table (≈ 10.5 GB for two tables across 100 000 PMs), while a
// trained table holds only a few hundred cells and a fully aggregated one a
// few thousand. Writes to a shared backing copy first; freed backings are
// recycled through a small pool so the merge loop and post-merge writes stay
// allocation-free in steady state. Keys outside the calibrated span are
// legal and spill to an overflow map.
package qlearn

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// State is a discrete environment state. GLAP packs a PM's calibrated
// (CPU level, MEM level) pair into one State.
type State uint32

// Action is a discrete action. GLAP packs a VM's calibrated level pair the
// same way.
type Action uint32

// Key identifies one Q-table cell.
type Key struct {
	S State
	A Action
}

// Precision selects the storage width of a table's Q-values. Reads always
// widen to float64 and Equation 1's arithmetic always accumulates in
// float64; the precision only decides how a value is rounded when it is
// stored. F64 is the exact default every fingerprinted run uses; F32 halves
// the value bytes of the dominant cluster-scale memory term (see Footprint)
// for a bounded, quantified drift — GLAP's Q-values live in a quantised
// level space whose pairwise-averaging merge collapses variance across PMs,
// so they carry far fewer than 53 significant bits of information.
type Precision uint8

const (
	// F64 stores Q-values as float64 (exact, the default).
	F64 Precision = iota
	// F32 stores Q-values as float32: float64 accumulation, one rounding
	// point on store.
	F32
)

// String returns the tier's short name ("f64"/"f32").
func (p Precision) String() string {
	if p == F32 {
		return "f32"
	}
	return "f64"
}

// ValueBytes returns the storage width of one Q-value under this tier.
func (p Precision) ValueBytes() int {
	if p == F32 {
		return 4
	}
	return 8
}

// round applies the tier's single rounding point: the value a store under
// this precision actually retains.
func (p Precision) round(v float64) float64 {
	if p == F32 {
		return float64(float32(v))
	}
	return v
}

// DenseSpan is the per-dimension size of the calibrated cell space: GLAP's
// level pairs (9 levels × 2 resources = 81 packed states and actions).
// Cells inside DenseSpan×DenseSpan live in the sorted backing array; cells
// beyond it (legal, but absent from calibrated runs) spill to a map.
const DenseSpan = 81

// Table is a Q-table together with its learning parameters. The zero value
// is not ready; use New.
//
// Storage is a sorted cell array owned by a reference-counted backing that
// Unify/Merge share between the two endpoints of a gossip exchange. Reads
// see the shared cells directly; writes through a table whose backing is
// shared copy it first (copy-on-write), so tables remain value-independent
// observationally while converged gossip pairs occupy one allocation.
type Table struct {
	// Alpha is the learning rate in (0, 1].
	Alpha float64
	// Gamma is the discount factor in [0, 1).
	Gamma float64

	b *backing // nil until the first write

	// prec is the value-storage tier (F64 default). It is fixed at
	// construction: a table and its backing always agree, and merges
	// require both endpoints on one tier.
	prec Precision
}

// backing is the shared cell store. idx holds the written in-span cells as
// s*DenseSpan+a in ascending order — (state, action) lexicographic — and
// vals (F64 tier) or vals32 (F32 tier) the matching Q-values. over holds
// the rare out-of-span cells.
type backing struct {
	// ref counts the Tables referencing this backing. It is atomic because
	// re-learning phases (InstallContinuous) run parallel training rounds on
	// tables that a previous aggregation phase left sharing backings, and
	// their first writes race to detach.
	ref atomic.Int32

	idx    []uint16
	vals   []float64 // F64 tier value array (nil on F32 backings)
	vals32 []float32 // F32 tier value array (nil on F64 backings)
	over   map[Key]float64

	// f32 marks the backing as storing its in-span values in vals32. The
	// overflow map stays float64 on both tiers (out-of-span cells are
	// hostile-checkpoint territory, never hot); its values are still rounded
	// through the tier's rounding point on store so both stores of a table
	// quantise identically.
	f32 bool

	// idxShared marks idx as an alias of an immutable canonical cell-set
	// array (see canonicalIdx). Canonical arrays are built with cap==len,
	// so an insert's append reallocates a private copy automatically; the
	// flag exists so releases don't recycle a shared array into the pool
	// and footprint accounting doesn't count it once per aliasing backing.
	idxShared bool

	// idxHash caches the FNV-1a identity of idx (see fnvIdx); 0 means not yet
	// computed. The cache lets converged merges reuse cell-set identities
	// instead of rehashing thousands of cells per exchange: a union that
	// equals one input's cell set inherits that side's hash, and a backing
	// built against a canonical array carries the canonical hash from birth.
	// Atomic because a backing shared by several tables can be read by
	// concurrent sharded merges, and the lazily computed hash is written
	// back through cellSetHash.
	idxHash atomic.Uint64

	// rowMax caches MaxKnown per in-span state (NaN = stale; nil = no cache,
	// all rows stale). Equation 1 computes the max over the next state's row
	// on every training update; the cache turns that from a row scan into a
	// load for the overwhelmingly common case where updates raise values or
	// miss the row maximum. Set maintains it incrementally and invalidates a
	// row conservatively when its maximum may have dropped; merges drop the
	// cache wholesale, which is why it is a lazily allocated pointer rather
	// than an inline array: only training-phase backings (one per node) ever
	// refill it, while aggregation mints tens of thousands of merge-union
	// backings per round that would each carry 648 dead bytes. Only written
	// while the backing is unshared, so cache fills cannot race between
	// tables.
	rowMax *[DenseSpan]float64
}

var nan = math.NaN()

// minBackingCap is the smallest cell capacity a backing is created with.
const minBackingCap = 16

func (b *backing) len() int { return len(b.idx) + len(b.over) }

func (b *backing) invalidateRowMax() {
	b.rowMax = nil
}

// newRowMax allocates an all-stale cache array.
func newRowMax() *[DenseSpan]float64 {
	rm := new([DenseSpan]float64)
	for i := range rm {
		rm[i] = nan
	}
	return rm
}

// find binary-searches idx for cell ci, returning the position and whether
// it is present. Absent cells report the insertion point.
func (b *backing) find(ci uint16) (int, bool) {
	lo, hi := 0, len(b.idx)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.idx[mid] < ci {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(b.idx) && b.idx[lo] == ci
}

// val returns the widened value at in-span position i.
func (b *backing) val(i int) float64 {
	if b.f32 {
		return float64(b.vals32[i])
	}
	return b.vals[i]
}

// setVal writes the (already rounded) value at in-span position i.
func (b *backing) setVal(i int, v float64) {
	if b.f32 {
		b.vals32[i] = float32(v)
	} else {
		b.vals[i] = v
	}
}

// insertVal opens a slot at position i in the tier's value array (the idx
// insertion happens in Set, which owns the canonical-array copy semantics).
func (b *backing) insertVal(i int) {
	if b.f32 {
		b.vals32 = append(b.vals32, 0)
		copy(b.vals32[i+1:], b.vals32[i:])
	} else {
		b.vals = append(b.vals, 0)
		copy(b.vals[i+1:], b.vals[i:])
	}
}

// value constrains the generic merge kernels to the two storage tiers. The
// float64 instantiations compile to the exact pre-tier arithmetic (the
// float64→float64 conversions are no-ops), which is what keeps the default
// tier's golden fingerprints byte-identical.
type value interface {
	~float32 | ~float64
}

// backingPool recycles the building blocks of freed backings — the structs
// and their two cell arrays — when a merge collapses a pair onto one store
// or a copy-on-write detaches the last other holder. Aggregation gossip
// frees up to two backings and takes at most one per exchange, so a small
// pool keeps the merge loop and the posterior copy-on-write writes
// allocation-free in steady state without retaining more than a handful of
// arrays. The parts are pooled separately because a backing whose
// cell set was interned (idxShared) surrenders only its vals array; tying
// the parts together would slowly drain the pool of usable idx capacity.
// The two value tiers keep disjoint free lists (vals/vals32): a float64
// array can never be handed to an F32 backing or vice versa, so mixed-tier
// runs recycle within each tier without cross-contamination.
var backingPool struct {
	mu     sync.Mutex
	nodes  []*backing
	idxs   [][]uint16
	vals   [][]float64
	vals32 [][]float32
}

// poolMax bounds each recycled free list.
const poolMax = 16

// poolTake removes and returns a pooled array with capacity for need
// elements, or nil when none fits. Callers hold backingPool.mu.
func poolTake[T any](free *[][]T, need int) []T {
	f := *free
	for i, a := range f {
		if cap(a) >= need {
			last := len(f) - 1
			f[i] = f[last]
			f[last] = nil
			*free = f[:last]
			return a[:0]
		}
	}
	return nil
}

// poolPutIdx returns a private idx array to the pool; union merges use it
// when interning hands the backing a canonical array instead of the one it
// just built.
func poolPutIdx(a []uint16) {
	backingPool.mu.Lock()
	if len(backingPool.idxs) < poolMax {
		backingPool.idxs = append(backingPool.idxs, a[:0])
	}
	backingPool.mu.Unlock()
}

// Canonical cell-set interning. Once aggregation gossip saturates, every
// push-pull union across the cluster rebuilds the same cell set — thousands
// of cells, identical element-for-element in every backing — and the idx
// arrays become the second-largest term of pretrain's peak heap after the
// values themselves. canonicalIdx interns one immutable copy of each
// recurring set and lets backings alias it (see backing.idxShared).
const (
	// canonMinCells keeps small tables out of the cache: interning only pays
	// once a cell set is large enough that aliasing displaces kilobytes, and
	// the zero-alloc merge tests rely on small backings cycling through the
	// pool untouched.
	canonMinCells = 256
	// canonMaxSets bounds the cache. A converged run needs one entry per
	// saturated union shape, so a handful suffice; on overflow the map is
	// dropped wholesale (aliasing backings keep their arrays alive).
	canonMaxSets = 64
	// canonSeenMax bounds the seen-once filter before a wholesale reset.
	canonSeenMax = 4096
)

var canonIdx struct {
	mu   sync.Mutex
	m    map[uint64][]uint16
	seen map[uint64]struct{}
}

// fnvIdx returns the FNV-1a identity of a cell-set array — the hash key of
// the canonical-interning cache, cached per backing in idxHash.
func fnvIdx(idx []uint16) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range idx {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

// cellSetHash returns the backing's cell-set identity, computing and caching
// it on first use. The write-back is atomic: concurrent sharded merges may
// fill the cache of one shared backing simultaneously, each storing the same
// deterministic value.
func (b *backing) cellSetHash() uint64 {
	if h := b.idxHash.Load(); h != 0 {
		return h
	}
	h := fnvIdx(b.idx)
	b.idxHash.Store(h)
	return h
}

// canonicalIdx returns an immutable interned copy of idx when the same cell
// set recurs, or (nil, false) for sets not worth sharing. h must be
// fnvIdx(idx) — callers pass their cached backing identity so converged
// merges stop rehashing the same saturated set on every exchange. A set is
// interned on its second sighting — the ramp phase of aggregation produces a
// stream of one-off unions that must not pollute the cache, while the
// converged phase repeats a handful of shapes endlessly. Interned arrays are
// built with cap==len so an insert's append reallocates a private copy, and
// their contents are never written after publication, so concurrent readers
// need no lock.
func canonicalIdx(idx []uint16, h uint64) ([]uint16, bool) {
	if len(idx) < canonMinCells {
		return nil, false
	}
	canonIdx.mu.Lock()
	defer canonIdx.mu.Unlock()
	if c, ok := canonIdx.m[h]; ok {
		if len(c) == len(idx) {
			same := true
			for i, v := range c {
				if v != idx[i] {
					same = false
					break
				}
			}
			if same {
				return c, true
			}
		}
		return nil, false // hash collision: keep the private array
	}
	if _, ok := canonIdx.seen[h]; !ok {
		if len(canonIdx.seen) >= canonSeenMax || canonIdx.seen == nil {
			canonIdx.seen = make(map[uint64]struct{}, 64)
		}
		canonIdx.seen[h] = struct{}{}
		return nil, false
	}
	if len(canonIdx.m) >= canonMaxSets {
		canonIdx.m = nil
	}
	if canonIdx.m == nil {
		canonIdx.m = make(map[uint64][]uint16, 8)
	}
	c := make([]uint16, len(idx))
	copy(c, idx)
	canonIdx.m[h] = c
	return c, true
}

// capRound picks the cell capacity for a backing that must hold need cells:
// a small constant headroom rounded to a 64-cell boundary, so successive
// merge unions (which grow by small steps) keep hitting pooled arrays.
// Large backings — saturated aggregation unions, where tens of thousands
// coexist and every slack cell is charged N-fold — round to a 16-cell
// boundary instead: by then unions repeat at one stable size, so pooled
// arrays still fit without the headroom.
func capRound(need int) int {
	if need < minBackingCap {
		return minBackingCap
	}
	if need >= 2048 {
		return (need + 15) &^ 15
	}
	return (need + 127) &^ 63
}

// newBacking allocates a fresh unshared backing with room for need cells on
// the given tier.
func newBacking(need int, f32 bool) *backing {
	c := capRound(need)
	b := &backing{idx: make([]uint16, 0, c), f32: f32}
	if f32 {
		b.vals32 = make([]float32, 0, c)
	} else {
		b.vals = make([]float64, 0, c)
	}
	b.ref.Store(1)
	b.invalidateRowMax()
	return b
}

// acquireBacking returns an empty unshared backing on the given tier with
// capacity for need cells, assembled from pooled parts when they fit. Only
// the matching tier's value free list is consulted.
func acquireBacking(need int, f32 bool) *backing {
	backingPool.mu.Lock()
	var b *backing
	if n := len(backingPool.nodes); n > 0 {
		b = backingPool.nodes[n-1]
		backingPool.nodes[n-1] = nil
		backingPool.nodes = backingPool.nodes[:n-1]
	}
	idx := poolTake(&backingPool.idxs, need)
	var vals []float64
	var vals32 []float32
	if f32 {
		vals32 = poolTake(&backingPool.vals32, need)
	} else {
		vals = poolTake(&backingPool.vals, need)
	}
	backingPool.mu.Unlock()
	if b == nil {
		b = &backing{}
	}
	c := capRound(need)
	if idx == nil {
		idx = make([]uint16, 0, c)
	}
	if f32 && vals32 == nil {
		vals32 = make([]float32, 0, c)
	}
	if !f32 && vals == nil {
		vals = make([]float64, 0, c)
	}
	b.idx, b.vals, b.vals32, b.over, b.idxShared, b.f32 = idx, vals, vals32, nil, false, f32
	b.idxHash.Store(0)
	b.ref.Store(1)
	b.invalidateRowMax()
	return b
}

// acquireAliasBacking returns an unshared backing whose idx aliases the given
// canonical (immutable, cap==len) cell-set array with identity h, assembling
// the struct and value array from pooled parts when they fit. It is the
// aligned merge fast path's destination: no idx array is consumed from the
// pool and no cells are copied — the union of two backings over one canonical
// set is that set.
func acquireAliasBacking(canon []uint16, f32 bool, h uint64) *backing {
	backingPool.mu.Lock()
	var b *backing
	if n := len(backingPool.nodes); n > 0 {
		b = backingPool.nodes[n-1]
		backingPool.nodes[n-1] = nil
		backingPool.nodes = backingPool.nodes[:n-1]
	}
	var vals []float64
	var vals32 []float32
	if f32 {
		vals32 = poolTake(&backingPool.vals32, len(canon))
	} else {
		vals = poolTake(&backingPool.vals, len(canon))
	}
	backingPool.mu.Unlock()
	if b == nil {
		b = &backing{}
	}
	if f32 && vals32 == nil {
		vals32 = make([]float32, 0, capRound(len(canon)))
	}
	if !f32 && vals == nil {
		vals = make([]float64, 0, capRound(len(canon)))
	}
	b.idx, b.vals, b.vals32, b.over, b.idxShared, b.f32 = canon, vals, vals32, nil, true, f32
	b.idxHash.Store(h)
	b.ref.Store(1)
	b.invalidateRowMax()
	return b
}

// releaseBacking returns an unreferenced backing's parts to the pool. A
// canonical (shared) idx array is dropped, not pooled: other backings may
// still alias it, and pooled arrays get written through. Value arrays go
// back to their own tier's free list.
func releaseBacking(b *backing) {
	idx, vals, vals32 := b.idx, b.vals, b.vals32
	shared := b.idxShared
	b.idx, b.vals, b.vals32, b.over, b.idxShared, b.f32 = nil, nil, nil, nil, false, false
	b.idxHash.Store(0)
	backingPool.mu.Lock()
	if len(backingPool.nodes) < poolMax {
		backingPool.nodes = append(backingPool.nodes, b)
	}
	if !shared && idx != nil && len(backingPool.idxs) < poolMax {
		backingPool.idxs = append(backingPool.idxs, idx[:0])
	}
	if vals != nil && len(backingPool.vals) < poolMax {
		backingPool.vals = append(backingPool.vals, vals[:0])
	}
	if vals32 != nil && len(backingPool.vals32) < poolMax {
		backingPool.vals32 = append(backingPool.vals32, vals32[:0])
	}
	backingPool.mu.Unlock()
}

// deref drops one reference to b, recycling it when no table holds it any
// more.
func deref(b *backing) {
	if b.ref.Add(-1) == 0 {
		releaseBacking(b)
	}
}

// own returns the table's backing ready for writing: it allocates an empty
// one on first write and detaches (copies) a shared one, with room for
// extra additional cells.
func (t *Table) own(extra int) *backing {
	b := t.b
	if b == nil {
		b = newBacking(extra, t.prec == F32)
		t.b = b
		return b
	}
	if b.ref.Load() > 1 {
		nb := acquireBacking(len(b.idx)+extra, b.f32)
		nb.idx = append(nb.idx, b.idx...)
		nb.idxHash.Store(b.idxHash.Load()) // same cell set, same identity
		if b.f32 {
			nb.vals32 = append(nb.vals32, b.vals32...)
		} else {
			nb.vals = append(nb.vals, b.vals...)
		}
		if len(b.over) > 0 {
			nb.over = make(map[Key]float64, len(b.over))
			for k, v := range b.over {
				nb.over[k] = v
			}
		}
		if b.rowMax != nil {
			rm := *b.rowMax
			nb.rowMax = &rm
		}
		deref(b)
		t.b = nb
		return nb
	}
	return b
}

// New returns an empty F64 table with the given learning rate and discount.
// The backing is allocated lazily on first write, so never-trained tables
// (PMs that end the learning phase without Q-values) stay cheap.
func New(alpha, gamma float64) *Table {
	return NewP(alpha, gamma, F64)
}

// NewP is New with an explicit value-storage tier.
func NewP(alpha, gamma float64, prec Precision) *Table {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("qlearn: alpha %g out of (0,1]", alpha))
	}
	if gamma < 0 || gamma >= 1 {
		panic(fmt.Sprintf("qlearn: gamma %g out of [0,1)", gamma))
	}
	if prec > F32 {
		panic(fmt.Sprintf("qlearn: unknown precision %d", prec))
	}
	return &Table{Alpha: alpha, Gamma: gamma, prec: prec}
}

// Precision returns the table's value-storage tier.
func (t *Table) Precision() Precision { return t.prec }

// Len returns the number of (state, action) cells present.
func (t *Table) Len() int {
	if t.b == nil {
		return 0
	}
	return t.b.len()
}

// inSpan reports whether the cell lives in the sorted in-span array.
func inSpan(s State, a Action) bool {
	return int(s) < DenseSpan && int(a) < DenseSpan
}

// Get returns the Q-value for (s, a); missing cells read as 0, matching the
// optimistic-zero initialisation the paper's reward design assumes.
func (t *Table) Get(s State, a Action) float64 {
	b := t.b
	if b == nil {
		return 0
	}
	if inSpan(s, a) {
		if i, ok := b.find(uint16(int(s)*DenseSpan + int(a))); ok {
			return b.val(i)
		}
		return 0
	}
	return b.over[Key{s, a}]
}

// Has reports whether the cell (s, a) has been written.
func (t *Table) Has(s State, a Action) bool {
	b := t.b
	if b == nil {
		return false
	}
	if inSpan(s, a) {
		_, ok := b.find(uint16(int(s)*DenseSpan + int(a)))
		return ok
	}
	_, ok := b.over[Key{s, a}]
	return ok
}

// Set writes the Q-value for (s, a), rounded through the table's precision
// (the tier's single rounding point — all arithmetic upstream of a store is
// float64). Writing to a shared backing detaches a private copy first;
// in-span writes to an owned backing with spare capacity — the training
// steady state — do not allocate.
func (t *Table) Set(s State, a Action, v float64) {
	v = t.prec.round(v)
	if !inSpan(s, a) {
		b := t.own(0)
		if b.over == nil {
			b.over = make(map[Key]float64)
		}
		b.over[Key{s, a}] = v
		return
	}
	b := t.own(1)
	ci := uint16(int(s)*DenseSpan + int(a))
	i, ok := b.find(ci)
	old := 0.0
	if ok {
		old = b.val(i)
	} else {
		// A canonical (shared) idx array has cap==len, so this append
		// reallocates a private copy before the in-place shift below.
		b.idx = append(b.idx, 0)
		copy(b.idx[i+1:], b.idx[i:])
		b.idx[i] = ci
		b.idxShared = false
		b.idxHash.Store(0) // cell set changed; identity stale
		b.insertVal(i)
	}
	if cache := b.rowMax; cache != nil {
		if rm := cache[s]; rm == rm { // cache valid (not NaN)
			switch {
			case v > rm:
				cache[s] = v
			case v < rm && old == rm:
				// The overwritten cell may have been the row maximum (or an
				// absent cell reading as the cached 0 of an empty row);
				// recompute lazily on the next MaxKnown.
				cache[s] = nan
			}
		}
	}
	b.setVal(i, v)
}

// Reserve grows the table's backing to hold at least cells in-span cells
// without further allocation, detaching from a shared backing if needed.
// Steady-state-sensitive callers (and the zero-alloc training tests) use it
// to pre-size tables past their high-water cell count.
func (t *Table) Reserve(cells int) {
	b := t.own(0)
	if !b.idxShared && cap(b.idx) >= cells {
		return
	}
	if cells < len(b.idx) {
		cells = len(b.idx)
	}
	idx := make([]uint16, len(b.idx), cells)
	copy(idx, b.idx)
	if b.f32 {
		vals32 := make([]float32, len(b.vals32), cells)
		copy(vals32, b.vals32)
		b.vals32 = vals32
	} else {
		vals := make([]float64, len(b.vals), cells)
		copy(vals, b.vals)
		b.vals = vals
	}
	b.idx = idx
	b.idxShared = false
}

// rowScanMax returns the maximum over the present in-span cells of row s,
// 0 when the row has none (the bootstrap value for unseen states).
func (b *backing) rowScanMax(s int) float64 {
	lo, _ := b.find(uint16(s * DenseSpan))
	hi := s*DenseSpan + DenseSpan
	best, found := 0.0, false
	for i := lo; i < len(b.idx) && int(b.idx[i]) < hi; i++ {
		if v := b.val(i); !found || v > best {
			best, found = v, true
		}
	}
	return best
}

// MaxKnown returns the largest Q-value recorded for state s, or 0 when the
// state has never been visited (the bootstrap value for unseen states).
// This sits inside Equation 1's hot path (one call per training update);
// the per-state cache reduces it to a load once the row has been scanned.
// The cache is only filled while the backing is unshared, so parallel
// training rounds on post-aggregation tables stay race-free.
func (t *Table) MaxKnown(s State) float64 {
	b := t.b
	if b == nil {
		return 0
	}
	if len(b.over) == 0 {
		if int(s) >= DenseSpan {
			return 0
		}
		if cache := b.rowMax; cache != nil {
			if rm := cache[s]; rm == rm {
				return rm
			}
		}
		best := b.rowScanMax(int(s))
		if b.ref.Load() == 1 {
			if b.rowMax == nil {
				b.rowMax = newRowMax()
			}
			b.rowMax[s] = best
		}
		return best
	}
	// Out-of-span cells present (test and hostile-checkpoint territory):
	// combine a full row scan with the overflow cells of the same state.
	best, found := 0.0, false
	if int(s) < DenseSpan {
		lo, _ := b.find(uint16(int(s) * DenseSpan))
		hi := int(s)*DenseSpan + DenseSpan
		for i := lo; i < len(b.idx) && int(b.idx[i]) < hi; i++ {
			if v := b.val(i); !found || v > best {
				best, found = v, true
			}
		}
	}
	for k, v := range b.over {
		if k.S == s && (!found || v > best) {
			best, found = v, true
		}
	}
	return best
}

// Update applies Equation 1 for the transition (s, a) -> next with observed
// reward r, and returns the new Q-value. The blend accumulates in float64
// on both tiers (reads widen); only the final store rounds, so an F32
// table's drift per update is one rounding, not three. In steady state
// (owned backing with capacity for the touched cells) it performs no
// allocation.
func (t *Table) Update(s State, a Action, r float64, next State) float64 {
	// Fast path: an in-span cell already present on an unshared backing —
	// the common case from the second visit of a transition onward. One
	// binary search serves both the old-value read and the store; the slow
	// path below would run the same search three times (Get, Set, and the
	// row-start probe inside an uncached MaxKnown).
	if b := t.b; b != nil && inSpan(s, a) && b.ref.Load() == 1 {
		if i, ok := b.find(uint16(int(s)*DenseSpan + int(a))); ok {
			old := b.val(i)
			v := t.prec.round((1-t.Alpha)*old + t.Alpha*(r+t.Gamma*t.MaxKnown(next)))
			if cache := b.rowMax; cache != nil {
				if rm := cache[s]; rm == rm { // cache valid (not NaN)
					switch {
					case v > rm:
						cache[s] = v
					case v < rm && old == rm:
						cache[s] = nan
					}
				}
			}
			b.setVal(i, v)
			return v
		}
	}
	old := t.Get(s, a)
	v := (1-t.Alpha)*old + t.Alpha*(r+t.Gamma*t.MaxKnown(next))
	t.Set(s, a, v)
	return t.prec.round(v)
}

// Best returns the action among candidates with the highest Q-value in
// state s, together with that value. Unwritten cells count as 0. ok is false
// when candidates is empty. Ties break toward the action listed first, which
// keeps selection deterministic for a fixed candidate order.
func (t *Table) Best(s State, candidates []Action) (a Action, q float64, ok bool) {
	if len(candidates) == 0 {
		return 0, 0, false
	}
	a, q = candidates[0], t.Get(s, candidates[0])
	for _, c := range candidates[1:] {
		if v := t.Get(s, c); v > q {
			a, q = c, v
		}
	}
	return a, q, true
}

// sortedOverKeys returns the overflow cells' keys in (state, action) order.
func (b *backing) sortedOverKeys() []Key {
	if len(b.over) == 0 {
		return nil
	}
	keys := make([]Key, 0, len(b.over))
	for k := range b.over {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].S != keys[j].S {
			return keys[i].S < keys[j].S
		}
		return keys[i].A < keys[j].A
	})
	return keys
}

// keyLess orders cell keys lexicographically by (state, action).
func keyLess(a, b Key) bool {
	if a.S != b.S {
		return a.S < b.S
	}
	return a.A < b.A
}

// cellKey converts an in-span array index entry to its Key.
func cellKey(ci uint16) Key {
	return Key{State(ci / DenseSpan), Action(ci % DenseSpan)}
}

// Keys returns all written cells in (state, action) order: one walk of the
// sorted in-span array, interleaved with the (rare) overflow cells.
func (t *Table) Keys() []Key {
	if t.b == nil {
		return nil
	}
	b := t.b
	keys := make([]Key, 0, b.len())
	overs := b.sortedOverKeys()
	j := 0
	for _, ci := range b.idx {
		k := cellKey(ci)
		for j < len(overs) && keyLess(overs[j], k) {
			keys = append(keys, overs[j])
			j++
		}
		keys = append(keys, k)
	}
	keys = append(keys, overs[j:]...)
	return keys
}

// Flat returns the table contents as a sparse map. It is retained as a
// compatibility adapter for the codec, snapshots and tests; hot paths use
// the backing directly (see FillDense).
func (t *Table) Flat() map[Key]float64 {
	out := make(map[Key]float64, t.Len())
	if t.b == nil {
		return out
	}
	for i, ci := range t.b.idx {
		out[cellKey(ci)] = t.b.val(i)
	}
	for k, v := range t.b.over {
		out[k] = v
	}
	return out
}

// FillDense writes the table's cells into dst laid out as numS×numA
// (dst[s*numA+a], unwritten cells 0) and returns dst. Cells outside the
// requested span are dropped; GLAP's calibrated tables never have any. The
// caller supplies dst so per-sample convergence measurement can reuse one
// buffer instead of building a map per node per round.
func (t *Table) FillDense(dst []float64, numS, numA int) []float64 {
	if len(dst) < numS*numA {
		panic(fmt.Sprintf("qlearn: FillDense dst len %d < %d×%d", len(dst), numS, numA))
	}
	for i := range dst[:numS*numA] {
		dst[i] = 0
	}
	if t.b == nil {
		return dst
	}
	for i, ci := range t.b.idx {
		s, a := int(ci)/DenseSpan, int(ci)%DenseSpan
		if s < numS && a < numA {
			dst[s*numA+a] = t.b.val(i)
		}
	}
	for k, v := range t.b.over {
		if int(k.S) < numS && int(k.A) < numA {
			dst[int(k.S)*numA+int(k.A)] = v
		}
	}
	return dst
}

// FillDense32 is FillDense into a float32 buffer — the convergence
// measurement path of the F32 tier, which reads the vals32 arrays directly
// instead of materialising whole tables as float64. On an F32 table every
// copied value is exact; on an F64 table values are rounded into the buffer
// (measurement-only narrowing, never written back).
func (t *Table) FillDense32(dst []float32, numS, numA int) []float32 {
	if len(dst) < numS*numA {
		panic(fmt.Sprintf("qlearn: FillDense32 dst len %d < %d×%d", len(dst), numS, numA))
	}
	for i := range dst[:numS*numA] {
		dst[i] = 0
	}
	if t.b == nil {
		return dst
	}
	b := t.b
	for i, ci := range b.idx {
		s, a := int(ci)/DenseSpan, int(ci)%DenseSpan
		if s < numS && a < numA {
			if b.f32 {
				dst[s*numA+a] = b.vals32[i]
			} else {
				dst[s*numA+a] = float32(b.vals[i])
			}
		}
	}
	for k, v := range b.over {
		if int(k.S) < numS && int(k.A) < numA {
			dst[int(k.S)*numA+int(k.A)] = float32(v)
		}
	}
	return dst
}

// Clone returns a deep copy of the table with its own unshared backing.
func (t *Table) Clone() *Table {
	c := &Table{Alpha: t.Alpha, Gamma: t.Gamma, prec: t.prec}
	if t.b != nil {
		b := t.b
		nb := newBacking(len(b.idx), b.f32)
		nb.idx = append(nb.idx, b.idx...)
		nb.idxHash.Store(b.idxHash.Load())
		if b.f32 {
			nb.vals32 = append(nb.vals32, b.vals32...)
		} else {
			nb.vals = append(nb.vals, b.vals...)
		}
		if len(b.over) > 0 {
			nb.over = make(map[Key]float64, len(b.over))
			for k, v := range b.over {
				nb.over[k] = v
			}
		}
		if b.rowMax != nil {
			rm := *b.rowMax
			nb.rowMax = &rm
		}
		c.b = nb
	}
	return c
}

// Footprint reports the physical memory behind a set of tables: the number
// of distinct backings (a backing shared by several tables counts once),
// the bytes they reserve — including append slack and overflow maps — and,
// separately, the bytes of the value arrays alone (valueBytes ⊆ bytes; 8
// per reserved cell on the F64 tier, 4 on F32). The scale benchmark uses
// the split to attribute the precision tier's saving directly; the cells
// figure is the logical total (shared backings still counted once).
func Footprint(tables []*Table) (backings int, bytes, valueBytes int64, cells int) {
	seen := make(map[*backing]struct{}, len(tables))
	for _, t := range tables {
		b := t.b
		if b == nil {
			continue
		}
		if _, ok := seen[b]; ok {
			continue
		}
		seen[b] = struct{}{}
		backings++
		cells += b.len()
		if !b.idxShared {
			// A canonical cell-set array is aliased by many backings; it is
			// excluded here rather than charged to each aliaser (at most
			// canonMaxSets such arrays exist process-wide).
			bytes += int64(cap(b.idx)) * 2
		}
		valueBytes += int64(cap(b.vals))*8 + int64(cap(b.vals32))*4
		bytes += int64(len(b.over)) * 32
		if b.rowMax != nil {
			bytes += int64(len(b.rowMax)) * 8
		}
	}
	return backings, bytes + valueBytes, valueBytes, cells
}

// Unify merges two tables in place per Algorithm 2's UPDATE: cells present
// in both become the average of the two values in both tables; cells present
// in only one are copied to the other. After Unify the tables are equal —
// and share one backing, which is what bounds aggregation-phase memory at
// cluster scale (see the package comment).
func Unify(p, q *Table) {
	mergeTables(p, q)
}

// Merge is Unify fused with the change check: the same post-merge state,
// plus a report of whether any cell changed. Callers that previously ran
// Equal-then-Unify paid two nearly-full scans per exchange once gossip
// neared convergence; Merge's scan doubles as the equality check, and a
// no-op merge of already-equal tables just collapses them onto one backing.
func Merge(p, q *Table) bool {
	return mergeTables(p, q)
}

// overUnion merges the overflow maps of pb and qb into a fresh map,
// averaging through prec's rounding point (a no-op on F64).
func overUnion(pb, qb *backing, prec Precision) map[Key]float64 {
	if len(pb.over) == 0 && len(qb.over) == 0 {
		return nil
	}
	out := make(map[Key]float64, len(pb.over)+len(qb.over))
	for k, v := range pb.over {
		out[k] = v
	}
	for k, v := range qb.over {
		if pv, ok := out[k]; ok {
			if pv != v {
				out[k] = prec.round((pv + v) / 2)
			}
		} else {
			out[k] = v
		}
	}
	return out
}

// MergeStats is a snapshot of mergeTables' outcome counters since the last
// ResetMergeStats. The first four are the fast paths — exchanges that skipped
// some or all of the general find/unionScan/unionBuild machinery:
//
//	SharedBacking — the pair already shared one backing: pure pointer
//	    compare, nothing scanned.
//	AlignedIdx    — both cell sets alias one canonical interned array
//	    (the converged steady state): set comparison is a pointer compare
//	    and the merge, when needed, averages the aligned value arrays
//	    without rebuilding an index.
//	EqualCollapse — identical content detected by the comparison scan; the
//	    pair collapsed onto one backing with no value writes.
//	AdoptedIdx    — equal cell sets with an unshared side: averages written
//	    in place, the other table adopted the backing (no union build).
//
// Unions counts the residual general path (full union build), and Merges the
// total mergeTables calls; Merges − SharedBacking − AlignedIdx −
// EqualCollapse − AdoptedIdx − Unions is the number of one-sided adoptions
// (one endpoint had no backing at all). AlignedIdx pairs that turn out
// content-equal (or set-equal with an owner) are counted once, under
// AlignedIdx, since the alignment is what made the cheap outcome possible.
type MergeStats struct {
	Merges        uint64
	SharedBacking uint64
	AlignedIdx    uint64
	EqualCollapse uint64
	AdoptedIdx    uint64
	Unions        uint64
}

// FastHits returns the total number of exchanges resolved by a fast path.
func (m MergeStats) FastHits() uint64 {
	return m.SharedBacking + m.AlignedIdx + m.EqualCollapse + m.AdoptedIdx
}

var mergeStats struct {
	merges, sharedBacking, alignedIdx, equalCollapse, adoptedIdx, unions atomic.Uint64
}

// ReadMergeStats returns the counters accumulated since the last reset.
func ReadMergeStats() MergeStats {
	return MergeStats{
		Merges:        mergeStats.merges.Load(),
		SharedBacking: mergeStats.sharedBacking.Load(),
		AlignedIdx:    mergeStats.alignedIdx.Load(),
		EqualCollapse: mergeStats.equalCollapse.Load(),
		AdoptedIdx:    mergeStats.adoptedIdx.Load(),
		Unions:        mergeStats.unions.Load(),
	}
}

// ResetMergeStats zeroes the merge outcome counters. Benchmarks reset before
// a measured phase so per-run reports are not contaminated by earlier runs in
// the same process.
func ResetMergeStats() {
	mergeStats.merges.Store(0)
	mergeStats.sharedBacking.Store(0)
	mergeStats.alignedIdx.Store(0)
	mergeStats.equalCollapse.Store(0)
	mergeStats.adoptedIdx.Store(0)
	mergeStats.unions.Store(0)
}

// unionScan is mergeTables' comparison pass over one tier's value arrays:
// union size of the two sorted cell sets plus value equality on the shared
// cells. The float64 instantiation is the exact scan the pre-tier merge
// ran.
func unionScan[V value](pi, qi []uint16, pvals, qvals []V) (union int, valsEqual bool) {
	i, j := 0, 0
	valsEqual = true
	if len(pi) == len(qi) {
		// Equal-length fast loop: mid-convergence merges mostly compare
		// identical cell sets that are not (yet) pointer-aligned. Walk the
		// common elementwise prefix with two predictable compares per cell;
		// the general merge walk below resumes at the first set mismatch.
		for i < len(pi) && pi[i] == qi[i] {
			if pvals[i] != qvals[i] {
				valsEqual = false
			}
			i++
		}
		union, j = i, i
		if i == len(pi) {
			return union, valsEqual
		}
	}
	for i < len(pi) && j < len(qi) {
		switch {
		case pi[i] == qi[j]:
			if pvals[i] != qvals[j] {
				valsEqual = false
			}
			i++
			j++
		case pi[i] < qi[j]:
			i++
		default:
			j++
		}
		union++
	}
	union += len(pi) - i + len(qi) - j
	return union, valsEqual
}

// averageInto folds o's values into d's for equal cell sets: differing cells
// become the float64 midpoint rounded once into the tier (for V=float64 the
// conversions are no-ops and this is the exact pre-tier arithmetic).
func averageInto[V value](dvals, ovals []V) {
	for i := range dvals {
		if dv, ov := dvals[i], ovals[i]; dv != ov {
			dvals[i] = V((float64(dv) + float64(ov)) / 2)
		}
	}
}

// valsEqualAligned reports cell-wise value equality of two aligned value
// arrays — the comparison scan of the aligned fast path, with the same !=
// semantics as unionScan's shared-cell compare.
func valsEqualAligned[V value](a, b []V) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// averageAligned writes the merge of two aligned value arrays into dst:
// per cell, the float64 midpoint with one rounding point on store when the
// values differ, the shared value verbatim when they agree — bit-identical
// to what unionBuild produces for a cell present on both sides.
func averageAligned[V value](dst, a, b []V) {
	for i := range dst {
		v := a[i]
		if bv := b[i]; v != bv {
			v = V((float64(v) + float64(bv)) / 2)
		}
		dst[i] = v
	}
}

// mergeValsInto writes the merged values of a union whose cell set equals pi
// (qi ⊆ pi as sets) into dvals: one walk of pi with a match cursor over qi,
// averaging shared cells exactly as unionBuild does. It is the value pass of
// the superset-alias fast path, which skips rebuilding an idx array the
// union provably equals.
func mergeValsInto[V value](dvals []V, pi, qi []uint16, pvals, qvals []V) {
	j := 0
	for i := range pi {
		v := pvals[i]
		if j < len(qi) && qi[j] == pi[i] {
			if qv := qvals[j]; v != qv {
				v = V((float64(v) + float64(qv)) / 2)
			}
			j++
		}
		dvals[i] = v
	}
}

// unionBuild writes the merged union of (pi, pvals) and (qi, qvals) into
// the pre-sized didx/dvals, averaging shared cells in float64 with one
// rounding point on store.
func unionBuild[V value](didx []uint16, dvals []V, pi, qi []uint16, pvals, qvals []V) {
	i, j := 0, 0
	for k := range didx {
		switch {
		case i < len(pi) && j < len(qi) && pi[i] == qi[j]:
			v := pvals[i]
			if qv := qvals[j]; v != qv {
				v = V((float64(v) + float64(qv)) / 2)
			}
			didx[k], dvals[k] = pi[i], v
			i++
			j++
		case j >= len(qi) || (i < len(pi) && pi[i] < qi[j]):
			didx[k], dvals[k] = pi[i], pvals[i]
			i++
		default:
			didx[k], dvals[k] = qi[j], qvals[j]
			j++
		}
	}
}

// mergeTables implements Unify/Merge. It returns whether any cell of either
// table changed (equivalently: whether the tables differed).
//
// Ownership outcomes, chosen so every merge leaves the pair sharing one
// backing (a push-pull merge makes both sides identical, so anything else
// duplicates converging state N-fold across a gossiping cluster) while the
// recycling pool keeps the steady-state merge loop allocation-free:
//   - already sharing (or both empty): no-op.
//   - equal content: the pair collapses onto one backing, freeing the other.
//   - equal cell sets, at least one side unshared: averages are written into
//     an unshared backing, which the other table adopts; a displaced owned
//     backing returns to the pool.
//   - differing cell sets (or both backings shared): the union is built into
//     a recycled or fresh backing that both tables adopt.
//
// Fast paths (see MergeStats) carve out the converged steady state of
// aggregation gossip: a pair already sharing one backing is a pointer
// compare; a pair whose idx arrays alias the same canonical interned cell
// set skips the set comparison entirely (pointer equality of immutable
// arrays is set equality) and, when a merge is still needed, averages the
// aligned value arrays into a backing that aliases the same canonical set —
// no find, no unionScan, no unionBuild; a union that provably equals one
// side's canonical cell set aliases that array instead of rebuilding it and
// inherits its cached FNV identity instead of rehashing.
func mergeTables(p, q *Table) bool {
	if p.prec != q.prec {
		// A cross-tier merge would have to pick a rounding regime for the
		// surviving shared backing; GLAP clusters run one tier, so this is a
		// wiring bug, not a state to average through.
		panic(fmt.Sprintf("qlearn: merging %s table with %s table", p.prec, q.prec))
	}
	mergeStats.merges.Add(1)
	pb, qb := p.b, q.b
	if pb == qb {
		mergeStats.sharedBacking.Add(1)
		return false // same backing (or both nil): already equal
	}
	if pb == nil {
		p.b = qb
		qb.ref.Add(1)
		return qb.len() > 0
	}
	if qb == nil {
		q.b = pb
		pb.ref.Add(1)
		return pb.len() > 0
	}

	// One comparison scan: union size, set equality, value equality. When
	// both cell sets alias one immutable canonical array, the scan collapses
	// to a value-equality walk: pointer equality is set equality. (idxShared
	// on both sides guarantees immutability — pointer-equal idx slices alone
	// would not, since an owned backing may overwrite its array in place.)
	pi, qi := pb.idx, qb.idx
	aligned := len(pi) == len(qi) && len(pi) > 0 &&
		&pi[0] == &qi[0] && pb.idxShared && qb.idxShared
	var union int
	var valsEqual bool
	switch {
	case aligned:
		mergeStats.alignedIdx.Add(1)
		union = len(pi)
		if pb.f32 {
			valsEqual = valsEqualAligned(pb.vals32, qb.vals32)
		} else {
			valsEqual = valsEqualAligned(pb.vals, qb.vals)
		}
	case pb.f32:
		union, valsEqual = unionScan(pi, qi, pb.vals32, qb.vals32)
	default:
		union, valsEqual = unionScan(pi, qi, pb.vals, qb.vals)
	}
	setsEqual := union == len(pi) && union == len(qi)

	overSetsEqual, overEqual := true, true
	if len(pb.over) != len(qb.over) {
		overSetsEqual, overEqual = false, false
	} else {
		for k, v := range pb.over {
			qv, ok := qb.over[k]
			if !ok {
				overSetsEqual, overEqual = false, false
				break
			}
			if qv != v {
				overEqual = false
			}
		}
	}

	if setsEqual && valsEqual && overEqual {
		// Identical content: collapse the pair onto p's backing.
		if !aligned {
			mergeStats.equalCollapse.Add(1)
		}
		q.b = pb
		pb.ref.Add(1)
		deref(qb)
		return false
	}

	pOwned := pb.ref.Load() == 1
	qOwned := qb.ref.Load() == 1

	if setsEqual && overSetsEqual {
		if pOwned || qOwned {
			// Write averages into an unshared side and have the other table
			// adopt it, so the pair leaves the merge sharing one backing.
			// (An earlier revision dual-wrote averages into both owned
			// backings; that kept every node's table privately backed
			// through the whole aggregation phase — both sides of a
			// push-pull merge hold identical content afterwards, and at
			// cluster scale the N-fold duplication was the dominant term of
			// pretrain's peak heap.)
			if !aligned {
				mergeStats.adoptedIdx.Add(1)
			}
			d, o, other := pb, qb, q
			if !pOwned {
				d, o, other = qb, pb, p
			}
			if d.f32 {
				averageInto(d.vals32, o.vals32)
			} else {
				averageInto(d.vals, o.vals)
			}
			for k, v := range d.over {
				if ov := o.over[k]; ov != v {
					d.over[k] = p.prec.round((v + ov) / 2)
				}
			}
			d.invalidateRowMax()
			other.b = d
			d.ref.Add(1)
			deref(o)
			return true
		}
	}

	// Differing cell sets or both backings shared: build the union into a
	// destination both tables adopt. Three builders, cheapest applicable
	// wins:
	//   - aligned: the union IS the canonical set both sides alias; take a
	//     values-only backing aliasing it and average the aligned arrays.
	//   - superset alias: the union equals one side's canonical cell set
	//     (the other is a subset); alias that array and merge values with a
	//     match cursor — no idx rebuild, hash inherited.
	//   - general: full unionBuild into a recycled array, then canonical
	//     interning (converged unions rebuild the same saturated cell set on
	//     every exchange; aliasing one interned copy reclaims 2 bytes/cell
	//     per backing, cluster-wide) using the sides' cached FNV identities
	//     when the union coincides with either cell set.
	var d *backing
	switch {
	case aligned:
		d = acquireAliasBacking(pi, pb.f32, pb.cellSetHash())
		if d.f32 {
			d.vals32 = d.vals32[:union]
			averageAligned(d.vals32, pb.vals32, qb.vals32)
		} else {
			d.vals = d.vals[:union]
			averageAligned(d.vals, pb.vals, qb.vals)
		}
	case union == len(pi) && pb.idxShared:
		mergeStats.unions.Add(1)
		d = acquireAliasBacking(pi, pb.f32, pb.cellSetHash())
		if d.f32 {
			d.vals32 = d.vals32[:union]
			mergeValsInto(d.vals32, pi, qi, pb.vals32, qb.vals32)
		} else {
			d.vals = d.vals[:union]
			mergeValsInto(d.vals, pi, qi, pb.vals, qb.vals)
		}
	case union == len(qi) && qb.idxShared:
		mergeStats.unions.Add(1)
		d = acquireAliasBacking(qi, qb.f32, qb.cellSetHash())
		if d.f32 {
			d.vals32 = d.vals32[:union]
			mergeValsInto(d.vals32, qi, pi, qb.vals32, pb.vals32)
		} else {
			d.vals = d.vals[:union]
			mergeValsInto(d.vals, qi, pi, qb.vals, pb.vals)
		}
	default:
		mergeStats.unions.Add(1)
		d = acquireBacking(union, pb.f32)
		d.idx = d.idx[:union]
		if d.f32 {
			d.vals32 = d.vals32[:union]
			unionBuild(d.idx, d.vals32, pi, qi, pb.vals32, qb.vals32)
		} else {
			d.vals = d.vals[:union]
			unionBuild(d.idx, d.vals, pi, qi, pb.vals, qb.vals)
		}
		if len(d.idx) >= canonMinCells {
			var h uint64
			switch {
			case union == len(pi):
				h = pb.cellSetHash()
			case union == len(qi):
				h = qb.cellSetHash()
			default:
				h = fnvIdx(d.idx)
			}
			d.idxHash.Store(h)
			if c, ok := canonicalIdx(d.idx, h); ok {
				old := d.idx
				d.idx, d.idxShared = c, true
				poolPutIdx(old)
			}
		}
	}
	d.over = overUnion(pb, qb, p.prec)
	deref(pb)
	deref(qb)
	p.b, q.b = d, d
	d.ref.Store(2)
	return true
}

// Equal reports whether two tables hold exactly the same cells and values.
// A pair sharing one backing — the invariable case once aggregation gossip
// has merged them — is equal by identity; otherwise two slice scans.
func Equal(p, q *Table) bool {
	pb, qb := p.b, q.b
	if pb == qb {
		return true
	}
	pl, ql := 0, 0
	if pb != nil {
		pl = pb.len()
	}
	if qb != nil {
		ql = qb.len()
	}
	if pl != ql {
		return false
	}
	if pl == 0 {
		return true
	}
	if len(pb.idx) != len(qb.idx) {
		return false
	}
	for i := range pb.idx {
		if pb.idx[i] != qb.idx[i] {
			return false
		}
	}
	// Values compare widened, so an F64 table and an F32 table holding the
	// same representable values are equal.
	for i := range pb.idx {
		if pb.val(i) != qb.val(i) {
			return false
		}
	}
	for k, v := range pb.over {
		if qv, ok := qb.over[k]; !ok || qv != v {
			return false
		}
	}
	return true
}

// EpsilonGreedy selects among candidates: with probability eps a uniformly
// random candidate (exploration), otherwise the Best action (exploitation).
// rnd(n) must return a uniform integer in [0, n). ok is false when
// candidates is empty.
func (t *Table) EpsilonGreedy(s State, candidates []Action, eps float64, rnd func(n int) int, coin func() float64) (a Action, ok bool) {
	if len(candidates) == 0 {
		return 0, false
	}
	if eps > 0 && coin() < eps {
		return candidates[rnd(len(candidates))], true
	}
	a, _, ok = t.Best(s, candidates)
	return a, ok
}
