// Package qlearn implements the tabular Q-learning machinery GLAP builds
// on: Q-tables over discrete (state, action) pairs, the standard update rule
//
//	Q_{t+1}(s,a) = (1-α)·Q_t(s,a) + α·(R + γ·max_a' Q_t(s',a'))
//
// (Equation 1 of the paper), greedy/ε-greedy action selection, and the
// gossip merge ("average when both know the pair, adopt when only one does")
// that Algorithm 2's aggregation phase applies.
package qlearn

import (
	"fmt"
	"sort"
)

// State is a discrete environment state. GLAP packs a PM's calibrated
// (CPU level, MEM level) pair into one State.
type State uint32

// Action is a discrete action. GLAP packs a VM's calibrated level pair the
// same way.
type Action uint32

// Key identifies one Q-table cell.
type Key struct {
	S State
	A Action
}

// Table is a sparse Q-table together with its learning parameters. The zero
// value is not ready; use New.
type Table struct {
	// Alpha is the learning rate in (0, 1].
	Alpha float64
	// Gamma is the discount factor in [0, 1).
	Gamma float64

	q map[State]map[Action]float64
	n int
}

// New returns an empty table with the given learning rate and discount.
func New(alpha, gamma float64) *Table {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("qlearn: alpha %g out of (0,1]", alpha))
	}
	if gamma < 0 || gamma >= 1 {
		panic(fmt.Sprintf("qlearn: gamma %g out of [0,1)", gamma))
	}
	return &Table{Alpha: alpha, Gamma: gamma, q: make(map[State]map[Action]float64)}
}

// Len returns the number of (state, action) cells present.
func (t *Table) Len() int { return t.n }

// Get returns the Q-value for (s, a); missing cells read as 0, matching the
// optimistic-zero initialisation the paper's reward design assumes.
func (t *Table) Get(s State, a Action) float64 {
	return t.q[s][a]
}

// Has reports whether the cell (s, a) has been written.
func (t *Table) Has(s State, a Action) bool {
	row, ok := t.q[s]
	if !ok {
		return false
	}
	_, ok = row[a]
	return ok
}

// Set writes the Q-value for (s, a).
func (t *Table) Set(s State, a Action, v float64) {
	row, ok := t.q[s]
	if !ok {
		row = make(map[Action]float64)
		t.q[s] = row
	}
	if _, exists := row[a]; !exists {
		t.n++
	}
	row[a] = v
}

// MaxKnown returns the largest Q-value recorded for state s, or 0 when the
// state has never been visited (the bootstrap value for unseen states).
func (t *Table) MaxKnown(s State) float64 {
	row, ok := t.q[s]
	if !ok || len(row) == 0 {
		return 0
	}
	first := true
	best := 0.0
	for _, v := range row {
		if first || v > best {
			best = v
			first = false
		}
	}
	return best
}

// Update applies Equation 1 for the transition (s, a) -> next with observed
// reward r, and returns the new Q-value.
func (t *Table) Update(s State, a Action, r float64, next State) float64 {
	old := t.Get(s, a)
	v := (1-t.Alpha)*old + t.Alpha*(r+t.Gamma*t.MaxKnown(next))
	t.Set(s, a, v)
	return v
}

// Best returns the action among candidates with the highest Q-value in
// state s, together with that value. Unwritten cells count as 0. ok is false
// when candidates is empty. Ties break toward the action listed first, which
// keeps selection deterministic for a fixed candidate order.
func (t *Table) Best(s State, candidates []Action) (a Action, q float64, ok bool) {
	if len(candidates) == 0 {
		return 0, 0, false
	}
	a, q = candidates[0], t.Get(s, candidates[0])
	for _, c := range candidates[1:] {
		if v := t.Get(s, c); v > q {
			a, q = c, v
		}
	}
	return a, q, true
}

// Keys returns all written cells in deterministic (state, action) order.
func (t *Table) Keys() []Key {
	keys := make([]Key, 0, t.n)
	for s, row := range t.q {
		for a := range row {
			keys = append(keys, Key{s, a})
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].S != keys[j].S {
			return keys[i].S < keys[j].S
		}
		return keys[i].A < keys[j].A
	})
	return keys
}

// Flat returns the table contents as a map for vector-space comparisons
// (cosine similarity in the Figure 5 experiment).
func (t *Table) Flat() map[Key]float64 {
	out := make(map[Key]float64, t.n)
	for s, row := range t.q {
		for a, v := range row {
			out[Key{s, a}] = v
		}
	}
	return out
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	c := New(t.Alpha, t.Gamma)
	for s, row := range t.q {
		for a, v := range row {
			c.Set(s, a, v)
		}
	}
	return c
}

// Unify merges two tables in place per Algorithm 2's UPDATE: cells present
// in both become the average of the two values in both tables; cells present
// in only one are copied to the other. After Unify the tables are equal.
//
// The merge works row-wise on the underlying maps: aggregation gossip runs
// this once per node per round over the full table, so avoiding the
// per-cell Has/Get/Set lookups matters at cluster scale.
func Unify(p, q *Table) {
	for s, prow := range p.q {
		qrow, ok := q.q[s]
		if !ok {
			qrow = make(map[Action]float64, len(prow))
			q.q[s] = qrow
		}
		for a, pv := range prow {
			if qv, has := qrow[a]; has {
				avg := (pv + qv) / 2
				prow[a] = avg
				qrow[a] = avg
			} else {
				qrow[a] = pv
				q.n++
			}
		}
	}
	for s, qrow := range q.q {
		prow, ok := p.q[s]
		if !ok {
			prow = make(map[Action]float64, len(qrow))
			p.q[s] = prow
		}
		for a, qv := range qrow {
			if _, has := prow[a]; !has {
				prow[a] = qv
				p.n++
			}
		}
	}
}

// Equal reports whether two tables hold exactly the same cells and values.
// It exits on the first difference.
func Equal(p, q *Table) bool {
	if p.n != q.n {
		return false
	}
	for s, prow := range p.q {
		qrow, ok := q.q[s]
		if !ok {
			if len(prow) > 0 {
				return false
			}
			continue
		}
		for a, v := range prow {
			if qv, has := qrow[a]; !has || qv != v {
				return false
			}
		}
	}
	return true
}

// EpsilonGreedy selects among candidates: with probability eps a uniformly
// random candidate (exploration), otherwise the Best action (exploitation).
// rnd(n) must return a uniform integer in [0, n). ok is false when
// candidates is empty.
func (t *Table) EpsilonGreedy(s State, candidates []Action, eps float64, rnd func(n int) int, coin func() float64) (a Action, ok bool) {
	if len(candidates) == 0 {
		return 0, false
	}
	if eps > 0 && coin() < eps {
		return candidates[rnd(len(candidates))], true
	}
	a, _, ok = t.Best(s, candidates)
	return a, ok
}
