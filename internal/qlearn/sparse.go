package qlearn

import "sort"

// Sparse is the retired nested-map Q-table backing, kept as the reference
// implementation the dense Table is differentially tested and benchmarked
// against. It reproduces the pre-dense semantics exactly: hash lookups per
// cell, per-exchange map allocation on adopt, optimistic-zero reads.
//
// Production code must use Table; Sparse exists for the sparse-vs-dense
// differential tests and the glapbench kernel before/after comparison.
type Sparse struct {
	// Alpha is the learning rate in (0, 1].
	Alpha float64
	// Gamma is the discount factor in [0, 1).
	Gamma float64

	q map[State]map[Action]float64
	n int
}

// NewSparse returns an empty sparse reference table.
func NewSparse(alpha, gamma float64) *Sparse {
	return &Sparse{Alpha: alpha, Gamma: gamma, q: make(map[State]map[Action]float64)}
}

// Len returns the number of (state, action) cells present.
func (t *Sparse) Len() int { return t.n }

// Get returns the Q-value for (s, a); missing cells read as 0.
func (t *Sparse) Get(s State, a Action) float64 { return t.q[s][a] }

// Has reports whether the cell (s, a) has been written.
func (t *Sparse) Has(s State, a Action) bool {
	row, ok := t.q[s]
	if !ok {
		return false
	}
	_, ok = row[a]
	return ok
}

// Set writes the Q-value for (s, a).
func (t *Sparse) Set(s State, a Action, v float64) {
	row, ok := t.q[s]
	if !ok {
		row = make(map[Action]float64)
		t.q[s] = row
	}
	if _, exists := row[a]; !exists {
		t.n++
	}
	row[a] = v
}

// MaxKnown returns the largest Q-value recorded for state s, or 0 when the
// state has never been visited.
func (t *Sparse) MaxKnown(s State) float64 {
	row, ok := t.q[s]
	if !ok || len(row) == 0 {
		return 0
	}
	first := true
	best := 0.0
	for _, v := range row {
		if first || v > best {
			best = v
			first = false
		}
	}
	return best
}

// Update applies Equation 1 for the transition (s, a) -> next with observed
// reward r, and returns the new Q-value.
func (t *Sparse) Update(s State, a Action, r float64, next State) float64 {
	old := t.Get(s, a)
	v := (1-t.Alpha)*old + t.Alpha*(r+t.Gamma*t.MaxKnown(next))
	t.Set(s, a, v)
	return v
}

// Keys returns all written cells in deterministic (state, action) order.
func (t *Sparse) Keys() []Key {
	keys := make([]Key, 0, t.n)
	for s, row := range t.q {
		for a := range row {
			keys = append(keys, Key{s, a})
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].S != keys[j].S {
			return keys[i].S < keys[j].S
		}
		return keys[i].A < keys[j].A
	})
	return keys
}

// Flat returns the table contents as a map.
func (t *Sparse) Flat() map[Key]float64 {
	out := make(map[Key]float64, t.n)
	for s, row := range t.q {
		for a, v := range row {
			out[Key{s, a}] = v
		}
	}
	return out
}

// Clone returns a deep copy of the table.
func (t *Sparse) Clone() *Sparse {
	c := NewSparse(t.Alpha, t.Gamma)
	for s, row := range t.q {
		for a, v := range row {
			c.Set(s, a, v)
		}
	}
	return c
}

// UnifySparse merges two sparse tables in place per Algorithm 2's UPDATE,
// exactly as the retired map-backed Unify did.
func UnifySparse(p, q *Sparse) {
	for s, prow := range p.q {
		qrow, ok := q.q[s]
		if !ok {
			qrow = make(map[Action]float64, len(prow))
			q.q[s] = qrow
		}
		for a, pv := range prow {
			if qv, has := qrow[a]; has {
				avg := (pv + qv) / 2
				prow[a] = avg
				qrow[a] = avg
			} else {
				qrow[a] = pv
				q.n++
			}
		}
	}
	for s, qrow := range q.q {
		prow, ok := p.q[s]
		if !ok {
			prow = make(map[Action]float64, len(qrow))
			p.q[s] = prow
		}
		for a, qv := range qrow {
			if _, has := prow[a]; !has {
				prow[a] = qv
				p.n++
			}
		}
	}
}

// EqualSparse reports whether two sparse tables hold the same cells and
// values, exiting on the first difference.
func EqualSparse(p, q *Sparse) bool {
	if p.n != q.n {
		return false
	}
	for s, prow := range p.q {
		qrow, ok := q.q[s]
		if !ok {
			if len(prow) > 0 {
				return false
			}
			continue
		}
		for a, v := range prow {
			if qv, has := qrow[a]; !has || qv != v {
				return false
			}
		}
	}
	return true
}
