package qlearn

import (
	"math/rand"
	"testing"
)

// f32r is the F32 tier's rounding point, spelled out.
func f32r(v float64) float64 { return float64(float32(v)) }

// TestPrecisionRounding pins the single-rounding contract: an F32 table
// stores float64(float32(v)) — one rounding on store, none on read — while
// the F64 tier stores v bit-exactly.
func TestPrecisionRounding(t *testing.T) {
	const v = 0.1 // not representable in float32
	t64 := New(0.5, 0.8)
	t64.Set(1, 2, v)
	if got := t64.Get(1, 2); got != v {
		t.Fatalf("F64 Get = %v, want %v", got, v)
	}
	if t64.Precision() != F64 {
		t.Fatal("New must build an F64 table")
	}

	t32 := NewP(0.5, 0.8, F32)
	if t32.Precision() != F32 {
		t.Fatal("NewP(F32) tier lost")
	}
	t32.Set(1, 2, v)
	if got := t32.Get(1, 2); got != f32r(v) {
		t.Fatalf("F32 Get = %v, want rounded %v", got, f32r(v))
	}
	// Out-of-span cells live in the float64 overflow map on both tiers but
	// must round through the same point, so the whole table quantises
	// uniformly.
	t32.Set(200, 200, v)
	if got := t32.Get(200, 200); got != f32r(v) {
		t.Fatalf("F32 overflow Get = %v, want rounded %v", got, f32r(v))
	}
}

// TestPrecisionUpdateAccumulatesWide verifies Update blends Equation 1 in
// float64 and rounds exactly once on store: the result equals the float64
// blend of the (already rounded) operands, rounded at the end — not a chain
// of float32 intermediates.
func TestPrecisionUpdateAccumulatesWide(t *testing.T) {
	const alpha, gamma = 0.5, 0.8
	tb := NewP(alpha, gamma, F32)
	tb.Set(1, 2, 0.3) // old value, stored rounded
	tb.Set(4, 7, 0.7) // row max of next state, stored rounded
	const r = 0.123456789
	got := tb.Update(1, 2, r, 4)
	want := f32r((1-alpha)*f32r(0.3) + alpha*(r+gamma*f32r(0.7)))
	if got != want {
		t.Fatalf("Update = %v, want single-rounded %v", got, want)
	}
	if tb.Get(1, 2) != want {
		t.Fatalf("stored %v, want %v", tb.Get(1, 2), want)
	}
}

// TestPrecisionReplayDifferential replays one pseudo-random update/set/merge
// sequence through an F64 pair and an F32 pair in lockstep. The two runs
// visit identical cells (the draws are value-independent), so the tables
// must agree cell-for-cell within float32 rounding of the running values,
// and every F32 cell must be exactly float32-representable.
func TestPrecisionReplayDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a64, b64 := New(0.5, 0.8), New(0.5, 0.8)
	a32, b32 := NewP(0.5, 0.8, F32), NewP(0.5, 0.8, F32)

	checkClose := func(step int, t64, t32 *Table) {
		t.Helper()
		if t64.Len() != t32.Len() {
			t.Fatalf("step %d: Len %d (F64) vs %d (F32): cell sets diverged", step, t64.Len(), t32.Len())
		}
		for k, v64 := range t64.Flat() {
			v32 := t32.Get(k.S, k.A)
			if v32 != f32r(v32) {
				t.Fatalf("step %d: F32 cell %v holds non-f32 value %v", step, k, v32)
			}
			// Rounding drift compounds across updates and merges; a loose
			// relative envelope (~2^-18) catches tier mix-ups (which diverge
			// wildly) without tripping on legitimate accumulation.
			diff, scale := v64-v32, 1.0
			if v64 < 0 {
				diff = -diff
			}
			if v64 > 1 || v64 < -1 {
				scale = v64
				if scale < 0 {
					scale = -scale
				}
			}
			if diff < 0 {
				diff = -diff
			}
			if diff > scale*4e-6 {
				t.Fatalf("step %d: cell %v diverged: F64 %v vs F32 %v", step, k, v64, v32)
			}
		}
	}

	for step := 0; step < 3000; step++ {
		s, a, next := State(rng.Intn(81)), Action(rng.Intn(81)), State(rng.Intn(81))
		switch op := rng.Intn(10); {
		case op < 6:
			r := rng.NormFloat64() * 10
			if rng.Intn(2) == 0 {
				a64.Update(s, a, r, next)
				a32.Update(s, a, r, next)
			} else {
				b64.Update(s, a, r, next)
				b32.Update(s, a, r, next)
			}
		case op < 8:
			v := rng.NormFloat64()
			a64.Set(s, a, v)
			a32.Set(s, a, v)
		default:
			Unify(a64, b64)
			Unify(a32, b32)
			checkClose(step, a64, a32)
			checkClose(step, b64, b32)
		}
	}
	checkClose(3000, a64, a32)
	checkClose(3000, b64, b32)
}

// TestPrecisionMergeRejectsMixedTiers pins the merge contract: averaging a
// float64 table into a float32 one would silently pick one tier's rounding
// for both, so mixed-tier merges must panic instead.
func TestPrecisionMergeRejectsMixedTiers(t *testing.T) {
	p, q := New(0.5, 0.8), NewP(0.5, 0.8, F32)
	p.Set(1, 2, 3)
	q.Set(4, 5, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("Unify across tiers did not panic")
		}
	}()
	Unify(p, q)
}

// TestPrecisionEqualAcrossTiers: Equal compares widened values, so an F64
// and an F32 table holding the same (f32-representable) cells are equal.
func TestPrecisionEqualAcrossTiers(t *testing.T) {
	p, q := New(0.5, 0.8), NewP(0.5, 0.8, F32)
	p.Set(1, 2, 0.25)
	q.Set(1, 2, 0.25)
	if !Equal(p, q) {
		t.Fatal("tables with identical representable values unequal across tiers")
	}
	p.Set(3, 3, 0.1) // 0.1 is not f32-representable
	q.Set(3, 3, 0.1) // stored rounded → differs from p's cell
	if Equal(p, q) {
		t.Fatal("rounded F32 cell compared equal to unrounded F64 cell")
	}
}

// TestPoolTierIsolation pins the pool contract under mixed precision: the
// vals and vals32 free lists never cross tiers — an F32 acquire must not
// consume (or be handed) a pooled float64 array, and vice versa.
func TestPoolTierIsolation(t *testing.T) {
	backingPool.mu.Lock()
	backingPool.nodes, backingPool.idxs = nil, nil
	backingPool.vals, backingPool.vals32 = nil, nil
	backingPool.mu.Unlock()

	poolLens := func() (v64, v32 int) {
		backingPool.mu.Lock()
		defer backingPool.mu.Unlock()
		return len(backingPool.vals), len(backingPool.vals32)
	}

	releaseBacking(newBacking(64, false)) // donate one f64 array
	if v64, v32 := poolLens(); v64 != 1 || v32 != 0 {
		t.Fatalf("after f64 release: vals=%d vals32=%d", v64, v32)
	}

	b := acquireBacking(8, true) // f32 acquire must leave the f64 array alone
	if !b.f32 || b.vals != nil || b.vals32 == nil {
		t.Fatalf("f32 acquire built wrong tier: f32=%v vals=%v vals32=%v", b.f32, b.vals != nil, b.vals32 != nil)
	}
	if v64, v32 := poolLens(); v64 != 1 || v32 != 0 {
		t.Fatalf("f32 acquire touched f64 list: vals=%d vals32=%d", v64, v32)
	}

	releaseBacking(b)
	if v64, v32 := poolLens(); v64 != 1 || v32 != 1 {
		t.Fatalf("after f32 release: vals=%d vals32=%d", v64, v32)
	}

	b = acquireBacking(8, false) // f64 acquire takes the pooled f64 array only
	if b.f32 || b.vals == nil || b.vals32 != nil {
		t.Fatalf("f64 acquire built wrong tier: f32=%v vals=%v vals32=%v", b.f32, b.vals != nil, b.vals32 != nil)
	}
	if v64, v32 := poolLens(); v64 != 0 || v32 != 1 {
		t.Fatalf("f64 acquire mis-drew: vals=%d vals32=%d", v64, v32)
	}
	releaseBacking(b)
}

// unionPair builds a tier's merge pair whose union is the 300-cell set
// {0..299} (≥ canonMinCells, so the union is interning-eligible).
func unionPair(prec Precision) (*Table, *Table) {
	p, q := NewP(0.5, 0.8, prec), NewP(0.5, 0.8, prec)
	for i := 0; i < 300; i++ {
		s, a := State(i/81), Action(i%81)
		if i != 0 {
			p.Set(s, a, float64(i))
		}
		if i != 299 {
			q.Set(s, a, -float64(i))
		}
	}
	return p, q
}

// TestCanonInterningAcrossTiers: canonical cell-set interning is keyed on
// the idx array alone (cells, not values), so F64 and F32 backings that
// reach the same union shape alias one immutable canonical array.
func TestCanonInterningAcrossTiers(t *testing.T) {
	// Two F64 unions: the first sights the set, the second interns it.
	p, q := unionPair(F64)
	Unify(p, q)
	p, q = unionPair(F64)
	Unify(p, q)
	if !p.b.idxShared {
		t.Fatal("second F64 union did not intern its cell set")
	}
	arr64 := &p.b.idx[0]

	p32, q32 := unionPair(F32)
	Unify(p32, q32)
	if !p32.b.idxShared {
		t.Fatal("F32 union did not adopt the interned cell set")
	}
	if &p32.b.idx[0] != arr64 {
		t.Fatal("F32 union built a private array instead of aliasing the canonical one")
	}
	if !p32.b.f32 || p32.b.vals32 == nil {
		t.Fatal("interned F32 backing lost its tier")
	}
}

// TestCapRoundPinned pins the capacity schedule for both tiers: capRound is
// tier-independent, and a fresh backing's value array capacity follows it on
// whichever tier it is built.
func TestCapRoundPinned(t *testing.T) {
	cases := map[int]int{
		0:    minBackingCap,
		1:    minBackingCap,
		15:   minBackingCap,
		16:   128,
		100:  192,
		500:  576,
		2047: 2112,
		2048: 2048,
		2049: 2064,
		5000: 5008,
	}
	for need, want := range cases {
		if got := capRound(need); got != want {
			t.Fatalf("capRound(%d) = %d, want %d", need, got, want)
		}
	}
	for need := range cases {
		b64 := newBacking(need, false)
		if cap(b64.vals) != capRound(need) || cap(b64.idx) != capRound(need) || b64.vals32 != nil {
			t.Fatalf("newBacking(%d, f64): caps idx=%d vals=%d", need, cap(b64.idx), cap(b64.vals))
		}
		b32 := newBacking(need, true)
		if cap(b32.vals32) != capRound(need) || cap(b32.idx) != capRound(need) || b32.vals != nil {
			t.Fatalf("newBacking(%d, f32): caps idx=%d vals32=%d", need, cap(b32.idx), cap(b32.vals32))
		}
	}
}

// TestFootprintValueBytes: Footprint's value-byte accounting charges 8 bytes
// per pooled f64 slot and 4 per f32 slot, so an F32 table reports half the
// value bytes of an F64 table with the same capacity.
func TestFootprintValueBytes(t *testing.T) {
	fill := func(prec Precision) *Table {
		tb := NewP(0.5, 0.8, prec)
		for i := 0; i < 300; i++ {
			tb.Set(State(i/81), Action(i%81), float64(i))
		}
		return tb
	}
	t64, t32 := fill(F64), fill(F32)
	_, bytes64, vb64, cells64 := Footprint([]*Table{t64})
	_, bytes32, vb32, cells32 := Footprint([]*Table{t32})
	if cells64 != 300 || cells32 != 300 {
		t.Fatalf("cells = %d / %d, want 300", cells64, cells32)
	}
	if vb64 != 2*vb32 {
		t.Fatalf("valueBytes F64 %d, F32 %d: want exact halving at equal capacity", vb64, vb32)
	}
	if vb64 > bytes64 || vb32 > bytes32 {
		t.Fatal("valueBytes exceeds total bytes")
	}
}

// TestFillDense32 mirrors FillDense for the narrow buffer: F32 tables copy
// their backing directly, F64 tables narrow per cell, and unwritten cells
// stay zero.
func TestFillDense32(t *testing.T) {
	for _, prec := range []Precision{F64, F32} {
		tb := NewP(0.5, 0.8, prec)
		tb.Set(0, 1, 0.1)
		tb.Set(2, 3, -4.5)
		dst := tb.FillDense32(make([]float32, DenseSpan*DenseSpan), DenseSpan, DenseSpan)
		if len(dst) != DenseSpan*DenseSpan {
			t.Fatalf("%v: FillDense32 len %d", prec, len(dst))
		}
		if dst[0*DenseSpan+1] != float32(0.1) || dst[2*DenseSpan+3] != -4.5 {
			t.Fatalf("%v: FillDense32 wrong cells: %v %v", prec, dst[1], dst[2*DenseSpan+3])
		}
		if dst[0] != 0 || dst[DenseSpan*DenseSpan-1] != 0 {
			t.Fatalf("%v: FillDense32 left junk in unwritten cells", prec)
		}
	}
}
