package qlearn

import (
	"math/rand"
	"testing"
)

// tablesMatch compares a dense and a sparse table cell-for-cell over a
// probe window comfortably larger than any key the test wrote.
func tablesMatch(t *testing.T, d *Table, s *Sparse, probe int) {
	t.Helper()
	if d.Len() != s.Len() {
		t.Fatalf("Len: dense %d, sparse %d", d.Len(), s.Len())
	}
	for si := State(0); si < State(probe); si++ {
		for ai := Action(0); ai < Action(probe); ai++ {
			if d.Has(si, ai) != s.Has(si, ai) {
				t.Fatalf("Has(%d,%d): dense %v, sparse %v", si, ai, d.Has(si, ai), s.Has(si, ai))
			}
			if d.Get(si, ai) != s.Get(si, ai) {
				t.Fatalf("Get(%d,%d): dense %g, sparse %g", si, ai, d.Get(si, ai), s.Get(si, ai))
			}
		}
	}
}

// TestSparseDenseDifferential replays one recorded pseudo-random sequence of
// updates, sets and gossip merges through the dense backend and the retired
// sparse reference in lockstep, asserting identical tables at every merge
// point. Both implementations use identical arithmetic, so equality is
// exact, not approximate.
func TestSparseDenseDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20160901))
	d1, d2 := New(0.5, 0.8), New(0.5, 0.8)
	s1, s2 := NewSparse(0.5, 0.8), NewSparse(0.5, 0.8)

	randState := func() State { return State(rng.Intn(81)) }
	randAction := func() Action { return Action(rng.Intn(81)) }

	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(10); {
		case op < 6: // Q-learning update on one endpoint
			s, a, next := randState(), randAction(), randState()
			r := rng.NormFloat64() * 10
			if rng.Intn(2) == 0 {
				gd, gs := d1.Update(s, a, r, next), s1.Update(s, a, r, next)
				if gd != gs {
					t.Fatalf("step %d: Update returned %g dense, %g sparse", step, gd, gs)
				}
			} else {
				d2.Update(s, a, r, next)
				s2.Update(s, a, r, next)
			}
		case op < 8: // raw write
			s, a := randState(), randAction()
			v := rng.NormFloat64()
			d1.Set(s, a, v)
			s1.Set(s, a, v)
		case op < 9: // occasional key outside the calibrated span
			s, a := State(81+rng.Intn(40)), Action(81+rng.Intn(40))
			v := rng.NormFloat64()
			d2.Set(s, a, v)
			s2.Set(s, a, v)
		default: // gossip merge
			Unify(d1, d2)
			UnifySparse(s1, s2)
			if !Equal(d1, d2) {
				t.Fatalf("step %d: dense tables differ after Unify", step)
			}
			if !EqualSparse(s1, s2) {
				t.Fatalf("step %d: sparse tables differ after UnifySparse", step)
			}
			tablesMatch(t, d1, s1, 140)
			tablesMatch(t, d2, s2, 140)
		}
	}
	tablesMatch(t, d1, s1, 140)
	tablesMatch(t, d2, s2, 140)

	// The MaxKnown landscape must agree too (it drives Update's bootstrap).
	for s := State(0); s < 140; s++ {
		if d1.MaxKnown(s) != s1.MaxKnown(s) {
			t.Fatalf("MaxKnown(%d): dense %g, sparse %g", s, d1.MaxKnown(s), s1.MaxKnown(s))
		}
	}
}

// TestUpdateAllocFree pins the dense backend's steady-state guarantee:
// once a table spans its keys, Update and Unify allocate nothing.
func TestUpdateAllocFree(t *testing.T) {
	tb := New(0.5, 0.8)
	tb.Set(0, 0, 1) // first write allocates the dense span
	if allocs := testing.AllocsPerRun(100, func() {
		tb.Update(3, 4, 5, 6)
	}); allocs != 0 {
		t.Fatalf("Update allocates %g objects/op in steady state", allocs)
	}

	p, q := New(0.5, 0.8), New(0.5, 0.8)
	p.Set(1, 2, 3)
	q.Set(4, 5, 6)
	Unify(p, q) // aligns the backings
	if allocs := testing.AllocsPerRun(100, func() {
		Unify(p, q)
	}); allocs != 0 {
		t.Fatalf("Unify allocates %g objects/op in steady state", allocs)
	}
}

// randomTable builds a dense table with ~density of the probe space filled.
func randomTable(rng *rand.Rand, density float64) *Table {
	tb := New(0.5, 0.8)
	for s := State(0); s < 81; s++ {
		for a := Action(0); a < 81; a++ {
			if rng.Float64() < density {
				tb.Set(s, a, rng.NormFloat64())
			}
		}
	}
	return tb
}

// TestUnifyCommutative checks that the merge has no side preference:
// Unify(p, q) and Unify(q, p) produce the same table.
func TestUnifyCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		p, q := randomTable(rng, 0.3), randomTable(rng, 0.3)
		pc, qc := p.Clone(), q.Clone()
		Unify(p, q)
		Unify(qc, pc)
		if !Equal(p, qc) || !Equal(q, pc) {
			t.Fatalf("trial %d: Unify is not commutative", trial)
		}
	}
}

// TestUnifyIdempotentDense checks Unify twice == once: the second merge of
// two already-equal tables must not move any value.
func TestUnifyIdempotentDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		p, q := randomTable(rng, 0.4), randomTable(rng, 0.4)
		Unify(p, q)
		once := p.Clone()
		Unify(p, q)
		if !Equal(p, once) || !Equal(q, once) {
			t.Fatalf("trial %d: second Unify changed the tables", trial)
		}
	}
}

// TestUnifyPostEqual checks the merge contract directly: after Unify the two
// tables are Equal, whatever their overlap.
func TestUnifyPostEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		p, q := randomTable(rng, rng.Float64()), randomTable(rng, rng.Float64())
		Unify(p, q)
		if !Equal(p, q) {
			t.Fatalf("trial %d: tables differ after Unify", trial)
		}
	}
}

// TestGrowthBeyondSpan exercises the growth path: keys outside the
// calibrated 81×81 span must work, including merges and equality between
// tables that grew at different times (and so have different dimensions).
func TestGrowthBeyondSpan(t *testing.T) {
	p := New(0.5, 0.8)
	p.Set(1, 1, 2)
	p.Set(200, 300, 7) // forces growth of both dimensions
	if !p.Has(200, 300) || p.Get(200, 300) != 7 || p.Get(1, 1) != 2 {
		t.Fatal("growth lost cells")
	}
	if p.Get(5000, 5000) != 0 || p.Has(5000, 5000) {
		t.Fatal("far out-of-range reads must be zero/absent")
	}

	q := New(0.5, 0.8) // stays at calibrated dims after first write
	q.Set(1, 1, 2)
	q.Set(200, 300, 7)
	if !Equal(p, q) {
		t.Fatal("same contents, different growth history: Equal must hold")
	}

	small := New(0.5, 0.8)
	small.Set(3, 4, -1)
	Unify(p, small)
	if !Equal(p, small) || small.Get(200, 300) != 7 || p.Get(3, 4) != -1 {
		t.Fatal("Unify across different dimensions broken")
	}
}

// TestKeysOrderAfterGrowth pins Keys' deterministic (state, action) order on
// grown tables.
func TestKeysOrderAfterGrowth(t *testing.T) {
	p := New(0.5, 0.8)
	p.Set(90, 2, 1)
	p.Set(1, 85, 1)
	p.Set(1, 2, 1)
	want := []Key{{1, 2}, {1, 85}, {90, 2}}
	keys := p.Keys()
	if len(keys) != len(want) {
		t.Fatalf("keys %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys %v, want %v", keys, want)
		}
	}
}

// TestFillDense checks the dense vector adapter: layout, zero-fill of
// absent cells, clipping of out-of-span cells, buffer reuse.
func TestFillDense(t *testing.T) {
	p := New(0.5, 0.8)
	p.Set(1, 2, 5)
	p.Set(3, 0, -2)
	p.Set(100, 100, 9) // outside the requested span: dropped

	buf := make([]float64, 81*81)
	for i := range buf {
		buf[i] = 99 // stale garbage that FillDense must clear
	}
	got := p.FillDense(buf, 81, 81)
	if &got[0] != &buf[0] {
		t.Fatal("FillDense must fill the caller's buffer")
	}
	nonzero := 0
	for i, v := range got {
		switch i {
		case 1*81 + 2:
			if v != 5 {
				t.Fatalf("cell (1,2) = %g", v)
			}
			nonzero++
		case 3 * 81:
			if v != -2 {
				t.Fatalf("cell (3,0) = %g", v)
			}
			nonzero++
		default:
			if v != 0 {
				t.Fatalf("cell %d = %g, want 0", i, v)
			}
		}
	}
	if nonzero != 2 {
		t.Fatalf("%d nonzero cells", nonzero)
	}
}

// TestMergeMatchesUnify pins Merge against the Equal-then-Unify composition
// it replaced on the aggregation hot path: identical post-merge tables,
// a change report that matches what Equal would have said, and a MaxKnown
// landscape (i.e. rowMax cache state) indistinguishable from Unify's.
func TestMergeMatchesUnify(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		p, q := randomTable(rng, rng.Float64()), randomTable(rng, rng.Float64())
		if trial%4 == 0 {
			Unify(p, q) // exercise the already-equal (no-op) regime too
		}
		pu, qu := p.Clone(), q.Clone()

		wasEqual := Equal(pu, qu)
		if !wasEqual {
			Unify(pu, qu)
		}
		changed := Merge(p, q)

		if changed == wasEqual {
			t.Fatalf("trial %d: Merge reported changed=%v, Equal said %v", trial, changed, wasEqual)
		}
		if !Equal(p, pu) || !Equal(q, qu) || !Equal(p, q) {
			t.Fatalf("trial %d: Merge result differs from Equal+Unify", trial)
		}
		// Warm some rowMax entries before and read all after, so a stale
		// cache surviving a changing merge would surface here.
		for s := State(0); s < 81; s++ {
			if p.MaxKnown(s) != pu.MaxKnown(s) || q.MaxKnown(s) != qu.MaxKnown(s) {
				t.Fatalf("trial %d: MaxKnown(%d) diverged after Merge", trial, s)
			}
		}
	}
}

// TestMergeMisalignedBackings exercises Merge's slow path: tables grown to
// different dimensions must still end up unified and equal.
func TestMergeMisalignedBackings(t *testing.T) {
	p := New(0.5, 0.8)
	p.Set(1, 1, 2)
	p.Set(200, 300, 7) // grown past the calibrated span
	q := New(0.5, 0.8)
	q.Set(1, 1, 4)
	q.Set(3, 4, -1)
	if !Merge(p, q) {
		t.Fatal("differing tables: Merge must report a change")
	}
	if !Equal(p, q) || p.Get(1, 1) != 3 || q.Get(200, 300) != 7 || p.Get(3, 4) != -1 {
		t.Fatal("Merge across different dimensions broken")
	}
	if Merge(p, q) {
		t.Fatal("second Merge of equal tables must be a no-op")
	}
}

// TestMergeAllocFree extends the steady-state guarantee to Merge.
func TestMergeAllocFree(t *testing.T) {
	p, q := New(0.5, 0.8), New(0.5, 0.8)
	p.Set(1, 2, 3)
	q.Set(4, 5, 6)
	Unify(p, q)
	run := 0.0
	if allocs := testing.AllocsPerRun(100, func() {
		q.Set(7, 8, run) // keep the pair unequal so Merge does real work
		run++
		Merge(p, q)
	}); allocs != 0 {
		t.Fatalf("Merge allocates %g objects/op in steady state", allocs)
	}
}
