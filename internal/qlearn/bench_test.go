package qlearn

import "testing"

// fullTable builds a table covering the full 81x81 GLAP state-action space.
func fullTable(alpha, gamma float64) *Table {
	t := New(alpha, gamma)
	for s := State(0); s < 81; s++ {
		for a := Action(0); a < 81; a++ {
			t.Set(s, a, float64(s)+float64(a)/100)
		}
	}
	return t
}

// fullSparse builds the same table on the retired map backing.
func fullSparse(alpha, gamma float64) *Sparse {
	t := NewSparse(alpha, gamma)
	for s := State(0); s < 81; s++ {
		for a := Action(0); a < 81; a++ {
			t.Set(s, a, float64(s)+float64(a)/100)
		}
	}
	return t
}

// BenchmarkUpdate pins the Equation 1 hot path: on the dense backend a
// steady-state update (no growth) must be allocation-free — check allocs/op.
func BenchmarkUpdate(b *testing.B) {
	t := fullTable(0.5, 0.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Update(State(i%81), Action(i%81), 5, State((i+1)%81))
	}
}

// BenchmarkUpdateSparse is the map-backed baseline for BenchmarkUpdate.
func BenchmarkUpdateSparse(b *testing.B) {
	t := fullSparse(0.5, 0.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Update(State(i%81), Action(i%81), 5, State((i+1)%81))
	}
}

func BenchmarkBest(b *testing.B) {
	t := fullTable(0.5, 0.8)
	candidates := []Action{1, 5, 9, 13, 40, 77}
	for i := 0; i < b.N; i++ {
		_, _, _ = t.Best(State(i%81), candidates)
	}
}

func BenchmarkMaxKnown(b *testing.B) {
	t := fullTable(0.5, 0.8)
	for i := 0; i < b.N; i++ {
		_ = t.MaxKnown(State(i % 81))
	}
}

// BenchmarkUnify measures the aggregation-phase merge of two full GLAP-sized
// tables in steady state — the dominant cost of Algorithm 2. The tables are
// built once; after the first iteration every merge averages two equal full
// tables, exactly the post-convergence exchanges that dominate a long
// aggregation phase. Steady-state merges must be allocation-free.
func BenchmarkUnify(b *testing.B) {
	p := fullTable(0.5, 0.8)
	q := fullTable(0.5, 0.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Unify(p, q)
	}
}

// BenchmarkUnifySparse is the retired map-backed baseline for
// BenchmarkUnify, on identical data.
func BenchmarkUnifySparse(b *testing.B) {
	p := fullSparse(0.5, 0.8)
	q := fullSparse(0.5, 0.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnifySparse(p, q)
	}
}

// BenchmarkEqual measures the cheap-exit pre-check AggProtocol runs before
// every merge, on equal full tables (the worst case: no early exit).
func BenchmarkEqual(b *testing.B) {
	p := fullTable(0.5, 0.8)
	q := fullTable(0.5, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Equal(p, q)
	}
}

// BenchmarkEqualSparse is the map-backed baseline for BenchmarkEqual.
func BenchmarkEqualSparse(b *testing.B) {
	p := fullSparse(0.5, 0.8)
	q := fullSparse(0.5, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EqualSparse(p, q)
	}
}

func BenchmarkClone(b *testing.B) {
	t := fullTable(0.5, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = t.Clone()
	}
}

func BenchmarkFlat(b *testing.B) {
	t := fullTable(0.5, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = t.Flat()
	}
}

// BenchmarkFillDense measures the dense vector fill that replaced Flat on
// the convergence-measurement path.
func BenchmarkFillDense(b *testing.B) {
	t := fullTable(0.5, 0.8)
	buf := make([]float64, 81*81)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.FillDense(buf, 81, 81)
	}
}
