package qlearn

import "testing"

// fullTable builds a table covering the full 81x81 GLAP state-action space.
func fullTable(alpha, gamma float64) *Table {
	t := New(alpha, gamma)
	for s := State(0); s < 81; s++ {
		for a := Action(0); a < 81; a++ {
			t.Set(s, a, float64(s)+float64(a)/100)
		}
	}
	return t
}

func BenchmarkUpdate(b *testing.B) {
	t := fullTable(0.5, 0.8)
	for i := 0; i < b.N; i++ {
		t.Update(State(i%81), Action(i%81), 5, State((i+1)%81))
	}
}

func BenchmarkBest(b *testing.B) {
	t := fullTable(0.5, 0.8)
	candidates := []Action{1, 5, 9, 13, 40, 77}
	for i := 0; i < b.N; i++ {
		_, _, _ = t.Best(State(i%81), candidates)
	}
}

func BenchmarkMaxKnown(b *testing.B) {
	t := fullTable(0.5, 0.8)
	for i := 0; i < b.N; i++ {
		_ = t.MaxKnown(State(i % 81))
	}
}

// BenchmarkUnify measures one aggregation-phase merge of two full GLAP-sized
// tables — the dominant cost of Algorithm 2.
func BenchmarkUnify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := fullTable(0.5, 0.8)
		q := fullTable(0.5, 0.8)
		b.StartTimer()
		Unify(p, q)
	}
}

func BenchmarkClone(b *testing.B) {
	t := fullTable(0.5, 0.8)
	for i := 0; i < b.N; i++ {
		_ = t.Clone()
	}
}

func BenchmarkFlat(b *testing.B) {
	t := fullTable(0.5, 0.8)
	for i := 0; i < b.N; i++ {
		_ = t.Flat()
	}
}
