package qlearn

import "testing"

// fullTable builds a table covering the full 81x81 GLAP state-action space.
func fullTable(alpha, gamma float64) *Table {
	t := New(alpha, gamma)
	for s := State(0); s < 81; s++ {
		for a := Action(0); a < 81; a++ {
			t.Set(s, a, float64(s)+float64(a)/100)
		}
	}
	return t
}

// fullSparse builds the same table on the retired map backing.
func fullSparse(alpha, gamma float64) *Sparse {
	t := NewSparse(alpha, gamma)
	for s := State(0); s < 81; s++ {
		for a := Action(0); a < 81; a++ {
			t.Set(s, a, float64(s)+float64(a)/100)
		}
	}
	return t
}

// BenchmarkUpdate pins the Equation 1 hot path: on the dense backend a
// steady-state update (no growth) must be allocation-free — check allocs/op.
func BenchmarkUpdate(b *testing.B) {
	t := fullTable(0.5, 0.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Update(State(i%81), Action(i%81), 5, State((i+1)%81))
	}
}

// BenchmarkUpdateSparse is the map-backed baseline for BenchmarkUpdate.
func BenchmarkUpdateSparse(b *testing.B) {
	t := fullSparse(0.5, 0.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Update(State(i%81), Action(i%81), 5, State((i+1)%81))
	}
}

func BenchmarkBest(b *testing.B) {
	t := fullTable(0.5, 0.8)
	candidates := []Action{1, 5, 9, 13, 40, 77}
	for i := 0; i < b.N; i++ {
		_, _, _ = t.Best(State(i%81), candidates)
	}
}

func BenchmarkMaxKnown(b *testing.B) {
	t := fullTable(0.5, 0.8)
	for i := 0; i < b.N; i++ {
		_ = t.MaxKnown(State(i % 81))
	}
}

// BenchmarkUnify measures the aggregation-phase merge of two full GLAP-sized
// tables in steady state — the dominant cost of Algorithm 2. The tables are
// built once; after the first iteration every merge averages two equal full
// tables, exactly the post-convergence exchanges that dominate a long
// aggregation phase. Steady-state merges must be allocation-free.
func BenchmarkUnify(b *testing.B) {
	p := fullTable(0.5, 0.8)
	q := fullTable(0.5, 0.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Unify(p, q)
	}
}

// BenchmarkUnifySparse is the retired map-backed baseline for
// BenchmarkUnify, on identical data.
func BenchmarkUnifySparse(b *testing.B) {
	p := fullSparse(0.5, 0.8)
	q := fullSparse(0.5, 0.8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UnifySparse(p, q)
	}
}

// disjointPair builds a merge pair with no shared cells (300 each, union
// 600) — the worst case for mergeTables: a full union build every time.
func disjointPair(prec Precision) (*Table, *Table) {
	p, q := NewP(0.5, 0.8, prec), NewP(0.5, 0.8, prec)
	for i := 0; i < 300; i++ {
		p.Set(State(i/81), Action(i%81), float64(i+1))
		j := i + 3000
		q.Set(State(j/81), Action(j%81), -float64(i+1))
	}
	return p, q
}

// benchMerge measures Merge(p, q) with the pair rewound to its pre-merge
// backings after every iteration, so each iteration exercises the same merge
// path instead of degenerating into shared-backing no-ops.
func benchMerge(b *testing.B, p, q *Table) {
	pb, qb := p.b, q.b
	pb.ref.Add(1) // keep the masters alive across iterations
	qb.ref.Add(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Merge(p, q)
		if p.b != pb {
			deref(p.b)
			pb.ref.Add(1)
			p.b = pb
		}
		if q.b != qb {
			deref(q.b)
			qb.ref.Add(1)
			q.b = qb
		}
	}
}

// BenchmarkMergeTables covers mergeTables' regimes on both precision tiers:
//
//	aligned  — converged steady state: both cell sets alias one canonical
//	    interned array, values differ → the pointer-equality fast path
//	    (averageAligned into an aliasing backing, no union build).
//	shared   — the pair already shares one backing: pure pointer compare.
//	disjoint — no common cells: the general unionScan + unionBuild path.
func BenchmarkMergeTables(b *testing.B) {
	for _, prec := range []Precision{F64, F32} {
		b.Run("aligned/"+prec.String(), func(b *testing.B) {
			p := alignedTable(b, prec, 1)
			q := alignedTable(b, prec, 2)
			if &p.b.idx[0] != &q.b.idx[0] {
				b.Fatal("setup did not produce aligned canonical backings")
			}
			benchMerge(b, p, q)
		})
		b.Run("shared/"+prec.String(), func(b *testing.B) {
			p, q := fastPathPair(prec, 1)
			Unify(p, q)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Merge(p, q)
			}
		})
		b.Run("disjoint/"+prec.String(), func(b *testing.B) {
			p, q := disjointPair(prec)
			benchMerge(b, p, q)
		})
	}
}

// BenchmarkEqual measures the cheap-exit pre-check AggProtocol runs before
// every merge, on equal full tables (the worst case: no early exit).
func BenchmarkEqual(b *testing.B) {
	p := fullTable(0.5, 0.8)
	q := fullTable(0.5, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Equal(p, q)
	}
}

// BenchmarkEqualSparse is the map-backed baseline for BenchmarkEqual.
func BenchmarkEqualSparse(b *testing.B) {
	p := fullSparse(0.5, 0.8)
	q := fullSparse(0.5, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EqualSparse(p, q)
	}
}

func BenchmarkClone(b *testing.B) {
	t := fullTable(0.5, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = t.Clone()
	}
}

func BenchmarkFlat(b *testing.B) {
	t := fullTable(0.5, 0.8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = t.Flat()
	}
}

// BenchmarkFillDense measures the dense vector fill that replaced Flat on
// the convergence-measurement path.
func BenchmarkFillDense(b *testing.B) {
	t := fullTable(0.5, 0.8)
	buf := make([]float64, 81*81)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.FillDense(buf, 81, 81)
	}
}
