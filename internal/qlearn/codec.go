package qlearn

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// tableJSON is the serialised form of a Table: a versioned envelope with the
// learning parameters and a flat, deterministic cell list.
type tableJSON struct {
	Version int        `json:"version"`
	Alpha   float64    `json:"alpha"`
	Gamma   float64    `json:"gamma"`
	Cells   []cellJSON `json:"cells"`
}

type cellJSON struct {
	S State   `json:"s"`
	A Action  `json:"a"`
	Q float64 `json:"q"`
}

const codecVersion = 1

// maxCodecKey bounds the state/action values Decode accepts. The dense
// backing allocates numS×numA cells, so an absurd key in a corrupt or
// hostile checkpoint must fail the decode instead of forcing a huge
// allocation. GLAP's calibrated spaces are < 100 per dimension.
const maxCodecKey = 1 << 20

// Encode writes the table as JSON. Cells are emitted in deterministic
// (state, action) order so encodings of equal tables are byte-identical —
// convenient for checkpoint diffing.
func (t *Table) Encode(w io.Writer) error {
	out := tableJSON{Version: codecVersion, Alpha: t.Alpha, Gamma: t.Gamma}
	for _, k := range t.Keys() {
		out.Cells = append(out.Cells, cellJSON{S: k.S, A: k.A, Q: t.Get(k.S, k.A)})
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("qlearn: encoding table: %w", err)
	}
	return bw.Flush()
}

// Decode reads a table previously written by Encode.
func Decode(r io.Reader) (*Table, error) {
	var in tableJSON
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("qlearn: decoding table: %w", err)
	}
	if in.Version != codecVersion {
		return nil, fmt.Errorf("qlearn: unsupported table version %d", in.Version)
	}
	if in.Alpha <= 0 || in.Alpha > 1 || in.Gamma < 0 || in.Gamma >= 1 {
		return nil, fmt.Errorf("qlearn: invalid parameters alpha=%g gamma=%g", in.Alpha, in.Gamma)
	}
	t := New(in.Alpha, in.Gamma)
	for _, c := range in.Cells {
		if c.S >= maxCodecKey || c.A >= maxCodecKey {
			return nil, fmt.Errorf("qlearn: cell key (%d, %d) out of range", c.S, c.A)
		}
		t.Set(c.S, c.A, c.Q)
	}
	return t, nil
}
