package qlearn

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// tableJSON is the serialised form of a Table: a versioned envelope with the
// learning parameters and a flat, deterministic cell list. Version 1 has no
// precision field and always denotes the F64 tier; version 2 adds the
// precision string ("f64"/"f32"). F64 tables keep writing version 1, so
// default-tier checkpoints are byte-identical to pre-tier ones.
type tableJSON struct {
	Version   int        `json:"version"`
	Precision string     `json:"precision,omitempty"`
	Alpha     float64    `json:"alpha"`
	Gamma     float64    `json:"gamma"`
	Cells     []cellJSON `json:"cells"`
}

type cellJSON struct {
	S State   `json:"s"`
	A Action  `json:"a"`
	Q float64 `json:"q"`
}

const (
	codecVersion   = 1
	codecVersionV2 = 2
)

// maxCodecKey bounds the state/action values Decode accepts. The dense
// backing allocates numS×numA cells, so an absurd key in a corrupt or
// hostile checkpoint must fail the decode instead of forcing a huge
// allocation. GLAP's calibrated spaces are < 100 per dimension.
const maxCodecKey = 1 << 20

// Encode writes the table as JSON. Cells are emitted in deterministic
// (state, action) order so encodings of equal tables are byte-identical —
// convenient for checkpoint diffing. F64 tables emit the version-1
// envelope unchanged; F32 tables emit version 2 with the precision
// recorded, so a warm restart rebuilds the same tier.
func (t *Table) Encode(w io.Writer) error {
	out := tableJSON{Version: codecVersion, Alpha: t.Alpha, Gamma: t.Gamma}
	if t.prec == F32 {
		out.Version = codecVersionV2
		out.Precision = F32.String()
	}
	for _, k := range t.Keys() {
		out.Cells = append(out.Cells, cellJSON{S: k.S, A: k.A, Q: t.Get(k.S, k.A)})
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("qlearn: encoding table: %w", err)
	}
	return bw.Flush()
}

// Decode reads a table previously written by Encode. Version-1 documents
// decode as F64 (they predate the precision tier); version-2 documents
// carry their tier explicitly. Non-finite parameters or cell values are
// rejected: a NaN Q-value would poison the NaN-sentinel row-max cache and
// propagate through every subsequent merge, so a corrupt or hostile
// checkpoint must fail loudly here instead.
func Decode(r io.Reader) (*Table, error) {
	var in tableJSON
	dec := json.NewDecoder(bufio.NewReader(r))
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("qlearn: decoding table: %w", err)
	}
	prec, err := validateEnvelope(&in)
	if err != nil {
		return nil, err
	}
	t := NewP(in.Alpha, in.Gamma, prec)
	for _, c := range in.Cells {
		if err := validateCell(c); err != nil {
			return nil, err
		}
		t.Set(c.S, c.A, c.Q)
	}
	return t, nil
}

// validateEnvelope checks the version, precision, and learning parameters of
// a decoded envelope and resolves its precision tier. The non-finite checks
// are explicit even though encoding/json cannot parse a NaN or ±Inf number:
// NaN in particular defeats the range checks below (every NaN comparison is
// false, so a NaN alpha "satisfies" 0 < alpha ≤ 1), and any future codec
// front-end that can carry such values must hit this wall.
func validateEnvelope(in *tableJSON) (Precision, error) {
	prec := F64
	switch in.Version {
	case codecVersion:
	case codecVersionV2:
		switch in.Precision {
		case F64.String():
		case F32.String():
			prec = F32
		default:
			return 0, fmt.Errorf("qlearn: unknown table precision %q", in.Precision)
		}
	default:
		return 0, fmt.Errorf("qlearn: unsupported table version %d", in.Version)
	}
	if math.IsNaN(in.Alpha) || math.IsInf(in.Alpha, 0) || math.IsNaN(in.Gamma) || math.IsInf(in.Gamma, 0) {
		return 0, fmt.Errorf("qlearn: non-finite parameters alpha=%g gamma=%g", in.Alpha, in.Gamma)
	}
	if in.Alpha <= 0 || in.Alpha > 1 || in.Gamma < 0 || in.Gamma >= 1 {
		return 0, fmt.Errorf("qlearn: invalid parameters alpha=%g gamma=%g", in.Alpha, in.Gamma)
	}
	return prec, nil
}

// validateCell rejects out-of-range keys and non-finite Q-values: a NaN Q
// would poison the NaN-sentinel row-max cache and spread through every
// subsequent merge average, so a corrupt or hostile checkpoint fails here.
func validateCell(c cellJSON) error {
	if c.S >= maxCodecKey || c.A >= maxCodecKey {
		return fmt.Errorf("qlearn: cell key (%d, %d) out of range", c.S, c.A)
	}
	if math.IsNaN(c.Q) || math.IsInf(c.Q, 0) {
		return fmt.Errorf("qlearn: non-finite Q-value %g at cell (%d, %d)", c.Q, c.S, c.A)
	}
	return nil
}
